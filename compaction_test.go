package stpq

// compaction_test.go verifies the generational merge pipeline: partial
// merges must stay byte-identical to a from-scratch rebuild across index
// kinds, variants and algorithms; the background compactor must converge
// to the same answers while queries run; a crash at any point of the
// pipeline — after a run seal, after a partial merge, mid-checkpoint —
// must recover oracle-exact from the WAL; and the MergeAuto degradation
// heuristic must actually fall back to full rebuilds under drift.

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// flushStep applies one random batch to db and the shadow, then merges.
func flushStep(t *testing.T, db *DB, shadow *ingestShadow, rng *rand.Rand, n int) {
	t.Helper()
	muts := randomMutations(rng, shadow, n)
	if err := db.Apply(muts); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	for _, m := range muts {
		shadow.apply(m)
	}
	if err := db.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
}

// TestPartialMergeOracleEquivalence is the acceptance gate of the
// incremental path: with MergeIncremental forced, every Flush batch-applies
// the net delta into copy-on-write clones of the live trees, and the
// answers after each merge are byte-identical to a from-scratch rebuild —
// for both index kinds, all three variants and both algorithms (via
// assertSameTopK), across insert/delete/upsert mixes.
func TestPartialMergeOracleEquivalence(t *testing.T) {
	for _, kind := range []IndexKind{SRT, IR2} {
		t.Run(fmt.Sprintf("kind=%d", kind), func(t *testing.T) {
			rng := rand.New(rand.NewSource(17))
			objs, sets := ingestSeedData(rng, 250, 120)
			cfg := Config{IndexKind: kind, PageSize: 1024, WALDir: t.TempDir(),
				AutoFlushOps: -1, MergePolicy: MergeIncremental}
			db := buildIngestDB(t, cfg, objs, sets)
			shadow := newIngestShadow(objs, sets)
			for round := 0; round < 6; round++ {
				flushStep(t, db, shadow, rng, 15)
				if db.PendingOps() != 0 {
					t.Fatalf("round %d: %d pending ops after Flush", round, db.PendingOps())
				}
				assertSameTopK(t, fmt.Sprintf("round %d", round), db, shadow.oracle(t, cfg), rng)
			}
			m := db.Metrics().Counters
			if m["stpq_ingest_partial_merges_total"] != 6 {
				t.Fatalf("partial merges = %d, want 6 (full rebuilds = %d)",
					m["stpq_ingest_partial_merges_total"], m["stpq_ingest_full_rebuilds_total"])
			}
			if m["stpq_ingest_full_rebuilds_total"] != 0 {
				t.Fatalf("full rebuilds = %d, want 0 under MergeIncremental",
					m["stpq_ingest_full_rebuilds_total"])
			}
		})
	}
}

// TestPartialMergeSurvivesCheckpointCycle: a checkpoint after partial
// merges must round-trip through Open — the incrementally-grown trees are
// saved, reloaded, and keep both answering and merging exactly.
func TestPartialMergeSurvivesCheckpointCycle(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	objs, sets := ingestSeedData(rng, 200, 100)
	saveDir := t.TempDir()
	cfg := Config{PageSize: 1024, WALDir: t.TempDir(),
		AutoFlushOps: -1, MergePolicy: MergeIncremental}
	db1 := buildIngestDB(t, cfg, objs, sets)
	shadow := newIngestShadow(objs, sets)
	for round := 0; round < 3; round++ {
		flushStep(t, db1, shadow, rng, 12)
	}
	if err := db1.Checkpoint(saveDir); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	db2, err := Open(saveDir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	assertSameTopK(t, "reopened after partial merges", db2, shadow.oracle(t, cfg), rng)
	// The reopened DB merges incrementally too (raw slices and location
	// maps are rebuilt from the indexes on WAL attach).
	flushStep(t, db2, shadow, rng, 10)
	assertSameTopK(t, "merged after reopen", db2, shadow.oracle(t, cfg), rng)
	if m := db2.Metrics().Counters; m["stpq_ingest_partial_merges_total"] == 0 {
		t.Fatal("reopened DB fell back to full rebuild; want a partial merge")
	}
}

// TestBackgroundCompactionOracleEquivalence streams writes through the
// sealed-run pipeline: a tiny auto-flush threshold seals runs constantly,
// the watermark-1 compactor merges them concurrently, and after every
// round the overlay over base + surviving runs + delta must still match
// the oracle. The final Flush drains whatever the compactor has not taken.
func TestBackgroundCompactionOracleEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	objs, sets := ingestSeedData(rng, 200, 100)
	cfg := Config{PageSize: 1024, WALDir: t.TempDir(),
		AutoFlushOps: 10, BackgroundCompaction: true, CompactRuns: 1}
	db := buildIngestDB(t, cfg, objs, sets)
	defer db.CloseWAL()
	shadow := newIngestShadow(objs, sets)
	for round := 0; round < 8; round++ {
		muts := randomMutations(rng, shadow, 12)
		if err := db.Apply(muts); err != nil {
			t.Fatalf("round %d: Apply: %v", round, err)
		}
		for _, m := range muts {
			shadow.apply(m)
		}
		assertSameTopK(t, fmt.Sprintf("round %d", round), db, shadow.oracle(t, cfg), rng)
	}
	// The compactor must get a chance to win at least one swap: wait for a
	// completed compaction before draining (every sealed run nudged it).
	deadline := time.Now().Add(10 * time.Second)
	for db.Metrics().Counters["stpq_ingest_compactions_total"] == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no background compaction completed; runs=%d", db.Runs())
		}
		time.Sleep(time.Millisecond)
	}
	if err := db.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if db.PendingOps() != 0 {
		t.Fatalf("PendingOps after drain = %d", db.PendingOps())
	}
	assertSameTopK(t, "after drain", db, shadow.oracle(t, cfg), rng)
	st := db.IngestStatus()
	if !st.BackgroundCompaction || st.Compactions == 0 {
		t.Fatalf("IngestStatus = %+v; want live compactor with completed compactions", st)
	}
}

// TestCrashAfterRunSeal: a crash while sealed runs (and a half-filled
// delta) are awaiting compaction loses nothing — the WAL replays every
// batch and the restarted DB matches the oracle.
func TestCrashAfterRunSeal(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	objs, sets := ingestSeedData(rng, 150, 80)
	walDir := t.TempDir()
	// A huge watermark keeps the compactor asleep: runs pile up sealed and
	// unmerged, the worst case for recovery.
	cfg := Config{PageSize: 1024, WALDir: walDir,
		AutoFlushOps: 8, BackgroundCompaction: true, CompactRuns: 1 << 20}
	db1 := buildIngestDB(t, cfg, objs, sets)
	shadow := newIngestShadow(objs, sets)
	applied := 0
	for round := 0; round < 5; round++ {
		muts := randomMutations(rng, shadow, 10)
		if err := db1.Apply(muts); err != nil {
			t.Fatal(err)
		}
		for _, m := range muts {
			shadow.apply(m)
		}
		applied += len(muts)
	}
	if db1.Runs() == 0 {
		t.Fatal("test did not reach the sealed-run state it means to crash in")
	}
	// Crash: db1 abandoned, WAL left open, runs and delta lost with the heap.
	db2 := buildIngestDB(t, cfg, objs, sets)
	defer db2.CloseWAL()
	if got := db2.Metrics().Counters["stpq_ingest_replayed_total"]; got != int64(applied) {
		t.Fatalf("replayed %d mutations, want %d", got, applied)
	}
	assertSameTopK(t, "after run-seal crash", db2, shadow.oracle(t, cfg), rng)
}

// TestCrashAfterPartialMerge: partial merges change only the in-memory
// generation, not the durable watermark — after a crash the full log
// replays over the seed base and reconverges exactly.
func TestCrashAfterPartialMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	objs, sets := ingestSeedData(rng, 150, 80)
	walDir := t.TempDir()
	cfg := Config{PageSize: 1024, WALDir: walDir,
		AutoFlushOps: -1, MergePolicy: MergeIncremental}
	db1 := buildIngestDB(t, cfg, objs, sets)
	shadow := newIngestShadow(objs, sets)
	for round := 0; round < 3; round++ {
		flushStep(t, db1, shadow, rng, 10)
	}
	if m := db1.Metrics().Counters["stpq_ingest_partial_merges_total"]; m != 3 {
		t.Fatalf("partial merges before crash = %d, want 3", m)
	}
	// Crash after the merges, before any checkpoint.
	db2 := buildIngestDB(t, cfg, objs, sets)
	if got := db2.Metrics().Counters["stpq_ingest_replayed_total"]; got != 30 {
		t.Fatalf("replayed %d mutations, want 30", got)
	}
	assertSameTopK(t, "after partial-merge crash", db2, shadow.oracle(t, cfg), rng)
}

// TestCrashMidCheckpointSwap simulates dying between a checkpoint's page
// dumps and its manifest rename: newer-generation page files exist on disk
// but the manifest still names the old generation. Open must load the old
// checkpoint, replay the WAL tail exactly, and the next successful
// checkpoint must garbage-collect the orphaned dumps.
func TestCrashMidCheckpointSwap(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	objs, sets := ingestSeedData(rng, 150, 80)
	saveDir := t.TempDir()
	cfg := Config{PageSize: 1024, WALDir: t.TempDir(), AutoFlushOps: -1}
	db1 := buildIngestDB(t, cfg, objs, sets)
	shadow := newIngestShadow(objs, sets)
	step := func(n int) {
		muts := randomMutations(rng, shadow, n)
		if err := db1.Apply(muts); err != nil {
			t.Fatal(err)
		}
		for _, m := range muts {
			shadow.apply(m)
		}
	}
	step(12)
	if err := db1.Checkpoint(saveDir); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	step(9) // the tail only the WAL knows about

	// The torn second checkpoint: generation-stamped page dumps landed, the
	// manifest rename did not. Garbage contents prove they are never read.
	orphans := []string{
		fmt.Sprintf("objects.%016x.pages", uint64(1)<<40),
		fmt.Sprintf("features_0.%016x.pages", uint64(1)<<40),
	}
	for _, name := range orphans {
		if err := os.WriteFile(filepath.Join(saveDir, name), []byte("torn checkpoint"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	db2, err := Open(saveDir)
	if err != nil {
		t.Fatalf("Open with orphaned page dumps: %v", err)
	}
	if got := db2.Metrics().Counters["stpq_ingest_replayed_total"]; got != 9 {
		t.Fatalf("replayed %d mutations, want 9", got)
	}
	assertSameTopK(t, "after torn checkpoint", db2, shadow.oracle(t, cfg), rng)

	// A completed checkpoint sweeps the orphans.
	if err := db2.Checkpoint(saveDir); err != nil {
		t.Fatalf("second Checkpoint: %v", err)
	}
	for _, name := range orphans {
		if _, err := os.Stat(filepath.Join(saveDir, name)); !os.IsNotExist(err) {
			t.Fatalf("orphaned page dump %s survived the next checkpoint (err=%v)", name, err)
		}
	}
	// And the recovered-from-recovered state still opens exactly.
	db3, err := Open(saveDir)
	if err != nil {
		t.Fatalf("Open after second checkpoint: %v", err)
	}
	assertSameTopK(t, "after second checkpoint", db3, shadow.oracle(t, cfg), rng)
}

// TestCheckpointDoesNotBlockApply runs Apply and Checkpoint concurrently:
// the disk phase works from a pinned generation with no DB locks held, so
// writes keep flowing mid-checkpoint, every checkpoint is a consistent
// prefix, and the final recovery (snapshot + WAL tail) is oracle-exact.
// Run under -race this also proves the pinned pages are never written.
func TestCheckpointDoesNotBlockApply(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	objs, sets := ingestSeedData(rng, 150, 80)
	saveDir := t.TempDir()
	cfg := Config{PageSize: 1024, WALDir: t.TempDir(), AutoFlushOps: -1}
	db := buildIngestDB(t, cfg, objs, sets)
	shadow := newIngestShadow(objs, sets)

	// Pre-generate the batches so the writer goroutine never touches the
	// shadow (which the main goroutine owns).
	batches := make([][]Mutation, 20)
	for i := range batches {
		batches[i] = randomMutations(rng, shadow, 6)
		for _, m := range batches[i] {
			shadow.apply(m)
		}
	}
	var wg sync.WaitGroup
	wg.Add(2)
	errc := make(chan error, 8)
	go func() {
		defer wg.Done()
		for _, b := range batches {
			if err := db.Apply(b); err != nil {
				errc <- fmt.Errorf("Apply: %w", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			if err := db.Checkpoint(saveDir); err != nil {
				errc <- fmt.Errorf("Checkpoint %d: %w", i, err)
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	assertSameTopK(t, "live after concurrent checkpoints", db, shadow.oracle(t, cfg), rng)

	db2, err := Open(saveDir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	assertSameTopK(t, "recovered after concurrent checkpoints", db2, shadow.oracle(t, cfg), rng)
}

// TestMergeAutoDegradationFallback pins the MergeAuto heuristic from both
// sides: a small batch merges partially, and a pending set larger than the
// drift ratio allows forces the full rebuild that re-packs the trees.
func TestMergeAutoDegradationFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	objs, sets := ingestSeedData(rng, 60, 40)
	cfg := Config{PageSize: 1024, WALDir: t.TempDir(), AutoFlushOps: -1}
	db := buildIngestDB(t, cfg, objs, sets)
	shadow := newIngestShadow(objs, sets)

	flushStep(t, db, shadow, rng, 10)
	m := db.Metrics().Counters
	if m["stpq_ingest_partial_merges_total"] != 1 || m["stpq_ingest_full_rebuilds_total"] != 0 {
		t.Fatalf("small flush: partial=%d full=%d, want 1/0",
			m["stpq_ingest_partial_merges_total"], m["stpq_ingest_full_rebuilds_total"])
	}

	// ~300 net ops against ~160 live entries is far past the default 0.5
	// drift ratio; MergeAuto must rebuild instead of merging.
	muts := randomMutations(rng, shadow, 400)
	if err := db.Apply(muts); err != nil {
		t.Fatal(err)
	}
	for _, mu := range muts {
		shadow.apply(mu)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	m = db.Metrics().Counters
	if m["stpq_ingest_full_rebuilds_total"] == 0 {
		t.Fatalf("oversized flush did not fall back: partial=%d full=%d",
			m["stpq_ingest_partial_merges_total"], m["stpq_ingest_full_rebuilds_total"])
	}
	assertSameTopK(t, "after fallback rebuild", db, shadow.oracle(t, cfg), rng)

	// The rebuild reset the drift accounting: the next small flush is
	// incremental again.
	flushStep(t, db, shadow, rng, 8)
	m2 := db.Metrics().Counters
	if m2["stpq_ingest_partial_merges_total"] != m["stpq_ingest_partial_merges_total"]+1 {
		t.Fatalf("post-rebuild flush not partial: partial=%d full=%d",
			m2["stpq_ingest_partial_merges_total"], m2["stpq_ingest_full_rebuilds_total"])
	}
	assertSameTopK(t, "after post-rebuild merge", db, shadow.oracle(t, cfg), rng)
}

// TestBackpressureStallsWrites: with the compactor wedged shut (gate
// always saturated, watermark 1 so runs seal constantly), the run count
// hits MaxRuns and Apply merges synchronously, counting a write stall.
func TestBackpressureStallsWrites(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	objs, sets := ingestSeedData(rng, 150, 80)
	cfg := Config{PageSize: 1024, WALDir: t.TempDir(),
		AutoFlushOps: 6, BackgroundCompaction: true, CompactRuns: 1, MaxRuns: 2}
	db := buildIngestDB(t, cfg, objs, sets)
	defer db.CloseWAL()
	// A permanently-saturated gate parks the compactor at its pacing
	// points, letting runs accumulate to the cap deterministically enough
	// to observe at least one stall.
	db.SetCompactionGate(func() bool { return true })
	shadow := newIngestShadow(objs, sets)
	deadline := time.Now().Add(10 * time.Second)
	for db.Metrics().Counters["stpq_ingest_write_stalls_total"] == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no write stall observed; runs=%d", db.Runs())
		}
		muts := randomMutations(rng, shadow, 8)
		if err := db.Apply(muts); err != nil {
			t.Fatal(err)
		}
		for _, m := range muts {
			shadow.apply(m)
		}
	}
	db.SetCompactionGate(nil)
	assertSameTopK(t, "after backpressure stall", db, shadow.oracle(t, cfg), rng)
}

// TestCheckpointFileGenNames pins the atomic-checkpoint layout: page dumps
// carry the generation stamp the manifest names, so successive checkpoints
// never overwrite each other's files in place.
func TestCheckpointFileGenNames(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	objs, sets := ingestSeedData(rng, 80, 50)
	saveDir := t.TempDir()
	cfg := Config{PageSize: 1024, WALDir: t.TempDir(), AutoFlushOps: -1}
	db := buildIngestDB(t, cfg, objs, sets)
	shadow := newIngestShadow(objs, sets)
	muts := randomMutations(rng, shadow, 6)
	if err := db.Apply(muts); err != nil {
		t.Fatal(err)
	}
	for _, m := range muts {
		shadow.apply(m)
	}
	if err := db.Checkpoint(saveDir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(saveDir)
	if err != nil {
		t.Fatal(err)
	}
	var pages []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".pages") {
			pages = append(pages, e.Name())
		}
	}
	want := pageFile("objects", db.WALSeq())
	found := false
	for _, p := range pages {
		if p == want {
			found = true
		}
		if p == "objects.pages" || strings.Count(p, ".") != 2 {
			t.Fatalf("checkpoint wrote unstamped page dump %q (all: %v)", p, pages)
		}
	}
	if !found {
		t.Fatalf("checkpoint page dumps %v missing %q", pages, want)
	}
}
