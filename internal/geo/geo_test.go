package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointDist(t *testing.T) {
	tests := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1, 1}, Point{1, 1}, 0},
		{Point{-1, 0}, Point{1, 0}, 2},
		{Point{0.5, 0.5}, Point{0.5, 0.75}, 0.25},
	}
	for _, tc := range tests {
		if got := tc.p.Dist(tc.q); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Dist(%v,%v) = %v, want %v", tc.p, tc.q, got, tc.want)
		}
		if got := tc.p.Dist2(tc.q); math.Abs(got-tc.want*tc.want) > 1e-12 {
			t.Errorf("Dist2(%v,%v) = %v, want %v", tc.p, tc.q, got, tc.want*tc.want)
		}
	}
}

func TestDistSymmetryProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := Point{clamp01(ax), clamp01(ay)}, Point{clamp01(bx), clamp01(by)}
		return math.Abs(a.Dist(b)-b.Dist(a)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a := Point{clamp01(ax), clamp01(ay)}
		b := Point{clamp01(bx), clamp01(by)}
		c := Point{clamp01(cx), clamp01(cy)}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func clamp01(v float64) float64 {
	v = math.Abs(v)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0.5
	}
	return v - math.Floor(v)
}

func TestRectUnionContains(t *testing.T) {
	r := RectOf(Point{0.2, 0.3})
	s := RectOf(Point{0.8, 0.1})
	u := r.Union(s)
	if !u.Contains(Point{0.2, 0.3}) || !u.Contains(Point{0.8, 0.1}) {
		t.Fatalf("union %v does not contain inputs", u)
	}
	if u.Min.X != 0.2 || u.Min.Y != 0.1 || u.Max.X != 0.8 || u.Max.Y != 0.3 {
		t.Fatalf("unexpected union %v", u)
	}
}

func TestEmptyRectIdentity(t *testing.T) {
	e := EmptyRect()
	if !e.IsEmpty() {
		t.Fatal("EmptyRect should be empty")
	}
	r := Rect{Point{0.1, 0.2}, Point{0.5, 0.6}}
	if got := e.Union(r); got != r {
		t.Fatalf("EmptyRect.Union(%v) = %v", r, got)
	}
	if got := r.Union(e); got != r {
		t.Fatalf("r.Union(EmptyRect) = %v", got)
	}
	if e.Area() != 0 || e.Perimeter() != 0 {
		t.Fatal("empty rect must have zero area and perimeter")
	}
}

func TestRectIntersects(t *testing.T) {
	a := Rect{Point{0, 0}, Point{1, 1}}
	tests := []struct {
		b    Rect
		want bool
	}{
		{Rect{Point{0.5, 0.5}, Point{2, 2}}, true},
		{Rect{Point{1, 1}, Point{2, 2}}, true}, // touching corner
		{Rect{Point{1.1, 0}, Point{2, 1}}, false},
		{Rect{Point{0, 1.1}, Point{1, 2}}, false},
		{Rect{Point{0.25, 0.25}, Point{0.75, 0.75}}, true}, // contained
	}
	for _, tc := range tests {
		if got := a.Intersects(tc.b); got != tc.want {
			t.Errorf("Intersects(%v) = %v, want %v", tc.b, got, tc.want)
		}
		if got := tc.b.Intersects(a); got != tc.want {
			t.Errorf("symmetric Intersects(%v) = %v, want %v", tc.b, got, tc.want)
		}
	}
}

func TestMinMaxDist(t *testing.T) {
	r := Rect{Point{0.25, 0.25}, Point{0.75, 0.75}}
	// Point inside: mindist 0.
	if d := r.MinDist(Point{0.5, 0.5}); d != 0 {
		t.Errorf("MinDist inside = %v", d)
	}
	// Point left of rect.
	if d := r.MinDist(Point{0, 0.5}); math.Abs(d-0.25) > 1e-12 {
		t.Errorf("MinDist left = %v, want 0.25", d)
	}
	// Diagonal.
	if d := r.MinDist(Point{0, 0}); math.Abs(d-math.Hypot(0.25, 0.25)) > 1e-12 {
		t.Errorf("MinDist diag = %v", d)
	}
	// MaxDist from corner.
	if d := r.MaxDist(Point{0, 0}); math.Abs(d-math.Hypot(0.75, 0.75)) > 1e-12 {
		t.Errorf("MaxDist = %v", d)
	}
}

// MinDist must lower-bound the distance to every point inside the rect, and
// MaxDist must upper-bound it — the correctness contract the R-tree pruning
// relies on.
func TestMinMaxDistBoundProperty(t *testing.T) {
	f := func(px, py, ax, ay, bx, by, ix, iy float64) bool {
		p := Point{clamp01(px), clamp01(py)}
		a := Point{clamp01(ax), clamp01(ay)}
		b := Point{clamp01(bx), clamp01(by)}
		r := RectOf(a).Extend(b)
		// Interior point via interpolation.
		q := Point{
			r.Min.X + clamp01(ix)*(r.Max.X-r.Min.X),
			r.Min.Y + clamp01(iy)*(r.Max.Y-r.Min.Y),
		}
		d := p.Dist(q)
		return r.MinDist(p) <= d+1e-9 && r.MaxDist(p) >= d-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRectMinDist(t *testing.T) {
	a := Rect{Point{0, 0}, Point{0.2, 0.2}}
	b := Rect{Point{0.5, 0}, Point{0.7, 0.2}}
	if d := RectMinDist(a, b); math.Abs(d-0.3) > 1e-12 {
		t.Errorf("RectMinDist = %v, want 0.3", d)
	}
	c := Rect{Point{0.1, 0.1}, Point{0.6, 0.6}}
	if d := RectMinDist(a, c); d != 0 {
		t.Errorf("overlapping RectMinDist = %v, want 0", d)
	}
	dgl := Rect{Point{0.5, 0.5}, Point{0.9, 0.9}}
	if d := RectMinDist(a, dgl); math.Abs(d-math.Hypot(0.3, 0.3)) > 1e-12 {
		t.Errorf("diagonal RectMinDist = %v", d)
	}
}

func TestQuantize(t *testing.T) {
	if Quantize(0, 16) != 0 {
		t.Error("Quantize(0) != 0")
	}
	if Quantize(1, 16) != 65535 {
		t.Error("Quantize(1) != 65535")
	}
	if Quantize(-5, 16) != 0 || Quantize(7, 16) != 65535 {
		t.Error("Quantize must clamp out-of-range values")
	}
	if Quantize(0.5, 1) != 1 && Quantize(0.5, 1) != 0 {
		t.Error("Quantize(0.5,1) out of range")
	}
	// Monotonicity.
	prev := uint32(0)
	for v := 0.0; v <= 1.0; v += 0.001 {
		q := Quantize(v, 16)
		if q < prev {
			t.Fatalf("Quantize not monotone at %v", v)
		}
		prev = q
	}
}

func TestRectCenterAreaPerimeter(t *testing.T) {
	r := Rect{Point{0.1, 0.2}, Point{0.5, 0.4}}
	if c := r.Center(); math.Abs(c.X-0.3) > 1e-12 || math.Abs(c.Y-0.3) > 1e-12 {
		t.Errorf("Center = %v", c)
	}
	if a := r.Area(); math.Abs(a-0.08) > 1e-12 {
		t.Errorf("Area = %v", a)
	}
	if p := r.Perimeter(); math.Abs(p-0.6) > 1e-12 {
		t.Errorf("Perimeter = %v", p)
	}
}

func TestContainsRect(t *testing.T) {
	outer := Rect{Point{0, 0}, Point{1, 1}}
	inner := Rect{Point{0.2, 0.2}, Point{0.8, 0.8}}
	if !outer.ContainsRect(inner) {
		t.Error("outer should contain inner")
	}
	if inner.ContainsRect(outer) {
		t.Error("inner should not contain outer")
	}
	if !outer.ContainsRect(outer) {
		t.Error("rect should contain itself")
	}
}
