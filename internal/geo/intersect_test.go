package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEdgeHalfPlaneLeftSide(t *testing.T) {
	a, b := Point{0, 0}, Point{1, 0}
	h := EdgeHalfPlane(a, b)
	if !h.Contains(Point{0.5, 0.5}) {
		t.Error("point above edge (left of a→b) must be inside")
	}
	if h.Contains(Point{0.5, -0.5}) {
		t.Error("point below edge must be outside")
	}
	if !h.Contains(Point{0.5, 0}) {
		t.Error("boundary must be inclusive")
	}
}

// The interior of a CCW convex polygon equals the intersection of its edge
// half-planes.
func TestEdgeHalfPlaneMatchesContains(t *testing.T) {
	pg := Polygon{Vertices: []Point{{0.2, 0.2}, {0.8, 0.3}, {0.7, 0.8}, {0.3, 0.7}}}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		p := Point{rng.Float64(), rng.Float64()}
		inAll := true
		n := len(pg.Vertices)
		for j := 0; j < n; j++ {
			if !EdgeHalfPlane(pg.Vertices[j], pg.Vertices[(j+1)%n]).Contains(p) {
				inAll = false
				break
			}
		}
		if inAll != pg.Contains(p) {
			t.Fatalf("half-plane membership %v disagrees with Contains for %v", inAll, p)
		}
	}
}

func TestIntersectConvexSquares(t *testing.T) {
	a := NewBox(Rect{Point{0, 0}, Point{0.6, 0.6}})
	b := NewBox(Rect{Point{0.4, 0.4}, Point{1, 1}})
	got := a.IntersectConvex(b)
	if got.IsEmpty() {
		t.Fatal("overlapping squares must intersect")
	}
	if area := got.Area(); math.Abs(area-0.04) > 1e-9 {
		t.Errorf("intersection area = %v, want 0.04", area)
	}
	bounds := got.Bounds()
	want := Rect{Point{0.4, 0.4}, Point{0.6, 0.6}}
	if math.Abs(bounds.Min.X-want.Min.X) > 1e-9 || math.Abs(bounds.Max.Y-want.Max.Y) > 1e-9 {
		t.Errorf("bounds = %v, want %v", bounds, want)
	}
}

func TestIntersectConvexDisjoint(t *testing.T) {
	a := NewBox(Rect{Point{0, 0}, Point{0.3, 0.3}})
	b := NewBox(Rect{Point{0.5, 0.5}, Point{1, 1}})
	if got := a.IntersectConvex(b); !got.IsEmpty() {
		t.Errorf("disjoint squares must have empty intersection, got %v", got.Vertices)
	}
	if got := (Polygon{}).IntersectConvex(a); !got.IsEmpty() {
		t.Error("empty ∩ anything must be empty")
	}
	if got := a.IntersectConvex(Polygon{}); !got.IsEmpty() {
		t.Error("anything ∩ empty must be empty")
	}
}

// Property: a point is in the intersection iff it is in both polygons.
func TestIntersectConvexMembershipProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewBox(randRect(rng))
		b := NewBox(randRect(rng))
		inter := a.IntersectConvex(b)
		for i := 0; i < 50; i++ {
			p := Point{rng.Float64(), rng.Float64()}
			want := a.Contains(p) && b.Contains(p)
			got := inter.Contains(p)
			// Allow boundary jitter: skip points within eps of any edge.
			if want != got {
				if nearBoundary(a, p) || nearBoundary(b, p) {
					continue
				}
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func randRect(rng *rand.Rand) Rect {
	a := Point{rng.Float64(), rng.Float64()}
	b := Point{rng.Float64(), rng.Float64()}
	r := RectOf(a).Extend(b)
	// Avoid degenerate slivers.
	if r.Max.X-r.Min.X < 0.05 {
		r.Max.X = r.Min.X + 0.05
	}
	if r.Max.Y-r.Min.Y < 0.05 {
		r.Max.Y = r.Min.Y + 0.05
	}
	return r
}

func nearBoundary(pg Polygon, p Point) bool {
	n := len(pg.Vertices)
	for i := 0; i < n; i++ {
		a, b := pg.Vertices[i], pg.Vertices[(i+1)%n]
		h := EdgeHalfPlane(a, b)
		if math.Abs(h.Eval(p)) < 1e-6 {
			return true
		}
	}
	return false
}

func TestIntersectConvexCommutesOnArea(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		a := NewBox(randRect(rng))
		b := NewBox(randRect(rng))
		ab := a.IntersectConvex(b).Area()
		ba := b.IntersectConvex(a).Area()
		if math.Abs(ab-ba) > 1e-9 {
			t.Fatalf("areas differ: %v vs %v", ab, ba)
		}
	}
}
