package geo

import "math"

// HalfPlane represents the set of points q with A·q.X + B·q.Y ≤ C.
//
// The perpendicular bisector between two sites a and b, keeping the side of
// a, is the canonical half-plane used by the incremental Voronoi-cell
// construction of the nearest-neighbor query variant (paper Section 7.2).
type HalfPlane struct {
	A, B, C float64
}

// Bisector returns the half-plane of points at least as close to a as to b.
func Bisector(a, b Point) HalfPlane {
	// |q-a|² ≤ |q-b|²  ⇔  2(b-a)·q ≤ |b|² − |a|²
	return HalfPlane{
		A: 2 * (b.X - a.X),
		B: 2 * (b.Y - a.Y),
		C: b.X*b.X + b.Y*b.Y - a.X*a.X - a.Y*a.Y,
	}
}

// Eval returns A·p.X + B·p.Y − C; non-positive values are inside.
func (h HalfPlane) Eval(p Point) float64 { return h.A*p.X + h.B*p.Y - h.C }

// Contains reports whether p satisfies the half-plane inequality.
func (h HalfPlane) Contains(p Point) bool { return h.Eval(p) <= hpEps }

// hpEps guards against floating point jitter when clipping polygons whose
// vertices lie exactly on a bisector.
const hpEps = 1e-12

// Polygon is a convex polygon given by its vertices in counter-clockwise
// order. The zero value is the empty polygon.
type Polygon struct {
	Vertices []Point
}

// UnitSquare returns the polygon covering the normalized data space.
func UnitSquare() Polygon {
	return Polygon{Vertices: []Point{{0, 0}, {1, 0}, {1, 1}, {0, 1}}}
}

// NewBox returns the rectangle r as a polygon.
func NewBox(r Rect) Polygon {
	return Polygon{Vertices: []Point{
		r.Min, {r.Max.X, r.Min.Y}, r.Max, {r.Min.X, r.Max.Y},
	}}
}

// IsEmpty reports whether the polygon has no interior (fewer than 3 vertices).
func (pg Polygon) IsEmpty() bool { return len(pg.Vertices) < 3 }

// Clip returns the intersection of pg with the half-plane h, using the
// Sutherland–Hodgman algorithm specialized to a single clip edge. The result
// is again convex. Clipping an empty polygon yields an empty polygon.
func (pg Polygon) Clip(h HalfPlane) Polygon {
	n := len(pg.Vertices)
	if n == 0 {
		return Polygon{}
	}
	out := make([]Point, 0, n+1)
	prev := pg.Vertices[n-1]
	prevIn := h.Contains(prev)
	for _, cur := range pg.Vertices {
		curIn := h.Contains(cur)
		if curIn != prevIn {
			out = append(out, h.segIntersect(prev, cur))
		}
		if curIn {
			out = append(out, cur)
		}
		prev, prevIn = cur, curIn
	}
	if len(out) < 3 {
		return Polygon{}
	}
	return Polygon{Vertices: out}
}

// segIntersect returns the point where segment ab crosses the boundary line
// of h. It must only be called when a and b are on opposite sides.
func (h HalfPlane) segIntersect(a, b Point) Point {
	fa, fb := h.Eval(a), h.Eval(b)
	t := fa / (fa - fb)
	if math.IsNaN(t) || math.IsInf(t, 0) {
		t = 0.5
	}
	return Point{a.X + t*(b.X-a.X), a.Y + t*(b.Y-a.Y)}
}

// Contains reports whether p lies inside the convex polygon (boundary
// inclusive). Vertices must be in counter-clockwise order.
func (pg Polygon) Contains(p Point) bool {
	n := len(pg.Vertices)
	if n < 3 {
		return false
	}
	for i := 0; i < n; i++ {
		a, b := pg.Vertices[i], pg.Vertices[(i+1)%n]
		if b.Sub(a).Cross(p.Sub(a)) < -hpEps {
			return false
		}
	}
	return true
}

// Bounds returns the bounding rectangle of the polygon, or an empty Rect
// for an empty polygon.
func (pg Polygon) Bounds() Rect {
	if len(pg.Vertices) == 0 {
		return EmptyRect()
	}
	r := RectOf(pg.Vertices[0])
	for _, v := range pg.Vertices[1:] {
		r = r.Extend(v)
	}
	return r
}

// MaxDist returns the maximum distance from p to any vertex of pg. For a
// convex polygon this equals the maximum distance from p to any point of
// the polygon, which drives the Voronoi construction's stopping rule.
func (pg Polygon) MaxDist(p Point) float64 {
	max := 0.0
	for _, v := range pg.Vertices {
		if d := p.Dist(v); d > max {
			max = d
		}
	}
	return max
}

// Area returns the area of the polygon (shoelace formula).
func (pg Polygon) Area() float64 {
	n := len(pg.Vertices)
	if n < 3 {
		return 0
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += pg.Vertices[i].Cross(pg.Vertices[(i+1)%n])
	}
	return math.Abs(sum) / 2
}

// IntersectsRect reports whether the convex polygon and the rectangle share
// at least one point. It applies the separating-axis test over the four
// rectangle edges and the polygon edges.
func (pg Polygon) IntersectsRect(r Rect) bool {
	if pg.IsEmpty() {
		return false
	}
	// Quick accept: any polygon vertex inside r, or any rect corner inside pg.
	for _, v := range pg.Vertices {
		if r.Contains(v) {
			return true
		}
	}
	corners := [4]Point{r.Min, {r.Max.X, r.Min.Y}, r.Max, {r.Min.X, r.Max.Y}}
	for _, c := range corners {
		if pg.Contains(c) {
			return true
		}
	}
	// Edge-edge intersection.
	n := len(pg.Vertices)
	for i := 0; i < n; i++ {
		a, b := pg.Vertices[i], pg.Vertices[(i+1)%n]
		for j := 0; j < 4; j++ {
			c, d := corners[j], corners[(j+1)%4]
			if segmentsIntersect(a, b, c, d) {
				return true
			}
		}
	}
	return false
}

// EdgeHalfPlane returns the half-plane to the left of the directed edge
// a→b. For a convex polygon with counter-clockwise vertices, the interior
// is the intersection of the half-planes of its edges.
func EdgeHalfPlane(a, b Point) HalfPlane {
	// Left of a→b: (b−a) × (q−a) ≥ 0  ⇔  (b.Y−a.Y)q.X − (b.X−a.X)q.Y ≤ b.Y·a.X − ... derive:
	// cross = (b.X−a.X)(q.Y−a.Y) − (b.Y−a.Y)(q.X−a.X) ≥ 0
	// ⇔ (b.Y−a.Y)q.X − (b.X−a.X)q.Y ≤ (b.Y−a.Y)a.X − (b.X−a.X)a.Y
	return HalfPlane{
		A: b.Y - a.Y,
		B: -(b.X - a.X),
		C: (b.Y-a.Y)*a.X - (b.X-a.X)*a.Y,
	}
}

// IntersectConvex returns the intersection of two convex polygons (both
// with counter-clockwise vertices) by clipping pg against every edge
// half-plane of other. It is used to intersect Voronoi cells across
// feature sets (paper Section 7.2).
func (pg Polygon) IntersectConvex(other Polygon) Polygon {
	if pg.IsEmpty() || other.IsEmpty() {
		return Polygon{}
	}
	out := pg
	n := len(other.Vertices)
	for i := 0; i < n; i++ {
		a, b := other.Vertices[i], other.Vertices[(i+1)%n]
		out = out.Clip(EdgeHalfPlane(a, b))
		if out.IsEmpty() {
			return Polygon{}
		}
	}
	return out
}

// segmentsIntersect reports whether segments ab and cd intersect.
func segmentsIntersect(a, b, c, d Point) bool {
	d1 := b.Sub(a).Cross(c.Sub(a))
	d2 := b.Sub(a).Cross(d.Sub(a))
	d3 := d.Sub(c).Cross(a.Sub(c))
	d4 := d.Sub(c).Cross(b.Sub(c))
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	return onSegment(a, b, c) || onSegment(a, b, d) ||
		onSegment(c, d, a) || onSegment(c, d, b)
}

// onSegment reports whether p lies on segment ab.
func onSegment(a, b, p Point) bool {
	if math.Abs(b.Sub(a).Cross(p.Sub(a))) > hpEps {
		return false
	}
	return p.X >= math.Min(a.X, b.X)-hpEps && p.X <= math.Max(a.X, b.X)+hpEps &&
		p.Y >= math.Min(a.Y, b.Y)-hpEps && p.Y <= math.Max(a.Y, b.Y)+hpEps
}
