package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBisectorContains(t *testing.T) {
	a, b := Point{0.2, 0.5}, Point{0.8, 0.5}
	h := Bisector(a, b)
	if !h.Contains(a) {
		t.Error("bisector must contain its own site")
	}
	if h.Contains(Point{0.9, 0.5}) {
		t.Error("bisector must exclude points closer to b")
	}
	// Midpoint is on the boundary (inclusive).
	if !h.Contains(a.Mid(b)) {
		t.Error("midpoint should be boundary-inclusive")
	}
}

// Property: q is in Bisector(a,b) iff dist(q,a) ≤ dist(q,b) (up to eps).
func TestBisectorDefinitionProperty(t *testing.T) {
	f := func(ax, ay, bx, by, qx, qy float64) bool {
		a := Point{clamp01(ax), clamp01(ay)}
		b := Point{clamp01(bx), clamp01(by)}
		q := Point{clamp01(qx), clamp01(qy)}
		if a == b {
			return true
		}
		in := Bisector(a, b).Contains(q)
		closer := q.Dist2(a) <= q.Dist2(b)+1e-9
		if in && !closer {
			return false
		}
		farther := q.Dist2(a) >= q.Dist2(b)-1e-9
		if !in && !farther {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestClipUnitSquare(t *testing.T) {
	sq := UnitSquare()
	// Clip with the half-plane x ≤ 0.5.
	h := HalfPlane{A: 1, B: 0, C: 0.5}
	half := sq.Clip(h)
	if half.IsEmpty() {
		t.Fatal("clip should not be empty")
	}
	if got := half.Area(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("clipped area = %v, want 0.5", got)
	}
	if !half.Contains(Point{0.25, 0.5}) || half.Contains(Point{0.75, 0.5}) {
		t.Error("wrong side kept after clip")
	}
}

func TestClipToEmpty(t *testing.T) {
	sq := UnitSquare()
	// x ≤ −1 excludes the whole square.
	h := HalfPlane{A: 1, B: 0, C: -1}
	if got := sq.Clip(h); !got.IsEmpty() {
		t.Errorf("expected empty polygon, got %v vertices", len(got.Vertices))
	}
	// Clipping an empty polygon stays empty.
	if got := (Polygon{}).Clip(h); !got.IsEmpty() {
		t.Error("clip of empty polygon must remain empty")
	}
}

func TestRepeatedClipsShrinkArea(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pg := UnitSquare()
	site := Point{0.5, 0.5}
	prev := pg.Area()
	for i := 0; i < 50; i++ {
		other := Point{rng.Float64(), rng.Float64()}
		if other == site {
			continue
		}
		pg = pg.Clip(Bisector(site, other))
		a := pg.Area()
		if a > prev+1e-9 {
			t.Fatalf("area grew after clip: %v -> %v", prev, a)
		}
		prev = a
		if !pg.IsEmpty() && !pg.Contains(site) {
			t.Fatal("site must stay inside its own Voronoi cell")
		}
	}
	if pg.IsEmpty() {
		t.Fatal("cell of an interior site should not be empty")
	}
}

// Property: after clipping the unit square by bisectors of `site` versus a
// few random other sites, every vertex of the result is at least as close to
// site as to each other site — i.e. the polygon is inside the Voronoi cell.
func TestClipVoronoiCellProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		site := Point{rng.Float64(), rng.Float64()}
		pg := UnitSquare()
		others := make([]Point, 0, 8)
		for i := 0; i < 8; i++ {
			o := Point{rng.Float64(), rng.Float64()}
			if o == site {
				continue
			}
			others = append(others, o)
			pg = pg.Clip(Bisector(site, o))
		}
		for _, v := range pg.Vertices {
			for _, o := range others {
				if v.Dist2(site) > v.Dist2(o)+1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPolygonContains(t *testing.T) {
	sq := UnitSquare()
	if !sq.Contains(Point{0.5, 0.5}) {
		t.Error("center must be inside")
	}
	if !sq.Contains(Point{0, 0}) {
		t.Error("corner must be boundary-inclusive")
	}
	if sq.Contains(Point{1.1, 0.5}) {
		t.Error("outside point must be excluded")
	}
	if (Polygon{}).Contains(Point{0.5, 0.5}) {
		t.Error("empty polygon contains nothing")
	}
}

func TestPolygonBoundsAndMaxDist(t *testing.T) {
	sq := UnitSquare()
	b := sq.Bounds()
	if b.Min != (Point{0, 0}) || b.Max != (Point{1, 1}) {
		t.Errorf("Bounds = %v", b)
	}
	if d := sq.MaxDist(Point{0, 0}); math.Abs(d-math.Sqrt2) > 1e-12 {
		t.Errorf("MaxDist = %v, want sqrt(2)", d)
	}
	if !(Polygon{}).Bounds().IsEmpty() {
		t.Error("empty polygon bounds must be empty")
	}
}

func TestNewBoxRoundTrip(t *testing.T) {
	r := Rect{Point{0.1, 0.2}, Point{0.6, 0.9}}
	pg := NewBox(r)
	if got := pg.Bounds(); got != r {
		t.Errorf("NewBox bounds = %v, want %v", got, r)
	}
	if math.Abs(pg.Area()-r.Area()) > 1e-12 {
		t.Errorf("NewBox area mismatch")
	}
}

func TestIntersectsRect(t *testing.T) {
	tri := Polygon{Vertices: []Point{{0.4, 0.4}, {0.6, 0.4}, {0.5, 0.6}}}
	tests := []struct {
		r    Rect
		want bool
	}{
		{Rect{Point{0, 0}, Point{1, 1}}, true},           // rect contains polygon
		{Rect{Point{0.45, 0.45}, Point{0.5, 0.5}}, true}, // rect inside polygon
		{Rect{Point{0.7, 0.7}, Point{0.9, 0.9}}, false},  // disjoint
		{Rect{Point{0.55, 0.3}, Point{0.9, 0.45}}, true}, // edge crossing
		{Rect{Point{0, 0}, Point{0.4, 0.4}}, true},       // touching corner
	}
	for i, tc := range tests {
		if got := tri.IntersectsRect(tc.r); got != tc.want {
			t.Errorf("case %d: IntersectsRect(%v) = %v, want %v", i, tc.r, got, tc.want)
		}
	}
	if (Polygon{}).IntersectsRect(Rect{Point{0, 0}, Point{1, 1}}) {
		t.Error("empty polygon intersects nothing")
	}
}

func TestPolygonAreaTriangle(t *testing.T) {
	tri := Polygon{Vertices: []Point{{0, 0}, {1, 0}, {0, 1}}}
	if a := tri.Area(); math.Abs(a-0.5) > 1e-12 {
		t.Errorf("triangle area = %v, want 0.5", a)
	}
}
