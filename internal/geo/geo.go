// Package geo provides the planar geometry substrate used throughout the
// stpq library: points, axis-aligned rectangles (MBRs), Euclidean distance
// primitives, and the half-plane / convex-polygon machinery needed for the
// incremental Voronoi-cell computation of the nearest-neighbor query
// variant.
//
// All coordinates are normalized to the unit square [0,1]×[0,1], matching
// the experimental setup of the paper (Section 8.1).
package geo

import (
	"fmt"
	"math"
)

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root and is the preferred primitive for comparisons.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Mid returns the midpoint of the segment pq.
func (p Point) Mid(q Point) Point {
	return Point{(p.X + q.X) / 2, (p.Y + q.Y) / 2}
}

// Sub returns the vector p−q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Add returns the vector sum p+q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Scale returns p scaled by f.
func (p Point) Scale(f float64) Point { return Point{p.X * f, p.Y * f} }

// Dot returns the dot product of p and q viewed as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the cross product p×q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.6g, %.6g)", p.X, p.Y) }

// Rect is an axis-aligned rectangle, used as a minimum bounding rectangle
// (MBR) by the spatial indexes. A Rect is valid when Min.X ≤ Max.X and
// Min.Y ≤ Max.Y; the zero value of Rect is the degenerate rectangle at the
// origin.
type Rect struct {
	Min, Max Point
}

// RectOf returns the degenerate rectangle covering exactly p.
func RectOf(p Point) Rect { return Rect{p, p} }

// EmptyRect returns an "inside-out" rectangle that acts as the identity for
// Union: unioning it with any rectangle r yields r.
func EmptyRect() Rect {
	return Rect{
		Min: Point{math.Inf(1), math.Inf(1)},
		Max: Point{math.Inf(-1), math.Inf(-1)},
	}
}

// IsEmpty reports whether r is an inside-out (empty) rectangle.
func (r Rect) IsEmpty() bool { return r.Min.X > r.Max.X || r.Min.Y > r.Max.Y }

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// Extend returns the smallest rectangle containing r and the point p.
func (r Rect) Extend(p Point) Rect { return r.Union(RectOf(p)) }

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	return s.Min.X >= r.Min.X && s.Max.X <= r.Max.X &&
		s.Min.Y >= r.Min.Y && s.Max.Y <= r.Max.Y
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// Area returns the area of r. Empty rectangles have area 0.
func (r Rect) Area() float64 {
	if r.IsEmpty() {
		return 0
	}
	return (r.Max.X - r.Min.X) * (r.Max.Y - r.Min.Y)
}

// Perimeter returns half the perimeter (the margin) of r.
func (r Rect) Perimeter() float64 {
	if r.IsEmpty() {
		return 0
	}
	return (r.Max.X - r.Min.X) + (r.Max.Y - r.Min.Y)
}

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// MinDist returns the minimum Euclidean distance from p to any point of r;
// it is 0 when p lies inside r. This is the classic R-tree MINDIST bound.
func (r Rect) MinDist(p Point) float64 {
	return math.Sqrt(r.MinDist2(p))
}

// MinDist2 returns the squared minimum distance from p to r.
func (r Rect) MinDist2(p Point) float64 {
	dx := axisDist(p.X, r.Min.X, r.Max.X)
	dy := axisDist(p.Y, r.Min.Y, r.Max.Y)
	return dx*dx + dy*dy
}

// MaxDist returns the maximum Euclidean distance from p to any point of r.
func (r Rect) MaxDist(p Point) float64 {
	return math.Sqrt(r.MaxDist2(p))
}

// MaxDist2 returns the squared maximum distance from p to r.
func (r Rect) MaxDist2(p Point) float64 {
	dx := math.Max(math.Abs(p.X-r.Min.X), math.Abs(p.X-r.Max.X))
	dy := math.Max(math.Abs(p.Y-r.Min.Y), math.Abs(p.Y-r.Max.Y))
	return dx*dx + dy*dy
}

// RectMinDist returns the minimum distance between any point of r and any
// point of s; it is 0 when the rectangles intersect.
func RectMinDist(r, s Rect) float64 {
	dx := gapDist(r.Min.X, r.Max.X, s.Min.X, s.Max.X)
	dy := gapDist(r.Min.Y, r.Max.Y, s.Min.Y, s.Max.Y)
	return math.Hypot(dx, dy)
}

// axisDist returns the 1-D distance from v to the interval [lo, hi].
func axisDist(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo - v
	case v > hi:
		return v - hi
	default:
		return 0
	}
}

// gapDist returns the 1-D distance between intervals [aLo,aHi] and [bLo,bHi].
func gapDist(aLo, aHi, bLo, bHi float64) float64 {
	switch {
	case aHi < bLo:
		return bLo - aHi
	case bHi < aLo:
		return aLo - bHi
	default:
		return 0
	}
}

// Quantize maps a coordinate v ∈ [0,1] to an integer grid cell in
// [0, 2^bits). Values outside [0,1] are clamped. It is used to derive
// Hilbert sort keys for bulk loading.
func Quantize(v float64, bits uint) uint32 {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	max := float64(uint64(1)<<bits) - 1
	return uint32(math.Round(v * max))
}
