// Package kwset implements the textual substrate of the stpq library:
// a vocabulary that interns keyword strings, and keyword sets represented
// as fixed-width bitsets over that vocabulary.
//
// The paper (Section 3) measures textual relevance with the Jaccard
// similarity between a feature object's keywords t.W and the query keywords
// W. The bitset representation makes Jaccard, intersection and union
// counts O(w/64), and doubles as the binary vector that Section 4.2 maps to
// a Hilbert value.
package kwset

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Vocabulary interns keyword strings and assigns each distinct keyword a
// stable small integer id in [0, Size).
//
// A Vocabulary is not safe for concurrent mutation; concurrent lookups are
// safe once construction is complete.
type Vocabulary struct {
	ids   map[string]int
	words []string
}

// NewVocabulary returns an empty vocabulary.
func NewVocabulary() *Vocabulary {
	return &Vocabulary{ids: make(map[string]int)}
}

// VocabularyOf builds a vocabulary from the given words, ignoring
// duplicates. Words are normalized with Normalize.
func VocabularyOf(words ...string) *Vocabulary {
	v := NewVocabulary()
	for _, w := range words {
		v.Intern(w)
	}
	return v
}

// Normalize lower-cases and trims a keyword. All vocabulary operations
// normalize their inputs, so "Pizza" and " pizza " denote the same keyword.
func Normalize(w string) string { return strings.ToLower(strings.TrimSpace(w)) }

// Clone returns an independent copy of the vocabulary with the same ids.
// Rebuilding a database interns new keywords into a clone and swaps it in,
// so queries running against the previous snapshot keep a stable view.
func (v *Vocabulary) Clone() *Vocabulary {
	c := &Vocabulary{
		ids:   make(map[string]int, len(v.ids)),
		words: append([]string(nil), v.words...),
	}
	for w, id := range v.ids {
		c.ids[w] = id
	}
	return c
}

// Intern returns the id of the keyword w, assigning a fresh id if w has not
// been seen before. Empty keywords (after normalization) are rejected with
// id -1.
func (v *Vocabulary) Intern(w string) int {
	w = Normalize(w)
	if w == "" {
		return -1
	}
	if id, ok := v.ids[w]; ok {
		return id
	}
	id := len(v.words)
	v.ids[w] = id
	v.words = append(v.words, w)
	return id
}

// Lookup returns the id of w, or -1 if w is not in the vocabulary.
func (v *Vocabulary) Lookup(w string) int {
	if id, ok := v.ids[Normalize(w)]; ok {
		return id
	}
	return -1
}

// Word returns the keyword string with the given id.
// It panics if the id is out of range.
func (v *Vocabulary) Word(id int) string { return v.words[id] }

// Size returns the number of distinct keywords.
func (v *Vocabulary) Size() int { return len(v.words) }

// Words returns a copy of all interned keywords in id order.
func (v *Vocabulary) Words() []string {
	out := make([]string, len(v.words))
	copy(out, v.words)
	return out
}

// SetOf builds a keyword set of width equal to the vocabulary size
// (rounded up to the vocabulary's current size) containing the given words.
// Unknown words are interned, growing the vocabulary.
func (v *Vocabulary) SetOf(words ...string) Set {
	ids := make([]int, 0, len(words))
	for _, w := range words {
		if id := v.Intern(w); id >= 0 {
			ids = append(ids, id)
		}
	}
	s := NewSet(v.Size())
	for _, id := range ids {
		s.Add(id)
	}
	return s
}

// LookupSet builds a keyword set containing only the words already present
// in the vocabulary; unknown words are silently dropped. This is the query
// side: a query keyword absent from the corpus can never match.
func (v *Vocabulary) LookupSet(words ...string) Set {
	s := NewSet(v.Size())
	for _, w := range words {
		if id := v.Lookup(w); id >= 0 {
			s.Add(id)
		}
	}
	return s
}

// Decode returns the keyword strings of s in id order.
func (v *Vocabulary) Decode(s Set) []string {
	out := make([]string, 0, s.Count())
	s.ForEach(func(id int) {
		if id < len(v.words) {
			out = append(out, v.words[id])
		}
	})
	return out
}

// Set is a keyword set over a fixed-width vocabulary, stored as a bitset.
// The zero value is an empty set of width 0. Sets of different widths may
// be combined; the result has the larger width.
type Set struct {
	bits []uint64
	w    int // width in bits (number of vocabulary slots)
	// card caches the cardinality as Count()+1; 0 means unknown. Sets built
	// through NewSet/Add/Remove keep it current, so Count() on query
	// keyword sets is O(1) in the per-node-visit similarity kernels; sets
	// decoded from raw bits leave it unknown and Count() falls back to a
	// popcount pass.
	card int
}

// NewSet returns an empty set able to hold keyword ids in [0, width).
func NewSet(width int) Set {
	if width < 0 {
		width = 0
	}
	return Set{bits: make([]uint64, (width+63)/64), w: width, card: 1}
}

// SetFromWords is a convenience constructor for tests: it builds a set of
// the given width with the listed ids.
func SetFromWords(width int, ids ...int) Set {
	s := NewSet(width)
	for _, id := range ids {
		s.Add(id)
	}
	return s
}

// Width returns the vocabulary width the set was created with.
func (s Set) Width() int { return s.w }

// Add inserts the keyword id into the set, growing the set if needed.
func (s *Set) Add(id int) {
	if id < 0 {
		return
	}
	if id >= s.w {
		s.grow(id + 1)
	}
	mask := uint64(1) << (uint(id) % 64)
	if s.bits[id/64]&mask == 0 && s.card > 0 {
		s.card++
	}
	s.bits[id/64] |= mask
}

// Remove deletes the keyword id from the set.
func (s *Set) Remove(id int) {
	if id < 0 || id >= s.w {
		return
	}
	mask := uint64(1) << (uint(id) % 64)
	if s.bits[id/64]&mask != 0 && s.card > 0 {
		s.card--
	}
	s.bits[id/64] &^= mask
}

// grow widens the set to at least width bits.
func (s *Set) grow(width int) {
	need := (width + 63) / 64
	if need > len(s.bits) {
		nb := make([]uint64, need)
		copy(nb, s.bits)
		s.bits = nb
	}
	if width > s.w {
		s.w = width
	}
}

// Has reports whether the keyword id is in the set.
func (s Set) Has(id int) bool {
	if id < 0 || id/64 >= len(s.bits) {
		return false
	}
	return s.bits[id/64]&(1<<(uint(id)%64)) != 0
}

// Count returns the number of keywords in the set. Sets whose cardinality
// is cached (anything built through NewSet/Add/Remove/Clone) answer in
// O(1); sets decoded from raw bits fall back to a popcount pass.
func (s Set) Count() int {
	if s.card > 0 {
		return s.card - 1
	}
	n := 0
	for _, b := range s.bits {
		n += bits.OnesCount64(b)
	}
	return n
}

// IsEmpty reports whether the set has no keywords.
func (s Set) IsEmpty() bool {
	for _, b := range s.bits {
		if b != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of s.
func (s Set) Clone() Set {
	c := Set{bits: make([]uint64, len(s.bits)), w: s.w, card: s.card}
	copy(c.bits, s.bits)
	return c
}

// Union returns s ∪ t.
func (s Set) Union(t Set) Set {
	a, b := s, t
	if len(b.bits) > len(a.bits) {
		a, b = b, a
	}
	out := a.Clone()
	for i, bb := range b.bits {
		out.bits[i] |= bb
	}
	if b.w > out.w {
		out.w = b.w
	}
	out.card = 0 // cardinality unknown after bulk OR
	return out
}

// UnionInPlace ORs t into s, growing s if necessary. It is the node-summary
// update primitive of the SRT-index and IR²-tree.
func (s *Set) UnionInPlace(t Set) {
	if t.w > s.w {
		s.grow(t.w)
	}
	for i, bb := range t.bits {
		s.bits[i] |= bb
	}
	s.card = 0 // cardinality unknown after bulk OR
}

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set {
	w := s.w
	if t.w > w {
		w = t.w
	}
	out := NewSet(w)
	n := len(s.bits)
	if len(t.bits) < n {
		n = len(t.bits)
	}
	for i := 0; i < n; i++ {
		out.bits[i] = s.bits[i] & t.bits[i]
	}
	out.card = 0 // cardinality unknown after bulk AND
	return out
}

// IntersectCount returns |s ∩ t| without allocating.
func (s Set) IntersectCount(t Set) int {
	n := len(s.bits)
	if len(t.bits) < n {
		n = len(t.bits)
	}
	c := 0
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(s.bits[i] & t.bits[i])
	}
	return c
}

// UnionCount returns |s ∪ t| without allocating.
func (s Set) UnionCount(t Set) int {
	a, b := s.bits, t.bits
	if len(b) > len(a) {
		a, b = b, a
	}
	c := 0
	for i, aa := range a {
		if i < len(b) {
			c += bits.OnesCount64(aa | b[i])
		} else {
			c += bits.OnesCount64(aa)
		}
	}
	return c
}

// Intersects reports whether s and t share at least one keyword. This is
// the sim(t, W) > 0 relevance test used throughout the algorithms.
func (s Set) Intersects(t Set) bool {
	n := len(s.bits)
	if len(t.bits) < n {
		n = len(t.bits)
	}
	for i := 0; i < n; i++ {
		if s.bits[i]&t.bits[i] != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether s and t contain exactly the same keywords
// (regardless of width).
func (s Set) Equal(t Set) bool {
	a, b := s.bits, t.bits
	if len(b) > len(a) {
		a, b = b, a
	}
	for i, aa := range a {
		var bb uint64
		if i < len(b) {
			bb = b[i]
		}
		if aa != bb {
			return false
		}
	}
	return true
}

// IntersectUnionCount returns |s ∩ t| and |s ∪ t| in a single fused pass
// over the bit words, without allocating. It is the inner loop of the
// Jaccard similarity kernel: one load pair per word instead of two.
func (s Set) IntersectUnionCount(t Set) (inter, union int) {
	a, b := s.bits, t.bits
	if len(b) > len(a) {
		a, b = b, a
	}
	for i, aa := range a {
		if i < len(b) {
			bb := b[i]
			inter += bits.OnesCount64(aa & bb)
			union += bits.OnesCount64(aa | bb)
		} else {
			union += bits.OnesCount64(aa)
		}
	}
	return inter, union
}

// Jaccard returns the Jaccard similarity |s∩t| / |s∪t| ∈ [0,1].
// Two empty sets have similarity 0, matching the paper's convention that a
// feature with no overlapping keyword is irrelevant.
func (s Set) Jaccard(t Set) float64 {
	inter, union := s.IntersectUnionCount(t)
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// ContainmentBound returns |s ∩ q| / |q|, the upper bound ŝ textual factor
// from Section 4.2: for any feature set f ⊆ s, Jaccard(f, q) ≤ |s∩q|/|q|.
// It returns 0 when q is empty.
func (s Set) ContainmentBound(q Set) float64 {
	qc := q.Count()
	if qc == 0 {
		return 0
	}
	return float64(s.IntersectCount(q)) / float64(qc)
}

// ForEach calls fn for each keyword id in ascending order.
func (s Set) ForEach(fn func(id int)) {
	for i, word := range s.bits {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			fn(i*64 + b)
			word &^= 1 << uint(b)
		}
	}
}

// IDs returns the keyword ids in ascending order.
func (s Set) IDs() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(id int) { out = append(out, id) })
	return out
}

// WordsBits returns the set as a slice of uint64 bit words, least
// significant word first, sized to the set's width. The returned slice
// aliases the set's storage; callers must not modify it. It is the
// interchange format with the hilbert package and with page
// serialization.
func (s Set) WordsBits() []uint64 { return s.bits }

// FromBits constructs a set of the given width from raw bit words. The
// slice is copied.
func FromBits(width int, raw []uint64) Set {
	s := NewSet(width)
	copy(s.bits, raw)
	// Mask off bits beyond width in the last word.
	if width%64 != 0 && len(s.bits) > 0 {
		s.bits[len(s.bits)-1] &= (1 << uint(width%64)) - 1
	}
	s.card = 0 // cardinality unknown for decoded bits
	return s
}

// FromBitsOwned constructs a set of the given width that takes ownership of
// raw: the slice is aliased, not copied, and excess bits beyond width are
// masked off in place. Page decoding uses it with a per-node arena so each
// entry's keyword set costs zero extra allocations; callers must not reuse
// raw afterwards.
func FromBitsOwned(width int, raw []uint64) Set {
	if width < 0 {
		width = 0
	}
	words := (width + 63) / 64
	if len(raw) > words {
		raw = raw[:words]
	}
	if width%64 != 0 && len(raw) == words && words > 0 {
		raw[words-1] &= (1 << uint(width%64)) - 1
	}
	return Set{bits: raw, w: width}
}

// String renders the set as a sorted id list, for debugging.
func (s Set) String() string {
	ids := s.IDs()
	sort.Ints(ids)
	return fmt.Sprintf("kwset%v", ids)
}
