package kwset

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVocabularyIntern(t *testing.T) {
	v := NewVocabulary()
	a := v.Intern("pizza")
	b := v.Intern("burger")
	if a == b {
		t.Fatal("distinct words must get distinct ids")
	}
	if got := v.Intern("Pizza"); got != a {
		t.Errorf("case-insensitive intern: got %d, want %d", got, a)
	}
	if got := v.Intern("  pizza "); got != a {
		t.Errorf("trimmed intern: got %d, want %d", got, a)
	}
	if v.Size() != 2 {
		t.Errorf("Size = %d, want 2", v.Size())
	}
	if v.Word(a) != "pizza" || v.Word(b) != "burger" {
		t.Error("Word round-trip failed")
	}
	if v.Intern("") != -1 || v.Intern("   ") != -1 {
		t.Error("empty keyword must be rejected")
	}
}

func TestVocabularyLookup(t *testing.T) {
	v := VocabularyOf("italian", "pizza", "greek")
	if v.Lookup("PIZZA") != 1 {
		t.Error("Lookup should normalize")
	}
	if v.Lookup("sushi") != -1 {
		t.Error("unknown word should return -1")
	}
	words := v.Words()
	if len(words) != 3 || words[0] != "italian" {
		t.Errorf("Words = %v", words)
	}
}

func TestLookupSetDropsUnknown(t *testing.T) {
	v := VocabularyOf("italian", "pizza")
	s := v.LookupSet("pizza", "sushi")
	if s.Count() != 1 || !s.Has(1) {
		t.Errorf("LookupSet = %v", s)
	}
	if v.Size() != 2 {
		t.Error("LookupSet must not grow the vocabulary")
	}
}

func TestSetBasics(t *testing.T) {
	s := NewSet(128)
	if !s.IsEmpty() || s.Count() != 0 {
		t.Fatal("new set must be empty")
	}
	s.Add(0)
	s.Add(63)
	s.Add(64)
	s.Add(127)
	if s.Count() != 4 {
		t.Errorf("Count = %d, want 4", s.Count())
	}
	for _, id := range []int{0, 63, 64, 127} {
		if !s.Has(id) {
			t.Errorf("missing id %d", id)
		}
	}
	if s.Has(1) || s.Has(128) || s.Has(-1) {
		t.Error("unexpected membership")
	}
	s.Remove(63)
	if s.Has(63) || s.Count() != 3 {
		t.Error("Remove failed")
	}
	s.Remove(-1)
	s.Remove(1000)
}

func TestSetGrow(t *testing.T) {
	s := NewSet(4)
	s.Add(200)
	if !s.Has(200) || s.Width() < 201 {
		t.Errorf("grow failed: width=%d", s.Width())
	}
}

func TestSetAlgebra(t *testing.T) {
	a := SetFromWords(64, 1, 2, 3)
	b := SetFromWords(64, 3, 4)
	if got := a.Union(b).IDs(); len(got) != 4 {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b).IDs(); len(got) != 1 || got[0] != 3 {
		t.Errorf("Intersect = %v", got)
	}
	if a.IntersectCount(b) != 1 || a.UnionCount(b) != 4 {
		t.Error("count mismatch")
	}
	if !a.Intersects(b) {
		t.Error("Intersects should be true")
	}
	c := SetFromWords(64, 9)
	if a.Intersects(c) {
		t.Error("disjoint sets must not intersect")
	}
}

func TestUnionInPlaceGrows(t *testing.T) {
	a := SetFromWords(8, 1)
	b := SetFromWords(256, 200)
	a.UnionInPlace(b)
	if !a.Has(1) || !a.Has(200) {
		t.Error("UnionInPlace lost bits")
	}
	if a.Width() != 256 {
		t.Errorf("width = %d, want 256", a.Width())
	}
}

func TestJaccard(t *testing.T) {
	a := SetFromWords(32, 0, 1)
	b := SetFromWords(32, 1, 2)
	if got := a.Jaccard(b); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("Jaccard = %v, want 1/3", got)
	}
	if got := a.Jaccard(a); got != 1 {
		t.Errorf("self Jaccard = %v, want 1", got)
	}
	empty := NewSet(32)
	if got := empty.Jaccard(empty); got != 0 {
		t.Errorf("empty Jaccard = %v, want 0", got)
	}
	if got := a.Jaccard(empty); got != 0 {
		t.Errorf("Jaccard with empty = %v, want 0", got)
	}
}

// Paper example, Section 3: W = {italian, pizza}, λ = 0.5.
// Ontario's Pizza {pizza, italian} has sim = 1, Beijing {chinese, asian}
// has sim = 0.
func TestJaccardPaperExample(t *testing.T) {
	v := NewVocabulary()
	q := v.SetOf("italian", "pizza")
	ontario := v.SetOf("pizza", "italian")
	beijing := v.SetOf("chinese", "asian")
	if got := ontario.Jaccard(q); got != 1 {
		t.Errorf("Ontario sim = %v, want 1", got)
	}
	if got := beijing.Jaccard(q); got != 0 {
		t.Errorf("Beijing sim = %v, want 0", got)
	}
	johns := v.SetOf("pizza", "sandwiches", "subs")
	// |∩|=1, |∪|=4
	if got := johns.Jaccard(q); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("John's sim = %v, want 0.25", got)
	}
}

// ContainmentBound must upper-bound the Jaccard similarity of any subset —
// the ŝ(e) ≥ s(t) contract of Section 4.1/4.2.
func TestContainmentBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const w = 96
		q := randomSet(rng, w, 5)
		node := NewSet(w)
		// node summary = union of a few member sets
		members := make([]Set, 0, 4)
		for i := 0; i < 4; i++ {
			m := randomSet(rng, w, 6)
			members = append(members, m)
			node.UnionInPlace(m)
		}
		bound := node.ContainmentBound(q)
		for _, m := range members {
			if m.Jaccard(q) > bound+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Jaccard is symmetric and bounded in [0,1].
func TestJaccardProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomSet(rng, 130, 4)
		b := randomSet(rng, 130, 4)
		j1, j2 := a.Jaccard(b), b.Jaccard(a)
		return j1 == j2 && j1 >= 0 && j1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func randomSet(rng *rand.Rand, width, n int) Set {
	s := NewSet(width)
	for i := 0; i < n; i++ {
		s.Add(rng.Intn(width))
	}
	return s
}

func TestFromBitsRoundTrip(t *testing.T) {
	s := SetFromWords(130, 0, 64, 129)
	got := FromBits(130, s.WordsBits())
	if !got.Equal(s) {
		t.Errorf("round trip mismatch: %v vs %v", got, s)
	}
	// FromBits must mask stray bits beyond width.
	raw := []uint64{0, 0, ^uint64(0)}
	m := FromBits(130, raw)
	if m.Count() != 2 { // only bits 128,129 survive
		t.Errorf("mask failed: count = %d", m.Count())
	}
}

func TestEqualDifferentWidths(t *testing.T) {
	a := SetFromWords(10, 1, 2)
	b := SetFromWords(300, 1, 2)
	if !a.Equal(b) || !b.Equal(a) {
		t.Error("sets with same members but different widths must be Equal")
	}
	b.Add(250)
	if a.Equal(b) {
		t.Error("different members must not be Equal")
	}
}

func TestDecode(t *testing.T) {
	v := VocabularyOf("a", "b", "c")
	s := v.LookupSet("c", "a")
	got := v.Decode(s)
	if len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Errorf("Decode = %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := SetFromWords(64, 1)
	b := a.Clone()
	b.Add(2)
	if a.Has(2) {
		t.Error("Clone must not alias")
	}
}

func TestSetString(t *testing.T) {
	s := SetFromWords(16, 3, 1)
	if got := s.String(); got != "kwset[1 3]" {
		t.Errorf("String = %q", got)
	}
}

func TestContainmentBoundEmptyQuery(t *testing.T) {
	s := SetFromWords(16, 1, 2)
	if got := s.ContainmentBound(NewSet(16)); got != 0 {
		t.Errorf("empty query bound = %v, want 0", got)
	}
}

// cardOracle recomputes cardinality from the raw bits, bypassing the cache.
func cardOracle(s Set) int {
	n := 0
	for _, b := range s.WordsBits() {
		n += popcount(b)
	}
	return n
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func TestCountCacheMaintained(t *testing.T) {
	s := NewSet(200)
	check := func(op string) {
		t.Helper()
		if got, want := s.Count(), cardOracle(s); got != want {
			t.Fatalf("after %s: Count = %d, oracle = %d", op, got, want)
		}
	}
	check("NewSet")
	s.Add(3)
	check("Add(3)")
	s.Add(3) // duplicate add must not double-count
	check("Add(3) again")
	s.Add(199)
	check("Add(199)")
	s.Add(512) // grows the set
	check("Add(512)")
	s.Remove(3)
	check("Remove(3)")
	s.Remove(3) // removing an absent id must not under-count
	check("Remove(3) again")
	s.Remove(-1)
	check("Remove(-1)")
	c := s.Clone()
	if got, want := c.Count(), cardOracle(c); got != want {
		t.Fatalf("Clone: Count = %d, oracle = %d", got, want)
	}
	c.Add(7)
	check("Clone mutation must not affect original")
}

func TestCountAfterBulkOps(t *testing.T) {
	a := SetFromWords(128, 1, 2, 3, 100)
	b := SetFromWords(128, 3, 4, 100, 127)
	cases := []struct {
		name string
		s    Set
		want int
	}{
		{"Union", a.Union(b), 6},
		{"Intersect", a.Intersect(b), 2},
		{"FromBits", FromBits(128, a.WordsBits()), 4},
		{"FromBitsOwned", FromBitsOwned(128, append([]uint64(nil), b.WordsBits()...)), 4},
	}
	for _, tc := range cases {
		if got := tc.s.Count(); got != tc.want {
			t.Errorf("%s.Count = %d, want %d", tc.name, got, tc.want)
		}
		if got, want := tc.s.Count(), cardOracle(tc.s); got != want {
			t.Errorf("%s: Count = %d, oracle = %d", tc.name, got, want)
		}
	}
	u := a.Clone()
	u.UnionInPlace(b)
	if got := u.Count(); got != 6 {
		t.Errorf("UnionInPlace Count = %d, want 6", got)
	}
}

func TestIntersectUnionCount(t *testing.T) {
	cases := []struct {
		a, b                 Set
		wantInter, wantUnion int
	}{
		{SetFromWords(64, 1, 2, 3), SetFromWords(64, 2, 3, 4), 2, 4},
		{SetFromWords(64, 1), SetFromWords(256, 200), 0, 2},
		{SetFromWords(256, 1, 200), SetFromWords(64, 1), 1, 2},
		{NewSet(64), NewSet(64), 0, 0},
		{Set{}, SetFromWords(64, 5), 0, 1},
	}
	for i, tc := range cases {
		inter, union := tc.a.IntersectUnionCount(tc.b)
		if inter != tc.wantInter || union != tc.wantUnion {
			t.Errorf("case %d: IntersectUnionCount = (%d, %d), want (%d, %d)",
				i, inter, union, tc.wantInter, tc.wantUnion)
		}
		if gi, gu := tc.a.IntersectCount(tc.b), tc.a.UnionCount(tc.b); inter != gi || union != gu {
			t.Errorf("case %d: fused (%d, %d) disagrees with separate (%d, %d)", i, inter, union, gi, gu)
		}
	}
}

func TestFromBitsOwnedAliasesAndMasks(t *testing.T) {
	raw := []uint64{^uint64(0), ^uint64(0)}
	s := FromBitsOwned(70, raw)
	if got := s.Count(); got != 70 {
		t.Errorf("Count = %d, want 70 (excess bits must be masked)", got)
	}
	if raw[1] != (1<<6)-1 {
		t.Errorf("masking must happen in place, raw[1] = %#x", raw[1])
	}
	if &raw[0] != &s.WordsBits()[0] {
		t.Error("FromBitsOwned must alias, not copy")
	}
	// Longer raw slices are truncated to the width's word count.
	long := []uint64{1, 2, 3, 4}
	if got := FromBitsOwned(128, long); len(got.WordsBits()) != 2 {
		t.Errorf("words = %d, want 2", len(got.WordsBits()))
	}
}

func TestAllocsJaccard(t *testing.T) {
	a := SetFromWords(512, 1, 64, 200, 511)
	b := SetFromWords(512, 64, 128, 200)
	var sink float64
	allocs := testing.AllocsPerRun(100, func() {
		sink += a.Jaccard(b)
	})
	if allocs != 0 {
		t.Errorf("Jaccard allocs/op = %v, want 0", allocs)
	}
	inter, union := 2, 5
	if want := float64(inter) / float64(union); a.Jaccard(b) != want {
		t.Errorf("Jaccard = %v, want %v", a.Jaccard(b), want)
	}
	_ = sink
}
