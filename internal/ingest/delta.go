package ingest

import (
	"bytes"
	"fmt"

	"stpq/internal/index"
)

// Delta is the in-memory layer that absorbs mutations between merges. Data
// objects live in plain maps (queries score them by brute force — the
// delta is small by construction, bounded by the auto-flush threshold).
// Feature upserts are additionally routed through a real per-set
// FeatureIndex via rtree.Insert, so every live feature insert exercises
// the paper's decode→OR→encode node-update rule on its way in.
//
// Ids referring to the base generation are never mutated in place: the
// delta records them as tombstones and the overlay hides them, so the base
// indexes stay immutable and snapshot isolation is free.
type Delta struct {
	opts index.Options

	// Objects holds upserted data objects, keyed by id.
	Objects map[int64]index.Object
	// DeadObjects tombstones base object ids (deletes and upsert-overwrites).
	DeadObjects map[int64]struct{}
	// Sets holds one delta side per feature set, in set order.
	Sets []*DeltaSet

	ops int
}

// DeltaSet is the delta of one feature set.
type DeltaSet struct {
	idx *index.FeatureIndex
	// Feats holds the current delta features by id (the index itself has
	// no point lookup; deletes and clones need the locations).
	Feats map[int64]index.Feature
	// Dead tombstones base feature ids.
	Dead map[int64]struct{}
}

// NewDelta creates an empty delta whose feature indexes are built with the
// given options — the same kind and vocabulary width as the base indexes,
// so delta parts compose with tombstoned base parts into one FeatureGroup.
func NewDelta(opts index.Options, numSets int) (*Delta, error) {
	d := &Delta{
		opts:        opts,
		Objects:     make(map[int64]index.Object),
		DeadObjects: make(map[int64]struct{}),
		Sets:        make([]*DeltaSet, numSets),
	}
	for i := range d.Sets {
		idx, err := index.BuildFeatureIndex(nil, opts)
		if err != nil {
			return nil, fmt.Errorf("ingest: delta set %d: %w", i, err)
		}
		d.Sets[i] = &DeltaSet{
			idx:   idx,
			Feats: make(map[int64]index.Feature),
			Dead:  make(map[int64]struct{}),
		}
	}
	return d, nil
}

// Ops returns the number of mutations applied since the delta was created
// (the auto-flush trigger).
func (d *Delta) Ops() int { return d.ops }

// Empty reports whether the delta holds no effective mutations.
func (d *Delta) Empty() bool { return d.ops == 0 }

// UpsertObject records an object insert or overwrite.
func (d *Delta) UpsertObject(o index.Object) {
	d.DeadObjects[o.ID] = struct{}{} // hide any base copy
	d.Objects[o.ID] = o
	d.ops++
}

// DeleteObject records an object delete.
func (d *Delta) DeleteObject(id int64) {
	d.DeadObjects[id] = struct{}{}
	delete(d.Objects, id)
	d.ops++
}

// UpsertFeature records a feature insert or overwrite in set i.
func (d *Delta) UpsertFeature(i int, f index.Feature) error {
	s := d.Sets[i]
	if old, ok := s.Feats[f.ID]; ok {
		if _, err := s.idx.Delete(old.ID, old.Location); err != nil {
			return err
		}
	}
	if err := s.idx.Insert(f); err != nil {
		return err
	}
	s.Dead[f.ID] = struct{}{}
	s.Feats[f.ID] = f
	d.ops++
	return nil
}

// DeleteFeature records a feature delete in set i.
func (d *Delta) DeleteFeature(i int, id int64) error {
	s := d.Sets[i]
	if old, ok := s.Feats[id]; ok {
		if _, err := s.idx.Delete(old.ID, old.Location); err != nil {
			return err
		}
		delete(s.Feats, id)
	}
	s.Dead[id] = struct{}{}
	d.ops++
	return nil
}

// CloneIndex snapshots the delta feature index of set i for publication:
// the overlay must hold an immutable copy because the master keeps
// mutating under later Applies. The clone shares nothing with the master
// (page dump round trip), so readers never see a half-applied batch.
func (d *Delta) CloneIndex(i int) (*index.FeatureIndex, error) {
	var buf bytes.Buffer
	meta, err := d.Sets[i].idx.Save(&buf)
	if err != nil {
		return nil, err
	}
	return index.OpenFeatureIndex(&buf, meta, d.opts.BufferPages)
}
