package ingest

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// replayAll collects every durable record of a fresh WAL handle on dir.
func replayAll(t *testing.T, dir string) []walRecord {
	t.Helper()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	defer w.Close()
	var recs []walRecord
	err = w.Replay(0, func(seq uint64, payload []byte) error {
		recs = append(recs, walRecord{seq: seq, payload: append([]byte(nil), payload...)})
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return recs
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 50; i++ {
		p := []byte(fmt.Sprintf("record-%04d-%s", i, string(bytes.Repeat([]byte{'x'}, i*7%100))))
		want = append(want, p)
		seq, err := w.Append(p)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs := replayAll(t, dir)
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if r.seq != uint64(i+1) || !bytes.Equal(r.payload, want[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestWALReplayFrom(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("payload number %02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	var seqs []uint64
	if err := w.Replay(17, func(seq uint64, _ []byte) error {
		seqs = append(seqs, seq)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 14 || seqs[0] != 17 || seqs[len(seqs)-1] != 30 {
		t.Fatalf("Replay(17) returned seqs %v", seqs)
	}
	w.Close()
}

func TestWALSegmentRotationAndDropThrough(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{SegmentBytes: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := w.Append(bytes.Repeat([]byte{'a'}, 30)); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segs))
	}
	// Drop everything durable through seq 25: sealed segments fully ≤ 25
	// disappear, but every record > 25 must survive.
	if err := w.DropThrough(25); err != nil {
		t.Fatal(err)
	}
	var first uint64
	if err := w.Replay(26, func(seq uint64, _ []byte) error {
		if first == 0 {
			first = seq
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if first != 26 {
		t.Fatalf("after DropThrough(25), first replayed seq = %d, want 26", first)
	}
	w.Close()

	// Reopen: the trimmed log must still be consistent and appendable.
	w2, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if seq, err := w2.Append([]byte("after reopen")); err != nil || seq != 41 {
		t.Fatalf("append after reopen: seq=%d err=%v", seq, err)
	}
	w2.Close()
}

// Satellite: the crash-recovery truncation harness. Write N records,
// truncate the log at EVERY byte offset inside the tail record, and verify
// replay recovers exactly the records before it, with no panic and no
// partial record.
func TestWALTruncationAtEveryTailOffset(t *testing.T) {
	const n = 5
	payload := func(i int) []byte { return []byte(fmt.Sprintf("record-%d-payload-contents", i)) }

	// Build the reference log once to learn the file layout.
	ref := t.TempDir()
	w, err := OpenWAL(ref, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var offsets []int64 // file size after each append
	for i := 0; i < n; i++ {
		if _, err := w.Append(payload(i)); err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, w.size)
	}
	w.Close()
	seg := filepath.Join(ref, fmt.Sprintf("wal-%016x.seg", 1))
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(full)) != offsets[n-1] {
		t.Fatalf("file size %d != recorded %d", len(full), offsets[n-1])
	}

	tailStart := offsets[n-2]
	for cut := tailStart; cut < int64(len(full)); cut++ {
		dir := t.TempDir()
		path := filepath.Join(dir, filepath.Base(seg))
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		recs := replayAll(t, dir)
		if len(recs) != n-1 {
			t.Fatalf("cut at %d: recovered %d records, want %d", cut, len(recs), n-1)
		}
		for i, r := range recs {
			if !bytes.Equal(r.payload, payload(i)) {
				t.Fatalf("cut at %d: record %d corrupted", cut, i)
			}
		}
		// The torn bytes must have been truncated away so the next append
		// starts on a clean boundary.
		w2, err := OpenWAL(dir, WALOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if seq, err := w2.Append([]byte("post-crash")); err != nil || seq != n {
			t.Fatalf("cut at %d: post-crash append seq=%d err=%v", cut, seq, err)
		}
		w2.Close()
		recs = replayAll(t, dir)
		if len(recs) != n || string(recs[n-1].payload) != "post-crash" {
			t.Fatalf("cut at %d: log inconsistent after post-crash append", cut)
		}
	}
}

// A flipped byte in the middle of a sealed segment is corruption, not a
// torn tail: Replay must refuse rather than silently drop a suffix.
func TestWALMidFileCorruptionIsAnError(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{SegmentBytes: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := w.Append(bytes.Repeat([]byte{'b'}, 40)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	segs, _ := listSegments(dir)
	if len(segs) < 2 {
		t.Fatal("need at least two segments")
	}
	// Flip a payload byte in the FIRST (sealed) segment.
	path := filepath.Join(dir, fmt.Sprintf("wal-%016x.seg", segs[0]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[walRecordHeader+5] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	err = w2.Replay(0, func(uint64, []byte) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Replay over corrupt sealed segment: err = %v, want ErrCorrupt", err)
	}
}

// Group commit: appends from many goroutines are acknowledged and all
// durable, with far fewer fsyncs than appends.
func TestWALGroupCommit(t *testing.T) {
	dir := t.TempDir()
	var fsyncs int
	var fmu sync.Mutex
	w, err := OpenWAL(dir, WALOptions{
		GroupCommit: 2 * time.Millisecond,
		FsyncObserver: func(float64) {
			fmu.Lock()
			fsyncs++
			fmu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	seqs := make(chan uint64, writers*perWriter)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				seq, err := w.Append([]byte(fmt.Sprintf("w%d-%d", g, i)))
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				seqs <- seq
			}
		}(g)
	}
	wg.Wait()
	close(seqs)
	seen := map[uint64]bool{}
	for s := range seqs {
		if seen[s] {
			t.Fatalf("duplicate seq %d", s)
		}
		seen[s] = true
	}
	if len(seen) != writers*perWriter {
		t.Fatalf("got %d acks, want %d", len(seen), writers*perWriter)
	}
	w.Close()
	fmu.Lock()
	got := fsyncs
	fmu.Unlock()
	if got >= writers*perWriter {
		t.Errorf("group commit did not batch: %d fsyncs for %d appends", got, writers*perWriter)
	}
	if recs := replayAll(t, dir); len(recs) != writers*perWriter {
		t.Fatalf("replayed %d, want %d", len(recs), writers*perWriter)
	}
}

func TestWALAppendAfterCloseFails(t *testing.T) {
	w, err := OpenWAL(t.TempDir(), WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if _, err := w.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close: err = %v, want ErrClosed", err)
	}
}

// Simulated mid-fsync crash: the record bytes reached the file but the
// append was never acknowledged. Replay may or may not surface the record
// (both are legal — it was not durable), but must never surface a mangled
// one, and the log must stay appendable.
func TestWALUnacknowledgedTailIsPrefixConsistent(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("durable-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Write a record straight to the file without fsync or ack, then
	// abandon the handle (simulates dying inside Append before Sync).
	rec := w.encodeRecord(11, []byte("never-acked"))
	if _, err := w.f.Write(rec); err != nil {
		t.Fatal(err)
	}
	_ = w.f.Close() // no Sync — the process "died"

	recs := replayAll(t, dir)
	if len(recs) != 10 && len(recs) != 11 {
		t.Fatalf("recovered %d records, want 10 or 11", len(recs))
	}
	for i := 0; i < 10; i++ {
		if string(recs[i].payload) != fmt.Sprintf("durable-%d", i) {
			t.Fatalf("durable prefix damaged at %d", i)
		}
	}
}

// TestWALRotateSealsActiveSegment checks explicit rotation: records land
// in a sealed segment fetchable by SealedSegment, and rotating an empty
// active segment is a no-op.
func TestWALRotateSealsActiveSegment(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	// Nothing written: no sealed history, rotation is a no-op.
	if first, _, err := w.SealedSegment(1); err != nil || first != 0 {
		t.Fatalf("SealedSegment on empty log: first=%d err=%v", first, err)
	}
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	if n := len(w.SealedSegments()); n != 0 {
		t.Fatalf("rotating an empty log sealed %d segments", n)
	}
	for i := 0; i < 5; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("record %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Still active: not fetchable yet.
	if first, _, err := w.SealedSegment(1); err != nil || first != 0 {
		t.Fatalf("SealedSegment before rotate: first=%d err=%v", first, err)
	}
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	first, data, err := w.SealedSegment(1)
	if err != nil {
		t.Fatal(err)
	}
	if first != 1 {
		t.Fatalf("sealed segment starts at %d, want 1", first)
	}
	recs, err := ScanRecords(data, first)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 || recs[0].Seq != 1 || recs[4].Seq != 5 {
		t.Fatalf("scanned %d records: %+v", len(recs), recs)
	}
	if string(recs[2].Payload) != "record 2" {
		t.Fatalf("payload = %q", recs[2].Payload)
	}
	// Rotating again with nothing new appended stays a no-op.
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	if n := len(w.SealedSegments()); n != 1 {
		t.Fatalf("double rotate produced %d sealed segments, want 1", n)
	}
	// A `from` past the sealed history reports nothing to fetch.
	if first, _, err := w.SealedSegment(6); err != nil || first != 0 {
		t.Fatalf("SealedSegment(6): first=%d err=%v", first, err)
	}
}

// TestWALScanRecordsStrict checks the network-fetch scanner: unlike crash
// recovery, a torn or short segment is an error, never a silent prefix.
func TestWALScanRecordsStrict(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("payload %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	_, data, err := w.SealedSegment(1)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if _, err := ScanRecords(data, 1); err != nil {
		t.Fatalf("intact segment: %v", err)
	}
	// Empty data is zero records, not corruption.
	if recs, err := ScanRecords(nil, 1); err != nil || len(recs) != 0 {
		t.Fatalf("ScanRecords(nil): recs=%v err=%v", recs, err)
	}
	// Every proper prefix either fails with ErrCorrupt (cut mid-record) or
	// — only when the cut lands exactly on a record boundary — scans to an
	// intact prefix of the original records.
	for n := 1; n < len(data); n++ {
		recs, err := ScanRecords(data[:n], 1)
		if err == nil {
			for i, r := range recs {
				if want := fmt.Sprintf("payload %d", i); string(r.Payload) != want || r.Seq != uint64(i+1) {
					t.Fatalf("truncation to %d bytes scanned bogus record %d: %+v", n, i, r)
				}
			}
			continue
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d/%d bytes: err=%v, want ErrCorrupt", n, len(data), err)
		}
	}
	// A flipped payload byte must fail the checksum.
	bad := append([]byte(nil), data...)
	bad[len(bad)-2] ^= 0x40
	if _, err := ScanRecords(bad, 1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupted byte: err=%v, want ErrCorrupt", err)
	}
	// A wrong first-sequence expectation is rejected.
	if _, err := ScanRecords(data, 7); err == nil {
		t.Fatal("ScanRecords accepted a mismatched first sequence")
	}
}

// TestWALRetainSegments checks retention: DropThrough spares the newest
// RetainSegments sealed segments it would otherwise delete, keeping
// shipped history available to lagging followers.
func TestWALRetainSegments(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{SegmentBytes: 100, RetainSegments: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 40; i++ {
		if _, err := w.Append(bytes.Repeat([]byte{'a'}, 30)); err != nil {
			t.Fatal(err)
		}
	}
	before := w.SealedSegments()
	if len(before) < 4 {
		t.Fatalf("expected ≥ 4 sealed segments, got %d", len(before))
	}
	// Checkpoint everything: without retention all sealed segments would
	// go; with RetainSegments=2 the newest two deletable ones survive.
	if err := w.DropThrough(40); err != nil {
		t.Fatal(err)
	}
	after := w.SealedSegments()
	if len(after) != 2 {
		t.Fatalf("%d sealed segments survive DropThrough, want 2 (before: %v, after: %v)",
			len(after), before, after)
	}
	if after[0] != before[len(before)-2] || after[1] != before[len(before)-1] {
		t.Fatalf("retention kept %v, want newest two of %v", after, before)
	}
	// The survivors stay fetchable for followers.
	first, data, err := w.SealedSegment(after[0])
	if err != nil || first != after[0] {
		t.Fatalf("SealedSegment(%d): first=%d err=%v", after[0], first, err)
	}
	if _, err := ScanRecords(data, first); err != nil {
		t.Fatal(err)
	}
	// Without retention, the same checkpoint removes all sealed history.
	dir2 := t.TempDir()
	w2, err := OpenWAL(dir2, WALOptions{SegmentBytes: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	for i := 0; i < 40; i++ {
		if _, err := w2.Append(bytes.Repeat([]byte{'a'}, 30)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w2.DropThrough(40); err != nil {
		t.Fatal(err)
	}
	if n := len(w2.SealedSegments()); n != 0 {
		t.Fatalf("without retention %d sealed segments survive, want 0", n)
	}
}
