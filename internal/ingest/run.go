package ingest

// run.go implements generational runs: when the delta reaches the flush
// threshold under background compaction, it is sealed into an immutable
// Run instead of being merged synchronously. Queries overlay base + runs
// + active delta; the compactor folds runs into the base off the write
// path. Runs are volatile by design — durability comes from the WAL, and
// recovery replays records into fresh runs — so sealing is O(feature
// sets), not O(delta): the run steals the delta's maps and indexes.

import "stpq/internal/index"

// LayerSet is one feature set's slice of a layer: the upserted features
// (and the index over them) plus the tombstones hiding older versions.
type LayerSet struct {
	// Idx indexes the layer's upserted features; nil when the layer has
	// none in this set. Immutable once published.
	Idx *index.FeatureIndex
	// Feats holds the upserted features by id.
	Feats map[int64]index.Feature
	// Dead tombstones feature ids of older generations.
	Dead map[int64]struct{}
}

// Layer is one generation of unmerged mutations — a sealed run or a
// snapshot of the active delta. Query overlays stack layers oldest to
// newest: each layer's tombstones hide matching ids in every older layer
// and in the base.
type Layer struct {
	// Objects holds upserted data objects by id.
	Objects map[int64]index.Object
	// DeadObjects tombstones object ids of older generations.
	DeadObjects map[int64]struct{}
	// Sets holds one slice per feature set, in set order.
	Sets []LayerSet
}

// Run is a sealed, immutable layer: nothing mutates it after Seal, so
// overlays and the compactor share it without copying.
type Run struct {
	Layer
	// Ops is the number of mutations the run absorbed.
	Ops int
	// Seq is the WAL sequence number the run is current through.
	Seq uint64
}

// Seal converts the delta into an immutable run covering WAL records
// through seq. The run takes ownership of the delta's maps and per-set
// indexes — the delta must not be used afterwards (the caller drops it),
// which is what makes sealing O(feature sets) instead of O(delta).
func (d *Delta) Seal(seq uint64) *Run {
	r := &Run{Ops: d.ops, Seq: seq}
	r.Objects = d.Objects
	r.DeadObjects = d.DeadObjects
	r.Sets = make([]LayerSet, len(d.Sets))
	for i, s := range d.Sets {
		ls := LayerSet{Feats: s.Feats, Dead: s.Dead}
		if len(s.Feats) > 0 {
			ls.Idx = s.idx
		}
		r.Sets[i] = ls
	}
	d.Objects, d.DeadObjects, d.Sets = nil, nil, nil
	return r
}

// Snapshot captures the active delta as a layer for overlay publication.
// The delta keeps mutating under later applies, so the maps are copied
// and the per-set indexes cloned; the returned layer is immutable.
func (d *Delta) Snapshot() (*Layer, error) {
	l := &Layer{
		Objects:     copyObjects(d.Objects),
		DeadObjects: copyIDSet(d.DeadObjects),
		Sets:        make([]LayerSet, len(d.Sets)),
	}
	for i, s := range d.Sets {
		ls := LayerSet{Feats: copyFeatures(s.Feats), Dead: copyIDSet(s.Dead)}
		if len(s.Feats) > 0 {
			idx, err := d.CloneIndex(i)
			if err != nil {
				return nil, err
			}
			ls.Idx = idx
		}
		l.Sets[i] = ls
	}
	return l, nil
}

// copyIDSet copies an id set (nil in, nil out).
func copyIDSet(in map[int64]struct{}) map[int64]struct{} {
	if in == nil {
		return nil
	}
	out := make(map[int64]struct{}, len(in))
	for id := range in {
		out[id] = struct{}{}
	}
	return out
}

// copyObjects copies an object map.
func copyObjects(in map[int64]index.Object) map[int64]index.Object {
	out := make(map[int64]index.Object, len(in))
	for id, o := range in {
		out[id] = o
	}
	return out
}

// copyFeatures copies a feature map.
func copyFeatures(in map[int64]index.Feature) map[int64]index.Feature {
	out := make(map[int64]index.Feature, len(in))
	for id, f := range in {
		out[id] = f
	}
	return out
}

// UnionDead returns the union of the layers' object tombstones.
func UnionDead(layers []*Layer) map[int64]struct{} {
	out := make(map[int64]struct{})
	for _, l := range layers {
		for id := range l.DeadObjects {
			out[id] = struct{}{}
		}
	}
	return out
}

// UnionDeadSet returns the union of the layers' tombstones for feature
// set i.
func UnionDeadSet(layers []*Layer, i int) map[int64]struct{} {
	out := make(map[int64]struct{})
	for _, l := range layers {
		for id := range l.Sets[i].Dead {
			out[id] = struct{}{}
		}
	}
	return out
}

// FoldObjects folds the layers' object upserts oldest to newest into one
// map: newer tombstones delete older upserts, newer upserts win.
func FoldObjects(layers []*Layer) map[int64]index.Object {
	out := make(map[int64]index.Object)
	for _, l := range layers {
		for id := range l.DeadObjects {
			delete(out, id)
		}
		for id, o := range l.Objects {
			out[id] = o
		}
	}
	return out
}
