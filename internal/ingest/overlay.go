package ingest

import (
	"sort"
	"sync"

	"stpq/internal/core"
	"stpq/internal/geo"
	"stpq/internal/index"
)

// Overlay answers top-k queries over base + delta with the ordering
// semantics of a from-scratch rebuild. It wraps a core.Engine built over
// the tombstone-filtered base object tree and feature groups that append a
// cloned delta part per set — so the engine's own traversal already sees
// the merged feature universe — and merges the handful of delta-resident
// objects into the answer by exact scoring.
//
// Correctness: both STDS and STPS zero-fill — they return every complete
// object (score 0 included) while the accumulator is not full — so the
// engine's top-k over base-survivor objects plus ALL delta objects is a
// superset of the true top-k; sorting the union under core.ResultBefore
// and truncating to k is byte-identical to the oracle. Per-set sums run in
// set order on both sides and max is order-independent, so the float
// values agree bit for bit.
type Overlay struct {
	eng *core.Engine
	// delta objects in ascending id order (determinism of the merge loop).
	delta []index.Object
	n     int

	// scorer is the amortized exact-score closure over the feature
	// universe, materialized lazily on the first query that has delta
	// objects to merge and reused for the overlay's lifetime — the
	// wrapped engine is immutable for one generation, so one
	// materialization serves every query instead of one full feature
	// scan per delta object per query.
	scorerOnce sync.Once
	scorer     func(q core.Query, p geo.Point) float64
	scorerErr  error
}

// NewOverlay wraps eng. deltaObjects are the objects living only in the
// delta; numObjects is the live object count of the merged view.
func NewOverlay(eng *core.Engine, deltaObjects map[int64]index.Object, numObjects int) *Overlay {
	objs := make([]index.Object, 0, len(deltaObjects))
	for _, o := range deltaObjects {
		objs = append(objs, o)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].ID < objs[j].ID })
	return &Overlay{eng: eng, delta: objs, n: numObjects}
}

// Engine exposes the wrapped engine (tests and Voronoi precomputation).
func (o *Overlay) Engine() *core.Engine { return o.eng }

// STDS runs the base engine's STDS and merges the delta objects.
func (o *Overlay) STDS(q core.Query) ([]core.Result, core.Stats, error) {
	res, st, err := o.eng.STDS(q)
	if err != nil {
		return nil, st, err
	}
	res, err = o.mergeDelta(res, q)
	return res, st, err
}

// STPS runs the base engine's STPS and merges the delta objects.
func (o *Overlay) STPS(q core.Query) ([]core.Result, core.Stats, error) {
	res, st, err := o.eng.STPS(q)
	if err != nil {
		return nil, st, err
	}
	res, err = o.mergeDelta(res, q)
	return res, st, err
}

// mergeDelta folds every delta object into the engine's top-k: exact-score
// each one against the merged feature view, append, re-sort under the
// result total order, truncate to k.
func (o *Overlay) mergeDelta(base []core.Result, q core.Query) ([]core.Result, error) {
	if len(o.delta) == 0 {
		return base, nil
	}
	o.scorerOnce.Do(func() { o.scorer, o.scorerErr = o.eng.ExactScorer() })
	if o.scorerErr != nil {
		return nil, o.scorerErr
	}
	merged := make([]core.Result, 0, len(base)+len(o.delta))
	merged = append(merged, base...)
	for _, ob := range o.delta {
		merged = append(merged, core.Result{ID: ob.ID, Location: ob.Location, Score: o.scorer(q, ob.Location)})
	}
	sort.Slice(merged, func(i, j int) bool { return core.ResultBefore(merged[i], merged[j]) })
	if len(merged) > q.K {
		merged = merged[:q.K]
	}
	return merged, nil
}

// UpperBoundAll returns an admissible upper bound on the merged view's
// best possible score: the base object MBR extended by every delta-only
// object location, evaluated against the merged feature groups (which
// already include the delta part per set).
func (o *Overlay) UpperBoundAll(q core.Query) (float64, error) {
	root, err := o.eng.Objects().Tree().RootEntry()
	if err != nil {
		return 0, err
	}
	rect := root.Rect
	for _, ob := range o.delta {
		rect = rect.Extend(ob.Location)
	}
	if rect.IsEmpty() {
		return 0, nil
	}
	return o.eng.UpperBound(q, rect)
}

// ExactScore scores one location against the merged feature view.
func (o *Overlay) ExactScore(q core.Query, p geo.Point) (float64, error) {
	return o.eng.ExactScore(q, p)
}

// FeatureGroups returns the merged feature groups (tombstoned base parts
// plus the delta clone part per set).
func (o *Overlay) FeatureGroups() []*index.FeatureGroup { return o.eng.FeatureGroups() }

// NumObjects returns the live object count of the merged view.
func (o *Overlay) NumObjects() int { return o.n }

// DeltaObjects returns the number of objects living only in the delta —
// the size of the unmerged overlay, exposed as a gauge by the ingest
// pipeline.
func (o *Overlay) DeltaObjects() int { return len(o.delta) }

// SetTrace toggles query tracing on the wrapped engine.
func (o *Overlay) SetTrace(on bool) { o.eng.SetTrace(on) }

// PrecomputeVoronoiCells warms the wrapped engine's Voronoi cache.
func (o *Overlay) PrecomputeVoronoiCells() error { return o.eng.PrecomputeVoronoiCells() }
