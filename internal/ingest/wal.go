// Package ingest implements the live write path of the library: a
// checksummed write-ahead log for durability (wal.go), an in-memory delta
// layer that absorbs upserts and deletes between index rebuilds (delta.go),
// and a two-source overlay engine that answers queries over base + delta
// with exactly the ordering semantics of a from-scratch rebuild
// (overlay.go). The stpq package wires these into DB.Apply/Flush and
// WAL-aware Open; see DESIGN.md §11 for the format and lifecycle.
package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// WAL format. Each segment file wal-<firstseq:016x>.seg holds a run of
// records with consecutive sequence numbers starting at <firstseq>:
//
//	[u32 payload length][u32 CRC32-C][u64 seq][payload]
//
// all little-endian; the checksum covers the seq bytes plus the payload, so
// a record torn anywhere — length, checksum, seq or body — fails
// verification. A torn or half-written record is legal only at the very
// tail of the newest segment (the crash window of the last append); Open
// truncates it away. The same damage anywhere else is corruption and
// surfaces as ErrCorrupt.

const (
	walRecordHeader = 16
	walSegPrefix    = "wal-"
	walSegSuffix    = ".seg"
	// walMaxRecordBytes bounds a single record so a torn length field
	// cannot make the scanner allocate absurd buffers.
	walMaxRecordBytes = 64 << 20
)

// DefaultSegmentBytes is the segment rotation threshold.
const DefaultSegmentBytes = 4 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports WAL damage outside the legal torn-tail window.
var ErrCorrupt = errors.New("ingest: corrupt WAL")

// ErrClosed is returned by operations on a closed WAL.
var ErrClosed = errors.New("ingest: WAL closed")

// WALOptions tunes the log.
type WALOptions struct {
	// SegmentBytes rotates to a new segment file once the active one
	// exceeds this size (default DefaultSegmentBytes).
	SegmentBytes int64
	// GroupCommit batches fsyncs: an append becomes durable at the next
	// group flush, at most this long after it was written. 0 fsyncs every
	// append inline (maximum durability, minimum throughput).
	GroupCommit time.Duration
	// FsyncObserver, when set, receives the latency of every fsync in
	// seconds (wired to the stpq_ingest_wal_fsync_seconds histogram).
	FsyncObserver func(seconds float64)
	// AppendObserver, when set, receives the on-disk size (header included)
	// of every successfully written record (wired to the
	// stpq_wal_appends_total / stpq_wal_bytes_total counters).
	AppendObserver func(bytes int)
	// RetainSegments keeps the newest N sealed segments alive across
	// DropThrough even when a checkpoint has made their records redundant.
	// Log-shipping followers fetch sealed segments, so a replicating leader
	// must not garbage-collect them the moment a checkpoint lands; 0 keeps
	// none beyond the checkpoint (the pre-replication behaviour).
	RetainSegments int
}

// WAL is an append-only, checksummed, segmented log. Append is safe for
// concurrent use; Replay and DropThrough serialize against appends.
type WAL struct {
	dir  string
	opts WALOptions

	mu       sync.Mutex
	f        *os.File // active segment
	first    uint64   // first seq of the active segment
	size     int64    // bytes written to the active segment
	next     uint64   // next sequence number to assign
	pending  []chan error
	armed    bool // a group flush is scheduled
	closed   bool
	scratch  []byte // record assembly buffer
	segFirst []uint64
}

// OpenWAL opens (or creates) the log in dir. It scans the existing
// segments, truncates a torn tail record in the newest one, and positions
// the append cursor after the last durable record. Sequence numbers start
// at 1 in an empty log.
func OpenWAL(dir string, opts WALOptions) (*WAL, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	w := &WAL{dir: dir, opts: opts, next: 1}
	firsts, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	w.segFirst = firsts
	if len(firsts) == 0 {
		if err := w.openSegment(1); err != nil {
			return nil, err
		}
		return w, nil
	}
	// Verify segment boundary contiguity, then scan the newest segment to
	// find the durable tail (earlier segments are verified on Replay).
	for i := 1; i < len(firsts); i++ {
		if firsts[i] <= firsts[i-1] {
			return nil, fmt.Errorf("%w: segment order %016x after %016x", ErrCorrupt, firsts[i], firsts[i-1])
		}
	}
	last := firsts[len(firsts)-1]
	recs, goodLen, _, err := scanSegment(w.segPath(last), last, true)
	if err != nil {
		return nil, err
	}
	path := w.segPath(last)
	if fi, err := os.Stat(path); err != nil {
		return nil, err
	} else if fi.Size() > goodLen {
		if err := os.Truncate(path, goodLen); err != nil {
			return nil, fmt.Errorf("ingest: truncating torn WAL tail: %w", err)
		}
	}
	w.first = last
	w.size = goodLen
	w.next = last + uint64(len(recs))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	w.f = f
	return w, nil
}

// Dir returns the log directory.
func (w *WAL) Dir() string { return w.dir }

// NextSeq returns the sequence number the next append will receive.
func (w *WAL) NextSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.next
}

// segPath returns the file path of the segment starting at seq.
func (w *WAL) segPath(seq uint64) string {
	return filepath.Join(w.dir, fmt.Sprintf("%s%016x%s", walSegPrefix, seq, walSegSuffix))
}

// listSegments returns the first-seq of every segment in dir, ascending.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var firsts []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, walSegPrefix) || !strings.HasSuffix(name, walSegSuffix) {
			continue
		}
		hexa := strings.TrimSuffix(strings.TrimPrefix(name, walSegPrefix), walSegSuffix)
		seq, err := strconv.ParseUint(hexa, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: segment name %q", ErrCorrupt, name)
		}
		firsts = append(firsts, seq)
	}
	sort.Slice(firsts, func(i, j int) bool { return firsts[i] < firsts[j] })
	return firsts, nil
}

// openSegment creates a fresh segment whose first record will carry seq,
// and fsyncs the directory so the file itself survives a crash.
func (w *WAL) openSegment(seq uint64) error {
	f, err := os.OpenFile(w.segPath(seq), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.f = f
	w.first = seq
	w.size = 0
	w.segFirst = append(w.segFirst, seq)
	return nil
}

// syncDir fsyncs a directory so renames/creates inside it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Append writes one record and returns its sequence number once the record
// is durable — immediately after an inline fsync, or after the next group
// flush when GroupCommit is set.
func (w *WAL) Append(payload []byte) (uint64, error) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return 0, ErrClosed
	}
	if w.size > 0 && w.size+int64(walRecordHeader+len(payload)) > w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			w.mu.Unlock()
			return 0, err
		}
	}
	seq := w.next
	rec := w.encodeRecord(seq, payload)
	if _, err := w.f.Write(rec); err != nil {
		w.mu.Unlock()
		return 0, err
	}
	w.next++
	w.size += int64(len(rec))
	if w.opts.AppendObserver != nil {
		w.opts.AppendObserver(len(rec))
	}
	if w.opts.GroupCommit <= 0 {
		err := w.syncLocked()
		w.mu.Unlock()
		return seq, err
	}
	done := make(chan error, 1)
	w.pending = append(w.pending, done)
	if !w.armed {
		w.armed = true
		time.AfterFunc(w.opts.GroupCommit, w.groupFlush)
	}
	w.mu.Unlock()
	return seq, <-done
}

// encodeRecord assembles the framed record into the scratch buffer.
func (w *WAL) encodeRecord(seq uint64, payload []byte) []byte {
	n := walRecordHeader + len(payload)
	if cap(w.scratch) < n {
		w.scratch = make([]byte, n)
	}
	rec := w.scratch[:n]
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(rec[8:16], seq)
	copy(rec[16:], payload)
	binary.LittleEndian.PutUint32(rec[4:8], crc32.Checksum(rec[8:], crcTable))
	return rec
}

// groupFlush is the deferred fsync of a commit batch: every append since
// the previous flush becomes durable (and is acknowledged) at once.
func (w *WAL) groupFlush() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.armed = false
	waiters := w.pending
	w.pending = nil
	if len(waiters) == 0 {
		return
	}
	err := w.syncLocked()
	for _, ch := range waiters {
		ch <- err
	}
}

// syncLocked fsyncs the active segment, reporting the latency.
func (w *WAL) syncLocked() error {
	start := time.Now()
	err := w.f.Sync()
	if obs := w.opts.FsyncObserver; obs != nil {
		obs(time.Since(start).Seconds())
	}
	return err
}

// rotateLocked seals the active segment (fsyncing it, which also resolves
// any pending group) and opens the next one.
func (w *WAL) rotateLocked() error {
	if err := w.syncLocked(); err != nil {
		return err
	}
	for _, ch := range w.pending {
		ch <- nil
	}
	w.pending = nil
	if err := w.f.Close(); err != nil {
		return err
	}
	return w.openSegment(w.next)
}

// Rotate seals the active segment — fsyncing it, acknowledging any pending
// group commit — and opens a fresh one, so the sealed bytes become visible
// to SealedSegment. A no-op when the active segment is empty (rotating it
// would recreate a segment with the same first sequence number).
func (w *WAL) Rotate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if w.size == 0 {
		return nil
	}
	return w.rotateLocked()
}

// SealedSegment returns the first-seq and raw bytes of the earliest sealed
// segment whose records reach seq `from` or beyond — the log-shipping fetch
// primitive. It returns (0, nil, nil) when no sealed segment covers the
// request (the records live in the active segment, or do not exist yet).
// The returned bytes are a whole verified-framing segment file; the caller
// re-verifies checksums with ScanRecords after transport.
func (w *WAL) SealedSegment(from uint64) (uint64, []byte, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, nil, ErrClosed
	}
	for i, first := range w.segFirst {
		if i == len(w.segFirst)-1 {
			break // active segment: never shipped
		}
		if last := w.segFirst[i+1] - 1; last < from {
			continue
		}
		data, err := os.ReadFile(w.segPath(first))
		if err != nil {
			return 0, nil, err
		}
		return first, data, nil
	}
	return 0, nil, nil
}

// SealedSegments returns the first-seq of every sealed segment, ascending
// (the active segment is excluded).
func (w *WAL) SealedSegments() []uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.segFirst) == 0 {
		return nil
	}
	out := make([]uint64, len(w.segFirst)-1)
	copy(out, w.segFirst[:len(w.segFirst)-1])
	return out
}

// Record is one decoded WAL record, as surfaced by ScanRecords.
type Record struct {
	Seq     uint64
	Payload []byte
}

// ScanRecords verifies and decodes a shipped segment's raw bytes. Unlike
// the crash-recovery scan, it is strict: any framing, checksum or sequence
// damage — including a torn tail — is an error, because a fetched segment
// was sealed by the leader and must arrive intact.
func ScanRecords(data []byte, firstSeq uint64) ([]Record, error) {
	recs, goodLen, torn, err := scanBytes(data, firstSeq, false)
	if err != nil {
		return nil, err
	}
	if torn || goodLen != int64(len(data)) {
		return nil, fmt.Errorf("%w: shipped segment damaged at offset %d", ErrCorrupt, goodLen)
	}
	out := make([]Record, len(recs))
	for i, r := range recs {
		out[i] = Record{Seq: r.seq, Payload: r.payload}
	}
	return out, nil
}

// Replay invokes fn for every durable record with seq ≥ from, in order.
// Records damaged at the tail of the newest segment are skipped (they were
// never acknowledged); damage anywhere else returns ErrCorrupt.
func (w *WAL) Replay(from uint64, fn func(seq uint64, payload []byte) error) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i, first := range w.segFirst {
		isLast := i == len(w.segFirst)-1
		// Skip whole segments that end before the replay window.
		if !isLast && w.segFirst[i+1] <= from {
			continue
		}
		recs, _, _, err := scanSegment(w.segPath(first), first, isLast)
		if err != nil {
			return err
		}
		if !isLast && first+uint64(len(recs)) != w.segFirst[i+1] {
			return fmt.Errorf("%w: segment %016x ends at seq %d, next starts at %d",
				ErrCorrupt, first, first+uint64(len(recs))-1, w.segFirst[i+1])
		}
		for _, r := range recs {
			if r.seq < from {
				continue
			}
			if err := fn(r.seq, r.payload); err != nil {
				return err
			}
		}
	}
	return nil
}

// DropThrough deletes sealed segments whose records all have seq ≤ through
// — the log-trimming step after a checkpoint makes those records redundant
// — except for the newest Options.RetainSegments of them, which survive so
// log-shipping followers can still fetch recent history. The active segment
// is never removed.
func (w *WAL) DropThrough(through uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	// Pass 1: find the deletable segments (sealed, entirely ≤ through).
	var deletable []int
	for i := range w.segFirst {
		if i == len(w.segFirst)-1 {
			break // active
		}
		if w.segFirst[i+1]-1 <= through {
			deletable = append(deletable, i)
		}
	}
	// Pass 2: spare the newest RetainSegments of them.
	if keep := w.opts.RetainSegments; keep > 0 {
		if keep >= len(deletable) {
			deletable = nil
		} else {
			deletable = deletable[:len(deletable)-keep]
		}
	}
	if len(deletable) == 0 {
		return nil
	}
	drop := make(map[int]bool, len(deletable))
	for _, i := range deletable {
		drop[i] = true
	}
	kept := w.segFirst[:0]
	for i, first := range w.segFirst {
		if !drop[i] {
			kept = append(kept, first)
			continue
		}
		if err := os.Remove(w.segPath(first)); err != nil {
			return err
		}
	}
	w.segFirst = kept
	return syncDir(w.dir)
}

// Close flushes pending group commits and closes the active segment.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	err := w.syncLocked()
	for _, ch := range w.pending {
		ch <- err
	}
	w.pending = nil
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// walRecord is one decoded record.
type walRecord struct {
	seq     uint64
	payload []byte
}

// scanSegment reads and verifies one segment file. It returns the valid
// records, the byte length of the valid prefix, and whether a torn tail
// was found. A torn record — short header, implausible length, checksum or
// sequence mismatch — terminates the scan: tolerated (tornOK) in the
// newest segment, ErrCorrupt anywhere else.
func scanSegment(path string, firstSeq uint64, tornOK bool) (recs []walRecord, goodLen int64, torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, false, err
	}
	recs, goodLen, torn, err = scanBytes(data, firstSeq, tornOK)
	if err != nil {
		return nil, 0, false, fmt.Errorf("%w of %s", err, filepath.Base(path))
	}
	return recs, goodLen, torn, nil
}

// scanBytes is the byte-level half of scanSegment, shared with the
// log-shipping verification of ScanRecords.
func scanBytes(data []byte, firstSeq uint64, tornOK bool) (recs []walRecord, goodLen int64, torn bool, err error) {
	expect := firstSeq
	off := 0
	fail := func(reason string) ([]walRecord, int64, bool, error) {
		if tornOK {
			return recs, int64(off), true, nil
		}
		return nil, 0, false, fmt.Errorf("%w: %s at offset %d", ErrCorrupt, reason, off)
	}
	for off < len(data) {
		if len(data)-off < walRecordHeader {
			return fail("short record header")
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		if n > walMaxRecordBytes || off+walRecordHeader+n > len(data) {
			return fail("short record body")
		}
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		body := data[off+8 : off+walRecordHeader+n]
		if crc32.Checksum(body, crcTable) != sum {
			return fail("checksum mismatch")
		}
		seq := binary.LittleEndian.Uint64(data[off+8 : off+16])
		if seq != expect {
			return fail(fmt.Sprintf("sequence %d, want %d", seq, expect))
		}
		recs = append(recs, walRecord{seq: seq, payload: data[off+walRecordHeader : off+walRecordHeader+n]})
		off += walRecordHeader + n
		expect++
	}
	return recs, int64(off), false, nil
}
