package ingest

// compact.go holds the pacing machinery of the background compactor: the
// expensive part of a compaction (applying net mutations to copy-on-write
// index clones) runs without locks, and the Pacer throttles it so the
// foreground read path keeps its latency when the serving layer is
// saturated.

import (
	"runtime"
	"time"
)

// Pacer rate-limits background index work. Apply loops call Tick after
// every operation; at each ChunkOps boundary the pacer yields the
// processor and — when the Gate reports foreground saturation — sleeps
// Pause before continuing, bounding the compactor's page throughput while
// queries are queueing.
type Pacer struct {
	// ChunkOps is the number of operations between pacing points
	// (default 512).
	ChunkOps int
	// Pause is how long to back off at a pacing point while the gate is
	// saturated (default 2ms).
	Pause time.Duration
	// Gate reports whether the foreground is saturated (e.g. the serve
	// admission queue is non-empty). Nil means never saturated.
	Gate func() bool

	ops     int
	stalled time.Duration
}

// Tick records one completed operation and paces at chunk boundaries.
func (p *Pacer) Tick() {
	if p == nil {
		return
	}
	p.ops++
	chunk := p.ChunkOps
	if chunk <= 0 {
		chunk = 512
	}
	if p.ops%chunk != 0 {
		return
	}
	pause := p.Pause
	if pause <= 0 {
		pause = 2 * time.Millisecond
	}
	// Back off while the foreground is saturated, but never indefinitely:
	// the compactor must still finish under sustained load, or runs pile
	// up and write backpressure kicks in.
	for i := 0; i < 8 && p.Gate != nil && p.Gate(); i++ {
		time.Sleep(pause)
		p.stalled += pause
	}
	runtime.Gosched()
}

// Stalled returns the cumulative time the pacer slept waiting for the
// foreground gate.
func (p *Pacer) Stalled() time.Duration {
	if p == nil {
		return 0
	}
	return p.stalled
}
