package obs

// shapekey_fuzz_test.go pins the two properties the planner, the admission
// controller and the persisted statistics all lean on:
//
//   - ShapeKey.String is injective over real keys (distinct keys never
//     collide on one label) and stable (equal keys always intern to the
//     same label), across the full RBucket range including the exp2
//     over/underflow fallback and the NN no-radius sentinel.
//   - Export/Import round-trips the statistics exactly, so a planner
//     reloaded from shapes.json predicts what the saved process predicted.

import (
	"encoding/json"
	"math"
	"testing"
	"time"
)

// fuzz enum vocabularies: the only values real keys ever carry.
var (
	fuzzAlgs     = []string{"stps", "stds", "auto"}
	fuzzVariants = []string{"range", "influence", "nn"}
	fuzzSims     = []string{"jaccard", "dice", "cosine", "overlap"}
)

// keyFrom maps arbitrary fuzz bytes onto a well-formed ShapeKey.
func keyFrom(a, v, s uint8, k int, rb int64, sets uint8) ShapeKey {
	rbucket := int(rb)
	if rb%5 == 0 {
		rbucket = math.MinInt32 // the NN sentinel, often
	}
	return ShapeKey{
		Alg:     fuzzAlgs[int(a)%len(fuzzAlgs)],
		Variant: fuzzVariants[int(v)%len(fuzzVariants)],
		Sim:     fuzzSims[int(s)%len(fuzzSims)],
		K:       k,
		RBucket: rbucket,
		Sets:    int(sets),
	}
}

func FuzzShapeKeyString(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(0), 10, int64(-13), uint8(2),
		uint8(1), uint8(1), uint8(1), 10, int64(-12), uint8(2))
	// Adjacent buckets: the √2 spacing is what keeps 3-digit previews apart.
	f.Add(uint8(0), uint8(0), uint8(0), 10, int64(100), uint8(1),
		uint8(0), uint8(0), uint8(0), 10, int64(101), uint8(1))
	// exp2 overflow and underflow: both sides of the "r#" fallback.
	f.Add(uint8(0), uint8(0), uint8(0), 1, int64(4000), uint8(1),
		uint8(0), uint8(0), uint8(0), 1, int64(4001), uint8(1))
	f.Add(uint8(0), uint8(0), uint8(0), 1, int64(-4000), uint8(1),
		uint8(0), uint8(0), uint8(0), 1, int64(-4001), uint8(1))
	// Sentinel vs a deeply negative real bucket.
	f.Add(uint8(0), uint8(2), uint8(0), 5, int64(math.MinInt32), uint8(1),
		uint8(0), uint8(2), uint8(0), 5, int64(math.MinInt32+1), uint8(1))
	f.Fuzz(func(t *testing.T, a1, v1, s1 uint8, k1 int, rb1 int64, sets1 uint8,
		a2, v2, s2 uint8, k2 int, rb2 int64, sets2 uint8) {
		k1 &= 0xFFFF // keep K in a realistic range, sign included
		k2 &= 0xFFFF
		ka := keyFrom(a1, v1, s1, k1, rb1, sets1)
		kb := keyFrom(a2, v2, s2, k2, rb2, sets2)
		sa, sb := ka.String(), kb.String()
		if ka == kb && sa != sb {
			t.Fatalf("equal keys rendered differently: %q vs %q", sa, sb)
		}
		if ka != kb && sa == sb {
			t.Fatalf("distinct keys collided on %q: %+v vs %+v", sa, ka, kb)
		}
		// Interning stability: the table must hand back the identical label
		// for the same key, every time.
		st := NewShapeStats()
		if n1, n2 := st.Name(ka), st.Name(ka); n1 != n2 || n1 != sa {
			t.Fatalf("interning unstable: %q then %q (String %q)", n1, n2, sa)
		}
	})
}

func TestShapeStatsExportImportRoundTrip(t *testing.T) {
	src := NewShapeStats()
	k1 := ShapeKey{Alg: "stps", Variant: "range", Sim: "jaccard", K: 10, RBucket: RadiusBucket(0.01), Sets: 2}
	k2 := ShapeKey{Alg: "stds", Variant: "nn", Sim: "dice", K: 5, RBucket: RadiusBucket(0), Sets: 1}
	for i := 0; i < 4; i++ {
		src.Observe(k1, time.Millisecond, 100*time.Microsecond, 10, 2, 7)
	}
	src.Observe(k2, 3*time.Millisecond, 0, 5, 1, 3)

	recs := src.Export()
	if len(recs) != 2 {
		t.Fatalf("exported %d records, want 2", len(recs))
	}

	dst := NewShapeStats()
	dst.Import(recs)
	for _, k := range []ShapeKey{k1, k2} {
		wantCost, wantN := src.Cost(k)
		gotCost, gotN := dst.Cost(k)
		if wantCost != gotCost || wantN != gotN {
			t.Fatalf("%v: round trip cost %v/%d, want %v/%d", k, gotCost, gotN, wantCost, wantN)
		}
	}
	wantP, gotP := src.Predict(k1), dst.Predict(k1)
	if wantP == nil || gotP == nil {
		t.Fatalf("predictions nil after round trip: %v %v", wantP, gotP)
	}
	if *wantP != *gotP {
		t.Fatalf("prediction round trip: %+v, want %+v", *gotP, *wantP)
	}

	// Import into a warm table merges rather than replaces.
	dst.Import(recs)
	if _, n := dst.Cost(k1); n != 8 {
		t.Fatalf("double import: %d samples, want 8", n)
	}

	// Records with no samples are ignored — a hand-edited or truncated
	// shapes.json must not poison the means with divide-by-zero garbage.
	dst2 := NewShapeStats()
	dst2.Import([]ShapeRecord{{Key: k1, Samples: 0, DurationNanos: 999}})
	if _, n := dst2.Cost(k1); n != 0 {
		t.Fatalf("zero-sample record imported: %d samples", n)
	}
}

// TestShapeKeyModeDimension pins the fast tier's shape dimension and its
// backward compatibility: approx executions get their own statistics row,
// and a shapes.json written before the Mode field existed decodes to the
// exact key — old planner memory merges cleanly instead of forking.
func TestShapeKeyModeDimension(t *testing.T) {
	exact := ShapeKey{Alg: "stps", Variant: "range", Sim: "jaccard", K: 10, RBucket: RadiusBucket(0.01), Sets: 2}
	approx := exact
	approx.Mode = "approx"
	if exact == approx || exact.String() == approx.String() {
		t.Fatalf("mode dimension collapsed: %q vs %q", exact.String(), approx.String())
	}

	// The exact key serializes without a Mode field at all, so its JSON is
	// byte-identical to the pre-Mode format.
	data, err := json.Marshal(exact)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"Alg":"stps","Variant":"range","Sim":"jaccard","K":10,"RBucket":-13,"Sets":2}` {
		t.Fatalf("exact key JSON changed shape: %s", data)
	}

	// An old record (no Mode) must land on the exact key's statistics.
	st := NewShapeStats()
	st.Observe(exact, time.Millisecond, 0, 10, 2, 5)
	var old ShapeRecord
	if err := json.Unmarshal([]byte(`{"Key":`+string(data)+`,"Samples":3,"DurationNanos":3000000}`), &old); err != nil {
		t.Fatal(err)
	}
	st.Import([]ShapeRecord{old})
	if _, n := st.Cost(exact); n != 4 {
		t.Fatalf("old record did not merge into the exact key: %d samples", n)
	}
	if _, n := st.Cost(approx); n != 0 {
		t.Fatalf("old record leaked into the approx key: %d samples", n)
	}

	// And the approx key itself round-trips through Export/Import.
	st.Observe(approx, 2*time.Millisecond, 0, 10, 2, 5)
	dst := NewShapeStats()
	dst.Import(st.Export())
	if _, n := dst.Cost(approx); n != 1 {
		t.Fatalf("approx key lost in round trip: %d samples", n)
	}
}
