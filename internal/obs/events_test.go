package obs

import (
	"fmt"
	"strings"
	"testing"
	"time"
	"unsafe"
)

func TestEventLogRing(t *testing.T) {
	l := NewEventLog(3)
	if l.Len() != 0 {
		t.Fatalf("empty log Len = %d", l.Len())
	}
	for i := 1; i <= 5; i++ {
		l.Record(QueryEvent{Algorithm: "stps", K: i})
	}
	if l.Len() != 3 {
		t.Errorf("Len = %d after overflow, want 3", l.Len())
	}
	got := l.Recent(0)
	if len(got) != 3 {
		t.Fatalf("Recent(0) returned %d events", len(got))
	}
	// Newest first: K 5, 4, 3 with sequence numbers 5, 4, 3.
	for i, wantK := range []int{5, 4, 3} {
		if got[i].K != wantK || got[i].Seq != uint64(wantK) {
			t.Errorf("Recent[%d] = K %d seq %d, want K %d seq %d",
				i, got[i].K, got[i].Seq, wantK, wantK)
		}
	}
	if got := l.Recent(1); len(got) != 1 || got[0].K != 5 {
		t.Errorf("Recent(1) = %+v", got)
	}
	if got := l.Recent(99); len(got) != 3 {
		t.Errorf("Recent(99) returned %d events", len(got))
	}
	// Nil logs swallow records and return empties.
	var nl *EventLog
	nl.Record(QueryEvent{})
	if nl.Len() != 0 || nl.Recent(5) != nil {
		t.Error("nil EventLog must be inert")
	}
}

func TestRadiusBucket(t *testing.T) {
	if RadiusBucket(0) != noRadius || RadiusBucket(-1) != noRadius {
		t.Error("non-positive radii must map to the sentinel bucket")
	}
	// Nearly equal radii share a bucket; a doubling moves two buckets.
	if RadiusBucket(0.1) != RadiusBucket(0.105) {
		t.Error("0.1 and 0.105 should share a bucket")
	}
	if RadiusBucket(0.2)-RadiusBucket(0.1) != 2 {
		t.Errorf("doubling moved %d buckets, want 2", RadiusBucket(0.2)-RadiusBucket(0.1))
	}
}

func TestShapeKeyString(t *testing.T) {
	k := ShapeKey{Alg: "stps", Variant: "range", Sim: "jaccard", K: 10, RBucket: RadiusBucket(0.1), Sets: 2}
	s := k.String()
	for _, want := range []string{"stps|range|jaccard", "k=10", "r~0.0884", "sets=2"} {
		if !strings.Contains(s, want) {
			t.Errorf("shape %q missing %q", s, want)
		}
	}
	nn := ShapeKey{Alg: "stds", Variant: "nearest-neighbor", Sim: "jaccard", K: 5, RBucket: noRadius, Sets: 1}
	if !strings.Contains(nn.String(), "r=-") {
		t.Errorf("radius-free shape %q should render r=-", nn.String())
	}
}

func TestShapeStatsObserveAndPredict(t *testing.T) {
	s := NewShapeStats()
	key := ShapeKey{Alg: "stps", Variant: "range", Sim: "jaccard", K: 10, RBucket: RadiusBucket(0.1), Sets: 2}

	name := s.Observe(key, 10*time.Millisecond, 2*time.Millisecond, 100, 10, 5)
	if name != key.String() {
		t.Errorf("Observe returned %q, want %q", name, key.String())
	}
	// The label is interned: later observations return the identical string
	// header, which is what keeps event recording allocation-free.
	again := s.Observe(key, 20*time.Millisecond, 4*time.Millisecond, 200, 20, 7)
	if unsafe.StringData(name) != unsafe.StringData(again) {
		t.Errorf("labels not interned: %q vs %q", name, again)
	}

	// Two samples: below the floor, no prediction yet.
	if p := s.Predict(key); p != nil {
		t.Errorf("Predict with 2 samples = %+v, want nil (floor %d)", p, MinPredictSamples)
	}
	s.Observe(key, 30*time.Millisecond, 6*time.Millisecond, 300, 30, 9)
	p := s.Predict(key)
	if p == nil {
		t.Fatalf("Predict with %d samples = nil", MinPredictSamples)
	}
	if p.Samples != 3 || p.MeanDuration != 20*time.Millisecond ||
		p.MeanLogicalReads != 200 || p.MeanPhysicalReads != 20 || p.MeanCombinations != 7 {
		t.Errorf("prediction = %+v", p)
	}

	// Name of an unobserved shape renders without registering it.
	other := key
	other.K = 99
	if got := s.Name(other); got != other.String() {
		t.Errorf("Name(unobserved) = %q", got)
	}
	if len(s.Rows()) != 1 {
		t.Errorf("Name must not register shapes: %d rows", len(s.Rows()))
	}
}

func TestShapeStatsRowsOrder(t *testing.T) {
	s := NewShapeStats()
	a := ShapeKey{Alg: "stps", Variant: "range", Sim: "jaccard", K: 1, RBucket: noRadius, Sets: 1}
	b := ShapeKey{Alg: "stds", Variant: "range", Sim: "jaccard", K: 2, RBucket: noRadius, Sets: 1}
	s.Observe(a, time.Millisecond, 0, 1, 1, 1)
	s.Observe(b, time.Millisecond, 0, 1, 1, 1)
	s.Observe(b, time.Millisecond, 0, 1, 1, 1)
	rows := s.Rows()
	if len(rows) != 2 || rows[0].Shape != b.String() || rows[0].Samples != 2 {
		t.Errorf("rows = %+v, want most-sampled first", rows)
	}
}

func TestTelemetryRecordPolicy(t *testing.T) {
	tel := NewTelemetry(8, 8, 0, 50*time.Millisecond)
	key := ShapeKey{Alg: "stps", Variant: "range", Sim: "jaccard", K: 10, RBucket: RadiusBucket(0.1), Sets: 2}

	// Provisional trace (collected only for slow capture) on a fast query:
	// dropped from the record.
	fast := NewTrace("stps.range", nil)
	fast.Finish()
	tel.Record(QueryEvent{Duration: time.Millisecond, Trace: fast.Root(), Outcome: "ok"}, key, true)
	ev := tel.Events.Recent(1)[0]
	if ev.Sampled || ev.Slow || ev.Trace != nil {
		t.Errorf("fast provisional trace survived: %+v", ev)
	}
	if tel.Slow.Len() != 0 {
		t.Error("fast query landed in the slow log")
	}

	// Same provisional trace on a slow query: kept, and mirrored to Slow.
	slow := NewTrace("stps.range", nil)
	slow.Finish()
	tel.Record(QueryEvent{Duration: 60 * time.Millisecond, Trace: slow.Root(), Outcome: "ok"}, key, true)
	ev = tel.Events.Recent(1)[0]
	if !ev.Slow || ev.Trace == nil {
		t.Errorf("slow query trace dropped: %+v", ev)
	}
	if ev.Sampled {
		t.Error("slow-only capture must not claim the sampler kept it")
	}
	if tel.Slow.Len() != 1 || tel.Slow.Recent(1)[0].Trace == nil {
		t.Error("slow log missing the complete trace")
	}

	// An explicitly kept trace survives regardless of duration.
	kept := NewTrace("stps.range", nil)
	kept.MarkKeep()
	kept.Finish()
	tel.Record(QueryEvent{Duration: time.Millisecond, Trace: kept.Root(), Outcome: "ok"}, key, true)
	ev = tel.Events.Recent(1)[0]
	if !ev.Sampled || ev.Trace == nil {
		t.Errorf("kept trace dropped: %+v", ev)
	}

	// Cache hits resolve the shape label without counting an execution.
	before := tel.Shapes.Rows()[0].Samples
	tel.Record(QueryEvent{Duration: time.Microsecond, CacheHit: true, Outcome: "ok"}, key, false)
	if after := tel.Shapes.Rows()[0].Samples; after != before {
		t.Errorf("cache hit counted as execution: %d -> %d", before, after)
	}
	if ev = tel.Events.Recent(1)[0]; !ev.CacheHit || ev.Shape != key.String() {
		t.Errorf("cache-hit event = %+v", ev)
	}

	// Nil telemetry swallows everything.
	var nt *Telemetry
	nt.Record(QueryEvent{}, key, true)
	if nt.Sample() {
		t.Error("nil telemetry must not sample")
	}
}

func TestTelemetrySampleRate(t *testing.T) {
	if (&Telemetry{SampleRate: 0}).Sample() {
		t.Error("rate 0 sampled")
	}
	if !(&Telemetry{SampleRate: 1}).Sample() {
		t.Error("rate 1 did not sample")
	}
	hits := 0
	tel := &Telemetry{SampleRate: 0.5}
	for i := 0; i < 1000; i++ {
		if tel.Sample() {
			hits++
		}
	}
	if hits < 350 || hits > 650 {
		t.Errorf("rate 0.5 hit %d/1000", hits)
	}
}

func TestNewTelemetryCapacities(t *testing.T) {
	tel := NewTelemetry(0, 0, 0, 0)
	if tel.Events == nil || tel.Slow == nil || tel.Shapes == nil {
		t.Fatal("defaults must enable both rings and the shape table")
	}
	if n := len(tel.Events.ring); n != DefaultEventLogSize {
		t.Errorf("default event ring = %d", n)
	}
	off := NewTelemetry(-1, -1, 0, 0)
	if off.Events != nil || off.Slow != nil {
		t.Error("negative capacities must disable the rings")
	}
	// Disabled rings still record shapes without panicking.
	off.Record(QueryEvent{Duration: time.Millisecond}, ShapeKey{Alg: "stps"}, true)
	if len(off.Shapes.Rows()) != 1 {
		t.Error("shape table should work with rings disabled")
	}
}

// TestAllocsEventRecord is the alloc-budget regression for the unsampled
// event-log hot path: once a query shape exists, recording an event must
// cost at most one allocation (in practice zero — a value copy into the
// ring plus atomic adds on the shape aggregate).
func TestAllocsEventRecord(t *testing.T) {
	tel := NewTelemetry(0, 0, 0, 0)
	key := ShapeKey{Alg: "stps", Variant: "range", Sim: "jaccard", K: 10, RBucket: RadiusBucket(0.1), Sets: 2}
	ev := QueryEvent{
		Algorithm: "stps", Variant: "range", K: 10, Radius: 0.1,
		Duration: time.Millisecond, IOTime: 100 * time.Microsecond,
		LogicalReads: 400, PhysicalReads: 40, Combinations: 12,
		Outcome: "ok",
	}
	tel.Record(ev, key, true) // register the shape: steady state starts here
	avg := testing.AllocsPerRun(1000, func() {
		tel.Record(ev, key, true)
	})
	if avg > 1 {
		t.Errorf("unsampled Record = %.2f allocs/op, budget is 1", avg)
	}
}

// TestSpanStringDeepTree renders a span tree deeper than the 14 levels the
// name column can absorb: the width clamp must keep every line intact
// instead of feeding a negative width to Fprintf.
func TestSpanStringDeepTree(t *testing.T) {
	tr := NewTrace("root", nil)
	const depth = 18
	for i := 0; i < depth; i++ {
		tr.StartPhase(fmt.Sprintf("level%02d", i))
	}
	out := tr.Finish().String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != depth+1 {
		t.Fatalf("rendered %d lines, want %d:\n%s", len(lines), depth+1, out)
	}
	for i, line := range lines {
		if !strings.Contains(line, "reads") {
			t.Errorf("line %d lost its read column: %q", i, line)
		}
	}
	if !strings.Contains(lines[depth], fmt.Sprintf("level%02d", depth-1)) {
		t.Errorf("deepest span name missing: %q", lines[depth])
	}
	// Indentation keeps growing even after the name column bottoms out.
	if !strings.HasPrefix(lines[depth], strings.Repeat("  ", depth)) {
		t.Errorf("deepest line lost its indent: %q", lines[depth])
	}
}
