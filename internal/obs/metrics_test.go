package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("queries_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d", c.Value())
	}
	if r.Counter("queries_total") != c {
		t.Error("counter lookup must return the same instrument")
	}
	g := r.Gauge("pool_len")
	g.Set(3.5)
	if g.Value() != 3.5 {
		t.Errorf("gauge = %v", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("reads", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 3, 10, 11, 1000} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["reads"]
	// Buckets: ≤1, ≤10, ≤100, +Inf → per-bucket counts 2, 2, 1, 1.
	want := []int64{2, 2, 1, 1}
	if !reflect.DeepEqual(s.Counts, want) {
		t.Errorf("counts = %v, want %v", s.Counts, want)
	}
	if s.Count != 6 {
		t.Errorf("count = %d", s.Count)
	}
	if s.Sum != 0.5+1+3+10+11+1000 {
		t.Errorf("sum = %v", s.Sum)
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("hits").Inc()
				r.Histogram("lat", LatencyBuckets).Observe(0.001)
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["hits"] != 8000 {
		t.Errorf("hits = %d", s.Counters["hits"])
	}
	if s.Histograms["lat"].Count != 8000 {
		t.Errorf("observations = %d", s.Histograms["lat"].Count)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter(`hits_total{pool="objects"}`).Add(7)
	r.Gauge("fill").Set(0.25)
	r.Histogram("lat", []float64{0.01, 0.1}).Observe(0.05)
	snap := r.Snapshot()

	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Errorf("round trip:\n got %+v\nwant %+v", back, snap)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter(`stpq_bufferpool_hits_total{pool="objects"}`).Add(3)
	r.Counter(`stpq_bufferpool_hits_total{pool="restaurants"}`).Add(5)
	r.Gauge("stpq_pool_fill").Set(0.5)
	h := r.Histogram("stpq_query_seconds", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE stpq_bufferpool_hits_total counter",
		`stpq_bufferpool_hits_total{pool="objects"} 3`,
		`stpq_bufferpool_hits_total{pool="restaurants"} 5`,
		"# TYPE stpq_pool_fill gauge",
		"stpq_pool_fill 0.5",
		"# TYPE stpq_query_seconds histogram",
		`stpq_query_seconds_bucket{le="0.01"} 1`,
		`stpq_query_seconds_bucket{le="0.1"} 2`,
		`stpq_query_seconds_bucket{le="+Inf"} 3`,
		"stpq_query_seconds_sum 5.055",
		"stpq_query_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The TYPE line for a labeled family must appear exactly once.
	if n := strings.Count(out, "# TYPE stpq_bufferpool_hits_total counter"); n != 1 {
		t.Errorf("TYPE line emitted %d times", n)
	}
	// Every non-comment line must be `name value` or `name{labels} value`.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("malformed line %q", line)
		}
	}
}
