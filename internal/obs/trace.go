// Package obs is the observability substrate of the engine: a span-based
// query tracer and a metrics registry (counters, gauges, histograms) with
// JSON and Prometheus text exposition.
//
// The paper's whole evaluation is an exercise in cost attribution — every
// query cost is split into an I/O part and a CPU part, and the NN variant
// additionally isolates its Voronoi-construction share (Figures 13–14).
// The tracer generalizes that: each query carries a tree of named spans
// (`combos.generate`, `objects.retrieve`, `voronoi.build`, ...), each with
// monotonic timings and per-span page-read deltas, so the breakdown the
// paper plots per figure is available per query.
//
// Tracing is designed to be compiled in always: a nil *Trace is a valid
// no-op tracer — every method is nil-safe and returns immediately — so the
// disabled path costs one pointer check per instrumentation point.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// ReadCounters supplies cumulative logical/physical page-read totals; the
// tracer diffs consecutive calls to attribute reads to spans. The engine
// passes a closure over its buffer-pool counters.
type ReadCounters func() (logical, physical int64)

// Trace is one query's span tree. A nil *Trace is the disabled tracer:
// all methods are no-ops. A Trace is not safe for concurrent use — query
// execution is single-threaded, as in the paper.
type Trace struct {
	root  *Span
	stack []*Span
	reads ReadCounters
}

// NewTrace opens a trace whose root span starts immediately. reads may be
// nil, in which case spans carry timings only.
func NewTrace(name string, reads ReadCounters) *Trace {
	t := &Trace{reads: reads}
	t.root = &Span{Name: name, t: t}
	t.root.resume()
	t.stack = []*Span{t.root}
	return t
}

// Root returns the root span (valid after Finish for a complete picture).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// SetRequestID stamps the root span with the request ID the query ran
// under, so a span tree fished out of the event log is attributable to one
// request. Nil-safe.
func (t *Trace) SetRequestID(id string) {
	if t == nil || id == "" {
		return
	}
	t.root.RequestID = id
}

// MarkKeep flags the root span as explicitly requested (engine toggle,
// per-query TraceOn, or a sampling hit) rather than merely collected in
// case the query turns out slow. Nil-safe.
func (t *Trace) MarkKeep() {
	if t == nil {
		return
	}
	t.root.keep = true
}

// StartPhase opens (or re-enters) the child span with the given name under
// the currently open span, accumulating duration, entry count and read
// deltas across re-entries. This keeps the span tree bounded even when
// phases interleave thousands of times per query, which is exactly the
// access pattern of STPS (pull combination, retrieve objects, repeat).
// Re-entering a span that is still running is not supported.
func (t *Trace) StartPhase(name string) *Span {
	if t == nil {
		return nil
	}
	cur := t.stack[len(t.stack)-1]
	var s *Span
	for _, c := range cur.Children {
		if c.Name == name {
			s = c
			break
		}
	}
	if s == nil {
		s = &Span{Name: name, t: t}
		cur.Children = append(cur.Children, s)
	}
	s.resume()
	t.stack = append(t.stack, s)
	return s
}

// Finish ends every span still open (innermost first) and returns the
// root. It is idempotent.
func (t *Trace) Finish() *Span {
	if t == nil {
		return nil
	}
	for len(t.stack) > 0 {
		top := t.stack[len(t.stack)-1]
		if top.running {
			top.End()
		} else {
			t.stack = t.stack[:len(t.stack)-1]
		}
	}
	return t.root
}

// Span is one named phase of a query: accumulated wall time, page-read
// deltas attributed while the span was open, optional counters, and child
// spans. Exported fields marshal to JSON for machine-readable output.
type Span struct {
	Name string `json:"name"`
	// Count is the number of times the span was entered (phase spans are
	// re-entered once per combination/batch/etc.).
	Count    int           `json:"count"`
	Duration time.Duration `json:"duration_ns"`
	// LogicalReads and PhysicalReads are the page reads observed while the
	// span (including its children) was open.
	LogicalReads  int64            `json:"logical_reads"`
	PhysicalReads int64            `json:"physical_reads"`
	Counters      map[string]int64 `json:"counters,omitempty"`
	Children      []*Span          `json:"children,omitempty"`
	// RequestID is set on root spans of queries that ran under a
	// request-scoped context (Trace.SetRequestID).
	RequestID string `json:"request_id,omitempty"`

	t                  *Trace
	running            bool
	keep               bool
	start              time.Time
	startLog, startPhy int64
}

// Kept reports whether the trace was explicitly requested (engine toggle,
// per-query opt-in, or a sampling hit). Traces collected only so a
// slow-query capture would be complete report false and are dropped from
// event records unless the query actually crossed the slow threshold.
func (s *Span) Kept() bool { return s != nil && s.keep }

// MarkKeep flags the span as explicitly requested. Engine wrappers that
// assemble root spans by hand (the sharded engine) use it directly.
func (s *Span) MarkKeep() {
	if s != nil {
		s.keep = true
	}
}

// resume (re)enters the span.
func (s *Span) resume() {
	s.Count++
	s.running = true
	s.start = time.Now()
	if s.t.reads != nil {
		s.startLog, s.startPhy = s.t.reads()
	}
}

// End closes the span, accumulating its duration and read deltas. Nil-safe
// and idempotent (ending an already-ended span is a no-op).
func (s *Span) End() {
	if s == nil || !s.running {
		return
	}
	s.running = false
	s.Duration += time.Since(s.start)
	if s.t.reads != nil {
		l, p := s.t.reads()
		s.LogicalReads += l - s.startLog
		s.PhysicalReads += p - s.startPhy
	}
	if st := s.t.stack; len(st) > 0 && st[len(st)-1] == s {
		s.t.stack = st[:len(st)-1]
	}
}

// Add accumulates a named counter on the span. Nil-safe.
func (s *Span) Add(name string, n int64) {
	if s == nil {
		return
	}
	if s.Counters == nil {
		s.Counters = make(map[string]int64)
	}
	s.Counters[name] += n
}

// SelfPhysicalReads returns the span's physical reads not attributed to
// any child — the residual a breakdown must not lose.
func (s *Span) SelfPhysicalReads() int64 {
	if s == nil {
		return 0
	}
	v := s.PhysicalReads
	for _, c := range s.Children {
		v -= c.PhysicalReads
	}
	return v
}

// Walk visits the span and its descendants depth-first, passing each
// span's depth and slash-separated path (excluding the root name).
func (s *Span) Walk(fn func(path string, depth int, sp *Span)) {
	if s == nil {
		return
	}
	var rec func(prefix string, depth int, sp *Span)
	rec = func(prefix string, depth int, sp *Span) {
		fn(prefix, depth, sp)
		for _, c := range sp.Children {
			p := c.Name
			if prefix != "" {
				p = prefix + "/" + c.Name
			}
			rec(p, depth+1, c)
		}
	}
	rec("", 0, s)
}

// String renders the span tree, one line per span:
//
//	stps.range                    ×1     1.2ms   412/37 reads
//	  combos.generate             ×13  812µs    300/21 reads  combinations=12
func (s *Span) String() string {
	if s == nil {
		return "<no trace>"
	}
	var b strings.Builder
	s.Walk(func(_ string, depth int, sp *Span) {
		width := 28 - 2*depth
		if width < 1 {
			width = 1 // deep STPS traces must stay renderable, not aligned
		}
		fmt.Fprintf(&b, "%s%-*s ×%-5d %9s  %d/%d reads",
			strings.Repeat("  ", depth), width, sp.Name, sp.Count,
			sp.Duration.Round(time.Microsecond), sp.LogicalReads, sp.PhysicalReads)
		if len(sp.Counters) > 0 {
			keys := make([]string, 0, len(sp.Counters))
			for k := range sp.Counters {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&b, "  %s=%d", k, sp.Counters[k])
			}
		}
		b.WriteByte('\n')
	})
	return b.String()
}
