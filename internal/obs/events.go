package obs

// events.go is the query event log and the per-shape statistics table:
// every finished query leaves one fixed-size structured record in a ring
// buffer (cheap fields always, the full span tree only when sampled,
// explicitly requested, or slower than the slow-query threshold), and
// feeds a per-shape aggregate — the cost table EXPLAIN predictions and the
// future cost-based planner read from.
//
// The unsampled hot path is allocation-free in steady state: events are
// value types copied into a preallocated ring, and shape aggregation is an
// RLock map lookup plus atomic adds once the shape exists.

import (
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// QueryEvent is one query's structured record in the event log.
type QueryEvent struct {
	// Seq is the event's position in the log's append order (1-based).
	Seq uint64
	// Start is when query execution began.
	Start time.Time
	// RequestID attributes the event to one request (empty for library
	// callers that did not set one).
	RequestID string
	// Shape is the canonical query shape (ShapeKey.String interned by
	// ShapeStats), the join key into the per-shape statistics.
	Shape string
	// Algorithm is "stds" or "stps"; Variant the score variant name.
	Algorithm string
	Variant   string
	K         int
	Radius    float64
	// Duration is the measured wall time of query processing; IOTime the
	// modeled disk time.
	Duration time.Duration
	IOTime   time.Duration
	LogicalReads,
	PhysicalReads int64
	Combinations,
	FeaturesPulled,
	ObjectsScored int
	// ShardFanout and ShardPruned count shards queried / skipped by the
	// scatter-gather (zero on unsharded engines).
	ShardFanout,
	ShardPruned int
	// Mode is "approx" for fast-tier executions, "" for exact.
	// ApproxCandidates/ApproxPruned are the tier's sketch checks and LSH
	// rejections (zero in exact mode).
	Mode             string
	ApproxCandidates int64
	ApproxPruned     int64
	// CacheHit marks events recorded for serve-layer result-cache hits,
	// which never touch the engine.
	CacheHit bool
	// Sampled reports that the span tree was kept by the probabilistic
	// sampler (or explicit request); Slow that the query crossed the
	// slow-query threshold.
	Sampled bool
	Slow    bool
	// Outcome is "ok" or "error"; Error carries the error text.
	Outcome string
	Error   string
	// Trace is the full span tree, present only when Sampled or Slow.
	Trace *Span
}

// EventLog is a fixed-capacity ring buffer of query events. Record copies
// the event into the ring under a short mutex — no allocation, no
// false sharing with readers — so it is cheap enough to stay always on.
type EventLog struct {
	mu   sync.Mutex
	ring []QueryEvent
	seq  uint64
}

// NewEventLog returns a ring of the given capacity (minimum 1).
func NewEventLog(capacity int) *EventLog {
	if capacity < 1 {
		capacity = 1
	}
	return &EventLog{ring: make([]QueryEvent, capacity)}
}

// Record appends one event, overwriting the oldest once the ring is full,
// and assigns its sequence number. Nil-safe.
func (l *EventLog) Record(ev QueryEvent) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.seq++
	ev.Seq = l.seq
	l.ring[(l.seq-1)%uint64(len(l.ring))] = ev
	l.mu.Unlock()
}

// Len returns the number of events currently held (≤ capacity).
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.seq < uint64(len(l.ring)) {
		return int(l.seq)
	}
	return len(l.ring)
}

// Recent returns up to n events, newest first. n ≤ 0 means all held.
func (l *EventLog) Recent(n int) []QueryEvent {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	held := int(l.seq)
	if held > len(l.ring) {
		held = len(l.ring)
	}
	if n <= 0 || n > held {
		n = held
	}
	out := make([]QueryEvent, n)
	for i := 0; i < n; i++ {
		out[i] = l.ring[(l.seq-1-uint64(i))%uint64(len(l.ring))]
	}
	return out
}

// ShapeKey identifies a query shape: the coordinates that determine a
// query's cost profile, with the radius quantized so nearly identical radii
// share statistics. Two queries with the same key are expected to cost
// about the same, which is what makes the per-shape means predictive.
type ShapeKey struct {
	// Alg is "stds" or "stps"; Variant and Sim are the enum names.
	Alg     string
	Variant string
	Sim     string
	K       int
	// RBucket is RadiusBucket(Radius).
	RBucket int
	// Sets counts the non-empty query keyword sets.
	Sets int
	// Mode is the execution mode dimension: "" for exact (the zero value,
	// so shapes.json files exported before the approximate tier existed
	// decode onto the exact shapes instead of polluting approx
	// predictions), "approx" for the approximate fast tier.
	Mode string `json:"Mode,omitempty"`
}

// noRadius is the RBucket sentinel for radius-free queries (NN variant).
const noRadius = math.MinInt32

// RadiusBucket quantizes a radius into half-powers of two (two buckets per
// doubling), collapsing nearly equal radii onto one shape.
func RadiusBucket(r float64) int {
	if r <= 0 {
		return noRadius
	}
	return int(math.Round(2 * math.Log2(r)))
}

// String renders the canonical shape label, e.g.
// "stps|range|jaccard|k=10|r~0.0117|sets=2". It is injective over keys
// whose Alg/Variant/Sim fields are pipe-free enum names: the rounded radius
// preview is unambiguous because adjacent buckets differ by a factor of √2
// (well above the 3-significant-digit resolution), and buckets whose
// preview would over- or underflow the float range fall back to the exact
// bucket number.
func (k ShapeKey) String() string {
	r := "r=-"
	if k.RBucket != noRadius {
		if v := math.Exp2(float64(k.RBucket) / 2); v > 0 && !math.IsInf(v, 1) {
			r = "r~" + strconv.FormatFloat(v, 'g', 3, 64)
		} else {
			r = "r#" + strconv.Itoa(k.RBucket)
		}
	}
	label := k.Alg + "|" + k.Variant + "|" + k.Sim +
		"|k=" + strconv.Itoa(k.K) + "|" + r + "|sets=" + strconv.Itoa(k.Sets)
	// Exact shapes keep their historical label (no mode segment), so
	// dashboards and persisted statistics stay byte-stable.
	if k.Mode != "" {
		label += "|mode=" + k.Mode
	}
	return label
}

// shapeAgg accumulates per-shape totals. Fields are atomics so the hot
// path adds without holding the table lock.
type shapeAgg struct {
	name     string // interned ShapeKey.String()
	count    atomic.Int64
	duration atomic.Int64 // nanoseconds
	ioTime   atomic.Int64 // nanoseconds
	logical  atomic.Int64
	physical atomic.Int64
	combos   atomic.Int64
}

// ShapeStats is the per-shape aggregate table: query count and cost totals
// keyed by canonical shape. Safe for concurrent use; observation is an
// RLock lookup plus atomic adds once the shape exists.
type ShapeStats struct {
	mu sync.RWMutex
	m  map[ShapeKey]*shapeAgg
}

// NewShapeStats returns an empty table.
func NewShapeStats() *ShapeStats {
	return &ShapeStats{m: make(map[ShapeKey]*shapeAgg)}
}

// Observe feeds one finished query into the table and returns the interned
// shape label (shared by every event of the shape, so recording an event
// does not allocate). Nil-safe: returns "" on a nil table.
func (s *ShapeStats) Observe(k ShapeKey, wall, ioTime time.Duration, logical, physical int64, combos int) string {
	if s == nil {
		return ""
	}
	s.mu.RLock()
	a := s.m[k]
	s.mu.RUnlock()
	if a == nil {
		s.mu.Lock()
		if a = s.m[k]; a == nil {
			a = &shapeAgg{name: k.String()}
			s.m[k] = a
		}
		s.mu.Unlock()
	}
	a.count.Add(1)
	a.duration.Add(int64(wall))
	a.ioTime.Add(int64(ioTime))
	a.logical.Add(logical)
	a.physical.Add(physical)
	a.combos.Add(int64(combos))
	return a.name
}

// Name returns the interned label of a shape if it has been observed, or a
// freshly rendered one otherwise (used for cache-hit events, which must
// not count as engine executions).
func (s *ShapeStats) Name(k ShapeKey) string {
	if s == nil {
		return ""
	}
	s.mu.RLock()
	a := s.m[k]
	s.mu.RUnlock()
	if a != nil {
		return a.name
	}
	return k.String()
}

// MinPredictSamples is how many recorded executions a shape needs before
// Predict reports means — fewer and the "prediction" would just echo noise.
const MinPredictSamples = 3

// ShapePrediction is the aggregate cost profile of one query shape: the
// recorded means EXPLAIN reports as predicted cost.
type ShapePrediction struct {
	Shape             string        `json:"shape"`
	Samples           int64         `json:"samples"`
	MeanDuration      time.Duration `json:"mean_duration_ns"`
	MeanIOTime        time.Duration `json:"mean_io_ns"`
	MeanLogicalReads  float64       `json:"mean_logical_reads"`
	MeanPhysicalReads float64       `json:"mean_physical_reads"`
	MeanCombinations  float64       `json:"mean_combinations"`
}

// prediction snapshots one aggregate.
func (a *shapeAgg) prediction() ShapePrediction {
	n := a.count.Load()
	p := ShapePrediction{Shape: a.name, Samples: n}
	if n == 0 {
		return p
	}
	p.MeanDuration = time.Duration(a.duration.Load() / n)
	p.MeanIOTime = time.Duration(a.ioTime.Load() / n)
	p.MeanLogicalReads = float64(a.logical.Load()) / float64(n)
	p.MeanPhysicalReads = float64(a.physical.Load()) / float64(n)
	p.MeanCombinations = float64(a.combos.Load()) / float64(n)
	return p
}

// Predict returns the recorded cost profile of the shape, or nil while the
// shape has fewer than MinPredictSamples recorded executions. Nil-safe.
func (s *ShapeStats) Predict(k ShapeKey) *ShapePrediction {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	a := s.m[k]
	s.mu.RUnlock()
	if a == nil || a.count.Load() < MinPredictSamples {
		return nil
	}
	p := a.prediction()
	return &p
}

// Cost returns the recorded mean total cost of the shape — wall time plus
// modeled I/O time, the paper's cost metric — and its sample count, both
// zero for an unobserved shape. It is allocation-free, so planners can
// consult it on the query hot path. Callers apply their own sample floor
// (MinPredictSamples) to decide whether the mean is trustworthy. Nil-safe.
func (s *ShapeStats) Cost(k ShapeKey) (mean time.Duration, samples int64) {
	if s == nil {
		return 0, 0
	}
	s.mu.RLock()
	a := s.m[k]
	s.mu.RUnlock()
	if a == nil {
		return 0, 0
	}
	n := a.count.Load()
	if n == 0 {
		return 0, 0
	}
	return time.Duration((a.duration.Load() + a.ioTime.Load()) / n), n
}

// ShapeRecord is the serialized form of one shape's raw totals — what
// Export writes and Import reads, so per-shape statistics survive process
// restarts and the planner is warm from boot.
type ShapeRecord struct {
	Key           ShapeKey `json:"key"`
	Samples       int64    `json:"samples"`
	DurationNanos int64    `json:"duration_ns"`
	IONanos       int64    `json:"io_ns"`
	LogicalReads  int64    `json:"logical_reads"`
	PhysicalReads int64    `json:"physical_reads"`
	Combinations  int64    `json:"combinations"`
}

// Export snapshots every shape's raw totals, sorted by shape label for a
// deterministic serialization. Nil-safe.
func (s *ShapeStats) Export() []ShapeRecord {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	out := make([]ShapeRecord, 0, len(s.m))
	for k, a := range s.m {
		out = append(out, ShapeRecord{
			Key:           k,
			Samples:       a.count.Load(),
			DurationNanos: a.duration.Load(),
			IONanos:       a.ioTime.Load(),
			LogicalReads:  a.logical.Load(),
			PhysicalReads: a.physical.Load(),
			Combinations:  a.combos.Load(),
		})
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key.String() < out[j].Key.String() })
	return out
}

// Import merges exported records into the table, adding their totals onto
// whatever the table already holds (so replaying a snapshot over live
// statistics never loses either side). Records with no samples are
// skipped. Nil-safe.
func (s *ShapeStats) Import(recs []ShapeRecord) {
	if s == nil {
		return
	}
	for _, r := range recs {
		if r.Samples <= 0 {
			continue
		}
		s.mu.Lock()
		a := s.m[r.Key]
		if a == nil {
			a = &shapeAgg{name: r.Key.String()}
			s.m[r.Key] = a
		}
		s.mu.Unlock()
		a.count.Add(r.Samples)
		a.duration.Add(r.DurationNanos)
		a.ioTime.Add(r.IONanos)
		a.logical.Add(r.LogicalReads)
		a.physical.Add(r.PhysicalReads)
		a.combos.Add(r.Combinations)
	}
}

// Rows returns every observed shape's profile, most-queried first (ties by
// shape label), regardless of sample count.
func (s *ShapeStats) Rows() []ShapePrediction {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	out := make([]ShapePrediction, 0, len(s.m))
	for _, a := range s.m {
		out = append(out, a.prediction())
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Samples != out[j].Samples {
			return out[i].Samples > out[j].Samples
		}
		return out[i].Shape < out[j].Shape
	})
	return out
}

// WritePrometheus writes the table as counter families labeled by shape
// (Prometheus text exposition v0.0.4). Shape labels are built from enum
// names and numbers only, so no escaping is needed.
func (s *ShapeStats) WritePrometheus(w io.Writer) error {
	if s == nil {
		return nil
	}
	rows := s.Rows()
	sort.Slice(rows, func(i, j int) bool { return rows[i].Shape < rows[j].Shape })
	families := []struct {
		name  string
		value func(ShapePrediction) string
	}{
		{"stpq_shape_queries_total", func(p ShapePrediction) string {
			return strconv.FormatInt(p.Samples, 10)
		}},
		{"stpq_shape_seconds_total", func(p ShapePrediction) string {
			return formatFloat(p.MeanDuration.Seconds() * float64(p.Samples))
		}},
		{"stpq_shape_io_seconds_total", func(p ShapePrediction) string {
			return formatFloat(p.MeanIOTime.Seconds() * float64(p.Samples))
		}},
		{"stpq_shape_logical_reads_total", func(p ShapePrediction) string {
			return formatFloat(p.MeanLogicalReads * float64(p.Samples))
		}},
		{"stpq_shape_physical_reads_total", func(p ShapePrediction) string {
			return formatFloat(p.MeanPhysicalReads * float64(p.Samples))
		}},
		{"stpq_shape_combinations_total", func(p ShapePrediction) string {
			return formatFloat(p.MeanCombinations * float64(p.Samples))
		}},
	}
	for _, f := range families {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", f.name); err != nil {
			return err
		}
		for _, p := range rows {
			if _, err := fmt.Fprintf(w, "%s{shape=%q} %s\n", f.name, p.Shape, f.value(p)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Default ring capacities when a Telemetry is built with zero sizes.
const (
	DefaultEventLogSize = 1024
	DefaultSlowLogSize  = 128
)

// Telemetry bundles the always-on query telemetry of an engine: the event
// ring, the slow-query ring, the per-shape table, and the trace sampling
// policy. A nil *Telemetry disables everything (all methods are nil-safe).
type Telemetry struct {
	// Events is the recent-query ring; Slow the slow-query ring (complete
	// traces for every query over SlowThreshold). Either may be nil.
	Events *EventLog
	Slow   *EventLog
	// Shapes is the per-shape statistics table (nil disables it).
	Shapes *ShapeStats
	// SampleRate is the probability that a query without an explicit
	// tracing decision collects — and its event record keeps — a full span
	// tree. 0 disables sampling, 1 traces everything.
	SampleRate float64
	// SlowThreshold, when positive, forces span collection on every query
	// so that any query slower than the threshold lands in Slow with a
	// complete trace. The trace is dropped from the record (and from the
	// query's Stats) unless the query was sampled or actually slow.
	SlowThreshold time.Duration
}

// NewTelemetry builds a bundle: ring capacities ≤ 0 keep that ring nil
// (disabled), 0 picks the default size; the shape table is always on.
func NewTelemetry(eventCap, slowCap int, sampleRate float64, slowThreshold time.Duration) *Telemetry {
	t := &Telemetry{Shapes: NewShapeStats(), SampleRate: sampleRate, SlowThreshold: slowThreshold}
	if eventCap == 0 {
		eventCap = DefaultEventLogSize
	}
	if slowCap == 0 {
		slowCap = DefaultSlowLogSize
	}
	if eventCap > 0 {
		t.Events = NewEventLog(eventCap)
	}
	if slowCap > 0 {
		t.Slow = NewEventLog(slowCap)
	}
	return t
}

// Sample draws the trace-sampling decision. Nil-safe.
func (t *Telemetry) Sample() bool {
	if t == nil || t.SampleRate <= 0 {
		return false
	}
	return t.SampleRate >= 1 || rand.Float64() < t.SampleRate
}

// Record files one query event: it resolves the shape label (counting the
// execution into the shape table unless observeShape is false, as for
// cache hits and errors), applies the slow-query and trace-keeping policy,
// and appends to the rings. Nil-safe.
func (t *Telemetry) Record(ev QueryEvent, key ShapeKey, observeShape bool) {
	if t == nil {
		return
	}
	if observeShape {
		ev.Shape = t.Shapes.Observe(key, ev.Duration, ev.IOTime, ev.LogicalReads, ev.PhysicalReads, ev.Combinations)
	} else {
		ev.Shape = t.Shapes.Name(key)
	}
	ev.Slow = t.SlowThreshold > 0 && ev.Duration >= t.SlowThreshold
	if ev.Trace != nil {
		ev.Sampled = ev.Trace.Kept()
		if !ev.Sampled && !ev.Slow {
			// Collected only in case the query turned out slow; it didn't.
			ev.Trace = nil
		}
	}
	t.Events.Record(ev)
	if ev.Slow {
		t.Slow.Record(ev)
	}
}
