package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	sp := tr.StartPhase("anything")
	sp.End()
	sp.Add("counter", 3)
	if tr.Root() != nil {
		t.Error("nil trace must have nil root")
	}
	if tr.Finish() != nil {
		t.Error("Finish on nil trace must return nil")
	}
	if got := sp.SelfPhysicalReads(); got != 0 {
		t.Errorf("nil span SelfPhysicalReads = %d", got)
	}
	if got := (*Span)(nil).String(); got != "<no trace>" {
		t.Errorf("nil span String = %q", got)
	}
}

func TestTracePhaseAccumulation(t *testing.T) {
	var logical, physical int64
	tr := NewTrace("query", func() (int64, int64) { return logical, physical })
	for i := 0; i < 3; i++ {
		sp := tr.StartPhase("combos.generate")
		logical += 10
		physical += 2
		sp.End()
	}
	sp := tr.StartPhase("objects.retrieve")
	logical += 5
	physical += 1
	sp.Add("objects_scored", 7)
	sp.End()
	root := tr.Finish()

	if root.Name != "query" || len(root.Children) != 2 {
		t.Fatalf("root = %q with %d children", root.Name, len(root.Children))
	}
	combos := root.Children[0]
	if combos.Count != 3 {
		t.Errorf("combos entered %d times, want 3", combos.Count)
	}
	if combos.LogicalReads != 30 || combos.PhysicalReads != 6 {
		t.Errorf("combos reads = %d/%d, want 30/6", combos.LogicalReads, combos.PhysicalReads)
	}
	retrieve := root.Children[1]
	if retrieve.LogicalReads != 5 || retrieve.PhysicalReads != 1 {
		t.Errorf("retrieve reads = %d/%d", retrieve.LogicalReads, retrieve.PhysicalReads)
	}
	if retrieve.Counters["objects_scored"] != 7 {
		t.Errorf("counter = %v", retrieve.Counters)
	}
	// Root saw everything; the self residual is zero here.
	if root.LogicalReads != 35 || root.PhysicalReads != 7 {
		t.Errorf("root reads = %d/%d, want 35/7", root.LogicalReads, root.PhysicalReads)
	}
	if root.SelfPhysicalReads() != 0 {
		t.Errorf("root self reads = %d, want 0", root.SelfPhysicalReads())
	}
}

func TestTraceNestedSpans(t *testing.T) {
	var physical int64
	tr := NewTrace("q", func() (int64, int64) { return physical, physical })
	outer := tr.StartPhase("combos.generate")
	inner := tr.StartPhase("features.pull")
	physical += 4
	inner.End()
	physical += 1
	outer.End()
	root := tr.Finish()

	if len(root.Children) != 1 || len(root.Children[0].Children) != 1 {
		t.Fatalf("wrong nesting: %s", root)
	}
	if got := root.Children[0].PhysicalReads; got != 5 {
		t.Errorf("outer physical = %d, want 5", got)
	}
	if got := root.Children[0].Children[0].PhysicalReads; got != 4 {
		t.Errorf("inner physical = %d, want 4", got)
	}
	if got := root.Children[0].SelfPhysicalReads(); got != 1 {
		t.Errorf("outer self physical = %d, want 1", got)
	}
}

func TestTraceFinishClosesOpenSpans(t *testing.T) {
	tr := NewTrace("q", nil)
	tr.StartPhase("a")
	tr.StartPhase("b") // neither ended explicitly
	root := tr.Finish()
	if root.Children[0].running || root.Children[0].Children[0].running {
		t.Error("Finish left spans running")
	}
	root2 := tr.Finish() // idempotent
	if root2 != root {
		t.Error("second Finish returned a different root")
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTrace("q", nil)
	sp := tr.StartPhase("a")
	sp.End()
	d := sp.Duration
	sp.End() // second End must not change anything
	if sp.Duration != d || sp.Count != 1 {
		t.Error("double End changed the span")
	}
}

func TestSpanStringAndJSON(t *testing.T) {
	tr := NewTrace("stps.range", nil)
	sp := tr.StartPhase("combos.generate")
	sp.Add("combinations", 12)
	sp.End()
	root := tr.Finish()

	s := root.String()
	for _, want := range []string{"stps.range", "combos.generate", "combinations=12"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}

	data, err := json.Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	var back Span
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "stps.range" || len(back.Children) != 1 ||
		back.Children[0].Counters["combinations"] != 12 {
		t.Errorf("JSON round trip lost data: %s", data)
	}
}

func TestWalkPaths(t *testing.T) {
	tr := NewTrace("root", nil)
	tr.StartPhase("a")
	tr.StartPhase("b").End()
	tr.Finish()
	var paths []string
	tr.Root().Walk(func(path string, _ int, _ *Span) { paths = append(paths, path) })
	want := []string{"", "a", "a/b"}
	if len(paths) != len(want) {
		t.Fatalf("paths = %v", paths)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Errorf("path[%d] = %q, want %q", i, paths[i], want[i])
		}
	}
}
