package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. Safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down. Safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution: observations are counted into
// the first bucket whose upper bound is ≥ the value, with an implicit +Inf
// overflow bucket. Safe for concurrent use.
type Histogram struct {
	bounds []float64      // ascending upper bounds
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// LatencyBuckets are the default upper bounds for latency histograms, in
// seconds (sub-millisecond up to 10s — index queries span this range).
var LatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// ReadBuckets are the default upper bounds for page-read histograms.
var ReadBuckets = []float64{
	1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
}

// Registry is a named collection of metrics. Instruments are created on
// first use and live for the registry's lifetime. Metric names may carry
// Prometheus-style labels inline, e.g.
//
//	stpq_bufferpool_hits_total{pool="objects"}
//
// which the Prometheus exporter splits into base name and label set.
// Safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds if needed (bounds are ignored on later lookups).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// HistogramSnapshot is a point-in-time copy of one histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra trailing
	// element for the +Inf bucket.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot is a point-in-time copy of every metric in a registry. It
// marshals to JSON directly and exports to Prometheus text format with
// WritePrometheus.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies out all current metric values.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
			Count:  h.count.Load(),
			Sum:    math.Float64frombits(h.sum.Load()),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}

// splitName separates an inline label set from a metric name:
// `foo{a="b"}` → base `foo`, labels `a="b"`.
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// withLabel appends a label to an (possibly empty) inline label set.
func withLabel(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4): one # TYPE line per metric family, cumulative
// histogram buckets with le labels, and _sum/_count series.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	typed := make(map[string]bool)
	emitType := func(base, kind string) error {
		if typed[base] {
			return nil
		}
		typed[base] = true
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
		return err
	}
	series := func(base, labels string, v string) string {
		if labels == "" {
			return base + " " + v
		}
		return base + "{" + labels + "} " + v
	}

	for _, name := range sortedKeys(s.Counters) {
		base, labels := splitName(name)
		if err := emitType(base, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w, series(base, labels, fmt.Sprintf("%d", s.Counters[name]))); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		base, labels := splitName(name)
		if err := emitType(base, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w, series(base, labels, formatFloat(s.Gauges[name]))); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		base, labels := splitName(name)
		if err := emitType(base, "histogram"); err != nil {
			return err
		}
		h := s.Histograms[name]
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			le := withLabel(labels, fmt.Sprintf("le=%q", formatFloat(bound)))
			if _, err := fmt.Fprintln(w, series(base+"_bucket", le, fmt.Sprintf("%d", cum))); err != nil {
				return err
			}
		}
		le := withLabel(labels, `le="+Inf"`)
		if _, err := fmt.Fprintln(w, series(base+"_bucket", le, fmt.Sprintf("%d", h.Count))); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w, series(base+"_sum", labels, formatFloat(h.Sum))); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w, series(base+"_count", labels, fmt.Sprintf("%d", h.Count))); err != nil {
			return err
		}
	}
	return nil
}

// formatFloat renders a float the way Prometheus clients do.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sortedKeys returns the map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
