package obs

// prometheus_test.go checks the text exposition against the format rules a
// real Prometheus scraper enforces: metric and label names must match the
// identifier grammar, histogram buckets must be cumulative (monotone
// non-decreasing) and end in a +Inf bucket equal to _count, and snapshots
// taken concurrently with increments must stay internally consistent.

import (
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// parseSample splits `name{labels} value` (labels optional) and validates
// the name and each label against the Prometheus grammar.
func parseSample(t *testing.T, line string) (name string, labels map[string]string, value float64) {
	t.Helper()
	sp := strings.LastIndexByte(line, ' ')
	if sp < 0 {
		t.Fatalf("malformed sample line %q", line)
	}
	series, valStr := line[:sp], line[sp+1:]
	v, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		t.Fatalf("sample %q: bad value: %v", line, err)
	}
	labels = map[string]string{}
	name = series
	if i := strings.IndexByte(series, '{'); i >= 0 {
		if !strings.HasSuffix(series, "}") {
			t.Fatalf("sample %q: unterminated label set", line)
		}
		name = series[:i]
		for _, pair := range splitLabelPairs(t, series[i+1:len(series)-1]) {
			eq := strings.IndexByte(pair, '=')
			if eq < 0 {
				t.Fatalf("sample %q: label pair %q has no '='", line, pair)
			}
			ln, lv := pair[:eq], pair[eq+1:]
			if !labelNameRe.MatchString(ln) {
				t.Errorf("sample %q: invalid label name %q", line, ln)
			}
			unq, err := strconv.Unquote(lv)
			if err != nil {
				t.Fatalf("sample %q: label value %q not a quoted string: %v", line, lv, err)
			}
			labels[ln] = unq
		}
	}
	if !metricNameRe.MatchString(name) {
		t.Errorf("invalid metric name %q in %q", name, line)
	}
	return name, labels, v
}

// splitLabelPairs splits a label set on commas outside quoted values.
func splitLabelPairs(t *testing.T, s string) []string {
	t.Helper()
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// exposition renders a registry plus a shape table the way the DB's
// /metrics endpoint does.
func exposition(t *testing.T, r *Registry, shapes *ShapeStats) string {
	t.Helper()
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := shapes.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func testRegistry() (*Registry, *ShapeStats) {
	r := NewRegistry()
	r.Counter("stpq_queries_total").Add(12)
	r.Counter(`stpq_bufferpool_hits_total{pool="objects"}`).Add(7)
	r.Counter(`stpq_serve_rejected_total{reason="overload"}`).Add(2)
	r.Gauge("stpq_ingest_delta_objects").Set(3)
	h := r.Histogram("stpq_query_seconds", LatencyBuckets)
	for _, v := range []float64{0.0001, 0.002, 0.03, 0.4, 20} {
		h.Observe(v)
	}
	f := r.Histogram("stpq_wal_fsync_seconds", []float64{0.001, 0.01, 0.1})
	f.Observe(0.004)

	shapes := NewShapeStats()
	shapes.Observe(ShapeKey{Alg: "stps", Variant: "range", Sim: "jaccard", K: 10, RBucket: RadiusBucket(0.1), Sets: 2},
		2*time.Millisecond, time.Millisecond, 400, 40, 12)
	shapes.Observe(ShapeKey{Alg: "stds", Variant: "nearest-neighbor", Sim: "dice", K: 5, RBucket: noRadius, Sets: 1},
		3*time.Millisecond, time.Millisecond, 500, 50, 0)
	return r, shapes
}

func TestPrometheusNamesAndLabelsValid(t *testing.T) {
	r, shapes := testRegistry()
	out := exposition(t, r, shapes)
	typeRe := regexp.MustCompile(`^# TYPE ([^ ]+) (counter|gauge|histogram)$`)
	samples := 0
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			m := typeRe.FindStringSubmatch(line)
			if m == nil {
				t.Errorf("malformed comment line %q", line)
				continue
			}
			if !metricNameRe.MatchString(m[1]) {
				t.Errorf("invalid family name %q", m[1])
			}
			continue
		}
		parseSample(t, line)
		samples++
	}
	if samples == 0 {
		t.Fatal("exposition produced no samples")
	}
	// The shape families made it into the output with the shape label.
	if !strings.Contains(out, `stpq_shape_queries_total{shape="stps|range|jaccard|`) {
		t.Errorf("shape family missing:\n%s", out)
	}
}

func TestPrometheusHistogramInvariants(t *testing.T) {
	r, shapes := testRegistry()
	out := exposition(t, r, shapes)

	type hist struct {
		buckets []float64 // values in emission order (le ascending, +Inf last)
		infSeen bool
		count   float64
		hasCnt  bool
	}
	hists := map[string]*hist{}
	get := func(name string) *hist {
		h := hists[name]
		if h == nil {
			h = &hist{}
			hists[name] = h
		}
		return h
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, labels, v := parseSample(t, line)
		switch {
		case strings.HasSuffix(name, "_bucket"):
			h := get(strings.TrimSuffix(name, "_bucket"))
			le, ok := labels["le"]
			if !ok {
				t.Errorf("bucket sample without le: %q", line)
				continue
			}
			h.buckets = append(h.buckets, v)
			if le == "+Inf" {
				h.infSeen = true
			}
		case strings.HasSuffix(name, "_count"):
			h := get(strings.TrimSuffix(name, "_count"))
			h.count, h.hasCnt = v, true
		}
	}
	if len(hists) < 2 {
		t.Fatalf("expected at least 2 histogram families, parsed %d", len(hists))
	}
	for name, h := range hists {
		if !h.infSeen {
			t.Errorf("%s: no +Inf bucket", name)
		}
		if !h.hasCnt {
			t.Errorf("%s: no _count series", name)
			continue
		}
		for i := 1; i < len(h.buckets); i++ {
			if h.buckets[i] < h.buckets[i-1] {
				t.Errorf("%s: cumulative buckets decreased at %d: %v", name, i, h.buckets)
			}
		}
		if last := h.buckets[len(h.buckets)-1]; last != h.count {
			t.Errorf("%s: +Inf bucket %v != count %v", name, last, h.count)
		}
	}
}

// TestPrometheusConcurrentSnapshot scrapes while writers increment; run
// under -race this proves Snapshot and WritePrometheus need no external
// locking, and each scrape must still satisfy the histogram invariants.
func TestPrometheusConcurrentSnapshot(t *testing.T) {
	r := NewRegistry()
	shapes := NewShapeStats()
	key := ShapeKey{Alg: "stps", Variant: "range", Sim: "jaccard", K: 10, RBucket: RadiusBucket(0.1), Sets: 2}
	// Pre-create the instruments so the first scrape can't race their birth.
	r.Counter("stpq_queries_total").Inc()
	r.Histogram("stpq_query_seconds", LatencyBuckets).Observe(0.001)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := r.Histogram("stpq_query_seconds", LatencyBuckets)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Counter("stpq_queries_total").Inc()
				h.Observe(float64(i%100) / 1000)
				shapes.Observe(key, time.Millisecond, 0, 10, 1, 2)
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		out := exposition(t, r, shapes)
		if !strings.Contains(out, "stpq_queries_total") {
			t.Fatalf("scrape %d lost the counter:\n%s", i, out)
		}
	}
	close(stop)
	wg.Wait()

	// After the writers stop, the final scrape must be exact.
	snap := r.Snapshot()
	h := snap.Histograms["stpq_query_seconds"]
	var sum int64
	for _, c := range h.Counts {
		sum += c
	}
	if sum != h.Count {
		t.Errorf("bucket sum %d != count %d", sum, h.Count)
	}
}
