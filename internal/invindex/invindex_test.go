package invindex

import (
	"math/rand"
	"testing"
	"testing/quick"

	"stpq/internal/geo"
	"stpq/internal/index"
	"stpq/internal/kwset"
)

func mkFeature(id int64, score float64, width int, kws ...int) index.Feature {
	return index.Feature{
		ID:       id,
		Location: geo.Point{X: 0.5, Y: 0.5},
		Score:    score,
		Keywords: kwset.SetFromWords(width, kws...),
	}
}

func TestBuildAndPostings(t *testing.T) {
	feats := []index.Feature{
		mkFeature(1, 0.9, 8, 0, 1),
		mkFeature(2, 0.5, 8, 1),
		mkFeature(3, 0.7, 8, 1, 2),
	}
	ix := Build(feats, 8)
	if ix.Width() != 8 || ix.NumFeatures() != 3 {
		t.Fatalf("shape: width=%d n=%d", ix.Width(), ix.NumFeatures())
	}
	ps := ix.Postings(1)
	if len(ps) != 3 {
		t.Fatalf("postings(1) = %d", len(ps))
	}
	// Ordered by descending score.
	if ps[0].FeatureID != 1 || ps[1].FeatureID != 3 || ps[2].FeatureID != 2 {
		t.Errorf("order: %+v", ps)
	}
	if ix.DocFrequency(0) != 1 || ix.DocFrequency(2) != 1 || ix.DocFrequency(5) != 0 {
		t.Error("doc frequencies wrong")
	}
	if ix.Postings(-1) != nil || ix.Postings(100) != nil {
		t.Error("out-of-range keyword must return nil")
	}
}

func TestPostingsTieBreakByID(t *testing.T) {
	feats := []index.Feature{
		mkFeature(9, 0.5, 4, 0),
		mkFeature(3, 0.5, 4, 0),
	}
	ix := Build(feats, 4)
	ps := ix.Postings(0)
	if ps[0].FeatureID != 3 || ps[1].FeatureID != 9 {
		t.Errorf("tie break: %+v", ps)
	}
}

func TestTopScore(t *testing.T) {
	feats := []index.Feature{
		mkFeature(1, 0.4, 4, 0),
		mkFeature(2, 0.8, 4, 0),
	}
	ix := Build(feats, 4)
	if got := ix.TopScore(0); got != 0.8 {
		t.Errorf("TopScore = %v", got)
	}
	if got := ix.TopScore(3); got != 0 {
		t.Errorf("unused keyword TopScore = %v", got)
	}
}

func TestRelevantIDsAndSelectivity(t *testing.T) {
	feats := []index.Feature{
		mkFeature(1, 0.9, 8, 0),
		mkFeature(2, 0.5, 8, 1),
		mkFeature(3, 0.7, 8, 2),
		mkFeature(4, 0.6, 8, 0, 1),
	}
	ix := Build(feats, 8)
	q := kwset.SetFromWords(8, 0, 1)
	ids := ix.RelevantIDs(q)
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 2 || ids[2] != 4 {
		t.Errorf("RelevantIDs = %v", ids)
	}
	if got := ix.Selectivity(q); got != 0.75 {
		t.Errorf("Selectivity = %v", got)
	}
	if got := ix.Selectivity(kwset.NewSet(8)); got != 0 {
		t.Errorf("empty query selectivity = %v", got)
	}
	empty := Build(nil, 8)
	if got := empty.Selectivity(q); got != 0 {
		t.Errorf("empty index selectivity = %v", got)
	}
}

// RelevantIDs must agree with a direct scan using set intersection.
func TestRelevantIDsMatchesScanProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const w = 16
		feats := make([]index.Feature, 60)
		for i := range feats {
			kws := kwset.NewSet(w)
			for j := 0; j < 1+rng.Intn(3); j++ {
				kws.Add(rng.Intn(w))
			}
			feats[i] = index.Feature{ID: int64(i), Score: rng.Float64(), Keywords: kws}
		}
		ix := Build(feats, w)
		q := kwset.SetFromWords(w, rng.Intn(w), rng.Intn(w))
		got := ix.RelevantIDs(q)
		want := make(map[int64]bool)
		for _, ft := range feats {
			if ft.Keywords.Intersects(q) {
				want[ft.ID] = true
			}
		}
		if len(got) != len(want) {
			return false
		}
		for _, id := range got {
			if !want[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
