// Package invindex provides an inverted keyword index over feature
// objects: for each keyword id, the posting list of features described by
// it, ordered by non-spatial score. It complements the hierarchical
// spatio-textual indexes with direct keyword-based access — selectivity
// estimation for query planning and keyword statistics surfaced through
// the public API — and serves as an independent oracle for textual
// relevance in tests.
package invindex

import (
	"sort"

	"stpq/internal/index"
	"stpq/internal/kwset"
)

// Posting is one entry of a keyword's posting list.
type Posting struct {
	// FeatureID identifies the feature object.
	FeatureID int64
	// Score is the feature's non-spatial score, used as the posting
	// order (descending) so the best features per keyword come first.
	Score float64
}

// Index is an immutable inverted index over one feature set.
type Index struct {
	width    int
	postings [][]Posting
	features int
}

// Build constructs the index from a feature set over a vocabulary of the
// given width. Keyword ids outside [0, width) are ignored.
func Build(features []index.Feature, width int) *Index {
	ix := &Index{width: width, postings: make([][]Posting, width), features: len(features)}
	for _, f := range features {
		f.Keywords.ForEach(func(id int) {
			if id < width {
				ix.postings[id] = append(ix.postings[id], Posting{FeatureID: f.ID, Score: f.Score})
			}
		})
	}
	for _, ps := range ix.postings {
		sort.Slice(ps, func(i, j int) bool {
			if ps[i].Score != ps[j].Score {
				return ps[i].Score > ps[j].Score
			}
			return ps[i].FeatureID < ps[j].FeatureID
		})
	}
	return ix
}

// Width returns the vocabulary width.
func (ix *Index) Width() int { return ix.width }

// NumFeatures returns the number of indexed features.
func (ix *Index) NumFeatures() int { return ix.features }

// Postings returns the posting list of a keyword in descending score
// order. The returned slice is owned by the index and must not be
// modified.
func (ix *Index) Postings(keyword int) []Posting {
	if keyword < 0 || keyword >= ix.width {
		return nil
	}
	return ix.postings[keyword]
}

// DocFrequency returns the number of features containing the keyword.
func (ix *Index) DocFrequency(keyword int) int { return len(ix.Postings(keyword)) }

// Selectivity returns the fraction of features relevant to the query
// keyword set — i.e. with at least one overlapping keyword. This is the
// fraction of each feature set the per-set streams of STPS can touch in
// the worst case, a direct query-cost predictor.
func (ix *Index) Selectivity(query kwset.Set) float64 {
	if ix.features == 0 {
		return 0
	}
	return float64(len(ix.RelevantIDs(query))) / float64(ix.features)
}

// RelevantIDs returns the distinct ids of features relevant to the query
// keyword set (the union of the keyword posting lists), in ascending id
// order.
func (ix *Index) RelevantIDs(query kwset.Set) []int64 {
	seen := make(map[int64]bool)
	query.ForEach(func(id int) {
		for _, p := range ix.Postings(id) {
			seen[p.FeatureID] = true
		}
	})
	out := make([]int64, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TopScore returns the highest non-spatial score among features containing
// the keyword, or 0 for an unused keyword. Because posting lists are
// score-ordered this is O(1).
func (ix *Index) TopScore(keyword int) float64 {
	ps := ix.Postings(keyword)
	if len(ps) == 0 {
		return 0
	}
	return ps[0].Score
}
