package index

import (
	"fmt"
	"math"

	"stpq/internal/kwset"
)

// Similarity selects the textual similarity function sim(t, W) of
// Definition 1. The paper's experiments use Jaccard but define sim()
// generically; each measure here comes with a sound node-level bound so
// the ŝ(e) ≥ s(t) contract of Section 4.1 — and with it every algorithm —
// holds unchanged.
//
// All measures return 0 when the sets share no keyword, so the
// sim(t, W) > 0 relevance filter is measure-independent.
type Similarity int

const (
	// Jaccard is |t.W ∩ W| / |t.W ∪ W| (the paper's choice).
	Jaccard Similarity = iota
	// Dice is 2|t.W ∩ W| / (|t.W| + |W|).
	Dice
	// Cosine is |t.W ∩ W| / √(|t.W|·|W|) (set cosine).
	Cosine
	// Overlap is |t.W ∩ W| / min(|t.W|, |W|).
	Overlap
)

// String implements fmt.Stringer.
func (s Similarity) String() string {
	switch s {
	case Jaccard:
		return "jaccard"
	case Dice:
		return "dice"
	case Cosine:
		return "cosine"
	case Overlap:
		return "overlap"
	default:
		return fmt.Sprintf("Similarity(%d)", int(s))
	}
}

// Sim computes the similarity between a feature's keywords and the query
// keywords. Empty inputs yield 0.
func (s Similarity) Sim(t, w kwset.Set) float64 {
	switch s {
	case Dice, Cosine, Overlap:
		inter := t.IntersectCount(w)
		if inter == 0 {
			return 0
		}
		switch s {
		case Dice:
			return 2 * float64(inter) / float64(t.Count()+w.Count())
		case Cosine:
			return float64(inter) / math.Sqrt(float64(t.Count())*float64(w.Count()))
		default: // Overlap
			m := t.Count()
			if wc := w.Count(); wc < m {
				m = wc
			}
			return float64(inter) / float64(m)
		}
	default: // Jaccard: one fused popcount pass over the bit words
		inter, union := t.IntersectUnionCount(w)
		if inter == 0 {
			return 0
		}
		return float64(inter) / float64(union)
	}
}

// NodeBound returns an upper bound on Sim(t, w) over every feature t
// whose keywords are contained in the node summary eW. Derivations (with
// i = |eW ∩ w| ≥ |t.W ∩ w| and |t.W| ≥ 1):
//
//	Jaccard: |t∩w|/|t∪w| ≤ i/|w|
//	Dice:    2|t∩w|/(|t|+|w|) ≤ 2i/(1+|w|), capped at 1
//	Cosine:  |t∩w|/√(|t||w|) ≤ √(|t∩w|/|w|) ≤ √(i/|w|), capped at 1
//	Overlap: ≤ 1 whenever i ≥ 1
func (s Similarity) NodeBound(eW, w kwset.Set) float64 {
	wc := w.Count()
	if wc == 0 {
		return 0
	}
	inter := eW.IntersectCount(w)
	if inter == 0 {
		return 0
	}
	switch s {
	case Dice:
		return math.Min(1, 2*float64(inter)/float64(1+wc))
	case Cosine:
		return math.Min(1, math.Sqrt(float64(inter)/float64(wc)))
	case Overlap:
		return 1
	default: // Jaccard
		return float64(inter) / float64(wc)
	}
}
