// Package index builds the two feature-object indexes compared in the
// paper — the SRT-index (Section 4) and the modified IR²-tree (Section 8)
// — plus the plain R-tree over data objects, all on top of the paged
// R-tree of internal/rtree.
//
// Both feature indexes keep, in every entry, the augmentation of Section
// 4.1: the maximum non-spatial score e.s of the subtree and the keyword
// summary e.W of all enclosed feature objects, yielding the query-time
// upper bound
//
//	ŝ(e) = (1−λ)·e.s + λ·|e.W ∩ W| / |W|  ≥  s(t) for every t below e.
//
// They differ only in how leaf entries are clustered at build time:
//
//   - SRT packs features in 4-D Hilbert order of {x, y, t.s, H(t.W)}, so
//     nodes group features that are close in space, in quality AND in
//     textual description — which tightens ŝ(e).
//   - IR² packs features in 2-D Hilbert order of {x, y} only (the
//     spatial-only clustering of a classic IR²-tree whose nodes we augment
//     with the maximum enclosed score, per Section 8).
package index

import (
	"fmt"

	"stpq/internal/approx"
	"stpq/internal/geo"
	"stpq/internal/hilbert"
	"stpq/internal/kwset"
	"stpq/internal/obs"
	"stpq/internal/rtree"
	"stpq/internal/storage"
)

// Kind selects the feature index construction.
type Kind int

const (
	// SRT is the paper's SRT-index (4-D Hilbert clustering).
	SRT Kind = iota
	// IR2 is the modified IR²-tree baseline (spatial clustering).
	IR2
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case SRT:
		return "SRT"
	case IR2:
		return "IR2"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Feature is one feature object t ∈ F_i: a location, a non-spatial score
// t.s ∈ [0,1] and a keyword set t.W.
type Feature struct {
	ID       int64
	Location geo.Point
	Score    float64
	Keywords kwset.Set
}

// Object is one data object p ∈ O.
type Object struct {
	ID       int64
	Location geo.Point
}

// Options configures index construction.
type Options struct {
	// Kind selects SRT or IR2 clustering (feature indexes only).
	Kind Kind
	// VocabWidth is the number of distinct indexed keywords w.
	VocabWidth int
	// PageSize is the disk page size (default storage.DefaultPageSize).
	PageSize int
	// BufferPages is the LRU buffer-pool capacity in pages.
	BufferPages int
	// PoolStripes is the number of independent LRU shards in each buffer
	// pool (0 or 1 = classic single-lock pool; see rtree.Config).
	PoolStripes int
	// CurveBits is the per-dimension resolution of the bulk-load Hilbert
	// sort (default 16).
	CurveBits uint
	// SignatureBits stores hashed keyword signatures of this width in the
	// tree instead of exact keyword bitmaps (classic IR²-tree signature
	// files). 0 keeps exact bitmaps. Signature mode verifies candidate
	// features against a paged record file, adding the false-positive
	// I/O a real signature index pays; results are unchanged.
	SignatureBits int
	// Disk optionally supplies a backing store (default in-memory).
	Disk storage.Disk
}

// withDefaults normalizes zero-valued options.
func (o Options) withDefaults() Options {
	if o.PageSize <= 0 {
		o.PageSize = storage.DefaultPageSize
	}
	if o.CurveBits == 0 || o.CurveBits > 16 {
		o.CurveBits = 16
	}
	return o
}

// FeatureIndex is a spatio-textual index over one feature set F_i. The
// query algorithms traverse it through Tree, lower queries with Prepare,
// compute bounds with EntryBound, prune with EntryRelevant and obtain
// exact feature scores with ResolveLeaf.
type FeatureIndex struct {
	tree    *rtree.Tree
	kind    Kind
	opts    Options
	sigBits int
	records *recordFile // exact keywords, signature mode only
	// sketch is the approximate tier's MinHash sketch slot, shared by all
	// read views of one index generation (Session/WithExclude are shallow
	// copies) and materialized lazily on the first approximate query.
	// Mutating clones (BeginMerge) take a fresh holder.
	sketch *approx.Holder
}

// BuildFeatureIndex bulk-loads the features into a fresh index of the
// given kind.
func BuildFeatureIndex(features []Feature, opts Options) (*FeatureIndex, error) {
	opts = opts.withDefaults()
	if opts.VocabWidth <= 0 {
		return nil, fmt.Errorf("index: VocabWidth must be positive")
	}
	treeWidth := opts.VocabWidth
	if opts.SignatureBits > 0 {
		treeWidth = opts.SignatureBits
	}
	tree, err := rtree.New(rtree.Config{
		PageSize:     opts.PageSize,
		KeywordWidth: treeWidth,
		WithScore:    true,
		BufferPages:  opts.BufferPages,
		PoolStripes:  opts.PoolStripes,
		Disk:         opts.Disk,
	})
	if err != nil {
		return nil, err
	}
	idx := &FeatureIndex{tree: tree, kind: opts.Kind, opts: opts, sigBits: opts.SignatureBits, sketch: approx.NewHolder()}
	if idx.sigBits > 0 {
		idx.records = newRecordFile(opts.VocabWidth, opts.PageSize, opts.BufferPages, opts.PoolStripes)
		for _, f := range features {
			if err := idx.records.put(f.ID, f.Keywords); err != nil {
				return nil, err
			}
		}
	}
	items := make([]rtree.Item, len(features))
	for i, f := range features {
		items[i] = rtree.Item{ID: f.ID, Location: f.Location, Score: f.Score, Keywords: idx.treeKeywords(f.Keywords)}
	}
	if err := tree.BulkLoad(items, idx.sortKey()); err != nil {
		return nil, err
	}
	return idx, nil
}

// treeKeywords lowers a feature's exact keyword set to its tree-side form
// (hashed signature in signature mode).
func (x *FeatureIndex) treeKeywords(exact kwset.Set) kwset.Set {
	if x.sigBits == 0 {
		return exact
	}
	return hashSet(exact, x.sigBits)
}

// sortKey returns the bulk-load ordering for the index kind.
func (x *FeatureIndex) sortKey() rtree.SortKey {
	bits := x.opts.CurveBits
	switch x.kind {
	case SRT:
		// In signature mode the item keywords are already hashed; the
		// Hilbert keyword dimension then clusters by signature.
		w := x.opts.VocabWidth
		if x.sigBits > 0 {
			w = x.sigBits
		}
		return func(it rtree.Item) uint64 {
			h := hilbert.EncodeKeywords(it.Keywords, w)
			return hilbert.Encode4D(
				geo.Quantize(it.Location.X, bits),
				geo.Quantize(it.Location.Y, bits),
				geo.Quantize(it.Score, bits),
				h.Scaled(bits),
				bits,
			)
		}
	default: // IR2
		return func(it rtree.Item) uint64 {
			return hilbert.Encode2D(
				geo.Quantize(it.Location.X, bits),
				geo.Quantize(it.Location.Y, bits),
				bits,
			)
		}
	}
}

// Insert adds one feature incrementally. Node summaries along the
// insertion path absorb the feature's score and keywords (the node-update
// rule of Section 4.2).
func (x *FeatureIndex) Insert(f Feature) error {
	if x.sigBits > 0 {
		if err := x.records.put(f.ID, f.Keywords); err != nil {
			return err
		}
	}
	if x.sketch != nil {
		if sk := x.sketch.Peek(); sk != nil {
			sk.Put(f.ID, f.Keywords)
		}
	}
	return x.tree.Insert(rtree.Item{ID: f.ID, Location: f.Location, Score: f.Score, Keywords: x.treeKeywords(f.Keywords)})
}

// Delete removes the feature with the given id at the given location,
// reporting whether it was found. In signature mode the record-file entry
// is left behind: records are only consulted for ids surfaced from the
// tree, so a stale record is unreachable.
func (x *FeatureIndex) Delete(id int64, loc geo.Point) (bool, error) {
	if x.sketch != nil {
		if sk := x.sketch.Peek(); sk != nil {
			sk.Delete(id)
		}
	}
	return x.tree.Delete(id, loc)
}

// ErrSignatureMerge is returned by BeginMerge for signature-mode indexes:
// the record file is shared mutable state, so incremental merges cannot
// preserve snapshot isolation and callers must fall back to a rebuild.
var ErrSignatureMerge = fmt.Errorf("index: signature-mode indexes do not support incremental merge")

// CanMerge reports whether BeginMerge is supported for this index.
func (x *FeatureIndex) CanMerge() bool { return x.sigBits == 0 }

// BeginMerge returns a mutable copy-on-write clone of the index for an
// incremental merge. The clone reads the same pages through a
// storage.CowDisk, so Insert/Delete on it rewrite only the touched
// subtree pages in a private overlay while the original index — and any
// snapshot pinned to it — keeps reading the original bytes. The clone is
// a fully independent index once returned; publishing it and dropping
// the original completes the merge.
func (x *FeatureIndex) BeginMerge() (*FeatureIndex, error) {
	if x.sigBits > 0 {
		return nil, ErrSignatureMerge
	}
	cfg := x.tree.Config()
	cfg.Disk = storage.NewCowDisk(cfg.Disk)
	tree, err := rtree.Open(cfg, x.tree.Meta())
	if err != nil {
		return nil, err
	}
	c := *x
	c.tree = tree
	c.opts.Disk = cfg.Disk
	// The clone mutates independently of the original; it must not share
	// the original's sketch (pinned snapshots keep reading it).
	c.sketch = approx.NewHolder()
	return &c, nil
}

// WithExclude returns a read view of the index that hides the listed
// feature ids — the tombstone filter of the live-ingest overlay. The
// exclusion survives Session (the per-query view copies the tree handle,
// exclusion set included).
func (x *FeatureIndex) WithExclude(dead map[int64]struct{}) *FeatureIndex {
	if len(dead) == 0 {
		return x
	}
	c := *x
	c.tree = x.tree.WithExclude(dead)
	return &c
}

// Tree exposes the underlying paged R-tree for traversal.
func (x *FeatureIndex) Tree() *rtree.Tree { return x.tree }

// Kind returns the index construction kind.
func (x *FeatureIndex) Kind() Kind { return x.kind }

// Len returns the number of indexed features.
func (x *FeatureIndex) Len() int { return x.tree.Len() }

// Session returns a read view of the index whose page accesses are
// additionally charged to acct — the per-query accounting handle that
// keeps Stats attribution exact when queries run concurrently. The view
// shares the tree structure and page cache with the original index and
// must not be mutated.
func (x *FeatureIndex) Session(acct *storage.Stats) *FeatureIndex {
	c := *x
	c.tree = x.tree.WithPool(x.tree.Pool().Session(acct))
	if x.records != nil {
		rc := *x.records
		rc.pool = x.records.pool.Session(acct)
		c.records = &rc
	}
	return &c
}

// Stats returns the accumulated I/O counters of the index's buffer pool,
// including record-file verification reads in signature mode.
func (x *FeatureIndex) Stats() storage.Stats {
	s := x.tree.Pool().Stats()
	if x.records != nil {
		s.Add(x.records.stats())
	}
	return s
}

// ResetStats zeroes the I/O counters.
func (x *FeatureIndex) ResetStats() {
	x.tree.Pool().ResetStats()
	if x.records != nil {
		x.records.pool.ResetStats()
	}
}

// AttachMetrics aggregates the index's buffer-pool counters (and, in
// signature mode, the record file's) into the registry under the given
// pool name.
func (x *FeatureIndex) AttachMetrics(r *obs.Registry, pool string) {
	x.tree.Pool().SetMetrics(storage.NewPoolMetrics(r, pool))
	if x.records != nil {
		x.records.pool.SetMetrics(storage.NewPoolMetrics(r, pool+"_records"))
	}
}

// QueryKeywords is the per-feature-set textual part of a query: the
// keyword set W_i, the smoothing parameter λ shared by all sets, and the
// similarity measure (zero value = Jaccard, the paper's default).
type QueryKeywords struct {
	Set    kwset.Set
	Lambda float64
	Sim    Similarity
	// Approx, when non-nil, runs leaf resolution through the approximate
	// fast tier (MinHash/LSH candidate pruning; see internal/approx). The
	// request is shared by every view executing one logical query.
	Approx *approx.Request
}

// Score returns the preference score s(t) of a leaf entry under Definition
// 1: s(t) = (1−λ)·t.s + λ·sim(t.W, W).
func Score(e rtree.Entry, q QueryKeywords) float64 {
	return (1-q.Lambda)*e.Score + q.Lambda*q.Sim.Sim(e.Keywords, q.Set)
}

// Bound returns the upper bound ŝ(e) of Section 4.2 for an entry: the
// exact score for leaf entries, and (1−λ)·e.s + λ·NodeBound(e.W, W) for
// internal entries (|e.W∩W|/|W| under Jaccard). For every feature t under
// e, Bound(e) ≥ s(t).
func Bound(e rtree.Entry, q QueryKeywords) float64 {
	if e.Leaf {
		return Score(e, q)
	}
	return (1-q.Lambda)*e.Score + q.Lambda*q.Sim.NodeBound(e.Keywords, q.Set)
}

// Relevant reports whether the entry can contain a feature with positive
// textual similarity to W — the sim(t, W) > 0 pruning test.
func Relevant(e rtree.Entry, q QueryKeywords) bool {
	return e.Keywords.Intersects(q.Set)
}

// ObjectIndex is the plain R-tree over the data objects O.
type ObjectIndex struct {
	tree *rtree.Tree
}

// BuildObjectIndex bulk-loads the data objects in 2-D Hilbert order.
func BuildObjectIndex(objects []Object, opts Options) (*ObjectIndex, error) {
	opts = opts.withDefaults()
	tree, err := rtree.New(rtree.Config{
		PageSize:    opts.PageSize,
		BufferPages: opts.BufferPages,
		PoolStripes: opts.PoolStripes,
		Disk:        opts.Disk,
	})
	if err != nil {
		return nil, err
	}
	items := make([]rtree.Item, len(objects))
	for i, o := range objects {
		items[i] = rtree.Item{ID: o.ID, Location: o.Location}
	}
	bits := opts.CurveBits
	err = tree.BulkLoad(items, func(it rtree.Item) uint64 {
		return hilbert.Encode2D(geo.Quantize(it.Location.X, bits), geo.Quantize(it.Location.Y, bits), bits)
	})
	if err != nil {
		return nil, err
	}
	return &ObjectIndex{tree: tree}, nil
}

// Insert adds one data object incrementally.
func (x *ObjectIndex) Insert(o Object) error {
	return x.tree.Insert(rtree.Item{ID: o.ID, Location: o.Location})
}

// Delete removes the object with the given id at the given location,
// reporting whether it was found.
func (x *ObjectIndex) Delete(id int64, loc geo.Point) (bool, error) {
	return x.tree.Delete(id, loc)
}

// BeginMerge returns a mutable copy-on-write clone of the object index
// (see FeatureIndex.BeginMerge).
func (x *ObjectIndex) BeginMerge() (*ObjectIndex, error) {
	cfg := x.tree.Config()
	cfg.Disk = storage.NewCowDisk(cfg.Disk)
	tree, err := rtree.Open(cfg, x.tree.Meta())
	if err != nil {
		return nil, err
	}
	return &ObjectIndex{tree: tree}, nil
}

// WithExclude returns a read view of the index that hides the listed
// object ids (see FeatureIndex.WithExclude).
func (x *ObjectIndex) WithExclude(dead map[int64]struct{}) *ObjectIndex {
	if len(dead) == 0 {
		return x
	}
	return &ObjectIndex{tree: x.tree.WithExclude(dead)}
}

// Tree exposes the underlying paged R-tree.
func (x *ObjectIndex) Tree() *rtree.Tree { return x.tree }

// Len returns the number of indexed objects.
func (x *ObjectIndex) Len() int { return x.tree.Len() }

// Session returns a read view of the index whose page accesses are
// additionally charged to acct (see FeatureIndex.Session).
func (x *ObjectIndex) Session(acct *storage.Stats) *ObjectIndex {
	return &ObjectIndex{tree: x.tree.WithPool(x.tree.Pool().Session(acct))}
}

// Stats returns the accumulated I/O counters.
func (x *ObjectIndex) Stats() storage.Stats { return x.tree.Pool().Stats() }

// ResetStats zeroes the I/O counters.
func (x *ObjectIndex) ResetStats() { x.tree.Pool().ResetStats() }

// AttachMetrics aggregates the index's buffer-pool counters into the
// registry under the given pool name.
func (x *ObjectIndex) AttachMetrics(r *obs.Registry, pool string) {
	x.tree.Pool().SetMetrics(storage.NewPoolMetrics(r, pool))
}
