package index

import (
	"encoding/binary"
	"fmt"
	"math"

	"stpq/internal/approx"
	"stpq/internal/kwset"
	"stpq/internal/rtree"
	"stpq/internal/storage"
)

// Signature support: with Options.SignatureBits > 0 the feature index
// stores hashed keyword signatures of that width in its tree entries,
// like the signature files of the original IR²-tree [Felipe et al.],
// instead of exact keyword bitmaps. Signatures admit false positives, so
// a feature's exact keywords live in a paged record file and candidate
// leaves pay one page read to verify — the extra I/O a real signature
// index incurs. Query results are identical to exact mode; only the cost
// profile changes (BenchmarkAblationSignature quantifies it).

// sigHash maps a keyword id to its signature bit (Fibonacci hashing).
func sigHash(keyword, bits int) int {
	return int((uint64(keyword)*0x9e3779b97f4a7c15)>>32) % bits
}

// hashSet folds an exact keyword set into a signature of the given width.
func hashSet(exact kwset.Set, bits int) kwset.Set {
	sig := kwset.NewSet(bits)
	exact.ForEach(func(id int) { sig.Add(sigHash(id, bits)) })
	return sig
}

// PreparedQuery carries a query's textual part in both forms: the exact
// keyword set (for final score computation) and the tree-side set — the
// hashed signature in signature mode, the exact set otherwise. For
// approximate queries it additionally carries the query's MinHash
// signature and cardinality (the LSH side of the prepared query).
type PreparedQuery struct {
	Exact QueryKeywords
	Tree  QueryKeywords
	// Approx aliases Exact.Approx for the fast-tier leaf resolution;
	// MinSig and QueryCard are the lowered query-set sketch. MinSig is
	// part-independent (package-level hash seeds), so one prepared query
	// serves every part of a group and every shard identically.
	Approx    *approx.Request
	MinSig    approx.Signature
	QueryCard int
}

// Prepare lowers query keywords for this index.
func (x *FeatureIndex) Prepare(q QueryKeywords) PreparedQuery {
	pq := PreparedQuery{Exact: q, Tree: q}
	if x.sigBits > 0 {
		pq.Tree = QueryKeywords{Set: hashSet(q.Set, x.sigBits), Lambda: q.Lambda}
		if q.Set.IsEmpty() {
			pq.Tree.Set = kwset.NewSet(x.sigBits)
		}
	}
	if q.Approx != nil {
		pq.Approx = q.Approx
		pq.MinSig = approx.SignatureOf(q.Set)
		pq.QueryCard = q.Set.Count()
	}
	return pq
}

// Exact reports whether tree entries carry exact keyword sets (no
// signature hashing).
func (x *FeatureIndex) Exact() bool { return x.sigBits == 0 }

// EntryRelevant reports whether the subtree below e may contain a feature
// with positive textual similarity. In signature mode this test is sound
// but admits false positives.
func (x *FeatureIndex) EntryRelevant(e rtree.Entry, pq PreparedQuery) bool {
	if pq.Exact.Set.IsEmpty() {
		return false
	}
	return e.Keywords.Intersects(pq.Tree.Set)
}

// EntryBound returns an upper bound on s(t) for every feature t at or
// below e (ŝ(e) of Section 4.2). In exact mode leaf bounds are the exact
// score; in signature mode the textual term degrades to its trivial bound
// λ, because hashed signatures cannot bound the Jaccard similarity (two
// query keywords colliding onto one bit would make a ratio-based "bound"
// undercount true matches).
func (x *FeatureIndex) EntryBound(e rtree.Entry, pq PreparedQuery) float64 {
	if x.sigBits == 0 {
		return Bound(e, pq.Exact)
	}
	lambda := pq.Exact.Lambda
	if !e.Keywords.Intersects(pq.Tree.Set) {
		return (1 - lambda) * e.Score
	}
	return (1-lambda)*e.Score + lambda
}

// ResolveLeaf returns the preference score s(t) of a leaf entry and
// whether the feature is relevant. In exact mode (the default) both are
// exact; in signature mode this reads the feature's record page (the
// verification I/O of a signature index). Approximate queries
// (pq.Approx non-nil) first run the LSH candidate filter, and in
// signature mode with SkipVerify score candidates from the MinHash
// similarity estimate instead of paying the verification read.
func (x *FeatureIndex) ResolveLeaf(e rtree.Entry, pq PreparedQuery) (score float64, relevant bool, err error) {
	if pq.Approx != nil {
		s, rel, err, handled := x.resolveLeafApprox(e, pq)
		if handled || err != nil {
			return s, rel, err
		}
	}
	if x.sigBits == 0 {
		if !e.Keywords.Intersects(pq.Exact.Set) {
			return 0, false, nil
		}
		return Score(e, pq.Exact), true, nil
	}
	exact, err := x.records.get(e.ItemID)
	if err != nil {
		return 0, false, err
	}
	if !exact.Intersects(pq.Exact.Set) {
		return 0, false, nil // signature false positive
	}
	s := (1-pq.Exact.Lambda)*e.Score + pq.Exact.Lambda*pq.Exact.Sim.Sim(exact, pq.Exact.Set)
	return s, true, nil
}

// resolveLeafApprox is the fast-tier leaf resolution: check the feature's
// MinHash signature against the query's under the request's banded-LSH
// parameters, pruning non-candidates without touching exact keywords.
// handled=false falls back to the exact path — either the sketch is
// unavailable (unbuilt holder on a literal index, stale merge clone
// missing this id) or the request keeps verification (SkipVerify off in
// signature mode). Fallbacks only ever widen the candidate set, so an
// approximate answer degrades toward exactness, never away from it.
func (x *FeatureIndex) resolveLeafApprox(e rtree.Entry, pq PreparedQuery) (score float64, relevant bool, err error, handled bool) {
	sk, err := x.sketchFor()
	if err != nil {
		return 0, false, err, true
	}
	if sk == nil {
		return 0, false, nil, false
	}
	sig, card, ok := sk.Get(e.ItemID)
	if !ok {
		return 0, false, nil, false
	}
	a := pq.Approx
	a.Candidates.Add(1)
	if !a.Params.Candidate(&pq.MinSig, &sig) {
		a.Pruned.Add(1)
		return 0, false, nil, true
	}
	if x.sigBits == 0 {
		// Exact keyword bitmaps are already in the tree entry: candidates
		// score exactly for free, so approximation here is pure candidate
		// pruning (CPU, no I/O at stake).
		if !e.Keywords.Intersects(pq.Exact.Set) {
			return 0, false, nil, true
		}
		return Score(e, pq.Exact), true, nil, true
	}
	if !a.Params.SkipVerify {
		return 0, false, nil, false // verify candidates via the record file
	}
	a.SkippedReads.Add(1)
	if card == 0 || pq.QueryCard == 0 {
		return 0, false, nil, true
	}
	// A band agreed, so at least Rows positions match and the Jaccard
	// estimate is positive — the feature counts as relevant with an
	// estimated similarity. The estimate is ≤ 1, so the score stays under
	// the signature-mode entry bound (1−λ)·e.s + λ and shard/cluster
	// pruning remains admissible.
	j := approx.EstimateJaccard(&pq.MinSig, &sig)
	s := (1-pq.Exact.Lambda)*e.Score + pq.Exact.Lambda*estimateSim(pq.Exact.Sim, j, pq.QueryCard, card)
	return s, true, nil, true
}

// estimateSim converts a MinHash Jaccard estimate to the query's
// similarity measure using the two set cardinalities: the intersection
// size follows from |A∩B| = J/(1+J)·(|A|+|B|). The implied intersection
// is snapped to the nearest achievable integer first — keyword sets are
// small, so the true intersection is a small integer and rounding removes
// most of the estimation noise (the estimate only errs when its error
// crosses a rounding boundary). Results are capped at 1.
func estimateSim(sim Similarity, j float64, qCard, fCard int) float64 {
	inter := math.Round(j / (1 + j) * float64(qCard+fCard))
	if m := math.Min(float64(qCard), float64(fCard)); inter > m {
		inter = m
	}
	if inter < 0 {
		inter = 0
	}
	var s float64
	switch sim {
	case Dice:
		s = 2 * inter / float64(qCard+fCard)
	case Cosine:
		s = inter / math.Sqrt(float64(qCard)*float64(fCard))
	case Overlap:
		s = inter / math.Min(float64(qCard), float64(fCard))
	default: // Jaccard
		s = inter / (float64(qCard+fCard) - inter)
	}
	if s > 1 {
		s = 1
	}
	if s < 0 {
		s = 0
	}
	return s
}

// sketchFor returns the index's MinHash sketch, building it from the
// exact keyword sets on first use (one AllExact pass; in signature mode
// that pays the record-file reads once per index generation). A nil
// holder (an index assembled literally) yields a nil sketch and the
// caller falls back to exact resolution.
func (x *FeatureIndex) sketchFor() (*approx.Sketch, error) {
	if x.sketch == nil {
		return nil, nil
	}
	return x.sketch.Get(func() (*approx.Sketch, error) {
		all, err := x.AllExact()
		if err != nil {
			return nil, err
		}
		s := approx.NewSketch()
		for _, e := range all {
			s.Put(e.ItemID, e.Keywords)
		}
		return s, nil
	})
}

// Sketched reports whether the approximate tier's sketch for this index
// has been materialized (tests and /info).
func (x *FeatureIndex) Sketched() bool {
	return x.sketch != nil && x.sketch.Peek() != nil
}

// recordFile stores each feature's exact keyword set in fixed-size
// records behind its own buffer pool, so verifications cost page reads.
type recordFile struct {
	pool     *storage.BufferPool
	width    int // vocabulary width of the stored sets
	recSize  int
	perPage  int
	ordinals map[int64]int // feature id -> record ordinal
	count    int
}

// newRecordFile creates an empty record file on a fresh in-memory disk.
func newRecordFile(width, pageSize, bufferPages, poolStripes int) *recordFile {
	if pageSize <= 0 {
		pageSize = storage.DefaultPageSize
	}
	if bufferPages <= 0 {
		bufferPages = rtree.DefaultBufferPages
	}
	recSize := 8 * ((width + 63) / 64)
	perPage := pageSize / recSize
	if perPage < 1 {
		perPage = 1
	}
	return &recordFile{
		pool:     storage.NewStripedBufferPool(storage.NewMemDisk(pageSize), bufferPages, poolStripes),
		width:    width,
		recSize:  recSize,
		perPage:  perPage,
		ordinals: make(map[int64]int),
	}
}

// put appends the exact keyword set of a feature.
func (r *recordFile) put(id int64, exact kwset.Set) error {
	if _, dup := r.ordinals[id]; dup {
		return fmt.Errorf("index: duplicate feature id %d in record file", id)
	}
	ord := r.count
	page := ord / r.perPage
	disk := r.pool.Disk()
	for disk.NumPages() <= page {
		if _, err := disk.Allocate(); err != nil {
			return err
		}
	}
	buf, err := r.pool.Get(storage.PageID(page))
	if err != nil {
		return err
	}
	img := make([]byte, disk.PageSize())
	copy(img, buf)
	off := (ord % r.perPage) * r.recSize
	words := exact.WordsBits()
	for w := 0; w < r.recSize/8; w++ {
		var v uint64
		if w < len(words) {
			v = words[w]
		}
		binary.LittleEndian.PutUint64(img[off+8*w:], v)
	}
	if err := r.pool.WriteThrough(storage.PageID(page), img); err != nil {
		return err
	}
	r.ordinals[id] = ord
	r.count++
	return nil
}

// get reads the exact keyword set of a feature, costing a page read.
func (r *recordFile) get(id int64) (kwset.Set, error) {
	ord, ok := r.ordinals[id]
	if !ok {
		return kwset.Set{}, fmt.Errorf("index: feature id %d not in record file", id)
	}
	buf, err := r.pool.Get(storage.PageID(ord / r.perPage))
	if err != nil {
		return kwset.Set{}, err
	}
	off := (ord % r.perPage) * r.recSize
	raw := make([]uint64, r.recSize/8)
	for w := range raw {
		raw[w] = binary.LittleEndian.Uint64(buf[off+8*w:])
	}
	// raw is freshly allocated here, so the set can take ownership.
	return kwset.FromBitsOwned(r.width, raw), nil
}

// stats returns the record pool's I/O counters.
func (r *recordFile) stats() storage.Stats { return r.pool.Stats() }

// AllExact returns every indexed feature with its exact keyword set,
// fetching record pages in signature mode. It backs the brute-force
// correctness oracle.
func (x *FeatureIndex) AllExact() ([]rtree.Entry, error) {
	all, err := x.tree.All()
	if err != nil {
		return nil, err
	}
	if x.sigBits == 0 {
		return all, nil
	}
	for i := range all {
		exact, err := x.records.get(all[i].ItemID)
		if err != nil {
			return nil, err
		}
		all[i].Keywords = exact
	}
	return all, nil
}
