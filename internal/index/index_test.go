package index

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"stpq/internal/geo"
	"stpq/internal/kwset"
	"stpq/internal/rtree"
	"stpq/internal/storage"
)

// randomFeatures builds n features over a width-w vocabulary.
func randomFeatures(rng *rand.Rand, n, w int) []Feature {
	fs := make([]Feature, n)
	for i := range fs {
		kw := kwset.NewSet(w)
		for j := 0; j < 1+rng.Intn(3); j++ {
			kw.Add(rng.Intn(w))
		}
		fs[i] = Feature{
			ID:       int64(i),
			Location: geo.Point{X: rng.Float64(), Y: rng.Float64()},
			Score:    rng.Float64(),
			Keywords: kw,
		}
	}
	return fs
}

func TestBuildFeatureIndexBothKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	features := randomFeatures(rng, 2000, 64)
	for _, kind := range []Kind{SRT, IR2} {
		idx, err := BuildFeatureIndex(features, Options{Kind: kind, VocabWidth: 64, PageSize: 1024})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if idx.Len() != 2000 {
			t.Fatalf("%v: Len = %d", kind, idx.Len())
		}
		if idx.Kind() != kind {
			t.Fatalf("Kind = %v", idx.Kind())
		}
		if err := idx.Tree().CheckInvariants(); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
	}
}

func TestBuildFeatureIndexRequiresVocab(t *testing.T) {
	if _, err := BuildFeatureIndex(nil, Options{}); err == nil {
		t.Fatal("expected error for missing VocabWidth")
	}
}

func TestKindString(t *testing.T) {
	if SRT.String() != "SRT" || IR2.String() != "IR2" {
		t.Error("Kind.String mismatch")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("unknown kind string")
	}
}

// Definition 1 check against the paper's worked example (Section 3):
// W = {italian, pizza}, λ = 0.5; Ontario's Pizza (s=0.8, {pizza,italian})
// scores 0.9; Beijing Restaurant (s=0.6, {chinese,asian}) scores 0.3.
func TestScorePaperExample(t *testing.T) {
	v := kwset.NewVocabulary()
	q := QueryKeywords{Set: v.SetOf("italian", "pizza"), Lambda: 0.5}
	ontario := rtree.Entry{Leaf: true, Score: 0.8, Keywords: v.SetOf("pizza", "italian")}
	beijing := rtree.Entry{Leaf: true, Score: 0.6, Keywords: v.SetOf("chinese", "asian")}
	if got := Score(ontario, q); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("Ontario score = %v, want 0.9", got)
	}
	if got := Score(beijing, q); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("Beijing score = %v, want 0.3", got)
	}
}

// Section 3 second example: Royal Coffee Shop (s=0.9,
// {muffins,croissants,espresso}) with W = {espresso, muffins}, λ = 0.5:
// Jaccard = 2/3, s = 0.45 + 0.5·2/3 ≈ 0.78333.
func TestScorePaperCoffeeExample(t *testing.T) {
	v := kwset.NewVocabulary()
	q := QueryKeywords{Set: v.SetOf("espresso", "muffins"), Lambda: 0.5}
	royal := rtree.Entry{Leaf: true, Score: 0.9, Keywords: v.SetOf("muffins", "croissants", "espresso")}
	want := 0.45 + 0.5*(2.0/3.0)
	if got := Score(royal, q); math.Abs(got-want) > 1e-9 {
		t.Errorf("Royal score = %v, want %v", got, want)
	}
}

// The fundamental contract of Section 4.1: for every node entry e and
// every feature t stored below it, Bound(e) ≥ s(t). Verified on real trees
// of both kinds by walking every root-to-leaf path.
func TestBoundDominatesDescendants(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	features := randomFeatures(rng, 1500, 32)
	v := kwset.NewVocabulary()
	_ = v
	for _, kind := range []Kind{SRT, IR2} {
		idx, err := BuildFeatureIndex(features, Options{Kind: kind, VocabWidth: 32, PageSize: 512})
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 10; trial++ {
			q := QueryKeywords{Set: kwset.SetFromWords(32, rng.Intn(32), rng.Intn(32), rng.Intn(32)), Lambda: rng.Float64()}
			if err := checkBound(t, idx, idx.Tree().Root(), q, math.Inf(1)); err != nil {
				t.Fatalf("%v: %v", kind, err)
			}
		}
	}
}

// checkBound walks the subtree asserting every entry's bound is at most
// the parent bound and leaf scores respect ancestor bounds.
func checkBound(t *testing.T, idx *FeatureIndex, pid storage.PageID, q QueryKeywords, parentBound float64) error {
	n, err := idx.Tree().Node(pid)
	if err != nil {
		return err
	}
	for _, e := range n.Entries {
		b := Bound(e, q)
		if b > parentBound+1e-9 {
			t.Fatalf("bound %v exceeds parent bound %v", b, parentBound)
		}
		if !e.Leaf {
			if err := checkBound(t, idx, e.Child, q, b); err != nil {
				return err
			}
		}
	}
	return nil
}

// SRT clustering must yield tighter average bounds than IR² for a textual
// query — the paper's core index claim (Section 4.2). We compare the mean
// root-child bound gap over random queries; SRT should not be worse.
func TestSRTGivesTighterBoundsThanIR2(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Clustered scores/keywords make the effect visible.
	features := make([]Feature, 0, 4000)
	for c := 0; c < 40; c++ {
		base := rng.Intn(24)
		score := rng.Float64()
		for i := 0; i < 100; i++ {
			kw := kwset.NewSet(32)
			kw.Add(base + rng.Intn(8))
			features = append(features, Feature{
				ID:       int64(len(features)),
				Location: geo.Point{X: rng.Float64(), Y: rng.Float64()},
				Score:    math.Min(1, math.Max(0, score+0.05*rng.NormFloat64())),
				Keywords: kw,
			})
		}
	}
	srt, err := BuildFeatureIndex(features, Options{Kind: SRT, VocabWidth: 32, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	ir2, err := BuildFeatureIndex(features, Options{Kind: IR2, VocabWidth: 32, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	avgBound := func(idx *FeatureIndex, q QueryKeywords) float64 {
		n, err := idx.Tree().Node(idx.Tree().Root())
		if err != nil {
			t.Fatal(err)
		}
		sum, cnt := 0.0, 0
		var walk func(pid storage.PageID, depth int)
		walk = func(pid storage.PageID, depth int) {
			nd, err := idx.Tree().Node(pid)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range nd.Entries {
				if e.Leaf {
					continue
				}
				sum += Bound(e, q)
				cnt++
				if depth < 2 {
					walk(e.Child, depth+1)
				}
			}
		}
		_ = n
		walk(idx.Tree().Root(), 1)
		if cnt == 0 {
			return 0
		}
		return sum / float64(cnt)
	}
	var srtSum, ir2Sum float64
	for trial := 0; trial < 20; trial++ {
		q := QueryKeywords{Set: kwset.SetFromWords(32, rng.Intn(32), rng.Intn(32), rng.Intn(32)), Lambda: 0.5}
		srtSum += avgBound(srt, q)
		ir2Sum += avgBound(ir2, q)
	}
	if srtSum > ir2Sum*1.02 {
		t.Errorf("SRT mean bound %v should not exceed IR2 %v", srtSum/20, ir2Sum/20)
	}
}

// Relevant must be exact for leaves and conservative (no false negatives)
// for internal entries.
func TestRelevantConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	features := randomFeatures(rng, 800, 16)
	idx, err := BuildFeatureIndex(features, Options{Kind: SRT, VocabWidth: 16, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	q := QueryKeywords{Set: kwset.SetFromWords(16, 3), Lambda: 0.5}
	var walk func(pid storage.PageID)
	walk = func(pid storage.PageID) {
		n, err := idx.Tree().Node(pid)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range n.Entries {
			if e.Leaf {
				continue
			}
			hasRelevantLeaf := false
			var scan func(pid storage.PageID)
			scan = func(pid storage.PageID) {
				nd, _ := idx.Tree().Node(pid)
				for _, c := range nd.Entries {
					if c.Leaf {
						if Relevant(c, q) {
							hasRelevantLeaf = true
						}
					} else {
						scan(c.Child)
					}
				}
			}
			scan(e.Child)
			if hasRelevantLeaf && !Relevant(e, q) {
				t.Fatal("internal entry pruned a relevant descendant")
			}
			walk(e.Child)
		}
	}
	walk(idx.Tree().Root())
}

func TestFeatureIndexInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	features := randomFeatures(rng, 500, 16)
	idx, err := BuildFeatureIndex(features[:400], Options{Kind: SRT, VocabWidth: 16, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range features[400:] {
		if err := idx.Insert(f); err != nil {
			t.Fatal(err)
		}
	}
	if idx.Len() != 500 {
		t.Fatalf("Len = %d", idx.Len())
	}
	if err := idx.Tree().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildObjectIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	objs := make([]Object, 1200)
	for i := range objs {
		objs[i] = Object{ID: int64(i), Location: geo.Point{X: rng.Float64(), Y: rng.Float64()}}
	}
	idx, err := BuildObjectIndex(objs, Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 1200 {
		t.Fatalf("Len = %d", idx.Len())
	}
	if err := idx.Tree().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Range search sanity.
	got := 0
	_ = idx.Tree().RangeSearch(geo.Point{X: 0.5, Y: 0.5}, 0.1, func(rtree.Entry) bool { got++; return true })
	want := 0
	for _, o := range objs {
		if o.Location.Dist(geo.Point{X: 0.5, Y: 0.5}) <= 0.1 {
			want++
		}
	}
	if got != want {
		t.Fatalf("range got %d want %d", got, want)
	}
	if err := idx.Insert(Object{ID: 5000, Location: geo.Point{X: 0.2, Y: 0.2}}); err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 1201 {
		t.Error("insert did not grow object index")
	}
}

// Score and Bound stay within [0,1] for all λ (both t.s and sim are in
// [0,1]).
func TestScoreBoundRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const w = 24
		kw := kwset.NewSet(w)
		for i := 0; i < 1+rng.Intn(4); i++ {
			kw.Add(rng.Intn(w))
		}
		e := rtree.Entry{Leaf: rng.Intn(2) == 0, Score: rng.Float64(), Keywords: kw}
		q := QueryKeywords{Set: kwset.SetFromWords(w, rng.Intn(w), rng.Intn(w)), Lambda: rng.Float64()}
		s := Bound(e, q)
		return s >= 0 && s <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestStatsPlumbing(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	idx, err := BuildFeatureIndex(randomFeatures(rng, 300, 8), Options{Kind: IR2, VocabWidth: 8, PageSize: 512, BufferPages: 2})
	if err != nil {
		t.Fatal(err)
	}
	idx.ResetStats()
	if s := idx.Stats(); s.LogicalReads != 0 {
		t.Fatal("reset failed")
	}
	_, _ = idx.Tree().All()
	if s := idx.Stats(); s.LogicalReads == 0 {
		t.Fatal("stats not recorded")
	}
}

// Signature-mode bounds must still dominate every descendant's exact
// score (the ŝ(e) ≥ s(t) contract survives hashing).
func TestSignatureBoundDominates(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	features := randomFeatures(rng, 800, 48)
	idx, err := BuildFeatureIndex(features, Options{Kind: IR2, VocabWidth: 48, PageSize: 512, SignatureBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Exact() {
		t.Fatal("index should be in signature mode")
	}
	exact := make(map[int64]kwset.Set, len(features))
	for _, f := range features {
		exact[f.ID] = f.Keywords
	}
	for trial := 0; trial < 10; trial++ {
		q := QueryKeywords{Set: kwset.SetFromWords(48, rng.Intn(48), rng.Intn(48)), Lambda: rng.Float64()}
		pq := idx.Prepare(q)
		var walk func(pid storage.PageID, bound float64)
		walk = func(pid storage.PageID, bound float64) {
			n, err := idx.Tree().Node(pid)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range n.Entries {
				b := idx.EntryBound(e, pq)
				if b > bound+1e-9 {
					t.Fatalf("child bound %v exceeds parent %v", b, bound)
				}
				if e.Leaf {
					// Exact score must respect the bound.
					kw := exact[e.ItemID]
					s := (1-q.Lambda)*e.Score + q.Lambda*kw.Jaccard(q.Set)
					if s > b+1e-9 {
						t.Fatalf("leaf exact score %v exceeds bound %v", s, b)
					}
					// Relevance must have no false negatives.
					if kw.Intersects(q.Set) && !idx.EntryRelevant(e, pq) {
						t.Fatal("signature relevance false negative")
					}
					// ResolveLeaf must agree with the direct computation.
					rs, rel, err := idx.ResolveLeaf(e, pq)
					if err != nil {
						t.Fatal(err)
					}
					if rel != kw.Intersects(q.Set) {
						t.Fatal("ResolveLeaf relevance mismatch")
					}
					if rel && math.Abs(rs-s) > 1e-12 {
						t.Fatalf("ResolveLeaf score %v, want %v", rs, s)
					}
				} else {
					walk(e.Child, b)
				}
			}
		}
		walk(idx.Tree().Root(), math.Inf(1))
	}
}

// AllExact must return the original keyword sets in signature mode.
func TestAllExactRecoversKeywords(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	features := randomFeatures(rng, 300, 24)
	idx, err := BuildFeatureIndex(features, Options{Kind: SRT, VocabWidth: 24, PageSize: 512, SignatureBits: 6})
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[int64]kwset.Set)
	for _, f := range features {
		want[f.ID] = f.Keywords
	}
	all, err := idx.AllExact()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(features) {
		t.Fatalf("AllExact returned %d", len(all))
	}
	for _, e := range all {
		if !e.Keywords.Equal(want[e.ItemID]) {
			t.Fatalf("feature %d keywords corrupted", e.ItemID)
		}
	}
}
