package index

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"stpq/internal/kwset"
)

func TestSimilarityValues(t *testing.T) {
	a := kwset.SetFromWords(16, 0, 1)    // {0,1}
	b := kwset.SetFromWords(16, 1, 2, 3) // {1,2,3}
	// |∩| = 1, |∪| = 4, |a| = 2, |b| = 3.
	tests := []struct {
		sim  Similarity
		want float64
	}{
		{Jaccard, 1.0 / 4.0},
		{Dice, 2.0 / 5.0},
		{Cosine, 1.0 / math.Sqrt(6)},
		{Overlap, 1.0 / 2.0},
	}
	for _, tc := range tests {
		if got := tc.sim.Sim(a, b); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%v = %v, want %v", tc.sim, got, tc.want)
		}
		// Symmetry.
		if got := tc.sim.Sim(b, a); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%v not symmetric", tc.sim)
		}
		// Identity: sim(x, x) = 1.
		if got := tc.sim.Sim(a, a); math.Abs(got-1) > 1e-12 {
			t.Errorf("%v self-similarity = %v", tc.sim, got)
		}
		// Disjoint sets score 0.
		if got := tc.sim.Sim(a, kwset.SetFromWords(16, 9)); got != 0 {
			t.Errorf("%v disjoint = %v", tc.sim, got)
		}
		// Empty sets score 0.
		if got := tc.sim.Sim(kwset.NewSet(16), kwset.NewSet(16)); got != 0 {
			t.Errorf("%v empty = %v", tc.sim, got)
		}
	}
}

func TestSimilarityStrings(t *testing.T) {
	if Jaccard.String() != "jaccard" || Dice.String() != "dice" ||
		Cosine.String() != "cosine" || Overlap.String() != "overlap" {
		t.Error("similarity strings")
	}
	if Similarity(9).String() != "Similarity(9)" {
		t.Error("unknown similarity string")
	}
}

// The node bound must dominate the similarity of every subset of the node
// summary — the contract that keeps ŝ(e) sound for all measures.
func TestNodeBoundDominatesProperty(t *testing.T) {
	measures := []Similarity{Jaccard, Dice, Cosine, Overlap}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const w = 24
		q := kwset.NewSet(w)
		for i := 0; i < 1+rng.Intn(4); i++ {
			q.Add(rng.Intn(w))
		}
		node := kwset.NewSet(w)
		members := make([]kwset.Set, 0, 5)
		for i := 0; i < 5; i++ {
			m := kwset.NewSet(w)
			for j := 0; j < 1+rng.Intn(4); j++ {
				m.Add(rng.Intn(w))
			}
			members = append(members, m)
			node.UnionInPlace(m)
		}
		for _, sim := range measures {
			bound := sim.NodeBound(node, q)
			if bound < 0 || bound > 1+1e-12 {
				return false
			}
			for _, m := range members {
				if sim.Sim(m, q) > bound+1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// All measures are bounded in [0,1] and positive exactly when the sets
// intersect.
func TestSimilarityRangeProperty(t *testing.T) {
	measures := []Similarity{Jaccard, Dice, Cosine, Overlap}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const w = 32
		a, b := kwset.NewSet(w), kwset.NewSet(w)
		for i := 0; i < 1+rng.Intn(5); i++ {
			a.Add(rng.Intn(w))
		}
		for i := 0; i < 1+rng.Intn(5); i++ {
			b.Add(rng.Intn(w))
		}
		for _, sim := range measures {
			v := sim.Sim(a, b)
			if v < 0 || v > 1+1e-12 {
				return false
			}
			if (v > 0) != a.Intersects(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
