package index

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"stpq/internal/geo"
	"stpq/internal/kwset"
	"stpq/internal/rtree"
)

func TestFeatureIndexSaveOpenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	features := randomFeatures(rng, 800, 32)
	idx, err := BuildFeatureIndex(features, Options{Kind: SRT, VocabWidth: 32, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	meta, err := idx.Save(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Kind != SRT || meta.VocabWidth != 32 || meta.PageSize != 512 {
		t.Fatalf("meta = %+v", meta)
	}
	reopened, err := OpenFeatureIndex(&buf, meta, 64)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Len() != 800 || reopened.Kind() != SRT {
		t.Fatalf("reopened shape: len=%d kind=%v", reopened.Len(), reopened.Kind())
	}
	if err := reopened.Tree().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Same bounds and scores on a probe query.
	q := QueryKeywords{Set: kwset.SetFromWords(32, 3, 7), Lambda: 0.5}
	a, err := idx.Tree().RootEntry()
	if err != nil {
		t.Fatal(err)
	}
	b, err := reopened.Tree().RootEntry()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(Bound(a, q)-Bound(b, q)) > 1e-12 {
		t.Fatal("root bounds differ after reopen")
	}
	// Reopened index keeps serving exact resolution.
	pq := reopened.Prepare(q)
	all, err := reopened.AllExact()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range all[:20] {
		s, rel, err := reopened.ResolveLeaf(e, pq)
		if err != nil {
			t.Fatal(err)
		}
		if rel != e.Keywords.Intersects(q.Set) {
			t.Fatal("relevance mismatch after reopen")
		}
		if rel && math.Abs(s-Score(e, q)) > 1e-12 {
			t.Fatal("score mismatch after reopen")
		}
	}
}

func TestSignatureIndexCannotPersist(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	idx, err := BuildFeatureIndex(randomFeatures(rng, 50, 16), Options{Kind: IR2, VocabWidth: 16, PageSize: 512, SignatureBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := idx.Save(&buf); err != ErrSignaturePersist {
		t.Fatalf("got %v, want ErrSignaturePersist", err)
	}
}

func TestObjectIndexSaveOpenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	objs := make([]Object, 500)
	for i := range objs {
		objs[i] = Object{ID: int64(i), Location: geo.Point{X: rng.Float64(), Y: rng.Float64()}}
	}
	idx, err := BuildObjectIndex(objs, Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	meta, err := idx.Save(&buf)
	if err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenObjectIndex(&buf, meta, 64)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Len() != 500 {
		t.Fatalf("Len = %d", reopened.Len())
	}
	center := geo.Point{X: 0.5, Y: 0.5}
	var a, b int
	_ = idx.Tree().RangeSearch(center, 0.2, func(rtree.Entry) bool { a++; return true })
	_ = reopened.Tree().RangeSearch(center, 0.2, func(rtree.Entry) bool { b++; return true })
	if a != b || a == 0 {
		t.Fatalf("range results differ after reopen: %d vs %d", a, b)
	}
	// Stats flow through the reopened pool.
	reopened.ResetStats()
	_, _ = reopened.Tree().All()
	if reopened.Stats().LogicalReads == 0 {
		t.Fatal("stats not recorded after reopen")
	}
}

func TestOpenFeatureIndexRejectsGarbage(t *testing.T) {
	if _, err := OpenFeatureIndex(bytes.NewReader([]byte("nope")), Meta{}, 4); err == nil {
		t.Fatal("expected error on bad dump")
	}
	if _, err := OpenObjectIndex(bytes.NewReader(nil), Meta{}, 4); err == nil {
		t.Fatal("expected error on empty dump")
	}
}

func TestSignatureStatsIncludeRecordReads(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	idx, err := BuildFeatureIndex(randomFeatures(rng, 400, 32), Options{Kind: IR2, VocabWidth: 32, PageSize: 512, SignatureBits: 8, BufferPages: 2})
	if err != nil {
		t.Fatal(err)
	}
	idx.ResetStats()
	if s := idx.Stats(); s.LogicalReads != 0 {
		t.Fatal("reset did not clear record pool stats")
	}
	q := QueryKeywords{Set: kwset.SetFromWords(32, 1, 2, 3), Lambda: 0.5}
	pq := idx.Prepare(q)
	all, err := idx.Tree().All()
	if err != nil {
		t.Fatal(err)
	}
	treeOnly := idx.Tree().Pool().Stats().LogicalReads
	resolves := 0
	for _, e := range all {
		if idx.EntryRelevant(e, pq) {
			if _, _, err := idx.ResolveLeaf(e, pq); err != nil {
				t.Fatal(err)
			}
			resolves++
		}
	}
	if resolves == 0 {
		t.Skip("no relevant features in this draw")
	}
	if got := idx.Stats().LogicalReads; got <= treeOnly {
		t.Fatalf("record reads missing from Stats: %d <= %d", got, treeOnly)
	}
}
