package index

// group.go implements FeatureGroup: one logical feature set F_i stored as
// a forest of FeatureIndex parts. The single-engine case uses one part per
// group; the sharded engine (internal/shard) slices each feature set
// spatially into one part per shard cell. Query algorithms that traverse a
// group seed their priority queues with every part root, which makes the
// multi-part traversal emit exactly the same feature sequence as a single
// index over the union — scores and bounds are per-entry properties, and
// best-first order is preserved across trees by the shared heap.

import (
	"fmt"

	"stpq/internal/obs"
	"stpq/internal/rtree"
	"stpq/internal/storage"
)

// FeatureGroup is one logical feature set as an ordered forest of parts.
// All parts share construction options (kind, vocabulary width, signature
// bits), so a query prepared against one part is valid for every part.
type FeatureGroup struct {
	parts []*FeatureIndex
}

// NewFeatureGroup assembles a group from one or more homogeneous parts.
func NewFeatureGroup(parts ...*FeatureIndex) (*FeatureGroup, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("index: feature group needs at least one part")
	}
	for i, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("index: feature group part %d is nil", i)
		}
		if p.kind != parts[0].kind || p.sigBits != parts[0].sigBits {
			return nil, fmt.Errorf("index: feature group part %d differs in kind or signature width", i)
		}
	}
	return &FeatureGroup{parts: parts}, nil
}

// GroupEach wraps each index in its own single-part group — the lowering
// used by the unsharded engine.
func GroupEach(idxs []*FeatureIndex) ([]*FeatureGroup, error) {
	out := make([]*FeatureGroup, len(idxs))
	for i, idx := range idxs {
		g, err := NewFeatureGroup(idx)
		if err != nil {
			return nil, fmt.Errorf("index: feature set %d: %w", i, err)
		}
		out[i] = g
	}
	return out, nil
}

// Parts returns the group's parts in partition order.
func (g *FeatureGroup) Parts() []*FeatureIndex { return g.parts }

// Part returns one part by position.
func (g *FeatureGroup) Part(i int) *FeatureIndex { return g.parts[i] }

// Kind returns the construction kind shared by all parts.
func (g *FeatureGroup) Kind() Kind { return g.parts[0].kind }

// Len returns the total number of indexed features across parts.
func (g *FeatureGroup) Len() int {
	n := 0
	for _, p := range g.parts {
		n += p.Len()
	}
	return n
}

// Prepare lowers the query keywords once for the whole group (all parts
// share the signature configuration, so one prepared query serves all).
func (g *FeatureGroup) Prepare(q QueryKeywords) PreparedQuery {
	return g.parts[0].Prepare(q)
}

// AllExact returns every feature of the group with exact keywords,
// concatenated in part order.
func (g *FeatureGroup) AllExact() ([]rtree.Entry, error) {
	var out []rtree.Entry
	for _, p := range g.parts {
		all, err := p.AllExact()
		if err != nil {
			return nil, err
		}
		out = append(out, all...)
	}
	return out, nil
}

// Session returns a read view of the group whose page accesses are charged
// to acct (see FeatureIndex.Session).
func (g *FeatureGroup) Session(acct *storage.Stats) *FeatureGroup {
	parts := make([]*FeatureIndex, len(g.parts))
	for i, p := range g.parts {
		parts[i] = p.Session(acct)
	}
	return &FeatureGroup{parts: parts}
}

// Stats sums the I/O counters of all parts.
func (g *FeatureGroup) Stats() storage.Stats {
	var s storage.Stats
	for _, p := range g.parts {
		s.Add(p.Stats())
	}
	return s
}

// ResetStats zeroes the I/O counters of all parts.
func (g *FeatureGroup) ResetStats() {
	for _, p := range g.parts {
		p.ResetStats()
	}
}

// AttachMetrics registers every part's buffer pool under the given pool
// name; multi-part groups get a per-part suffix so shard pools stay
// distinguishable in the registry.
func (g *FeatureGroup) AttachMetrics(r *obs.Registry, pool string) {
	if len(g.parts) == 1 {
		g.parts[0].AttachMetrics(r, pool)
		return
	}
	for i, p := range g.parts {
		p.AttachMetrics(r, fmt.Sprintf("%s_part%d", pool, i))
	}
}
