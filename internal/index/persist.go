package index

import (
	"errors"
	"fmt"
	"io"

	"stpq/internal/approx"
	"stpq/internal/rtree"
	"stpq/internal/storage"
)

// Persistence: a built index is saved as its page dump plus a small Meta
// record. Signature-mode indexes are not yet persistable (their record
// file and ordinal directory would need a second dump) and report an
// error.

// Meta is the out-of-page state of a feature or object index.
type Meta struct {
	Tree       rtree.Meta `json:"tree"`
	Kind       Kind       `json:"kind"`
	VocabWidth int        `json:"vocabWidth"`
	PageSize   int        `json:"pageSize"`
	WithScore  bool       `json:"withScore"`
}

// ErrSignaturePersist reports that signature-mode indexes cannot be saved.
var ErrSignaturePersist = errors.New("index: signature-mode indexes cannot be persisted")

// Save writes the index's pages to w and returns its Meta.
func (x *FeatureIndex) Save(w io.Writer) (Meta, error) {
	if x.sigBits > 0 {
		return Meta{}, ErrSignaturePersist
	}
	if err := storage.DumpDisk(x.tree.Config().Disk, w); err != nil {
		return Meta{}, err
	}
	return Meta{
		Tree:       x.tree.Meta(),
		Kind:       x.kind,
		VocabWidth: x.opts.VocabWidth,
		PageSize:   x.tree.Config().PageSize,
		WithScore:  true,
	}, nil
}

// OpenFeatureIndex reconstructs a feature index from a page dump and its
// Meta.
func OpenFeatureIndex(r io.Reader, meta Meta, bufferPages int) (*FeatureIndex, error) {
	disk, err := storage.LoadMemDisk(r)
	if err != nil {
		return nil, err
	}
	tree, err := rtree.Open(rtree.Config{
		PageSize:     meta.PageSize,
		KeywordWidth: meta.VocabWidth,
		WithScore:    true,
		BufferPages:  bufferPages,
		Disk:         disk,
	}, meta.Tree)
	if err != nil {
		return nil, fmt.Errorf("index: open feature index: %w", err)
	}
	return &FeatureIndex{
		tree:   tree,
		kind:   meta.Kind,
		opts:   Options{Kind: meta.Kind, VocabWidth: meta.VocabWidth, PageSize: meta.PageSize, BufferPages: bufferPages},
		sketch: approx.NewHolder(),
	}, nil
}

// Save writes the object index's pages to w and returns its Meta.
func (x *ObjectIndex) Save(w io.Writer) (Meta, error) {
	if err := storage.DumpDisk(x.tree.Config().Disk, w); err != nil {
		return Meta{}, err
	}
	return Meta{Tree: x.tree.Meta(), PageSize: x.tree.Config().PageSize}, nil
}

// OpenObjectIndex reconstructs an object index from a page dump and Meta.
func OpenObjectIndex(r io.Reader, meta Meta, bufferPages int) (*ObjectIndex, error) {
	disk, err := storage.LoadMemDisk(r)
	if err != nil {
		return nil, err
	}
	tree, err := rtree.Open(rtree.Config{
		PageSize:    meta.PageSize,
		BufferPages: bufferPages,
		Disk:        disk,
	}, meta.Tree)
	if err != nil {
		return nil, fmt.Errorf("index: open object index: %w", err)
	}
	return &ObjectIndex{tree: tree}, nil
}
