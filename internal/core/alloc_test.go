package core

import (
	"math/rand"
	"testing"

	"stpq/internal/index"
)

// Steady-state allocation regression tests (the scratch-pooling
// contract): after warm-up, a repeated top-k query must stay under a
// fixed allocation budget. The budgets are generous on purpose — they
// catch order-of-magnitude regressions (losing the scratch pool, the
// typed heaps reverting to container/heap boxing), not exact counts,
// which vary with query geometry.
//
// The remaining STDS allocations are page decodes: Tree.Node re-decodes
// the buffer-pool page on every visit, because caching decoded nodes
// above the pool would stop Get() from counting page accesses and break
// the paper's I/O accounting (see DESIGN.md §10). Measured on this
// fixed world: ~8.3k allocs/op for STDS (decode-dominated), ~340 for
// STPS (scratch-pooled stream rebuild).
const (
	stdsAllocBudget = 12000
	stpsAllocBudget = 1000
)

func steadyStateAllocs(t *testing.T, run func()) float64 {
	t.Helper()
	// Warm up the scratch pool and any lazily grown buffers.
	for i := 0; i < 5; i++ {
		run()
	}
	return testing.AllocsPerRun(20, run)
}

func TestAllocsSteadyStateSTDS(t *testing.T) {
	w := buildWorld(t, 901, 400, 200, 2, 16, index.SRT, Options{})
	rng := rand.New(rand.NewSource(902))
	q := w.randQuery(rng, 2, RangeScore)
	q.K = 10
	avg := steadyStateAllocs(t, func() {
		if _, _, err := w.engine.STDS(q); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("steady-state STDS allocs/op: %.1f", avg)
	if avg > stdsAllocBudget {
		t.Fatalf("steady-state STDS allocates %.1f objects per query, budget %d", avg, stdsAllocBudget)
	}
}

func TestAllocsSteadyStateSTPS(t *testing.T) {
	w := buildWorld(t, 903, 400, 200, 2, 16, index.SRT, Options{})
	rng := rand.New(rand.NewSource(904))
	q := w.randQuery(rng, 2, RangeScore)
	q.K = 10
	avg := steadyStateAllocs(t, func() {
		if _, _, err := w.engine.STPS(q); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("steady-state STPS allocs/op: %.1f", avg)
	if avg > stpsAllocBudget {
		t.Fatalf("steady-state STPS allocates %.1f objects per query, budget %d", avg, stpsAllocBudget)
	}
}
