package core

import (
	"math/rand"
	"testing"

	"stpq/internal/index"
)

func TestInfluenceC3Quick(t *testing.T) {
	w := buildWorld(t, 900, 200, 150, 3, 16, index.SRT, Options{})
	rng := rand.New(rand.NewSource(901))
	for trial := 0; trial < 3; trial++ {
		q := w.randQuery(rng, 3, InfluenceScore)
		got, st, err := w.engine.STPS(q)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("combos=%d pulled=%d", st.Combinations, st.FeaturesPulled)
		assertMatchesBruteForce(t, w, q, got, "STPS/influence/c3")
	}
}
