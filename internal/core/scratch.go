package core

import (
	"stpq/internal/geo"
	"stpq/internal/index"
	"stpq/internal/storage"
)

// queryScratch is the per-query reusable state of one engine session:
// the private read accumulator, the prebuilt session view bound to it, and
// every transient buffer the STDS/STPS kernels need — candidate heaps,
// top-k backing, combination-stream state, dedup maps. Scratches are
// recycled through the root engine's sync.Pool so a steady stream of
// queries reaches steady-state zero heap growth: after warm-up, repeated
// queries allocate only what genuinely varies per query (results slices,
// Voronoi polygons).
//
// Single-user invariants (all hold because a query runs on one goroutine
// and the kernels never nest):
//   - bound is used by exactly one best-first descent at a time
//     (computeScore, computeInfluenceScore, batchRangeScores and
//     topKInfluence never overlap within a query);
//   - dist is used by one groupAscendDistance walk at a time
//     (computeNNScore and voronoiCell never overlap);
//   - topk/inf back the single accumulator of the query;
//   - the combination-stream buffers belong to the single stream a
//     STPS query drives.
type queryScratch struct {
	acct storage.Stats
	// sess is the session view of the root engine: same immutable index
	// structure, page reads charged to acct. The view itself never changes
	// between queries, so it is built once per scratch and reused; only
	// acct is re-zeroed.
	sess *Engine

	bound boundHeap
	dist  distHeap
	topk  topkAccumulator
	inf   influenceTopK
	seen  map[int64]bool

	// Batched STDS: one batchObj per object-tree leaf entry.
	batch    []batchObj
	batchPtr []*batchObj

	// Combination stream (one per STPS query): the struct keeps all its
	// growable state — per-set streams and their heaps, retrieved
	// prefixes, the combination heap, the visited map — and reinit()
	// recycles it in place.
	cs combinationStream

	// NN variant: per-query Voronoi cell view and cell radii.
	cellsLocal map[cellKey]geo.Polygon
	radii      map[cellKey]float64
}

// newQueryScratch builds a scratch (and its session view) for the root
// engine. Called by the pool on a cache miss; steady state reuses existing
// scratches.
func newQueryScratch(root *Engine) *queryScratch {
	sc := &queryScratch{
		seen:       make(map[int64]bool),
		cellsLocal: make(map[cellKey]geo.Polygon),
		radii:      make(map[cellKey]float64),
	}
	s := *root
	s.reads = &sc.acct
	s.scratches = nil // sessions never pool themselves
	s.scratch = sc
	s.objects = root.objects.Session(&sc.acct)
	feats := make([]*index.FeatureGroup, len(root.features))
	for i, f := range root.features {
		feats[i] = f.Session(&sc.acct)
	}
	s.features = feats
	sc.sess = &s
	return sc
}

// reset prepares the scratch for a new query. Buffers are truncated (not
// freed) at their acquisition points; only the read accumulator must be
// zeroed before the session is handed out.
func (sc *queryScratch) reset() { sc.acct = storage.Stats{} }

// scratchBoundHeap returns the reusable best-first candidate heap, empty.
// Falls back to a fresh heap on engines without scratch state.
func (e *Engine) scratchBoundHeap() *boundHeap {
	if sc := e.scratch; sc != nil {
		sc.bound = sc.bound[:0]
		return &sc.bound
	}
	return &boundHeap{}
}

// scratchDistHeap returns the reusable distance-ascent heap, empty.
func (e *Engine) scratchDistHeap() *distHeap {
	if sc := e.scratch; sc != nil {
		sc.dist = sc.dist[:0]
		return &sc.dist
	}
	return &distHeap{}
}

// newTopk returns the query's top-k accumulator, reusing the scratch
// backing when available.
func (e *Engine) newTopk(k int) *topkAccumulator {
	if sc := e.scratch; sc != nil {
		sc.topk.k = k
		sc.topk.heap = sc.topk.heap[:0]
		return &sc.topk
	}
	return newTopkAccumulator(k)
}

// newInfluenceTopK returns the influence variant's accumulator, reusing
// the scratch map and slice when available.
func (e *Engine) newInfluenceTopK(k int) *influenceTopK {
	if sc := e.scratch; sc != nil {
		sc.inf.k = k
		if sc.inf.best == nil {
			sc.inf.best = make(map[int64]float64)
		} else {
			clear(sc.inf.best)
		}
		sc.inf.top = sc.inf.top[:0]
		return &sc.inf
	}
	return newInfluenceTopK(k)
}

// scratchSeen returns the reusable object-dedup map, cleared.
func (e *Engine) scratchSeen() map[int64]bool {
	if sc := e.scratch; sc != nil {
		clear(sc.seen)
		return sc.seen
	}
	return make(map[int64]bool)
}

// scratchBatch returns n zeroed *batchObj slots backed by the scratch
// arrays (batched STDS processes one leaf at a time, so slots are reused
// leaf after leaf).
func (e *Engine) scratchBatch(n int) []*batchObj {
	sc := e.scratch
	if sc == nil {
		objs := make([]*batchObj, n)
		store := make([]batchObj, n)
		for i := range objs {
			objs[i] = &store[i]
		}
		return objs
	}
	if cap(sc.batch) < n {
		sc.batch = make([]batchObj, n)
		sc.batchPtr = make([]*batchObj, 0, n)
	}
	store := sc.batch[:n]
	objs := sc.batchPtr[:0]
	for i := range store {
		store[i] = batchObj{}
		objs = append(objs, &store[i])
	}
	sc.batchPtr = objs
	return objs
}

// scratchCells returns the NN variant's per-query cell map and radii map,
// cleared.
func (e *Engine) scratchCells() (map[cellKey]geo.Polygon, map[cellKey]float64) {
	if sc := e.scratch; sc != nil {
		clear(sc.cellsLocal)
		clear(sc.radii)
		return sc.cellsLocal, sc.radii
	}
	return make(map[cellKey]geo.Polygon), make(map[cellKey]float64)
}

// releaseSession returns a pooled session acquired through session() to
// the root engine's scratch pool. It is a no-op when s is the engine
// itself (session() was idempotent) or when s carries no scratch. After
// release the session must not be used: results and stats must already be
// copied out.
func (e *Engine) releaseSession(s *Engine) {
	if s == e || s.scratch == nil || e.scratches == nil {
		return
	}
	e.scratches.Put(s.scratch)
}
