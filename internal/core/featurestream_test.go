package core

import (
	"math"
	"math/rand"
	"testing"

	"stpq/internal/index"
	"stpq/internal/kwset"
)

// drainStream pulls every feature from a per-set stream.
func drainStream(t *testing.T, s *featureStream) []featureRef {
	t.Helper()
	var out []featureRef
	for {
		ref, done, err := s.next()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			return out
		}
		out = append(out, ref)
	}
}

// The stream must yield features in non-increasing preference score s(t),
// cover exactly the relevant features, and finish with the virtual ∅.
func TestFeatureStreamOrderAndCoverage(t *testing.T) {
	w := buildWorld(t, 500, 10, 400, 1, 16, index.SRT, Options{})
	rng := rand.New(rand.NewSource(501))
	for trial := 0; trial < 5; trial++ {
		q := w.randQuery(rng, 1, RangeScore)
		qk := index.QueryKeywords{Set: q.Keywords[0], Lambda: q.Lambda}
		s, err := newFeatureStream(w.engine.features[0], qk)
		if err != nil {
			t.Fatal(err)
		}
		refs := drainStream(t, s)
		if len(refs) == 0 {
			t.Fatal("stream yielded nothing")
		}
		last := refs[len(refs)-1]
		if !last.virtual || last.score != 0 {
			t.Fatal("stream must end with the virtual feature")
		}
		prev := math.Inf(1)
		ids := make(map[int64]bool)
		for _, r := range refs[:len(refs)-1] {
			if r.virtual {
				t.Fatal("virtual feature before exhaustion")
			}
			if r.score > prev+1e-12 {
				t.Fatalf("scores not non-increasing: %v after %v", r.score, prev)
			}
			prev = r.score
			if ids[r.entry.ItemID] {
				t.Fatalf("feature %d emitted twice", r.entry.ItemID)
			}
			ids[r.entry.ItemID] = true
			// Emitted score must equal Definition 1 exactly.
			if want := index.Score(r.entry, qk); math.Abs(want-r.score) > 1e-12 {
				t.Fatalf("score %v, want %v", r.score, want)
			}
		}
		// Coverage: exactly the relevant features.
		all, err := w.engine.features[0].Part(0).Tree().All()
		if err != nil {
			t.Fatal(err)
		}
		relevant := 0
		for _, e := range all {
			if e.Keywords.Intersects(qk.Set) {
				relevant++
				if !ids[e.ItemID] {
					t.Fatalf("relevant feature %d missing from stream", e.ItemID)
				}
			} else if ids[e.ItemID] {
				t.Fatalf("irrelevant feature %d emitted", e.ItemID)
			}
		}
		if relevant != len(ids) {
			t.Fatalf("stream emitted %d, want %d relevant", len(ids), relevant)
		}
	}
}

// An empty query keyword set makes everything irrelevant: the stream must
// yield only ∅.
func TestFeatureStreamEmptyQuery(t *testing.T) {
	w := buildWorld(t, 501, 10, 100, 1, 16, index.SRT, Options{})
	s, err := newFeatureStream(w.engine.features[0], index.QueryKeywords{Set: kwset.NewSet(16), Lambda: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	refs := drainStream(t, s)
	if len(refs) != 1 || !refs[0].virtual {
		t.Fatalf("got %d refs, want just ∅", len(refs))
	}
	// A second next() after exhaustion keeps reporting done.
	if _, done, err := s.next(); err != nil || !done {
		t.Fatal("stream must stay exhausted")
	}
}

// The stream must agree with the inverted-index relevance oracle.
func TestFeatureStreamMatchesInvertedIndex(t *testing.T) {
	w := buildWorld(t, 502, 10, 300, 1, 16, index.IR2, Options{})
	rng := rand.New(rand.NewSource(503))
	q := w.randQuery(rng, 1, RangeScore)
	qk := index.QueryKeywords{Set: q.Keywords[0], Lambda: q.Lambda}
	s, err := newFeatureStream(w.engine.features[0], qk)
	if err != nil {
		t.Fatal(err)
	}
	refs := drainStream(t, s)
	got := make(map[int64]bool)
	for _, r := range refs {
		if !r.virtual {
			got[r.entry.ItemID] = true
		}
	}
	if len(got) == 0 {
		t.Skip("query matched nothing")
	}
	all, err := w.engine.features[0].Part(0).Tree().All()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range all {
		if e.Keywords.Intersects(qk.Set) != got[e.ItemID] {
			t.Fatalf("stream and direct relevance disagree for %d", e.ItemID)
		}
	}
}
