package core

import (
	"math"

	"stpq/internal/geo"
	"stpq/internal/index"
	"stpq/internal/rtree"
)

// BruteForce computes the exact top-k answer by scanning every data
// object against every feature object with the plain score definitions of
// Sections 3 and 7. It exists as the correctness oracle for the tests and
// experiment sanity checks; it performs no pruning whatsoever.
func (e *Engine) BruteForce(q Query) ([]Result, error) {
	if err := q.Validate(len(e.features)); err != nil {
		return nil, err
	}
	feats, err := e.allFeatures()
	if err != nil {
		return nil, err
	}
	objs, err := e.objects.Tree().All()
	if err != nil {
		return nil, err
	}
	results := make([]Result, 0, len(objs))
	for _, obj := range objs {
		score := e.exactScoreOf(q, obj.Point(), feats)
		results = append(results, Result{ID: obj.ItemID, Location: obj.Point(), Score: score})
	}
	sortResults(results)
	if len(results) > q.K {
		results = results[:q.K]
	}
	return results, nil
}

// ExactScore computes τ(p) for an arbitrary location by brute force — the
// per-object oracle used to validate reported result scores.
func (e *Engine) ExactScore(q Query, p geo.Point) (float64, error) {
	if err := q.Validate(len(e.features)); err != nil {
		return 0, err
	}
	feats, err := e.allFeatures()
	if err != nil {
		return 0, err
	}
	return e.exactScoreOf(q, p, feats), nil
}

// ExactScorer materializes the complete feature sets once and returns a
// closure scoring arbitrary locations against them — the amortized form
// of ExactScore for callers that score many points per engine generation
// (the ingest overlay exact-scores every delta-resident object on every
// query). The closure is safe for concurrent use: the materialized
// entries are never mutated.
func (e *Engine) ExactScorer() (func(q Query, p geo.Point) float64, error) {
	feats, err := e.allFeatures()
	if err != nil {
		return nil, err
	}
	return func(q Query, p geo.Point) float64 {
		return e.exactScoreOf(q, p, feats)
	}, nil
}

// allFeatures loads the complete feature sets from the indexes.
func (e *Engine) allFeatures() ([][]rtree.Entry, error) {
	feats := make([][]rtree.Entry, len(e.features))
	for i, f := range e.features {
		all, err := f.AllExact()
		if err != nil {
			return nil, err
		}
		feats[i] = all
	}
	return feats, nil
}

// exactScoreOf evaluates τ(p) = Σ_i τ_i(p) literally per the definitions.
func (e *Engine) exactScoreOf(q Query, p geo.Point, feats [][]rtree.Entry) float64 {
	total := 0.0
	for i := range feats {
		qk := q.keywordsFor(i)
		switch q.Variant {
		case RangeScore:
			best := 0.0
			for _, t := range feats[i] {
				if t.Point().Dist(p) > q.Radius {
					continue
				}
				if !t.Keywords.Intersects(qk.Set) {
					continue
				}
				if s := index.Score(t, qk); s > best {
					best = s
				}
			}
			total += best
		case InfluenceScore:
			best := 0.0
			for _, t := range feats[i] {
				if !t.Keywords.Intersects(qk.Set) {
					continue
				}
				s := index.Score(t, qk) * math.Exp2(-t.Point().Dist(p)/q.Radius)
				if s > best {
					best = s
				}
			}
			total += best
		case NearestNeighborScore:
			bestDist := math.Inf(1)
			var nn *rtree.Entry
			for j := range feats[i] {
				t := &feats[i][j]
				if d := t.Point().Dist(p); d < bestDist {
					bestDist = d
					nn = t
				}
			}
			if nn != nil && nn.Keywords.Intersects(qk.Set) {
				total += index.Score(*nn, qk)
			}
		}
	}
	return total
}
