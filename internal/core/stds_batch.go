package core

import (
	"stpq/internal/geo"
	"stpq/internal/obs"
	"stpq/internal/rtree"
)

// stdsBatch is the improved STDS of Section 5 ("Performance
// improvements"): instead of one feature-index traversal per data object,
// a whole batch of objects — one leaf page of the object R-tree, which is
// spatially coherent — shares a single best-first traversal per feature
// set. An index entry is expanded if it is within range of at least one
// unresolved object of the batch; when a feature object is popped, every
// batch object within distance r takes its score (the maximum, because
// features arrive in non-increasing s(t)) and leaves the batch.
func (e *Engine) stdsBatch(q *Query, stats *Stats, tr *obs.Trace) ([]Result, error) {
	acc := e.newTopk(q.K)
	c := len(e.features)
	var walkErr error
	err := e.objects.Tree().Leaves(func(batch []rtree.Entry) bool {
		objs := e.scratchBatch(len(batch))
		for i, en := range batch {
			objs[i].entry = en
			stats.ObjectsScored++
		}
		active := objs
		for set := 0; set < c && len(active) > 0; set++ {
			sp := tr.StartPhase("index.descend")
			err := e.batchRangeScores(set, q, active)
			sp.End()
			if err != nil {
				walkErr = err
				return false
			}
			// τ̂ pruning between feature sets (Algorithm 1 line 6): drop
			// objects whose best possible total is strictly below the
			// current threshold (a tie can still win the id tie-break).
			if !acc.full() {
				continue
			}
			tau := acc.threshold()
			remaining := float64(c - set - 1)
			kept := active[:0]
			for _, o := range active {
				if o.sum+remaining >= tau {
					kept = append(kept, o)
				}
			}
			active = kept
		}
		for _, o := range active {
			acc.offer(Result{ID: o.entry.ItemID, Location: o.entry.Point(), Score: o.sum})
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if walkErr != nil {
		return nil, walkErr
	}
	return acc.results(), nil
}

// batchObj tracks one data object through the per-set score computations.
type batchObj struct {
	entry    rtree.Entry
	sum      float64
	resolved bool // score for the current feature set found
}

// batchRangeScores runs the batched Algorithm 2 for one feature set,
// adding each object's τ_i(p) to its running sum.
func (e *Engine) batchRangeScores(set int, q *Query, batch []*batchObj) error {
	g := e.features[set]
	qk := q.keywordsFor(set)
	if g.Len() == 0 || qk.Set.IsEmpty() {
		return nil // every τ_i is 0
	}
	prepared := g.Prepare(qk)
	for _, o := range batch {
		o.resolved = false
	}
	unresolved := len(batch)
	withinAny := func(en rtree.Entry) bool {
		for _, o := range batch {
			if o.resolved {
				continue
			}
			if en.Rect.MinDist(o.entry.Point()) <= q.Radius {
				return true
			}
		}
		return false
	}
	assign := func(fp geo.Point, score float64) {
		for _, o := range batch {
			if o.resolved {
				continue
			}
			if o.entry.Point().Dist(fp) <= q.Radius {
				o.sum += score
				o.resolved = true
				unresolved--
			}
		}
	}
	pq := e.scratchBoundHeap()
	for pi, part := range g.Parts() {
		if part.Len() == 0 {
			continue
		}
		root, err := part.Tree().RootEntry()
		if err != nil {
			return err
		}
		if part.EntryRelevant(root, prepared) && withinAny(root) {
			pq.push(boundItem{entry: root, part: pi, bound: part.EntryBound(root, prepared)})
		}
	}
	for pq.Len() > 0 && unresolved > 0 {
		it := pq.pop()
		idx := g.Part(it.part)
		if it.entry.Leaf {
			fp := it.entry.Point()
			if it.resolved {
				assign(fp, it.bound)
				continue
			}
			if !withinAny(it.entry) {
				continue // no candidate object: skip the verification read
			}
			score, relevant, err := idx.ResolveLeaf(it.entry, prepared)
			if err != nil {
				return err
			}
			if !relevant {
				continue
			}
			if pq.Len() == 0 || score >= (*pq)[0].bound-1e-12 {
				assign(fp, score)
			} else {
				pq.push(boundItem{entry: it.entry, part: it.part, bound: score, resolved: true})
			}
			continue
		}
		n, err := idx.Tree().Node(it.entry.Child)
		if err != nil {
			return err
		}
		for _, child := range n.Entries {
			if !idx.EntryRelevant(child, prepared) {
				continue
			}
			if !withinAny(child) {
				continue
			}
			pq.push(boundItem{entry: child, part: it.part, bound: idx.EntryBound(child, prepared)})
		}
	}
	return nil
}
