// Package core implements the query processing algorithms of the paper:
// the Spatio-Textual Data Scan baseline (STDS, Section 5), the
// Spatio-Textual Preference Search algorithm (STPS, Section 6), and the
// unified framework for the three score variants — range (Definition 2),
// influence (Definition 6) and nearest neighbor (Definition 7).
package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"stpq/internal/approx"
	"stpq/internal/geo"
	"stpq/internal/index"
	"stpq/internal/kwset"
	"stpq/internal/obs"
	"stpq/internal/storage"
)

// Variant selects the preference-score definition (paper Section 7).
type Variant int

const (
	// RangeScore is Definition 2: τ_i(p) = max{s(t) : dist(p,t) ≤ r,
	// sim(t,W_i) > 0}.
	RangeScore Variant = iota
	// InfluenceScore is Definition 6: τ_i(p) = max{s(t)·2^(−dist(p,t)/r) :
	// sim(t,W_i) > 0} (no hard distance constraint).
	InfluenceScore
	// NearestNeighborScore is Definition 7: τ_i(p) = s(t) where t is p's
	// spatial nearest neighbor in F_i, provided sim(t,W_i) > 0.
	NearestNeighborScore
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case RangeScore:
		return "range"
	case InfluenceScore:
		return "influence"
	case NearestNeighborScore:
		return "nearest-neighbor"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// TraceMode is a query's explicit tracing decision, overriding the engine
// toggle and the telemetry sampler.
type TraceMode int

const (
	// TraceDefault defers to the engine toggle (Options.Trace / SetTrace)
	// and, failing that, the telemetry sampling policy.
	TraceDefault TraceMode = iota
	// TraceOn forces span collection for this query.
	TraceOn
	// TraceOff suppresses span collection for this query.
	TraceOff
)

// Query is a top-k spatio-textual preference query Q = (k, r, λ, W_1..W_c)
// (paper Problem 1).
type Query struct {
	// K is the number of data objects to return.
	K int
	// Radius is the query range r (normalized space). For the influence
	// variant it is the decay length; unused by the NN variant.
	Radius float64
	// Lambda is the smoothing parameter λ ∈ [0,1] between the non-spatial
	// score and the textual similarity (Definition 1).
	Lambda float64
	// Keywords holds one query keyword set W_i per feature set F_i.
	Keywords []kwset.Set
	// Variant selects the score definition.
	Variant Variant
	// Similarity selects the textual similarity measure of Definition 1
	// (zero value = Jaccard, the paper's choice).
	Similarity index.Similarity
	// RequestID is the request-scoped identity the query runs under; it is
	// stamped onto the span tree and the event record, never onto results.
	RequestID string
	// Trace is the query's explicit tracing decision.
	Trace TraceMode
	// Fanout, when positive, caps the sharded engine's scatter wave width
	// for this query — the planner's cost-based fan-out decision. 0 keeps
	// the engine default. Results are unaffected at any width: the
	// between-wave termination rule prunes only strictly out-scored
	// shards. Not part of the query shape.
	Fanout int
	// Approx, when non-nil, runs the query in the approximate fast tier:
	// MinHash/LSH candidate pruning (and, in signature mode with
	// SkipVerify, estimated similarity scoring) replace exact textual
	// verification. The request carries the lowered LSH parameters and
	// the shared atomic pruning counters; query copies (shard fan-out,
	// sessions) alias the same request, so counters aggregate across the
	// whole logical query. nil = exact mode, the default.
	Approx *approx.Request
}

// Validate checks query parameters against the engine shape.
func (q *Query) Validate(numFeatureSets int) error {
	if q.K <= 0 {
		return errors.New("core: query K must be positive")
	}
	if len(q.Keywords) != numFeatureSets {
		return fmt.Errorf("core: query has %d keyword sets, engine has %d feature sets",
			len(q.Keywords), numFeatureSets)
	}
	if q.Lambda < 0 || q.Lambda > 1 {
		return fmt.Errorf("core: lambda %v outside [0,1]", q.Lambda)
	}
	if q.Variant != NearestNeighborScore && q.Radius <= 0 {
		return fmt.Errorf("core: radius %v must be positive", q.Radius)
	}
	return nil
}

// keywordsFor returns the per-set query keywords bundle.
func (q *Query) keywordsFor(i int) index.QueryKeywords {
	return index.QueryKeywords{Set: q.Keywords[i], Lambda: q.Lambda, Sim: q.Similarity, Approx: q.Approx}
}

// Mode returns the query's execution-mode label: "exact" or "approx".
func (q *Query) Mode() string {
	if q.Approx != nil {
		return "approx"
	}
	return "exact"
}

// Result is one data object of the top-k answer.
type Result struct {
	ID       int64
	Location geo.Point
	// Score is the spatio-textual preference score τ(p).
	Score float64
}

// Stats reports the cost of one query execution, mirroring the paper's
// metric: CPU time (measured) plus I/O modeled from physical page reads.
// For the NN variant the Voronoi-construction share is reported separately
// (the striped segments of Figures 13–14).
type Stats struct {
	// CPUTime is the measured wall time of query processing.
	CPUTime time.Duration
	// IOTime is the modeled disk time: PhysicalReads × CostModel.PerPage.
	IOTime time.Duration
	// LogicalReads and PhysicalReads count page requests across all
	// indexes touched by the query.
	LogicalReads  int64
	PhysicalReads int64
	// VoronoiCPUTime and VoronoiReads isolate the Voronoi-cell
	// construction cost of the NN variant.
	VoronoiCPUTime time.Duration
	VoronoiReads   int64
	// Combinations counts valid feature combinations emitted by STPS.
	Combinations int
	// FeaturesPulled counts feature objects retrieved from feature
	// indexes.
	FeaturesPulled int
	// ObjectsScored counts data objects whose score was computed (STDS)
	// or retrieved (STPS).
	ObjectsScored int
	// ShardFanout and ShardPruned count shards queried / skipped by a
	// sharded engine's scatter-gather; zero on unsharded engines.
	ShardFanout int
	ShardPruned int
	// ApproxCandidates, ApproxPruned and ApproxSkippedReads report the
	// approximate tier's work: leaf features checked against the MinHash
	// sketch, those the LSH band filter rejected, and verification page
	// reads the skip-verify path avoided. Zero in exact mode. They are
	// loaded once per logical query from the shared approx request (the
	// snapshot layer fills them), so per-shard sub-stats leave them zero.
	ApproxCandidates   int64
	ApproxPruned       int64
	ApproxSkippedReads int64
	// Trace is the query's span tree when tracing is enabled
	// (Options.Trace), nil otherwise. The root span covers the whole
	// query; its page-read deltas equal LogicalReads/PhysicalReads.
	Trace *obs.Span
}

// Total returns CPU plus modeled I/O time — the paper's bar height.
func (s Stats) Total() time.Duration { return s.CPUTime + s.IOTime }

// Add accumulates other into s (for averaging over query workloads).
func (s *Stats) Add(other Stats) {
	s.CPUTime += other.CPUTime
	s.IOTime += other.IOTime
	s.LogicalReads += other.LogicalReads
	s.PhysicalReads += other.PhysicalReads
	s.VoronoiCPUTime += other.VoronoiCPUTime
	s.VoronoiReads += other.VoronoiReads
	s.Combinations += other.Combinations
	s.FeaturesPulled += other.FeaturesPulled
	s.ObjectsScored += other.ObjectsScored
	s.ShardFanout += other.ShardFanout
	s.ShardPruned += other.ShardPruned
	s.ApproxCandidates += other.ApproxCandidates
	s.ApproxPruned += other.ApproxPruned
	s.ApproxSkippedReads += other.ApproxSkippedReads
}

// Scale divides all counters by n, yielding per-query averages.
func (s Stats) Scale(n int) Stats {
	if n <= 0 {
		return s
	}
	d := time.Duration(n)
	return Stats{
		CPUTime:            s.CPUTime / d,
		IOTime:             s.IOTime / d,
		LogicalReads:       s.LogicalReads / int64(n),
		PhysicalReads:      s.PhysicalReads / int64(n),
		VoronoiCPUTime:     s.VoronoiCPUTime / d,
		VoronoiReads:       s.VoronoiReads / int64(n),
		Combinations:       s.Combinations / n,
		FeaturesPulled:     s.FeaturesPulled / n,
		ObjectsScored:      s.ObjectsScored / n,
		ShardFanout:        s.ShardFanout / n,
		ShardPruned:        s.ShardPruned / n,
		ApproxCandidates:   s.ApproxCandidates / int64(n),
		ApproxPruned:       s.ApproxPruned / int64(n),
		ApproxSkippedReads: s.ApproxSkippedReads / int64(n),
	}
}

// PullStrategy selects how STPS chooses the next feature set to access
// (paper Section 6.3).
type PullStrategy int

const (
	// PullPrioritized is Definition 5: access the feature set responsible
	// for the current threshold value.
	PullPrioritized PullStrategy = iota
	// PullRoundRobin cycles through the feature sets (the paper's
	// "simple alternative", kept for ablation).
	PullRoundRobin
)

// String implements fmt.Stringer.
func (p PullStrategy) String() string {
	if p == PullRoundRobin {
		return "round-robin"
	}
	return "prioritized"
}

// CombinationMode selects how STPS enumerates feature combinations.
// Both modes emit the same combinations in the same score order; they
// differ in which part of the combination space they keep materialized.
type CombinationMode int

const (
	// CombinationsAuto (default) picks per variant: eager for the range
	// score — whose validity filter (Definition 4) discards most of the
	// space at generation — and lazy for the influence and NN variants,
	// where every combination is valid and eager materialization would
	// hold the whole cross product.
	CombinationsAuto CombinationMode = iota
	// CombinationsEager is the paper's literal Algorithm 4 line 9: every
	// pulled feature immediately materializes all its valid combinations
	// (accelerated by a spatial grid over retrieved features).
	CombinationsEager
	// CombinationsLazy walks the combination lattice rank-join style:
	// pop the best index vector, push its successors. Memory stays
	// proportional to the emitted frontier.
	CombinationsLazy
)

// String implements fmt.Stringer.
func (m CombinationMode) String() string {
	switch m {
	case CombinationsEager:
		return "eager"
	case CombinationsLazy:
		return "lazy"
	default:
		return "auto"
	}
}

// Options tunes algorithm behaviour without affecting results.
type Options struct {
	// Pull selects the STPS pulling strategy.
	Pull PullStrategy
	// BatchSTDS enables the batched score computation of Section 5
	// ("Performance improvements"): objects are processed one object-tree
	// leaf at a time, sharing feature-index traversals. Applies to the
	// range variant; default on.
	BatchSTDS bool
	// Combinations selects how STPS enumerates feature combinations.
	Combinations CombinationMode
	// CacheVoronoiCells keeps Voronoi cells computed by the NN variant
	// across queries — the precomputation the paper suggests for static
	// data ("for static data the Voronoi cells can be pre-computed in a
	// special structure", Section 8.5). Cells can also be fully
	// precomputed up front with Engine.PrecomputeVoronoiCells.
	CacheVoronoiCells bool
	// CostModel converts physical reads to modeled I/O time.
	CostModel storage.CostModel
	// Trace collects a phase-level span tree into Stats.Trace for every
	// query. The disabled path costs one nil check per instrumentation
	// point.
	Trace bool
	// Metrics, when non-nil, receives aggregate query metrics (latency
	// and page-read histograms, per-algorithm counters) suitable for
	// scraping.
	Metrics *obs.Registry
	// Telemetry, when non-nil, receives one structured event record per
	// finished query (the event log, slow-query log and per-shape
	// statistics) and supplies the trace sampling policy.
	Telemetry *obs.Telemetry
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.CostModel.PerPage == 0 {
		o.CostModel = storage.DefaultCostModel()
	}
	return o
}

// Engine binds the object index and the feature indexes and executes
// queries with either algorithm. Once built, an Engine is safe for
// concurrent queries: each STDS/STPS call runs in a private session whose
// page reads are charged to a per-query accumulator, while the underlying
// buffer pools (shared page caches) are internally synchronized.
type Engine struct {
	objects  *index.ObjectIndex
	features []*index.FeatureGroup
	opts     Options
	// trace is the tracing toggle, shared by all sessions so SetTrace
	// takes effect for queries already in flight elsewhere.
	trace *atomic.Bool
	// cells is the cross-query Voronoi cell cache (Options.
	// CacheVoronoiCells); nil when caching is off.
	cells *cellCache
	// reads is the per-query read accumulator of a session engine; nil on
	// the root engine.
	reads *storage.Stats
	// scratches recycles queryScratch state (session views, candidate
	// heaps, combination buffers) across queries; set on root engines
	// built through the constructors, nil on sessions.
	scratches *sync.Pool
	// scratch is the per-query scratch of a pooled session; nil on the
	// root engine.
	scratch *queryScratch
}

// cellCache is the lock-protected cross-query Voronoi cell cache.
type cellCache struct {
	mu sync.RWMutex
	m  map[cellKey]geo.Polygon
}

func (c *cellCache) get(k cellKey) (geo.Polygon, bool) {
	c.mu.RLock()
	p, ok := c.m[k]
	c.mu.RUnlock()
	return p, ok
}

func (c *cellCache) put(k cellKey, p geo.Polygon) {
	c.mu.Lock()
	c.m[k] = p
	c.mu.Unlock()
}

// session returns a per-query view of the engine: the same immutable index
// structure and shared page caches, but with every page read charged to a
// fresh private accumulator. On engines built through the constructors the
// view comes from the scratch pool (pair with releaseSession); engines
// assembled literally fall back to a one-shot view. Idempotent on an
// engine that already is a session.
func (e *Engine) session() *Engine {
	if e.reads != nil {
		return e
	}
	if e.scratches != nil {
		sc := e.scratches.Get().(*queryScratch)
		sc.reset()
		return sc.sess
	}
	acct := &storage.Stats{}
	s := *e
	s.reads = acct
	s.objects = e.objects.Session(acct)
	feats := make([]*index.FeatureGroup, len(e.features))
	for i, f := range e.features {
		feats[i] = f.Session(acct)
	}
	s.features = feats
	return &s
}

// NewEngine creates an engine over plain feature indexes, each becoming a
// single-part feature group. All feature indexes must share the engine's
// vocabulary width; queries carry one keyword set per feature index.
func NewEngine(objects *index.ObjectIndex, features []*index.FeatureIndex, opts Options) (*Engine, error) {
	if len(features) == 0 {
		return nil, errors.New("core: at least one feature index required")
	}
	for i, f := range features {
		if f == nil {
			return nil, fmt.Errorf("core: feature index %d is nil", i)
		}
	}
	groups, err := index.GroupEach(features)
	if err != nil {
		return nil, err
	}
	return NewEngineWithGroups(objects, groups, opts)
}

// NewEngineWithGroups creates an engine whose feature sets are forests of
// index parts (used by the sharded engine, where each sub-engine pairs its
// local object index with the globally shared feature groups).
func NewEngineWithGroups(objects *index.ObjectIndex, features []*index.FeatureGroup, opts Options) (*Engine, error) {
	if objects == nil {
		return nil, errors.New("core: nil object index")
	}
	if len(features) == 0 {
		return nil, errors.New("core: at least one feature group required")
	}
	for i, g := range features {
		if g == nil {
			return nil, fmt.Errorf("core: feature group %d is nil", i)
		}
	}
	e := &Engine{objects: objects, features: features, opts: opts.withDefaults(), trace: &atomic.Bool{}}
	e.trace.Store(e.opts.Trace)
	if e.opts.CacheVoronoiCells {
		e.cells = &cellCache{m: make(map[cellKey]geo.Polygon)}
	}
	e.scratches = &sync.Pool{New: func() interface{} { return newQueryScratch(e) }}
	return e, nil
}

// PrecomputeVoronoiCells computes and caches the Voronoi cell of every
// feature object up front (requires Options.CacheVoronoiCells). The
// one-off cost removes the per-query Voronoi construction that dominates
// the NN variant (Figures 13–14).
func (e *Engine) PrecomputeVoronoiCells() error {
	if e.cells == nil {
		return errors.New("core: PrecomputeVoronoiCells requires Options.CacheVoronoiCells")
	}
	for i, g := range e.features {
		for _, part := range g.Parts() {
			if part.Len() == 0 {
				continue
			}
			all, err := part.Tree().All()
			if err != nil {
				return err
			}
			for _, entry := range all {
				cell, err := e.voronoiCell(i, entry)
				if err != nil {
					return err
				}
				e.cells.put(cellKey{set: i, id: entry.ItemID}, cell)
			}
		}
	}
	return nil
}

// Objects returns the engine's data-object index.
func (e *Engine) Objects() *index.ObjectIndex { return e.objects }

// NumObjects returns the number of indexed data objects.
func (e *Engine) NumObjects() int { return e.objects.Len() }

// FeatureGroups returns the engine's feature sets as groups of index parts
// (single-part groups on an unsharded engine).
func (e *Engine) FeatureGroups() []*index.FeatureGroup { return e.features }

// Options returns the engine options.
func (e *Engine) Options() Options { return e.opts }

// snapshotReads returns the cumulative I/O counters visible to this
// engine: the private per-query accumulator in a session, or the summed
// lifetime pool counters on the root engine. Within a session, snapshots
// taken before and after a phase diff to exactly that query's reads even
// when other queries run concurrently.
func (e *Engine) snapshotReads() storage.Stats {
	if e.reads != nil {
		return *e.reads
	}
	var s storage.Stats
	s.Add(e.objects.Stats())
	for _, f := range e.features {
		s.Add(f.Stats())
	}
	return s
}

// finishStats completes a Stats from a start snapshot and start time.
func (e *Engine) finishStats(st *Stats, before storage.Stats, start time.Time) {
	diff := e.snapshotReads().Sub(before)
	st.LogicalReads = diff.LogicalReads
	st.PhysicalReads = diff.PhysicalReads
	st.IOTime = e.opts.CostModel.IOTime(diff.PhysicalReads)
	st.CPUTime = time.Since(start)
}

// SetTrace toggles per-query tracing after construction (used by CLIs on
// opened databases). Safe to call while queries are in flight; queries
// that already started keep their tracing decision.
func (e *Engine) SetTrace(on bool) { e.trace.Store(on) }

// TraceDecision resolves whether a query collects a span tree and whether
// that tree is kept (returned in Stats and stored on the event record) or
// collected only provisionally for slow-query capture. Precedence: the
// query's explicit mode, then the engine toggle, then the telemetry
// sampler; a configured slow-query threshold forces collection of every
// remaining query so slow ones have complete traces (keep stays false —
// the trace survives only if the query actually turns out slow).
func TraceDecision(mode TraceMode, engineOn bool, tel *obs.Telemetry) (collect, keep bool) {
	switch mode {
	case TraceOn:
		return true, true
	case TraceOff:
		return false, false
	}
	if engineOn {
		return true, true
	}
	if tel.Sample() {
		return true, true
	}
	if tel != nil && tel.SlowThreshold > 0 {
		return true, false
	}
	return false, false
}

// newTrace opens a span trace for one query, or returns the nil (no-op)
// tracer when tracing is off. The read source diffs the session's private
// read accumulator, so span deltas line up exactly with Stats even under
// concurrent queries.
func (e *Engine) newTrace(name string, q *Query) *obs.Trace {
	collect, keep := TraceDecision(q.Trace, e.trace.Load(), e.opts.Telemetry)
	if !collect {
		return nil
	}
	tr := obs.NewTrace(name, func() (int64, int64) {
		s := e.snapshotReads()
		return s.LogicalReads, s.PhysicalReads
	})
	tr.SetRequestID(q.RequestID)
	if keep {
		tr.MarkKeep()
	}
	return tr
}

// finishTrace closes the trace, annotates the root span with the query's
// logical counters and stores it in stats. It must run immediately before
// finishStats: no page is read between the two calls, so the root span's
// read deltas equal the Stats counters.
func finishTrace(tr *obs.Trace, stats *Stats) {
	if tr == nil {
		return
	}
	root := tr.Finish()
	root.Add("combinations", int64(stats.Combinations))
	root.Add("features_pulled", int64(stats.FeaturesPulled))
	root.Add("objects_scored", int64(stats.ObjectsScored))
	stats.Trace = root
}

// observeQuery feeds one finished query into the metrics registry (success
// only — a failed query must not skew latency histograms) and the event
// log (always — failures are exactly what the log must surface).
func (e *Engine) observeQuery(alg string, q *Query, st *Stats, start time.Time, err error) {
	if err == nil {
		ObserveQuery(e.opts.Metrics, alg, q, st)
	}
	RecordQueryEvent(e.opts.Telemetry, alg, q, st, start, err)
}

// ObserveQuery feeds one finished query into a metrics registry. It is
// exported for engine wrappers (the sharded engine) that must observe the
// merged query exactly once instead of once per sub-engine.
func ObserveQuery(r *obs.Registry, alg string, q *Query, st *Stats) {
	if r == nil {
		return
	}
	label := `{alg="` + alg + `",variant="` + q.Variant.String() + `"}`
	r.Counter("stpq_queries_total" + label).Inc()
	r.Histogram("stpq_query_seconds"+label, obs.LatencyBuckets).Observe(st.Total().Seconds())
	r.Histogram("stpq_query_cpu_seconds"+label, obs.LatencyBuckets).Observe(st.CPUTime.Seconds())
	r.Histogram("stpq_query_physical_reads"+label, obs.ReadBuckets).Observe(float64(st.PhysicalReads))
	r.Counter("stpq_combinations_total" + label).Add(int64(st.Combinations))
	r.Counter("stpq_features_pulled_total" + label).Add(int64(st.FeaturesPulled))
	r.Counter("stpq_objects_scored_total" + label).Add(int64(st.ObjectsScored))
	if a := q.Approx; a != nil {
		// Read from the shared request, not st: the unsharded engine
		// observes before the snapshot layer copies the counters into
		// Stats, and the shard engine observes the merged query once after
		// all waves — in both cases the request already holds the full
		// totals for this logical query.
		r.Counter("stpq_approx_queries_total" + label).Inc()
		r.Histogram("stpq_approx_query_seconds"+label, obs.LatencyBuckets).Observe(st.Total().Seconds())
		r.Counter("stpq_approx_candidates_total" + label).Add(a.Candidates.Load())
		r.Counter("stpq_approx_pruned_total" + label).Add(a.Pruned.Load())
		r.Counter("stpq_approx_skipped_reads_total" + label).Add(a.SkippedReads.Load())
	}
}

// QueryShapeKey builds the canonical shape key of a query — the join key
// into the per-shape statistics table (obs.ShapeStats).
func QueryShapeKey(alg string, q *Query) obs.ShapeKey {
	sets := 0
	for _, s := range q.Keywords {
		if !s.IsEmpty() {
			sets++
		}
	}
	key := obs.ShapeKey{
		Alg:     alg,
		Variant: q.Variant.String(),
		Sim:     q.Similarity.String(),
		K:       q.K,
		RBucket: obs.RadiusBucket(q.Radius),
		Sets:    sets,
	}
	// Approximate executions get their own shape dimension so the planner
	// never mixes exact and approx cost statistics ("" = exact keeps old
	// persisted shapes.json records merging onto the exact shapes).
	if q.Approx != nil {
		key.Mode = "approx"
	}
	return key
}

// RecordQueryEvent files one finished query into the telemetry bundle. It
// is exported for engine wrappers (the sharded engine) that must record
// the merged query exactly once instead of once per sub-engine. The
// success path is allocation-free once the query's shape has been seen.
func RecordQueryEvent(tel *obs.Telemetry, alg string, q *Query, st *Stats, start time.Time, err error) {
	if tel == nil {
		return
	}
	ev := obs.QueryEvent{
		Start:          start,
		RequestID:      q.RequestID,
		Algorithm:      alg,
		Variant:        q.Variant.String(),
		K:              q.K,
		Radius:         q.Radius,
		Duration:       st.CPUTime,
		IOTime:         st.IOTime,
		LogicalReads:   st.LogicalReads,
		PhysicalReads:  st.PhysicalReads,
		Combinations:   st.Combinations,
		FeaturesPulled: st.FeaturesPulled,
		ObjectsScored:  st.ObjectsScored,
		ShardFanout:    st.ShardFanout,
		ShardPruned:    st.ShardPruned,
		Outcome:        "ok",
		Trace:          st.Trace,
	}
	if a := q.Approx; a != nil {
		ev.Mode = "approx"
		ev.ApproxCandidates = a.Candidates.Load()
		ev.ApproxPruned = a.Pruned.Load()
	}
	if err != nil {
		ev.Outcome = "error"
		ev.Error = err.Error()
	}
	tel.Record(ev, QueryShapeKey(alg, q), err == nil)
}

// RecordCacheHit files an event for a query answered from a serving-layer
// result cache: attributable like any other query, but not counted into
// the shape statistics (no engine execution happened).
func RecordCacheHit(tel *obs.Telemetry, alg string, q *Query, start time.Time, elapsed time.Duration) {
	if tel == nil {
		return
	}
	ev := obs.QueryEvent{
		Start:     start,
		RequestID: q.RequestID,
		Algorithm: alg,
		Variant:   q.Variant.String(),
		K:         q.K,
		Radius:    q.Radius,
		Duration:  elapsed,
		CacheHit:  true,
		Outcome:   "ok",
	}
	tel.Record(ev, QueryShapeKey(alg, q), false)
}

// UpperBound returns a sound upper bound on τ(p) for every location p
// inside rect: per feature set, the best root-level score bound over the
// parts that can contribute, tightened per variant — range parts farther
// than r from rect are skipped entirely (no feature of theirs can be in
// range of any p ∈ rect), influence bounds decay by 2^(−mindist/r), NN
// keeps the raw textual bound (the nearest neighbor can be arbitrarily
// close). The sharded engine uses this per shard MBR to order and prune
// the scatter phase.
func (e *Engine) UpperBound(q Query, rect geo.Rect) (float64, error) {
	if err := q.Validate(len(e.features)); err != nil {
		return 0, err
	}
	total := 0.0
	for i, g := range e.features {
		qk := q.keywordsFor(i)
		if g.Len() == 0 || qk.Set.IsEmpty() {
			continue
		}
		prepared := g.Prepare(qk)
		best := 0.0
		for _, part := range g.Parts() {
			if part.Len() == 0 {
				continue
			}
			root, err := part.Tree().RootEntry()
			if err != nil {
				return 0, err
			}
			if !part.EntryRelevant(root, prepared) {
				continue
			}
			b := part.EntryBound(root, prepared)
			switch q.Variant {
			case RangeScore:
				if geo.RectMinDist(rect, root.Rect) > q.Radius {
					continue
				}
			case InfluenceScore:
				b *= math.Exp2(-geo.RectMinDist(rect, root.Rect) / q.Radius)
			}
			if b > best {
				best = b
			}
		}
		total += best
	}
	return total, nil
}

// UpperBoundAll returns UpperBound evaluated over the MBR of the engine's
// own data objects — the admissible whole-engine bound a cluster node
// reports to the coordinator's scatter probe. An engine whose object tree
// is empty bounds at 0: it cannot contribute any result.
func (e *Engine) UpperBoundAll(q Query) (float64, error) {
	root, err := e.objects.Tree().RootEntry()
	if err != nil {
		return 0, err
	}
	if root.Rect.IsEmpty() {
		return 0, nil
	}
	return e.UpperBound(q, root.Rect)
}

// virtualScore is the score of the virtual feature ∅ (paper Section 6.1).
const virtualScore = 0.0

// negInf is used as the "no threshold" sentinel.
var negInf = math.Inf(-1)
