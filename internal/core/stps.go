package core

import (
	"math"
	"sort"
	"time"

	"stpq/internal/geo"
	"stpq/internal/obs"
	"stpq/internal/rtree"
	"stpq/internal/voronoi"
)

// STPS executes the Spatio-Textual Preference Search algorithm (paper
// Section 6 for the range variant, Section 7 for the influence and NN
// variants): it retrieves highly ranked valid combinations of feature
// objects first, then searches for data objects in their neighborhood.
func (e *Engine) STPS(q Query) ([]Result, Stats, error) {
	if err := q.Validate(len(e.features)); err != nil {
		return nil, Stats{}, err
	}
	root := e
	e = e.session() // private read accounting; safe under concurrency
	defer root.releaseSession(e)
	var stats Stats
	before := e.snapshotReads()
	tr := e.newTrace("stps."+q.Variant.String(), &q)
	start := time.Now()
	var (
		results []Result
		err     error
	)
	switch q.Variant {
	case RangeScore:
		results, err = e.stpsRange(&q, &stats, tr)
	case InfluenceScore:
		results, err = e.stpsInfluence(&q, &stats, tr)
	case NearestNeighborScore:
		results, err = e.stpsNearestNeighbor(&q, &stats, tr)
	}
	finishTrace(tr, &stats)
	e.finishStats(&stats, before, start)
	e.observeQuery("stps", &q, &stats, start, err)
	if err != nil {
		return nil, stats, err
	}
	sortResults(results)
	return results, stats, nil
}

// sortResults orders by the total order betterResult (score descending,
// ties by ascending id) for deterministic output.
func sortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool { return betterResult(rs[i], rs[j]) })
}

// stpsRange is Algorithm 3: emit valid combinations in non-increasing
// score; every not-yet-seen data object within distance r of all feature
// objects of the combination has exactly that combination's score
// (Lemma 1). Objects are collected through the tie-aware accumulator and
// the loop stops only once the combination score drops strictly below the
// k-th result — combinations tying it can still contribute objects that
// win the id tie-break.
func (e *Engine) stpsRange(q *Query, stats *Stats, tr *obs.Trace) ([]Result, error) {
	cs, err := newCombinationStream(e, q, true, stats, tr)
	if err != nil {
		return nil, err
	}
	seen := e.scratchSeen()
	acc := e.newTopk(q.K)
	for {
		sp := tr.StartPhase("combos.generate")
		comb, ok, err := cs.next()
		sp.End()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if acc.full() && comb.score < acc.threshold() {
			break
		}
		sp = tr.StartPhase("objects.retrieve")
		err = e.objectsMatchingRangeCombo(comb, q.Radius, func(entry rtree.Entry) bool {
			if seen[entry.ItemID] {
				return true
			}
			seen[entry.ItemID] = true
			stats.ObjectsScored++
			acc.offer(Result{ID: entry.ItemID, Location: entry.Point(), Score: comb.score})
			return true
		})
		sp.End()
		if err != nil {
			return nil, err
		}
	}
	return acc.results(), nil
}

// objectsMatchingRangeCombo visits data objects within distance r of every
// concrete feature of the combination (getDataObjects, Section 6.4).
// Subtrees are pruned as soon as one feature is farther than r from the
// node MBR.
func (e *Engine) objectsMatchingRangeCombo(comb combination, r float64, fn func(rtree.Entry) bool) error {
	anchors := make([]geo.Point, 0, len(comb.refs))
	for _, ref := range comb.refs {
		if !ref.virtual {
			anchors = append(anchors, ref.entry.Point())
		}
	}
	return e.objects.Tree().SearchFiltered(func(en rtree.Entry) bool {
		if en.Leaf {
			p := en.Point()
			for _, a := range anchors {
				if p.Dist(a) > r {
					return false
				}
			}
			return true
		}
		for _, a := range anchors {
			if en.Rect.MinDist(a) > r {
				return false
			}
		}
		return true
	}, fn)
}

// stpsInfluence is Algorithm 5. Combinations arrive in non-increasing
// s(C), which upper-bounds the influence score of any object under any
// unseen combination (the score at distance 0), so the loop stops once
// s(C) no longer exceeds the current k-th object score.
func (e *Engine) stpsInfluence(q *Query, stats *Stats, tr *obs.Trace) ([]Result, error) {
	cs, err := newCombinationStream(e, q, false, stats, tr)
	if err != nil {
		return nil, err
	}
	acc := e.newInfluenceTopK(q.K)
	for {
		sp := tr.StartPhase("combos.generate")
		comb, ok, err := cs.next()
		sp.End()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if acc.full() && comb.score < acc.threshold() {
			break
		}
		// Geometric refinement: s(C) assumes an object at distance 0 from
		// every feature; when the features are far apart no object can
		// collect their full scores simultaneously. Skip the object
		// search when even the geometric bound cannot beat τ. (Exact: the
		// bound dominates Σ s_i·2^(−dist(p,t_i)/r) for every p.) Strict:
		// an object tying τ can still win the id tie-break.
		if acc.full() && comboInfluenceBound(comb, q.Radius) < acc.threshold() {
			continue
		}
		sp = tr.StartPhase("objects.retrieve")
		err = e.topKInfluence(comb, q, acc, func(id int64, loc geo.Point, score float64) {
			if acc.offer(id, loc, score) {
				stats.ObjectsScored++
			}
		})
		sp.End()
		if err != nil {
			return nil, err
		}
	}
	return acc.results(), nil
}

// influenceTopK maintains the running top-k of the influence variant: the
// best known score per object (scores only improve as combinations with
// new geometry arrive) and the current k best, kept sorted so the k-th
// score — Algorithm 5's threshold τ — is O(1).
type influenceTopK struct {
	k    int
	best map[int64]float64
	top  []Result // sorted by score descending, at most k entries
}

func newInfluenceTopK(k int) *influenceTopK {
	return &influenceTopK{k: k, best: make(map[int64]float64)}
}

// full reports whether k objects have been seen.
func (a *influenceTopK) full() bool { return len(a.top) >= a.k }

// threshold returns the k-th best score, or −∞ before k objects are known.
// As with topkAccumulator, ties at the threshold can still enter via the
// id tie-break, so callers prune only strictly below it.
func (a *influenceTopK) threshold() float64 {
	if !a.full() {
		return negInf
	}
	return a.top[a.k-1].Score
}

// offer records a (possibly improved) score for an object and reports
// whether the object was new.
func (a *influenceTopK) offer(id int64, loc geo.Point, score float64) (isNew bool) {
	prev, exists := a.best[id]
	if exists && score <= prev {
		return false
	}
	a.best[id] = score
	// Remove a stale entry for this object from the top list.
	if exists {
		for i := range a.top {
			if a.top[i].ID == id {
				a.top = append(a.top[:i], a.top[i+1:]...)
				break
			}
		}
	}
	r := Result{ID: id, Location: loc, Score: score}
	// Insert in total-order position (score desc, id asc) if it belongs in
	// the top k.
	pos := sort.Search(len(a.top), func(i int) bool { return betterResult(r, a.top[i]) })
	if pos < a.k {
		a.top = append(a.top, Result{})
		copy(a.top[pos+1:], a.top[pos:])
		a.top[pos] = r
		if len(a.top) > a.k {
			a.top = a.top[:a.k]
		}
	}
	return !exists
}

// results returns the final top-k, sorted.
func (a *influenceTopK) results() []Result {
	out := make([]Result, len(a.top))
	copy(out, a.top)
	sortResults(out)
	return out
}

// comboInfluenceBound upper-bounds the influence score any location p can
// achieve under the combination: writing u_j = 2^(−dist(p,t_j)/r) and
// letting i be p's nearest feature (u_i maximal), the triangle inequality
// gives u_i·u_j ≤ 2^(−d_ij/r), hence u_j ≤ 2^(−d_ij/(2r)), so
//
//	Σ_j s_j·u_j ≤ s_i + Σ_{j≠i} s_j·2^(−d_ij/(2r)).
//
// Maximizing over the (unknown) nearest feature i yields a sound bound
// that collapses for feature pairs much farther apart than r.
func comboInfluenceBound(comb combination, r float64) float64 {
	best := 0.0
	for i, ri := range comb.refs {
		if ri.virtual {
			continue
		}
		v := ri.score
		for j, rj := range comb.refs {
			if j == i || rj.virtual {
				continue
			}
			d := ri.entry.Point().Dist(rj.entry.Point())
			v += rj.score * math.Exp2(-d/(2*r))
		}
		if v > best {
			best = v
		}
	}
	return best
}

// topKInfluence runs a best-first top-k search on the object R-tree where
// an object's priority is its influence score under this combination,
// Σ_i s(t_i)·2^(−dist(p,t_i)/r), and a node's priority (using MINDIST)
// upper-bounds every object below. The search stops when the max remaining
// bound falls strictly below the accumulator's (re-read, hence tightening)
// threshold, or strictly below the k-th score emitted by this search —
// either way at least k objects with strictly better scores are already
// known, so nothing below can enter the top-k even via the id tie-break.
func (e *Engine) topKInfluence(comb combination, q *Query, acc *influenceTopK, emit func(int64, geo.Point, float64)) error {
	type anchor struct {
		pt geo.Point
		s  float64
	}
	anchors := make([]anchor, 0, len(comb.refs))
	for _, ref := range comb.refs {
		if !ref.virtual {
			anchors = append(anchors, anchor{pt: ref.entry.Point(), s: ref.score})
		}
	}
	prio := func(en rtree.Entry) float64 {
		sum := 0.0
		for _, a := range anchors {
			var d float64
			if en.Leaf {
				d = en.Point().Dist(a.pt)
			} else {
				d = en.Rect.MinDist(a.pt)
			}
			sum += a.s * math.Exp2(-d/q.Radius)
		}
		return sum
	}
	root, err := e.objects.Tree().RootEntry()
	if err != nil {
		return err
	}
	pq := e.scratchBoundHeap()
	pq.push(boundItem{entry: root, bound: prio(root)})
	emitted := 0
	kth := negInf // k-th best score emitted by this search (pops are non-increasing)
	for pq.Len() > 0 {
		it := pq.pop()
		limit := acc.threshold()
		if emitted >= q.K && kth > limit {
			limit = kth
		}
		if it.bound < limit {
			return nil // nothing below can enter the top-k, even by tie-break
		}
		if it.entry.Leaf {
			emit(it.entry.ItemID, it.entry.Point(), it.bound)
			emitted++
			if emitted == q.K {
				kth = it.bound
			}
			continue
		}
		n, err := e.objects.Tree().Node(it.entry.Child)
		if err != nil {
			return err
		}
		for _, c := range n.Entries {
			pq.push(boundItem{entry: c, bound: prio(c)})
		}
	}
	return nil
}

// stpsNearestNeighbor processes the NN variant (Section 7.2): for each
// combination, the qualifying region is the intersection of the Voronoi
// cells of its feature objects; data objects inside it have exactly the
// combination's score. Cells are built incrementally and the combination
// is discarded as soon as the intersection becomes empty.
func (e *Engine) stpsNearestNeighbor(q *Query, stats *Stats, tr *obs.Trace) ([]Result, error) {
	cs, err := newCombinationStream(e, q, false, stats, tr)
	if err != nil {
		return nil, err
	}
	seen := e.scratchSeen()
	acc := e.newTopk(q.K)
	// Per-query cell view: always writes a private map (single-goroutine),
	// falling back to — and populating — the shared cross-query cache when
	// Options.CacheVoronoiCells is on.
	local, radii := e.scratchCells()
	cells := &queryCells{shared: e.cells, local: local}
	for {
		sp := tr.StartPhase("combos.generate")
		comb, ok, err := cs.next()
		sp.End()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if acc.full() && comb.score < acc.threshold() {
			break
		}
		if comboCellsDisjoint(comb, radii) {
			continue
		}
		sp = tr.StartPhase("voronoi.build")
		region, err := e.comboRegion(comb, cells, radii, stats)
		sp.End()
		if err != nil {
			return nil, err
		}
		if region.IsEmpty() {
			continue
		}
		sp = tr.StartPhase("objects.retrieve")
		err = e.objects.Tree().SearchPolygon(region, func(entry rtree.Entry) bool {
			if seen[entry.ItemID] {
				return true
			}
			seen[entry.ItemID] = true
			stats.ObjectsScored++
			acc.offer(Result{ID: entry.ItemID, Location: entry.Point(), Score: comb.score})
			return true
		})
		sp.End()
		if err != nil {
			return nil, err
		}
	}
	return acc.results(), nil
}

// cellKey identifies a cached Voronoi cell.
type cellKey struct {
	set int
	id  int64
}

// queryCells is one query's view of the Voronoi cells: a private map the
// query fills freely plus the optional shared cross-query cache, consulted
// and populated under its lock.
type queryCells struct {
	shared *cellCache
	local  map[cellKey]geo.Polygon
}

func (qc *queryCells) get(k cellKey) (geo.Polygon, bool) {
	if cell, ok := qc.local[k]; ok {
		return cell, true
	}
	if qc.shared != nil {
		if cell, ok := qc.shared.get(k); ok {
			qc.local[k] = cell
			return cell, true
		}
	}
	return geo.Polygon{}, false
}

func (qc *queryCells) put(k cellKey, cell geo.Polygon) {
	qc.local[k] = cell
	if qc.shared != nil {
		qc.shared.put(k, cell)
	}
}

// comboCellsDisjoint quick-rejects a combination when two of its features'
// Voronoi cells cannot intersect: every cell lies inside the circle of
// radius maxDist(site, cell) around its site, so sites farther apart than
// the radius sum have disjoint cells. Radii are looked up from the cell
// cache; unknown cells (not yet computed) do not reject.
func comboCellsDisjoint(comb combination, radii map[cellKey]float64) bool {
	type disk struct {
		pt geo.Point
		r  float64
	}
	disks := make([]disk, 0, len(comb.refs))
	for i, ref := range comb.refs {
		if ref.virtual {
			continue
		}
		r, ok := radii[cellKey{set: i, id: ref.entry.ItemID}]
		if !ok {
			continue
		}
		disks = append(disks, disk{pt: ref.entry.Point(), r: r})
	}
	for i := 0; i < len(disks); i++ {
		for j := i + 1; j < len(disks); j++ {
			if disks[i].pt.Dist(disks[j].pt) > disks[i].r+disks[j].r {
				return true
			}
		}
	}
	return false
}

// comboRegion intersects the Voronoi cells of the combination's concrete
// features, attributing the construction cost to the Voronoi counters
// (the striped bars of Figures 13–14).
func (e *Engine) comboRegion(comb combination, cache *queryCells, radii map[cellKey]float64, stats *Stats) (geo.Polygon, error) {
	region := geo.UnitSquare()
	vorStart := time.Now()
	vorBefore := e.snapshotReads()
	defer func() {
		stats.VoronoiCPUTime += time.Since(vorStart)
		stats.VoronoiReads += e.snapshotReads().Sub(vorBefore).PhysicalReads
	}()
	for i, ref := range comb.refs {
		if ref.virtual {
			continue
		}
		key := cellKey{set: i, id: ref.entry.ItemID}
		cell, ok := cache.get(key)
		if !ok {
			var err error
			cell, err = e.voronoiCell(i, ref.entry)
			if err != nil {
				return geo.Polygon{}, err
			}
			cache.put(key, cell)
		}
		if _, ok := radii[key]; !ok {
			radii[key] = cell.MaxDist(ref.entry.Point())
		}
		region = region.IntersectConvex(cell)
		if region.IsEmpty() {
			return geo.Polygon{}, nil
		}
	}
	return region, nil
}

// voronoiCell computes the exact Voronoi cell of a feature within its
// feature set by streaming neighbors in increasing distance until the
// 2·maxdist stopping rule fires. The distance ascent merges all parts of
// the feature group, so a cell computed on a sharded engine is the cell
// within the full (global) feature set — Voronoi cells ignore shard
// borders by construction.
func (e *Engine) voronoiCell(set int, site rtree.Entry) (geo.Polygon, error) {
	b := voronoi.NewCellBuilder(site.Point(), geo.UnitSquare())
	err := e.groupAscendDistance(e.features[set], site.Point(), func(_ int, en rtree.Entry, d float64) bool {
		if en.ItemID == site.ItemID {
			return true
		}
		if b.Done(d) {
			return false
		}
		b.Clip(en.Point())
		return true
	})
	if err != nil {
		return geo.Polygon{}, err
	}
	return b.Cell(), nil
}
