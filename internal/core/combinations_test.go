package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"stpq/internal/index"
)

// drainCombinations pulls up to limit combinations from a fresh stream.
func drainCombinations(t *testing.T, w *testWorld, q Query, pairFilter bool, limit int) []combination {
	t.Helper()
	var stats Stats
	cs, err := newCombinationStream(w.engine, &q, pairFilter, &stats, nil)
	if err != nil {
		t.Fatal(err)
	}
	var out []combination
	for len(out) < limit {
		comb, ok, err := cs.next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		// refs are backed by the stream's reusable buffer and only valid
		// until the next next() call; snapshot them for later inspection.
		comb.refs = append([]featureRef(nil), comb.refs...)
		out = append(out, comb)
	}
	return out
}

// Combinations must be emitted in non-increasing score order — the
// foundation of STPS correctness (Section 6.3, thresholding scheme).
func TestCombinationOrderMonotone(t *testing.T) {
	w := buildWorld(t, 300, 50, 150, 2, 16, index.SRT, Options{})
	rng := rand.New(rand.NewSource(301))
	for trial := 0; trial < 5; trial++ {
		q := w.randQuery(rng, 2, RangeScore)
		combos := drainCombinations(t, w, q, true, 200)
		for i := 1; i < len(combos); i++ {
			if combos[i].score > combos[i-1].score+1e-9 {
				t.Fatalf("trial %d: combination %d score %v exceeds previous %v",
					trial, i, combos[i].score, combos[i-1].score)
			}
		}
		if len(combos) == 0 {
			t.Fatal("no combinations emitted")
		}
	}
}

// With the pair filter enabled, every emitted combination must satisfy
// Definition 4: pairwise distance at most 2r among concrete features.
func TestCombinationValidity(t *testing.T) {
	w := buildWorld(t, 302, 50, 150, 3, 16, index.SRT, Options{})
	rng := rand.New(rand.NewSource(303))
	q := w.randQuery(rng, 3, RangeScore)
	q.Radius = 0.05
	combos := drainCombinations(t, w, q, true, 300)
	for _, c := range combos {
		for i := 0; i < len(c.refs); i++ {
			if c.refs[i].virtual {
				continue
			}
			for j := i + 1; j < len(c.refs); j++ {
				if c.refs[j].virtual {
					continue
				}
				d := c.refs[i].entry.Point().Dist(c.refs[j].entry.Point())
				if d > 2*q.Radius+1e-12 {
					t.Fatalf("invalid combination: pair distance %v > 2r=%v", d, 2*q.Radius)
				}
			}
		}
	}
}

// The combination score must equal the sum of its member scores.
func TestCombinationScoreIsSum(t *testing.T) {
	w := buildWorld(t, 304, 50, 100, 2, 16, index.SRT, Options{})
	rng := rand.New(rand.NewSource(305))
	q := w.randQuery(rng, 2, RangeScore)
	combos := drainCombinations(t, w, q, true, 100)
	for _, c := range combos {
		sum := 0.0
		for _, ref := range c.refs {
			sum += ref.score
		}
		if math.Abs(sum-c.score) > 1e-12 {
			t.Fatalf("score %v != member sum %v", c.score, sum)
		}
	}
}

// The first emitted combination must be the global best: the top feature
// of each set when they are mutually within 2r — verified against an
// exhaustive enumeration over all feature pairs.
func TestFirstCombinationIsGlobalBest(t *testing.T) {
	w := buildWorld(t, 306, 50, 120, 2, 16, index.SRT, Options{})
	rng := rand.New(rand.NewSource(307))
	for trial := 0; trial < 5; trial++ {
		q := w.randQuery(rng, 2, RangeScore)
		combos := drainCombinations(t, w, q, true, 1)
		if len(combos) == 0 {
			t.Fatal("no combinations")
		}
		got := combos[0].score
		want := bruteBestComboScore(t, w, q)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: first combo score %v, want %v", trial, got, want)
		}
	}
}

// bruteBestComboScore enumerates all pairs (t_1, t_2) including ∅ slots.
func bruteBestComboScore(t *testing.T, w *testWorld, q Query) float64 {
	f0, err := w.engine.features[0].Part(0).Tree().All()
	if err != nil {
		t.Fatal(err)
	}
	f1, err := w.engine.features[1].Part(0).Tree().All()
	if err != nil {
		t.Fatal(err)
	}
	qk0, qk1 := q.keywordsFor(0), q.keywordsFor(1)
	best := 0.0 // the all-virtual combination
	for _, a := range f0 {
		if !a.Keywords.Intersects(qk0.Set) {
			continue
		}
		sa := index.Score(a, qk0)
		if sa > best {
			best = sa // (a, ∅)
		}
		for _, b := range f1 {
			if !b.Keywords.Intersects(qk1.Set) {
				continue
			}
			if a.Point().Dist(b.Point()) > 2*q.Radius {
				continue
			}
			if s := sa + index.Score(b, qk1); s > best {
				best = s
			}
		}
	}
	for _, b := range f1 {
		if !b.Keywords.Intersects(qk1.Set) {
			continue
		}
		if s := index.Score(b, qk1); s > best {
			best = s // (∅, b)
		}
	}
	return best
}

// Lazy and eager modes must emit the same score sequence (the lazy lattice
// is an implementation detail, not a semantic change).
func TestLazyEagerSameSequence(t *testing.T) {
	wL := buildWorld(t, 308, 50, 100, 2, 16, index.SRT, Options{Combinations: CombinationsLazy})
	wE := buildWorld(t, 308, 50, 100, 2, 16, index.SRT, Options{Combinations: CombinationsEager})
	rng := rand.New(rand.NewSource(309))
	for trial := 0; trial < 4; trial++ {
		q := wL.randQuery(rng, 2, RangeScore)
		a := drainCombinations(t, wL, q, true, 150)
		b := drainCombinations(t, wE, q, true, 150)
		if len(a) != len(b) {
			t.Fatalf("lazy emitted %d, eager %d", len(a), len(b))
		}
		for i := range a {
			if math.Abs(a[i].score-b[i].score) > 1e-9 {
				t.Fatalf("position %d: lazy %v eager %v", i, a[i].score, b[i].score)
			}
		}
	}
}

// Without the pair filter (influence/NN variants) the stream must cover
// the full cross product (plus virtual slots) before exhausting.
func TestUnfilteredStreamCountsCrossProduct(t *testing.T) {
	w := buildWorld(t, 310, 20, 30, 2, 8, index.SRT, Options{})
	rng := rand.New(rand.NewSource(311))
	q := w.randQuery(rng, 2, InfluenceScore)
	combos := drainCombinations(t, w, q, false, 1<<20)
	// Count relevant features per set.
	relevant := func(set int) int {
		all, err := w.engine.features[set].Part(0).Tree().All()
		if err != nil {
			t.Fatal(err)
		}
		qk := q.keywordsFor(set)
		n := 0
		for _, e := range all {
			if e.Keywords.Intersects(qk.Set) {
				n++
			}
		}
		return n
	}
	want := (relevant(0) + 1) * (relevant(1) + 1) // +1 for ∅
	if len(combos) != want {
		t.Fatalf("emitted %d combinations, want %d", len(combos), want)
	}
}

// The virtual feature must appear once the per-set stream is exhausted,
// enabling results backed by fewer than c feature sets.
func TestVirtualFeatureEmitted(t *testing.T) {
	w := buildWorld(t, 312, 20, 10, 2, 8, index.SRT, Options{})
	rng := rand.New(rand.NewSource(313))
	q := w.randQuery(rng, 2, RangeScore)
	combos := drainCombinations(t, w, q, true, 1<<20)
	sawVirtual := false
	sawAllVirtual := false
	for _, c := range combos {
		nv := 0
		for _, ref := range c.refs {
			if ref.virtual {
				nv++
			}
		}
		if nv > 0 {
			sawVirtual = true
		}
		if nv == len(c.refs) {
			sawAllVirtual = true
			if c.score != 0 {
				t.Fatalf("all-virtual combination must score 0, got %v", c.score)
			}
		}
	}
	if !sawVirtual || !sawAllVirtual {
		t.Fatalf("virtual combinations missing: some=%v all=%v", sawVirtual, sawAllVirtual)
	}
}

// Exhaustive property over random small worlds: the stream emits every
// unfiltered combination exactly once in non-increasing order.
func TestCombinationStreamExhaustiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		w := buildWorld(t, seed, 10, 15, 2, 8, index.SRT, Options{})
		rng := rand.New(rand.NewSource(seed ^ 0x5a5a))
		q := w.randQuery(rng, 2, InfluenceScore)
		var stats Stats
		cs, err := newCombinationStream(w.engine, &q, false, &stats, nil)
		if err != nil {
			return false
		}
		seen := make(map[string]bool)
		prev := math.Inf(1)
		for {
			comb, ok, err := cs.next()
			if err != nil {
				return false
			}
			if !ok {
				break
			}
			if comb.score > prev+1e-9 {
				return false
			}
			prev = comb.score
			key := ""
			for _, ref := range comb.refs {
				if ref.virtual {
					key += "∅|"
				} else {
					key += string(rune(ref.entry.ItemID)) + "|"
				}
			}
			if seen[key] {
				return false // duplicate emission
			}
			seen[key] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// The prioritized pulling strategy should pull no more features than
// round-robin on average (Definition 5's motivation).
func TestPrioritizedPullsNoMoreThanRoundRobin(t *testing.T) {
	wP := buildWorld(t, 314, 200, 400, 3, 16, index.SRT, Options{Pull: PullPrioritized})
	wR := buildWorld(t, 314, 200, 400, 3, 16, index.SRT, Options{Pull: PullRoundRobin})
	rng := rand.New(rand.NewSource(315))
	var pulledP, pulledR int
	for trial := 0; trial < 10; trial++ {
		q := wP.randQuery(rng, 3, RangeScore)
		_, sp, err := wP.engine.STPS(q)
		if err != nil {
			t.Fatal(err)
		}
		_, sr, err := wR.engine.STPS(q)
		if err != nil {
			t.Fatal(err)
		}
		pulledP += sp.FeaturesPulled
		pulledR += sr.FeaturesPulled
	}
	if float64(pulledP) > float64(pulledR)*1.25 {
		t.Errorf("prioritized pulled %d features, round-robin %d", pulledP, pulledR)
	}
}

// The range variant defaults to eager enumeration, influence/NN to lazy;
// explicit options override. (Guards the CombinationsAuto dispatch.)
func TestCombinationModeDispatch(t *testing.T) {
	w := buildWorld(t, 320, 30, 40, 2, 8, index.SRT, Options{})
	var stats Stats
	q := w.randQuery(rand.New(rand.NewSource(321)), 2, RangeScore)
	cs, err := newCombinationStream(w.engine, &q, true, &stats, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cs.eager || cs.grids == nil {
		t.Error("range variant should default to grid-accelerated eager")
	}
	cs, err = newCombinationStream(w.engine, &q, false, &stats, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cs.eager {
		t.Error("unfiltered stream should default to lazy")
	}
	wLazy := buildWorld(t, 320, 30, 40, 2, 8, index.SRT, Options{Combinations: CombinationsLazy})
	cs, err = newCombinationStream(wLazy.engine, &q, true, &stats, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cs.eager {
		t.Error("explicit lazy must override the range default")
	}
	wEager := buildWorld(t, 320, 30, 40, 2, 8, index.SRT, Options{Combinations: CombinationsEager})
	cs, err = newCombinationStream(wEager.engine, &q, false, &stats, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cs.eager {
		t.Error("explicit eager must override the unfiltered default")
	}
	if CombinationsAuto.String() != "auto" || CombinationsEager.String() != "eager" || CombinationsLazy.String() != "lazy" {
		t.Error("mode strings")
	}
}
