package core

// Typed binary-heap primitives for the hot-path priority queues. The
// container/heap interface boxes every pushed and popped element into an
// interface value, which costs one heap allocation per operation for the
// multi-word items used here (boundItem, distItem, vecEntry, Result); on
// a deep best-first descent those allocations dominate the profile. The
// generic siftUp/siftDown below operate on the concrete slices directly,
// so push/pop are allocation-free.
//
// before(a, b) reports whether a has strictly higher priority than b
// (must be popped first); it must be passed a non-capturing function so
// the call itself does not allocate.

func heapPush[T any](h *[]T, it T, before func(a, b T) bool) {
	s := append(*h, it)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !before(s[i], s[p]) {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
	*h = s
}

func heapPop[T any](h *[]T, before func(a, b T) bool) T {
	s := *h
	n := len(s) - 1
	top := s[0]
	s[0] = s[n]
	var zero T
	s[n] = zero // release references held by the vacated slot
	s = s[:n]
	*h = s
	heapFixTop(h, before)
	return top
}

// heapFixTop restores the heap property after the root element changed
// in place (the typed analogue of heap.Fix(h, 0)).
func heapFixTop[T any](h *[]T, before func(a, b T) bool) {
	s := *h
	n := len(s)
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && before(s[r], s[l]) {
			m = r
		}
		if !before(s[m], s[i]) {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
}

// boundHeap: max-heap on the score bound ŝ(e).
func boundBefore(a, b boundItem) bool { return a.bound > b.bound }

func (h *boundHeap) push(it boundItem) { heapPush((*[]boundItem)(h), it, boundBefore) }
func (h *boundHeap) pop() boundItem    { return heapPop((*[]boundItem)(h), boundBefore) }

// distHeap: min-heap on MINDIST.
func distBefore(a, b distItem) bool { return a.dist < b.dist }

func (h *distHeap) push(it distItem) { heapPush((*[]distItem)(h), it, distBefore) }
func (h *distHeap) pop() distItem    { return heapPop((*[]distItem)(h), distBefore) }

// comboHeap: max-heap on combination score.
func comboBefore(a, b vecEntry) bool { return a.score > b.score }

func (h *comboHeap) push(it vecEntry) { heapPush((*[]vecEntry)(h), it, comboBefore) }
func (h *comboHeap) pop() vecEntry    { return heapPop((*[]vecEntry)(h), comboBefore) }

// resultMinHeap: the worst kept result sits at the root.
func resultBefore(a, b Result) bool { return betterResult(b, a) }

func (h *resultMinHeap) push(r Result) { heapPush((*[]Result)(h), r, resultBefore) }
func (h *resultMinHeap) fixTop()       { heapFixTop((*[]Result)(h), resultBefore) }
