package core

import (
	"math"
	"time"

	"stpq/internal/geo"
	"stpq/internal/index"
	"stpq/internal/obs"
	"stpq/internal/rtree"
)

// STDS executes the Spatio-Textual Data Scan baseline (paper Section 5,
// Algorithms 1 and 2): it scans the data objects, computes each object's
// spatio-textual score against every feature set, and keeps the k best.
// The upper bound τ̂(p) — computed scores plus 1 per unknown set — skips
// remaining score computations for hopeless objects, and with
// Options.BatchSTDS (default in the experiments) objects are processed one
// object-tree leaf at a time so that a whole batch shares each
// feature-index traversal ("Performance improvements" paragraph).
func (e *Engine) STDS(q Query) ([]Result, Stats, error) {
	if err := q.Validate(len(e.features)); err != nil {
		return nil, Stats{}, err
	}
	root := e
	e = e.session() // private read accounting; safe under concurrency
	defer root.releaseSession(e)
	var stats Stats
	before := e.snapshotReads()
	tr := e.newTrace("stds."+q.Variant.String(), &q)
	start := time.Now()
	var (
		results []Result
		err     error
	)
	if q.Variant == RangeScore && e.opts.BatchSTDS {
		results, err = e.stdsBatch(&q, &stats, tr)
	} else {
		results, err = e.stdsSingle(&q, &stats, tr)
	}
	finishTrace(tr, &stats)
	e.finishStats(&stats, before, start)
	e.observeQuery("stds", &q, &stats, start, err)
	if err != nil {
		return nil, stats, err
	}
	sortResults(results)
	return results, stats, nil
}

// betterResult is the total order on results used everywhere: score
// descending, ties broken by ascending id. Making membership in the top-k
// a pure function of the scored object set (instead of scan order) is what
// lets the sharded engine merge per-shard answers into a byte-identical
// global answer.
func betterResult(a, b Result) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ID < b.ID
}

// ResultBefore exposes the result total order (score descending, ties by
// ascending id) to engine wrappers that merge per-engine answers.
func ResultBefore(a, b Result) bool { return betterResult(a, b) }

// topkAccumulator keeps the k best objects under betterResult and the
// running threshold τ (the k-th best score so far, Algorithm 1 line 9).
type topkAccumulator struct {
	k    int
	heap resultMinHeap
}

func newTopkAccumulator(k int) *topkAccumulator { return &topkAccumulator{k: k} }

// full reports whether k objects have been accepted.
func (a *topkAccumulator) full() bool { return a.heap.Len() >= a.k }

// threshold returns τ: the k-th best score, or −∞ while fewer than k
// objects have been accepted. Objects scoring exactly τ can still enter
// the top-k by winning the id tie-break, so callers must prune only
// strictly below τ.
func (a *topkAccumulator) threshold() float64 {
	if a.heap.Len() < a.k {
		return negInf
	}
	return a.heap[0].Score
}

// offer considers one scored object.
func (a *topkAccumulator) offer(r Result) {
	if a.heap.Len() < a.k {
		a.heap.push(r)
		return
	}
	if betterResult(r, a.heap[0]) {
		a.heap[0] = r
		a.heap.fixTop()
	}
}

// results drains the accumulator.
func (a *topkAccumulator) results() []Result {
	out := make([]Result, a.heap.Len())
	copy(out, a.heap)
	sortResults(out)
	return out
}

// resultMinHeap keeps the worst kept result (under betterResult) at the
// root, so the accumulator evicts it first.
type resultMinHeap []Result

func (h resultMinHeap) Len() int { return len(h) }

// stdsSingle is the literal Algorithm 1: one object at a time, one
// computeScore (Algorithm 2) call per feature set, with the τ̂ early
// termination between sets.
func (e *Engine) stdsSingle(q *Query, stats *Stats, tr *obs.Trace) ([]Result, error) {
	acc := e.newTopk(q.K)
	c := len(e.features)
	sp := tr.StartPhase("objects.scan")
	objs, err := e.objects.Tree().All()
	sp.End()
	if err != nil {
		return nil, err
	}
	for _, obj := range objs {
		stats.ObjectsScored++
		sum := 0.0
		complete := true
		for i := 0; i < c; i++ {
			// τ̂(p): known scores plus the maximum 1 per unknown set. Prune
			// only strictly below τ — an object tying the k-th score can
			// still win the id tie-break.
			if acc.full() && sum+float64(c-i) < acc.threshold() {
				complete = false
				break
			}
			sp := tr.StartPhase("index.descend")
			ti, err := e.computeScore(i, q, obj.Point())
			sp.End()
			if err != nil {
				return nil, err
			}
			sum += ti
		}
		if complete {
			acc.offer(Result{ID: obj.ItemID, Location: obj.Point(), Score: sum})
		}
	}
	return acc.results(), nil
}

// computeScore is Algorithm 2 for one object: best-first over the feature
// index ordered by ŝ(e), expanding only entries within range and with
// positive textual similarity; the first in-range feature popped has the
// maximum preference score. The influence and NN variants reuse the same
// traversal with the modified priorities of Section 7.
func (e *Engine) computeScore(set int, q *Query, p pointArg) (float64, error) {
	switch q.Variant {
	case InfluenceScore:
		return e.computeInfluenceScore(set, q, p)
	case NearestNeighborScore:
		return e.computeNNScore(set, q, p)
	}
	g := e.features[set]
	qk := q.keywordsFor(set)
	if g.Len() == 0 || qk.Set.IsEmpty() {
		return 0, nil
	}
	prepared := g.Prepare(qk)
	pq := e.scratchBoundHeap()
	for pi, part := range g.Parts() {
		if part.Len() == 0 {
			continue
		}
		root, err := part.Tree().RootEntry()
		if err != nil {
			return 0, err
		}
		if part.EntryRelevant(root, prepared) && root.Rect.MinDist(p) <= q.Radius {
			pq.push(boundItem{entry: root, part: pi, bound: part.EntryBound(root, prepared)})
		}
	}
	for pq.Len() > 0 {
		it := pq.pop()
		idx := g.Part(it.part)
		if it.entry.Leaf {
			if it.entry.Point().Dist(p) > q.Radius {
				continue
			}
			if it.resolved {
				return it.bound, nil
			}
			score, relevant, err := idx.ResolveLeaf(it.entry, prepared)
			if err != nil {
				return 0, err
			}
			if !relevant {
				continue
			}
			if pq.Len() == 0 || score >= (*pq)[0].bound-1e-12 {
				return score, nil
			}
			pq.push(boundItem{entry: it.entry, part: it.part, bound: score, resolved: true})
			continue
		}
		n, err := idx.Tree().Node(it.entry.Child)
		if err != nil {
			return 0, err
		}
		for _, child := range n.Entries {
			if !idx.EntryRelevant(child, prepared) {
				continue
			}
			if child.Rect.MinDist(p) > q.Radius {
				continue
			}
			pq.push(boundItem{entry: child, part: it.part, bound: idx.EntryBound(child, prepared)})
		}
	}
	return 0, nil
}

// computeInfluenceScore adapts Algorithm 2 to Definition 6: priorities are
// ŝ(e)·2^(−mindist(p,e)/r), the range predicate is dropped, and the first
// feature popped is exact because its priority dominates all bounds left
// in the heap.
func (e *Engine) computeInfluenceScore(set int, q *Query, p pointArg) (float64, error) {
	g := e.features[set]
	qk := q.keywordsFor(set)
	if g.Len() == 0 || qk.Set.IsEmpty() {
		return 0, nil
	}
	prepared := g.Prepare(qk)
	decay := func(en rtree.Entry) float64 {
		var d float64
		if en.Leaf {
			d = en.Point().Dist(p)
		} else {
			d = en.Rect.MinDist(p)
		}
		return math.Exp2(-d / q.Radius)
	}
	pq := e.scratchBoundHeap()
	for pi, part := range g.Parts() {
		if part.Len() == 0 {
			continue
		}
		root, err := part.Tree().RootEntry()
		if err != nil {
			return 0, err
		}
		if part.EntryRelevant(root, prepared) {
			pq.push(boundItem{entry: root, part: pi, bound: part.EntryBound(root, prepared) * decay(root)})
		}
	}
	for pq.Len() > 0 {
		it := pq.pop()
		idx := g.Part(it.part)
		if it.entry.Leaf {
			if it.resolved {
				return it.bound, nil
			}
			score, relevant, err := idx.ResolveLeaf(it.entry, prepared)
			if err != nil {
				return 0, err
			}
			if !relevant {
				continue
			}
			exact := score * decay(it.entry)
			if pq.Len() == 0 || exact >= (*pq)[0].bound-1e-12 {
				return exact, nil
			}
			pq.push(boundItem{entry: it.entry, part: it.part, bound: exact, resolved: true})
			continue
		}
		n, err := idx.Tree().Node(it.entry.Child)
		if err != nil {
			return 0, err
		}
		for _, child := range n.Entries {
			if !idx.EntryRelevant(child, prepared) {
				continue
			}
			pq.push(boundItem{entry: child, part: it.part, bound: idx.EntryBound(child, prepared) * decay(child)})
		}
	}
	return 0, nil
}

// computeNNScore adapts Algorithm 2 to Definition 7: entries are
// prioritized by minimum distance (no textual pruning — the nearest
// neighbor is defined over the whole feature set), and the first feature
// popped is p's NN; its score counts only if it is textually relevant.
func (e *Engine) computeNNScore(set int, q *Query, p pointArg) (float64, error) {
	g := e.features[set]
	qk := q.keywordsFor(set)
	if g.Len() == 0 || qk.Set.IsEmpty() {
		return 0, nil
	}
	prepared := g.Prepare(qk)
	var (
		score      float64
		resolveErr error
	)
	err := e.groupAscendDistance(g, p, func(part int, en rtree.Entry, _ float64) bool {
		// First popped leaf is the nearest neighbor; its score counts
		// only if it is truly relevant (signature hits are verified).
		idx := g.Part(part)
		if idx.EntryRelevant(en, prepared) {
			s, relevant, err := idx.ResolveLeaf(en, prepared)
			if err != nil {
				resolveErr = err
			} else if relevant {
				score = s
			}
		}
		return false
	})
	if err == nil {
		err = resolveErr
	}
	return score, err
}

// groupAscendDistance streams a feature group's leaf entries in increasing
// distance from center, merging the group's part trees through one shared
// min-distance heap (the multi-tree analogue of rtree.AscendDistance). For
// the NN variant on a sharded engine this is the cross-border rule: a part's
// candidate leaf is popped — and thus final — only once its distance beats
// the mindist of every unvisited subtree of every other part.
func (e *Engine) groupAscendDistance(g *index.FeatureGroup, center geo.Point, fn func(part int, en rtree.Entry, d float64) bool) error {
	h := e.scratchDistHeap()
	for pi, part := range g.Parts() {
		if part.Len() == 0 {
			continue
		}
		root, err := part.Tree().RootEntry()
		if err != nil {
			return err
		}
		h.push(distItem{entry: root, part: pi, dist: root.Rect.MinDist(center)})
	}
	for h.Len() > 0 {
		it := h.pop()
		if it.entry.Leaf {
			if !fn(it.part, it.entry, it.dist) {
				return nil
			}
			continue
		}
		n, err := g.Part(it.part).Tree().Node(it.entry.Child)
		if err != nil {
			return err
		}
		for _, c := range n.Entries {
			h.push(distItem{entry: c, part: it.part, dist: c.Rect.MinDist(center)})
		}
	}
	return nil
}

// distItem pairs an entry with its part of origin and minimum distance.
type distItem struct {
	entry rtree.Entry
	part  int
	dist  float64
}

// distHeap is a min-heap by distance.
type distHeap []distItem

func (h distHeap) Len() int { return len(h) }

// pointArg aliases geo.Point to keep the compute-score signatures compact.
type pointArg = geo.Point
