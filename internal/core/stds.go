package core

import (
	"container/heap"
	"math"
	"time"

	"stpq/internal/geo"
	"stpq/internal/obs"
	"stpq/internal/rtree"
)

// STDS executes the Spatio-Textual Data Scan baseline (paper Section 5,
// Algorithms 1 and 2): it scans the data objects, computes each object's
// spatio-textual score against every feature set, and keeps the k best.
// The upper bound τ̂(p) — computed scores plus 1 per unknown set — skips
// remaining score computations for hopeless objects, and with
// Options.BatchSTDS (default in the experiments) objects are processed one
// object-tree leaf at a time so that a whole batch shares each
// feature-index traversal ("Performance improvements" paragraph).
func (e *Engine) STDS(q Query) ([]Result, Stats, error) {
	if err := q.Validate(len(e.features)); err != nil {
		return nil, Stats{}, err
	}
	e = e.session() // private read accounting; safe under concurrency
	var stats Stats
	before := e.snapshotReads()
	tr := e.newTrace("stds." + q.Variant.String())
	start := time.Now()
	var (
		results []Result
		err     error
	)
	if q.Variant == RangeScore && e.opts.BatchSTDS {
		results, err = e.stdsBatch(&q, &stats, tr)
	} else {
		results, err = e.stdsSingle(&q, &stats, tr)
	}
	finishTrace(tr, &stats)
	e.finishStats(&stats, before, start)
	if err != nil {
		return nil, stats, err
	}
	e.observeQuery("stds", &q, &stats)
	sortResults(results)
	return results, stats, nil
}

// topkAccumulator keeps the k highest-scoring objects and the running
// threshold τ (the k-th best score so far, Algorithm 1 line 9).
type topkAccumulator struct {
	k    int
	heap resultMinHeap
}

func newTopkAccumulator(k int) *topkAccumulator { return &topkAccumulator{k: k} }

// threshold returns τ: the k-th best score, or −∞ while fewer than k
// objects have been accepted.
func (a *topkAccumulator) threshold() float64 {
	if a.heap.Len() < a.k {
		return negInf
	}
	return a.heap[0].Score
}

// offer considers one scored object.
func (a *topkAccumulator) offer(r Result) {
	if a.heap.Len() < a.k {
		heap.Push(&a.heap, r)
		return
	}
	if r.Score > a.heap[0].Score {
		a.heap[0] = r
		heap.Fix(&a.heap, 0)
	}
}

// results drains the accumulator.
func (a *topkAccumulator) results() []Result {
	out := make([]Result, a.heap.Len())
	copy(out, a.heap)
	sortResults(out)
	return out
}

// resultMinHeap is a min-heap by score (root = current k-th best).
type resultMinHeap []Result

func (h resultMinHeap) Len() int            { return len(h) }
func (h resultMinHeap) Less(i, j int) bool  { return h[i].Score < h[j].Score }
func (h resultMinHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultMinHeap) Push(x interface{}) { *h = append(*h, x.(Result)) }
func (h *resultMinHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// stdsSingle is the literal Algorithm 1: one object at a time, one
// computeScore (Algorithm 2) call per feature set, with the τ̂ early
// termination between sets.
func (e *Engine) stdsSingle(q *Query, stats *Stats, tr *obs.Trace) ([]Result, error) {
	acc := newTopkAccumulator(q.K)
	c := len(e.features)
	sp := tr.StartPhase("objects.scan")
	objs, err := e.objects.Tree().All()
	sp.End()
	if err != nil {
		return nil, err
	}
	for _, obj := range objs {
		stats.ObjectsScored++
		sum := 0.0
		complete := true
		for i := 0; i < c; i++ {
			// τ̂(p): known scores plus the maximum 1 per unknown set.
			if sum+float64(c-i) <= acc.threshold() {
				complete = false
				break
			}
			sp := tr.StartPhase("index.descend")
			ti, err := e.computeScore(i, q, obj.Point())
			sp.End()
			if err != nil {
				return nil, err
			}
			sum += ti
		}
		if complete && sum > acc.threshold() {
			acc.offer(Result{ID: obj.ItemID, Location: obj.Point(), Score: sum})
		}
	}
	return acc.results(), nil
}

// computeScore is Algorithm 2 for one object: best-first over the feature
// index ordered by ŝ(e), expanding only entries within range and with
// positive textual similarity; the first in-range feature popped has the
// maximum preference score. The influence and NN variants reuse the same
// traversal with the modified priorities of Section 7.
func (e *Engine) computeScore(set int, q *Query, p pointArg) (float64, error) {
	switch q.Variant {
	case InfluenceScore:
		return e.computeInfluenceScore(set, q, p)
	case NearestNeighborScore:
		return e.computeNNScore(set, q, p)
	}
	idx := e.features[set]
	qk := q.keywordsFor(set)
	tree := idx.Tree()
	if idx.Len() == 0 || qk.Set.IsEmpty() {
		return 0, nil
	}
	prepared := idx.Prepare(qk)
	root, err := tree.RootEntry()
	if err != nil {
		return 0, err
	}
	pq := &boundHeap{}
	if idx.EntryRelevant(root, prepared) && root.Rect.MinDist(p) <= q.Radius {
		heap.Push(pq, boundItem{entry: root, bound: idx.EntryBound(root, prepared)})
	}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(boundItem)
		if it.entry.Leaf {
			if it.entry.Point().Dist(p) > q.Radius {
				continue
			}
			if it.resolved {
				return it.bound, nil
			}
			score, relevant, err := idx.ResolveLeaf(it.entry, prepared)
			if err != nil {
				return 0, err
			}
			if !relevant {
				continue
			}
			if pq.Len() == 0 || score >= (*pq)[0].bound-1e-12 {
				return score, nil
			}
			heap.Push(pq, boundItem{entry: it.entry, bound: score, resolved: true})
			continue
		}
		n, err := tree.Node(it.entry.Child)
		if err != nil {
			return 0, err
		}
		for _, child := range n.Entries {
			if !idx.EntryRelevant(child, prepared) {
				continue
			}
			if child.Rect.MinDist(p) > q.Radius {
				continue
			}
			heap.Push(pq, boundItem{entry: child, bound: idx.EntryBound(child, prepared)})
		}
	}
	return 0, nil
}

// computeInfluenceScore adapts Algorithm 2 to Definition 6: priorities are
// ŝ(e)·2^(−mindist(p,e)/r), the range predicate is dropped, and the first
// feature popped is exact because its priority dominates all bounds left
// in the heap.
func (e *Engine) computeInfluenceScore(set int, q *Query, p pointArg) (float64, error) {
	idx := e.features[set]
	qk := q.keywordsFor(set)
	tree := idx.Tree()
	if idx.Len() == 0 || qk.Set.IsEmpty() {
		return 0, nil
	}
	prepared := idx.Prepare(qk)
	root, err := tree.RootEntry()
	if err != nil {
		return 0, err
	}
	decay := func(en rtree.Entry) float64 {
		var d float64
		if en.Leaf {
			d = en.Point().Dist(p)
		} else {
			d = en.Rect.MinDist(p)
		}
		return math.Exp2(-d / q.Radius)
	}
	pq := &boundHeap{}
	if idx.EntryRelevant(root, prepared) {
		heap.Push(pq, boundItem{entry: root, bound: idx.EntryBound(root, prepared) * decay(root)})
	}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(boundItem)
		if it.entry.Leaf {
			if it.resolved {
				return it.bound, nil
			}
			score, relevant, err := idx.ResolveLeaf(it.entry, prepared)
			if err != nil {
				return 0, err
			}
			if !relevant {
				continue
			}
			exact := score * decay(it.entry)
			if pq.Len() == 0 || exact >= (*pq)[0].bound-1e-12 {
				return exact, nil
			}
			heap.Push(pq, boundItem{entry: it.entry, bound: exact, resolved: true})
			continue
		}
		n, err := tree.Node(it.entry.Child)
		if err != nil {
			return 0, err
		}
		for _, child := range n.Entries {
			if !idx.EntryRelevant(child, prepared) {
				continue
			}
			heap.Push(pq, boundItem{entry: child, bound: idx.EntryBound(child, prepared) * decay(child)})
		}
	}
	return 0, nil
}

// computeNNScore adapts Algorithm 2 to Definition 7: entries are
// prioritized by minimum distance (no textual pruning — the nearest
// neighbor is defined over the whole feature set), and the first feature
// popped is p's NN; its score counts only if it is textually relevant.
func (e *Engine) computeNNScore(set int, q *Query, p pointArg) (float64, error) {
	idx := e.features[set]
	qk := q.keywordsFor(set)
	if idx.Len() == 0 || qk.Set.IsEmpty() {
		return 0, nil
	}
	prepared := idx.Prepare(qk)
	var (
		score      float64
		resolveErr error
	)
	err := idx.Tree().AscendDistance(p, func(en rtree.Entry, _ float64) bool {
		// First popped leaf is the nearest neighbor; its score counts
		// only if it is truly relevant (signature hits are verified).
		if idx.EntryRelevant(en, prepared) {
			s, relevant, err := idx.ResolveLeaf(en, prepared)
			if err != nil {
				resolveErr = err
			} else if relevant {
				score = s
			}
		}
		return false
	})
	if err == nil {
		err = resolveErr
	}
	return score, err
}

// pointArg aliases geo.Point to keep the compute-score signatures compact.
type pointArg = geo.Point
