package core

import (
	"math"

	"stpq/internal/geo"
	"stpq/internal/obs"
)

// combination is a valid combination C = {t_1, ..., t_c} of feature
// objects (Definition 4) with its score s(C) = Σ s(t_i).
type combination struct {
	refs  []featureRef
	score float64
}

// combinationStream implements Algorithm 4 (nextCombination): it pulls
// feature objects from the per-set streams under a pulling strategy,
// forms combinations ordered by score, and emits a combination only when
// the thresholding scheme guarantees no unseen combination can score
// higher:
//
//	τ = max over non-exhausted j of (max_1 + … + min_j + … + max_c).
//
// Combinations are enumerated over the retrieved prefixes D_i. The default
// implementation is a lazy lattice walk (a rank-join style frontier): pop
// the best index vector, push its c successors — which emits exactly the
// same sequence as the paper's eager materialization (Algorithm 4 line 9,
// selected by Options.Combinations; the range variant uses it by
// default) with bounded memory.
type combinationStream struct {
	q       *Query
	streams []*featureStream
	stats   *Stats
	tr      *obs.Trace // nil when tracing is off

	// pairFilter enables the validity constraint dist(t_i,t_j) ≤ 2r of
	// Definition 4 (range variant only; influence and NN variants use the
	// unfiltered stream, Sections 7.1–7.2).
	pairFilter bool
	pull       PullStrategy
	eager      bool

	// grids accelerate eager generation: one spatial hash per feature
	// set over the retrieved (concrete) features, with cell size 2r, so
	// valid partners of a new feature are found without scanning D_j.
	grids []*pairGrid

	d         [][]featureRef // retrieved features per set, scores non-increasing
	mins      []float64      // score of the last retrieved feature (1 before first access)
	maxs      []float64      // score of the first retrieved feature (1 before first access)
	started   []bool
	exhausted []bool // stream fully consumed (∅ already appended to d)
	rr        int    // round-robin cursor

	heap    comboHeap
	visited map[string]bool
	pending [][]vecEntry // lazy successors waiting for d[i] to grow
	seeded  bool

	// refsBuf backs the refs slice of emitted combinations; each next()
	// call overwrites it, so callers must consume a combination before
	// requesting the next one (all STPS drivers do).
	refsBuf []featureRef
}

// vecEntry is an index vector into the d arrays with its combination score.
type vecEntry struct {
	vec   []int
	score float64
}

// newCombinationStream builds the stream for a query against the engine's
// feature indexes. On a pooled session the stream and all its growable
// state (per-set streams and their heaps, retrieved prefixes, the
// combination heap, the visited map) are recycled from the query scratch,
// so steady-state STPS queries rebuild the stream without heap growth.
func newCombinationStream(e *Engine, q *Query, pairFilter bool, stats *Stats, tr *obs.Trace) (*combinationStream, error) {
	c := len(e.features)
	eager := pairFilter
	switch e.opts.Combinations {
	case CombinationsEager:
		eager = true
	case CombinationsLazy:
		eager = false
	}
	cs := &combinationStream{}
	if sc := e.scratch; sc != nil {
		cs = &sc.cs
	}
	cs.reinit(c)
	cs.q, cs.stats, cs.tr = q, stats, tr
	cs.pairFilter, cs.pull, cs.eager = pairFilter, e.opts.Pull, eager
	if eager && pairFilter {
		cs.grids = reuseLen(cs.grids, c)
		for i := range cs.grids {
			cs.grids[i] = newPairGrid(2 * q.Radius)
		}
	} else {
		cs.grids = nil
	}
	for i := 0; i < c; i++ {
		if err := cs.streams[i].init(e.features[i], q.keywordsFor(i)); err != nil {
			return nil, err
		}
		cs.mins[i] = 1 // upper bound on any unseen feature score
		cs.maxs[i] = 1
	}
	return cs, nil
}

// reinit resets the stream's per-query state in place, keeping every
// backing allocation (stream structs with their heaps, inner d/pending
// slices, the heap array, the visited map) for reuse.
func (cs *combinationStream) reinit(c int) {
	cs.streams = reuseLen(cs.streams, c)
	for i := range cs.streams {
		if cs.streams[i] == nil {
			cs.streams[i] = &featureStream{}
		}
	}
	cs.d = reuseNested(cs.d, c)
	cs.pending = reuseNested(cs.pending, c)
	cs.mins = reuseLen(cs.mins, c)
	cs.maxs = reuseLen(cs.maxs, c)
	cs.started = reuseLen(cs.started, c)
	cs.exhausted = reuseLen(cs.exhausted, c)
	for i := 0; i < c; i++ {
		cs.started[i] = false
		cs.exhausted[i] = false
	}
	cs.heap = cs.heap[:0]
	if cs.visited == nil {
		cs.visited = make(map[string]bool)
	} else {
		clear(cs.visited)
	}
	cs.rr = 0
	cs.seeded = false
}

// reuseLen returns buf resized to n, reusing its backing array when large
// enough; existing elements within the new length are kept as-is.
func reuseLen[T any](buf []T, n int) []T {
	if cap(buf) >= n {
		return buf[:n]
	}
	nb := make([]T, n)
	copy(nb, buf)
	return nb
}

// reuseNested resizes an outer slice to n, truncating every inner slice to
// length 0 while keeping its capacity.
func reuseNested[T any](buf [][]T, n int) [][]T {
	buf = reuseLen(buf, n)
	for i := range buf {
		buf[i] = buf[i][:0]
	}
	return buf
}

// pairGrid is a spatial hash with cell size equal to the pair-distance
// limit 2r: any point within 2r of p lies in one of the 3×3 cells around
// p's cell.
type pairGrid struct {
	cell  float64
	cells map[[2]int32][]int
}

func newPairGrid(cell float64) *pairGrid {
	if cell <= 0 {
		cell = 1
	}
	return &pairGrid{cell: cell, cells: make(map[[2]int32][]int)}
}

// key maps a point to its cell.
func (g *pairGrid) key(p geo.Point) [2]int32 {
	return [2]int32{int32(math.Floor(p.X / g.cell)), int32(math.Floor(p.Y / g.cell))}
}

// add registers index idx at point p.
func (g *pairGrid) add(p geo.Point, idx int) {
	k := g.key(p)
	g.cells[k] = append(g.cells[k], idx)
}

// near returns the indexes whose points can be within the limit of p
// (a superset; callers re-check exact distances).
func (g *pairGrid) near(p geo.Point) []int {
	k := g.key(p)
	var out []int
	for dx := int32(-1); dx <= 1; dx++ {
		for dy := int32(-1); dy <= 1; dy++ {
			out = append(out, g.cells[[2]int32{k[0] + dx, k[1] + dy}]...)
		}
	}
	return out
}

// next returns the valid combination with the highest score not yet
// emitted, or ok=false when the combination space is exhausted.
func (cs *combinationStream) next() (combination, bool, error) {
	for {
		if cs.heap.Len() > 0 {
			top := cs.heap[0]
			if cs.allExhausted() || top.score >= cs.threshold()-1e-12 {
				ve := cs.heap.pop()
				if !cs.eager {
					cs.pushSuccessors(ve.vec)
				}
				comb, valid := cs.materialize(ve)
				if valid {
					cs.stats.Combinations++
					return comb, true, nil
				}
				continue
			}
		}
		if cs.allExhausted() {
			return combination{}, false, nil
		}
		if err := cs.pullNext(); err != nil {
			return combination{}, false, err
		}
	}
}

// allExhausted reports whether every per-set stream is done.
func (cs *combinationStream) allExhausted() bool {
	for _, ex := range cs.exhausted {
		if !ex {
			return false
		}
	}
	return true
}

// threshold computes τ, the best score any unseen combination can reach: a
// combination not yet enumerable must use a not-yet-retrieved feature from
// some non-exhausted set j, whose score is at most min_j, combined with at
// best the top feature of every other set.
func (cs *combinationStream) threshold() float64 {
	var sumMax float64
	for i := range cs.maxs {
		sumMax += cs.maxs[i]
	}
	tau := negInf
	for j := range cs.mins {
		if cs.exhausted[j] {
			continue
		}
		if t := sumMax - cs.maxs[j] + cs.mins[j]; t > tau {
			tau = t
		}
	}
	return tau
}

// nextFeatureSet applies the pulling strategy (Definition 5 or round
// robin), never returning an exhausted set.
func (cs *combinationStream) nextFeatureSet() int {
	if cs.pull == PullRoundRobin {
		c := len(cs.streams)
		for t := 0; t < c; t++ {
			i := cs.rr % c
			cs.rr++
			if !cs.exhausted[i] {
				return i
			}
		}
		return -1
	}
	// Prioritized: before every set has been accessed once, fill the
	// gaps; afterwards pick the set responsible for the threshold.
	for i := range cs.d {
		if !cs.started[i] && !cs.exhausted[i] {
			return i
		}
	}
	var sumMax float64
	for i := range cs.maxs {
		sumMax += cs.maxs[i]
	}
	best, bestVal := -1, negInf
	for j := range cs.mins {
		if cs.exhausted[j] {
			continue
		}
		if v := sumMax - cs.maxs[j] + cs.mins[j]; v > bestVal {
			best, bestVal = j, v
		}
	}
	return best
}

// pullNext retrieves one feature (or ∅) from the chosen set, updates the
// bookkeeping and feeds the combination heap.
func (cs *combinationStream) pullNext() error {
	i := cs.nextFeatureSet()
	if i < 0 {
		return nil
	}
	sp := cs.tr.StartPhase("features.pull")
	ref, done, err := cs.streams[i].next()
	sp.End()
	if err != nil {
		return err
	}
	if done {
		cs.exhausted[i] = true
		return nil
	}
	cs.stats.FeaturesPulled++
	cs.d[i] = append(cs.d[i], ref)
	if !cs.started[i] {
		cs.started[i] = true
		cs.maxs[i] = ref.score
	}
	cs.mins[i] = ref.score
	if ref.virtual {
		cs.exhausted[i] = true
		cs.mins[i] = virtualScore
	}
	if cs.eager {
		cs.generateEager(i)
	} else {
		cs.seedOrFlush(i)
	}
	return nil
}

// seedOrFlush handles lazy-lattice bookkeeping after d[i] grew: seed the
// origin vector once every set has an element, and materialize successors
// that were waiting for this growth.
func (cs *combinationStream) seedOrFlush(i int) {
	if !cs.seeded {
		for _, di := range cs.d {
			if len(di) == 0 {
				return
			}
		}
		cs.seeded = true
		origin := make([]int, len(cs.d))
		cs.pushVec(origin)
		return
	}
	waiting := cs.pending[i]
	cs.pending[i] = cs.pending[i][:0] // keep the backing for reuse
	for _, ve := range waiting {
		cs.pushVec(ve.vec)
	}
}

// pushSuccessors pushes the c successor vectors of vec (one index advanced
// per dimension), deferring those that point past the retrieved prefix.
func (cs *combinationStream) pushSuccessors(vec []int) {
	for i := range vec {
		succ := make([]int, len(vec))
		copy(succ, vec)
		succ[i]++
		if cs.visited[vecKey(succ)] {
			continue
		}
		if succ[i] >= len(cs.d[i]) {
			if cs.exhausted[i] {
				continue // no further elements will ever arrive
			}
			cs.visited[vecKey(succ)] = true
			cs.pending[i] = append(cs.pending[i], vecEntry{vec: succ})
			continue
		}
		cs.pushVec(succ)
	}
}

// pushVec scores and pushes an index vector, marking it visited.
func (cs *combinationStream) pushVec(vec []int) {
	key := vecKey(vec)
	cs.visited[key] = true
	score := 0.0
	for i, a := range vec {
		score += cs.d[i][a].score
	}
	cs.heap.push(vecEntry{vec: vec, score: score})
}

// generateEager materializes, as the paper's Algorithm 4 line 9 does, all
// combinations that include the newest feature of set i, discarding
// invalid ones immediately. Once a concrete feature is part of the
// partial combination, candidates for the remaining sets come from the
// spatial grid around it (every member of a valid combination lies within
// 2r of every other), so generation cost tracks the number of valid
// combinations rather than |D_1|×…×|D_c|.
func (cs *combinationStream) generateEager(i int) {
	newIdx := len(cs.d[i]) - 1
	newRef := cs.d[i][newIdx]
	if cs.grids != nil && !newRef.virtual {
		cs.grids[i].add(newRef.entry.Point(), newIdx)
	}
	c := len(cs.d)
	vec := make([]int, c)
	chosen := make([]int, 0, c) // dims already assigned
	vec[i] = newIdx
	chosen = append(chosen, i)

	var anchor *featureRef
	if !newRef.virtual {
		anchor = &newRef
	}

	var rec func(dim int, score float64, anchor *featureRef)
	rec = func(dim int, score float64, anchor *featureRef) {
		if dim == c {
			v := make([]int, c)
			copy(v, vec)
			cs.heap.push(vecEntry{vec: v, score: score})
			return
		}
		if dim == i {
			rec(dim+1, score, anchor)
			return
		}
		try := func(a int) {
			ref := cs.d[dim][a]
			vec[dim] = a
			chosen = append(chosen, dim)
			if cs.validAgainstChosen(ref, vec, chosen[:len(chosen)-1]) {
				next := anchor
				if next == nil && !ref.virtual {
					next = &ref
				}
				rec(dim+1, score+ref.score, next)
			}
			chosen = chosen[:len(chosen)-1]
		}
		if anchor != nil && cs.grids != nil {
			for _, a := range cs.grids[dim].near(anchor.entry.Point()) {
				try(a)
			}
			// The virtual feature (always the last element, if present)
			// pairs with anything.
			if n := len(cs.d[dim]); n > 0 && cs.d[dim][n-1].virtual {
				try(n - 1)
			}
			return
		}
		for a := 0; a < len(cs.d[dim]); a++ {
			try(a)
		}
	}
	rec(0, newRef.score, anchor)
}

// validAgainstChosen checks Definition 4's pairwise constraint for ref at
// its dim against every already-chosen member. The virtual feature is at
// distance 0 from everything. Always true when the pair filter is off.
func (cs *combinationStream) validAgainstChosen(ref featureRef, vec []int, chosenDims []int) bool {
	if !cs.pairFilter || ref.virtual {
		return true
	}
	limit := 2 * cs.q.Radius
	p := ref.entry.Point()
	for _, j := range chosenDims {
		other := cs.d[j][vec[j]]
		if other.virtual {
			continue
		}
		if p.Dist(other.entry.Point()) > limit {
			return false
		}
	}
	return true
}

// materialize converts an index vector into a combination, applying the
// validity filter (lazy mode checks it at emission; eager mode filtered at
// generation).
func (cs *combinationStream) materialize(ve vecEntry) (combination, bool) {
	refs := cs.refsBuf[:0]
	for i, a := range ve.vec {
		refs = append(refs, cs.d[i][a])
	}
	cs.refsBuf = refs
	if cs.pairFilter && !cs.eager {
		limit := 2 * cs.q.Radius
		for i := 0; i < len(refs); i++ {
			if refs[i].virtual {
				continue
			}
			for j := i + 1; j < len(refs); j++ {
				if refs[j].virtual {
					continue
				}
				if refs[i].entry.Point().Dist(refs[j].entry.Point()) > limit {
					return combination{}, false
				}
			}
		}
	}
	return combination{refs: refs, score: ve.score}, true
}

// vecKey encodes an index vector as a map key.
func vecKey(vec []int) string {
	buf := make([]byte, 0, len(vec)*4)
	for _, v := range vec {
		for v >= 0x80 {
			buf = append(buf, byte(v)|0x80)
			v >>= 7
		}
		buf = append(buf, byte(v))
	}
	return string(buf)
}

// comboHeap is a max-heap of index vectors by combination score.
type comboHeap []vecEntry

func (h comboHeap) Len() int { return len(h) }
