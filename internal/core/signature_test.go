package core

import (
	"math"
	"math/rand"
	"testing"

	"stpq/internal/geo"
	"stpq/internal/index"
	"stpq/internal/kwset"
)

// buildSigWorld creates an engine whose feature indexes use hashed
// signatures of the given width (0 = exact), over the same data as
// buildWorld for the same seed.
func buildSigWorld(t testing.TB, seed int64, numObjects, numFeatures, c, vocabW, sigBits int, kind index.Kind) *testWorld {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	objs := make([]index.Object, numObjects)
	for i := range objs {
		objs[i] = index.Object{ID: int64(i), Location: randPoint(rng)}
	}
	oidx, err := index.BuildObjectIndex(objs, index.Options{PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	fidxs := make([]*index.FeatureIndex, c)
	for s := 0; s < c; s++ {
		feats := make([]index.Feature, numFeatures)
		for i := range feats {
			kw := kwset.NewSet(vocabW)
			for j := 0; j < 1+rng.Intn(3); j++ {
				kw.Add(rng.Intn(vocabW))
			}
			feats[i] = index.Feature{ID: int64(i), Location: randPoint(rng), Score: rng.Float64(), Keywords: kw}
		}
		fidxs[s], err = index.BuildFeatureIndex(feats, index.Options{
			Kind: kind, VocabWidth: vocabW, PageSize: 1024, SignatureBits: sigBits,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	eng, err := NewEngine(oidx, fidxs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return &testWorld{engine: eng, vocabW: vocabW}
}

// Signature mode must return exactly the same answers as exact mode for
// every variant — signatures change cost, never results.
func TestSignatureModeMatchesExact(t *testing.T) {
	const (
		seed  = 600
		nObj  = 300
		nFeat = 250
		c     = 2
		vocab = 32
	)
	exact := buildSigWorld(t, seed, nObj, nFeat, c, vocab, 0, index.IR2)
	hashed := buildSigWorld(t, seed, nObj, nFeat, c, vocab, 8, index.IR2) // 8 bits: many collisions
	rng := rand.New(rand.NewSource(601))
	for _, variant := range []Variant{RangeScore, InfluenceScore, NearestNeighborScore} {
		for trial := 0; trial < 4; trial++ {
			q := exact.randQuery(rng, c, variant)
			a, _, err := exact.engine.STPS(q)
			if err != nil {
				t.Fatal(err)
			}
			b, _, err := hashed.engine.STPS(q)
			if err != nil {
				t.Fatal(err)
			}
			if len(a) != len(b) {
				t.Fatalf("%v: exact %d vs hashed %d results", variant, len(a), len(b))
			}
			for i := range a {
				if math.Abs(a[i].Score-b[i].Score) > 1e-9 {
					t.Fatalf("%v rank %d: exact %v hashed %v", variant, i, a[i].Score, b[i].Score)
				}
			}
		}
	}
}

// STDS must also be signature-safe (exercises the batched and per-object
// refinement paths).
func TestSignatureModeSTDS(t *testing.T) {
	hashed := buildSigWorld(t, 602, 250, 200, 2, 24, 6, index.SRT)
	rng := rand.New(rand.NewSource(603))
	for _, variant := range []Variant{RangeScore, InfluenceScore, NearestNeighborScore} {
		q := hashed.randQuery(rng, 2, variant)
		got, _, err := hashed.engine.STDS(q)
		if err != nil {
			t.Fatal(err)
		}
		assertMatchesBruteForce(t, hashed, q, got, "STDS/signature/"+variant.String())
	}
}

// Signature verification must cost extra page reads compared with exact
// bitmaps on the same workload.
func TestSignatureModeCostsVerificationIO(t *testing.T) {
	exact := buildSigWorld(t, 604, 400, 400, 2, 32, 0, index.IR2)
	hashed := buildSigWorld(t, 604, 400, 400, 2, 32, 8, index.IR2)
	rng := rand.New(rand.NewSource(605))
	var exactReads, hashedReads int64
	for trial := 0; trial < 6; trial++ {
		q := exact.randQuery(rng, 2, RangeScore)
		_, se, err := exact.engine.STPS(q)
		if err != nil {
			t.Fatal(err)
		}
		_, sh, err := hashed.engine.STPS(q)
		if err != nil {
			t.Fatal(err)
		}
		exactReads += se.LogicalReads
		hashedReads += sh.LogicalReads
	}
	if hashedReads <= exactReads {
		t.Errorf("signature mode reads %d, exact %d — verification I/O missing?",
			hashedReads, exactReads)
	}
}

// Insert must keep signature mode consistent (records + hashed tree).
func TestSignatureModeInsert(t *testing.T) {
	w := buildSigWorld(t, 606, 100, 100, 1, 16, 6, index.SRT)
	idx := w.engine.FeatureGroups()[0].Part(0)
	kw := kwset.SetFromWords(16, 3, 7)
	if err := idx.Insert(index.Feature{ID: 5000, Location: geo.Point{X: 0.5, Y: 0.5}, Score: 0.9, Keywords: kw}); err != nil {
		t.Fatal(err)
	}
	all, err := idx.AllExact()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range all {
		if e.ItemID == 5000 {
			found = true
			if !e.Keywords.Equal(kw) {
				t.Fatal("exact keywords lost through signature insert")
			}
		}
	}
	if !found {
		t.Fatal("inserted feature missing")
	}
	// Duplicate ids are rejected by the record file.
	if err := idx.Insert(index.Feature{ID: 5000, Location: geo.Point{X: 0.1, Y: 0.1}, Keywords: kw}); err == nil {
		t.Fatal("duplicate id must be rejected in signature mode")
	}
}
