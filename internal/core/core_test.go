package core

import (
	"math"
	"math/rand"
	"testing"

	"stpq/internal/geo"
	"stpq/internal/index"
	"stpq/internal/kwset"
)

// testWorld bundles a randomly generated engine plus its raw data.
type testWorld struct {
	engine *Engine
	vocabW int
}

// buildWorld creates an engine over random clustered data.
func buildWorld(t testing.TB, seed int64, numObjects, numFeatures, c, vocabW int, kind index.Kind, opts Options) *testWorld {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	objs := make([]index.Object, numObjects)
	for i := range objs {
		objs[i] = index.Object{ID: int64(i), Location: randPoint(rng)}
	}
	oidx, err := index.BuildObjectIndex(objs, index.Options{PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	fidxs := make([]*index.FeatureIndex, c)
	for s := 0; s < c; s++ {
		feats := make([]index.Feature, numFeatures)
		for i := range feats {
			kw := kwset.NewSet(vocabW)
			for j := 0; j < 1+rng.Intn(3); j++ {
				kw.Add(rng.Intn(vocabW))
			}
			feats[i] = index.Feature{
				ID:       int64(i),
				Location: randPoint(rng),
				Score:    rng.Float64(),
				Keywords: kw,
			}
		}
		fidxs[s], err = index.BuildFeatureIndex(feats, index.Options{
			Kind: kind, VocabWidth: vocabW, PageSize: 1024,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	eng, err := NewEngine(oidx, fidxs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return &testWorld{engine: eng, vocabW: vocabW}
}

func randPoint(rng *rand.Rand) geo.Point {
	// Mildly clustered to create interesting combination geometry.
	if rng.Intn(3) == 0 {
		return geo.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	cx, cy := float64(rng.Intn(4))*0.25+0.125, float64(rng.Intn(4))*0.25+0.125
	return geo.Point{
		X: math.Min(1, math.Max(0, cx+0.06*rng.NormFloat64())),
		Y: math.Min(1, math.Max(0, cy+0.06*rng.NormFloat64())),
	}
}

// randQuery draws query parameters roughly matching Table 2 ranges.
func (w *testWorld) randQuery(rng *rand.Rand, c int, variant Variant) Query {
	kws := make([]kwset.Set, c)
	for i := range kws {
		s := kwset.NewSet(w.vocabW)
		for j := 0; j < 1+rng.Intn(3); j++ {
			s.Add(rng.Intn(w.vocabW))
		}
		kws[i] = s
	}
	return Query{
		K:        1 + rng.Intn(12),
		Radius:   0.05 + rng.Float64()*0.15,
		Lambda:   rng.Float64(),
		Keywords: kws,
		Variant:  variant,
	}
}

// assertMatchesBruteForce verifies the algorithm answer against the
// oracle: same result count, same score vector (up to ties), and every
// reported score must equal the object's true score.
func assertMatchesBruteForce(t *testing.T, w *testWorld, q Query, got []Result, label string) {
	t.Helper()
	want, err := w.engine.BruteForce(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, want %d", label, len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
			t.Fatalf("%s: rank %d score %v, want %v (q=%+v)", label, i, got[i].Score, want[i].Score, q)
		}
	}
	// Reported score must be the object's true score.
	for _, r := range got {
		exact, err := w.engine.ExactScore(q, r.Location)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.Score-exact) > 1e-9 {
			t.Fatalf("%s: object %d reported score %v, exact %v", label, r.ID, r.Score, exact)
		}
	}
	// No duplicate ids.
	ids := make(map[int64]bool)
	for _, r := range got {
		if ids[r.ID] {
			t.Fatalf("%s: duplicate id %d", label, r.ID)
		}
		ids[r.ID] = true
	}
}

func TestSTDSRangeMatchesBruteForce(t *testing.T) {
	for _, kind := range []index.Kind{index.SRT, index.IR2} {
		w := buildWorld(t, 100, 400, 300, 2, 24, kind, Options{BatchSTDS: true})
		rng := rand.New(rand.NewSource(200))
		for trial := 0; trial < 8; trial++ {
			q := w.randQuery(rng, 2, RangeScore)
			got, _, err := w.engine.STDS(q)
			if err != nil {
				t.Fatal(err)
			}
			assertMatchesBruteForce(t, w, q, got, "STDS/"+kind.String())
		}
	}
}

func TestSTDSSingleMatchesBatch(t *testing.T) {
	wBatch := buildWorld(t, 101, 350, 250, 2, 16, index.SRT, Options{BatchSTDS: true})
	wSingle := buildWorld(t, 101, 350, 250, 2, 16, index.SRT, Options{BatchSTDS: false})
	rng := rand.New(rand.NewSource(201))
	for trial := 0; trial < 6; trial++ {
		q := wBatch.randQuery(rng, 2, RangeScore)
		a, _, err := wBatch.engine.STDS(q)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := wSingle.engine.STDS(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("batch %d vs single %d results", len(a), len(b))
		}
		for i := range a {
			if math.Abs(a[i].Score-b[i].Score) > 1e-9 {
				t.Fatalf("rank %d: batch %v single %v", i, a[i].Score, b[i].Score)
			}
		}
	}
}

func TestSTPSRangeMatchesBruteForce(t *testing.T) {
	for _, kind := range []index.Kind{index.SRT, index.IR2} {
		w := buildWorld(t, 102, 400, 300, 2, 24, kind, Options{})
		rng := rand.New(rand.NewSource(202))
		for trial := 0; trial < 10; trial++ {
			q := w.randQuery(rng, 2, RangeScore)
			got, _, err := w.engine.STPS(q)
			if err != nil {
				t.Fatal(err)
			}
			assertMatchesBruteForce(t, w, q, got, "STPS/"+kind.String())
		}
	}
}

func TestSTPSRangeThreeFeatureSets(t *testing.T) {
	w := buildWorld(t, 103, 300, 200, 3, 16, index.SRT, Options{})
	rng := rand.New(rand.NewSource(203))
	for trial := 0; trial < 6; trial++ {
		q := w.randQuery(rng, 3, RangeScore)
		got, _, err := w.engine.STPS(q)
		if err != nil {
			t.Fatal(err)
		}
		assertMatchesBruteForce(t, w, q, got, "STPS/c=3")
	}
}

func TestSTPSInfluenceMatchesBruteForce(t *testing.T) {
	w := buildWorld(t, 104, 350, 250, 2, 16, index.SRT, Options{})
	rng := rand.New(rand.NewSource(204))
	for trial := 0; trial < 8; trial++ {
		q := w.randQuery(rng, 2, InfluenceScore)
		got, _, err := w.engine.STPS(q)
		if err != nil {
			t.Fatal(err)
		}
		assertMatchesBruteForce(t, w, q, got, "STPS/influence")
	}
}

func TestSTDSInfluenceMatchesBruteForce(t *testing.T) {
	w := buildWorld(t, 105, 300, 200, 2, 16, index.SRT, Options{})
	rng := rand.New(rand.NewSource(205))
	for trial := 0; trial < 5; trial++ {
		q := w.randQuery(rng, 2, InfluenceScore)
		got, _, err := w.engine.STDS(q)
		if err != nil {
			t.Fatal(err)
		}
		assertMatchesBruteForce(t, w, q, got, "STDS/influence")
	}
}

func TestSTPSNearestNeighborMatchesBruteForce(t *testing.T) {
	w := buildWorld(t, 106, 300, 150, 2, 16, index.SRT, Options{})
	rng := rand.New(rand.NewSource(206))
	for trial := 0; trial < 8; trial++ {
		q := w.randQuery(rng, 2, NearestNeighborScore)
		got, _, err := w.engine.STPS(q)
		if err != nil {
			t.Fatal(err)
		}
		assertMatchesBruteForce(t, w, q, got, "STPS/nn")
	}
}

func TestSTDSNearestNeighborMatchesBruteForce(t *testing.T) {
	w := buildWorld(t, 107, 250, 150, 2, 16, index.SRT, Options{})
	rng := rand.New(rand.NewSource(207))
	for trial := 0; trial < 5; trial++ {
		q := w.randQuery(rng, 2, NearestNeighborScore)
		got, _, err := w.engine.STDS(q)
		if err != nil {
			t.Fatal(err)
		}
		assertMatchesBruteForce(t, w, q, got, "STDS/nn")
	}
}

// Lazy and eager combination generation must produce identical top-k
// answers.
func TestLazyEagerCombinationsAgree(t *testing.T) {
	wLazy := buildWorld(t, 108, 300, 200, 3, 16, index.SRT, Options{Combinations: CombinationsLazy})
	wEager := buildWorld(t, 108, 300, 200, 3, 16, index.SRT, Options{Combinations: CombinationsEager})
	rng := rand.New(rand.NewSource(208))
	for trial := 0; trial < 6; trial++ {
		q := wLazy.randQuery(rng, 3, RangeScore)
		a, _, err := wLazy.engine.STPS(q)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := wEager.engine.STPS(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("lazy %d vs eager %d", len(a), len(b))
		}
		for i := range a {
			if math.Abs(a[i].Score-b[i].Score) > 1e-9 {
				t.Fatalf("rank %d: lazy %v eager %v", i, a[i].Score, b[i].Score)
			}
		}
	}
}

// Round-robin pulling must return the same answers as prioritized pulling.
func TestPullStrategiesAgree(t *testing.T) {
	wPrio := buildWorld(t, 109, 300, 200, 2, 16, index.SRT, Options{Pull: PullPrioritized})
	wRR := buildWorld(t, 109, 300, 200, 2, 16, index.SRT, Options{Pull: PullRoundRobin})
	rng := rand.New(rand.NewSource(209))
	for trial := 0; trial < 6; trial++ {
		q := wPrio.randQuery(rng, 2, RangeScore)
		a, _, err := wPrio.engine.STPS(q)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := wRR.engine.STPS(q)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if math.Abs(a[i].Score-b[i].Score) > 1e-9 {
				t.Fatalf("rank %d: prio %v rr %v", i, a[i].Score, b[i].Score)
			}
		}
	}
}

func TestKLargerThanDataset(t *testing.T) {
	w := buildWorld(t, 110, 40, 100, 2, 16, index.SRT, Options{})
	rng := rand.New(rand.NewSource(210))
	q := w.randQuery(rng, 2, RangeScore)
	q.K = 100
	got, _, err := w.engine.STPS(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 40 {
		t.Fatalf("got %d results, want all 40 objects", len(got))
	}
	assertMatchesBruteForce(t, w, q, got, "STPS/k>n")
	got, _, err = w.engine.STDS(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 40 {
		t.Fatalf("STDS got %d results", len(got))
	}
}

// A query whose keywords match nothing must return objects with score 0
// (the virtual-feature path) rather than failing.
func TestNoRelevantFeatures(t *testing.T) {
	w := buildWorld(t, 111, 100, 100, 2, 16, index.SRT, Options{})
	q := Query{
		K:      5,
		Radius: 0.1,
		Lambda: 0.5,
		Keywords: []kwset.Set{
			kwset.NewSet(16), // empty keyword sets: nothing is relevant
			kwset.NewSet(16),
		},
		Variant: RangeScore,
	}
	got, _, err := w.engine.STPS(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("got %d results", len(got))
	}
	for _, r := range got {
		if r.Score != 0 {
			t.Fatalf("score %v, want 0", r.Score)
		}
	}
}

func TestLambdaExtremes(t *testing.T) {
	w := buildWorld(t, 112, 300, 200, 2, 16, index.SRT, Options{})
	rng := rand.New(rand.NewSource(212))
	for _, lambda := range []float64{0, 1} {
		q := w.randQuery(rng, 2, RangeScore)
		q.Lambda = lambda
		got, _, err := w.engine.STPS(q)
		if err != nil {
			t.Fatal(err)
		}
		assertMatchesBruteForce(t, w, q, got, "STPS/lambda")
		got, _, err = w.engine.STDS(q)
		if err != nil {
			t.Fatal(err)
		}
		assertMatchesBruteForce(t, w, q, got, "STDS/lambda")
	}
}

func TestQueryValidation(t *testing.T) {
	w := buildWorld(t, 113, 50, 50, 2, 16, index.SRT, Options{})
	bad := []Query{
		{K: 0, Radius: 0.1, Keywords: make([]kwset.Set, 2)},
		{K: 5, Radius: 0.1, Keywords: make([]kwset.Set, 1)},
		{K: 5, Radius: 0, Keywords: make([]kwset.Set, 2)},
		{K: 5, Radius: 0.1, Lambda: 1.5, Keywords: make([]kwset.Set, 2)},
	}
	for i, q := range bad {
		if _, _, err := w.engine.STPS(q); err == nil {
			t.Errorf("query %d should fail validation", i)
		}
		if _, _, err := w.engine.STDS(q); err == nil {
			t.Errorf("query %d should fail STDS validation", i)
		}
	}
	// NN variant does not need a radius.
	q := Query{K: 3, Lambda: 0.5, Keywords: []kwset.Set{kwset.SetFromWords(16, 1), kwset.SetFromWords(16, 2)}, Variant: NearestNeighborScore}
	if _, _, err := w.engine.STPS(q); err != nil {
		t.Errorf("NN query with no radius: %v", err)
	}
}

func TestNewEngineValidation(t *testing.T) {
	w := buildWorld(t, 114, 10, 10, 1, 8, index.SRT, Options{})
	if _, err := NewEngineWithGroups(nil, w.engine.FeatureGroups(), Options{}); err == nil {
		t.Error("nil object index must fail")
	}
	if _, err := NewEngine(w.engine.Objects(), nil, Options{}); err == nil {
		t.Error("no feature indexes must fail")
	}
	if _, err := NewEngine(w.engine.Objects(), []*index.FeatureIndex{nil}, Options{}); err == nil {
		t.Error("nil feature index must fail")
	}
	if _, err := NewEngineWithGroups(w.engine.Objects(), []*index.FeatureGroup{nil}, Options{}); err == nil {
		t.Error("nil feature group must fail")
	}
}

func TestStatsPopulated(t *testing.T) {
	w := buildWorld(t, 115, 400, 300, 2, 16, index.SRT, Options{})
	rng := rand.New(rand.NewSource(215))
	q := w.randQuery(rng, 2, RangeScore)
	_, st, err := w.engine.STPS(q)
	if err != nil {
		t.Fatal(err)
	}
	if st.LogicalReads == 0 {
		t.Error("STPS should read pages")
	}
	if st.Combinations == 0 {
		t.Error("STPS should emit combinations")
	}
	if st.FeaturesPulled == 0 {
		t.Error("STPS should pull features")
	}
	if st.CPUTime <= 0 {
		t.Error("CPU time must be positive")
	}
	_, st, err = w.engine.STDS(q)
	if err != nil {
		t.Fatal(err)
	}
	if st.ObjectsScored == 0 {
		t.Error("STDS should score objects")
	}
	qnn := w.randQuery(rng, 2, NearestNeighborScore)
	_, st, err = w.engine.STPS(qnn)
	if err != nil {
		t.Fatal(err)
	}
	if st.VoronoiCPUTime <= 0 {
		t.Error("NN variant should attribute Voronoi CPU time")
	}
}

func TestStatsArithmetic(t *testing.T) {
	a := Stats{CPUTime: 10, IOTime: 20, LogicalReads: 4, PhysicalReads: 2, Combinations: 3, FeaturesPulled: 5, ObjectsScored: 7}
	var acc Stats
	acc.Add(a)
	acc.Add(a)
	if acc.LogicalReads != 8 || acc.Combinations != 6 {
		t.Errorf("Add: %+v", acc)
	}
	avg := acc.Scale(2)
	if avg.LogicalReads != 4 || avg.Combinations != 3 || avg.CPUTime != 10 {
		t.Errorf("Scale: %+v", avg)
	}
	if a.Total() != 30 {
		t.Errorf("Total = %v", a.Total())
	}
	if s := (Stats{}).Scale(0); s != (Stats{}) {
		t.Error("Scale(0) must be identity")
	}
}

func TestVariantAndStrategyStrings(t *testing.T) {
	if RangeScore.String() != "range" || InfluenceScore.String() != "influence" ||
		NearestNeighborScore.String() != "nearest-neighbor" {
		t.Error("variant strings")
	}
	if Variant(9).String() == "" {
		t.Error("unknown variant string")
	}
	if PullPrioritized.String() != "prioritized" || PullRoundRobin.String() != "round-robin" {
		t.Error("pull strategy strings")
	}
}

// The cross-query Voronoi cell cache must not change results, and must
// eliminate Voronoi work on repeated queries.
func TestVoronoiCellCache(t *testing.T) {
	plain := buildWorld(t, 400, 250, 150, 2, 16, index.SRT, Options{})
	cached := buildWorld(t, 400, 250, 150, 2, 16, index.SRT, Options{CacheVoronoiCells: true})
	rng := rand.New(rand.NewSource(401))
	q := plain.randQuery(rng, 2, NearestNeighborScore)
	a, _, err := plain.engine.STPS(q)
	if err != nil {
		t.Fatal(err)
	}
	b, st1, err := cached.engine.STPS(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(a[i].Score-b[i].Score) > 1e-9 {
			t.Fatalf("rank %d: plain %v cached %v", i, a[i].Score, b[i].Score)
		}
	}
	// Second identical query: all cells cached, so Voronoi reads vanish.
	_, st2, err := cached.engine.STPS(q)
	if err != nil {
		t.Fatal(err)
	}
	if st2.VoronoiReads > 0 {
		t.Errorf("second query still performed %d Voronoi reads (first: %d)",
			st2.VoronoiReads, st1.VoronoiReads)
	}
}

// PrecomputeVoronoiCells warms the cache for every feature; queries then
// run without any Voronoi page reads at all.
func TestPrecomputeVoronoiCells(t *testing.T) {
	w := buildWorld(t, 402, 200, 80, 2, 16, index.SRT, Options{CacheVoronoiCells: true})
	if err := w.engine.PrecomputeVoronoiCells(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(403))
	for trial := 0; trial < 3; trial++ {
		q := w.randQuery(rng, 2, NearestNeighborScore)
		got, st, err := w.engine.STPS(q)
		if err != nil {
			t.Fatal(err)
		}
		if st.VoronoiReads != 0 {
			t.Errorf("trial %d: %d Voronoi reads after precompute", trial, st.VoronoiReads)
		}
		assertMatchesBruteForce(t, w, q, got, "STPS/nn-precomputed")
	}
}

func TestPrecomputeRequiresCaching(t *testing.T) {
	w := buildWorld(t, 404, 20, 20, 1, 8, index.SRT, Options{})
	if err := w.engine.PrecomputeVoronoiCells(); err == nil {
		t.Fatal("precompute without CacheVoronoiCells must fail")
	}
}

// Every similarity measure must round-trip through both algorithms and
// match the brute-force oracle.
func TestSimilarityMeasuresMatchBruteForce(t *testing.T) {
	w := buildWorld(t, 700, 300, 200, 2, 16, index.SRT, Options{})
	rng := rand.New(rand.NewSource(701))
	for _, sim := range []index.Similarity{index.Jaccard, index.Dice, index.Cosine, index.Overlap} {
		q := w.randQuery(rng, 2, RangeScore)
		q.Similarity = sim
		got, _, err := w.engine.STPS(q)
		if err != nil {
			t.Fatal(err)
		}
		assertMatchesBruteForce(t, w, q, got, "STPS/"+sim.String())
		got, _, err = w.engine.STDS(q)
		if err != nil {
			t.Fatal(err)
		}
		assertMatchesBruteForce(t, w, q, got, "STDS/"+sim.String())
	}
}

// Different measures generally rank differently — sanity-check the knob
// actually changes scoring.
func TestSimilarityMeasuresDiffer(t *testing.T) {
	w := buildWorld(t, 702, 200, 300, 1, 12, index.SRT, Options{})
	rng := rand.New(rand.NewSource(703))
	q := w.randQuery(rng, 1, RangeScore)
	q.Lambda = 0.9 // make the textual term dominant
	q.K = 20
	scores := map[string]float64{}
	for _, sim := range []index.Similarity{index.Jaccard, index.Overlap} {
		q.Similarity = sim
		res, _, err := w.engine.STPS(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) > 0 {
			scores[sim.String()] = res[0].Score
		}
	}
	if len(scores) == 2 && scores["jaccard"] == scores["overlap"] {
		t.Log("jaccard and overlap agreed on this workload (possible but unusual)")
	}
}
