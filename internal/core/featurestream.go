package core

import (
	"stpq/internal/index"
	"stpq/internal/rtree"
)

// featureRef is one element of the per-set stream D_i: either a concrete
// feature object with its preference score s(t), or the virtual feature ∅
// emitted after the set is exhausted (paper Section 6.1): dist(p,∅) = 0
// and s(∅) = 0, so a combination may cover fewer than c feature sets.
type featureRef struct {
	entry   rtree.Entry
	score   float64
	virtual bool
}

// featureStream retrieves the feature objects of one feature set in
// non-increasing preference score s(t), using best-first traversal ordered
// by the bound ŝ(e) (Algorithm 4 lines 3–7). Subtrees that cannot contain
// a relevant feature (empty keyword intersection with W_i) are pruned. As
// the final element the stream yields the virtual feature ∅.
//
// In signature mode (hashed keyword summaries) a popped leaf's exact score
// is only a bound: the stream resolves it against the feature record —
// paying the verification page read — and re-enqueues it with its exact
// score, preserving the global non-increasing order.
type featureStream struct {
	g         *index.FeatureGroup
	pq        index.PreparedQuery
	heap      boundHeap
	exhausted bool
}

// newFeatureStream seeds the stream with every part root of the group; the
// shared bound heap merges the part trees into one globally non-increasing
// score stream. A query with no keywords for this set makes every feature
// irrelevant, so the stream yields only ∅.
func newFeatureStream(g *index.FeatureGroup, q index.QueryKeywords) (*featureStream, error) {
	s := &featureStream{}
	if err := s.init(g, q); err != nil {
		return nil, err
	}
	return s, nil
}

// init (re)initializes the stream in place, keeping the heap's backing
// array so pooled streams reach steady state without allocating.
func (s *featureStream) init(g *index.FeatureGroup, q index.QueryKeywords) error {
	s.g = g
	s.pq = g.Prepare(q)
	s.heap = s.heap[:0]
	s.exhausted = false
	if g.Len() == 0 || q.Set.IsEmpty() {
		return nil
	}
	for pi, part := range g.Parts() {
		if part.Len() == 0 {
			continue
		}
		root, err := part.Tree().RootEntry()
		if err != nil {
			return err
		}
		if part.EntryRelevant(root, s.pq) {
			s.heap.push(boundItem{entry: root, part: pi, bound: part.EntryBound(root, s.pq)})
		}
	}
	return nil
}

// next returns the feature with the highest remaining score, or the
// virtual feature once, then reports done=true.
func (s *featureStream) next() (ref featureRef, done bool, err error) {
	for s.heap.Len() > 0 {
		it := s.heap.pop()
		idx := s.g.Part(it.part)
		if it.entry.Leaf {
			if it.resolved {
				return featureRef{entry: it.entry, score: it.bound}, false, nil
			}
			score, relevant, err := idx.ResolveLeaf(it.entry, s.pq)
			if err != nil {
				return featureRef{}, false, err
			}
			if !relevant {
				continue // signature false positive
			}
			if s.heap.Len() == 0 || score >= s.heap[0].bound-1e-12 {
				return featureRef{entry: it.entry, score: score}, false, nil
			}
			s.heap.push(boundItem{entry: it.entry, part: it.part, bound: score, resolved: true})
			continue
		}
		node, err := idx.Tree().Node(it.entry.Child)
		if err != nil {
			return featureRef{}, false, err
		}
		for _, c := range node.Entries {
			if !idx.EntryRelevant(c, s.pq) {
				continue
			}
			s.heap.push(boundItem{entry: c, part: it.part, bound: idx.EntryBound(c, s.pq)})
		}
	}
	if !s.exhausted {
		s.exhausted = true
		return featureRef{virtual: true, score: virtualScore}, false, nil
	}
	return featureRef{}, true, nil
}

// boundItem pairs an entry with its score bound ŝ(e) and the feature-group
// part it came from; resolved marks leaf entries whose bound is already the
// exact score.
type boundItem struct {
	entry    rtree.Entry
	part     int
	bound    float64
	resolved bool
}

// boundHeap is a max-heap over bounds.
type boundHeap []boundItem

func (h boundHeap) Len() int { return len(h) }
