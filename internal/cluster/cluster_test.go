package cluster

// cluster_test.go drives the full distributed path over real TCP on
// 127.0.0.1: partition a dataset across in-process nodes, scatter-gather
// through a coordinator, and require byte-identical results versus the
// single-process engine; then break things — kill leaders, delay nodes
// past the hedge threshold, tear WAL segments — and require the
// coordinator and replicas to recover without a single wrong answer.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"stpq"
	"stpq/internal/serve"
	"stpq/internal/shard"
)

// testData builds deterministic random objects and two feature sets.
func testData(seed int64) ([]stpq.Object, []stpq.Feature, []stpq.Feature, []string) {
	rng := rand.New(rand.NewSource(seed))
	words := []string{"pizza", "sushi", "tacos", "ramen", "bagels", "pho", "curry", "bbq",
		"espresso", "latte", "tea", "cocoa"}
	objs := make([]stpq.Object, 400)
	for i := range objs {
		objs[i] = stpq.Object{ID: int64(i), X: rng.Float64(), Y: rng.Float64()}
	}
	mk := func(n int) []stpq.Feature {
		feats := make([]stpq.Feature, n)
		for i := range feats {
			feats[i] = stpq.Feature{
				ID: int64(i), X: rng.Float64(), Y: rng.Float64(), Score: rng.Float64(),
				Keywords: []string{words[rng.Intn(len(words))], words[rng.Intn(len(words))]},
			}
		}
		return feats
	}
	return objs, mk(350), mk(300), words
}

// buildCell builds one node's DB: the cell's objects, every feature set.
func buildCell(t *testing.T, cfg stpq.Config, objs []stpq.Object, food, cafes []stpq.Feature) *stpq.DB {
	t.Helper()
	db := stpq.New(cfg)
	db.AddObjects(objs)
	db.AddFeatureSet("food", food)
	db.AddFeatureSet("cafes", cafes)
	if err := db.Build(); err != nil {
		t.Fatal(err)
	}
	return db
}

// testCluster is a running local cluster: one node per cell, optionally a
// follower per cell serving the same data.
type testCluster struct {
	m     Map
	nodes []*Node // leaders, indexed by cell; followers appended after
	coord *Coordinator
}

// startNode builds a service around db and serves it on a loopback port.
func startNode(t *testing.T, id int, db *stpq.DB, delay time.Duration) (*Node, string) {
	t.Helper()
	svc, err := serve.New(db, serve.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	n := NewNode(NodeConfig{NodeID: id, Service: svc, DB: db, QueryDelay: delay})
	addr, err := n.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return n, addr.String()
}

// startCluster partitions the dataset across cells nodes (with a follower
// per cell when withFollowers) and starts a coordinator over them.
func startCluster(t *testing.T, kind stpq.IndexKind, cells int, withFollowers bool,
	coordCfg CoordinatorConfig) *testCluster {
	t.Helper()
	objs, food, cafes, _ := testData(7)
	leaders := make([]string, cells)
	for i := range leaders {
		leaders[i] = "pending"
	}
	m, err := BuildMap(objs, leaders, shard.HilbertRuns)
	if err != nil {
		t.Fatal(err)
	}
	tc := &testCluster{m: m}
	cfg := stpq.Config{IndexKind: kind, PageSize: 1024}
	for i := 0; i < cells; i++ {
		cellObjs := m.PartitionObjects(objs, i)
		db := buildCell(t, cfg, cellObjs, food, cafes)
		n, addr := startNode(t, i, db, 0)
		tc.nodes = append(tc.nodes, n)
		tc.m.Nodes[i].Leader = addr
		if withFollowers {
			fdb := buildCell(t, cfg, cellObjs, food, cafes)
			fn, faddr := startNode(t, i, fdb, 0)
			tc.nodes = append(tc.nodes, fn)
			tc.m.Nodes[i].Followers = []string{faddr}
		}
	}
	coordCfg.Map = tc.m
	coord, err := NewCoordinator(coordCfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	tc.coord = coord
	return tc
}

// TestClusterMatchesSingle is the distributed equivalence matrix: both
// index kinds, all three variants, both algorithms, 2 and 4 nodes — the
// coordinator's merged top-k must be byte-identical (ids, scores, order)
// to the single-process engine over the whole dataset.
func TestClusterMatchesSingle(t *testing.T) {
	objs, food, cafes, words := testData(7)
	for _, kind := range []stpq.IndexKind{stpq.SRT, stpq.IR2} {
		single := buildCell(t, stpq.Config{IndexKind: kind, PageSize: 1024}, objs, food, cafes)
		for _, cells := range []int{2, 4} {
			tc := startCluster(t, kind, cells, false, CoordinatorConfig{HealthInterval: -1})
			rng := rand.New(rand.NewSource(int64(cells)))
			for _, variant := range []stpq.Variant{stpq.Range, stpq.Influence, stpq.NearestNeighbor} {
				for _, alg := range []stpq.Algorithm{stpq.STPS, stpq.STDS} {
					q := stpq.Query{
						K: 8, Radius: 0.06, Lambda: 0.5,
						Keywords: map[string][]string{
							"food":  {words[rng.Intn(len(words))], words[rng.Intn(len(words))]},
							"cafes": {words[rng.Intn(len(words))]},
						},
						Variant: variant, Algorithm: alg,
					}
					want, _, err := single.TopK(q)
					if err != nil {
						t.Fatal(err)
					}
					resp, err := tc.coord.Do(q)
					if err != nil {
						t.Fatalf("kind %v cells %d %v %v: %v", kind, cells, variant, alg, err)
					}
					requireSameResults(t, fmt.Sprintf("kind %v cells %d %v %v", kind, cells, variant, alg),
						resp.Results, want)
					if resp.Stats.Fanout+resp.Stats.Pruned != cells {
						t.Fatalf("fanout %d + pruned %d != %d cells",
							resp.Stats.Fanout, resp.Stats.Pruned, cells)
					}
				}
			}
		}
	}
}

func requireSameResults(t *testing.T, label string, got []WireResult, want []stpq.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID || got[i].Score != want[i].Score {
			t.Fatalf("%s rank %d: got (%d, %v) want (%d, %v)",
				label, i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
		}
	}
}

// TestClusterFailover kills every leader mid-run; the coordinator must
// finish every query through the followers with zero wrong answers.
func TestClusterFailover(t *testing.T) {
	objs, food, cafes, words := testData(7)
	single := buildCell(t, stpq.Config{PageSize: 1024}, objs, food, cafes)
	tc := startCluster(t, stpq.SRT, 2, true, CoordinatorConfig{
		HealthInterval: -1,
		RetryMax:       3,
		RetryBackoff:   time.Millisecond,
	})
	q := stpq.Query{
		K: 8, Radius: 0.06, Lambda: 0.5,
		Keywords: map[string][]string{"food": {words[0], words[1]}, "cafes": {words[2]}},
	}
	want, _, err := single.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	// Warm run with all leaders alive.
	resp, err := tc.coord.Do(q)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResults(t, "pre-failover", resp.Results, want)
	// Kill both leaders (nodes[0], nodes[2] — follower interleaved after
	// each leader by startCluster).
	tc.nodes[0].Close()
	tc.nodes[2].Close()
	resp, err = tc.coord.Do(q)
	if err != nil {
		t.Fatalf("query after leader kill: %v", err)
	}
	requireSameResults(t, "post-failover", resp.Results, want)
	if tc.coord.retries.Value() == 0 {
		t.Fatal("leader kill produced no retries")
	}
}

// TestClusterHedging delays the leaders far past the hedge threshold; the
// hedged attempts on the followers must answer first, correctly.
func TestClusterHedging(t *testing.T) {
	objs, food, cafes, words := testData(7)
	single := buildCell(t, stpq.Config{PageSize: 1024}, objs, food, cafes)
	const delay = 400 * time.Millisecond
	// Hand-build the cluster so the leaders are slow and followers fast.
	leaders := make([]string, 2)
	for i := range leaders {
		leaders[i] = "pending"
	}
	m, err := BuildMap(objs, leaders, shard.HilbertRuns)
	if err != nil {
		t.Fatal(err)
	}
	cfg := stpq.Config{PageSize: 1024}
	for i := 0; i < 2; i++ {
		cellObjs := m.PartitionObjects(objs, i)
		_, addr := startNode(t, i, buildCell(t, cfg, cellObjs, food, cafes), delay)
		m.Nodes[i].Leader = addr
		_, faddr := startNode(t, i, buildCell(t, cfg, cellObjs, food, cafes), 0)
		m.Nodes[i].Followers = []string{faddr}
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		Map:            m,
		HealthInterval: -1,
		HedgeAfter:     20 * time.Millisecond,
		RetryBackoff:   time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	q := stpq.Query{
		K: 8, Radius: 0.06, Lambda: 0.5,
		Keywords: map[string][]string{"food": {words[0], words[1]}, "cafes": {words[2]}},
	}
	want, _, err := single.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	resp, err := coord.Do(q)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	requireSameResults(t, "hedged", resp.Results, want)
	if coord.hedges.Value() == 0 {
		t.Fatal("slow leaders produced no hedges")
	}
	// Bound probes also hedge, so the whole query should finish well under
	// the two sequential leader delays a hedge-less coordinator would eat.
	if elapsed >= 2*delay {
		t.Fatalf("hedged query took %v (leaders delayed %v each)", elapsed, delay)
	}
}

// TestClusterPlanAndTermination checks the scatter order (bound
// descending) and that Parallelism 1 actually prunes trailing nodes via
// the strict-inequality rule.
func TestClusterPlanAndTermination(t *testing.T) {
	_, _, _, words := testData(7)
	tc := startCluster(t, stpq.SRT, 4, false, CoordinatorConfig{
		HealthInterval: -1,
		Parallelism:    1,
	})
	q := stpq.Query{
		K: 3, Radius: 0.06, Lambda: 0.5,
		Keywords: map[string][]string{"food": {words[0], words[1]}},
	}
	plan, err := tc.coord.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 4 {
		t.Fatalf("plan has %d nodes, want 4", len(plan))
	}
	for i := 1; i < len(plan); i++ {
		if plan[i].Bound > plan[i-1].Bound {
			t.Fatalf("plan not sorted by bound: %v", plan)
		}
		if plan[i].Wave != i {
			t.Fatalf("parallelism 1: node %d in wave %d, want %d", i, plan[i].Wave, i)
		}
	}
	resp, err := tc.coord.Do(q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stats.Fanout+resp.Stats.Pruned != 4 {
		t.Fatalf("fanout %d + pruned %d != 4", resp.Stats.Fanout, resp.Stats.Pruned)
	}
}

// TestClusterTracePropagation runs a traced query and expects every
// queried node's span tree back, keyed by node id, with the request ID
// visible in the nodes' event logs.
func TestClusterTracePropagation(t *testing.T) {
	_, _, _, words := testData(7)
	tc := startCluster(t, stpq.SRT, 2, false, CoordinatorConfig{HealthInterval: -1})
	q := stpq.Query{
		K: 8, Radius: 0.06, Lambda: 0.5,
		Keywords:  map[string][]string{"food": {words[0], words[1]}},
		Trace:     stpq.TraceOn,
		RequestID: "req-cluster-trace-test",
	}
	resp, err := tc.coord.Do(q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RequestID != "req-cluster-trace-test" {
		t.Fatalf("request id %q not preserved", resp.RequestID)
	}
	if len(resp.NodeTraces) != resp.Stats.Fanout {
		t.Fatalf("%d node traces for fanout %d", len(resp.NodeTraces), resp.Stats.Fanout)
	}
	// The request ID must appear in the coordinator's own event log.
	evs := tc.coord.RecentQueries(1)
	if len(evs) != 1 || evs[0].RequestID != "req-cluster-trace-test" {
		t.Fatalf("coordinator event log: %+v", evs)
	}
	if evs[0].ShardFanout != resp.Stats.Fanout {
		t.Fatalf("event fanout %d, want %d", evs[0].ShardFanout, resp.Stats.Fanout)
	}
}

// TestReplicaFollowsLeader ships WAL segments from a live leader to a
// follower over the real RPC path and expects the follower to converge to
// the leader's state.
func TestReplicaFollowsLeader(t *testing.T) {
	objs, food, cafes, words := testData(9)
	dir := t.TempDir()
	leader := buildCell(t, stpq.Config{PageSize: 1024, WALDir: dir}, objs, food, cafes)
	follower := buildCell(t, stpq.Config{PageSize: 1024}, objs, food, cafes)
	_, addr := startNode(t, 0, leader, 0)
	cl := NewClient(addr, time.Second)
	defer cl.Close()

	// Mutate the leader: move objects, add features.
	for batch := 0; batch < 3; batch++ {
		var muts []stpq.Mutation
		for i := 0; i < 5; i++ {
			o := stpq.Object{ID: int64(1000 + batch*10 + i), X: 0.1 * float64(i+1), Y: 0.2}
			muts = append(muts, stpq.Mutation{Op: stpq.OpUpsertObject, Object: &o})
		}
		f := stpq.Feature{ID: int64(2000 + batch), X: 0.15, Y: 0.2, Score: 0.9,
			Keywords: []string{words[0]}}
		muts = append(muts, stpq.Mutation{Op: stpq.OpUpsertFeature, Set: "food", Feature: &f})
		if err := leader.Apply(muts); err != nil {
			t.Fatal(err)
		}
	}
	// Seal the active segment so the follower can fetch it.
	if err := leader.WALRotate(); err != nil {
		t.Fatal(err)
	}

	rep, err := StartReplica(ReplicaConfig{DB: follower, Source: cl, Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	deadline := time.Now().Add(5 * time.Second)
	for rep.AppliedSeq() < leader.WALSeq() {
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at seq %d, leader at %d (err: %v)",
				rep.AppliedSeq(), leader.WALSeq(), rep.Err())
		}
		time.Sleep(5 * time.Millisecond)
	}

	q := stpq.Query{K: 10, Radius: 0.1, Lambda: 0.5,
		Keywords: map[string][]string{"food": {words[0]}}}
	want, _, err := leader.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := follower.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("follower: %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("follower diverged at rank %d: got %+v want %+v", i, got[i], want[i])
		}
	}

	// A second round: replication keeps flowing after the first catch-up.
	o := stpq.Object{ID: 5000, X: 0.5, Y: 0.5}
	if err := leader.Apply([]stpq.Mutation{{Op: stpq.OpUpsertObject, Object: &o}}); err != nil {
		t.Fatal(err)
	}
	if err := leader.WALRotate(); err != nil {
		t.Fatal(err)
	}
	for rep.AppliedSeq() < leader.WALSeq() {
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck after second round at %d, leader %d", rep.AppliedSeq(), leader.WALSeq())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// tornSource truncates every fetched segment, simulating a partial read.
type tornSource struct{ inner SegmentSource }

func (s tornSource) Segment(from uint64) (SegmentReply, error) {
	reply, err := s.inner.Segment(from)
	if err != nil || reply.FirstSeq == 0 {
		return reply, err
	}
	if len(reply.Data) > 3 {
		reply.Data = reply.Data[:len(reply.Data)-3]
	}
	return reply, nil
}

// TestReplicaTornSegment feeds the follower torn segments: it must refuse
// to apply a single record and surface the corruption error.
func TestReplicaTornSegment(t *testing.T) {
	objs, food, cafes, words := testData(9)
	dir := t.TempDir()
	leader := buildCell(t, stpq.Config{PageSize: 1024, WALDir: dir}, objs, food, cafes)
	follower := buildCell(t, stpq.Config{PageSize: 1024}, objs, food, cafes)
	_, addr := startNode(t, 0, leader, 0)
	cl := NewClient(addr, time.Second)
	defer cl.Close()
	f := stpq.Feature{ID: 2000, X: 0.15, Y: 0.2, Score: 0.9, Keywords: []string{words[0]}}
	if err := leader.Apply([]stpq.Mutation{{Op: stpq.OpUpsertFeature, Set: "food", Feature: &f}}); err != nil {
		t.Fatal(err)
	}
	if err := leader.WALRotate(); err != nil {
		t.Fatal(err)
	}
	rep, err := StartReplica(ReplicaConfig{
		DB: follower, Source: tornSource{cl}, Interval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	deadline := time.Now().Add(5 * time.Second)
	for rep.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("torn segment never surfaced an error")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if rep.AppliedSeq() != 0 {
		t.Fatalf("replica applied %d records from a torn segment", rep.AppliedSeq())
	}
}
