package cluster

// coordinator.go is the scatter-gather coordinator: it mirrors the wave
// loop of internal/shard's Engine.run across the process boundary. For a
// query it probes every node's admissible upper bound, sorts nodes by
// bound (descending, ties by node id ascending), fans the query out in
// waves of Parallelism, and terminates as soon as the k-th merged score
// strictly exceeds the next node's bound. Because every node's bound is
// admissible and the merge runs under the engine-wide result total order
// (score descending, ties by ascending id), the merged top-k is
// byte-identical to the single-process engine — independent of wave
// composition, retries and hedging.
//
// Per-node calls fail over across replicas (leader first, then followers
// by applied replication watermark) with exponential-backoff retries, and
// hedge: when a node has not answered within HedgeAfter, a duplicate
// attempt launches on the next replica and the first answer wins.

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"stpq"
	"stpq/internal/obs"
	"stpq/internal/plan"
)

// CoordinatorConfig tunes the scatter-gather coordinator.
type CoordinatorConfig struct {
	// Map is the partition map (required, validated).
	Map Map
	// Parallelism is the scatter wave width (default: all nodes at once).
	Parallelism int
	// RPCTimeout bounds each RPC end-to-end (default DefaultRPCTimeout).
	RPCTimeout time.Duration
	// RetryMax is the number of extra attempts per node call after the
	// first fails with a retryable error (default 2).
	RetryMax int
	// RetryBackoff is the delay before the first retry, doubling per retry
	// (default 25ms).
	RetryBackoff time.Duration
	// HedgeAfter launches a duplicate attempt on the next replica when a
	// call has not answered within this duration; 0 disables hedging.
	HedgeAfter time.Duration
	// HealthInterval is the background health-probe period feeding
	// lag-aware replica ordering (default 2s; negative disables).
	HealthInterval time.Duration
	// EventLogEntries sizes the coordinator's query event ring
	// (0 = obs default, negative disables).
	EventLogEntries int
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.Parallelism <= 0 {
		c.Parallelism = len(c.Map.Nodes)
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = DefaultRPCTimeout
	}
	if c.RetryMax < 0 {
		c.RetryMax = 0
	} else if c.RetryMax == 0 {
		c.RetryMax = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 25 * time.Millisecond
	}
	if c.HealthInterval == 0 {
		c.HealthInterval = 2 * time.Second
	}
	return c
}

// endpoint is one replica of a node with its routing state.
type endpoint struct {
	client     *Client
	leader     bool
	appliedSeq atomic.Uint64
	healthy    atomic.Bool
}

// nodeHandle is one partition cell's replicas.
type nodeHandle struct {
	id  int
	eps []*endpoint // index 0 is the leader
}

// ordered returns the replica preference order: highest applied
// replication watermark first, the leader winning ties, unhealthy
// replicas last (still tried — health data may be stale).
func (h *nodeHandle) ordered() []*endpoint {
	out := make([]*endpoint, len(h.eps))
	copy(out, h.eps)
	sort.SliceStable(out, func(i, j int) bool {
		if hi, hj := out[i].healthy.Load(), out[j].healthy.Load(); hi != hj {
			return hi
		}
		if si, sj := out[i].appliedSeq.Load(), out[j].appliedSeq.Load(); si != sj {
			return si > sj
		}
		return out[i].leader && !out[j].leader
	})
	return out
}

// Coordinator fans queries out across the cluster.
type Coordinator struct {
	cfg     CoordinatorConfig
	nodes   []*nodeHandle
	started time.Time

	metrics    *obs.Registry
	tel        *obs.Telemetry
	queries    *obs.Counter
	errors     *obs.Counter
	retries    *obs.Counter
	hedges     *obs.Counter
	nodeErrors *obs.Counter
	fanout     *obs.Counter
	pruned     *obs.Counter
	latency    *obs.Histogram

	stopHealth chan struct{}
	healthDone chan struct{}
	closeOnce  sync.Once
}

// NewCoordinator validates the map, builds one client per replica, and
// starts the background health prober.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if err := cfg.Map.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	reg := obs.NewRegistry()
	c := &Coordinator{
		cfg:        cfg,
		started:    time.Now(),
		metrics:    reg,
		tel:        obs.NewTelemetry(cfg.EventLogEntries, -1, 0, 0),
		queries:    reg.Counter("stpq_cluster_queries_total"),
		errors:     reg.Counter("stpq_cluster_query_errors_total"),
		retries:    reg.Counter("stpq_cluster_retries_total"),
		hedges:     reg.Counter("stpq_cluster_hedges_total"),
		nodeErrors: reg.Counter("stpq_cluster_node_errors_total"),
		fanout:     reg.Counter("stpq_cluster_fanout_total"),
		pruned:     reg.Counter("stpq_cluster_pruned_total"),
		latency:    reg.Histogram("stpq_cluster_latency_seconds", obs.LatencyBuckets),
		stopHealth: make(chan struct{}),
		healthDone: make(chan struct{}),
	}
	for _, spec := range cfg.Map.Nodes {
		h := &nodeHandle{id: spec.ID}
		lead := &endpoint{client: NewClient(spec.Leader, cfg.RPCTimeout), leader: true}
		lead.healthy.Store(true)
		h.eps = append(h.eps, lead)
		for _, f := range spec.Followers {
			ep := &endpoint{client: NewClient(f, cfg.RPCTimeout)}
			ep.healthy.Store(true)
			h.eps = append(h.eps, ep)
		}
		c.nodes = append(c.nodes, h)
	}
	if cfg.HealthInterval > 0 {
		go c.healthLoop()
	} else {
		close(c.healthDone)
	}
	return c, nil
}

// Close stops the health prober and drops every pooled connection.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() {
		close(c.stopHealth)
		<-c.healthDone
		for _, h := range c.nodes {
			for _, ep := range h.eps {
				ep.client.Close()
			}
		}
	})
}

// Metrics returns the coordinator's registry.
func (c *Coordinator) Metrics() *obs.Registry { return c.metrics }

// Uptime reports how long the coordinator has been running.
func (c *Coordinator) Uptime() time.Duration { return time.Since(c.started) }

// RecentQueries returns the coordinator's query event log, newest first.
func (c *Coordinator) RecentQueries(n int) []obs.QueryEvent {
	return c.tel.Events.Recent(n)
}

// healthLoop refreshes every replica's watermark and liveness.
func (c *Coordinator) healthLoop() {
	defer close(c.healthDone)
	ticker := time.NewTicker(c.cfg.HealthInterval)
	defer ticker.Stop()
	c.probeHealth()
	for {
		select {
		case <-c.stopHealth:
			return
		case <-ticker.C:
			c.probeHealth()
		}
	}
}

func (c *Coordinator) probeHealth() {
	var wg sync.WaitGroup
	for _, h := range c.nodes {
		for _, ep := range h.eps {
			wg.Add(1)
			go func(ep *endpoint) {
				defer wg.Done()
				hr, err := ep.client.Health()
				if err != nil {
					ep.healthy.Store(false)
					return
				}
				ep.healthy.Store(true)
				ep.appliedSeq.Store(hr.AppliedSeq)
			}(ep)
		}
	}
	wg.Wait()
}

// callNode runs one RPC against a node with replica failover, retries and
// hedging. The first successful reply wins; non-retryable errors fail
// immediately; retryable failures burn the retry budget with exponential
// backoff, rotating through the replica preference order.
func callNode[T any](c *Coordinator, h *nodeHandle, rpc func(*Client) (T, error)) (T, error) {
	var zero T
	eps := h.ordered()
	type attempt struct {
		val T
		err error
	}
	// Buffered for every launch this call can make, so abandoned attempts
	// never block their goroutines.
	results := make(chan attempt, c.cfg.RetryMax+4)
	launched := 0
	launch := func() {
		ep := eps[launched%len(eps)]
		launched++
		go func() {
			v, err := rpc(ep.client)
			if err != nil {
				ep.healthy.Store(false)
			}
			results <- attempt{v, err}
		}()
	}
	launch()
	outstanding := 1
	var hedge <-chan time.Time
	if c.cfg.HedgeAfter > 0 && len(eps) > 0 {
		t := time.NewTimer(c.cfg.HedgeAfter)
		defer t.Stop()
		hedge = t.C
	}
	var retry <-chan time.Time
	backoff := c.cfg.RetryBackoff
	retriesUsed := 0
	var lastErr error
	for {
		select {
		case a := <-results:
			outstanding--
			if a.err == nil {
				return a.val, nil
			}
			lastErr = a.err
			c.nodeErrors.Inc()
			if !retryable(a.err) {
				return zero, a.err
			}
			if retry == nil && retriesUsed < c.cfg.RetryMax {
				retriesUsed++
				c.retries.Inc()
				retry = time.After(backoff)
				backoff *= 2
			} else if outstanding == 0 && retry == nil {
				return zero, fmt.Errorf("cluster: node %d: %w", h.id, lastErr)
			}
		case <-retry:
			retry = nil
			launch()
			outstanding++
		case <-hedge:
			hedge = nil
			c.hedges.Inc()
			launch()
			outstanding++
		}
	}
}

// toWire lowers a public query into its canonical wire form: keyword sets
// sorted by name so one query has exactly one encoding.
func toWire(q stpq.Query) WireQuery {
	wq := WireQuery{
		K:          q.K,
		Radius:     q.Radius,
		Lambda:     q.Lambda,
		Variant:    uint8(q.Variant),
		Algorithm:  uint8(q.Algorithm),
		Similarity: uint8(q.Similarity),
		RequestID:  q.RequestID,
		Trace:      q.Trace == stpq.TraceOn,
		Recall:     q.Recall,
	}
	if q.Mode == stpq.ModeApprox {
		wq.Mode = wireModeApprox
	}
	if len(q.Keywords) > 0 {
		names := make([]string, 0, len(q.Keywords))
		for name := range q.Keywords {
			names = append(names, name)
		}
		sort.Strings(names)
		wq.Sets = make([]WireKeywords, len(names))
		for i, name := range names {
			wq.Sets[i] = WireKeywords{Name: name, Words: q.Keywords[name]}
		}
	}
	return wq
}

// resultBefore is the engine-wide result total order (score descending,
// ties by ascending id) on wire results — mirror of core.ResultBefore.
func resultBefore(a, b WireResult) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ID < b.ID
}

// mergeTopK folds one node's sorted results into the merged top-k.
func mergeTopK(acc, more []WireResult, k int) []WireResult {
	acc = append(acc, more...)
	sort.Slice(acc, func(i, j int) bool { return resultBefore(acc[i], acc[j]) })
	if len(acc) > k {
		acc = acc[:k]
	}
	return acc
}

// ClusterStats is the merged cost report of one scatter-gather query.
type ClusterStats struct {
	// Wall is the coordinator-side wall time of the whole scatter-gather.
	Wall time.Duration
	// Sum aggregates the per-node engine counters of the queried nodes.
	Sum WireStats
	// Fanout and Pruned count nodes queried / skipped by early termination.
	Fanout int
	Pruned int
	// Cached reports that every queried node answered from its result cache.
	Cached bool
}

// ClusterResponse is the outcome of one coordinated query.
type ClusterResponse struct {
	Results    []WireResult
	Stats      ClusterStats
	Generation uint64
	RequestID  string
	// NodeTraces maps node id → that node's span tree JSON, present when
	// the query requested tracing.
	NodeTraces map[int][]byte
}

// nodeCand is one node with its probed bound.
type nodeCand struct {
	h     *nodeHandle
	bound float64
}

// PlanNode is one node's entry in an explain plan.
type PlanNode struct {
	ID        int     `json:"id"`
	Bound     float64 `json:"bound"`
	Wave      int     `json:"wave"`
	Leader    string  `json:"leader"`
	Followers int     `json:"followers"`
}

// Plan probes every node's bound and returns the scatter order the
// coordinator would use, without executing the query.
func (c *Coordinator) Plan(q stpq.Query) ([]PlanNode, error) {
	cands, err := c.probeBounds(toWire(q))
	if err != nil {
		return nil, err
	}
	par := c.waveWidth(q)
	nodes := make([]PlanNode, len(cands))
	for i, cand := range cands {
		spec := c.cfg.Map.Nodes[cand.h.id]
		nodes[i] = PlanNode{
			ID:        cand.h.id,
			Bound:     cand.bound,
			Wave:      i / par,
			Leader:    spec.Leader,
			Followers: len(spec.Followers),
		}
	}
	return nodes, nil
}

// probeBounds collects every node's admissible bound (with failover) and
// sorts the scatter order: bound descending, ties by node id ascending.
func (c *Coordinator) probeBounds(wq WireQuery) ([]nodeCand, error) {
	cands := make([]nodeCand, len(c.nodes))
	errs := make([]error, len(c.nodes))
	var wg sync.WaitGroup
	for i, h := range c.nodes {
		wg.Add(1)
		go func(i int, h *nodeHandle) {
			defer wg.Done()
			reply, err := callNode(c, h, func(cl *Client) (BoundReply, error) {
				return cl.Bound(wq)
			})
			cands[i] = nodeCand{h: h, bound: reply.Bound}
			errs[i] = err
		}(i, h)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].bound != cands[j].bound {
			return cands[i].bound > cands[j].bound
		}
		return cands[i].h.id < cands[j].h.id
	})
	return cands, nil
}

// Do executes one query across the cluster: probe, sort, scatter in
// waves, merge, terminate early on the strict-inequality pruning rule.
func (c *Coordinator) Do(q stpq.Query) (*ClusterResponse, error) {
	start := time.Now()
	c.queries.Inc()
	if q.RequestID == "" {
		q.RequestID = newRequestID()
	}
	wq := toWire(q)
	resp, err := c.run(q, wq)
	elapsed := time.Since(start)
	c.recordEvent(q, resp, start, elapsed, err)
	if err != nil {
		c.errors.Inc()
		return nil, err
	}
	resp.Stats.Wall = elapsed
	c.latency.Observe(elapsed.Seconds())
	return resp, nil
}

// run is the wave loop — the network mirror of shard.Engine.run.
func (c *Coordinator) run(q stpq.Query, wq WireQuery) (*ClusterResponse, error) {
	cands, err := c.probeBounds(wq)
	if err != nil {
		return nil, err
	}
	resp := &ClusterResponse{RequestID: q.RequestID, Stats: ClusterStats{Cached: true}}
	if wq.Trace {
		resp.NodeTraces = make(map[int][]byte)
	}
	type nodeOut struct {
		id    int
		reply QueryReply
		err   error
	}
	par := c.waveWidth(q)
	queried := 0
	for next := 0; next < len(cands); {
		if len(resp.Results) >= q.K && resp.Results[q.K-1].Score > cands[next].bound {
			break // every remaining node is strictly out-scored
		}
		end := next + par
		if end > len(cands) {
			end = len(cands)
		}
		wave := make([]nodeOut, end-next)
		var wg sync.WaitGroup
		for i := range wave {
			h := cands[next+i].h
			wave[i].id = h.id
			wg.Add(1)
			go func(out *nodeOut, h *nodeHandle) {
				defer wg.Done()
				out.reply, out.err = callNode(c, h, func(cl *Client) (QueryReply, error) {
					return cl.Query(wq)
				})
			}(&wave[i], h)
		}
		wg.Wait()
		for i := range wave {
			if wave[i].err != nil {
				return nil, fmt.Errorf("cluster: query on node %d: %w", wave[i].id, wave[i].err)
			}
			r := &wave[i].reply
			resp.Results = mergeTopK(resp.Results, r.Results, q.K)
			resp.Stats.Sum.CPUNanos += r.Stats.CPUNanos
			resp.Stats.Sum.IONanos += r.Stats.IONanos
			resp.Stats.Sum.LogicalReads += r.Stats.LogicalReads
			resp.Stats.Sum.PhysicalReads += r.Stats.PhysicalReads
			resp.Stats.Sum.Combinations += r.Stats.Combinations
			resp.Stats.Sum.FeaturesPulled += r.Stats.FeaturesPulled
			resp.Stats.Sum.ObjectsScored += r.Stats.ObjectsScored
			resp.Stats.Sum.ApproxCandidates += r.Stats.ApproxCandidates
			resp.Stats.Sum.ApproxPruned += r.Stats.ApproxPruned
			resp.Stats.Sum.ApproxSkippedReads += r.Stats.ApproxSkippedReads
			resp.Stats.Cached = resp.Stats.Cached && r.Cached
			if r.Generation > resp.Generation {
				resp.Generation = r.Generation
			}
			if resp.NodeTraces != nil && r.TraceJSON != nil {
				resp.NodeTraces[wave[i].id] = r.TraceJSON
			}
		}
		queried += len(wave)
		next = end
	}
	resp.Stats.Fanout = queried
	resp.Stats.Pruned = len(cands) - queried
	c.fanout.Add(int64(queried))
	c.pruned.Add(int64(resp.Stats.Pruned))
	return resp, nil
}

// recordEvent files the merged query into the coordinator's event log and
// shape table, keyed by the same canonical shape as single-node events so
// /debug/queries on the coordinator attributes the remote work.
func (c *Coordinator) recordEvent(q stpq.Query, resp *ClusterResponse, start time.Time, elapsed time.Duration, err error) {
	key := shapeKeyOf(q)
	ev := obs.QueryEvent{
		Start:     start,
		RequestID: q.RequestID,
		Algorithm: key.Alg,
		Variant:   key.Variant,
		K:         q.K,
		Radius:    q.Radius,
		Duration:  elapsed,
		Outcome:   "ok",
	}
	if q.Mode == stpq.ModeApprox {
		ev.Mode = "approx"
	}
	if err != nil {
		ev.Outcome = "error"
		ev.Error = err.Error()
	} else {
		if q.Mode == stpq.ModeApprox {
			ev.ApproxCandidates = resp.Stats.Sum.ApproxCandidates
			ev.ApproxPruned = resp.Stats.Sum.ApproxPruned
		}
		ev.IOTime = time.Duration(resp.Stats.Sum.IONanos)
		ev.LogicalReads = resp.Stats.Sum.LogicalReads
		ev.PhysicalReads = resp.Stats.Sum.PhysicalReads
		ev.Combinations = int(resp.Stats.Sum.Combinations)
		ev.FeaturesPulled = int(resp.Stats.Sum.FeaturesPulled)
		ev.ObjectsScored = int(resp.Stats.Sum.ObjectsScored)
		ev.ShardFanout = resp.Stats.Fanout
		ev.ShardPruned = resp.Stats.Pruned
		ev.CacheHit = resp.Stats.Cached
	}
	c.tel.Record(ev, key, err == nil)
}

// shapeKeyOf is the coordinator-side canonical shape of a query — the same
// key recordEvent files costs under, so waveWidth's lookups always match.
// Auto queries key under "auto": the coordinator cannot see which algorithm
// each node's local planner resolved, but the merged cluster-level cost of
// the auto plan is exactly what its fan-out decision needs.
func shapeKeyOf(q stpq.Query) obs.ShapeKey {
	alg, variant, sim := queryEnumNames(q)
	sets := 0
	for _, kws := range q.Keywords {
		if len(kws) > 0 {
			sets++
		}
	}
	rb := q.Radius
	if q.Variant == stpq.NearestNeighbor {
		rb = 0
	}
	key := obs.ShapeKey{Alg: alg, Variant: variant, Sim: sim, K: q.K, RBucket: obs.RadiusBucket(rb), Sets: sets}
	if q.Mode == stpq.ModeApprox {
		key.Mode = "approx"
	}
	return key
}

// waveWidth is the scatter wave width for one query: the configured
// parallelism, narrowed to one node per wave once the recorded per-shape
// cost shows the query is cheap enough that a wide scatter mostly does
// work the pruning rule would have skipped. Results are unaffected — the
// strict-inequality prune is width-independent.
func (c *Coordinator) waveWidth(q stpq.Query) int {
	cost, samples := c.tel.Shapes.Cost(shapeKeyOf(q))
	p := plan.Planner{Shapes: c.tel.Shapes}
	if w := p.FanoutWidth(cost, samples >= obs.MinPredictSamples, len(c.nodes)); w > 0 && w < c.cfg.Parallelism {
		return w
	}
	return c.cfg.Parallelism
}

// newRequestID mints a request identity in the same format as the serve
// layer, so cluster request IDs read uniformly in every event log.
func newRequestID() string {
	return fmt.Sprintf("req-%016x", rand.Uint64())
}

// queryEnumNames renders a query's enums with the spelling the engine's
// own telemetry uses.
func queryEnumNames(q stpq.Query) (alg, variant, sim string) {
	switch q.Algorithm {
	case stpq.STDS:
		alg = "stds"
	case stpq.Auto:
		alg = "auto"
	default:
		alg = "stps"
	}
	switch q.Variant {
	case stpq.Influence:
		variant = "influence"
	case stpq.NearestNeighbor:
		variant = "nn"
	default:
		variant = "range"
	}
	switch q.Similarity {
	case stpq.DiceSim:
		sim = "dice"
	case stpq.CosineSim:
		sim = "cosine"
	case stpq.OverlapSim:
		sim = "overlap"
	default:
		sim = "jaccard"
	}
	return alg, variant, sim
}
