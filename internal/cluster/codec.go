// Package cluster turns the sharded engine's scatter-gather into a
// network service: a compact length-prefixed RPC protocol (query,
// upper-bound probe, WAL-segment fetch, health, info), a per-shard node
// server wrapping a serve.Service, a coordinator that fans queries out
// wave-by-wave sorted by remote upper bound with strict-inequality early
// termination — preserving byte-identical tie-break order versus the
// single-process engine — and a log-shipping follower that replays the
// leader's sealed WAL segments through the crash-recovery path.
//
// The partition map (map.go) reuses shard.PartitionMeta, the JSON shape of
// the shards.json manifest, so the same cell function that splits a
// sharded engine splits a cluster. See DESIGN.md §13.
package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Message types. Requests have the high bit clear; each reply is its
// request type with the high bit set; errors answer any request.
const (
	msgQuery   byte = 0x01
	msgBound   byte = 0x02
	msgSegment byte = 0x03
	msgHealth  byte = 0x04
	msgInfo    byte = 0x05

	replyBit byte = 0x80
	msgError byte = 0xff
)

// maxFrame bounds one RPC frame (type byte + payload). WAL segments cap at
// Config.WALSegmentBytes (default 4 MiB), so 64 MiB leaves ample headroom
// while rejecting garbage length prefixes before allocation.
const maxFrame = 64 << 20

// Error codes carried by msgError replies. Everything except errInvalid is
// retryable: the request may succeed elsewhere or later.
const (
	errInvalid     uint8 = 1 // malformed or invalid request: fail fast
	errOverloaded  uint8 = 2 // admission queue full
	errUnavailable uint8 = 3 // draining, not built, deadline, no WAL
	errInternal    uint8 = 4 // execution error
)

// RPCError is a structured error reply from a node.
type RPCError struct {
	Code uint8
	Msg  string
}

// Error implements the error interface.
func (e *RPCError) Error() string {
	return fmt.Sprintf("cluster: rpc error %d: %s", e.Code, e.Msg)
}

// Retryable reports whether another attempt (same or different replica)
// can succeed.
func (e *RPCError) Retryable() bool { return e.Code != errInvalid }

// ErrBadFrame wraps every framing and decoding error.
var ErrBadFrame = errors.New("cluster: bad frame")

// writeFrame writes one [u32 len][u8 type][payload] frame.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload)+1 > maxFrame {
		return fmt.Errorf("%w: frame of %d bytes exceeds limit", ErrBadFrame, len(payload)+1)
	}
	hdr := make([]byte, 5, 5+len(payload))
	binary.LittleEndian.PutUint32(hdr, uint32(len(payload)+1))
	hdr[4] = typ
	_, err := w.Write(append(hdr, payload...))
	return err
}

// readFrame reads one frame, returning its type and payload.
func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 1 || n > maxFrame {
		return 0, nil, fmt.Errorf("%w: length %d", ErrBadFrame, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return body[0], body[1:], nil
}

// enc is an append-only encoder for RPC payloads: uvarints for counts and
// ids, fixed 8-byte little-endian for floats, length-prefixed strings.
type enc struct{ b []byte }

func (e *enc) u64(v uint64)  { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) i64(v int64)   { e.b = binary.AppendVarint(e.b, v) }
func (e *enc) u8(v uint8)    { e.b = append(e.b, v) }
func (e *enc) bool(v bool)   { e.b = append(e.b, b2u(v)) }
func (e *enc) f64(v float64) { e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(v)) }
func (e *enc) str(s string) {
	e.u64(uint64(len(s)))
	e.b = append(e.b, s...)
}
func (e *enc) bytes(p []byte) {
	e.u64(uint64(len(p)))
	e.b = append(e.b, p...)
}

func b2u(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// dec decodes RPC payloads; the first error sticks.
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated payload", ErrBadFrame)
	}
}

func (d *dec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) i64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) u8() uint8 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *dec) bool() bool { return d.u8() != 0 }

func (d *dec) f64() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}

func (d *dec) str() string { return string(d.raw()) }

func (d *dec) bytes() []byte {
	raw := d.raw()
	if raw == nil {
		return nil
	}
	out := make([]byte, len(raw))
	copy(out, raw)
	return out
}

// raw returns a length-prefixed slice aliasing the payload buffer.
func (d *dec) raw() []byte {
	n := d.u64()
	if d.err != nil {
		return nil
	}
	if uint64(len(d.b)) < n {
		d.fail()
		return nil
	}
	v := d.b[:n]
	d.b = d.b[n:]
	return v
}

// done errors unless the payload was consumed exactly.
func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(d.b))
	}
	return nil
}

// WireKeywords is one feature set's query keywords. Sets travel as a
// name-sorted slice — not a map — so one query has one encoding.
type WireKeywords struct {
	Name  string
	Words []string
}

// WireQuery is the query and bound-probe request payload: the full public
// query surface plus the request identity and trace flag, so
// /debug/queries on every node attributes remote work to the originating
// request (enum values are the stpq constants).
type WireQuery struct {
	K          int
	Radius     float64
	Lambda     float64
	Variant    uint8
	Algorithm  uint8
	Similarity uint8
	RequestID  string
	Trace      bool
	// Mode is 0 for exact, 1 for the approx fast tier; Recall is the approx
	// recall target (0 takes the node's default).
	Mode   uint8
	Recall float64
	Sets   []WireKeywords
}

// Wire values of WireQuery.Mode.
const (
	wireModeExact  uint8 = 0
	wireModeApprox uint8 = 1
)

func encodeQuery(q WireQuery) []byte {
	var e enc
	e.u64(uint64(q.K))
	e.f64(q.Radius)
	e.f64(q.Lambda)
	e.u8(q.Variant)
	e.u8(q.Algorithm)
	e.u8(q.Similarity)
	e.str(q.RequestID)
	e.bool(q.Trace)
	e.u8(q.Mode)
	e.f64(q.Recall)
	e.u64(uint64(len(q.Sets)))
	for _, s := range q.Sets {
		e.str(s.Name)
		e.u64(uint64(len(s.Words)))
		for _, w := range s.Words {
			e.str(w)
		}
	}
	return e.b
}

func decodeQuery(p []byte) (WireQuery, error) {
	d := dec{b: p}
	q := WireQuery{
		K:          int(d.u64()),
		Radius:     d.f64(),
		Lambda:     d.f64(),
		Variant:    d.u8(),
		Algorithm:  d.u8(),
		Similarity: d.u8(),
		RequestID:  d.str(),
		Trace:      d.bool(),
		Mode:       d.u8(),
		Recall:     d.f64(),
	}
	n := d.u64()
	if n > uint64(len(p)) { // each set costs at least one byte on the wire
		d.fail()
	}
	if d.err == nil && n > 0 {
		q.Sets = make([]WireKeywords, 0, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			s := WireKeywords{Name: d.str()}
			m := d.u64()
			if m > uint64(len(p)) {
				d.fail()
				break
			}
			if m > 0 {
				s.Words = make([]string, 0, m)
				for j := uint64(0); j < m && d.err == nil; j++ {
					s.Words = append(s.Words, d.str())
				}
			}
			q.Sets = append(q.Sets, s)
		}
	}
	return q, d.done()
}

// WireResult is one ranked object in a query reply.
type WireResult struct {
	ID    int64
	X, Y  float64
	Score float64
}

// WireStats is the per-node cost breakdown in a query reply. Durations are
// nanoseconds.
type WireStats struct {
	CPUNanos       int64
	IONanos        int64
	LogicalReads   int64
	PhysicalReads  int64
	Combinations   int64
	FeaturesPulled int64
	ObjectsScored  int64
	// Approx* carry the node's fast-tier pruning counters (zero on exact
	// queries), so the coordinator's merged stats keep the attribution.
	ApproxCandidates   int64
	ApproxPruned       int64
	ApproxSkippedReads int64
}

// QueryReply answers msgQuery.
type QueryReply struct {
	Results    []WireResult
	Stats      WireStats
	Generation uint64
	Cached     bool
	// TraceJSON is the node's span tree (marshaled stpq.Span), present only
	// when the query asked for tracing.
	TraceJSON []byte
}

func encodeQueryReply(r QueryReply) []byte {
	var e enc
	e.u64(uint64(len(r.Results)))
	for _, res := range r.Results {
		e.i64(res.ID)
		e.f64(res.X)
		e.f64(res.Y)
		e.f64(res.Score)
	}
	e.i64(r.Stats.CPUNanos)
	e.i64(r.Stats.IONanos)
	e.i64(r.Stats.LogicalReads)
	e.i64(r.Stats.PhysicalReads)
	e.i64(r.Stats.Combinations)
	e.i64(r.Stats.FeaturesPulled)
	e.i64(r.Stats.ObjectsScored)
	e.i64(r.Stats.ApproxCandidates)
	e.i64(r.Stats.ApproxPruned)
	e.i64(r.Stats.ApproxSkippedReads)
	e.u64(r.Generation)
	e.bool(r.Cached)
	e.bytes(r.TraceJSON)
	return e.b
}

func decodeQueryReply(p []byte) (QueryReply, error) {
	d := dec{b: p}
	n := d.u64()
	if n > uint64(len(p)) {
		d.fail()
	}
	var r QueryReply
	if d.err == nil && n > 0 {
		r.Results = make([]WireResult, 0, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			r.Results = append(r.Results, WireResult{
				ID: d.i64(), X: d.f64(), Y: d.f64(), Score: d.f64(),
			})
		}
	}
	r.Stats = WireStats{
		CPUNanos:           d.i64(),
		IONanos:            d.i64(),
		LogicalReads:       d.i64(),
		PhysicalReads:      d.i64(),
		Combinations:       d.i64(),
		FeaturesPulled:     d.i64(),
		ObjectsScored:      d.i64(),
		ApproxCandidates:   d.i64(),
		ApproxPruned:       d.i64(),
		ApproxSkippedReads: d.i64(),
	}
	r.Generation = d.u64()
	r.Cached = d.bool()
	r.TraceJSON = d.bytes()
	if len(r.TraceJSON) == 0 {
		r.TraceJSON = nil
	}
	return r, d.done()
}

// BoundReply answers msgBound: an admissible upper bound on the node's
// best possible score for the probed query, plus freshness markers.
type BoundReply struct {
	Bound      float64
	AppliedSeq uint64
	Generation uint64
}

func encodeBoundReply(r BoundReply) []byte {
	var e enc
	e.f64(r.Bound)
	e.u64(r.AppliedSeq)
	e.u64(r.Generation)
	return e.b
}

func decodeBoundReply(p []byte) (BoundReply, error) {
	d := dec{b: p}
	r := BoundReply{Bound: d.f64(), AppliedSeq: d.u64(), Generation: d.u64()}
	return r, d.done()
}

// SegmentRequest asks the leader for the oldest sealed WAL segment holding
// records at or after From.
type SegmentRequest struct {
	From uint64
}

func encodeSegmentRequest(r SegmentRequest) []byte {
	var e enc
	e.u64(r.From)
	return e.b
}

func decodeSegmentRequest(p []byte) (SegmentRequest, error) {
	d := dec{b: p}
	r := SegmentRequest{From: d.u64()}
	return r, d.done()
}

// SegmentReply carries one whole sealed segment (FirstSeq 0 and empty Data
// when the follower has caught up to the active segment).
type SegmentReply struct {
	FirstSeq uint64
	Data     []byte
}

func encodeSegmentReply(r SegmentReply) []byte {
	var e enc
	e.u64(r.FirstSeq)
	e.bytes(r.Data)
	return e.b
}

func decodeSegmentReply(p []byte) (SegmentReply, error) {
	d := dec{b: p}
	r := SegmentReply{FirstSeq: d.u64(), Data: d.bytes()}
	if len(r.Data) == 0 {
		r.Data = nil
	}
	return r, d.done()
}

// HealthReply answers msgHealth: liveness plus the replication watermark
// the coordinator's lag-aware routing reads.
type HealthReply struct {
	NodeID     int
	AppliedSeq uint64
	Objects    int
	Generation uint64
}

func encodeHealthReply(r HealthReply) []byte {
	var e enc
	e.i64(int64(r.NodeID))
	e.u64(r.AppliedSeq)
	e.u64(uint64(r.Objects))
	e.u64(r.Generation)
	return e.b
}

func decodeHealthReply(p []byte) (HealthReply, error) {
	d := dec{b: p}
	r := HealthReply{
		NodeID:     int(d.i64()),
		AppliedSeq: d.u64(),
		Objects:    int(d.u64()),
		Generation: d.u64(),
	}
	return r, d.done()
}

func encodeError(code uint8, msg string) []byte {
	var e enc
	e.u8(code)
	e.str(msg)
	return e.b
}

func decodeError(p []byte) error {
	d := dec{b: p}
	code := d.u8()
	msg := d.str()
	if err := d.done(); err != nil {
		return err
	}
	return &RPCError{Code: code, Msg: msg}
}
