package cluster

// map.go is the cluster partition map: the serializable description of
// which cell of the spatial partition lives on which node, and who leads
// and follows each cell. The partition section is shard.PartitionMeta —
// JSON-identical to the "partition" section of a sharded engine's
// shards.json manifest — so the exact cell function that splits a sharded
// engine splits the cluster, and any process holding the map assigns any
// point to the same node.

import (
	"encoding/json"
	"fmt"
	"os"

	"stpq"
	"stpq/internal/geo"
	"stpq/internal/shard"
)

// MapVersion is the current partition-map format version.
const MapVersion = 1

// NodeSpec names the endpoints serving one partition cell.
type NodeSpec struct {
	// ID is the cell id the node serves (0 ≤ ID < Partition.Cells).
	ID int `json:"id"`
	// Leader is the RPC endpoint ("host:port") of the cell's writable
	// leader — the only endpoint whose WAL is the cell's log of record.
	Leader string `json:"leader"`
	// Followers are read replicas fed by WAL log shipping from the leader,
	// usable for query fan-out and failover.
	Followers []string `json:"followers,omitempty"`
}

// Map is the cluster partition map a coordinator loads at startup.
type Map struct {
	Version   int                 `json:"version"`
	Partition shard.PartitionMeta `json:"partition"`
	Nodes     []NodeSpec          `json:"nodes"`
}

// Validate checks structural invariants: version, one node per cell in
// cell order, and a leader endpoint on every node.
func (m Map) Validate() error {
	if m.Version != MapVersion {
		return fmt.Errorf("cluster: unsupported map version %d", m.Version)
	}
	if m.Partition.Cells < 1 {
		return fmt.Errorf("cluster: partition has %d cells", m.Partition.Cells)
	}
	if len(m.Nodes) != m.Partition.Cells {
		return fmt.Errorf("cluster: %d nodes for %d partition cells", len(m.Nodes), m.Partition.Cells)
	}
	for i, n := range m.Nodes {
		if n.ID != i {
			return fmt.Errorf("cluster: node %d has id %d (must be listed in cell order)", i, n.ID)
		}
		if n.Leader == "" {
			return fmt.Errorf("cluster: node %d has no leader endpoint", i)
		}
	}
	return nil
}

// LoadMap reads and validates a partition map file.
func LoadMap(path string) (Map, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Map{}, fmt.Errorf("cluster: load map: %w", err)
	}
	var m Map
	if err := json.Unmarshal(data, &m); err != nil {
		return Map{}, fmt.Errorf("cluster: parse map %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return Map{}, err
	}
	return m, nil
}

// Save writes the map as indented JSON.
func (m Map) Save(path string) error {
	if err := m.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("cluster: save map: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// BuildMap derives a partition over the dataset's objects and assigns the
// given leader endpoints one per cell (followers start empty; edit the
// file to add them). Cells = len(leaders). The Hilbert strategy guarantees
// every cell receives objects; the grid strategy may leave border cells
// empty under skew — such nodes serve zero objects but stay correct.
func BuildMap(objects []stpq.Object, leaders []string, strategy shard.Strategy) (Map, error) {
	if len(leaders) < 1 {
		return Map{}, fmt.Errorf("cluster: need at least one leader endpoint")
	}
	points := make([]geo.Point, len(objects))
	for i, o := range objects {
		points[i] = geo.Point{X: o.X, Y: o.Y}
	}
	meta, err := shard.BuildPartition(points, len(leaders), strategy)
	if err != nil {
		return Map{}, err
	}
	m := Map{Version: MapVersion, Partition: meta, Nodes: make([]NodeSpec, len(leaders))}
	for i, ep := range leaders {
		m.Nodes[i] = NodeSpec{ID: i, Leader: ep}
	}
	return m, nil
}

// PartitionObjects returns the subset of objects assigned to cell under
// the map's partition, preserving input order — the slice a node loads as
// its local dataset. Feature sets are NOT partitioned: every node indexes
// every feature set in full, which is what makes per-node scores exact
// global scores (see internal/shard's package comment).
func (m Map) PartitionObjects(objects []stpq.Object, cell int) []stpq.Object {
	var out []stpq.Object
	for _, o := range objects {
		if m.Partition.Assign(geo.Point{X: o.X, Y: o.Y}) == cell {
			out = append(out, o)
		}
	}
	return out
}
