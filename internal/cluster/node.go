package cluster

// node.go is the per-shard RPC server: stpqd in -cluster-node mode wraps
// its serve.Service (worker pool, admission control, result cache) and its
// DB in a Node and serves the cluster protocol over TCP. One goroutine per
// connection, strict request/response (no pipelining): the protocol's
// concurrency comes from the coordinator opening one connection per
// in-flight call, and the node's from the serve worker pool behind Do.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"stpq"
	"stpq/internal/serve"
)

// NodeConfig configures a cluster node server.
type NodeConfig struct {
	// NodeID is the node's cell id in the partition map.
	NodeID int
	// Service executes queries (its worker pool is the node's concurrency
	// limit; its cache and request-ID handling apply unchanged).
	Service *serve.Service
	// DB answers bound probes, WAL segment fetches and health.
	DB *stpq.DB
	// QueryDelay, when positive, sleeps before executing every query — the
	// fault-injection hook the hedging tests use.
	QueryDelay time.Duration
	// Logf, when non-nil, receives connection-level error lines.
	Logf func(format string, args ...any)
}

// Node serves the cluster RPC protocol.
type Node struct {
	cfg NodeConfig
	lis net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	served atomic.Int64
}

// NewNode wraps a service + DB pair. Call Start to begin serving.
func NewNode(cfg NodeConfig) *Node {
	return &Node{cfg: cfg, conns: make(map[net.Conn]struct{})}
}

// Start listens on addr (e.g. "127.0.0.1:0") and serves connections until
// Close. It returns the bound address.
func (n *Node) Start(addr string) (net.Addr, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: node %d listen: %w", n.cfg.NodeID, err)
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		lis.Close()
		return nil, errors.New("cluster: node already closed")
	}
	n.lis = lis
	n.mu.Unlock()
	n.wg.Add(1)
	go n.acceptLoop(lis)
	return lis.Addr(), nil
}

// Addr returns the listener address (nil before Start).
func (n *Node) Addr() net.Addr {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.lis == nil {
		return nil
	}
	return n.lis.Addr()
}

// Served returns the number of RPC requests handled (tests).
func (n *Node) Served() int64 { return n.served.Load() }

// Close stops the listener, closes every live connection and waits for
// the handlers to drain. Safe to call twice.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		n.wg.Wait()
		return
	}
	n.closed = true
	if n.lis != nil {
		n.lis.Close()
	}
	for c := range n.conns {
		c.Close()
	}
	n.mu.Unlock()
	n.wg.Wait()
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

func (n *Node) acceptLoop(lis net.Listener) {
	defer n.wg.Done()
	for {
		conn, err := lis.Accept()
		if err != nil {
			return // Close, or a fatal listener error
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			conn.Close()
			return
		}
		n.conns[conn] = struct{}{}
		n.wg.Add(1)
		n.mu.Unlock()
		go n.serveConn(conn)
	}
}

func (n *Node) serveConn(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		conn.Close()
		n.mu.Lock()
		delete(n.conns, conn)
		n.mu.Unlock()
	}()
	for {
		typ, payload, err := readFrame(conn)
		if err != nil {
			return // EOF, peer reset, or Close
		}
		n.served.Add(1)
		replyType, reply := n.handle(typ, payload)
		if err := writeFrame(conn, replyType, reply); err != nil {
			n.logf("cluster: node %d: write reply: %v", n.cfg.NodeID, err)
			return
		}
	}
}

// handle dispatches one request and returns the reply frame.
func (n *Node) handle(typ byte, payload []byte) (byte, []byte) {
	switch typ {
	case msgQuery:
		return n.handleQuery(payload)
	case msgBound:
		return n.handleBound(payload)
	case msgSegment:
		return n.handleSegment(payload)
	case msgHealth:
		return n.handleHealth()
	case msgInfo:
		return n.handleInfo()
	default:
		return msgError, encodeError(errInvalid, fmt.Sprintf("unknown message type 0x%02x", typ))
	}
}

// toQuery raises a wire query into a public query.
func toQuery(wq WireQuery) stpq.Query {
	q := stpq.Query{
		K:          wq.K,
		Radius:     wq.Radius,
		Lambda:     wq.Lambda,
		Variant:    stpq.Variant(wq.Variant),
		Algorithm:  stpq.Algorithm(wq.Algorithm),
		Similarity: stpq.Similarity(wq.Similarity),
		RequestID:  wq.RequestID,
		Recall:     wq.Recall,
	}
	if wq.Mode == wireModeApprox {
		q.Mode = stpq.ModeApprox
	}
	if wq.Trace {
		q.Trace = stpq.TraceOn
	} else {
		// The coordinator owns the sampling decision; nodes must not add
		// their own sampled traces to unsampled queries.
		q.Trace = stpq.TraceOff
	}
	if len(wq.Sets) > 0 {
		q.Keywords = make(map[string][]string, len(wq.Sets))
		for _, s := range wq.Sets {
			q.Keywords[s.Name] = s.Words
		}
	}
	return q
}

// errReply maps execution errors onto protocol error codes.
func errReply(err error) (byte, []byte) {
	code := errInternal
	switch {
	case errors.Is(err, stpq.ErrInvalidQuery), errors.Is(err, ErrBadFrame):
		code = errInvalid
	case errors.Is(err, serve.ErrOverloaded):
		code = errOverloaded
	case errors.Is(err, serve.ErrClosed), errors.Is(err, serve.ErrDeadline),
		errors.Is(err, stpq.ErrNotBuilt), errors.Is(err, stpq.ErrNoWAL):
		code = errUnavailable
	}
	return msgError, encodeError(code, err.Error())
}

func (n *Node) handleQuery(payload []byte) (byte, []byte) {
	wq, err := decodeQuery(payload)
	if err != nil {
		return errReply(err)
	}
	if n.cfg.QueryDelay > 0 {
		time.Sleep(n.cfg.QueryDelay)
	}
	resp, err := n.cfg.Service.Do(context.Background(), toQuery(wq))
	if err != nil {
		return errReply(err)
	}
	reply := QueryReply{
		Results:    make([]WireResult, len(resp.Results)),
		Generation: resp.Generation,
		Cached:     resp.Cached,
		Stats: WireStats{
			CPUNanos:           int64(resp.Stats.CPUTime),
			IONanos:            int64(resp.Stats.IOTime),
			LogicalReads:       resp.Stats.LogicalReads,
			PhysicalReads:      resp.Stats.PhysicalReads,
			Combinations:       int64(resp.Stats.Combinations),
			FeaturesPulled:     int64(resp.Stats.FeaturesPulled),
			ObjectsScored:      int64(resp.Stats.ObjectsScored),
			ApproxCandidates:   resp.Stats.ApproxCandidates,
			ApproxPruned:       resp.Stats.ApproxPruned,
			ApproxSkippedReads: resp.Stats.ApproxSkippedReads,
		},
	}
	for i, r := range resp.Results {
		reply.Results[i] = WireResult{ID: r.ID, X: r.X, Y: r.Y, Score: r.Score}
	}
	if wq.Trace && resp.Stats.Trace != nil {
		if data, err := json.Marshal(resp.Stats.Trace); err == nil {
			reply.TraceJSON = data
		}
	}
	return msgQuery | replyBit, encodeQueryReply(reply)
}

func (n *Node) handleBound(payload []byte) (byte, []byte) {
	wq, err := decodeQuery(payload)
	if err != nil {
		return errReply(err)
	}
	snap, err := n.cfg.DB.Snapshot()
	if err != nil {
		return errReply(err)
	}
	b, err := snap.UpperBound(toQuery(wq))
	if err != nil {
		return errReply(err)
	}
	return msgBound | replyBit, encodeBoundReply(BoundReply{
		Bound:      b,
		AppliedSeq: n.cfg.DB.WALSeq(),
		Generation: snap.Generation(),
	})
}

func (n *Node) handleSegment(payload []byte) (byte, []byte) {
	req, err := decodeSegmentRequest(payload)
	if err != nil {
		return errReply(err)
	}
	first, data, err := n.cfg.DB.WALSealedSegment(req.From)
	if err != nil {
		return errReply(err)
	}
	return msgSegment | replyBit, encodeSegmentReply(SegmentReply{FirstSeq: first, Data: data})
}

func (n *Node) handleHealth() (byte, []byte) {
	snap, err := n.cfg.DB.Snapshot()
	if err != nil {
		return errReply(err)
	}
	return msgHealth | replyBit, encodeHealthReply(HealthReply{
		NodeID:     n.cfg.NodeID,
		AppliedSeq: n.cfg.DB.WALSeq(),
		Objects:    snap.NumObjects(),
		Generation: snap.Generation(),
	})
}

func (n *Node) handleInfo() (byte, []byte) {
	info, err := n.cfg.Service.InfoSnapshot()
	if err != nil {
		return errReply(err)
	}
	data, err := json.Marshal(info)
	if err != nil {
		return errReply(err)
	}
	return msgInfo | replyBit, data
}
