package cluster

// client.go is the RPC client: one Client per endpoint, pooling idle TCP
// connections. Calls are strict request/response; concurrency comes from
// the caller issuing calls from multiple goroutines, each drawing its own
// connection from the pool.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"stpq/internal/serve"
)

// DefaultRPCTimeout bounds one RPC (dial + write + read) when the caller
// does not configure one.
const DefaultRPCTimeout = 10 * time.Second

// Client issues cluster RPCs against one endpoint.
type Client struct {
	addr    string
	timeout time.Duration

	mu     sync.Mutex
	idle   []net.Conn
	closed bool
}

// NewClient creates a client for addr ("host:port"). timeout bounds each
// call end-to-end; 0 uses DefaultRPCTimeout.
func NewClient(addr string, timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = DefaultRPCTimeout
	}
	return &Client{addr: addr, timeout: timeout}
}

// Addr returns the endpoint this client dials.
func (c *Client) Addr() string { return c.addr }

// Close drops every idle connection; in-flight calls finish on their own
// connections.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, conn := range c.idle {
		conn.Close()
	}
	c.idle = nil
}

// get draws an idle connection or dials a fresh one.
func (c *Client) get() (net.Conn, error) {
	c.mu.Lock()
	if n := len(c.idle); n > 0 {
		conn := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return conn, nil
	}
	c.mu.Unlock()
	return net.DialTimeout("tcp", c.addr, c.timeout)
}

// put returns a healthy connection to the pool.
func (c *Client) put(conn net.Conn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || len(c.idle) >= 8 {
		conn.Close()
		return
	}
	c.idle = append(c.idle, conn)
}

// call performs one RPC round trip. Transport errors close the connection
// (the pool self-heals by redialing); protocol error replies keep it.
func (c *Client) call(reqType byte, payload []byte) ([]byte, error) {
	conn, err := c.get()
	if err != nil {
		return nil, fmt.Errorf("cluster: dial %s: %w", c.addr, err)
	}
	deadline := time.Now().Add(c.timeout)
	if err := conn.SetDeadline(deadline); err != nil {
		conn.Close()
		return nil, err
	}
	if err := writeFrame(conn, reqType, payload); err != nil {
		conn.Close()
		return nil, fmt.Errorf("cluster: write to %s: %w", c.addr, err)
	}
	typ, reply, err := readFrame(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("cluster: read from %s: %w", c.addr, err)
	}
	c.put(conn)
	switch typ {
	case reqType | replyBit:
		return reply, nil
	case msgError:
		return nil, decodeError(reply)
	default:
		return nil, fmt.Errorf("%w: reply type 0x%02x to request 0x%02x", ErrBadFrame, typ, reqType)
	}
}

// Query executes one top-k query on the node.
func (c *Client) Query(q WireQuery) (QueryReply, error) {
	reply, err := c.call(msgQuery, encodeQuery(q))
	if err != nil {
		return QueryReply{}, err
	}
	return decodeQueryReply(reply)
}

// Bound probes the node's admissible upper bound for the query.
func (c *Client) Bound(q WireQuery) (BoundReply, error) {
	reply, err := c.call(msgBound, encodeQuery(q))
	if err != nil {
		return BoundReply{}, err
	}
	return decodeBoundReply(reply)
}

// Segment fetches the oldest sealed WAL segment with records ≥ from.
func (c *Client) Segment(from uint64) (SegmentReply, error) {
	reply, err := c.call(msgSegment, encodeSegmentRequest(SegmentRequest{From: from}))
	if err != nil {
		return SegmentReply{}, err
	}
	return decodeSegmentReply(reply)
}

// Health reads the node's liveness and replication watermark.
func (c *Client) Health() (HealthReply, error) {
	reply, err := c.call(msgHealth, nil)
	if err != nil {
		return HealthReply{}, err
	}
	return decodeHealthReply(reply)
}

// Info reads the node's dataset description (the /info payload).
func (c *Client) Info() (serve.Info, error) {
	reply, err := c.call(msgInfo, nil)
	if err != nil {
		return serve.Info{}, err
	}
	var info serve.Info
	if err := json.Unmarshal(reply, &info); err != nil {
		return serve.Info{}, fmt.Errorf("cluster: info from %s: %w", c.addr, err)
	}
	return info, nil
}

// retryable reports whether an attempt may succeed on retry or on another
// replica: transport errors always, protocol errors unless invalid.
func retryable(err error) bool {
	var rpc *RPCError
	if errors.As(err, &rpc) {
		return rpc.Retryable()
	}
	return true
}
