package cluster

// http.go is the coordinator's HTTP front end — wire-compatible with a
// single stpqd's API so clients, load generators and dashboards point at
// a coordinator unchanged:
//
//	POST /query    serve.QueryRequest in, serve.QueryResponse out (plus
//	               node_traces when tracing); explain=true returns the
//	               scatter plan (per-node bounds and wave assignment)
//	GET  /healthz  liveness
//	GET  /readyz   readiness: 503 until every node answers health probes
//	GET  /metrics  coordinator scatter-gather metrics (Prometheus text)
//	GET  /info     aggregate dataset shape (objects summed across nodes)
//	GET  /debug/queries  coordinator query event log (?n= limits)
//
// X-Request-Id is honored inbound, stamped outbound, and propagated over
// the cluster RPC to every node the query touches, so a node's
// /debug/queries attributes its shard of the work to the same request.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"stpq"
	"stpq/internal/serve"
)

// Handler returns the coordinator's HTTP mux.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", c.handleQuery)
	mux.HandleFunc("/healthz", c.handleHealthz)
	mux.HandleFunc("/readyz", c.handleReadyz)
	mux.HandleFunc("/metrics", c.handleMetrics)
	mux.HandleFunc("/info", c.handleInfo)
	mux.HandleFunc("/debug/queries", c.handleDebugQueries)
	return mux
}

// clusterQueryResponse is serve's response plus the per-node span trees
// of a traced scatter-gather.
type clusterQueryResponse struct {
	serve.QueryResponse
	NodeTraces map[int]json.RawMessage `json:"node_traces,omitempty"`
}

func (c *Coordinator) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req serve.QueryRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "malformed request: "+err.Error())
		return
	}
	q, err := req.Query()
	if err != nil {
		httpError(w, statusOf(err), err.Error())
		return
	}
	q.RequestID = r.Header.Get("X-Request-Id")
	if q.RequestID == "" {
		q.RequestID = newRequestID()
	}
	w.Header().Set("X-Request-Id", q.RequestID)
	if req.Explain {
		plan, err := c.Plan(q)
		if err != nil {
			httpError(w, statusOf(err), err.Error())
			return
		}
		writeJSON(w, http.StatusOK, struct {
			RequestID   string     `json:"request_id"`
			Parallelism int        `json:"parallelism"`
			Plan        []PlanNode `json:"plan"`
		}{q.RequestID, c.cfg.Parallelism, plan})
		return
	}
	start := time.Now()
	resp, err := c.Do(q)
	if err != nil {
		httpError(w, statusOf(err), err.Error())
		return
	}
	out := clusterQueryResponse{
		QueryResponse: serve.QueryResponse{
			RequestID:  resp.RequestID,
			Results:    make([]serve.ResultJSON, len(resp.Results)),
			Cached:     resp.Stats.Cached,
			Generation: resp.Generation,
			ElapsedUS:  time.Since(start).Microseconds(),
			Stats: serve.StatsJSON{
				CPUMicros:      resp.Stats.Sum.CPUNanos / 1e3,
				IOMicros:       resp.Stats.Sum.IONanos / 1e3,
				TotalMicros:    (resp.Stats.Sum.CPUNanos + resp.Stats.Sum.IONanos) / 1e3,
				LogicalReads:   resp.Stats.Sum.LogicalReads,
				PhysicalReads:  resp.Stats.Sum.PhysicalReads,
				Combinations:   int(resp.Stats.Sum.Combinations),
				FeaturesPulled: int(resp.Stats.Sum.FeaturesPulled),
				ObjectsScored:  int(resp.Stats.Sum.ObjectsScored),
				ShardFanout:    resp.Stats.Fanout,
				ShardPruned:    resp.Stats.Pruned,
			},
		},
	}
	for i, res := range resp.Results {
		out.Results[i] = serve.ResultJSON{ID: res.ID, X: res.X, Y: res.Y, Score: res.Score}
	}
	if len(resp.NodeTraces) > 0 {
		out.NodeTraces = make(map[int]json.RawMessage, len(resp.NodeTraces))
		for id, data := range resp.NodeTraces {
			out.NodeTraces[id] = json.RawMessage(data)
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// statusOf maps coordinator errors onto HTTP status codes: validation →
// 400, node overload → 429, everything else (node down, gap, transport)
// → 502 since the failure is downstream of the coordinator.
func statusOf(err error) int {
	var rpc *RPCError
	if errors.As(err, &rpc) {
		switch rpc.Code {
		case errInvalid:
			return http.StatusBadRequest
		case errOverloaded:
			return http.StatusTooManyRequests
		}
		return http.StatusBadGateway
	}
	if errors.Is(err, stpq.ErrInvalidQuery) {
		return http.StatusBadRequest
	}
	return http.StatusBadGateway
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz answers 200 only when every partition cell has at least
// one replica passing health probes.
func (c *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	for _, h := range c.nodes {
		ok := false
		for _, ep := range h.eps {
			if ep.healthy.Load() {
				ok = true
				break
			}
		}
		if !ok {
			httpError(w, http.StatusServiceUnavailable,
				fmt.Sprintf("node %d has no healthy replica", h.id))
			return
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = c.metrics.Snapshot().WritePrometheus(w)
}

// handleInfo aggregates the nodes' /info payloads: objects sum across
// cells; feature sets and keywords come from any one node (features are
// replicated in full everywhere); generation is the cluster maximum.
func (c *Coordinator) handleInfo(w http.ResponseWriter, r *http.Request) {
	agg := serve.Info{Shards: len(c.nodes)}
	for i, h := range c.nodes {
		info, err := callNode(c, h, func(cl *Client) (serve.Info, error) {
			return cl.Info()
		})
		if err != nil {
			httpError(w, statusOf(err), fmt.Sprintf("info from node %d: %v", h.id, err))
			return
		}
		agg.Objects += info.Objects
		if info.Generation > agg.Generation {
			agg.Generation = info.Generation
		}
		if i == 0 {
			agg.FeatureSets = info.FeatureSets
			agg.Keywords = info.Keywords
			agg.Revision = info.Revision
			agg.GoVersion = info.GoVersion
		}
	}
	agg.UptimeSeconds = c.Uptime().Seconds()
	writeJSON(w, http.StatusOK, agg)
}

// eventJSON is the coordinator's query event in the same JSON shape as a
// node's /debug/queries entries.
type eventJSON struct {
	Seq            uint64        `json:"seq"`
	Start          time.Time     `json:"start"`
	RequestID      string        `json:"request_id,omitempty"`
	Shape          string        `json:"shape"`
	Algorithm      string        `json:"algorithm"`
	Variant        string        `json:"variant"`
	K              int           `json:"k"`
	Radius         float64       `json:"radius,omitempty"`
	Duration       time.Duration `json:"duration_ns"`
	IOTime         time.Duration `json:"io_ns"`
	LogicalReads   int64         `json:"logical_reads"`
	PhysicalReads  int64         `json:"physical_reads"`
	Combinations   int           `json:"combinations"`
	FeaturesPulled int           `json:"features_pulled"`
	ObjectsScored  int           `json:"objects_scored"`
	ShardFanout    int           `json:"shard_fanout,omitempty"`
	ShardPruned    int           `json:"shard_pruned,omitempty"`
	CacheHit       bool          `json:"cache_hit,omitempty"`
	Outcome        string        `json:"outcome"`
	Error          string        `json:"error,omitempty"`
}

func (c *Coordinator) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	n, err := strconv.Atoi(r.URL.Query().Get("n"))
	if err != nil || n < 0 {
		n = 0
	}
	evs := c.RecentQueries(n)
	out := make([]eventJSON, len(evs))
	for i, ev := range evs {
		out[i] = eventJSON{
			Seq:            ev.Seq,
			Start:          ev.Start,
			RequestID:      ev.RequestID,
			Shape:          ev.Shape,
			Algorithm:      ev.Algorithm,
			Variant:        ev.Variant,
			K:              ev.K,
			Radius:         ev.Radius,
			Duration:       ev.Duration,
			IOTime:         ev.IOTime,
			LogicalReads:   ev.LogicalReads,
			PhysicalReads:  ev.PhysicalReads,
			Combinations:   ev.Combinations,
			FeaturesPulled: ev.FeaturesPulled,
			ObjectsScored:  ev.ObjectsScored,
			ShardFanout:    ev.ShardFanout,
			ShardPruned:    ev.ShardPruned,
			CacheHit:       ev.CacheHit,
			Outcome:        ev.Outcome,
			Error:          ev.Error,
		}
	}
	writeJSON(w, http.StatusOK, struct {
		Queries []eventJSON `json:"queries"`
	}{out})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{msg})
}
