package cluster

// replica.go is the follower side of WAL log shipping. A replica pulls
// sealed WAL segments from its leader, verifies them strictly (a torn
// segment over the network is an error, not a clean shutdown), and
// replays each record through the DB's crash-recovery apply path. The
// applied sequence is the replication watermark the coordinator reads
// for lag-aware routing.

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"stpq"
	"stpq/internal/ingest"
)

// SegmentSource fetches sealed WAL segments; *Client implements it. Tests
// substitute fault-injecting sources (torn segments, flaky transport).
type SegmentSource interface {
	Segment(from uint64) (SegmentReply, error)
}

// ReplicaConfig configures a log-shipping follower.
type ReplicaConfig struct {
	// DB is the follower's database (built from the same cell's objects,
	// no WAL of its own — the leader's log is the log of record).
	DB *stpq.DB
	// Source serves sealed segments (normally a *Client on the leader).
	Source SegmentSource
	// Interval is the poll period when the leader has nothing new
	// (default 250ms).
	Interval time.Duration
	// Logf, when non-nil, receives replication progress and error lines.
	Logf func(format string, args ...any)
}

// Replica is a running log-shipping loop.
type Replica struct {
	cfg  ReplicaConfig
	stop chan struct{}
	done chan struct{}

	mu      sync.Mutex
	lastErr error
	once    sync.Once
}

// StartReplica begins pulling segments from the source and applying them
// to the DB until Close.
func StartReplica(cfg ReplicaConfig) (*Replica, error) {
	if cfg.DB == nil || cfg.Source == nil {
		return nil, errors.New("cluster: replica needs a DB and a segment source")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 250 * time.Millisecond
	}
	r := &Replica{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
	go r.loop()
	return r, nil
}

// Close stops the replication loop and waits for it to exit.
func (r *Replica) Close() {
	r.once.Do(func() { close(r.stop) })
	<-r.done
}

// Err returns the most recent replication error, nil when healthy.
func (r *Replica) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastErr
}

// AppliedSeq returns the replica's replication watermark.
func (r *Replica) AppliedSeq() uint64 { return r.cfg.DB.WALSeq() }

func (r *Replica) setErr(err error) {
	r.mu.Lock()
	r.lastErr = err
	r.mu.Unlock()
	if err != nil && r.cfg.Logf != nil {
		r.cfg.Logf("cluster: replica: %v", err)
	}
}

func (r *Replica) loop() {
	defer close(r.done)
	for {
		progressed, err := r.fetchOnce()
		r.setErr(err)
		wait := r.cfg.Interval
		if progressed && err == nil {
			// The leader may have more sealed history ready; drain it.
			wait = 0
		}
		if err != nil {
			// Back off on errors so a wedged leader isn't hammered.
			wait = 4 * r.cfg.Interval
		}
		if wait == 0 {
			select {
			case <-r.stop:
				return
			default:
			}
			continue
		}
		select {
		case <-r.stop:
			return
		case <-time.After(wait):
		}
	}
}

// fetchOnce pulls and applies at most one sealed segment. It reports
// whether any record was applied.
func (r *Replica) fetchOnce() (bool, error) {
	from := r.cfg.DB.WALSeq() + 1
	reply, err := r.cfg.Source.Segment(from)
	if err != nil {
		return false, fmt.Errorf("fetch segment from seq %d: %w", from, err)
	}
	if reply.FirstSeq == 0 {
		return false, nil // leader has no sealed history ≥ from yet
	}
	recs, err := ingest.ScanRecords(reply.Data, reply.FirstSeq)
	if err != nil {
		// Torn or corrupt over the wire: refuse to apply anything.
		return false, fmt.Errorf("segment %d: %w", reply.FirstSeq, err)
	}
	applied := false
	for _, rec := range recs {
		if rec.Seq < from {
			continue // overlap with already-applied history; idempotent skip
		}
		if err := r.cfg.DB.ApplyReplicated(rec.Seq, rec.Payload); err != nil {
			if errors.Is(err, stpq.ErrReplicationGap) {
				return applied, fmt.Errorf("segment %d: gap at seq %d (leader compacted past us): %w",
					reply.FirstSeq, rec.Seq, err)
			}
			return applied, fmt.Errorf("apply seq %d: %w", rec.Seq, err)
		}
		applied = true
	}
	return applied, nil
}
