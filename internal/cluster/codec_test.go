package cluster

// codec_test.go checks every wire message round-trips exactly, frames
// survive the transport layer, and no crafted byte sequence can panic or
// over-allocate the decoders (fuzz).

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func TestQueryRoundTrip(t *testing.T) {
	q := WireQuery{
		K:          8,
		Radius:     0.0625,
		Lambda:     0.5,
		Variant:    2,
		Algorithm:  1,
		Similarity: 3,
		RequestID:  "req-0123456789abcdef",
		Trace:      true,
		Mode:       wireModeApprox,
		Recall:     0.9,
		Sets: []WireKeywords{
			{Name: "cafes", Words: []string{"espresso", "latte"}},
			{Name: "food", Words: []string{"pizza"}},
		},
	}
	got, err := decodeQuery(encodeQuery(q))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, q) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, q)
	}
	// Zero-value query round-trips too (empty keyword sets stay nil).
	got, err = decodeQuery(encodeQuery(WireQuery{}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, WireQuery{}) {
		t.Fatalf("zero round trip: %+v", got)
	}
}

func TestReplyRoundTrips(t *testing.T) {
	qr := QueryReply{
		Results: []WireResult{
			{ID: 3, X: 0.1, Y: 0.2, Score: 0.95},
			{ID: -7, X: -1, Y: 2, Score: 0.95},
		},
		Stats: WireStats{
			CPUNanos: 1200, IONanos: 3400, LogicalReads: 56, PhysicalReads: 7,
			Combinations: 8, FeaturesPulled: 9, ObjectsScored: 10,
		},
		Generation: 4,
		Cached:     true,
		TraceJSON:  []byte(`{"name":"query"}`),
	}
	gotQR, err := decodeQueryReply(encodeQueryReply(qr))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotQR, qr) {
		t.Fatalf("query reply:\n got %+v\nwant %+v", gotQR, qr)
	}

	br := BoundReply{Bound: 0.75, AppliedSeq: 42, Generation: 3}
	gotBR, err := decodeBoundReply(encodeBoundReply(br))
	if err != nil {
		t.Fatal(err)
	}
	if gotBR != br {
		t.Fatalf("bound reply: got %+v want %+v", gotBR, br)
	}

	sreq := SegmentRequest{From: 17}
	gotSReq, err := decodeSegmentRequest(encodeSegmentRequest(sreq))
	if err != nil {
		t.Fatal(err)
	}
	if gotSReq != sreq {
		t.Fatalf("segment request: got %+v want %+v", gotSReq, sreq)
	}

	sr := SegmentReply{FirstSeq: 9, Data: []byte{1, 2, 3, 0, 255}}
	gotSR, err := decodeSegmentReply(encodeSegmentReply(sr))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotSR, sr) {
		t.Fatalf("segment reply: got %+v want %+v", gotSR, sr)
	}

	hr := HealthReply{NodeID: 2, AppliedSeq: 10, Objects: 1234, Generation: 5}
	gotHR, err := decodeHealthReply(encodeHealthReply(hr))
	if err != nil {
		t.Fatal(err)
	}
	if gotHR != hr {
		t.Fatalf("health reply: got %+v want %+v", gotHR, hr)
	}
}

func TestErrorRoundTrip(t *testing.T) {
	err := decodeError(encodeError(errOverloaded, "queue full"))
	var rpc *RPCError
	if !errors.As(err, &rpc) {
		t.Fatalf("decodeError returned %T", err)
	}
	if rpc.Code != errOverloaded || rpc.Msg != "queue full" {
		t.Fatalf("got %+v", rpc)
	}
	if !rpc.Retryable() {
		t.Fatal("overloaded must be retryable")
	}
	if (&RPCError{Code: errInvalid}).Retryable() {
		t.Fatal("invalid must not be retryable")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello cluster")
	if err := writeFrame(&buf, msgQuery, payload); err != nil {
		t.Fatal(err)
	}
	typ, got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != msgQuery || !bytes.Equal(got, payload) {
		t.Fatalf("got type 0x%02x payload %q", typ, got)
	}
	// Oversized frame header must be rejected before any allocation.
	huge := []byte{0xff, 0xff, 0xff, 0xff, 0x01}
	if _, _, err := readFrame(bytes.NewReader(huge)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversize frame: %v", err)
	}
}

// TestDecodeQueryTruncated checks every proper prefix of a valid encoding
// fails cleanly instead of panicking or returning garbage silently.
func TestDecodeQueryTruncated(t *testing.T) {
	full := encodeQuery(WireQuery{
		K: 8, Radius: 0.06, Lambda: 0.5, RequestID: "req-1",
		Sets: []WireKeywords{{Name: "food", Words: []string{"pizza", "sushi"}}},
	})
	for n := 0; n < len(full); n++ {
		if _, err := decodeQuery(full[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded successfully", n, len(full))
		}
	}
}

func FuzzDecodeQuery(f *testing.F) {
	f.Add(encodeQuery(WireQuery{K: 8, Radius: 0.06}))
	f.Add(encodeQuery(WireQuery{
		K: 3, RequestID: "req-x", Trace: true,
		Sets: []WireKeywords{{Name: "a", Words: []string{"b"}}},
	}))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := decodeQuery(data)
		if err != nil {
			return
		}
		// Whatever decodes must re-encode and decode to the same bytes
		// (bytes, not values: NaN floats are never DeepEqual).
		enc1 := encodeQuery(q)
		again, err := decodeQuery(enc1)
		if err != nil {
			t.Fatalf("re-decode of valid query failed: %v", err)
		}
		if !bytes.Equal(encodeQuery(again), enc1) {
			t.Fatalf("re-encode changed the query:\n got %+v\nwant %+v", again, q)
		}
	})
}

func FuzzDecodeQueryReply(f *testing.F) {
	f.Add(encodeQueryReply(QueryReply{
		Results: []WireResult{{ID: 1, Score: 0.5}},
		Stats:   WireStats{CPUNanos: 10},
	}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := decodeQueryReply(data)
		if err != nil {
			return
		}
		enc1 := encodeQueryReply(r)
		again, err := decodeQueryReply(enc1)
		if err != nil {
			t.Fatalf("re-decode of valid reply failed: %v", err)
		}
		if !bytes.Equal(encodeQueryReply(again), enc1) {
			t.Fatalf("re-encode changed the reply:\n got %+v\nwant %+v", again, r)
		}
	})
}

func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	_ = writeFrame(&buf, msgQuery, []byte("payload"))
	f.Add(buf.Bytes())
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0x01, 0x02})
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A frame that reads back must round-trip through writeFrame.
		var out bytes.Buffer
		if err := writeFrame(&out, typ, payload); err != nil {
			t.Fatalf("re-write of read frame failed: %v", err)
		}
		typ2, payload2, err := readFrame(&out)
		if err != nil || typ2 != typ || !bytes.Equal(payload2, payload) {
			t.Fatalf("frame round trip mismatch: %v", err)
		}
	})
}
