package hilbert

import (
	"testing"

	"stpq/internal/kwset"
)

// fuzzWidths exercises single-word, exact-boundary and multi-word layouts.
var fuzzWidths = []int{1, 7, 63, 64, 65, 128, 200, 512}

// bytesToSet interprets raw fuzz bytes as a keyword bitvector of the given
// width: byte i contributes bits 8i..8i+7, truncated at width.
func bytesToSet(raw []byte, width int) kwset.Set {
	s := kwset.NewSet(width)
	for i, b := range raw {
		for j := 0; j < 8; j++ {
			id := i*8 + j
			if id >= width {
				return s
			}
			if b&(1<<uint(j)) != 0 {
				s.Add(id)
			}
		}
	}
	return s
}

// FuzzHilbertKeywordRoundtrip fuzzes the order-1 hypercube mapping H(t.W)
// (paper Section 4.2) over large vocabularies: EncodeKeywords and
// DecodeKeywords must be mutually inverse, and the node-update rule
// (decode → OR → re-encode, both the Value-level UpdateNodeValue and the
// set-level NodeUpdateKeywords) must coincide with encoding the plain
// bitwise union.
func FuzzHilbertKeywordRoundtrip(f *testing.F) {
	f.Add([]byte{0x00}, []byte{0x00})
	f.Add([]byte{0x01}, []byte{0x80})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, []byte{0x00})
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef}, []byte{0x01, 0x02, 0x03, 0x04, 0x05})
	f.Add(make([]byte, 64), []byte{0xaa, 0x55})
	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		for _, w := range fuzzWidths {
			a := bytesToSet(rawA, w)
			b := bytesToSet(rawB, w)

			// Inverse pair: decode(encode(x)) == x.
			ha := EncodeKeywords(a, w)
			if back := DecodeKeywords(ha); !back.Equal(a) {
				t.Fatalf("w=%d: decode(encode(a)) = %v, want %v", w, back, a)
			}
			hb := EncodeKeywords(b, w)
			if back := DecodeKeywords(hb); !back.Equal(b) {
				t.Fatalf("w=%d: decode(encode(b)) = %v, want %v", w, back, b)
			}

			// Node-update rule ≡ encode of the OR'd bitset.
			want := a.Union(b)
			updated := UpdateNodeValue(ha, hb)
			if updated.Cmp(EncodeKeywords(want, w)) != 0 {
				t.Fatalf("w=%d: UpdateNodeValue != encode(a ∪ b)", w)
			}
			if got := DecodeKeywords(updated); !got.Equal(want) {
				t.Fatalf("w=%d: decode(UpdateNodeValue) = %v, want %v", w, got, want)
			}
			if got := NodeUpdateKeywords(a, b, w); !got.Equal(want) {
				t.Fatalf("w=%d: NodeUpdateKeywords = %v, want %v", w, got, want)
			}

			// The rule is idempotent and commutative, as a summary must be.
			if again := UpdateNodeValue(updated, hb); again.Cmp(updated) != 0 {
				t.Fatalf("w=%d: node update not idempotent", w)
			}
			if rev := UpdateNodeValue(hb, ha); rev.Cmp(updated) != 0 {
				t.Fatalf("w=%d: node update not commutative", w)
			}
		}
	})
}
