// Package hilbert implements the two Hilbert-curve constructions used by
// the stpq library.
//
// The first is a general n-dimensional Hilbert curve (Skilling's
// transformation) over quantized integer coordinates. The SRT-index bulk
// loader sorts feature objects by the Hilbert index of their mapped 4-D
// point {x, y, t.s, Ĥ(t.W)} (paper Section 4.2 with Hilbert bulk insertion
// [Kamel & Faloutsos]); the plain R-tree and IR²-tree bulk loaders use the
// 2-D specialization.
//
// The second is the keyword mapping H(t.W) of Section 4.2: the order-1
// Hilbert curve through the vertices of the w-dimensional unit hypercube,
// which linearizes keyword bitvectors so that consecutive values differ in
// exactly one keyword (a Gray-code walk). Encode/Decode work directly on
// bitsets, so vocabularies of hundreds of keywords need no big-integer
// arithmetic. For w=3 the ordering reproduces the paper's Figure 5
// (000, 010, 011, 001, 101, 111, 110, 100) exactly.
package hilbert

// Encode returns the Hilbert index of the point with the given coordinates
// on the n-dimensional Hilbert curve of order `bits` (each coordinate in
// [0, 2^bits)). n*bits must be at most 64. The mapping is a bijection
// between coordinate space and [0, 2^(n*bits)).
func Encode(coords []uint32, bits uint) uint64 {
	n := len(coords)
	x := make([]uint32, n)
	copy(x, coords)
	axesToTranspose(x, bits)
	// Interleave: bit (bits-1) of x[0] is the most significant index bit.
	var h uint64
	for b := int(bits) - 1; b >= 0; b-- {
		for i := 0; i < n; i++ {
			h = (h << 1) | uint64((x[i]>>uint(b))&1)
		}
	}
	return h
}

// Decode is the inverse of Encode: it fills coords with the point at index
// h on the n-dimensional Hilbert curve of order `bits`, where n =
// len(coords).
func Decode(h uint64, coords []uint32, bits uint) {
	n := len(coords)
	for i := range coords {
		coords[i] = 0
	}
	// De-interleave.
	for b := 0; b < int(bits); b++ {
		for i := n - 1; i >= 0; i-- {
			coords[i] |= uint32(h&1) << uint(b)
			h >>= 1
		}
	}
	transposeToAxes(coords, bits)
}

// axesToTranspose converts coordinates into the "transposed" Hilbert index
// in place (Skilling, "Programming the Hilbert curve", AIP 2004).
func axesToTranspose(x []uint32, bits uint) {
	n := len(x)
	if n == 0 || bits == 0 {
		return
	}
	// Inverse undo.
	for q := uint32(1) << (bits - 1); q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < n; i++ {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < n; i++ {
		x[i] ^= x[i-1]
	}
	var t uint32
	for q := uint32(1) << (bits - 1); q > 1; q >>= 1 {
		if x[n-1]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < n; i++ {
		x[i] ^= t
	}
}

// transposeToAxes is the inverse of axesToTranspose.
func transposeToAxes(x []uint32, bits uint) {
	n := len(x)
	if n == 0 || bits == 0 {
		return
	}
	// Gray decode.
	t := x[n-1] >> 1
	for i := n - 1; i > 0; i-- {
		x[i] ^= x[i-1]
	}
	x[0] ^= t
	// Undo excess work.
	for q := uint32(2); q != uint32(1)<<bits; q <<= 1 {
		p := q - 1
		for i := n - 1; i >= 0; i-- {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				tt := (x[0] ^ x[i]) & p
				x[0] ^= tt
				x[i] ^= tt
			}
		}
	}
}

// Encode2D returns the Hilbert index of (x, y) on the 2-D curve of order
// `bits`; it is the sort key of the classic Hilbert-packed R-tree.
func Encode2D(x, y uint32, bits uint) uint64 {
	return Encode([]uint32{x, y}, bits)
}

// Encode4D returns the Hilbert index of a point of the mapped 4-D space
// {x, y, score, keywordHilbert} used by the SRT-index bulk loader.
func Encode4D(x, y, s, kw uint32, bits uint) uint64 {
	return Encode([]uint32{x, y, s, kw}, bits)
}
