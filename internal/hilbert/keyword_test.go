package hilbert

import (
	"math/rand"
	"testing"
	"testing/quick"

	"stpq/internal/kwset"
)

// valueFromRank builds a Value of the given width whose numeric value is
// rank (rank < 2^64 is enough for the exhaustive small-w tests).
func valueFromRank(rank uint64, width int) Value {
	v := NewValue(width)
	for j := 0; j < width && j < 64; j++ {
		if rank&(1<<uint(j)) != 0 {
			v.setBit(j)
		}
	}
	return v
}

// rankOf extracts the numeric value of a small Value.
func rankOf(v Value) uint64 {
	if len(v.words) == 0 {
		return 0
	}
	return v.words[0]
}

// Paper Figure 5: for w = 3 the keyword order must be
// 000, 010, 011, 001, 101, 111, 110, 100 (first keyword listed first).
func TestKeywordOrderMatchesPaperFigure5(t *testing.T) {
	want := []string{"000", "010", "011", "001", "101", "111", "110", "100"}
	for rank, pattern := range want {
		set := DecodeKeywords(valueFromRank(uint64(rank), 3))
		got := ""
		for i := 0; i < 3; i++ {
			if set.Has(i) {
				got += "1"
			} else {
				got += "0"
			}
		}
		if got != pattern {
			t.Errorf("rank %d: got %s, want %s", rank, got, pattern)
		}
		// And the inverse direction.
		s := kwset.NewSet(3)
		for i, ch := range pattern {
			if ch == '1' {
				s.Add(i)
			}
		}
		if enc := EncodeKeywords(s, 3); rankOf(enc) != uint64(rank) {
			t.Errorf("encode(%s) = %d, want %d", pattern, rankOf(enc), rank)
		}
	}
}

// EncodeKeywords/DecodeKeywords must be mutually inverse bijections for
// every vector — exhaustive for small w.
func TestKeywordBijectionExhaustive(t *testing.T) {
	for _, w := range []int{1, 2, 3, 5, 8, 10} {
		seen := make(map[uint64]bool)
		for vec := uint64(0); vec < 1<<uint(w); vec++ {
			s := kwset.NewSet(w)
			for i := 0; i < w; i++ {
				if vec&(1<<uint(i)) != 0 {
					s.Add(i)
				}
			}
			h := EncodeKeywords(s, w)
			r := rankOf(h)
			if r >= 1<<uint(w) {
				t.Fatalf("w=%d: rank %d out of range", w, r)
			}
			if seen[r] {
				t.Fatalf("w=%d: duplicate rank %d", w, r)
			}
			seen[r] = true
			if back := DecodeKeywords(h); !back.Equal(s) {
				t.Fatalf("w=%d vec=%b: decode(encode) = %v, want %v", w, vec, back, s)
			}
		}
	}
}

// Gray property: vectors at consecutive Hilbert ranks differ in exactly one
// keyword (paper Section 4.2: "vectors with distance 1 have only one
// different keyword").
func TestKeywordGrayProperty(t *testing.T) {
	for _, w := range []int{2, 3, 7, 12} {
		prev := DecodeKeywords(valueFromRank(0, w))
		for rank := uint64(1); rank < 1<<uint(w); rank++ {
			cur := DecodeKeywords(valueFromRank(rank, w))
			diff := cur.UnionCount(prev) - cur.IntersectCount(prev)
			if diff != 1 {
				t.Fatalf("w=%d rank=%d: hamming=%d, want 1", w, rank, diff)
			}
			prev = cur
		}
	}
}

// The paper's locality bound: rank distance w' implies at most w' keyword
// differences.
func TestKeywordLocalityBound(t *testing.T) {
	const w = 10
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		a := uint64(rng.Intn(1 << w))
		b := uint64(rng.Intn(1 << w))
		sa := DecodeKeywords(valueFromRank(a, w))
		sb := DecodeKeywords(valueFromRank(b, w))
		hamming := sa.UnionCount(sb) - sa.IntersectCount(sb)
		dist := int64(a) - int64(b)
		if dist < 0 {
			dist = -dist
		}
		if int64(hamming) > dist {
			t.Fatalf("hamming %d > rank distance %d", hamming, dist)
		}
	}
}

// Round trip must hold for large vocabularies spanning multiple words.
func TestKeywordRoundTripWide(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, w := range []int{64, 128, 130, 256} {
			s := kwset.NewSet(w)
			n := rng.Intn(10)
			for i := 0; i < n; i++ {
				s.Add(rng.Intn(w))
			}
			h := EncodeKeywords(s, w)
			if !DecodeKeywords(h).Equal(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// UpdateNodeValue must implement: decode(update(a,b)) = decode(a) ∪
// decode(b) — the SRT node-summary maintenance rule.
func TestUpdateNodeValue(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const w = 128
		a := randSet(rng, w)
		b := randSet(rng, w)
		va := EncodeKeywords(a, w)
		vb := EncodeKeywords(b, w)
		merged := DecodeKeywords(UpdateNodeValue(va, vb))
		want := a.Union(b)
		return merged.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func randSet(rng *rand.Rand, w int) kwset.Set {
	s := kwset.NewSet(w)
	for i := 0; i < rng.Intn(8); i++ {
		s.Add(rng.Intn(w))
	}
	return s
}

// Cmp must be a total order consistent with numeric comparison.
func TestValueCmp(t *testing.T) {
	a := valueFromRank(5, 80)
	b := valueFromRank(9, 80)
	if a.Cmp(b) != -1 || b.Cmp(a) != 1 || a.Cmp(a) != 0 {
		t.Error("Cmp inconsistent for small values")
	}
	// High-word difference.
	hi := NewValue(128)
	hi.setBit(100)
	lo := NewValue(128)
	lo.setBit(63)
	if hi.Cmp(lo) != 1 || lo.Cmp(hi) != -1 {
		t.Error("Cmp inconsistent across words")
	}
}

// Scaled must preserve order: if u < v then Scaled(u) ≤ Scaled(v).
func TestScaledMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const w = 128
		a := EncodeKeywords(randSet(rng, w), w)
		b := EncodeKeywords(randSet(rng, w), w)
		if a.Cmp(b) > 0 {
			a, b = b, a
		}
		return a.Scaled(16) <= b.Scaled(16)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestScaledPanicsOnBadBits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for outBits=0")
		}
	}()
	NewValue(8).Scaled(0)
}

func TestValueBitOutOfRange(t *testing.T) {
	v := NewValue(8)
	if v.Bit(-1) || v.Bit(100) {
		t.Error("out-of-range bits must read as 0")
	}
}

func TestValueString(t *testing.T) {
	v := valueFromRank(255, 64)
	if got := v.String(); got != "0x00000000000000ff" {
		t.Errorf("String = %q", got)
	}
}

func TestEmptySetEncodesToZero(t *testing.T) {
	h := EncodeKeywords(kwset.NewSet(64), 64)
	if h.OnesCount() != 0 {
		t.Errorf("H(∅) = %v, want 0", h)
	}
}
