package hilbert

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// The 2-D curve of order b must be a bijection [0,2^b)² ↔ [0, 4^b).
func TestEncode2DBijection(t *testing.T) {
	const bits = 4
	seen := make(map[uint64]bool)
	for x := uint32(0); x < 1<<bits; x++ {
		for y := uint32(0); y < 1<<bits; y++ {
			h := Encode2D(x, y, bits)
			if h >= 1<<(2*bits) {
				t.Fatalf("index %d out of range", h)
			}
			if seen[h] {
				t.Fatalf("duplicate index %d at (%d,%d)", h, x, y)
			}
			seen[h] = true
		}
	}
	if len(seen) != 1<<(2*bits) {
		t.Fatalf("not a bijection: %d cells", len(seen))
	}
}

// Consecutive Hilbert indexes must be grid neighbors (the locality property
// bulk loading relies on).
func TestEncode2DAdjacency(t *testing.T) {
	const bits = 5
	coords := make([]uint32, 2)
	var px, py uint32
	for h := uint64(0); h < 1<<(2*bits); h++ {
		Decode(h, coords, bits)
		if h > 0 {
			dx := int(coords[0]) - int(px)
			dy := int(coords[1]) - int(py)
			if dx*dx+dy*dy != 1 {
				t.Fatalf("step %d not unit: (%d,%d)->(%d,%d)", h, px, py, coords[0], coords[1])
			}
		}
		px, py = coords[0], coords[1]
	}
}

// Known fixed points of the order-1 2-D curve: (0,0)=0 and the curve ends
// adjacent to the start.
func TestEncode2DOrigin(t *testing.T) {
	if got := Encode2D(0, 0, 8); got != 0 {
		t.Errorf("Encode2D(0,0) = %d, want 0", got)
	}
}

// Encode and Decode must be inverses in 4-D (the SRT mapped space).
func TestEncodeDecodeRoundTrip4D(t *testing.T) {
	f := func(a, b, c, d uint32) bool {
		const bits = 8
		mask := uint32(1<<bits - 1)
		in := []uint32{a & mask, b & mask, c & mask, d & mask}
		h := Encode(in, bits)
		out := make([]uint32, 4)
		Decode(h, out, bits)
		for i := range in {
			if in[i] != out[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// 4-D adjacency: consecutive indexes differ by one unit step in one dim.
func TestEncode4DAdjacency(t *testing.T) {
	const bits = 2
	coords := make([]uint32, 4)
	prev := make([]uint32, 4)
	for h := uint64(0); h < 1<<(4*bits); h++ {
		Decode(h, coords, bits)
		if h > 0 {
			sum := 0
			for i := range coords {
				d := int(coords[i]) - int(prev[i])
				sum += d * d
			}
			if sum != 1 {
				t.Fatalf("step %d not unit: %v -> %v", h, prev, coords)
			}
		}
		copy(prev, coords)
	}
}

func TestEncode4DDistinct(t *testing.T) {
	const bits = 3
	seen := make(map[uint64]bool)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		x := uint32(rng.Intn(8))
		y := uint32(rng.Intn(8))
		s := uint32(rng.Intn(8))
		k := uint32(rng.Intn(8))
		h := Encode4D(x, y, s, k, bits)
		key := uint64(x)<<24 | uint64(y)<<16 | uint64(s)<<8 | uint64(k)
		if prev, ok := firstSeen[key]; ok && prev != h {
			t.Fatal("Encode4D not deterministic")
		}
		firstSeen[key] = h
		seen[h] = true
	}
	_ = seen
}

var firstSeen = map[uint64]uint64{}

func TestEncodeZeroDims(t *testing.T) {
	if got := Encode(nil, 8); got != 0 {
		t.Errorf("Encode(nil) = %d", got)
	}
	Decode(0, nil, 8) // must not panic
}
