package hilbert

import (
	"fmt"
	"math/bits"

	"stpq/internal/kwset"
)

// Value is a w-bit Hilbert value H(t.W) of a keyword bitvector, stored as
// little-endian 64-bit words (word 0 holds bits 0..63, bit w−1 is the most
// significant). Values of equal width are totally ordered by Cmp.
type Value struct {
	words []uint64
	w     int
}

// NewValue returns the zero value of the given bit width.
func NewValue(width int) Value {
	return Value{words: make([]uint64, (width+63)/64), w: width}
}

// Width returns the bit width of the value.
func (v Value) Width() int { return v.w }

// Bit returns bit j of the value (j=0 least significant).
func (v Value) Bit(j int) bool {
	if j < 0 || j/64 >= len(v.words) {
		return false
	}
	return v.words[j/64]&(1<<(uint(j)%64)) != 0
}

// setBit sets bit j.
func (v *Value) setBit(j int) {
	v.words[j/64] |= 1 << (uint(j) % 64)
}

// Cmp compares v and u as unsigned integers: −1 if v<u, 0 if equal, +1 if
// v>u. Values of different widths compare by numeric value.
func (v Value) Cmp(u Value) int {
	n := len(v.words)
	if len(u.words) > n {
		n = len(u.words)
	}
	for i := n - 1; i >= 0; i-- {
		var a, b uint64
		if i < len(v.words) {
			a = v.words[i]
		}
		if i < len(u.words) {
			b = u.words[i]
		}
		if a != b {
			if a < b {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Scaled returns the top `outBits` bits of the value as a uint32 (outBits ≤
// 32). It is the coordinate the SRT bulk loader feeds into the 4-D spatial
// Hilbert sort: nearby Hilbert values, which denote similar keyword sets,
// map to nearby grid cells.
func (v Value) Scaled(outBits uint) uint32 {
	if outBits == 0 || outBits > 32 {
		panic("hilbert: Scaled outBits must be in [1,32]")
	}
	var out uint32
	for k := 0; k < int(outBits); k++ {
		out <<= 1
		if v.Bit(v.w - 1 - k) {
			out |= 1
		}
	}
	return out
}

// String renders the value in hexadecimal for debugging.
func (v Value) String() string {
	s := ""
	for i := len(v.words) - 1; i >= 0; i-- {
		s += fmt.Sprintf("%016x", v.words[i])
	}
	return "0x" + s
}

// EncodeKeywords maps a keyword bitvector to its Hilbert value on the
// order-1 Hilbert curve through the w-dimensional hypercube (paper
// Section 4.2). width fixes the vocabulary size w; keyword ids ≥ width are
// ignored. The mapping is a bijection, and consecutive Hilbert values
// always differ in exactly one keyword (Gray property), so a run of
// Hilbert-adjacent features shares most keywords.
//
// Construction: the hypercube walk is the binary-reflected Gray code under
// the bit role assignment that reproduces the paper's Figure 5 — keyword 0
// (the "first place" keyword) acts as the most significant Gray bit and
// keyword i (i ≥ 1) as Gray bit i−1. The Hilbert value is then the Gray
// rank, obtained by prefix-XOR from the most significant bit.
func EncodeKeywords(set kwset.Set, width int) Value {
	g := NewValue(width)
	if set.Has(0) {
		g.setBit(width - 1)
	}
	set.ForEach(func(id int) {
		if id >= 1 && id < width {
			g.setBit(id - 1)
		}
	})
	return grayToBinary(g)
}

// DecodeKeywords is the inverse of EncodeKeywords: it recovers the keyword
// bitvector from a Hilbert value. It is the "mapped to binary vectors" half
// of the node-update rule in Section 4.2.
func DecodeKeywords(v Value) kwset.Set {
	g := binaryToGray(v)
	out := kwset.NewSet(v.w)
	if g.Bit(v.w - 1) {
		out.Add(0)
	}
	for j := 0; j < v.w-1; j++ {
		if g.Bit(j) {
			out.Add(j + 1)
		}
	}
	return out
}

// UpdateNodeValue implements the SRT node maintenance rule of Section 4.2:
// the previous aggregated Hilbert value and the Hilbert value of a newly
// inserted object are mapped back to binary vectors, their disjunction is
// computed, and the result is re-encoded as the node's new Hilbert value.
func UpdateNodeValue(prev, added Value) Value {
	a := DecodeKeywords(prev)
	b := DecodeKeywords(added)
	a.UnionInPlace(b)
	return EncodeKeywords(a, prev.w)
}

// NodeUpdateKeywords applies the Section 4.2 node-update rule to keyword
// bitvectors: the previous node summary and the inserted entry's keywords
// are encoded to Hilbert values, merged with UpdateNodeValue (decode → OR →
// re-encode), and the result decoded back to a bitvector. Because
// EncodeKeywords is a bijection this equals the plain bitwise union; the
// live insertion path routes through it so the paper's rule is what
// actually maintains node summaries online.
func NodeUpdateKeywords(prev, added kwset.Set, width int) kwset.Set {
	merged := UpdateNodeValue(EncodeKeywords(prev, width), EncodeKeywords(added, width))
	return DecodeKeywords(merged)
}

// grayToBinary converts a Gray-coded value to its rank: b_{w-1} = g_{w-1},
// b_j = b_{j+1} XOR g_j. Runs in O(w) bit operations using word-level
// carry-less prefix parity.
func grayToBinary(g Value) Value {
	b := NewValue(g.w)
	acc := 0 // running parity of gray bits above the current position
	for i := len(g.words) - 1; i >= 0; i-- {
		word := g.words[i]
		// Compute prefix XOR within the word from the MSB side.
		// p_j = parity of bits j..63 of word (plus acc).
		p := word
		p ^= p >> 1
		p ^= p >> 2
		p ^= p >> 4
		p ^= p >> 8
		p ^= p >> 16
		p ^= p >> 32
		if acc != 0 {
			p = ^p
		}
		b.words[i] = p
		acc = int(p & 1) // parity including all higher bits
	}
	// Mask stray bits beyond width.
	if g.w%64 != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << uint(g.w%64)) - 1
	}
	return b
}

// binaryToGray converts a rank back to Gray code: g = b XOR (b >> 1),
// where the shift is across word boundaries.
func binaryToGray(b Value) Value {
	g := NewValue(b.w)
	for i := 0; i < len(b.words); i++ {
		shifted := b.words[i] >> 1
		if i+1 < len(b.words) {
			shifted |= b.words[i+1] << 63
		}
		g.words[i] = b.words[i] ^ shifted
	}
	return g
}

// OnesCount returns the number of set bits in the value (for tests).
func (v Value) OnesCount() int {
	n := 0
	for _, w := range v.words {
		n += bits.OnesCount64(w)
	}
	return n
}
