// Package plan is the cost-based query planner: it sits between query
// validation and execution for every entry point (library TopK, the serve
// worker pool, the sharded scatter-gather and the cluster coordinator) and
// turns the per-shape statistics of internal/obs into three decisions:
//
//  1. Which algorithm runs a query whose caller did not force one
//     (Algorithm: Auto): the paper shows neither STDS nor STPS dominates —
//     the winner flips with radius, k and keyword selectivity — so the
//     planner compares the recorded mean total cost (CPU + modeled I/O) of
//     the query's shape under both algorithms and picks the cheaper one.
//  2. How wide a sharded (or clustered) query fans out per wave: a query
//     whose predicted cost is small finishes fast even serialized, so
//     running it one shard at a time maximizes the bound-pruning between
//     waves; an expensive query wants the full width for overlap.
//  3. What a query is predicted to cost — the admission-control input that
//     lets the serve layer shed the expensive tail under overload instead
//     of rejecting uniformly at random.
//
// Every decision degrades deterministically: while a shape has fewer than
// MinSamples recorded executions, the planner falls back to the historical
// defaults (STPS, engine-default width, cost unknown), so a cold process
// behaves exactly like the pre-planner system. Decisions never affect
// results — both algorithms are exact and the scatter pruning rule is
// width-independent — only cost.
package plan

import (
	"fmt"
	"time"

	"stpq/internal/obs"
)

// Algorithm names, spelled exactly as the telemetry layer records them.
const (
	AlgSTPS = "stps"
	AlgSTDS = "stds"
)

// DefaultCheapLatency is the predicted-cost threshold below which a
// sharded query is serialized (wave width 1): at this cost the pruning
// won by evaluating the termination rule between every shard outweighs
// the lost overlap.
const DefaultCheapLatency = 5 * time.Millisecond

// Planner chooses execution strategy per query from recorded per-shape
// statistics. The zero value (nil Shapes) is valid and always falls back
// to the defaults.
type Planner struct {
	// Shapes is the per-shape cost table the planner reads (nil = always
	// cold).
	Shapes *obs.ShapeStats
	// MinSamples is how many recorded executions a shape needs before its
	// mean is trusted (0 = obs.MinPredictSamples).
	MinSamples int64
	// CheapLatency is the serialize-the-waves threshold
	// (0 = DefaultCheapLatency).
	CheapLatency time.Duration
}

// Candidate is one algorithm the planner considered, with the evidence it
// had.
type Candidate struct {
	Algorithm string        `json:"algorithm"`
	Samples   int64         `json:"samples"`
	Cost      time.Duration `json:"cost_ns"`
	Known     bool          `json:"known"`
}

// Decision is the planner's full verdict for one query, reported by
// EXPLAIN alongside the execution plan.
type Decision struct {
	// Algorithm is the concrete algorithm the query runs with.
	Algorithm string `json:"algorithm"`
	// Reason explains the choice in operator-readable form.
	Reason string `json:"reason"`
	// Forced reports that the caller fixed the algorithm and the planner
	// only annotated it.
	Forced bool `json:"forced,omitempty"`
	// Fallback reports the deterministic cold-start path: Auto was
	// requested but at least one candidate shape is below the sample
	// floor, so the historical default won.
	Fallback bool `json:"fallback,omitempty"`
	// Cost is the predicted mean total cost of the chosen plan; CostKnown
	// is false (and Cost zero) below the sample floor.
	Cost      time.Duration `json:"cost_ns,omitempty"`
	CostKnown bool          `json:"cost_known"`
	// Fanout is the chosen scatter wave width; 0 keeps the engine default.
	Fanout int `json:"fanout,omitempty"`
	// Candidates lists every algorithm considered, chosen first.
	Candidates []Candidate `json:"candidates,omitempty"`
}

func (p *Planner) minSamples() int64 {
	if p.MinSamples > 0 {
		return p.MinSamples
	}
	return obs.MinPredictSamples
}

func (p *Planner) cheapLatency() time.Duration {
	if p.CheapLatency > 0 {
		return p.CheapLatency
	}
	return DefaultCheapLatency
}

// candidate looks up one algorithm's recorded cost for the shape.
func (p *Planner) candidate(key obs.ShapeKey, alg string) Candidate {
	key.Alg = alg
	mean, n := p.Shapes.Cost(key)
	return Candidate{Algorithm: alg, Samples: n, Cost: mean, Known: n >= p.minSamples()}
}

// Resolve maps a query shape and the caller's algorithm choice (AlgSTPS /
// AlgSTDS, or "" for Auto) to the concrete algorithm plus its predicted
// cost. It is allocation-free — the form the query hot path uses. key.Alg
// is ignored; the planner fills it per candidate.
func (p *Planner) Resolve(key obs.ShapeKey, forced string) (alg string, cost time.Duration, known bool) {
	if forced != "" {
		c := p.candidate(key, forced)
		return forced, c.Cost, c.Known
	}
	stds := p.candidate(key, AlgSTDS)
	stps := p.candidate(key, AlgSTPS)
	if stds.Known && stps.Known {
		// Both measured: the cheaper mean total wins, STPS on a tie (it is
		// the paper's winner in expectation and today's default).
		if stds.Cost < stps.Cost {
			return AlgSTDS, stds.Cost, true
		}
		return AlgSTPS, stps.Cost, true
	}
	// Cold start: deterministic fallback to the historical default. Its
	// own cost may still be known (only the alternative is cold).
	return AlgSTPS, stps.Cost, stps.Known
}

// Decide is Resolve with the full audit trail: every candidate considered,
// the reason, and the fallback/forced markers. Used by EXPLAIN; the hot
// path calls Resolve instead.
func (p *Planner) Decide(key obs.ShapeKey, forced string) Decision {
	if forced != "" {
		c := p.candidate(key, forced)
		other := AlgSTPS
		if forced == AlgSTPS {
			other = AlgSTDS
		}
		return Decision{
			Algorithm:  forced,
			Reason:     "algorithm forced by caller",
			Forced:     true,
			Cost:       c.Cost,
			CostKnown:  c.Known,
			Candidates: []Candidate{c, p.candidate(key, other)},
		}
	}
	stds := p.candidate(key, AlgSTDS)
	stps := p.candidate(key, AlgSTPS)
	d := Decision{}
	switch {
	case stds.Known && stps.Known && stds.Cost < stps.Cost:
		d = Decision{
			Algorithm: AlgSTDS,
			Reason: fmt.Sprintf("auto: stds predicted %v beats stps %v",
				stds.Cost.Round(time.Microsecond), stps.Cost.Round(time.Microsecond)),
			Cost: stds.Cost, CostKnown: true,
			Candidates: []Candidate{stds, stps},
		}
	case stds.Known && stps.Known:
		d = Decision{
			Algorithm: AlgSTPS,
			Reason: fmt.Sprintf("auto: stps predicted %v beats stds %v",
				stps.Cost.Round(time.Microsecond), stds.Cost.Round(time.Microsecond)),
			Cost: stps.Cost, CostKnown: true,
			Candidates: []Candidate{stps, stds},
		}
	default:
		cold := "stds"
		if !stps.Known {
			if !stds.Known {
				cold = "both algorithms"
			} else {
				cold = "stps"
			}
		}
		d = Decision{
			Algorithm: AlgSTPS,
			Reason: fmt.Sprintf("cold start: %s below %d-sample floor, defaulting to stps",
				cold, p.minSamples()),
			Fallback: true,
			Cost:     stps.Cost, CostKnown: stps.Known,
			Candidates: []Candidate{stps, stds},
		}
	}
	return d
}

// FanoutWidth decides the scatter wave width for a query over the given
// number of shards (or cluster nodes): 0 keeps the engine default.
// A warm, cheap prediction serializes the waves (width 1) so the
// termination rule is evaluated after every shard — maximal pruning at
// negligible latency cost; everything else (expensive or cold) keeps the
// engine's configured width. Results are identical at any width.
func (p *Planner) FanoutWidth(cost time.Duration, known bool, shards int) int {
	if shards <= 1 || !known {
		return 0
	}
	if cost <= p.cheapLatency() {
		return 1
	}
	return 0
}
