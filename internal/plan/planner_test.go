package plan

import (
	"strings"
	"testing"
	"time"

	"stpq/internal/obs"
)

// warm records n executions of key at the given wall cost.
func warm(s *obs.ShapeStats, key obs.ShapeKey, alg string, n int, wall time.Duration) {
	key.Alg = alg
	for i := 0; i < n; i++ {
		s.Observe(key, wall, 0, 0, 0, 0)
	}
}

func testKey() obs.ShapeKey {
	return obs.ShapeKey{Alg: "", Variant: "range", Sim: "jaccard", K: 10, RBucket: obs.RadiusBucket(0.01), Sets: 2}
}

func TestResolveForcedPassesThrough(t *testing.T) {
	p := Planner{} // zero planner: nil stats
	for _, forced := range []string{AlgSTPS, AlgSTDS} {
		alg, cost, known := p.Resolve(testKey(), forced)
		if alg != forced {
			t.Fatalf("forced %q resolved to %q", forced, alg)
		}
		if known || cost != 0 {
			t.Fatalf("forced %q on cold stats: cost %v known %v, want unknown", forced, cost, known)
		}
	}
}

func TestResolveColdDefaultsToSTPS(t *testing.T) {
	p := Planner{Shapes: obs.NewShapeStats()}
	alg, _, known := p.Resolve(testKey(), "")
	if alg != AlgSTPS || known {
		t.Fatalf("cold auto: got %q known=%v, want stps unknown", alg, known)
	}
}

func TestResolveOneSidedStaysOnDefault(t *testing.T) {
	// Only STDS warm: the planner must not flip to it without evidence
	// about STPS — Auto on a half-cold shape behaves like the old system.
	s := obs.NewShapeStats()
	warm(s, testKey(), AlgSTDS, int(obs.MinPredictSamples), time.Millisecond)
	p := Planner{Shapes: s}
	if alg, _, _ := p.Resolve(testKey(), ""); alg != AlgSTPS {
		t.Fatalf("half-cold auto chose %q, want stps", alg)
	}
	// Only STPS warm: same choice, but now with a known cost.
	s2 := obs.NewShapeStats()
	warm(s2, testKey(), AlgSTPS, int(obs.MinPredictSamples), 2*time.Millisecond)
	p2 := Planner{Shapes: s2}
	alg, cost, known := p2.Resolve(testKey(), "")
	if alg != AlgSTPS || !known || cost != 2*time.Millisecond {
		t.Fatalf("stps-warm auto: got %q cost %v known %v", alg, cost, known)
	}
}

func TestResolveWarmPicksCheaper(t *testing.T) {
	s := obs.NewShapeStats()
	warm(s, testKey(), AlgSTDS, int(obs.MinPredictSamples), time.Millisecond)
	warm(s, testKey(), AlgSTPS, int(obs.MinPredictSamples), 4*time.Millisecond)
	p := Planner{Shapes: s}
	alg, cost, known := p.Resolve(testKey(), "")
	if alg != AlgSTDS || !known || cost != time.Millisecond {
		t.Fatalf("got %q cost %v known %v, want stds 1ms known", alg, cost, known)
	}
	// Flip the costs: the choice must flip too.
	s2 := obs.NewShapeStats()
	warm(s2, testKey(), AlgSTDS, int(obs.MinPredictSamples), 4*time.Millisecond)
	warm(s2, testKey(), AlgSTPS, int(obs.MinPredictSamples), time.Millisecond)
	p2 := Planner{Shapes: s2}
	if alg, _, _ := p2.Resolve(testKey(), ""); alg != AlgSTPS {
		t.Fatalf("flipped costs chose %q, want stps", alg)
	}
}

func TestResolveTieGoesToSTPS(t *testing.T) {
	s := obs.NewShapeStats()
	warm(s, testKey(), AlgSTDS, int(obs.MinPredictSamples), time.Millisecond)
	warm(s, testKey(), AlgSTPS, int(obs.MinPredictSamples), time.Millisecond)
	p := Planner{Shapes: s}
	if alg, _, _ := p.Resolve(testKey(), ""); alg != AlgSTPS {
		t.Fatalf("tie chose %q, want stps", alg)
	}
}

func TestResolveRespectsMinSamplesOverride(t *testing.T) {
	s := obs.NewShapeStats()
	warm(s, testKey(), AlgSTDS, 1, time.Millisecond)
	warm(s, testKey(), AlgSTPS, 1, 4*time.Millisecond)
	p := Planner{Shapes: s, MinSamples: 1}
	if alg, _, _ := p.Resolve(testKey(), ""); alg != AlgSTDS {
		t.Fatal("MinSamples=1 should trust single-sample means")
	}
	p2 := Planner{Shapes: s} // default floor: still cold
	if alg, _, _ := p2.Resolve(testKey(), ""); alg != AlgSTPS {
		t.Fatal("default floor must not trust single samples")
	}
}

func TestDecideAuditTrail(t *testing.T) {
	s := obs.NewShapeStats()
	warm(s, testKey(), AlgSTDS, int(obs.MinPredictSamples), time.Millisecond)
	warm(s, testKey(), AlgSTPS, int(obs.MinPredictSamples), 4*time.Millisecond)
	p := Planner{Shapes: s}

	d := p.Decide(testKey(), "")
	if d.Algorithm != AlgSTDS || d.Forced || d.Fallback || !d.CostKnown {
		t.Fatalf("warm auto decision: %+v", d)
	}
	if len(d.Candidates) != 2 || d.Candidates[0].Algorithm != AlgSTDS {
		t.Fatalf("candidates: %+v (chosen must lead)", d.Candidates)
	}
	if !strings.Contains(d.Reason, "beats") {
		t.Fatalf("warm reason %q", d.Reason)
	}

	f := p.Decide(testKey(), AlgSTPS)
	if f.Algorithm != AlgSTPS || !f.Forced || f.Fallback {
		t.Fatalf("forced decision: %+v", f)
	}

	coldP := Planner{Shapes: obs.NewShapeStats()}
	cold := coldP.Decide(testKey(), "")
	if cold.Algorithm != AlgSTPS || !cold.Fallback || cold.CostKnown {
		t.Fatalf("cold decision: %+v", cold)
	}
	if !strings.Contains(cold.Reason, "cold start") {
		t.Fatalf("cold reason %q", cold.Reason)
	}
}

func TestFanoutWidth(t *testing.T) {
	p := Planner{}
	cases := []struct {
		cost   time.Duration
		known  bool
		shards int
		want   int
	}{
		{time.Millisecond, true, 4, 1},        // warm and cheap: serialize
		{DefaultCheapLatency, true, 4, 1},     // boundary is inclusive
		{DefaultCheapLatency + 1, true, 4, 0}, // expensive: engine default
		{time.Millisecond, false, 4, 0},       // cold: engine default
		{time.Millisecond, true, 1, 0},        // unsharded: no decision
		{time.Millisecond, true, 0, 0},
	}
	for _, c := range cases {
		if got := p.FanoutWidth(c.cost, c.known, c.shards); got != c.want {
			t.Errorf("FanoutWidth(%v, %v, %d) = %d, want %d", c.cost, c.known, c.shards, got, c.want)
		}
	}
	narrow := Planner{CheapLatency: time.Microsecond}
	if got := narrow.FanoutWidth(time.Millisecond, true, 4); got != 0 {
		t.Errorf("CheapLatency override ignored: got %d", got)
	}
}
