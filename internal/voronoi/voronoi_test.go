package voronoi

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"stpq/internal/geo"
)

// buildCellBrute constructs the cell by clipping against every site.
func buildCellBrute(site geo.Point, sites []geo.Point) geo.Polygon {
	cell := geo.UnitSquare()
	for _, s := range sites {
		if s != site {
			cell = cell.Clip(geo.Bisector(site, s))
		}
	}
	return cell
}

// sortedStream yields sites in increasing distance from the site.
func sortedStream(site geo.Point, sites []geo.Point) func() (geo.Point, bool) {
	sorted := make([]geo.Point, 0, len(sites))
	for _, s := range sites {
		if s != site {
			sorted = append(sorted, s)
		}
	}
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].Dist2(site) < sorted[j].Dist2(site)
	})
	i := 0
	return func() (geo.Point, bool) {
		if i >= len(sorted) {
			return geo.Point{}, false
		}
		p := sorted[i]
		i++
		return p, true
	}
}

// The incremental construction with the 2·maxDist stopping rule must yield
// the same cell (same membership) as clipping against every site.
func TestComputeCellMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(60)
		sites := make([]geo.Point, n)
		for i := range sites {
			sites[i] = geo.Point{X: rng.Float64(), Y: rng.Float64()}
		}
		site := sites[rng.Intn(n)]
		fast := ComputeCell(site, geo.UnitSquare(), sortedStream(site, sites))
		brute := buildCellBrute(site, sites)
		// Compare membership on random probes (vertex lists may differ by
		// collinear points).
		for i := 0; i < 100; i++ {
			p := geo.Point{X: rng.Float64(), Y: rng.Float64()}
			a, b := fast.Contains(p), brute.Contains(p)
			if a != b {
				// Tolerate boundary jitter.
				if nearEdge(fast, p) || nearEdge(brute, p) {
					continue
				}
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func nearEdge(pg geo.Polygon, p geo.Point) bool {
	n := len(pg.Vertices)
	for i := 0; i < n; i++ {
		a, b := pg.Vertices[i], pg.Vertices[(i+1)%n]
		h := geo.EdgeHalfPlane(a, b)
		v := h.Eval(p)
		if v < 1e-6 && v > -1e-6 {
			return true
		}
	}
	return false
}

// Every point inside the computed cell must have the site as its nearest
// site — the defining property the NN query variant relies on.
func TestCellNearestNeighborProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		n := 5 + rng.Intn(40)
		sites := make([]geo.Point, n)
		for i := range sites {
			sites[i] = geo.Point{X: rng.Float64(), Y: rng.Float64()}
		}
		site := sites[0]
		cell := ComputeCell(site, geo.UnitSquare(), sortedStream(site, sites))
		for i := 0; i < 200; i++ {
			p := geo.Point{X: rng.Float64(), Y: rng.Float64()}
			if !cell.Contains(p) {
				continue
			}
			dSite := p.Dist2(site)
			for _, s := range sites[1:] {
				if p.Dist2(s) < dSite-1e-9 {
					t.Fatalf("trial %d: point %v in cell of %v but closer to %v", trial, p, site, s)
				}
			}
		}
	}
}

// The stopping rule must consume only a prefix of the stream: with many
// far-away sites, most are never visited.
func TestStoppingRuleConsumesPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	site := geo.Point{X: 0.5, Y: 0.5}
	var sites []geo.Point
	// Dense ring close to the site.
	for i := 0; i < 20; i++ {
		sites = append(sites, geo.Point{
			X: 0.5 + 0.02*rng.NormFloat64(),
			Y: 0.5 + 0.02*rng.NormFloat64(),
		})
	}
	// Far corner cloud.
	for i := 0; i < 1000; i++ {
		sites = append(sites, geo.Point{X: 0.9 + 0.1*rng.Float64(), Y: 0.9 + 0.1*rng.Float64()})
	}
	consumed := 0
	stream := sortedStream(site, sites)
	counting := func() (geo.Point, bool) {
		p, ok := stream()
		if ok {
			consumed++
		}
		return p, ok
	}
	cell := ComputeCell(site, geo.UnitSquare(), counting)
	if cell.IsEmpty() {
		t.Fatal("cell must not be empty")
	}
	if consumed > 100 {
		t.Errorf("stopping rule consumed %d of %d sites", consumed, len(sites))
	}
}

func TestCellBuilderBasics(t *testing.T) {
	site := geo.Point{X: 0.25, Y: 0.5}
	b := NewCellBuilder(site, geo.UnitSquare())
	if b.Clips() != 0 {
		t.Error("fresh builder must have zero clips")
	}
	b.Clip(site) // self-clip is a no-op
	if b.Clips() != 0 {
		t.Error("self clip must not count")
	}
	b.Clip(geo.Point{X: 0.75, Y: 0.5})
	if b.Clips() != 1 {
		t.Error("clip count")
	}
	cell := b.Cell()
	if !cell.Contains(site) {
		t.Error("cell must contain its site")
	}
	if cell.Contains(geo.Point{X: 0.9, Y: 0.5}) {
		t.Error("cell must exclude the far half")
	}
	// Done: the farthest cell vertex is at distance ~sqrt(0.25²+0.5²).
	if b.Done(0.1) {
		t.Error("near neighbor cannot be done")
	}
	if !b.Done(10) {
		t.Error("far neighbor must be done")
	}
}

func TestComputeCellEmptyStream(t *testing.T) {
	site := geo.Point{X: 0.5, Y: 0.5}
	cell := ComputeCell(site, geo.UnitSquare(), func() (geo.Point, bool) {
		return geo.Point{}, false
	})
	if cell.Area() < 0.99 {
		t.Error("cell with no neighbors must be the whole bound")
	}
}

// Two sites: the intersection of their cells must be (nearly) empty, and
// their union must cover the square.
func TestTwoSitesPartition(t *testing.T) {
	a := geo.Point{X: 0.3, Y: 0.4}
	b := geo.Point{X: 0.7, Y: 0.6}
	cellA := ComputeCell(a, geo.UnitSquare(), sortedStream(a, []geo.Point{a, b}))
	cellB := ComputeCell(b, geo.UnitSquare(), sortedStream(b, []geo.Point{a, b}))
	inter := cellA.IntersectConvex(cellB)
	if inter.Area() > 1e-9 {
		t.Errorf("cells overlap with area %v", inter.Area())
	}
	if got := cellA.Area() + cellB.Area(); got < 1-1e-9 || got > 1+1e-9 {
		t.Errorf("cells do not partition the square: total %v", got)
	}
}
