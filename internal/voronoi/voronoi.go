// Package voronoi computes Voronoi cells incrementally by half-plane
// clipping, as required by the nearest-neighbor variant of spatio-textual
// preference queries (paper Section 7.2).
//
// The cell of a site t_i is the region whose points have t_i as their
// nearest neighbor within the feature set. It is built by clipping a
// bounding polygon with the perpendicular bisectors of t_i and its
// neighbors, visited in increasing distance from t_i. The construction
// stops — and the cell is provably exact — once the next neighbor is at
// least twice as far from the site as the farthest cell vertex: such a
// neighbor's bisector cannot cut the remaining cell.
package voronoi

import (
	"stpq/internal/geo"
)

// CellBuilder incrementally constructs the Voronoi cell of one site.
// Feed neighbors in non-decreasing distance from the site via Clip and
// stop when Done reports the cell can no longer change.
type CellBuilder struct {
	site    geo.Point
	cell    geo.Polygon
	maxDist float64 // max distance from site to any cell vertex
	clips   int
}

// NewCellBuilder starts a cell for site bounded by the given polygon
// (typically the unit square of the normalized data space).
func NewCellBuilder(site geo.Point, bound geo.Polygon) *CellBuilder {
	return &CellBuilder{site: site, cell: bound, maxDist: bound.MaxDist(site)}
}

// Clip intersects the current cell with the half-plane of points at least
// as close to the site as to other. Clipping with the site itself is a
// no-op.
func (b *CellBuilder) Clip(other geo.Point) {
	if other == b.site {
		return
	}
	b.clips++
	b.cell = b.cell.Clip(geo.Bisector(b.site, other))
	b.maxDist = b.cell.MaxDist(b.site)
}

// Done reports whether a neighbor at distance nextDist from the site can
// still modify the cell. Once nextDist ≥ 2·maxDist(site, cell) the cell is
// final: for any cell point q, dist(q, neighbor) ≥ nextDist − dist(q, site)
// ≥ 2·maxDist − maxDist ≥ dist(q, site), so the bisector cannot exclude q.
func (b *CellBuilder) Done(nextDist float64) bool {
	return nextDist >= 2*b.maxDist
}

// Cell returns the current cell polygon.
func (b *CellBuilder) Cell() geo.Polygon { return b.cell }

// Clips returns the number of bisector clips applied (a CPU-cost metric).
func (b *CellBuilder) Clips() int { return b.clips }

// ComputeCell builds the exact Voronoi cell of site within bound given a
// stream of neighbors in non-decreasing distance. next returns the
// neighbor point and true, or false when the stream is exhausted. The
// stream is consumed only as far as the stopping rule requires.
func ComputeCell(site geo.Point, bound geo.Polygon, next func() (geo.Point, bool)) geo.Polygon {
	b := NewCellBuilder(site, bound)
	for {
		p, ok := next()
		if !ok {
			return b.Cell()
		}
		if b.Done(p.Dist(site)) {
			return b.Cell()
		}
		b.Clip(p)
	}
}
