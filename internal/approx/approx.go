// Package approx is the approximate fast tier: a MinHash/LSH sketch
// layer over feature keyword sets that prunes textual candidates before
// the exact scoring kernels, trading a bounded amount of recall for
// latency. It follows the signature-approximation line of SEAL and the
// datasketch-style MinHash/LSH pairing of the exemplar repos.
//
// Every feature's keyword set (vocabulary ids) is folded into a MinHash
// signature of SignatureLen 32-bit minima. At query time the signature is
// split into b bands of r rows: a feature is a candidate iff at least one
// band agrees exactly with the query's signature — the classic banded-LSH
// acceptance curve P(candidate) = 1 − (1 − s^r)^b for Jaccard similarity
// s. The per-request recall target ρ picks (b, r) so that a minimally
// relevant feature (one shared keyword among ~10, s ≈ 0.1) survives with
// probability ≥ ρ; see ParamsForRecall.
//
// The package is deliberately dependency-light (kwset only) so the index
// layer can embed it without cycles. All hash seeds are package-level
// constants derived by splitmix64, so signatures are deterministic across
// processes, parts and shards — a sharded engine and an unsharded engine
// prune identically.
package approx

import (
	"math"
	"sync"
	"sync/atomic"

	"stpq/internal/kwset"
)

// SignatureLen is the number of MinHash functions (and 32-bit minima per
// signature). 128 minima estimate Jaccard similarity with a standard
// error of √(J(1−J)/128) ≤ 0.045.
const SignatureLen = 128

// DefaultRecall is the recall target used when an approximate query does
// not set one explicitly.
const DefaultRecall = 0.9

// Signature is one MinHash sketch: the per-hash-function minima over a
// keyword id set. The empty set's signature is all ^uint32(0).
type Signature [SignatureLen]uint32

// splitmix64 is the SplitMix64 finalizer — a cheap, well-distributed
// 64-bit mixer used both to derive the per-function seeds and to hash
// keyword ids under them.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// seeds holds one fixed 64-bit seed per hash function, derived from the
// function index so every process computes identical signatures.
var seeds = func() [SignatureLen]uint64 {
	var s [SignatureLen]uint64
	for i := range s {
		s[i] = splitmix64(uint64(i) + 0x5851f42d4c957f2d)
	}
	return s
}()

// hashAt returns hash function i applied to keyword id, folded to 32
// bits.
func hashAt(i int, id int) uint32 {
	return uint32(splitmix64(seeds[i]^uint64(uint32(id))) >> 32)
}

// SignatureOf computes the MinHash signature of a keyword id set.
func SignatureOf(set kwset.Set) Signature {
	var sig Signature
	for i := range sig {
		sig[i] = ^uint32(0)
	}
	set.ForEach(func(id int) {
		for i := range sig {
			if h := hashAt(i, id); h < sig[i] {
				sig[i] = h
			}
		}
	})
	return sig
}

// EstimateJaccard returns the fraction of agreeing signature positions —
// the unbiased MinHash estimator of Jaccard similarity.
func EstimateJaccard(a, b *Signature) float64 {
	agree := 0
	for i := range a {
		if a[i] == b[i] {
			agree++
		}
	}
	return float64(agree) / float64(SignatureLen)
}

// Params are the banded-LSH settings one recall target lowers to.
type Params struct {
	// Bands and Rows split the signature into Bands bands of Rows minima;
	// a feature is a candidate iff some band agrees exactly.
	Bands int
	Rows  int
	// SkipVerify, in signature-mode indexes, skips the exact-keyword
	// verification page read for candidates and scores them from the
	// MinHash similarity estimate instead — the I/O saving of the fast
	// tier. High recall targets (> 0.95) keep verification so the only
	// approximation left is the LSH candidate filter.
	SkipVerify bool
	// Recall is the target this parameterization was derived from (kept
	// for display and metrics).
	Recall float64
}

// minCandidateSim anchors the recall mapping: a feature sharing one
// keyword of ~10 with the query (Jaccard ≈ 0.1) is the weakest candidate
// the tier still promises to surface with probability ≥ the recall
// target. Features with higher similarity — the ones that actually rank —
// survive with strictly higher probability.
const minCandidateSim = 0.1

// ParamsForRecall maps a recall target ρ ∈ (0,1] to banded-LSH settings:
// Rows = 1 for high targets (gentlest filter), 2 below 0.6 (steeper
// acceptance curve, more pruning), then the smallest band count with
// 1 − (1 − s₀^Rows)^Bands ≥ ρ at s₀ = minCandidateSim, clamped to the
// signature length. See DESIGN.md §16 for the resulting table.
func ParamsForRecall(recall float64) Params {
	if recall <= 0 || recall > 1 || math.IsNaN(recall) {
		recall = DefaultRecall
	}
	rows := 1
	if recall < 0.6 {
		rows = 2
	}
	p := math.Pow(minCandidateSim, float64(rows))
	bands := SignatureLen / rows
	if recall < 1 {
		bands = int(math.Ceil(math.Log(1-recall) / math.Log(1-p)))
	}
	if bands < 1 {
		bands = 1
	}
	if bands > SignatureLen/rows {
		bands = SignatureLen / rows
	}
	return Params{Bands: bands, Rows: rows, SkipVerify: recall <= 0.95, Recall: recall}
}

// Candidate reports whether at least one band of the two signatures
// agrees exactly — the LSH acceptance test.
func (p Params) Candidate(a, b *Signature) bool {
	for band := 0; band < p.Bands; band++ {
		base := band * p.Rows
		hit := true
		for r := 0; r < p.Rows; r++ {
			if a[base+r] != b[base+r] {
				hit = false
				break
			}
		}
		if hit {
			return true
		}
	}
	return false
}

// Request is the per-query approximate-tier state, shared by every engine
// view (shards, sessions) executing one logical query: the lowered LSH
// parameters plus atomic pruning counters, safe for the sharded engine's
// concurrent scatter waves.
type Request struct {
	Params Params
	// Candidates counts leaf features checked against the sketch, Pruned
	// those the band filter rejected, and SkippedReads the verification
	// page reads the skip-verify path avoided.
	Candidates   atomic.Int64
	Pruned       atomic.Int64
	SkippedReads atomic.Int64
}

// NewRequest lowers a recall target (0 = DefaultRecall) into a request.
func NewRequest(recall float64) *Request {
	if recall == 0 {
		recall = DefaultRecall
	}
	return &Request{Params: ParamsForRecall(recall)}
}

// sketchEntry is one feature's sketch: its MinHash signature and keyword
// cardinality (needed to convert the Jaccard estimate to the other
// similarity measures).
type sketchEntry struct {
	sig  Signature
	card int32
}

// Sketch maps feature ids to their MinHash sketches for one index part.
// Reads and maintenance writes are internally synchronized, so live
// delta indexes can keep inserting while pinned snapshots query.
type Sketch struct {
	mu sync.RWMutex
	m  map[int64]sketchEntry
}

// NewSketch returns an empty sketch.
func NewSketch() *Sketch { return &Sketch{m: make(map[int64]sketchEntry)} }

// Put computes and stores the signature of one feature's keyword set.
func (s *Sketch) Put(id int64, set kwset.Set) {
	e := sketchEntry{sig: SignatureOf(set), card: int32(set.Count())}
	s.mu.Lock()
	s.m[id] = e
	s.mu.Unlock()
}

// Delete drops a feature's sketch. Missing ids are a no-op: lookups for
// unsketched features fall back to the exact path, so staleness in either
// direction is safe.
func (s *Sketch) Delete(id int64) {
	s.mu.Lock()
	delete(s.m, id)
	s.mu.Unlock()
}

// Get returns a copy of the feature's signature and its keyword
// cardinality, reporting whether the feature is sketched.
func (s *Sketch) Get(id int64) (Signature, int, bool) {
	s.mu.RLock()
	e, ok := s.m[id]
	s.mu.RUnlock()
	return e.sig, int(e.card), ok
}

// Len returns the number of sketched features.
func (s *Sketch) Len() int {
	s.mu.RLock()
	n := len(s.m)
	s.mu.RUnlock()
	return n
}

// Holder is the shared, lazily-built sketch slot of one index
// generation. Index views (per-query sessions, tombstone filters) are
// shallow struct copies sharing the holder pointer, so the sketch is
// built at most once per generation; mutating clones (incremental-merge
// targets) take a fresh holder instead.
type Holder struct {
	mu     sync.Mutex
	built  atomic.Bool
	sketch *Sketch
	err    error
}

// NewHolder returns an empty holder (sketch built on first Get).
func NewHolder() *Holder { return &Holder{} }

// NewBuiltHolder returns a holder around an already-built sketch (bulk
// load, where exact keyword sets are in memory anyway).
func NewBuiltHolder(s *Sketch) *Holder {
	h := &Holder{sketch: s}
	h.built.Store(true)
	return h
}

// Get returns the sketch, building it with the supplied closure on first
// use. The build result — error included — is sticky.
func (h *Holder) Get(build func() (*Sketch, error)) (*Sketch, error) {
	if h.built.Load() {
		return h.sketch, h.err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.built.Load() {
		h.sketch, h.err = build()
		h.built.Store(true)
	}
	return h.sketch, h.err
}

// Peek returns the sketch if it has been built, else nil. The
// maintenance path (Insert/Delete) updates only materialized sketches;
// an unbuilt one absorbs the mutation when it is later built from the
// index contents.
func (h *Holder) Peek() *Sketch {
	if h.built.Load() {
		return h.sketch
	}
	return nil
}
