package approx

// approx_test.go pins the fast tier's invariants: signatures are
// deterministic (the cross-process/shard agreement everything else builds
// on), the MinHash estimator tracks true Jaccard similarity, the recall →
// (bands, rows) mapping respects its clamps and verification threshold,
// and sketch/holder maintenance is lazy and sticky.

import (
	"errors"
	"math"
	"testing"

	"stpq/internal/kwset"
)

// setOf builds a keyword set wide enough for the given ids.
func setOf(ids ...int) kwset.Set {
	width := 1
	for _, id := range ids {
		if id >= width {
			width = id + 1
		}
	}
	s := kwset.NewSet(width)
	for _, id := range ids {
		s.Add(id)
	}
	return s
}

func TestSignatureDeterministic(t *testing.T) {
	a := SignatureOf(setOf(1, 5, 9))
	b := SignatureOf(setOf(9, 1, 5))
	if a != b {
		t.Fatal("signature depends on insertion order")
	}
	// Width must not matter: the ids are the identity, not the bitmap size.
	w := kwset.NewSet(1024)
	w.Add(1)
	w.Add(5)
	w.Add(9)
	if SignatureOf(w) != a {
		t.Fatal("signature depends on set width")
	}
	var empty Signature
	for i := range empty {
		empty[i] = ^uint32(0)
	}
	if SignatureOf(kwset.NewSet(8)) != empty {
		t.Fatal("empty set signature must be all max")
	}
}

func TestEstimateJaccard(t *testing.T) {
	a := SignatureOf(setOf(0, 1, 2, 3))
	if j := EstimateJaccard(&a, &a); j != 1 {
		t.Fatalf("self similarity = %v, want 1", j)
	}
	b := SignatureOf(setOf(100, 101, 102, 103))
	if j := EstimateJaccard(&a, &b); j > 0.1 {
		t.Fatalf("disjoint similarity = %v, want ~0", j)
	}
	// Half-overlapping sets: J = 2/6 ≈ 0.33; the 128-hash estimate should
	// land within a few standard errors (√(J(1−J)/128) ≈ 0.042).
	c := SignatureOf(setOf(0, 1, 200, 201))
	if j := EstimateJaccard(&a, &c); math.Abs(j-1.0/3) > 0.15 {
		t.Fatalf("overlap estimate %v too far from 1/3", j)
	}
}

func TestParamsForRecall(t *testing.T) {
	cases := []struct {
		recall     float64
		rows       int
		skipVerify bool
	}{
		{0.5, 2, true},
		{0.75, 1, true},
		{0.9, 1, true},
		{0.95, 1, true},
		{0.99, 1, false},
		{1, 1, false},
	}
	prevBands := 0
	prevRows := 1
	for _, c := range cases {
		p := ParamsForRecall(c.recall)
		if p.Rows != c.rows {
			t.Errorf("recall %v: rows %d, want %d", c.recall, p.Rows, c.rows)
		}
		if p.SkipVerify != c.skipVerify {
			t.Errorf("recall %v: SkipVerify %v, want %v", c.recall, p.SkipVerify, c.skipVerify)
		}
		if p.Bands < 1 || p.Bands*p.Rows > SignatureLen {
			t.Errorf("recall %v: bands %d rows %d outside the signature", c.recall, p.Bands, p.Rows)
		}
		// Same row count → a higher target must not use fewer bands.
		if p.Rows == prevRows && p.Bands < prevBands {
			t.Errorf("recall %v: bands %d below previous %d", c.recall, p.Bands, prevBands)
		}
		prevBands, prevRows = p.Bands, p.Rows
		// The acceptance probability at the anchor similarity must reach
		// the target (unless the band clamp binds).
		accept := 1 - math.Pow(1-math.Pow(minCandidateSim, float64(p.Rows)), float64(p.Bands))
		if p.Bands < SignatureLen/p.Rows && accept < c.recall-1e-9 {
			t.Errorf("recall %v: acceptance %v below target", c.recall, accept)
		}
	}
	// Invalid targets take the default.
	for _, bad := range []float64{-1, 0, 1.5, math.NaN()} {
		if got, want := ParamsForRecall(bad), ParamsForRecall(DefaultRecall); got != want {
			t.Errorf("ParamsForRecall(%v) = %+v, want default %+v", bad, got, want)
		}
	}
}

func TestCandidateIdenticalAndDisjoint(t *testing.T) {
	p := ParamsForRecall(0.9)
	a := SignatureOf(setOf(3, 7, 11))
	if !p.Candidate(&a, &a) {
		t.Fatal("identical signatures must be candidates")
	}
	b := SignatureOf(setOf(500, 501, 502))
	if p.Candidate(&a, &b) {
		t.Fatal("disjoint small sets should not collide under 128 distinct minima")
	}
}

func TestSketchMaintenance(t *testing.T) {
	s := NewSketch()
	s.Put(1, setOf(1, 2, 3))
	sig, card, ok := s.Get(1)
	if !ok || card != 3 || sig != SignatureOf(setOf(1, 2, 3)) {
		t.Fatalf("Get after Put: ok=%v card=%d", ok, card)
	}
	s.Put(1, setOf(4))
	if _, card, _ := s.Get(1); card != 1 {
		t.Fatalf("Put must overwrite, card=%d", card)
	}
	s.Delete(1)
	if _, _, ok := s.Get(1); ok {
		t.Fatal("Get after Delete")
	}
	s.Delete(99) // missing ids are a no-op
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
}

func TestHolderLazyAndSticky(t *testing.T) {
	h := NewHolder()
	if h.Peek() != nil {
		t.Fatal("Peek before build must be nil")
	}
	builds := 0
	sk, err := h.Get(func() (*Sketch, error) {
		builds++
		return NewSketch(), nil
	})
	if err != nil || sk == nil {
		t.Fatalf("Get: %v", err)
	}
	if again, _ := h.Get(func() (*Sketch, error) {
		builds++
		return NewSketch(), nil
	}); again != sk || builds != 1 {
		t.Fatalf("build ran %d times", builds)
	}
	if h.Peek() != sk {
		t.Fatal("Peek after build must return the sketch")
	}

	// Errors stick too: the failed build is not retried per query.
	boom := errors.New("boom")
	he := NewHolder()
	if _, err := he.Get(func() (*Sketch, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("first Get: %v", err)
	}
	if _, err := he.Get(func() (*Sketch, error) { t.Fatal("rebuilt"); return nil, nil }); !errors.Is(err, boom) {
		t.Fatalf("second Get: %v", err)
	}

	hb := NewBuiltHolder(NewSketch())
	if hb.Peek() == nil {
		t.Fatal("NewBuiltHolder must be built")
	}
}

// FuzzMinHashSignature checks, for arbitrary keyword id sets, that
// signatures are deterministic, self-similar, and band-agreement is
// symmetric and consistent with the signature equality it is defined by.
func FuzzMinHashSignature(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{2, 3, 4}, 0.9)
	f.Add([]byte{}, []byte{7}, 0.5)
	f.Add([]byte{0, 0, 255}, []byte{0}, 0.99)
	f.Fuzz(func(t *testing.T, rawA, rawB []byte, recall float64) {
		idsOf := func(raw []byte) []int {
			ids := make([]int, 0, len(raw))
			for _, b := range raw {
				ids = append(ids, int(b))
			}
			return ids
		}
		a1 := SignatureOf(setOf(idsOf(rawA)...))
		a2 := SignatureOf(setOf(idsOf(rawA)...))
		if a1 != a2 {
			t.Fatal("signature not deterministic")
		}
		b := SignatureOf(setOf(idsOf(rawB)...))
		if EstimateJaccard(&a1, &a1) != 1 {
			t.Fatal("self estimate must be 1")
		}
		if j := EstimateJaccard(&a1, &b); j < 0 || j > 1 {
			t.Fatalf("estimate %v outside [0,1]", j)
		}
		p := ParamsForRecall(recall)
		if p.Bands < 1 || p.Rows < 1 || p.Bands*p.Rows > SignatureLen {
			t.Fatalf("params %+v outside the signature", p)
		}
		if p.Candidate(&a1, &b) != p.Candidate(&b, &a1) {
			t.Fatal("candidate test not symmetric")
		}
		if !p.Candidate(&a1, &a2) {
			t.Fatal("identical signatures must be candidates")
		}
		// A candidate has ≥ Rows agreeing positions, so its Jaccard
		// estimate is strictly positive.
		if p.Candidate(&a1, &b) && EstimateJaccard(&a1, &b) < float64(p.Rows)/SignatureLen {
			t.Fatal("candidate with estimate below the band floor")
		}
	})
}
