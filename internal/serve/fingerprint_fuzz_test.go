package serve

import (
	"fmt"
	"math/rand"
	"testing"

	"stpq"
)

// TestFingerprintTable is a t.Run table over the canonicalization rules:
// permuted and duplicated keywords must collapse to the same fingerprint,
// while each scalar parameter must keep distinct queries apart.
func TestFingerprintTable(t *testing.T) {
	base := stpq.Query{
		K: 10, Radius: 0.02, Lambda: 0.5,
		Keywords: map[string][]string{"food": {"pizza", "sushi"}, "cafes": {"latte"}},
	}
	cases := []struct {
		name string
		q    stpq.Query
		same bool
	}{
		{"identical", stpq.Query{K: 10, Radius: 0.02, Lambda: 0.5,
			Keywords: map[string][]string{"food": {"pizza", "sushi"}, "cafes": {"latte"}}}, true},
		{"permuted keywords", stpq.Query{K: 10, Radius: 0.02, Lambda: 0.5,
			Keywords: map[string][]string{"cafes": {"latte"}, "food": {"sushi", "pizza"}}}, true},
		{"duplicate keywords", stpq.Query{K: 10, Radius: 0.02, Lambda: 0.5,
			Keywords: map[string][]string{"food": {"pizza", "sushi", "pizza", "sushi"}, "cafes": {"latte", "latte"}}}, true},
		{"case and whitespace", stpq.Query{K: 10, Radius: 0.02, Lambda: 0.5,
			Keywords: map[string][]string{"food": {" PIZZA ", "Sushi"}, "cafes": {"LATTE"}}}, true},
		{"empty set dropped", stpq.Query{K: 10, Radius: 0.02, Lambda: 0.5,
			Keywords: map[string][]string{"food": {"pizza", "sushi"}, "cafes": {"latte"}, "bars": {}}}, true},
		{"different k", stpq.Query{K: 11, Radius: 0.02, Lambda: 0.5, Keywords: base.Keywords}, false},
		{"different radius", stpq.Query{K: 10, Radius: 0.021, Lambda: 0.5, Keywords: base.Keywords}, false},
		{"different lambda", stpq.Query{K: 10, Radius: 0.02, Lambda: 0.51, Keywords: base.Keywords}, false},
		{"different variant", stpq.Query{K: 10, Radius: 0.02, Lambda: 0.5, Variant: stpq.NearestNeighbor, Keywords: base.Keywords}, false},
		{"different algorithm", stpq.Query{K: 10, Radius: 0.02, Lambda: 0.5, Algorithm: stpq.STDS, Keywords: base.Keywords}, false},
		{"different similarity", stpq.Query{K: 10, Radius: 0.02, Lambda: 0.5, Similarity: stpq.CosineSim, Keywords: base.Keywords}, false},
		{"extra keyword", stpq.Query{K: 10, Radius: 0.02, Lambda: 0.5,
			Keywords: map[string][]string{"food": {"pizza", "sushi", "pho"}, "cafes": {"latte"}}}, false},
		{"keyword moved across sets", stpq.Query{K: 10, Radius: 0.02, Lambda: 0.5,
			Keywords: map[string][]string{"food": {"pizza"}, "cafes": {"latte", "sushi"}}}, false},
	}
	fp := Fingerprint(base)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Fingerprint(tc.q)
			if tc.same && got != fp {
				t.Errorf("fingerprint %q differs from base %q", got, fp)
			}
			if !tc.same && got == fp {
				t.Errorf("fingerprint %q collides with base", got)
			}
		})
	}
}

// FuzzFingerprint drives the canonicalization with derived inputs: any
// permutation + duplication of a query's keywords must fingerprint
// identically, and perturbing k, r or λ must never collide with the
// original.
func FuzzFingerprint(f *testing.F) {
	f.Add(int64(1), 5, 0.01, 0.5, "pizza,sushi", "latte")
	f.Add(int64(2), 1, 0.2, 0.0, "a", "")
	f.Add(int64(3), 100, 1e-9, 1.0, "x,y,z,x", "y,Y, y ")
	f.Fuzz(func(t *testing.T, seed int64, k int, radius, lambda float64, kwsA, kwsB string) {
		if k <= 0 || radius <= 0 || lambda < 0 || lambda > 1 ||
			radius != radius || lambda != lambda { // reject NaN
			t.Skip()
		}
		q := stpq.Query{
			K: k, Radius: radius, Lambda: lambda,
			Keywords: map[string][]string{"a": splitKw(kwsA), "b": splitKw(kwsB)},
		}
		fp := Fingerprint(q)
		rng := rand.New(rand.NewSource(seed))
		shuffled := stpq.Query{K: k, Radius: radius, Lambda: lambda,
			Keywords: map[string][]string{}}
		for name, kws := range q.Keywords {
			dup := append([]string(nil), kws...)
			if len(dup) > 0 { // duplicate a random keyword, then shuffle
				dup = append(dup, dup[rng.Intn(len(dup))])
			}
			rng.Shuffle(len(dup), func(i, j int) { dup[i], dup[j] = dup[j], dup[i] })
			shuffled.Keywords[name] = dup
		}
		if got := Fingerprint(shuffled); got != fp {
			t.Fatalf("permuted/duplicated keywords changed fingerprint: %q vs %q", got, fp)
		}
		perturbed := []stpq.Query{
			{K: k + 1, Radius: radius, Lambda: lambda, Keywords: q.Keywords},
			{K: k, Radius: radius * (1 + 1e-9), Lambda: lambda, Keywords: q.Keywords},
			{K: k, Radius: radius, Lambda: nextLambda(lambda), Keywords: q.Keywords},
		}
		for i, p := range perturbed {
			if p.Radius == radius && i == 1 {
				continue // perturbation vanished (denormal edge); nothing to check
			}
			if p.Lambda == lambda && i == 2 {
				continue
			}
			if got := Fingerprint(p); got == fp {
				t.Fatalf("perturbation %d collides: %+v", i, p)
			}
		}
	})
}

// splitKw turns a comma-separated fuzz string into a keyword list.
func splitKw(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}

// nextLambda nudges λ to a different valid value.
func nextLambda(l float64) float64 {
	if l < 0.5 {
		return l + 0.25
	}
	return l - 0.25
}

// sanity: the fuzz helpers themselves.
func TestSplitKw(t *testing.T) {
	got := splitKw("a,b,,c")
	want := []string{"a", "b", "", "c"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("splitKw = %v, want %v", got, want)
	}
	if splitKw("") != nil {
		t.Fatal("empty input must split to nil")
	}
}
