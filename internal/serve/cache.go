package serve

// cache.go implements the service's LRU result cache. Entries are keyed
// by a canonical query fingerprint and stamped with the index build
// generation they were computed against; a lookup whose generation does
// not match evicts the stale entry and misses, which is how Rebuild
// invalidates the cache without a synchronous purge.

import (
	"container/list"
	"sort"
	"strconv"
	"strings"
	"sync"

	"stpq"
	"stpq/internal/kwset"
	"stpq/internal/obs"
)

// Fingerprint returns the canonical cache key of a query: two queries
// have equal fingerprints iff they are semantically identical. Keyword
// lists are normalized (lower-cased, trimmed), sorted and deduplicated;
// feature sets with no keywords are dropped (they match nothing either
// way); floats are rendered exactly.
func Fingerprint(q stpq.Query) string {
	var b strings.Builder
	b.WriteString("v")
	b.WriteString(strconv.Itoa(int(q.Variant)))
	b.WriteString("|a")
	b.WriteString(strconv.Itoa(int(q.Algorithm)))
	b.WriteString("|s")
	b.WriteString(strconv.Itoa(int(q.Similarity)))
	b.WriteString("|k")
	b.WriteString(strconv.Itoa(q.K))
	b.WriteString("|r")
	b.WriteString(strconv.FormatFloat(q.Radius, 'x', -1, 64))
	b.WriteString("|l")
	b.WriteString(strconv.FormatFloat(q.Lambda, 'x', -1, 64))
	if q.Mode == stpq.ModeApprox {
		// Approx results live in their own cache namespace, keyed by the
		// recall target: an approx answer must never satisfy an exact
		// lookup (or one at a different recall), and exact fingerprints
		// stay byte-identical to what they were before the fast tier.
		b.WriteString("|m=approx|q")
		b.WriteString(strconv.FormatFloat(q.Recall, 'x', -1, 64))
	}
	names := make([]string, 0, len(q.Keywords))
	for name, kws := range q.Keywords {
		if len(kws) > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		b.WriteString("|")
		b.WriteString(strconv.Quote(name))
		b.WriteString("=")
		kws := make([]string, 0, len(q.Keywords[name]))
		for _, w := range q.Keywords[name] {
			if n := kwset.Normalize(w); n != "" {
				kws = append(kws, n)
			}
		}
		sort.Strings(kws)
		prev := ""
		for i, w := range kws {
			if i > 0 && w == prev {
				continue
			}
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString(strconv.Quote(w))
			prev = w
		}
	}
	return b.String()
}

type cacheEntry struct {
	key  string
	gen  uint64
	resp Response
}

// resultCache is a mutex-protected LRU map from fingerprint to Response.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	lru     *list.List // front = most recently used
	entries map[string]*list.Element
	// evictions counts entries dropped for capacity or staleness; nil
	// disables counting.
	evictions *obs.Counter
}

func newResultCache(capacity int, evictions *obs.Counter) *resultCache {
	return &resultCache{
		cap:       capacity,
		lru:       list.New(),
		entries:   make(map[string]*list.Element, capacity),
		evictions: evictions,
	}
}

// evicted records one dropped entry.
func (c *resultCache) evicted() {
	if c.evictions != nil {
		c.evictions.Inc()
	}
}

// get returns the cached response for key if present and computed at the
// given generation. A generation mismatch evicts the stale entry.
func (c *resultCache) get(key string, gen uint64) (Response, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return Response{}, false
	}
	e := el.Value.(*cacheEntry)
	if e.gen != gen {
		c.lru.Remove(el)
		delete(c.entries, key)
		c.evicted()
		return Response{}, false
	}
	c.lru.MoveToFront(el)
	return cachedCopy(e.resp), true
}

// put stores a response, evicting the least recently used entry when full.
func (c *resultCache) put(key string, gen uint64, resp Response) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).gen = gen
		el.Value.(*cacheEntry).resp = resp
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, gen: gen, resp: resp})
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.entries, back.Value.(*cacheEntry).key)
		c.evicted()
	}
}

// len returns the number of cached entries.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// cachedCopy returns the response with Cached set and the result slice
// copied, so callers may mutate what they get back.
func cachedCopy(r Response) Response {
	out := r
	out.Cached = true
	out.Results = make([]stpq.Result, len(r.Results))
	copy(out.Results, r.Results)
	return out
}
