package serve

// ingest.go is the HTTP write path: POST /ingest accepts a batch of
// upserts and deletes, lowers it into stpq mutations in a deterministic
// order, and applies it through the DB's WAL-durable write path. The
// response reports the new generation so clients can correlate with
// /query responses (results carry the generation they were computed at).
//
// Error mapping: malformed/invalid batch → 400, no WAL attached or
// unsupported configuration → 501, shutting down → 503.

import (
	"net/http"
	"sort"

	"stpq"

	"encoding/json"
	"errors"
)

// ObjectJSON is one data object in an IngestRequest.
type ObjectJSON struct {
	ID int64   `json:"id"`
	X  float64 `json:"x"`
	Y  float64 `json:"y"`
}

// FeatureJSON is one feature in an IngestRequest.
type FeatureJSON struct {
	ID       int64    `json:"id"`
	X        float64  `json:"x"`
	Y        float64  `json:"y"`
	Score    float64  `json:"score"`
	Keywords []string `json:"keywords,omitempty"`
}

// IngestRequest is the JSON body of POST /ingest. The whole request is
// applied as one atomic, durable batch in a fixed order: object upserts,
// object deletes, feature upserts (sets in name order), feature deletes.
type IngestRequest struct {
	Objects        []ObjectJSON             `json:"objects,omitempty"`
	DeleteObjects  []int64                  `json:"delete_objects,omitempty"`
	Features       map[string][]FeatureJSON `json:"features,omitempty"`
	DeleteFeatures map[string][]int64       `json:"delete_features,omitempty"`
	// Flush forces a merge into a new base generation after the batch.
	Flush bool `json:"flush,omitempty"`
}

// Mutations lowers the request into the library's mutation order.
func (r IngestRequest) Mutations() []stpq.Mutation {
	var muts []stpq.Mutation
	for _, o := range r.Objects {
		o := o
		muts = append(muts, stpq.Mutation{Op: stpq.OpUpsertObject,
			Object: &stpq.Object{ID: o.ID, X: o.X, Y: o.Y}})
	}
	for _, id := range r.DeleteObjects {
		muts = append(muts, stpq.Mutation{Op: stpq.OpDeleteObject, ID: id})
	}
	for _, name := range sortedKeys(r.Features) {
		for _, f := range r.Features[name] {
			f := f
			muts = append(muts, stpq.Mutation{Op: stpq.OpUpsertFeature, Set: name,
				Feature: &stpq.Feature{ID: f.ID, X: f.X, Y: f.Y, Score: f.Score, Keywords: f.Keywords}})
		}
	}
	for _, name := range sortedKeys(r.DeleteFeatures) {
		for _, id := range r.DeleteFeatures[name] {
			muts = append(muts, stpq.Mutation{Op: stpq.OpDeleteFeature, Set: name, ID: id})
		}
	}
	return muts
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// IngestResponse is the JSON body answering POST /ingest.
type IngestResponse struct {
	// Applied is the number of mutations in the durable batch.
	Applied int `json:"applied"`
	// Generation is the index generation serving the batch.
	Generation uint64 `json:"generation"`
	// Pending is the delta size after the batch (0 right after a merge).
	Pending int `json:"pending"`
	// WALSeq is the WAL sequence number the batch was logged at.
	WALSeq uint64 `json:"wal_seq"`
	// Flushed reports that the request forced a merge.
	Flushed bool `json:"flushed,omitempty"`
}

func (s *Service) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.Closed() {
		httpError(w, http.StatusServiceUnavailable, ErrClosed.Error())
		return
	}
	var req IngestRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "malformed request: "+err.Error())
		return
	}
	muts := req.Mutations()
	if len(muts) == 0 && !req.Flush {
		httpError(w, http.StatusBadRequest, "empty ingest batch")
		return
	}
	if err := s.db.Apply(muts); err != nil {
		httpError(w, ingestStatusOf(err), err.Error())
		return
	}
	s.ingests.Add(int64(len(muts)))
	if req.Flush {
		if err := s.db.Flush(); err != nil {
			httpError(w, ingestStatusOf(err), err.Error())
			return
		}
	}
	snap, err := s.db.Snapshot()
	if err != nil {
		httpError(w, statusOf(err), err.Error())
		return
	}
	writeJSON(w, http.StatusOK, IngestResponse{
		Applied:    len(muts),
		Generation: snap.Generation(),
		Pending:    s.db.PendingOps(),
		WALSeq:     s.db.WALSeq(),
		Flushed:    req.Flush,
	})
}

// ingestStatusOf maps write-path errors onto HTTP status codes.
func ingestStatusOf(err error) int {
	switch {
	case errors.Is(err, stpq.ErrInvalidMutation):
		return http.StatusBadRequest
	case errors.Is(err, stpq.ErrNoWAL), errors.Is(err, stpq.ErrIngestUnsupported):
		return http.StatusNotImplemented
	case errors.Is(err, stpq.ErrNotBuilt):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}
