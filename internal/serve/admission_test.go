package serve

// admission_test.go covers the cost-aware admission path: queries are only
// shed when their shape's predicted cost is warm AND the summed in-flight
// predicted cost would blow the configured budget; cold shapes always fall
// back to queue-only admission, the budget drains back to zero, and the
// shed is observable in /metrics with a per-shape label.

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"stpq"
)

// warmShape runs the query enough times (cache-bypassing via Do on a
// cache-disabled service) that its shape prediction is warm.
func warmShape(t *testing.T, svc *Service, q stpq.Query) {
	t.Helper()
	for i := 0; i < stpq.MinPredictSamples; i++ {
		if _, err := svc.Do(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAdmissionColdShapeNotShed(t *testing.T) {
	db := testDB(t, stpq.Config{}, 200, 200)
	svc, err := New(db, Config{Workers: 1, CacheEntries: -1, MaxInflightCost: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	// Budget of 1ns would shed anything with a known cost — but the shape
	// is cold, so admission must fall back to queue-only and succeed.
	if _, err := svc.Do(context.Background(), testQuery(3)); err != nil {
		t.Fatalf("cold shape shed: %v", err)
	}
}

func TestAdmissionShedsWarmShapeOverBudget(t *testing.T) {
	db := testDB(t, stpq.Config{}, 200, 200)
	svc, err := New(db, Config{Workers: 1, CacheEntries: -1, MaxInflightCost: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	q := testQuery(3)
	warmShape(t, svc, q)
	// Pretend another expensive query is in flight: any warm-shape arrival
	// must now be shed with the distinct sentinel.
	svc.inflightCost.Add(int64(time.Second))
	defer svc.inflightCost.Add(-int64(time.Second))
	_, err = svc.Do(context.Background(), q)
	if !errors.Is(err, ErrShedExpensive) {
		t.Fatalf("got %v, want ErrShedExpensive", err)
	}
	if errors.Is(err, ErrOverloaded) {
		t.Fatal("cost shed must be distinguishable from queue-full")
	}
	if got := reasonOf(err); got != "shed-expensive-cost" {
		t.Fatalf("reasonOf = %q", got)
	}
	// The shed must be visible in the metrics text, with a per-shape label.
	var sb strings.Builder
	if err := svc.metrics.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if !strings.Contains(text, `stpq_serve_rejected_total{reason="expensive"} 1`) {
		t.Fatalf("rejected counter missing:\n%s", text)
	}
	if !strings.Contains(text, `stpq_serve_shed_total{shape=`) {
		t.Fatalf("per-shape shed counter missing:\n%s", text)
	}
}

func TestAdmissionNeverStarves(t *testing.T) {
	// Even when one query's predicted cost alone exceeds the budget, it must
	// be admitted while nothing else is in flight — otherwise an over-budget
	// shape could never run again and its statistics could never improve.
	db := testDB(t, stpq.Config{}, 200, 200)
	svc, err := New(db, Config{Workers: 1, CacheEntries: -1, MaxInflightCost: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	q := testQuery(3)
	warmShape(t, svc, q)
	if _, err := svc.Do(context.Background(), q); err != nil {
		t.Fatalf("sole over-budget query rejected: %v", err)
	}
}

func TestAdmissionBudgetDrains(t *testing.T) {
	db := testDB(t, stpq.Config{}, 200, 200)
	svc, err := New(db, Config{Workers: 2, CacheEntries: -1, MaxInflightCost: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	q := testQuery(3)
	warmShape(t, svc, q)
	for i := 0; i < 8; i++ {
		if _, err := svc.Do(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	// Do is synchronous: by the time it returns, the worker released the
	// reservation. A leak here would ratchet the budget shut over time.
	if in := svc.inflightCost.Load(); in != 0 {
		t.Fatalf("in-flight cost did not drain: %d", in)
	}
}

func TestAdmissionDisabledByDefault(t *testing.T) {
	db := testDB(t, stpq.Config{}, 200, 200)
	svc, err := New(db, Config{Workers: 1, CacheEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	q := testQuery(3)
	warmShape(t, svc, q)
	svc.inflightCost.Add(int64(time.Hour))
	defer svc.inflightCost.Add(-int64(time.Hour))
	if _, err := svc.Do(context.Background(), q); err != nil {
		t.Fatalf("admission active without MaxInflightCost: %v", err)
	}
}
