package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"stpq"
)

// ingestServer builds a WAL-backed service for the write-path tests.
func ingestServer(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	cfg := stpq.Config{WALDir: t.TempDir(), AutoFlushOps: -1}
	db := testDB(t, cfg, 100, 100)
	svc, err := New(db, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() { srv.Close(); svc.Close() })
	return svc, srv
}

func postIngest(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/ingest", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	if _, err := jsonCopy(&buf, resp); err != nil {
		t.Fatal(err)
	}
	return resp, []byte(buf.String())
}

func TestHTTPIngest(t *testing.T) {
	svc, srv := ingestServer(t)
	genBefore := mustGen(t, svc)

	body := `{
		"objects": [{"id": 9001, "x": 0.42, "y": 0.42}],
		"delete_objects": [1],
		"features": {"restaurants": [{"id": 9002, "x": 0.43, "y": 0.42, "score": 0.9, "keywords": ["kw1"]}]},
		"delete_features": {"cafes": [101]}
	}`
	resp, data := postIngest(t, srv.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out IngestResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Applied != 4 {
		t.Fatalf("applied = %d, want 4", out.Applied)
	}
	if out.Generation <= genBefore {
		t.Fatalf("generation %d did not advance past %d", out.Generation, genBefore)
	}
	if out.Pending != 4 || out.WALSeq == 0 {
		t.Fatalf("pending=%d walseq=%d", out.Pending, out.WALSeq)
	}
	// The ingested object must be queryable immediately (overlay path).
	qbody := `{"k":3,"radius":0.05,"lambda":0.5,"keywords":{"restaurants":["kw1"]}}`
	qresp, qdata := postQuery(t, srv.URL, qbody)
	if qresp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %s", qresp.StatusCode, qdata)
	}
	var qout QueryResponse
	if err := json.Unmarshal(qdata, &qout); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range qout.Results {
		if r.ID == 9001 {
			found = true
		}
	}
	if !found {
		t.Fatalf("ingested object 9001 missing from query results: %+v", qout.Results)
	}

	// Flush merges the delta; pending drops to zero and the result cache
	// keys on the new generation.
	resp, data = postIngest(t, srv.URL, `{"flush": true, "delete_objects": [2]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flush status %d: %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Flushed || out.Pending != 0 {
		t.Fatalf("flush response %+v", out)
	}
	if got := svc.Metrics().Snapshot().Counters["stpq_serve_ingested_total"]; got != 5 {
		t.Fatalf("stpq_serve_ingested_total = %d, want 5", got)
	}
}

func TestHTTPIngestErrors(t *testing.T) {
	_, srv := ingestServer(t)
	cases := []struct {
		body   string
		status int
	}{
		{`{`, http.StatusBadRequest},                                  // malformed JSON
		{`{}`, http.StatusBadRequest},                                 // empty batch
		{`{"nope": 1}`, http.StatusBadRequest},                        // unknown field
		{`{"delete_features": {"nope": [1]}}`, http.StatusBadRequest}, // unknown set
		{`{"features": {"cafes": [{"id": 1, "score": 2.0}]}}`, http.StatusBadRequest},
	}
	for i, c := range cases {
		resp, data := postIngest(t, srv.URL, c.body)
		if resp.StatusCode != c.status {
			t.Fatalf("case %d: status %d, want %d (%s)", i, resp.StatusCode, c.status, data)
		}
	}

	// Without a WAL the endpoint reports the capability is absent.
	db := testDB(t, stpq.Config{}, 50, 50)
	svc, err := New(db, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(svc.Handler())
	defer func() { srv2.Close(); svc.Close() }()
	resp, data := postIngest(t, srv2.URL, `{"delete_objects": [1]}`)
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("no-WAL ingest: status %d, want 501 (%s)", resp.StatusCode, data)
	}
}

func mustGen(t *testing.T, svc *Service) uint64 {
	t.Helper()
	snap, err := svc.DB().Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return snap.Generation()
}
