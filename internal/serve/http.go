package serve

// http.go is the HTTP front end used by cmd/stpqd:
//
//	POST /query    JSON query in, JSON results + per-query stats out
//	POST /ingest   JSON mutation batch in, applied through the WAL (ingest.go)
//	GET  /healthz  liveness (503 once Close has begun)
//	GET  /readyz   alias of /healthz (cmd/stpqd answers both with 503
//	               itself while the index is still building)
//	GET  /metrics  Prometheus text format: DB registry, then serve registry
//	GET  /info     dataset shape, for load generators (cmd/stpqload)
//
// Error mapping: invalid query → 400, queue full → 429, deadline → 504,
// shutting down → 503.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"stpq"
)

// QueryRequest is the JSON body of POST /query. Enumerations are spelled
// as strings; missing fields take the library defaults (range variant,
// STPS algorithm, Jaccard similarity).
type QueryRequest struct {
	K          int                 `json:"k"`
	Radius     float64             `json:"radius"`
	Lambda     float64             `json:"lambda"`
	Keywords   map[string][]string `json:"keywords"`
	Variant    string              `json:"variant,omitempty"`    // range | influence | nn
	Algorithm  string              `json:"algorithm,omitempty"`  // stps | stds
	Similarity string              `json:"similarity,omitempty"` // jaccard | dice | cosine | overlap
}

// Query lowers the request into a library query, rejecting unknown
// enumeration spellings with errors that wrap stpq.ErrInvalidQuery.
func (r QueryRequest) Query() (stpq.Query, error) {
	q := stpq.Query{K: r.K, Radius: r.Radius, Lambda: r.Lambda, Keywords: r.Keywords}
	switch r.Variant {
	case "", "range":
		q.Variant = stpq.Range
	case "influence":
		q.Variant = stpq.Influence
	case "nn", "nearest-neighbor":
		q.Variant = stpq.NearestNeighbor
	default:
		return q, fmt.Errorf("%w: unknown variant %q", stpq.ErrInvalidQuery, r.Variant)
	}
	switch r.Algorithm {
	case "", "stps":
		q.Algorithm = stpq.STPS
	case "stds":
		q.Algorithm = stpq.STDS
	default:
		return q, fmt.Errorf("%w: unknown algorithm %q", stpq.ErrInvalidQuery, r.Algorithm)
	}
	switch r.Similarity {
	case "", "jaccard":
		q.Similarity = stpq.JaccardSim
	case "dice":
		q.Similarity = stpq.DiceSim
	case "cosine":
		q.Similarity = stpq.CosineSim
	case "overlap":
		q.Similarity = stpq.OverlapSim
	default:
		return q, fmt.Errorf("%w: unknown similarity %q", stpq.ErrInvalidQuery, r.Similarity)
	}
	return q, nil
}

// ResultJSON is one ranked object in a QueryResponse.
type ResultJSON struct {
	ID    int64   `json:"id"`
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
	Score float64 `json:"score"`
}

// StatsJSON is the per-query cost breakdown in a QueryResponse.
type StatsJSON struct {
	CPUMicros      int64      `json:"cpu_us"`
	IOMicros       int64      `json:"io_us"`
	TotalMicros    int64      `json:"total_us"`
	LogicalReads   int64      `json:"logical_reads"`
	PhysicalReads  int64      `json:"physical_reads"`
	Combinations   int        `json:"combinations,omitempty"`
	FeaturesPulled int        `json:"features_pulled,omitempty"`
	ObjectsScored  int        `json:"objects_scored,omitempty"`
	Trace          *stpq.Span `json:"trace,omitempty"`
}

// QueryResponse is the JSON body answering POST /query.
type QueryResponse struct {
	Results    []ResultJSON `json:"results"`
	Stats      StatsJSON    `json:"stats"`
	Cached     bool         `json:"cached"`
	Generation uint64       `json:"generation"`
	ElapsedUS  int64        `json:"elapsed_us"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the service's HTTP mux.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/ingest", s.handleIngest)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/info", s.handleInfo)
	return mux
}

func (s *Service) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req QueryRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "malformed request: "+err.Error())
		return
	}
	q, err := req.Query()
	if err != nil {
		httpError(w, statusOf(err), err.Error())
		return
	}
	start := time.Now()
	resp, err := s.Do(r.Context(), q)
	if err != nil {
		httpError(w, statusOf(err), err.Error())
		return
	}
	out := QueryResponse{
		Results:    make([]ResultJSON, len(resp.Results)),
		Cached:     resp.Cached,
		Generation: resp.Generation,
		ElapsedUS:  time.Since(start).Microseconds(),
		Stats: StatsJSON{
			CPUMicros:      resp.Stats.CPUTime.Microseconds(),
			IOMicros:       resp.Stats.IOTime.Microseconds(),
			TotalMicros:    resp.Stats.Total().Microseconds(),
			LogicalReads:   resp.Stats.LogicalReads,
			PhysicalReads:  resp.Stats.PhysicalReads,
			Combinations:   resp.Stats.Combinations,
			FeaturesPulled: resp.Stats.FeaturesPulled,
			ObjectsScored:  resp.Stats.ObjectsScored,
			Trace:          resp.Stats.Trace,
		},
	}
	for i, res := range resp.Results {
		out.Results[i] = ResultJSON{ID: res.ID, X: res.X, Y: res.Y, Score: res.Score}
	}
	writeJSON(w, http.StatusOK, out)
}

// statusOf maps service and validation errors onto HTTP status codes.
func statusOf(err error) int {
	switch {
	case errors.Is(err, stpq.ErrInvalidQuery):
		return http.StatusBadRequest
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDeadline):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrClosed), errors.Is(err, stpq.ErrNotBuilt):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Closed() {
		httpError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.db.WriteMetricsPrometheus(w); err != nil {
		return
	}
	_ = s.metrics.Snapshot().WritePrometheus(w)
}

// Info is the JSON body of GET /info: enough dataset shape for a load
// generator to synthesize plausible queries.
type Info struct {
	Objects     int                 `json:"objects"`
	FeatureSets map[string]int      `json:"feature_sets"`
	Keywords    map[string][]string `json:"keywords"`
	Generation  uint64              `json:"generation"`
}

// infoKeywords caps the per-set keyword sample in /info.
const infoKeywords = 100

func (s *Service) handleInfo(w http.ResponseWriter, r *http.Request) {
	snap, err := s.db.Snapshot()
	if err != nil {
		httpError(w, statusOf(err), err.Error())
		return
	}
	info := Info{
		Objects:     snap.NumObjects(),
		FeatureSets: snap.NumFeatures(),
		Keywords:    make(map[string][]string, len(snap.FeatureSetNames())),
		Generation:  snap.Generation(),
	}
	for _, name := range snap.FeatureSetNames() {
		stats, err := s.db.KeywordStats(name)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		n := len(stats)
		if n > infoKeywords {
			n = infoKeywords
		}
		kws := make([]string, n)
		for i := 0; i < n; i++ {
			kws[i] = stats[i].Keyword
		}
		info.Keywords[name] = kws
	}
	writeJSON(w, http.StatusOK, info)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}
