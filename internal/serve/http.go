package serve

// http.go is the HTTP front end used by cmd/stpqd:
//
//	POST /query    JSON query in, JSON results + per-query stats out
//	POST /ingest   JSON mutation batch in, applied through the WAL (ingest.go)
//	GET  /healthz  liveness (503 once Close has begun)
//	GET  /readyz   alias of /healthz (cmd/stpqd answers both with 503
//	               itself while the index is still building)
//	GET  /metrics  Prometheus text format: DB registry, then serve registry
//	GET  /info     dataset shape + build/uptime, for load generators
//	GET  /debug/queries  recent query event log (?n= limits; newest first)
//	GET  /debug/slow     slow-query log with complete span trees
//	GET  /debug/shapes   per-shape cost statistics backing EXPLAIN
//
// Error mapping: invalid query → 400, queue full → 429, deadline → 504,
// shutting down → 503.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"stpq"
)

// QueryRequest is the JSON body of POST /query. Enumerations are spelled
// as strings; missing fields take the library defaults (range variant,
// STPS algorithm, Jaccard similarity).
type QueryRequest struct {
	K          int                 `json:"k"`
	Radius     float64             `json:"radius"`
	Lambda     float64             `json:"lambda"`
	Keywords   map[string][]string `json:"keywords"`
	Variant    string              `json:"variant,omitempty"`    // range | influence | nn
	Algorithm  string              `json:"algorithm,omitempty"`  // stps | stds | auto
	Similarity string              `json:"similarity,omitempty"` // jaccard | dice | cosine | overlap
	// Mode selects the execution tier: "exact" (default) or "approx", the
	// MinHash/LSH fast tier. Recall sets the approx tier's recall target in
	// (0,1]; 0 takes the library default.
	Mode   string  `json:"mode,omitempty"` // exact | approx
	Recall float64 `json:"recall,omitempty"`
	// Trace forces full span collection for this query (bypassing the
	// result cache); the span tree comes back in stats.trace.
	Trace bool `json:"trace,omitempty"`
	// Explain skips execution and returns the query plan with predicted
	// costs instead of results.
	Explain bool `json:"explain,omitempty"`
}

// Query lowers the request into a library query, rejecting unknown
// enumeration spellings with errors that wrap stpq.ErrInvalidQuery.
func (r QueryRequest) Query() (stpq.Query, error) {
	q := stpq.Query{K: r.K, Radius: r.Radius, Lambda: r.Lambda, Keywords: r.Keywords}
	switch r.Variant {
	case "", "range":
		q.Variant = stpq.Range
	case "influence":
		q.Variant = stpq.Influence
	case "nn", "nearest-neighbor":
		q.Variant = stpq.NearestNeighbor
	default:
		return q, fmt.Errorf("%w: unknown variant %q", stpq.ErrInvalidQuery, r.Variant)
	}
	switch r.Algorithm {
	case "", "stps":
		q.Algorithm = stpq.STPS
	case "stds":
		q.Algorithm = stpq.STDS
	case "auto":
		q.Algorithm = stpq.Auto
	default:
		return q, fmt.Errorf("%w: unknown algorithm %q", stpq.ErrInvalidQuery, r.Algorithm)
	}
	switch r.Similarity {
	case "", "jaccard":
		q.Similarity = stpq.JaccardSim
	case "dice":
		q.Similarity = stpq.DiceSim
	case "cosine":
		q.Similarity = stpq.CosineSim
	case "overlap":
		q.Similarity = stpq.OverlapSim
	default:
		return q, fmt.Errorf("%w: unknown similarity %q", stpq.ErrInvalidQuery, r.Similarity)
	}
	switch r.Mode {
	case "", stpq.ModeExact, stpq.ModeApprox:
		q.Mode = r.Mode
	default:
		return q, fmt.Errorf("%w: unknown mode %q", stpq.ErrInvalidQuery, r.Mode)
	}
	q.Recall = r.Recall
	if r.Trace {
		q.Trace = stpq.TraceOn
	}
	return q, nil
}

// ResultJSON is one ranked object in a QueryResponse.
type ResultJSON struct {
	ID    int64   `json:"id"`
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
	Score float64 `json:"score"`
}

// StatsJSON is the per-query cost breakdown in a QueryResponse.
type StatsJSON struct {
	CPUMicros      int64 `json:"cpu_us"`
	IOMicros       int64 `json:"io_us"`
	TotalMicros    int64 `json:"total_us"`
	LogicalReads   int64 `json:"logical_reads"`
	PhysicalReads  int64 `json:"physical_reads"`
	Combinations   int   `json:"combinations,omitempty"`
	FeaturesPulled int   `json:"features_pulled,omitempty"`
	ObjectsScored  int   `json:"objects_scored,omitempty"`
	ShardFanout    int   `json:"shard_fanout,omitempty"`
	ShardPruned    int   `json:"shard_pruned,omitempty"`
	// Approx* report the fast tier's pruning work (approx-mode queries
	// only): leaf candidates tested against the query signature, candidates
	// pruned by the LSH band test, and record-file verification reads
	// skipped by signature-estimate scoring.
	ApproxCandidates   int64      `json:"approx_candidates,omitempty"`
	ApproxPruned       int64      `json:"approx_pruned,omitempty"`
	ApproxSkippedReads int64      `json:"approx_skipped_reads,omitempty"`
	Trace              *stpq.Span `json:"trace,omitempty"`
}

// QueryResponse is the JSON body answering POST /query.
type QueryResponse struct {
	Results    []ResultJSON `json:"results"`
	Stats      StatsJSON    `json:"stats"`
	Cached     bool         `json:"cached"`
	Generation uint64       `json:"generation"`
	ElapsedUS  int64        `json:"elapsed_us"`
	// RequestID echoes the X-Request-Id header (or the generated one); the
	// same ID keys the query's record in /debug/queries.
	RequestID string `json:"request_id"`
}

type errorResponse struct {
	Error string `json:"error"`
	// Reason is the machine-readable rejection class ("queue-full",
	// "shed-expensive-cost", "deadline"), so load generators can break
	// down non-2xx responses without parsing error prose.
	Reason string `json:"reason,omitempty"`
}

// Handler returns the service's HTTP mux.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/ingest", s.handleIngest)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/info", s.handleInfo)
	mux.HandleFunc("/debug/queries", s.handleDebugQueries)
	mux.HandleFunc("/debug/slow", s.handleDebugSlow)
	mux.HandleFunc("/debug/shapes", s.handleDebugShapes)
	return mux
}

func (s *Service) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req QueryRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "malformed request: "+err.Error())
		return
	}
	q, err := req.Query()
	if err != nil {
		httpError(w, statusOf(err), err.Error())
		return
	}
	// An unspecified algorithm takes the server's default (-plan flag on
	// stpqd); an explicit "stps"/"stds"/"auto" always wins.
	if req.Algorithm == "" {
		q.Algorithm = s.cfg.DefaultAlgorithm
	}
	// Honor an inbound request ID (proxies, retries), generate one
	// otherwise, and echo it so the caller can join the response to
	// /debug/queries and the span tree.
	q.RequestID = r.Header.Get("X-Request-Id")
	if q.RequestID == "" {
		q.RequestID = newRequestID()
	}
	w.Header().Set("X-Request-Id", q.RequestID)
	if req.Explain {
		ex, err := s.db.Explain(q)
		if err != nil {
			httpError(w, statusOf(err), err.Error())
			return
		}
		writeJSON(w, http.StatusOK, struct {
			RequestID string        `json:"request_id"`
			Explain   *stpq.Explain `json:"explain"`
		}{q.RequestID, ex})
		return
	}
	start := time.Now()
	resp, err := s.Do(r.Context(), q)
	if err != nil {
		writeJSON(w, statusOf(err), errorResponse{Error: err.Error(), Reason: reasonOf(err)})
		return
	}
	out := QueryResponse{
		RequestID:  resp.RequestID,
		Results:    make([]ResultJSON, len(resp.Results)),
		Cached:     resp.Cached,
		Generation: resp.Generation,
		ElapsedUS:  time.Since(start).Microseconds(),
		Stats: StatsJSON{
			CPUMicros:          resp.Stats.CPUTime.Microseconds(),
			IOMicros:           resp.Stats.IOTime.Microseconds(),
			TotalMicros:        resp.Stats.Total().Microseconds(),
			LogicalReads:       resp.Stats.LogicalReads,
			PhysicalReads:      resp.Stats.PhysicalReads,
			Combinations:       resp.Stats.Combinations,
			FeaturesPulled:     resp.Stats.FeaturesPulled,
			ObjectsScored:      resp.Stats.ObjectsScored,
			ShardFanout:        resp.Stats.ShardFanout,
			ShardPruned:        resp.Stats.ShardPruned,
			ApproxCandidates:   resp.Stats.ApproxCandidates,
			ApproxPruned:       resp.Stats.ApproxPruned,
			ApproxSkippedReads: resp.Stats.ApproxSkippedReads,
			Trace:              resp.Stats.Trace,
		},
	}
	for i, res := range resp.Results {
		out.Results[i] = ResultJSON{ID: res.ID, X: res.X, Y: res.Y, Score: res.Score}
	}
	writeJSON(w, http.StatusOK, out)
}

// statusOf maps service and validation errors onto HTTP status codes.
func statusOf(err error) int {
	switch {
	case errors.Is(err, stpq.ErrInvalidQuery):
		return http.StatusBadRequest
	case errors.Is(err, ErrShedExpensive), errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDeadline):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrClosed), errors.Is(err, stpq.ErrNotBuilt):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// reasonOf classifies rejection errors for the errorResponse Reason field.
// Both overload rejections are 429s; the reason is how clients tell the
// queue-depth limit apart from the cost-based shed.
func reasonOf(err error) string {
	switch {
	case errors.Is(err, ErrShedExpensive):
		return "shed-expensive-cost"
	case errors.Is(err, ErrOverloaded):
		return "queue-full"
	case errors.Is(err, ErrDeadline):
		return "deadline"
	default:
		return ""
	}
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Closed() {
		httpError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.db.WriteMetricsPrometheus(w); err != nil {
		return
	}
	_ = s.metrics.Snapshot().WritePrometheus(w)
}

// Info is the JSON body of GET /info: enough dataset shape for a load
// generator to synthesize plausible queries, plus build and uptime
// identity for operators.
type Info struct {
	Objects     int                 `json:"objects"`
	FeatureSets map[string]int      `json:"feature_sets"`
	Keywords    map[string][]string `json:"keywords"`
	Generation  uint64              `json:"generation"`
	// Revision is the VCS revision the binary was built from ("-dirty"
	// suffix for modified trees, "unknown" without build info).
	Revision      string  `json:"revision"`
	GoVersion     string  `json:"go_version"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Shards        int     `json:"shards"`
	// Ingest summarizes the live write path: pending mutations, sealed
	// runs, merge-path counters and the latest merge/stall durations.
	Ingest stpq.IngestStatus `json:"ingest"`
}

// infoKeywords caps the per-set keyword sample in /info.
const infoKeywords = 100

// buildRevision resolves the binary's VCS revision once.
var buildRevision = sync.OnceValue(func() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	rev, dirty := "", false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "unknown"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "-dirty"
	}
	return rev
})

// InfoSnapshot assembles the dataset-shape description served at GET
// /info. Cluster nodes also answer the info RPC with it, so a coordinator
// can describe the whole cluster to load generators.
func (s *Service) InfoSnapshot() (Info, error) {
	snap, err := s.db.Snapshot()
	if err != nil {
		return Info{}, err
	}
	info := Info{
		Objects:       snap.NumObjects(),
		FeatureSets:   snap.NumFeatures(),
		Keywords:      make(map[string][]string, len(snap.FeatureSetNames())),
		Generation:    snap.Generation(),
		Revision:      buildRevision(),
		GoVersion:     runtime.Version(),
		UptimeSeconds: s.Uptime().Seconds(),
		Shards:        snap.NumShards(),
		Ingest:        s.db.IngestStatus(),
	}
	for _, name := range snap.FeatureSetNames() {
		stats, err := s.db.KeywordStats(name)
		if err != nil {
			return Info{}, err
		}
		n := len(stats)
		if n > infoKeywords {
			n = infoKeywords
		}
		kws := make([]string, n)
		for i := 0; i < n; i++ {
			kws[i] = stats[i].Keyword
		}
		info.Keywords[name] = kws
	}
	return info, nil
}

func (s *Service) handleInfo(w http.ResponseWriter, r *http.Request) {
	info, err := s.InfoSnapshot()
	if err != nil {
		httpError(w, statusOf(err), err.Error())
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// debugN parses the ?n= limit of the /debug endpoints (0 = all held).
func debugN(r *http.Request) int {
	n, err := strconv.Atoi(r.URL.Query().Get("n"))
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// handleDebugQueries serves the recent-query event log, newest first.
func (s *Service) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Queries []stpq.QueryEvent `json:"queries"`
	}{s.db.RecentQueries(debugN(r))})
}

// handleDebugSlow serves the slow-query log: every entry carries a
// complete span tree.
func (s *Service) handleDebugSlow(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Queries []stpq.QueryEvent `json:"queries"`
	}{s.db.SlowQueries(debugN(r))})
}

// handleDebugShapes serves the per-shape cost statistics backing EXPLAIN.
func (s *Service) handleDebugShapes(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Shapes []stpq.ShapeStat `json:"shapes"`
	}{s.db.QueryShapes()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}
