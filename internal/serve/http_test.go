package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"stpq"
)

func testServer(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	db := testDB(t, stpq.Config{}, 200, 200)
	svc, err := New(db, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() { srv.Close(); svc.Close() })
	return svc, srv
}

func postQuery(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	if _, err := jsonCopy(&buf, resp); err != nil {
		t.Fatal(err)
	}
	return resp, []byte(buf.String())
}

func jsonCopy(dst *strings.Builder, resp *http.Response) (int64, error) {
	b := make([]byte, 64<<10)
	var n int64
	for {
		m, err := resp.Body.Read(b)
		dst.Write(b[:m])
		n += int64(m)
		if err != nil {
			return n, nil
		}
	}
}

func TestHTTPQuery(t *testing.T) {
	_, srv := testServer(t)
	body := `{"k":5,"radius":0.1,"lambda":0.5,"keywords":{"restaurants":["kw1","kw2"],"cafes":["kw3"]}}`
	resp, data := postQuery(t, srv.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out QueryResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("bad JSON %q: %v", data, err)
	}
	if len(out.Results) == 0 {
		t.Error("no results")
	}
	if out.Generation != 1 {
		t.Errorf("generation = %d, want 1", out.Generation)
	}
	if out.Stats.LogicalReads < out.Stats.PhysicalReads {
		t.Errorf("logical reads %d < physical reads %d", out.Stats.LogicalReads, out.Stats.PhysicalReads)
	}
	if out.Stats.LogicalReads == 0 {
		t.Error("per-query stats missing: zero logical reads")
	}

	// Same query again: cache hit visible in the response.
	resp, data = postQuery(t, srv.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Cached {
		t.Error("repeat query not served from cache")
	}
}

func TestHTTPQueryErrors(t *testing.T) {
	_, srv := testServer(t)
	cases := []struct {
		body string
		want int
	}{
		{`not json`, http.StatusBadRequest},
		{`{"k":0,"radius":0.1}`, http.StatusBadRequest},
		{`{"k":5,"radius":-1}`, http.StatusBadRequest},
		{`{"k":5,"radius":0.1,"lambda":3}`, http.StatusBadRequest},
		{`{"k":5,"radius":0.1,"keywords":{"nope":["kw1"]}}`, http.StatusBadRequest},
		{`{"k":5,"radius":0.1,"variant":"bogus"}`, http.StatusBadRequest},
		{`{"k":5,"radius":0.1,"algorithm":"bogus"}`, http.StatusBadRequest},
		{`{"k":5,"radius":0.1,"similarity":"bogus"}`, http.StatusBadRequest},
		{`{"k":5,"radius":0.1,"bogus_field":1}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, data := postQuery(t, srv.URL, c.body)
		if resp.StatusCode != c.want {
			t.Errorf("body %q: status %d, want %d (%s)", c.body, resp.StatusCode, c.want, data)
		}
		var e errorResponse
		if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
			t.Errorf("body %q: error payload %q not JSON", c.body, data)
		}
	}

	// GET on /query is not allowed.
	resp, err := http.Get(srv.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query: status %d, want 405", resp.StatusCode)
	}
}

func TestHTTPStatusMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{stpq.ErrInvalidQuery, http.StatusBadRequest},
		{stpq.ErrUnknownFeatureSet, http.StatusBadRequest},
		{ErrOverloaded, http.StatusTooManyRequests},
		{ErrDeadline, http.StatusGatewayTimeout},
		{ErrClosed, http.StatusServiceUnavailable},
		{stpq.ErrNotBuilt, http.StatusServiceUnavailable},
	}
	for _, c := range cases {
		if got := statusOf(c.err); got != c.want {
			t.Errorf("statusOf(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

func TestHTTPHealthz(t *testing.T) {
	svc, srv := testServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d, want 200", resp.StatusCode)
	}
	svc.Close()
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz after Close: status %d, want 503", resp.StatusCode)
	}
}

func TestHTTPMetrics(t *testing.T) {
	_, srv := testServer(t)
	// One miss, one hit.
	body := `{"k":3,"radius":0.1,"keywords":{"restaurants":["kw1"]}}`
	postQuery(t, srv.URL, body)
	postQuery(t, srv.URL, body)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	jsonCopy(&buf, resp)
	text := buf.String()
	for _, want := range []string{
		"stpq_serve_cache_hits_total 1",
		"stpq_serve_cache_misses_total 1",
		"stpq_serve_queries_total 2",
		"stpq_serve_latency_seconds",
		"stpq_bufferpool", // the DB registry is included too
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestHTTPInfo(t *testing.T) {
	_, srv := testServer(t)
	resp, err := http.Get(srv.URL + "/info")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	jsonCopy(&buf, resp)
	var info Info
	if err := json.Unmarshal([]byte(buf.String()), &info); err != nil {
		t.Fatal(err)
	}
	if info.Objects != 200 {
		t.Errorf("objects = %d, want 200", info.Objects)
	}
	if len(info.FeatureSets) != 2 || info.FeatureSets["restaurants"] != 200 {
		t.Errorf("feature sets = %v", info.FeatureSets)
	}
	if len(info.Keywords["restaurants"]) == 0 {
		t.Error("no keywords for restaurants")
	}
	if info.Generation != 1 {
		t.Errorf("generation = %d, want 1", info.Generation)
	}
}
