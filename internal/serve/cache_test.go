package serve

import (
	"testing"

	"stpq"
	"stpq/internal/obs"
)

func TestFingerprintCanonicalization(t *testing.T) {
	base := stpq.Query{
		K: 5, Radius: 0.1, Lambda: 0.5,
		Keywords: map[string][]string{"a": {"x", "y"}, "b": {"z"}},
	}
	same := []stpq.Query{
		{K: 5, Radius: 0.1, Lambda: 0.5,
			Keywords: map[string][]string{"b": {"z"}, "a": {"y", "x"}}},
		{K: 5, Radius: 0.1, Lambda: 0.5,
			Keywords: map[string][]string{"a": {"X", " y ", "x"}, "b": {"z"}, "c": {}}},
	}
	fp := Fingerprint(base)
	for i, q := range same {
		if got := Fingerprint(q); got != fp {
			t.Errorf("query %d: fingerprint %q != base %q", i, got, fp)
		}
	}
	diff := []stpq.Query{
		{K: 6, Radius: 0.1, Lambda: 0.5, Keywords: base.Keywords},
		{K: 5, Radius: 0.2, Lambda: 0.5, Keywords: base.Keywords},
		{K: 5, Radius: 0.1, Lambda: 0.6, Keywords: base.Keywords},
		{K: 5, Radius: 0.1, Lambda: 0.5, Variant: stpq.Influence, Keywords: base.Keywords},
		{K: 5, Radius: 0.1, Lambda: 0.5, Algorithm: stpq.STDS, Keywords: base.Keywords},
		{K: 5, Radius: 0.1, Lambda: 0.5, Similarity: stpq.DiceSim, Keywords: base.Keywords},
		{K: 5, Radius: 0.1, Lambda: 0.5,
			Keywords: map[string][]string{"a": {"x"}, "b": {"z"}}},
	}
	for i, q := range diff {
		if got := Fingerprint(q); got == fp {
			t.Errorf("query %d: fingerprint collides with base (%q)", i, got)
		}
	}
}

// Approx queries live in their own cache namespace: the mode and the
// recall target both segment fingerprints, while exact queries keep the
// byte-stable keys they had before the fast tier existed.
func TestFingerprintApproxNamespace(t *testing.T) {
	base := stpq.Query{
		K: 5, Radius: 0.1, Lambda: 0.5,
		Keywords: map[string][]string{"a": {"x", "y"}},
	}
	exact := Fingerprint(base)
	explicit := base
	explicit.Mode = stpq.ModeExact
	if got := Fingerprint(explicit); got != exact {
		t.Errorf("explicit exact mode changed the fingerprint: %q vs %q", got, exact)
	}
	approx := base
	approx.Mode = stpq.ModeApprox
	approx.Recall = 0.9
	afp := Fingerprint(approx)
	if afp == exact {
		t.Error("approx query shares the exact cache namespace")
	}
	other := approx
	other.Recall = 0.95
	if Fingerprint(other) == afp {
		t.Error("different recall targets share a cache entry")
	}
	again := approx
	if Fingerprint(again) != afp {
		t.Error("approx fingerprint not stable")
	}
}

func TestFingerprintSetNameEscaping(t *testing.T) {
	// Pathological set names must not collide via separator injection.
	a := stpq.Query{K: 1, Radius: 0.1,
		Keywords: map[string][]string{`a"=`: {"x"}}}
	b := stpq.Query{K: 1, Radius: 0.1,
		Keywords: map[string][]string{"a": {`"=x`}}}
	if Fingerprint(a) == Fingerprint(b) {
		t.Error("escaped set names collide")
	}
}

func TestResultCacheLRUEviction(t *testing.T) {
	evictions := obs.NewRegistry().Counter("stpq_serve_cache_evictions_total")
	c := newResultCache(2, evictions)
	r := func(id int64) Response {
		return Response{Results: []stpq.Result{{ID: id}}, Generation: 1}
	}
	c.put("a", 1, r(1))
	c.put("b", 1, r(2))
	if _, ok := c.get("a", 1); !ok { // touch a; b becomes LRU
		t.Fatal("a missing")
	}
	c.put("c", 1, r(3)) // evicts b
	if _, ok := c.get("b", 1); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.get("a", 1); !ok {
		t.Error("a should survive")
	}
	if _, ok := c.get("c", 1); !ok {
		t.Error("c should be present")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
	if got := evictions.Value(); got != 1 {
		t.Errorf("evictions counter = %d, want 1 (capacity eviction of b)", got)
	}
}

func TestResultCacheGenerationMismatch(t *testing.T) {
	evictions := obs.NewRegistry().Counter("stpq_serve_cache_evictions_total")
	c := newResultCache(4, evictions)
	c.put("a", 1, Response{Generation: 1})
	if _, ok := c.get("a", 2); ok {
		t.Error("stale generation must miss")
	}
	if c.len() != 0 {
		t.Error("stale entry must be evicted on lookup")
	}
	if got := evictions.Value(); got != 1 {
		t.Errorf("evictions counter = %d, want 1 (staleness eviction)", got)
	}
}

// A nil evictions counter must disable counting without panicking.
func TestResultCacheNilEvictionsCounter(t *testing.T) {
	c := newResultCache(1, nil)
	c.put("a", 1, Response{Generation: 1})
	c.put("b", 1, Response{Generation: 1}) // capacity eviction
	if _, ok := c.get("a", 2); ok {        // staleness eviction path
		t.Error("unexpected hit")
	}
}

func TestCachedCopyIsIndependent(t *testing.T) {
	c := newResultCache(4, nil)
	c.put("a", 1, Response{Results: []stpq.Result{{ID: 7}}})
	got, ok := c.get("a", 1)
	if !ok || !got.Cached {
		t.Fatal("expected cached hit")
	}
	got.Results[0].ID = 99
	again, _ := c.get("a", 1)
	if again.Results[0].ID != 7 {
		t.Error("mutating a cached response leaked into the cache")
	}
}
