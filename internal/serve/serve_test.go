package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"stpq"
)

// testDB builds a small clustered dataset with two feature sets over the
// synthetic "kw<id>" vocabulary (the same naming cmd/stpqgen uses).
func testDB(t testing.TB, cfg stpq.Config, objects, features int) *stpq.DB {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	db := stpq.New(cfg)
	objs := make([]stpq.Object, objects)
	for i := range objs {
		objs[i] = stpq.Object{ID: int64(i + 1), X: rng.Float64(), Y: rng.Float64()}
	}
	db.AddObjects(objs)
	for s, name := range []string{"restaurants", "cafes"} {
		feats := make([]stpq.Feature, features)
		for i := range feats {
			kws := make([]string, 1+rng.Intn(3))
			for j := range kws {
				kws[j] = fmt.Sprintf("kw%d", rng.Intn(24))
			}
			feats[i] = stpq.Feature{
				ID:       int64(s*features + i + 1),
				X:        rng.Float64(),
				Y:        rng.Float64(),
				Score:    rng.Float64(),
				Keywords: kws,
			}
		}
		db.AddFeatureSet(name, feats)
	}
	if err := db.Build(); err != nil {
		t.Fatal(err)
	}
	return db
}

func testQuery(k int) stpq.Query {
	return stpq.Query{
		K:      k,
		Radius: 0.1,
		Lambda: 0.5,
		Keywords: map[string][]string{
			"restaurants": {"kw1", "kw2"},
			"cafes":       {"kw3"},
		},
	}
}

func TestServeMatchesDirectQuery(t *testing.T) {
	db := testDB(t, stpq.Config{}, 300, 300)
	svc, err := New(db, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	q := testQuery(5)
	want, _, err := db.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := svc.Do(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached {
		t.Error("first query must not be a cache hit")
	}
	if resp.Generation != 1 {
		t.Errorf("generation = %d, want 1", resp.Generation)
	}
	if !reflect.DeepEqual(resp.Results, want) {
		t.Errorf("served results differ from direct query:\n got %v\nwant %v", resp.Results, want)
	}
}

func TestServeRejectsInvalidQuery(t *testing.T) {
	db := testDB(t, stpq.Config{}, 50, 50)
	svc, err := New(db, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	cases := []stpq.Query{
		{K: 0, Radius: 0.1},
		{K: 5, Radius: -1},
		{K: 5, Radius: 0.1, Lambda: 2},
		{K: 5, Radius: 0.1, Keywords: map[string][]string{"nope": {"kw1"}}},
	}
	for i, q := range cases {
		if _, err := svc.Do(context.Background(), q); !errors.Is(err, stpq.ErrInvalidQuery) {
			t.Errorf("case %d: err = %v, want ErrInvalidQuery", i, err)
		}
	}
}

func TestServeCacheHit(t *testing.T) {
	db := testDB(t, stpq.Config{}, 300, 300)
	svc, err := New(db, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	q := testQuery(5)
	first, err := svc.Do(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	// Page-read counters before the cached query.
	before := db.Metrics().Counters

	// Same query, different keyword order and case: same fingerprint.
	q2 := testQuery(5)
	q2.Keywords = map[string][]string{
		"restaurants": {"KW2", "kw1", "kw1"},
		"cafes":       {" kw3 "},
	}
	second, err := svc.Do(context.Background(), q2)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("second identical query must hit the cache")
	}
	if !reflect.DeepEqual(second.Results, first.Results) {
		t.Errorf("cached results differ:\n got %v\nwant %v", second.Results, first.Results)
	}
	// A cache hit must not touch the buffer pools at all.
	after := db.Metrics().Counters
	for name, v := range after {
		if before[name] != v {
			t.Errorf("cache hit moved DB counter %s: %d -> %d", name, before[name], v)
		}
	}
	if got := svc.metrics.Counter("stpq_serve_cache_hits_total").Value(); got != 1 {
		t.Errorf("cache hits = %d, want 1", got)
	}
	if got := svc.metrics.Counter("stpq_serve_cache_misses_total").Value(); got != 1 {
		t.Errorf("cache misses = %d, want 1", got)
	}
}

func TestServeCacheInvalidatedByRebuild(t *testing.T) {
	db := testDB(t, stpq.Config{}, 200, 200)
	svc, err := New(db, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	q := testQuery(3)
	if _, err := svc.Do(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	if resp, _ := svc.Do(context.Background(), q); !resp.Cached {
		t.Fatal("warm-up: expected cache hit")
	}
	if err := svc.Rebuild(); err != nil {
		t.Fatal(err)
	}
	resp, err := svc.Do(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached {
		t.Error("query after Rebuild must not be served from the stale cache")
	}
	if resp.Generation != 2 {
		t.Errorf("generation after Rebuild = %d, want 2", resp.Generation)
	}
	// And the fresh result is cached again under the new generation.
	if resp2, _ := svc.Do(context.Background(), q); !resp2.Cached {
		t.Error("expected cache hit at the new generation")
	}
}

func TestServeDeadline(t *testing.T) {
	db := testDB(t, stpq.Config{}, 200, 200)
	svc, err := New(db, Config{Workers: 1, CacheEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // ensure the deadline has passed
	if _, err := svc.Do(ctx, testQuery(3)); !errors.Is(err, ErrDeadline) {
		t.Errorf("err = %v, want ErrDeadline", err)
	}
	if got := svc.metrics.Counter("stpq_serve_rejected_total{reason=\"deadline\"}").Value(); got == 0 {
		t.Error("deadline rejection not counted")
	}
}

func TestServeConfigTimeout(t *testing.T) {
	db := testDB(t, stpq.Config{}, 200, 200)
	svc, err := New(db, Config{Workers: 1, Timeout: time.Nanosecond, CacheEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if _, err := svc.Do(context.Background(), testQuery(3)); !errors.Is(err, ErrDeadline) {
		t.Errorf("err = %v, want ErrDeadline from Config.Timeout", err)
	}
}

func TestServeOverload(t *testing.T) {
	// No workers yet: the queue (depth 2) fills deterministically, and
	// the next admission attempt is rejected with ErrOverloaded.
	db := testDB(t, stpq.Config{}, 200, 200)
	svc, err := newUnstarted(db, Config{Workers: 2, QueueDepth: 2, CacheEntries: -1})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	queuedErrs := make([]error, 2)
	for i := range queuedErrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, queuedErrs[i] = svc.Do(context.Background(), testQuery(1+i))
		}(i)
	}
	// Wait until both tasks sit in the queue.
	for len(svc.tasks) < 2 {
		time.Sleep(time.Millisecond)
	}
	if _, err := svc.Do(context.Background(), testQuery(9)); !errors.Is(err, ErrOverloaded) {
		t.Errorf("err = %v, want ErrOverloaded", err)
	}
	if got := svc.metrics.Counter("stpq_serve_rejected_total{reason=\"overload\"}").Value(); got != 1 {
		t.Errorf("overload counter = %d, want 1", got)
	}
	// Start the workers: the queued queries drain and succeed.
	svc.start()
	wg.Wait()
	for i, err := range queuedErrs {
		if err != nil {
			t.Errorf("queued query %d: %v", i, err)
		}
	}
	svc.Close()
}

func TestServeCloseDrainsAndRejects(t *testing.T) {
	db := testDB(t, stpq.Config{}, 300, 300)
	svc, err := New(db, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := testQuery(1 + i%5)
			_, errs[i] = svc.Do(context.Background(), q)
		}(i)
	}
	wg.Wait()
	svc.Close()
	svc.Close() // idempotent

	for i, err := range errs {
		if err != nil {
			t.Errorf("pre-close query %d: %v", i, err)
		}
	}
	if _, err := svc.Do(context.Background(), testQuery(3)); !errors.Is(err, ErrClosed) {
		t.Errorf("post-close err = %v, want ErrClosed", err)
	}
	if !svc.Closed() {
		t.Error("Closed() = false after Close")
	}
}

func TestServeConcurrentMatchesSequential(t *testing.T) {
	db := testDB(t, stpq.Config{}, 400, 400)
	svc, err := New(db, Config{Workers: 4, CacheEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	queries := make([]stpq.Query, 8)
	want := make([][]stpq.Result, len(queries))
	for i := range queries {
		q := testQuery(1 + i)
		if i%2 == 1 {
			q.Algorithm = stpq.STDS
		}
		queries[i] = q
		want[i], _, err = db.TopK(q)
		if err != nil {
			t.Fatal(err)
		}
	}
	const rounds = 5
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (g + r) % len(queries)
				resp, err := svc.Do(context.Background(), queries[i])
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if !reflect.DeepEqual(resp.Results, want[i]) {
					t.Errorf("goroutine %d query %d: results differ", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestNewRequiresBuiltDB(t *testing.T) {
	db := stpq.New(stpq.Config{})
	if _, err := New(db, Config{}); !errors.Is(err, stpq.ErrNotBuilt) {
		t.Errorf("err = %v, want ErrNotBuilt", err)
	}
}

func TestCacheHitFraction(t *testing.T) {
	db := testDB(t, stpq.Config{}, 300, 300)
	svc, err := New(db, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// No lookups yet: must be 0, not NaN.
	if got := svc.CacheHitFraction(); got != 0 {
		t.Fatalf("cold CacheHitFraction = %v, want 0", got)
	}
	q := testQuery(5)
	if _, err := svc.Do(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	// One miss, zero hits.
	if got := svc.CacheHitFraction(); got != 0 {
		t.Fatalf("after one miss CacheHitFraction = %v, want 0", got)
	}
	if _, err := svc.Do(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	// One miss, one hit.
	if got := svc.CacheHitFraction(); got != 0.5 {
		t.Fatalf("after one hit CacheHitFraction = %v, want 0.5", got)
	}
}
