// Package serve turns a built stpq.DB into a concurrent query service: a
// bounded worker-pool executor with admission control (queue cap and
// per-query deadlines), an LRU result cache keyed by a canonical query
// fingerprint and invalidated by index rebuilds, and an HTTP front end
// (POST /query, GET /metrics, GET /healthz) used by cmd/stpqd.
//
// The paper measures per-query cost in isolation; this package is the
// systems wrapper that lets many such queries run at once while keeping
// the paper's per-query Stats attribution intact (see DB.Snapshot).
package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"stpq"
	"stpq/internal/obs"
)

// Sentinel errors returned by Service.Do. The HTTP layer maps them onto
// status codes: ErrOverloaded → 429, ErrDeadline → 504, ErrClosed → 503,
// and stpq.ErrInvalidQuery → 400.
var (
	// ErrOverloaded is returned when the admission queue is full.
	ErrOverloaded = errors.New("serve: overloaded, query queue full")
	// ErrShedExpensive is returned by cost-aware admission
	// (Config.MaxInflightCost): the query's predicted cost does not fit
	// the in-flight cost budget, so the expensive tail is shed instead of
	// rejecting uniformly at random when the queue fills. Cheap queries
	// keep flowing.
	ErrShedExpensive = errors.New("serve: overloaded, predicted query cost over budget")
	// ErrDeadline is returned when a query's deadline expires before a
	// worker finishes it (including time spent waiting in the queue).
	ErrDeadline = errors.New("serve: query deadline exceeded")
	// ErrClosed is returned by Do after Close has begun.
	ErrClosed = errors.New("serve: service closed")
)

// Config tunes the service. The zero value is usable: GOMAXPROCS workers,
// a queue of 64, no deadline, a 256-entry result cache.
type Config struct {
	// Workers is the number of queries executed concurrently
	// (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the number of admitted-but-not-yet-running
	// queries; a full queue rejects with ErrOverloaded (default 64).
	QueueDepth int
	// Timeout is the per-query deadline applied by Do on top of the
	// caller's context; 0 means no service-imposed deadline.
	Timeout time.Duration
	// CacheEntries is the result-cache capacity; 0 means the default
	// (256), negative disables caching.
	CacheEntries int
	// TraceSample is the probability (0..1) that a query without an
	// explicit tracing decision is served with TraceOn, collecting a full
	// span tree into its response and event record. Sampled queries bypass
	// the result cache so the trace reflects a real execution.
	TraceSample float64
	// DefaultAlgorithm is applied to HTTP queries that do not spell an
	// algorithm (stpqd -plan). The zero value keeps STPS, the historical
	// default; stpq.Auto hands the choice to the cost-based planner.
	DefaultAlgorithm stpq.Algorithm
	// MaxInflightCost, when positive, caps the summed planner-predicted
	// cost of admitted-but-unfinished queries: a query whose shape is warm
	// (≥ MinPredictSamples executions) and whose predicted cost would push
	// the in-flight sum over the cap is shed with ErrShedExpensive — the
	// expensive tail yields instead of random queue-full 429s. Queries
	// with cold shapes (and all queries when the budget is idle) fall back
	// to queue-only admission, so a cold process behaves exactly as
	// before. 0 disables cost-aware admission.
	MaxInflightCost time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	return c
}

// Response is the outcome of one served query.
type Response struct {
	Results []stpq.Result
	Stats   stpq.Stats
	// Cached reports that the response was answered from the result
	// cache without touching the indexes (zero page reads).
	Cached bool
	// Generation is the index build generation the results belong to.
	Generation uint64
	// RequestID is the request-scoped identity the query ran under: the
	// caller's Query.RequestID, or one generated at admission. It joins
	// the response to the DB's event log and span trees.
	RequestID string
}

// Service executes queries against a DB through a bounded worker pool.
// Create with New, query with Do, shut down with Close.
type Service struct {
	db      *stpq.DB
	cfg     Config
	cache   *resultCache
	started time.Time

	tasks  chan *task
	wg     sync.WaitGroup
	sendMu sync.RWMutex // guards closed + sends on tasks vs. Close
	closed bool

	// inflightCost is the summed predicted cost (nanoseconds) of admitted
	// tasks that have not finished — the cost-aware admission budget.
	inflightCost atomic.Int64

	metrics  *obs.Registry
	hits     *obs.Counter // stpq_serve_cache_hits_total
	misses   *obs.Counter // stpq_serve_cache_misses_total
	queries  *obs.Counter
	approx   *obs.Counter // stpq_serve_approx_queries_total
	ingests  *obs.Counter // stpq_serve_ingested_total (mutations via /ingest)
	overload *obs.Counter
	shed     *obs.Counter // stpq_serve_rejected_total{reason="expensive"}
	deadline *obs.Counter
	latency  *obs.Histogram
}

type task struct {
	ctx  context.Context
	snap *stpq.Snapshot
	q    stpq.Query
	fp   string
	// cost is the predicted cost reserved against the in-flight budget at
	// admission; the worker releases it when the task leaves the system.
	cost time.Duration
	done chan taskResult
}

type taskResult struct {
	resp Response
	err  error
}

// New starts the worker pool and returns the service. The DB must already
// be built.
func New(db *stpq.DB, cfg Config) (*Service, error) {
	s, err := newUnstarted(db, cfg)
	if err != nil {
		return nil, err
	}
	s.start()
	return s, nil
}

// newUnstarted builds the service without launching workers; tests use it
// to exercise admission control deterministically.
func newUnstarted(db *stpq.DB, cfg Config) (*Service, error) {
	if _, err := db.Snapshot(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	reg := obs.NewRegistry()
	s := &Service{
		db:       db,
		cfg:      cfg,
		started:  time.Now(),
		tasks:    make(chan *task, cfg.QueueDepth),
		metrics:  reg,
		hits:     reg.Counter("stpq_serve_cache_hits_total"),
		misses:   reg.Counter("stpq_serve_cache_misses_total"),
		queries:  reg.Counter("stpq_serve_queries_total"),
		approx:   reg.Counter("stpq_serve_approx_queries_total"),
		ingests:  reg.Counter("stpq_serve_ingested_total"),
		overload: reg.Counter("stpq_serve_rejected_total{reason=\"overload\"}"),
		shed:     reg.Counter("stpq_serve_rejected_total{reason=\"expensive\"}"),
		deadline: reg.Counter("stpq_serve_rejected_total{reason=\"deadline\"}"),
		latency:  reg.Histogram("stpq_serve_latency_seconds", obs.LatencyBuckets),
	}
	if cfg.CacheEntries > 0 {
		s.cache = newResultCache(cfg.CacheEntries, reg.Counter("stpq_serve_cache_evictions_total"))
	}
	return s, nil
}

// start launches the worker pool.
func (s *Service) start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// CacheHitFraction returns the fraction of query lookups served from the
// result cache, hits / (hits + misses). It returns 0 before any lookup,
// never NaN: a freshly started (or cache-disabled) service reports a cold
// cache, not a division by zero.
func (s *Service) CacheHitFraction() float64 {
	hits, misses := s.hits.Value(), s.misses.Value()
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// Metrics returns the service's own registry (cache hit/miss, admission
// rejections, serve latency). The DB's registry is separate.
func (s *Service) Metrics() *obs.Registry { return s.metrics }

// DB returns the database the service fronts.
func (s *Service) DB() *stpq.DB { return s.db }

// Saturated reports whether admitted queries are waiting for a worker —
// the foreground-pressure probe the background compactor's pacing gate
// consumes (stpq.DB.SetCompactionGate): while queries queue, compaction
// work backs off.
func (s *Service) Saturated() bool { return len(s.tasks) > 0 }

// Do validates, admits and executes one query, consulting the result
// cache first. It returns ErrOverloaded when the queue is full,
// ErrDeadline when the context (or Config.Timeout) expires before the
// query completes, ErrClosed after Close, and validation errors wrapping
// stpq.ErrInvalidQuery.
func (s *Service) Do(ctx context.Context, q stpq.Query) (Response, error) {
	if s.Closed() {
		// Checked up front so a draining service stops answering even
		// from the cache; enqueue re-checks under the lock.
		return Response{}, ErrClosed
	}
	s.queries.Inc()
	if q.Mode == stpq.ModeApprox {
		s.approx.Inc()
	}
	start := time.Now()
	if s.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
		defer cancel()
	}
	snap, err := s.db.Snapshot()
	if err != nil {
		return Response{}, err
	}
	if err := stpq.ValidateQuery(q, snap.FeatureSetNames()); err != nil {
		return Response{}, err
	}
	// Request-scoped identity: honor the caller's ID, generate one
	// otherwise, and draw the service-level trace sampling decision. The
	// ID and decision ride the query through shard scatter-gather, core
	// execution and the ingest overlay, stamping the span tree and the
	// event record.
	if q.RequestID == "" {
		q.RequestID = newRequestID()
	}
	if q.Trace == stpq.TraceDefault && sampleTrace(s.cfg.TraceSample) {
		q.Trace = stpq.TraceOn
	}
	fp := Fingerprint(q)
	// Explicitly traced queries bypass the cache: their span tree must
	// come from a real execution, not a cached neighbour's.
	useCache := s.cache != nil && q.Trace != stpq.TraceOn
	if useCache {
		if resp, ok := s.cache.get(fp, snap.Generation()); ok {
			s.hits.Inc()
			elapsed := time.Since(start)
			s.latency.Observe(elapsed.Seconds())
			resp.RequestID = q.RequestID
			snap.RecordCacheHit(q, start, elapsed)
			return resp, nil
		}
		s.misses.Inc()
	}
	t := &task{ctx: ctx, snap: snap, q: q, fp: fp, done: make(chan taskResult, 1)}
	if err := s.admitCost(t); err != nil {
		return Response{}, err
	}
	if err := s.enqueue(t); err != nil {
		s.releaseCost(t)
		return Response{}, err
	}
	select {
	case r := <-t.done:
		if r.err == nil {
			s.latency.Observe(time.Since(start).Seconds())
		}
		return r.resp, r.err
	case <-ctx.Done():
		s.deadline.Inc()
		return Response{}, s.deadlineError(ctx)
	}
}

func (s *Service) deadlineError(ctx context.Context) error {
	if errors.Is(ctx.Err(), context.Canceled) {
		return ctx.Err()
	}
	return ErrDeadline
}

// admitCost applies cost-aware admission: the planner-predicted cost of
// the query's shape is checked against — and, when admitted, reserved from
// — the in-flight cost budget. Queries whose shape is cold predict no cost
// and always pass (deterministic fallback to queue-only admission), and a
// warm query is never shed against an idle budget, so an over-cap query
// still makes progress one at a time instead of starving.
func (s *Service) admitCost(t *task) error {
	if s.cfg.MaxInflightCost <= 0 {
		return nil
	}
	shape, cost, known, err := t.snap.PredictCost(t.q)
	if err != nil || !known {
		return nil // validation errors surface from TopK; cold shapes pass
	}
	if in := s.inflightCost.Load(); in > 0 && in+int64(cost) > int64(s.cfg.MaxInflightCost) {
		s.shed.Inc()
		s.metrics.Counter(fmt.Sprintf("stpq_serve_shed_total{shape=%q}", shape)).Inc()
		return ErrShedExpensive
	}
	t.cost = cost
	s.inflightCost.Add(int64(cost))
	return nil
}

// releaseCost returns a task's reserved cost to the budget.
func (s *Service) releaseCost(t *task) {
	if t.cost > 0 {
		s.inflightCost.Add(-int64(t.cost))
	}
}

// enqueue admits a task without blocking; a full queue is an overload.
func (s *Service) enqueue(t *task) error {
	s.sendMu.RLock()
	defer s.sendMu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	select {
	case s.tasks <- t:
		return nil
	default:
		s.overload.Inc()
		return ErrOverloaded
	}
}

// worker executes admitted tasks until the queue is closed and drained.
func (s *Service) worker() {
	defer s.wg.Done()
	for t := range s.tasks {
		// A task whose waiter already gave up (deadline hit while
		// queued) is skipped; the engine itself is not interruptible,
		// so a query that starts executing runs to completion. Either
		// way the task's reserved cost returns to the budget here —
		// including during the Close drain.
		if t.ctx.Err() != nil {
			s.releaseCost(t)
			t.done <- taskResult{err: s.deadlineError(t.ctx)}
			continue
		}
		res, st, err := t.snap.TopK(t.q)
		s.releaseCost(t)
		if err != nil {
			t.done <- taskResult{err: err}
			continue
		}
		resp := Response{Results: res, Stats: st, Generation: t.snap.Generation(), RequestID: t.q.RequestID}
		if s.cache != nil && t.q.Trace != stpq.TraceOn {
			s.cache.put(t.fp, t.snap.Generation(), resp)
		}
		t.done <- taskResult{resp: resp}
	}
}

// Close stops admitting queries, waits for the queued and in-flight ones
// to finish (graceful drain), and stops the workers. Safe to call twice.
func (s *Service) Close() {
	s.sendMu.Lock()
	if s.closed {
		s.sendMu.Unlock()
		return
	}
	s.closed = true
	close(s.tasks)
	s.sendMu.Unlock()
	s.wg.Wait()
}

// Closed reports whether Close has begun.
func (s *Service) Closed() bool {
	s.sendMu.RLock()
	defer s.sendMu.RUnlock()
	return s.closed
}

// Rebuild re-indexes the underlying DB (see stpq.DB.Rebuild). Cached
// results from the previous generation become unreachable immediately —
// cache lookups compare generations — and are evicted lazily.
func (s *Service) Rebuild() error { return s.db.Rebuild() }

// Uptime reports how long the service has been running.
func (s *Service) Uptime() time.Duration { return time.Since(s.started) }

// newRequestID generates a service-local request identity for queries that
// arrived without one.
func newRequestID() string {
	return fmt.Sprintf("req-%016x", rand.Uint64())
}

// sampleTrace draws the service-level trace sampling decision.
func sampleTrace(rate float64) bool {
	if rate <= 0 {
		return false
	}
	return rate >= 1 || rand.Float64() < rate
}
