package serve

// telemetry_test.go covers the serve side of the observability surface:
// request-ID admission and echo, the /debug endpoints, the explain request
// field, and how tracing interacts with the result cache.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"stpq"
)

// postQueryWithHeader is postQuery plus request headers.
func postQueryWithHeader(t *testing.T, url, body string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/query", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	if _, err := jsonCopy(&buf, resp); err != nil {
		t.Fatal(err)
	}
	return resp, []byte(buf.String())
}

const telemetryQueryBody = `{"k":5,"radius":0.1,"lambda":0.5,"keywords":{"restaurants":["kw1","kw2"],"cafes":["kw3"]}}`

func TestHTTPRequestIDEchoed(t *testing.T) {
	svc, srv := testServer(t)
	resp, data := postQueryWithHeader(t, srv.URL, telemetryQueryBody,
		map[string]string{"X-Request-Id": "req-proxy-77"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "req-proxy-77" {
		t.Errorf("echoed header = %q", got)
	}
	var out QueryResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.RequestID != "req-proxy-77" {
		t.Errorf("body request_id = %q", out.RequestID)
	}
	// The same ID keys the query's event record in the DB's log.
	evs := svc.DB().RecentQueries(1)
	if len(evs) != 1 || evs[0].RequestID != "req-proxy-77" {
		t.Errorf("event log = %+v", evs)
	}
}

func TestHTTPRequestIDGenerated(t *testing.T) {
	_, srv := testServer(t)
	resp, data := postQuery(t, srv.URL, telemetryQueryBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	hdr := resp.Header.Get("X-Request-Id")
	if !strings.HasPrefix(hdr, "req-") {
		t.Errorf("generated header = %q", hdr)
	}
	var out QueryResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.RequestID != hdr {
		t.Errorf("body request_id %q != header %q", out.RequestID, hdr)
	}
}

func TestHTTPExplain(t *testing.T) {
	// Cache disabled so repeated identical queries count as executions and
	// feed the shape statistics the prediction is gated on.
	db := testDB(t, stpq.Config{}, 200, 200)
	svc, err := New(db, Config{Workers: 2, CacheEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() { srv.Close(); svc.Close() })

	explainBody := strings.TrimSuffix(telemetryQueryBody, "}") + `,"explain":true}`
	type explainOut struct {
		RequestID string        `json:"request_id"`
		Explain   *stpq.Explain `json:"explain"`
	}
	resp, data := postQuery(t, srv.URL, explainBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out explainOut
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Explain == nil || out.Explain.Algorithm != "stps" || out.Explain.Shape == "" {
		t.Fatalf("cold explain = %+v", out.Explain)
	}
	if out.Explain.Predicted != nil {
		t.Errorf("cold explain predicted %+v", out.Explain.Predicted)
	}

	// Explain never executes; run the shape to the prediction floor.
	for i := 0; i < stpq.MinPredictSamples; i++ {
		if resp, data := postQuery(t, srv.URL, telemetryQueryBody); resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: status %d: %s", i, resp.StatusCode, data)
		}
	}
	if _, data = postQuery(t, srv.URL, explainBody); json.Unmarshal(data, &out) != nil {
		t.Fatalf("bad warm explain: %s", data)
	}
	if out.Explain.Predicted == nil || out.Explain.Predicted.Samples != int64(stpq.MinPredictSamples) {
		t.Errorf("warm explain = %+v", out.Explain)
	}
}

func TestHTTPDebugEndpoints(t *testing.T) {
	db := testDB(t, stpq.Config{SlowQueryThreshold: time.Nanosecond}, 200, 200)
	svc, err := New(db, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() { srv.Close(); svc.Close() })

	if resp, data := postQuery(t, srv.URL, telemetryQueryBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("query: status %d: %s", resp.StatusCode, data)
	}
	getJSON := func(path string, v any) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
	}

	var queries struct {
		Queries []stpq.QueryEvent `json:"queries"`
	}
	getJSON("/debug/queries?n=10", &queries)
	if len(queries.Queries) != 1 {
		t.Fatalf("/debug/queries = %d events", len(queries.Queries))
	}
	ev := queries.Queries[0]
	if ev.RequestID == "" || ev.Shape == "" || ev.Outcome != "ok" {
		t.Errorf("debug event = %+v", ev)
	}

	// The 1ns threshold marks every query slow: /debug/slow serves the
	// same record with its complete span tree.
	var slow struct {
		Queries []stpq.QueryEvent `json:"queries"`
	}
	getJSON("/debug/slow", &slow)
	if len(slow.Queries) != 1 || !slow.Queries[0].Slow || slow.Queries[0].Trace == nil {
		t.Fatalf("/debug/slow = %+v", slow.Queries)
	}
	if slow.Queries[0].RequestID != ev.RequestID {
		t.Errorf("slow record id %q != event id %q", slow.Queries[0].RequestID, ev.RequestID)
	}

	var shapes struct {
		Shapes []stpq.ShapeStat `json:"shapes"`
	}
	getJSON("/debug/shapes", &shapes)
	if len(shapes.Shapes) != 1 || shapes.Shapes[0].Samples != 1 || shapes.Shapes[0].Shape != ev.Shape {
		t.Errorf("/debug/shapes = %+v", shapes.Shapes)
	}
}

func TestHTTPTraceBypassesCache(t *testing.T) {
	_, srv := testServer(t)
	traceBody := strings.TrimSuffix(telemetryQueryBody, "}") + `,"trace":true}`

	// Prime the cache with the untraced twin.
	if resp, data := postQuery(t, srv.URL, telemetryQueryBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("prime: status %d: %s", resp.StatusCode, data)
	}
	var out QueryResponse
	for i := 0; i < 2; i++ {
		_, data := postQuery(t, srv.URL, traceBody)
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		if out.Cached {
			t.Errorf("traced query %d served from cache", i)
		}
		if out.Stats.Trace == nil {
			t.Errorf("traced query %d missing its span tree", i)
		}
	}
	// The untraced twin still hits the cache the traced runs must not have
	// displaced or polluted.
	_, data := postQuery(t, srv.URL, telemetryQueryBody)
	out = QueryResponse{} // omitempty: absent fields keep stale values otherwise
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Cached {
		t.Error("untraced twin missed the cache")
	}
	if out.Stats.Trace != nil {
		t.Error("cached response carries a trace")
	}
}

func TestCacheHitRecordsEvent(t *testing.T) {
	svc, srv := testServer(t)
	if resp, data := postQuery(t, srv.URL, telemetryQueryBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("miss: status %d: %s", resp.StatusCode, data)
	}
	resp, data := postQueryWithHeader(t, srv.URL, telemetryQueryBody,
		map[string]string{"X-Request-Id": "req-cache-hit"})
	var out QueryResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !out.Cached {
		t.Fatalf("second query not a cache hit: status %d, %s", resp.StatusCode, data)
	}
	ev := svc.DB().RecentQueries(1)[0]
	if !ev.CacheHit || ev.RequestID != "req-cache-hit" {
		t.Errorf("cache-hit event = %+v", ev)
	}
	if ev.Shape == "" {
		t.Error("cache-hit event lost its shape label")
	}
	// Cache hits are attributed but must not count as engine executions.
	shapes := svc.DB().QueryShapes()
	if len(shapes) != 1 || shapes[0].Samples != 1 {
		t.Errorf("shape stats after cache hit = %+v", shapes)
	}
}

func TestServiceTraceSampling(t *testing.T) {
	db := testDB(t, stpq.Config{}, 200, 200)
	// Rate 1: every query is traced, so none touch the cache.
	svc, err := New(db, Config{Workers: 2, TraceSample: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	for i := 0; i < 2; i++ {
		resp, err := svc.Do(t.Context(), testQuery(5))
		if err != nil {
			t.Fatal(err)
		}
		if resp.Cached {
			t.Errorf("sampled query %d served from cache", i)
		}
		if resp.Stats.Trace == nil {
			t.Errorf("sampled query %d missing its trace", i)
		}
		if resp.RequestID == "" {
			t.Errorf("query %d has no request id", i)
		}
	}
	ev := db.RecentQueries(1)[0]
	if !ev.Sampled || ev.Trace == nil {
		t.Errorf("sampled event = %+v", ev)
	}
}
