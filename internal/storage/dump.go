package storage

import (
	"encoding/binary"
	"fmt"
	"io"
)

// dumpMagic guards page-dump files against foreign input.
var dumpMagic = [8]byte{'s', 't', 'p', 'q', 'p', 'g', '0', '1'}

// DumpDisk serializes all pages of a disk to w: a small header (magic,
// page size, page count) followed by the raw page images. It is the
// persistence format for built indexes.
func DumpDisk(d Disk, w io.Writer) error {
	if _, err := w.Write(dumpMagic[:]); err != nil {
		return fmt.Errorf("storage: dump header: %w", err)
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(d.PageSize()))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(d.NumPages()))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("storage: dump header: %w", err)
	}
	buf := make([]byte, d.PageSize())
	for i := 0; i < d.NumPages(); i++ {
		if err := d.ReadPage(PageID(i), buf); err != nil {
			return err
		}
		if _, err := w.Write(buf); err != nil {
			return fmt.Errorf("storage: dump page %d: %w", i, err)
		}
	}
	return nil
}

// LoadMemDisk reads a page dump produced by DumpDisk into a fresh
// in-memory disk.
func LoadMemDisk(r io.Reader) (*MemDisk, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("storage: load header: %w", err)
	}
	if magic != dumpMagic {
		return nil, fmt.Errorf("storage: not a page dump (bad magic %q)", magic[:])
	}
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("storage: load header: %w", err)
	}
	pageSize := int(binary.LittleEndian.Uint64(hdr[0:8]))
	numPages := int(binary.LittleEndian.Uint64(hdr[8:16]))
	if pageSize <= 0 || pageSize > 1<<26 {
		return nil, fmt.Errorf("storage: implausible page size %d", pageSize)
	}
	if numPages < 0 {
		return nil, fmt.Errorf("storage: negative page count")
	}
	d := NewMemDisk(pageSize)
	buf := make([]byte, pageSize)
	for i := 0; i < numPages; i++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("storage: load page %d: %w", i, err)
		}
		id, err := d.Allocate()
		if err != nil {
			return nil, err
		}
		if err := d.WritePage(id, buf); err != nil {
			return nil, err
		}
	}
	return d, nil
}
