package storage

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"stpq/internal/obs"
)

func TestMemDiskRoundTrip(t *testing.T) {
	d := NewMemDisk(64)
	id, err := d.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("hello pages")
	if err := d.WritePage(id, want); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if err := d.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:len(want)], want) {
		t.Errorf("read back %q", buf[:len(want)])
	}
	// Rest of page must be zero.
	for _, b := range buf[len(want):] {
		if b != 0 {
			t.Fatal("page tail not zeroed")
		}
	}
}

func TestMemDiskShorterRewriteZeroesTail(t *testing.T) {
	d := NewMemDisk(32)
	id, _ := d.Allocate()
	if err := d.WritePage(id, bytes.Repeat([]byte{0xff}, 32)); err != nil {
		t.Fatal(err)
	}
	if err := d.WritePage(id, []byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	if err := d.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 1 || buf[1] != 2 || buf[2] != 0 || buf[31] != 0 {
		t.Errorf("rewrite did not zero tail: %v", buf)
	}
}

func TestMemDiskBounds(t *testing.T) {
	d := NewMemDisk(32)
	buf := make([]byte, 32)
	if err := d.ReadPage(5, buf); !errors.Is(err, ErrPageBounds) {
		t.Errorf("read: got %v, want ErrPageBounds", err)
	}
	if err := d.WritePage(0, buf); !errors.Is(err, ErrPageBounds) {
		t.Errorf("write: got %v, want ErrPageBounds", err)
	}
	id, _ := d.Allocate()
	if err := d.WritePage(id, make([]byte, 33)); err == nil {
		t.Error("oversized write must fail")
	}
}

func TestMemDiskDefaultPageSize(t *testing.T) {
	if got := NewMemDisk(0).PageSize(); got != DefaultPageSize {
		t.Errorf("default page size = %d", got)
	}
	if got := NewMemDisk(-7).PageSize(); got != DefaultPageSize {
		t.Errorf("negative page size = %d", got)
	}
}

func TestFileDiskRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "disk.bin")
	d, err := NewFileDisk(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	var ids []PageID
	for i := 0; i < 10; i++ {
		id, err := d.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		if err := d.WritePage(id, []byte{byte(i), byte(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if d.NumPages() != 10 {
		t.Errorf("NumPages = %d", d.NumPages())
	}
	buf := make([]byte, 128)
	for i, id := range ids {
		if err := d.ReadPage(id, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i) || buf[1] != byte(i+1) {
			t.Errorf("page %d: got %v", id, buf[:2])
		}
	}
	if err := d.ReadPage(99, buf); !errors.Is(err, ErrPageBounds) {
		t.Errorf("bounds: %v", err)
	}
}

func TestBufferPoolCountsPhysicalReads(t *testing.T) {
	d := NewMemDisk(32)
	id, _ := d.Allocate()
	_ = d.WritePage(id, []byte{42})
	p := NewBufferPool(d, 4)
	for i := 0; i < 5; i++ {
		data, err := p.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if data[0] != 42 {
			t.Fatal("wrong data")
		}
	}
	s := p.Stats()
	if s.LogicalReads != 5 {
		t.Errorf("LogicalReads = %d, want 5", s.LogicalReads)
	}
	if s.PhysicalReads != 1 {
		t.Errorf("PhysicalReads = %d, want 1 (cache hit expected)", s.PhysicalReads)
	}
}

func TestBufferPoolLRUEviction(t *testing.T) {
	d := NewMemDisk(16)
	var ids []PageID
	for i := 0; i < 4; i++ {
		id, _ := d.Allocate()
		_ = d.WritePage(id, []byte{byte(i)})
		ids = append(ids, id)
	}
	p := NewBufferPool(d, 2)
	_, _ = p.Get(ids[0])
	_, _ = p.Get(ids[1])
	_, _ = p.Get(ids[0]) // refresh 0; LRU order now [0,1]
	_, _ = p.Get(ids[2]) // evicts 1
	if p.Contains(ids[1]) {
		t.Error("page 1 should have been evicted")
	}
	if !p.Contains(ids[0]) || !p.Contains(ids[2]) {
		t.Error("pages 0 and 2 should be cached")
	}
	if p.Len() != 2 {
		t.Errorf("Len = %d", p.Len())
	}
}

func TestBufferPoolZeroCapacity(t *testing.T) {
	d := NewMemDisk(16)
	id, _ := d.Allocate()
	p := NewBufferPool(d, 0)
	for i := 0; i < 3; i++ {
		if _, err := p.Get(id); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.Stats().PhysicalReads; got != 3 {
		t.Errorf("PhysicalReads = %d, want 3 with no caching", got)
	}
}

func TestBufferPoolWriteThrough(t *testing.T) {
	d := NewMemDisk(16)
	id, _ := d.Allocate()
	p := NewBufferPool(d, 2)
	_, _ = p.Get(id) // cache it
	if err := p.WriteThrough(id, []byte{7, 8}); err != nil {
		t.Fatal(err)
	}
	data, _ := p.Get(id)
	if data[0] != 7 || data[1] != 8 {
		t.Error("cached copy not refreshed")
	}
	// And the disk itself.
	buf := make([]byte, 16)
	_ = d.ReadPage(id, buf)
	if buf[0] != 7 {
		t.Error("disk copy not written")
	}
	if p.Stats().Writes != 1 {
		t.Errorf("Writes = %d", p.Stats().Writes)
	}
}

func TestBufferPoolClearAndReset(t *testing.T) {
	d := NewMemDisk(16)
	id, _ := d.Allocate()
	p := NewBufferPool(d, 2)
	_, _ = p.Get(id)
	p.ResetStats()
	if s := p.Stats(); s.LogicalReads != 0 || s.PhysicalReads != 0 {
		t.Error("ResetStats failed")
	}
	p.Clear()
	if p.Len() != 0 {
		t.Error("Clear failed")
	}
	_, _ = p.Get(id)
	if p.Stats().PhysicalReads != 1 {
		t.Error("after Clear, read must be physical")
	}
}

// Randomized workload: the pool must always return the same bytes the disk
// holds, regardless of eviction pattern.
func TestBufferPoolConsistencyRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewMemDisk(8)
	const n = 20
	want := make(map[PageID]byte)
	for i := 0; i < n; i++ {
		id, _ := d.Allocate()
		b := byte(rng.Intn(256))
		_ = d.WritePage(id, []byte{b})
		want[id] = b
	}
	p := NewBufferPool(d, 3)
	for i := 0; i < 1000; i++ {
		id := PageID(rng.Intn(n))
		if rng.Intn(10) == 0 {
			b := byte(rng.Intn(256))
			if err := p.WriteThrough(id, []byte{b}); err != nil {
				t.Fatal(err)
			}
			want[id] = b
			continue
		}
		data, err := p.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if data[0] != want[id] {
			t.Fatalf("page %d: got %d, want %d", id, data[0], want[id])
		}
		if p.Len() > 3 {
			t.Fatal("pool exceeded capacity")
		}
	}
}

func TestStatsArithmetic(t *testing.T) {
	a := Stats{LogicalReads: 10, PhysicalReads: 4, Writes: 1, Evictions: 3}
	b := Stats{LogicalReads: 3, PhysicalReads: 1, Writes: 1, Evictions: 2}
	diff := a.Sub(b)
	if diff.LogicalReads != 7 || diff.PhysicalReads != 3 || diff.Writes != 0 || diff.Evictions != 1 {
		t.Errorf("Sub = %+v", diff)
	}
	var acc Stats
	acc.Add(a)
	acc.Add(b)
	if acc.LogicalReads != 13 || acc.PhysicalReads != 5 || acc.Writes != 2 || acc.Evictions != 5 {
		t.Errorf("Add = %+v", acc)
	}
}

func TestStatsHitRatio(t *testing.T) {
	if got := (Stats{}).HitRatio(); got != 0 {
		t.Errorf("empty HitRatio = %v, want 0 (no division by zero)", got)
	}
	if got := (Stats{LogicalReads: 10, PhysicalReads: 4}).HitRatio(); got != 0.6 {
		t.Errorf("HitRatio = %v, want 0.6", got)
	}
	if got := (Stats{LogicalReads: 5, PhysicalReads: 5}).HitRatio(); got != 0 {
		t.Errorf("all-miss HitRatio = %v, want 0", got)
	}
	if got := (Stats{LogicalReads: 5}).HitRatio(); got != 1 {
		t.Errorf("all-hit HitRatio = %v, want 1", got)
	}
}

func TestBufferPoolCountsEvictions(t *testing.T) {
	d := NewMemDisk(16)
	var ids []PageID
	for i := 0; i < 4; i++ {
		id, _ := d.Allocate()
		ids = append(ids, id)
	}
	p := NewBufferPool(d, 2)
	for _, id := range ids { // 4 misses into a 2-page pool → 2 evictions
		if _, err := p.Get(id); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.Stats().Evictions; got != 2 {
		t.Errorf("Evictions = %d, want 2", got)
	}
	// Hits do not evict.
	if _, err := p.Get(ids[3]); err != nil {
		t.Fatal(err)
	}
	if got := p.Stats().Evictions; got != 2 {
		t.Errorf("Evictions after hit = %d, want 2", got)
	}
}

func TestBufferPoolMetrics(t *testing.T) {
	d := NewMemDisk(16)
	var ids []PageID
	for i := 0; i < 3; i++ {
		id, _ := d.Allocate()
		ids = append(ids, id)
	}
	reg := obs.NewRegistry()
	p := NewBufferPool(d, 2)
	p.SetMetrics(NewPoolMetrics(reg, "objects"))
	_, _ = p.Get(ids[0]) // miss
	_, _ = p.Get(ids[0]) // hit
	_, _ = p.Get(ids[1]) // miss
	_, _ = p.Get(ids[2]) // miss + eviction
	_ = p.WriteThrough(ids[2], []byte{1})

	snap := reg.Snapshot()
	checks := map[string]int64{
		`stpq_bufferpool_hits_total{pool="objects"}`:      1,
		`stpq_bufferpool_misses_total{pool="objects"}`:    3,
		`stpq_bufferpool_evictions_total{pool="objects"}`: 1,
		`stpq_bufferpool_writes_total{pool="objects"}`:    1,
	}
	for name, want := range checks {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	// Metrics accumulate across ResetStats (lifetime vs. per-query).
	p.ResetStats()
	if got := reg.Snapshot().Counters[`stpq_bufferpool_misses_total{pool="objects"}`]; got != 3 {
		t.Errorf("metrics reset by ResetStats: %d", got)
	}
}

func TestCostModel(t *testing.T) {
	m := DefaultCostModel()
	if got := m.IOTime(10); got != 10*m.PerPage {
		t.Errorf("IOTime = %v", got)
	}
	custom := CostModel{PerPage: time.Millisecond}
	if got := custom.IOTime(3); got != 3*time.Millisecond {
		t.Errorf("custom IOTime = %v", got)
	}
}

func TestDumpLoadRoundTrip(t *testing.T) {
	d := NewMemDisk(64)
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 17; i++ {
		id, _ := d.Allocate()
		page := make([]byte, 64)
		rng.Read(page)
		if err := d.WritePage(id, page); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := DumpDisk(d, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadMemDisk(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.PageSize() != 64 || got.NumPages() != 17 {
		t.Fatalf("shape: %d pages of %d bytes", got.NumPages(), got.PageSize())
	}
	a, b := make([]byte, 64), make([]byte, 64)
	for i := 0; i < 17; i++ {
		_ = d.ReadPage(PageID(i), a)
		_ = got.ReadPage(PageID(i), b)
		if !bytes.Equal(a, b) {
			t.Fatalf("page %d differs", i)
		}
	}
}

func TestLoadMemDiskRejectsGarbage(t *testing.T) {
	if _, err := LoadMemDisk(bytes.NewReader([]byte("garbage data here"))); err == nil {
		t.Fatal("expected bad-magic error")
	}
	if _, err := LoadMemDisk(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected short-read error")
	}
	// Truncated page section.
	d := NewMemDisk(32)
	_, _ = d.Allocate()
	var buf bytes.Buffer
	if err := DumpDisk(d, &buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := LoadMemDisk(bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestStripedPoolClamping(t *testing.T) {
	d := NewMemDisk(16)
	cases := []struct {
		capacity, stripes int
		wantStripes       int
	}{
		{16, 1, 1},
		{16, 4, 4},
		{16, 5, 4},    // rounded down to a power of two
		{16, 100, 16}, // clamped to capacity
		{3, 8, 2},     // clamped to capacity, then rounded down
		{0, 8, 1},     // no cache → no striping
		{16, 0, 1},
		{16, -3, 1},
	}
	for _, tc := range cases {
		p := NewStripedBufferPool(d, tc.capacity, tc.stripes)
		if got := p.Stripes(); got != tc.wantStripes {
			t.Errorf("capacity=%d stripes=%d: Stripes = %d, want %d",
				tc.capacity, tc.stripes, got, tc.wantStripes)
		}
		if got := p.Capacity(); got != max(tc.capacity, 0) {
			t.Errorf("capacity=%d stripes=%d: Capacity = %d", tc.capacity, tc.stripes, got)
		}
	}
	if got := NewBufferPool(d, 16).Stripes(); got != 1 {
		t.Errorf("NewBufferPool Stripes = %d, want 1 (legacy single-lock pool)", got)
	}
}

// TestStripedPoolServesSameData drives a striped pool and a single-stripe
// pool through the same access sequence and checks every read returns
// identical bytes and the logical read counts agree exactly. (Physical
// reads may differ once eviction kicks in: eviction decisions are
// stripe-local by design.)
func TestStripedPoolServesSameData(t *testing.T) {
	mk := func() (Disk, []PageID) {
		d := NewMemDisk(32)
		ids := make([]PageID, 40)
		for i := range ids {
			id, _ := d.Allocate()
			buf := make([]byte, 32)
			for j := range buf {
				buf[j] = byte(int(id)*7 + j)
			}
			if err := d.WritePage(id, buf); err != nil {
				t.Fatal(err)
			}
			ids[i] = id
		}
		return d, ids
	}
	d1, ids := mk()
	d2, _ := mk()
	single := NewBufferPool(d1, 8)
	striped := NewStripedBufferPool(d2, 8, 4)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		id := ids[rng.Intn(len(ids))]
		a, err := single.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		b, err := striped.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("page %d: striped pool returned different bytes", id)
		}
	}
	ss, ps := single.Stats(), striped.Stats()
	if ss.LogicalReads != ps.LogicalReads {
		t.Errorf("logical reads: single %d, striped %d", ss.LogicalReads, ps.LogicalReads)
	}
	if striped.Len() > striped.Capacity() {
		t.Errorf("striped Len %d exceeds capacity %d", striped.Len(), striped.Capacity())
	}
}

// TestStripedPoolCapacityDistribution checks the per-stripe capacities sum
// to the pool capacity: fill the pool with distinct pages and verify no
// stripe overflows and the total cached page count never exceeds capacity.
func TestStripedPoolCapacityDistribution(t *testing.T) {
	d := NewMemDisk(16)
	var ids []PageID
	for i := 0; i < 64; i++ {
		id, _ := d.Allocate()
		ids = append(ids, id)
	}
	for _, stripes := range []int{1, 2, 4, 8} {
		p := NewStripedBufferPool(d, 10, stripes) // 10 pages over up-to-8 stripes
		for _, id := range ids {
			if _, err := p.Get(id); err != nil {
				t.Fatal(err)
			}
		}
		if got := p.Len(); got > 10 {
			t.Errorf("stripes=%d: Len = %d, want <= 10", stripes, got)
		}
		st := p.Stats()
		if st.PhysicalReads+0 == 0 || st.LogicalReads != int64(len(ids)) {
			t.Errorf("stripes=%d: stats %+v", stripes, st)
		}
	}
}

func TestAllocsBufferPoolGetHit(t *testing.T) {
	d := NewMemDisk(32)
	id, _ := d.Allocate()
	p := NewStripedBufferPool(d, 8, 4)
	if _, err := p.Get(id); err != nil { // prime the cache
		t.Fatal(err)
	}
	var acct Stats
	sess := p.Session(&acct)
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := sess.Get(id); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Get hit path allocs/op = %v, want 0", allocs)
	}
	if acct.PhysicalReads != 0 {
		t.Errorf("hit path did physical reads: %+v", acct)
	}
}

func TestStripedPoolSessionAccounting(t *testing.T) {
	d := NewMemDisk(16)
	var ids []PageID
	for i := 0; i < 8; i++ {
		id, _ := d.Allocate()
		ids = append(ids, id)
	}
	p := NewStripedBufferPool(d, 4, 4)
	var acct Stats
	sess := p.Session(&acct)
	for _, id := range ids {
		if _, err := sess.Get(id); err != nil {
			t.Fatal(err)
		}
	}
	if acct.LogicalReads != 8 || acct.PhysicalReads != 8 {
		t.Errorf("session acct = %+v, want 8 logical / 8 physical", acct)
	}
	life := p.Stats()
	if life.LogicalReads != 8 || life.PhysicalReads != 8 {
		t.Errorf("lifetime stats = %+v", life)
	}
	if acct.Evictions != life.Evictions {
		t.Errorf("session evictions %d != lifetime %d", acct.Evictions, life.Evictions)
	}
}
