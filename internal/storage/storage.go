// Package storage simulates the disk layer underneath the stpq indexes:
// fixed-size pages, an in-memory or file-backed page store, and an LRU
// buffer pool with I/O accounting.
//
// The paper evaluates disk-resident indexes and reports query cost broken
// down into I/O time (dark bars) and CPU time (white bars). We reproduce
// the page-access counts exactly — every index node occupies one page and
// every node visit is a logical page read that either hits the buffer pool
// or costs a physical read — and convert physical reads to modeled I/O
// time with a configurable per-page cost (see CostModel).
package storage

import (
	"errors"
	"fmt"
	"os"
	"time"
)

// DefaultPageSize is the page size used throughout the experiments, the
// classic 4 KiB disk page.
const DefaultPageSize = 4096

// PageID identifies a page within a Disk. The zero PageID is valid; use
// InvalidPage as the sentinel for "no page".
type PageID uint32

// InvalidPage is the sentinel PageID meaning "no page".
const InvalidPage = PageID(^uint32(0))

// ErrPageBounds is returned when reading or writing past the end of a disk.
var ErrPageBounds = errors.New("storage: page id out of range")

// Disk is a flat array of fixed-size pages.
type Disk interface {
	// PageSize returns the size in bytes of every page.
	PageSize() int
	// Allocate reserves a fresh zeroed page and returns its id.
	Allocate() (PageID, error)
	// ReadPage copies the page contents into buf, which must be at least
	// PageSize bytes long.
	ReadPage(id PageID, buf []byte) error
	// WritePage stores buf (at most PageSize bytes) as the page contents.
	WritePage(id PageID, buf []byte) error
	// NumPages returns the number of allocated pages.
	NumPages() int
	// Close releases any underlying resources.
	Close() error
}

// MemDisk is an in-memory Disk. It is the default backing store for
// experiments: physical reads are still counted by the buffer pool, so the
// paper's I/O metric is preserved while keeping runs fast and hermetic.
type MemDisk struct {
	pageSize int
	pages    [][]byte
}

// NewMemDisk returns an empty in-memory disk with the given page size.
func NewMemDisk(pageSize int) *MemDisk {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	return &MemDisk{pageSize: pageSize}
}

// PageSize implements Disk.
func (d *MemDisk) PageSize() int { return d.pageSize }

// Allocate implements Disk.
func (d *MemDisk) Allocate() (PageID, error) {
	d.pages = append(d.pages, make([]byte, d.pageSize))
	return PageID(len(d.pages) - 1), nil
}

// ReadPage implements Disk.
func (d *MemDisk) ReadPage(id PageID, buf []byte) error {
	if int(id) >= len(d.pages) {
		return fmt.Errorf("%w: read %d of %d", ErrPageBounds, id, len(d.pages))
	}
	copy(buf, d.pages[id])
	return nil
}

// WritePage implements Disk.
func (d *MemDisk) WritePage(id PageID, buf []byte) error {
	if int(id) >= len(d.pages) {
		return fmt.Errorf("%w: write %d of %d", ErrPageBounds, id, len(d.pages))
	}
	if len(buf) > d.pageSize {
		return fmt.Errorf("storage: page overflow: %d > %d", len(buf), d.pageSize)
	}
	p := d.pages[id]
	copy(p, buf)
	for i := len(buf); i < len(p); i++ {
		p[i] = 0
	}
	return nil
}

// NumPages implements Disk.
func (d *MemDisk) NumPages() int { return len(d.pages) }

// Close implements Disk.
func (d *MemDisk) Close() error { return nil }

// FileDisk is a Disk backed by a single file, for runs whose indexes
// exceed memory or that want OS-level I/O behaviour.
type FileDisk struct {
	pageSize int
	f        *os.File
	n        int
}

// NewFileDisk creates (truncating) a file-backed disk at path.
func NewFileDisk(path string, pageSize int) (*FileDisk, error) {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	return &FileDisk{pageSize: pageSize, f: f}, nil
}

// PageSize implements Disk.
func (d *FileDisk) PageSize() int { return d.pageSize }

// Allocate implements Disk.
func (d *FileDisk) Allocate() (PageID, error) {
	id := PageID(d.n)
	d.n++
	if err := d.f.Truncate(int64(d.n) * int64(d.pageSize)); err != nil {
		return InvalidPage, fmt.Errorf("storage: allocate: %w", err)
	}
	return id, nil
}

// ReadPage implements Disk.
func (d *FileDisk) ReadPage(id PageID, buf []byte) error {
	if int(id) >= d.n {
		return fmt.Errorf("%w: read %d of %d", ErrPageBounds, id, d.n)
	}
	_, err := d.f.ReadAt(buf[:d.pageSize], int64(id)*int64(d.pageSize))
	if err != nil {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	return nil
}

// WritePage implements Disk.
func (d *FileDisk) WritePage(id PageID, buf []byte) error {
	if int(id) >= d.n {
		return fmt.Errorf("%w: write %d of %d", ErrPageBounds, id, d.n)
	}
	if len(buf) > d.pageSize {
		return fmt.Errorf("storage: page overflow: %d > %d", len(buf), d.pageSize)
	}
	page := make([]byte, d.pageSize)
	copy(page, buf)
	if _, err := d.f.WriteAt(page, int64(id)*int64(d.pageSize)); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	return nil
}

// NumPages implements Disk.
func (d *FileDisk) NumPages() int { return d.n }

// Close implements Disk.
func (d *FileDisk) Close() error { return d.f.Close() }

// Stats accumulates page-access counters. Logical reads are buffer-pool
// requests; physical reads are pool misses that went to the Disk — the
// quantity the paper plots as I/O cost. Evictions count pages dropped by
// the LRU policy to make room.
type Stats struct {
	LogicalReads  int64
	PhysicalReads int64
	Writes        int64
	Evictions     int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.LogicalReads += other.LogicalReads
	s.PhysicalReads += other.PhysicalReads
	s.Writes += other.Writes
	s.Evictions += other.Evictions
}

// Sub returns s − other, for before/after snapshots around a query.
func (s Stats) Sub(other Stats) Stats {
	return Stats{
		LogicalReads:  s.LogicalReads - other.LogicalReads,
		PhysicalReads: s.PhysicalReads - other.PhysicalReads,
		Writes:        s.Writes - other.Writes,
		Evictions:     s.Evictions - other.Evictions,
	}
}

// HitRatio returns the buffer-pool hit ratio: the fraction of logical
// reads served from the cache, (logical − physical) / logical. It returns
// 0 when no logical reads have been recorded.
func (s Stats) HitRatio() float64 {
	if s.LogicalReads == 0 {
		return 0
	}
	return float64(s.LogicalReads-s.PhysicalReads) / float64(s.LogicalReads)
}

// CostModel converts physical page reads into modeled I/O time.
type CostModel struct {
	// PerPage is the modeled latency of one physical page read. The
	// default 0.1 ms approximates a 2015-era disk with OS caching; the
	// paper's absolute numbers used a slower device, but only the
	// conversion constant differs.
	PerPage time.Duration
}

// DefaultCostModel returns the cost model used by the experiment harness.
func DefaultCostModel() CostModel { return CostModel{PerPage: 100 * time.Microsecond} }

// IOTime returns the modeled time for n physical page reads.
func (c CostModel) IOTime(n int64) time.Duration {
	return time.Duration(n) * c.PerPage
}
