package storage

import (
	"container/list"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"stpq/internal/obs"
)

// BufferPool caches recently used pages of a Disk with an LRU eviction
// policy and counts logical and physical reads.
//
// The pool is intentionally simple: pages are read-mostly once an index is
// built, so there is no dirty-page write-back path — WriteThrough stores
// pages synchronously. The read path (Get) is safe for concurrent use and
// the lifetime counters are atomics, so any number of query goroutines may
// share one pool. Writes (WriteThrough) must not race reads — they only
// happen while an index is being built or mutated, which the layers above
// already serialize against queries.
//
// LRU state is lock-striped: pages are spread over N independent LRU
// shards keyed by a PageID hash, each with its own mutex, so concurrent
// readers touching different stripes never contend. NewBufferPool builds a
// single stripe — byte-for-byte the classic one-mutex pool with one global
// LRU order — and NewStripedBufferPool opts into N stripes. Striping
// partitions the LRU order (eviction decisions become stripe-local) but
// every counter keeps exact pool-wide semantics: logical/physical/write/
// eviction counts are shared atomics, and per-query Session accounting is
// untouched.
//
// Per-query read accounting uses session handles (see Session): the paper
// attributes page reads to individual queries, and under concurrency the
// pool-wide counters interleave, so each query charges its own private
// Stats in addition to the shared lifetime counters.
type BufferPool struct {
	s *poolShared
	// local, when non-nil, receives this handle's read counts in addition
	// to the shared lifetime counters. It is owned by a single query
	// goroutine and uses plain (non-atomic) arithmetic.
	local *Stats
}

// poolShared is the state shared by a pool and all its session handles.
type poolShared struct {
	disk     Disk
	capacity int
	shift    uint // hash >> shift selects a stripe; 64 for one stripe
	stripes  []poolStripe

	logical   atomic.Int64
	physical  atomic.Int64
	writes    atomic.Int64
	evictions atomic.Int64

	metrics atomic.Pointer[PoolMetrics] // optional aggregate metrics
}

// poolStripe is one independent LRU shard. The trailing pad keeps hot
// stripes on separate cache lines so uncontended stripes don't false-share.
type poolStripe struct {
	mu       sync.Mutex // guards lru and entries
	capacity int
	lru      *list.List // front = most recently used; values are *frame
	entries  map[PageID]*list.Element
	_        [40]byte
}

// PoolMetrics aggregates one buffer pool's counters into a metrics
// registry. Unlike Stats — which is accumulated per query — these counters
// accumulate over the pool's lifetime and are meant for scraping.
type PoolMetrics struct {
	Hits      *obs.Counter
	Misses    *obs.Counter
	Evictions *obs.Counter
	Writes    *obs.Counter
}

// NewPoolMetrics registers the four pool counters under
// stpq_bufferpool_*_total{pool="<name>"}.
func NewPoolMetrics(r *obs.Registry, pool string) *PoolMetrics {
	label := `{pool="` + pool + `"}`
	return &PoolMetrics{
		Hits:      r.Counter("stpq_bufferpool_hits_total" + label),
		Misses:    r.Counter("stpq_bufferpool_misses_total" + label),
		Evictions: r.Counter("stpq_bufferpool_evictions_total" + label),
		Writes:    r.Counter("stpq_bufferpool_writes_total" + label),
	}
}

// SetMetrics attaches (or, with nil, detaches) aggregate metrics.
func (b *BufferPool) SetMetrics(m *PoolMetrics) { b.s.metrics.Store(m) }

type frame struct {
	id   PageID
	data []byte
}

// NewBufferPool wraps disk with an LRU cache of capacity pages behind a
// single stripe: one mutex, one global LRU order — the exact semantics of
// the classic pool, so serial I/O counts are reproducible run to run.
// A capacity of 0 disables caching entirely (every read is physical),
// which is useful for measuring worst-case I/O.
func NewBufferPool(disk Disk, capacity int) *BufferPool {
	return NewStripedBufferPool(disk, capacity, 1)
}

// NewStripedBufferPool wraps disk with an LRU cache of capacity pages
// spread over stripes independent LRU shards. The stripe count is rounded
// down to a power of two, clamped to [1, capacity] (so every stripe holds
// at least one page), and the capacity is distributed across stripes as
// evenly as possible — the total never differs from capacity.
func NewStripedBufferPool(disk Disk, capacity, stripes int) *BufferPool {
	if capacity < 0 {
		capacity = 0
	}
	if stripes < 1 {
		stripes = 1
	}
	if capacity > 0 && stripes > capacity {
		stripes = capacity
	}
	if capacity == 0 {
		stripes = 1
	}
	// Round down to a power of two so stripe selection is a shift, not a
	// modulo.
	stripes = 1 << (bits.Len(uint(stripes)) - 1)
	s := &poolShared{
		disk:     disk,
		capacity: capacity,
		shift:    uint(64 - bits.TrailingZeros(uint(stripes))),
		stripes:  make([]poolStripe, stripes),
	}
	for i := range s.stripes {
		st := &s.stripes[i]
		st.capacity = capacity / stripes
		if i < capacity%stripes {
			st.capacity++
		}
		st.lru = list.New()
		st.entries = make(map[PageID]*list.Element)
	}
	return &BufferPool{s: s}
}

// stripe selects the LRU shard for a page. Fibonacci hashing spreads the
// sequential PageIDs an index allocates uniformly over the stripes; with a
// single stripe the shift is 64 and the expression is constant 0.
func (s *poolShared) stripe(id PageID) *poolStripe {
	return &s.stripes[(uint64(id)*0x9E3779B97F4A7C15)>>s.shift]
}

// Session returns a handle onto the same pool (same cache, same lifetime
// counters) that additionally charges every read to acct. acct must be
// used from a single goroutine at a time — it is the per-query accumulator
// behind Stats.LogicalReads/PhysicalReads.
func (b *BufferPool) Session(acct *Stats) *BufferPool {
	return &BufferPool{s: b.s, local: acct}
}

// Disk returns the underlying disk.
func (b *BufferPool) Disk() Disk { return b.s.disk }

// Capacity returns the pool capacity in pages, summed over stripes.
func (b *BufferPool) Capacity() int { return b.s.capacity }

// Stripes returns the number of independent LRU shards.
func (b *BufferPool) Stripes() int { return len(b.s.stripes) }

// Len returns the number of cached pages.
func (b *BufferPool) Len() int {
	n := 0
	for i := range b.s.stripes {
		st := &b.s.stripes[i]
		st.mu.Lock()
		n += st.lru.Len()
		st.mu.Unlock()
	}
	return n
}

// Get returns the contents of the page. The returned slice is owned by the
// pool and must not be modified or retained across further pool calls;
// callers decode it into their own node representation immediately.
func (b *BufferPool) Get(id PageID) ([]byte, error) {
	s := b.s
	s.logical.Add(1)
	if b.local != nil {
		b.local.LogicalReads++
	}
	st := s.stripe(id)
	st.mu.Lock()
	if el, ok := st.entries[id]; ok {
		st.lru.MoveToFront(el)
		data := el.Value.(*frame).data
		st.mu.Unlock()
		if m := s.metrics.Load(); m != nil {
			m.Hits.Inc()
		}
		return data, nil
	}
	// Miss: the disk read happens under the stripe lock, so concurrent
	// misses on the same page coalesce into one physical read — the
	// behaviour of a real pool with page latches, and what keeps read
	// accounting comparable between sequential and concurrent runs.
	s.physical.Add(1)
	if b.local != nil {
		b.local.PhysicalReads++
	}
	data := make([]byte, s.disk.PageSize())
	if err := s.disk.ReadPage(id, data); err != nil {
		st.mu.Unlock()
		return nil, fmt.Errorf("bufferpool: %w", err)
	}
	b.insertLocked(st, id, data)
	st.mu.Unlock()
	if m := s.metrics.Load(); m != nil {
		m.Misses.Inc()
	}
	return data, nil
}

// WriteThrough writes the page to disk and refreshes the cached copy.
func (b *BufferPool) WriteThrough(id PageID, data []byte) error {
	s := b.s
	s.writes.Add(1)
	if b.local != nil {
		b.local.Writes++
	}
	if m := s.metrics.Load(); m != nil {
		m.Writes.Inc()
	}
	st := s.stripe(id)
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := s.disk.WritePage(id, data); err != nil {
		return fmt.Errorf("bufferpool: %w", err)
	}
	if el, ok := st.entries[id]; ok {
		f := el.Value.(*frame)
		copy(f.data, data)
		for i := len(data); i < len(f.data); i++ {
			f.data[i] = 0
		}
		st.lru.MoveToFront(el)
	}
	return nil
}

// insertLocked caches the page in its stripe, evicting the stripe's least
// recently used page if the stripe is full. Callers hold st.mu.
func (b *BufferPool) insertLocked(st *poolStripe, id PageID, data []byte) {
	s := b.s
	if st.capacity == 0 {
		return
	}
	if st.lru.Len() >= st.capacity {
		back := st.lru.Back()
		if back != nil {
			st.lru.Remove(back)
			delete(st.entries, back.Value.(*frame).id)
			s.evictions.Add(1)
			if b.local != nil {
				b.local.Evictions++
			}
			if m := s.metrics.Load(); m != nil {
				m.Evictions.Inc()
			}
		}
	}
	st.entries[id] = st.lru.PushFront(&frame{id: id, data: data})
}

// Contains reports whether the page is currently cached (for tests).
func (b *BufferPool) Contains(id PageID) bool {
	st := b.s.stripe(id)
	st.mu.Lock()
	defer st.mu.Unlock()
	_, ok := st.entries[id]
	return ok
}

// Stats returns a snapshot of the accumulated lifetime counters.
func (b *BufferPool) Stats() Stats {
	return Stats{
		LogicalReads:  b.s.logical.Load(),
		PhysicalReads: b.s.physical.Load(),
		Writes:        b.s.writes.Load(),
		Evictions:     b.s.evictions.Load(),
	}
}

// ResetStats zeroes the lifetime counters (the cache contents are kept,
// matching the paper's warm-cache steady-state measurements).
func (b *BufferPool) ResetStats() {
	b.s.logical.Store(0)
	b.s.physical.Store(0)
	b.s.writes.Store(0)
	b.s.evictions.Store(0)
}

// Clear drops all cached pages (cold-cache measurements).
func (b *BufferPool) Clear() {
	for i := range b.s.stripes {
		st := &b.s.stripes[i]
		st.mu.Lock()
		st.lru.Init()
		st.entries = make(map[PageID]*list.Element)
		st.mu.Unlock()
	}
}
