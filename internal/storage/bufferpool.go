package storage

import (
	"container/list"
	"fmt"

	"stpq/internal/obs"
)

// BufferPool caches recently used pages of a Disk with an LRU eviction
// policy and counts logical and physical reads.
//
// The pool is intentionally simple: pages are read-mostly once an index is
// built, so there is no dirty-page write-back path — WriteThrough stores
// pages synchronously. A BufferPool is not safe for concurrent use; the
// query algorithms are single-threaded, as in the paper.
type BufferPool struct {
	disk     Disk
	capacity int
	stats    Stats
	metrics  *PoolMetrics // optional aggregate metrics, nil when detached

	lru     *list.List // front = most recently used; values are *frame
	entries map[PageID]*list.Element
}

// PoolMetrics aggregates one buffer pool's counters into a metrics
// registry. Unlike Stats — which is snapshotted and diffed around a single
// query — these counters accumulate over the pool's lifetime and are meant
// for scraping.
type PoolMetrics struct {
	Hits      *obs.Counter
	Misses    *obs.Counter
	Evictions *obs.Counter
	Writes    *obs.Counter
}

// NewPoolMetrics registers the four pool counters under
// stpq_bufferpool_*_total{pool="<name>"}.
func NewPoolMetrics(r *obs.Registry, pool string) *PoolMetrics {
	label := `{pool="` + pool + `"}`
	return &PoolMetrics{
		Hits:      r.Counter("stpq_bufferpool_hits_total" + label),
		Misses:    r.Counter("stpq_bufferpool_misses_total" + label),
		Evictions: r.Counter("stpq_bufferpool_evictions_total" + label),
		Writes:    r.Counter("stpq_bufferpool_writes_total" + label),
	}
}

// SetMetrics attaches (or, with nil, detaches) aggregate metrics.
func (b *BufferPool) SetMetrics(m *PoolMetrics) { b.metrics = m }

type frame struct {
	id   PageID
	data []byte
}

// NewBufferPool wraps disk with an LRU cache of capacity pages.
// A capacity of 0 disables caching entirely (every read is physical),
// which is useful for measuring worst-case I/O.
func NewBufferPool(disk Disk, capacity int) *BufferPool {
	if capacity < 0 {
		capacity = 0
	}
	return &BufferPool{
		disk:     disk,
		capacity: capacity,
		lru:      list.New(),
		entries:  make(map[PageID]*list.Element),
	}
}

// Disk returns the underlying disk.
func (b *BufferPool) Disk() Disk { return b.disk }

// Capacity returns the pool capacity in pages.
func (b *BufferPool) Capacity() int { return b.capacity }

// Len returns the number of cached pages.
func (b *BufferPool) Len() int { return b.lru.Len() }

// Get returns the contents of the page. The returned slice is owned by the
// pool and must not be modified or retained across further pool calls;
// callers decode it into their own node representation immediately.
func (b *BufferPool) Get(id PageID) ([]byte, error) {
	b.stats.LogicalReads++
	if el, ok := b.entries[id]; ok {
		if b.metrics != nil {
			b.metrics.Hits.Inc()
		}
		b.lru.MoveToFront(el)
		return el.Value.(*frame).data, nil
	}
	b.stats.PhysicalReads++
	if b.metrics != nil {
		b.metrics.Misses.Inc()
	}
	data := make([]byte, b.disk.PageSize())
	if err := b.disk.ReadPage(id, data); err != nil {
		return nil, fmt.Errorf("bufferpool: %w", err)
	}
	b.insert(id, data)
	return data, nil
}

// WriteThrough writes the page to disk and refreshes the cached copy.
func (b *BufferPool) WriteThrough(id PageID, data []byte) error {
	b.stats.Writes++
	if b.metrics != nil {
		b.metrics.Writes.Inc()
	}
	if err := b.disk.WritePage(id, data); err != nil {
		return fmt.Errorf("bufferpool: %w", err)
	}
	if el, ok := b.entries[id]; ok {
		f := el.Value.(*frame)
		copy(f.data, data)
		for i := len(data); i < len(f.data); i++ {
			f.data[i] = 0
		}
		b.lru.MoveToFront(el)
	}
	return nil
}

// insert caches the page, evicting the least recently used page if full.
func (b *BufferPool) insert(id PageID, data []byte) {
	if b.capacity == 0 {
		return
	}
	if b.lru.Len() >= b.capacity {
		back := b.lru.Back()
		if back != nil {
			b.lru.Remove(back)
			delete(b.entries, back.Value.(*frame).id)
			b.stats.Evictions++
			if b.metrics != nil {
				b.metrics.Evictions.Inc()
			}
		}
	}
	b.entries[id] = b.lru.PushFront(&frame{id: id, data: data})
}

// Contains reports whether the page is currently cached (for tests).
func (b *BufferPool) Contains(id PageID) bool {
	_, ok := b.entries[id]
	return ok
}

// Stats returns a snapshot of the accumulated counters.
func (b *BufferPool) Stats() Stats { return b.stats }

// ResetStats zeroes the counters (the cache contents are kept, matching
// the paper's warm-cache steady-state measurements).
func (b *BufferPool) ResetStats() { b.stats = Stats{} }

// Clear drops all cached pages (cold-cache measurements).
func (b *BufferPool) Clear() {
	b.lru.Init()
	b.entries = make(map[PageID]*list.Element)
}
