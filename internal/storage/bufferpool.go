package storage

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"stpq/internal/obs"
)

// BufferPool caches recently used pages of a Disk with an LRU eviction
// policy and counts logical and physical reads.
//
// The pool is intentionally simple: pages are read-mostly once an index is
// built, so there is no dirty-page write-back path — WriteThrough stores
// pages synchronously. The read path (Get) is safe for concurrent use: a
// mutex protects the LRU state and the lifetime counters are atomics, so
// any number of query goroutines may share one pool. Writes (WriteThrough)
// must not race reads — they only happen while an index is being built or
// mutated, which the layers above already serialize against queries.
//
// Per-query read accounting uses session handles (see Session): the paper
// attributes page reads to individual queries, and under concurrency the
// pool-wide counters interleave, so each query charges its own private
// Stats in addition to the shared lifetime counters.
type BufferPool struct {
	s *poolShared
	// local, when non-nil, receives this handle's read counts in addition
	// to the shared lifetime counters. It is owned by a single query
	// goroutine and uses plain (non-atomic) arithmetic.
	local *Stats
}

// poolShared is the state shared by a pool and all its session handles.
type poolShared struct {
	disk     Disk
	capacity int

	mu      sync.Mutex // guards lru and entries
	lru     *list.List // front = most recently used; values are *frame
	entries map[PageID]*list.Element

	logical   atomic.Int64
	physical  atomic.Int64
	writes    atomic.Int64
	evictions atomic.Int64

	metrics atomic.Pointer[PoolMetrics] // optional aggregate metrics
}

// PoolMetrics aggregates one buffer pool's counters into a metrics
// registry. Unlike Stats — which is accumulated per query — these counters
// accumulate over the pool's lifetime and are meant for scraping.
type PoolMetrics struct {
	Hits      *obs.Counter
	Misses    *obs.Counter
	Evictions *obs.Counter
	Writes    *obs.Counter
}

// NewPoolMetrics registers the four pool counters under
// stpq_bufferpool_*_total{pool="<name>"}.
func NewPoolMetrics(r *obs.Registry, pool string) *PoolMetrics {
	label := `{pool="` + pool + `"}`
	return &PoolMetrics{
		Hits:      r.Counter("stpq_bufferpool_hits_total" + label),
		Misses:    r.Counter("stpq_bufferpool_misses_total" + label),
		Evictions: r.Counter("stpq_bufferpool_evictions_total" + label),
		Writes:    r.Counter("stpq_bufferpool_writes_total" + label),
	}
}

// SetMetrics attaches (or, with nil, detaches) aggregate metrics.
func (b *BufferPool) SetMetrics(m *PoolMetrics) { b.s.metrics.Store(m) }

type frame struct {
	id   PageID
	data []byte
}

// NewBufferPool wraps disk with an LRU cache of capacity pages.
// A capacity of 0 disables caching entirely (every read is physical),
// which is useful for measuring worst-case I/O.
func NewBufferPool(disk Disk, capacity int) *BufferPool {
	if capacity < 0 {
		capacity = 0
	}
	return &BufferPool{s: &poolShared{
		disk:     disk,
		capacity: capacity,
		lru:      list.New(),
		entries:  make(map[PageID]*list.Element),
	}}
}

// Session returns a handle onto the same pool (same cache, same lifetime
// counters) that additionally charges every read to acct. acct must be
// used from a single goroutine at a time — it is the per-query accumulator
// behind Stats.LogicalReads/PhysicalReads.
func (b *BufferPool) Session(acct *Stats) *BufferPool {
	return &BufferPool{s: b.s, local: acct}
}

// Disk returns the underlying disk.
func (b *BufferPool) Disk() Disk { return b.s.disk }

// Capacity returns the pool capacity in pages.
func (b *BufferPool) Capacity() int { return b.s.capacity }

// Len returns the number of cached pages.
func (b *BufferPool) Len() int {
	b.s.mu.Lock()
	defer b.s.mu.Unlock()
	return b.s.lru.Len()
}

// Get returns the contents of the page. The returned slice is owned by the
// pool and must not be modified or retained across further pool calls;
// callers decode it into their own node representation immediately.
func (b *BufferPool) Get(id PageID) ([]byte, error) {
	s := b.s
	s.logical.Add(1)
	if b.local != nil {
		b.local.LogicalReads++
	}
	s.mu.Lock()
	if el, ok := s.entries[id]; ok {
		s.lru.MoveToFront(el)
		data := el.Value.(*frame).data
		s.mu.Unlock()
		if m := s.metrics.Load(); m != nil {
			m.Hits.Inc()
		}
		return data, nil
	}
	// Miss: the disk read happens under the lock, so concurrent misses on
	// the same page coalesce into one physical read — the behaviour of a
	// real pool with page latches, and what keeps read accounting
	// comparable between sequential and concurrent runs.
	s.physical.Add(1)
	if b.local != nil {
		b.local.PhysicalReads++
	}
	data := make([]byte, s.disk.PageSize())
	if err := s.disk.ReadPage(id, data); err != nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("bufferpool: %w", err)
	}
	b.insertLocked(id, data)
	s.mu.Unlock()
	if m := s.metrics.Load(); m != nil {
		m.Misses.Inc()
	}
	return data, nil
}

// WriteThrough writes the page to disk and refreshes the cached copy.
func (b *BufferPool) WriteThrough(id PageID, data []byte) error {
	s := b.s
	s.writes.Add(1)
	if b.local != nil {
		b.local.Writes++
	}
	if m := s.metrics.Load(); m != nil {
		m.Writes.Inc()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.disk.WritePage(id, data); err != nil {
		return fmt.Errorf("bufferpool: %w", err)
	}
	if el, ok := s.entries[id]; ok {
		f := el.Value.(*frame)
		copy(f.data, data)
		for i := len(data); i < len(f.data); i++ {
			f.data[i] = 0
		}
		s.lru.MoveToFront(el)
	}
	return nil
}

// insertLocked caches the page, evicting the least recently used page if
// full. Callers hold s.mu.
func (b *BufferPool) insertLocked(id PageID, data []byte) {
	s := b.s
	if s.capacity == 0 {
		return
	}
	if s.lru.Len() >= s.capacity {
		back := s.lru.Back()
		if back != nil {
			s.lru.Remove(back)
			delete(s.entries, back.Value.(*frame).id)
			s.evictions.Add(1)
			if b.local != nil {
				b.local.Evictions++
			}
			if m := s.metrics.Load(); m != nil {
				m.Evictions.Inc()
			}
		}
	}
	s.entries[id] = s.lru.PushFront(&frame{id: id, data: data})
}

// Contains reports whether the page is currently cached (for tests).
func (b *BufferPool) Contains(id PageID) bool {
	b.s.mu.Lock()
	defer b.s.mu.Unlock()
	_, ok := b.s.entries[id]
	return ok
}

// Stats returns a snapshot of the accumulated lifetime counters.
func (b *BufferPool) Stats() Stats {
	return Stats{
		LogicalReads:  b.s.logical.Load(),
		PhysicalReads: b.s.physical.Load(),
		Writes:        b.s.writes.Load(),
		Evictions:     b.s.evictions.Load(),
	}
}

// ResetStats zeroes the lifetime counters (the cache contents are kept,
// matching the paper's warm-cache steady-state measurements).
func (b *BufferPool) ResetStats() {
	b.s.logical.Store(0)
	b.s.physical.Store(0)
	b.s.writes.Store(0)
	b.s.evictions.Store(0)
}

// Clear drops all cached pages (cold-cache measurements).
func (b *BufferPool) Clear() {
	b.s.mu.Lock()
	defer b.s.mu.Unlock()
	b.s.lru.Init()
	b.s.entries = make(map[PageID]*list.Element)
}
