package storage

import (
	"bytes"
	"testing"
)

func TestCowDiskIsolation(t *testing.T) {
	base := NewMemDisk(64)
	for i := 0; i < 4; i++ {
		id, err := base.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if err := base.WritePage(id, bytes.Repeat([]byte{byte(i + 1)}, 64)); err != nil {
			t.Fatal(err)
		}
	}

	cow := NewCowDisk(base)
	if cow.NumPages() != 4 {
		t.Fatalf("NumPages = %d, want 4", cow.NumPages())
	}

	// Overlay write must not touch the base.
	if err := cow.WritePage(1, bytes.Repeat([]byte{0xAA}, 64)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if err := base.ReadPage(1, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 2 {
		t.Fatalf("base page 1 mutated: %x", buf[0])
	}
	if err := cow.ReadPage(1, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0xAA {
		t.Fatalf("cow page 1 = %x, want aa", buf[0])
	}

	// Untouched pages fall through.
	if err := cow.ReadPage(2, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 3 {
		t.Fatalf("cow page 2 = %x, want 03", buf[0])
	}

	// Allocation extends past the base without touching it.
	id, err := cow.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id != 4 {
		t.Fatalf("Allocate = %d, want 4", id)
	}
	if base.NumPages() != 4 {
		t.Fatalf("base grew to %d pages", base.NumPages())
	}
	if err := cow.WritePage(4, []byte{0xBB}); err != nil {
		t.Fatal(err)
	}
	if err := cow.ReadPage(4, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0xBB || buf[1] != 0 {
		t.Fatalf("short write not zero-padded: %x %x", buf[0], buf[1])
	}
	if cow.OverlayPages() != 2 {
		t.Fatalf("OverlayPages = %d, want 2", cow.OverlayPages())
	}

	// Bounds are enforced.
	if err := cow.ReadPage(99, buf); err == nil {
		t.Fatal("read past end succeeded")
	}
	if err := cow.WritePage(99, buf); err == nil {
		t.Fatal("write past end succeeded")
	}
}

func TestCowDiskChainFlattening(t *testing.T) {
	base := NewMemDisk(32)
	id, _ := base.Allocate()
	_ = base.WritePage(id, []byte{1})

	gen1 := NewCowDisk(base)
	if err := gen1.WritePage(0, []byte{2}); err != nil {
		t.Fatal(err)
	}
	if _, err := gen1.Allocate(); err != nil {
		t.Fatal(err)
	}

	gen2 := NewCowDisk(gen1)
	if gen2.base != Disk(base) {
		t.Fatal("gen2 did not flatten to the root disk")
	}
	if gen2.NumPages() != 2 {
		t.Fatalf("gen2 NumPages = %d, want 2", gen2.NumPages())
	}
	buf := make([]byte, 32)
	if err := gen2.ReadPage(0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 2 {
		t.Fatalf("gen2 page 0 = %x, want 02 (inherited overlay)", buf[0])
	}

	// Writes to gen2 are invisible to gen1.
	if err := gen2.WritePage(0, []byte{3}); err != nil {
		t.Fatal(err)
	}
	if err := gen1.ReadPage(0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 2 {
		t.Fatalf("gen1 page 0 = %x, want 02", buf[0])
	}
}

func TestCowDiskDumpRoundTrip(t *testing.T) {
	base := NewMemDisk(32)
	for i := 0; i < 3; i++ {
		id, _ := base.Allocate()
		_ = base.WritePage(id, []byte{byte(10 + i)})
	}
	cow := NewCowDisk(base)
	_ = cow.WritePage(1, []byte{0xEE})
	id, _ := cow.Allocate()
	_ = cow.WritePage(id, []byte{0xFF})

	var buf bytes.Buffer
	if err := DumpDisk(cow, &buf); err != nil {
		t.Fatal(err)
	}
	mem, err := LoadMemDisk(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if mem.NumPages() != 4 {
		t.Fatalf("round trip pages = %d, want 4", mem.NumPages())
	}
	want := []byte{10, 0xEE, 12, 0xFF}
	pg := make([]byte, 32)
	for i, w := range want {
		if err := mem.ReadPage(PageID(i), pg); err != nil {
			t.Fatal(err)
		}
		if pg[0] != w {
			t.Fatalf("page %d = %x, want %x", i, pg[0], w)
		}
	}
}
