package storage

// cow.go implements a copy-on-write view over a Disk. CowDisk is the
// mechanism behind partial index merges: a merge opens the live tree's
// pages through a CowDisk and mutates it with ordinary Insert/Delete
// calls, and only the touched pages land in the private overlay — the
// base disk is never written, so snapshots pinned to the old generation
// keep reading the original bytes. Merge cost is therefore proportional
// to the pages the delta touches, not to the size of the base index.
//
// Chains stay flat: wrapping a CowDisk copies the parent's overlay map
// (cheap — it only holds pages written since the last full rebuild) and
// shares the parent's base, so reads never traverse more than one
// overlay level no matter how many merge generations have run.

import (
	"fmt"
	"sync"
)

// CowDisk is a Disk whose writes go to a private page overlay while
// reads fall through to an immutable base for untouched pages.
type CowDisk struct {
	mu      sync.RWMutex
	base    Disk
	overlay map[PageID][]byte
	n       int // total pages: base pages plus overlay-only allocations
}

// NewCowDisk returns a copy-on-write view over base. The base must not
// be written by anyone else while the view is alive; concurrent reads of
// the base are fine. If base is itself a CowDisk the new view copies its
// overlay and shares the underlying root disk, keeping the read path one
// level deep.
func NewCowDisk(base Disk) *CowDisk {
	if parent, ok := base.(*CowDisk); ok {
		parent.mu.RLock()
		overlay := make(map[PageID][]byte, len(parent.overlay))
		for id, pg := range parent.overlay {
			cp := make([]byte, len(pg))
			copy(cp, pg)
			overlay[id] = cp
		}
		n := parent.n
		root := parent.base
		parent.mu.RUnlock()
		return &CowDisk{base: root, overlay: overlay, n: n}
	}
	return &CowDisk{base: base, overlay: make(map[PageID][]byte), n: base.NumPages()}
}

// PageSize implements Disk.
func (d *CowDisk) PageSize() int { return d.base.PageSize() }

// Allocate implements Disk. Fresh pages live only in the overlay.
func (d *CowDisk) Allocate() (PageID, error) {
	d.mu.Lock()
	id := PageID(d.n)
	d.n++
	d.overlay[id] = make([]byte, d.base.PageSize())
	d.mu.Unlock()
	return id, nil
}

// ReadPage implements Disk.
func (d *CowDisk) ReadPage(id PageID, buf []byte) error {
	d.mu.RLock()
	if int(id) >= d.n {
		n := d.n
		d.mu.RUnlock()
		return fmt.Errorf("%w: read %d of %d", ErrPageBounds, id, n)
	}
	if pg, ok := d.overlay[id]; ok {
		copy(buf, pg)
		d.mu.RUnlock()
		return nil
	}
	d.mu.RUnlock()
	return d.base.ReadPage(id, buf)
}

// WritePage implements Disk.
func (d *CowDisk) WritePage(id PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(id) >= d.n {
		return fmt.Errorf("%w: write %d of %d", ErrPageBounds, id, d.n)
	}
	if len(buf) > d.base.PageSize() {
		return fmt.Errorf("storage: page overflow: %d > %d", len(buf), d.base.PageSize())
	}
	pg, ok := d.overlay[id]
	if !ok {
		pg = make([]byte, d.base.PageSize())
		d.overlay[id] = pg
	}
	copy(pg, buf)
	for i := len(buf); i < len(pg); i++ {
		pg[i] = 0
	}
	return nil
}

// NumPages implements Disk.
func (d *CowDisk) NumPages() int {
	d.mu.RLock()
	n := d.n
	d.mu.RUnlock()
	return n
}

// OverlayPages returns how many pages have been copied or allocated in
// the private overlay — the write amplification of the merges that ran
// through this view.
func (d *CowDisk) OverlayPages() int {
	d.mu.RLock()
	n := len(d.overlay)
	d.mu.RUnlock()
	return n
}

// Close implements Disk. The base is shared with older generations and
// is not closed.
func (d *CowDisk) Close() error { return nil }
