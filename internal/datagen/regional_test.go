package datagen

import "testing"

// Regionalized features must draw keywords only from their cell's
// vocabulary slice, keep locations/scores, and produce a usable query CDF.
func TestRegionalize(t *testing.T) {
	base := Synthetic(SyntheticConfig{
		Objects: 500, FeaturesPerSet: 800, FeatureSets: 2, Vocab: 64, Clusters: 50, Seed: 9,
	})
	const grid = 4
	reg := base.Regionalize(grid, 10)
	if len(reg.Objects) != len(base.Objects) || len(reg.FeatureSets) != len(base.FeatureSets) {
		t.Fatal("regionalized dataset changed shape")
	}
	cells := grid * grid
	for s, feats := range reg.FeatureSets {
		if len(feats) != len(base.FeatureSets[s]) {
			t.Fatalf("set %d: %d features, want %d", s, len(feats), len(base.FeatureSets[s]))
		}
		for i, f := range feats {
			b := base.FeatureSets[s][i]
			if f.Location != b.Location || f.Score != b.Score || f.ID != b.ID {
				t.Fatalf("set %d feature %d: location/score/id changed", s, i)
			}
			ix := int(f.Location.X * grid)
			if ix >= grid {
				ix = grid - 1
			}
			iy := int(f.Location.Y * grid)
			if iy >= grid {
				iy = grid - 1
			}
			c := iy*grid + ix
			lo, hi := c*reg.VocabWidth/cells, (c+1)*reg.VocabWidth/cells
			for _, id := range f.Keywords.IDs() {
				if id < lo || id >= hi {
					t.Fatalf("set %d feature %d: keyword %d outside cell slice [%d,%d)", s, i, id, lo, hi)
				}
			}
		}
	}
	qs := reg.GenQueries(20, QueryConfig{NumKeywords: 2, Seed: 11})
	if len(qs) != 20 {
		t.Fatalf("GenQueries returned %d queries", len(qs))
	}
	for _, q := range qs {
		for s, kw := range q.Keywords {
			if kw.Count() != 2 {
				t.Fatalf("set %d: query has %d keywords", s, kw.Count())
			}
		}
	}
}
