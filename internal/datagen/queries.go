package datagen

import (
	"math/rand"

	"stpq/internal/core"
	"stpq/internal/kwset"
)

// QueryConfig fixes the query parameters of a generated workload
// (defaults are Table 2's bold entries).
type QueryConfig struct {
	K           int     // default 10
	Radius      float64 // default 0.01 (normalized)
	Lambda      float64 // default 0.5
	NumKeywords int     // queried keywords per feature set, default 3
	Variant     core.Variant
	Seed        int64
}

// withDefaults fills zero values with the paper's defaults.
func (c QueryConfig) withDefaults() QueryConfig {
	if c.K == 0 {
		c.K = 10
	}
	if c.Radius == 0 {
		c.Radius = 0.01
	}
	if c.Lambda == 0 {
		c.Lambda = 0.5
	}
	if c.NumKeywords == 0 {
		c.NumKeywords = 3
	}
	return c
}

// GenQueries produces n random queries whose keywords follow the keyword
// distribution of each feature set — the paper's "generated in a similar
// way as the synthetic data and follow the same data distribution".
func (d *Dataset) GenQueries(n int, cfg QueryConfig) []core.Query {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 0x9e3779b9))
	out := make([]core.Query, n)
	for i := range out {
		kws := make([]kwset.Set, len(d.FeatureSets))
		for s := range kws {
			set := kwset.NewSet(d.VocabWidth)
			for set.Count() < cfg.NumKeywords {
				set.Add(drawFromCDF(rng, d.keywordCDF[s]))
			}
			kws[s] = set
		}
		out[i] = core.Query{
			K:        cfg.K,
			Radius:   cfg.Radius,
			Lambda:   cfg.Lambda,
			Keywords: kws,
			Variant:  cfg.Variant,
		}
	}
	return out
}
