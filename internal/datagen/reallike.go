package datagen

import (
	"math/rand"

	"stpq/internal/geo"
	"stpq/internal/index"
	"stpq/internal/kwset"
)

// Cuisines is the keyword universe of the real-dataset surrogate: ~130
// cuisine terms mirroring the Factual.com "cuisine" attribute the paper
// extracted (Section 8.1: "the number of distinct values of keywords for
// the cuisine is around 130").
var Cuisines = []string{
	"american", "italian", "pizza", "chinese", "mexican", "japanese", "sushi",
	"thai", "indian", "french", "greek", "mediterranean", "spanish", "tapas",
	"korean", "vietnamese", "bbq", "barbecue", "burgers", "sandwiches", "subs",
	"deli", "bakery", "cafe", "coffee", "tea", "espresso", "donuts", "bagels",
	"breakfast", "brunch", "diner", "steak", "steakhouse", "seafood", "fish",
	"oyster", "crab", "lobster", "vegetarian", "vegan", "organic", "healthy",
	"salads", "soup", "noodles", "ramen", "pho", "dim-sum", "dumplings",
	"cantonese", "szechuan", "hunan", "taiwanese", "mongolian", "tibetan",
	"nepalese", "pakistani", "bangladeshi", "sri-lankan", "afghan", "persian",
	"turkish", "lebanese", "israeli", "moroccan", "ethiopian", "nigerian",
	"caribbean", "jamaican", "cuban", "puerto-rican", "dominican", "haitian",
	"brazilian", "argentinian", "peruvian", "chilean", "colombian",
	"venezuelan", "ecuadorian", "salvadoran", "guatemalan", "tex-mex",
	"southwestern", "cajun", "creole", "southern", "soul-food", "hawaiian",
	"polynesian", "filipino", "indonesian", "malaysian", "singaporean",
	"burmese", "laotian", "cambodian", "german", "austrian", "swiss",
	"belgian", "dutch", "scandinavian", "swedish", "norwegian", "danish",
	"finnish", "russian", "ukrainian", "polish", "czech", "hungarian",
	"romanian", "bulgarian", "serbian", "croatian", "bosnian", "albanian",
	"portuguese", "basque", "sicilian", "tuscan", "neapolitan", "roman",
	"venetian", "fusion", "gastropub", "pub", "sports-bar", "wine-bar",
	"buffet", "fast-food", "food-truck", "ice-cream", "frozen-yogurt",
	"smoothies", "juice",
}

// RealLikeConfig controls the Factual-like surrogate generator.
type RealLikeConfig struct {
	Hotels      int // data objects, default 25,000 (≈ the paper's 25K)
	Restaurants int // feature objects, default 79,000 (≈ the paper's 79K)
	// FeatureSets splits the restaurants into this many feature sets
	// (default 1, the paper's hotels-and-restaurants shape; use 2 to add
	// a coffeehouse-style second set as in the running example).
	FeatureSets int
	Seed        int64
}

// withDefaults fills zero values.
func (c RealLikeConfig) withDefaults() RealLikeConfig {
	if c.Hotels == 0 {
		c.Hotels = 25_000
	}
	if c.Restaurants == 0 {
		c.Restaurants = 79_000
	}
	if c.FeatureSets == 0 {
		c.FeatureSets = 1
	}
	return c
}

// stateCluster is one of the 13 anisotropic "state" clusters of the
// surrogate: a center, per-axis spreads and a population weight.
type stateCluster struct {
	center geo.Point
	sx, sy float64
	weight float64
}

// RealLike generates the real-dataset surrogate: hotels and restaurants
// concentrated in 13 large state-shaped clusters (the paper's data covers
// 13 US states and, unlike the synthetic data's 10,000 micro-clusters,
// forms "just a few clusters", which the paper credits for the real
// dataset's higher query cost). Restaurant ratings are drawn from a
// review-like distribution and each restaurant carries 1–3 cuisine
// keywords with Zipf-skewed popularity.
func RealLike(cfg RealLikeConfig) *Dataset {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	states := make([]stateCluster, 13)
	totalW := 0.0
	for i := range states {
		states[i] = stateCluster{
			center: geo.Point{X: 0.1 + 0.8*rng.Float64(), Y: 0.1 + 0.8*rng.Float64()},
			sx:     0.02 + 0.05*rng.Float64(),
			sy:     0.02 + 0.05*rng.Float64(),
			weight: 0.3 + rng.Float64(),
		}
		totalW += states[i].weight
	}
	drawState := func() stateCluster {
		u := rng.Float64() * totalW
		for _, s := range states {
			if u -= s.weight; u <= 0 {
				return s
			}
		}
		return states[len(states)-1]
	}
	drawPoint := func() geo.Point {
		s := drawState()
		return geo.Point{
			X: clamp01(s.center.X + s.sx*rng.NormFloat64()),
			Y: clamp01(s.center.Y + s.sy*rng.NormFloat64()),
		}
	}

	vocabW := len(Cuisines)
	ds := &Dataset{VocabWidth: vocabW}
	ds.Objects = make([]index.Object, cfg.Hotels)
	for i := range ds.Objects {
		ds.Objects[i] = index.Object{ID: int64(i), Location: drawPoint()}
	}

	// Zipf-skewed cuisine popularity (s=1.1): "pizza" and "american" style
	// staples dominate, mirroring real cuisine tags.
	zipf := rand.NewZipf(rng, 1.1, 1, uint64(vocabW-1))

	ds.FeatureSets = make([][]index.Feature, cfg.FeatureSets)
	ds.keywordCDF = make([][]float64, cfg.FeatureSets)
	perSet := cfg.Restaurants / cfg.FeatureSets
	for s := range ds.FeatureSets {
		n := perSet
		if s == cfg.FeatureSets-1 {
			n = cfg.Restaurants - perSet*(cfg.FeatureSets-1)
		}
		counts := make([]float64, vocabW)
		feats := make([]index.Feature, n)
		for i := range feats {
			kw := kwset.NewSet(vocabW)
			for j := 0; j < 1+rng.Intn(3); j++ {
				id := int(zipf.Uint64())
				kw.Add(id)
				counts[id]++
			}
			feats[i] = index.Feature{
				ID:       int64(i),
				Location: drawPoint(),
				Score:    rating(rng),
				Keywords: kw,
			}
		}
		ds.FeatureSets[s] = feats
		ds.keywordCDF[s] = cumulate(counts)
	}
	return ds
}

// rating draws a review-like quality score: most venues cluster between
// 0.5 and 0.9 with a tail of poor and perfect ratings, quantized to tenths
// like star ratings.
func rating(rng *rand.Rand) float64 {
	r := clamp01(0.7 + 0.18*rng.NormFloat64())
	return float64(int(r*10+0.5)) / 10
}

// CuisineVocabulary returns a vocabulary pre-loaded with the cuisine
// keywords in id order, for callers that need to translate cuisine ids
// back to strings.
func CuisineVocabulary() *kwset.Vocabulary {
	return kwset.VocabularyOf(Cuisines...)
}
