package datagen

import (
	"math/rand"

	"stpq/internal/geo"
	"stpq/internal/index"
	"stpq/internal/kwset"
)

// Regionalize derives a dataset with spatial-textual correlation: a G×G
// grid tiles the unit square, the vocabulary splits into G² contiguous
// slices, and every feature redraws its keywords from the slice of its
// grid cell (locations, scores and the data objects are untouched).
//
// The base synthetic generator draws keywords uniformly — every region is
// textually identical, so a textual bound can never separate one region
// from another. Real POI data is the opposite: keywords concentrate
// where their businesses do. Regionalized workloads reproduce that
// shape, which is what lets a sharded engine prune shards whose region
// cannot contain the queried keywords.
func (d *Dataset) Regionalize(grid int, seed int64) *Dataset {
	if grid < 1 {
		grid = 1
	}
	rng := rand.New(rand.NewSource(seed))
	cells := grid * grid
	out := &Dataset{
		Objects:     d.Objects,
		VocabWidth:  d.VocabWidth,
		FeatureSets: make([][]index.Feature, len(d.FeatureSets)),
		keywordCDF:  make([][]float64, len(d.FeatureSets)),
	}
	cellOf := func(p geo.Point) int {
		ix := int(p.X * float64(grid))
		if ix >= grid {
			ix = grid - 1
		}
		iy := int(p.Y * float64(grid))
		if iy >= grid {
			iy = grid - 1
		}
		return iy*grid + ix
	}
	for s, feats := range d.FeatureSets {
		counts := make([]float64, d.VocabWidth)
		nf := make([]index.Feature, len(feats))
		for i, f := range feats {
			c := cellOf(f.Location)
			lo := c * d.VocabWidth / cells
			hi := (c + 1) * d.VocabWidth / cells
			if hi <= lo {
				// More cells than keywords: neighboring cells share a word.
				lo = c % d.VocabWidth
				hi = lo + 1
			}
			n := f.Keywords.Count()
			if n < 1 {
				n = 1
			}
			kw := kwset.NewSet(d.VocabWidth)
			for j := 0; j < n; j++ {
				id := lo + rng.Intn(hi-lo)
				kw.Add(id)
				counts[id]++
			}
			nf[i] = index.Feature{ID: f.ID, Location: f.Location, Score: f.Score, Keywords: kw}
		}
		out.FeatureSets[s] = nf
		out.keywordCDF[s] = cumulate(counts)
	}
	return out
}
