package datagen

import (
	"math"
	"testing"

	"stpq/internal/core"
)

func TestSyntheticDefaults(t *testing.T) {
	ds := Synthetic(SyntheticConfig{Objects: 5000, FeaturesPerSet: 4000, Clusters: 100, Vocab: 64})
	if len(ds.Objects) != 5000 {
		t.Fatalf("objects = %d", len(ds.Objects))
	}
	if len(ds.FeatureSets) != 2 {
		t.Fatalf("feature sets = %d", len(ds.FeatureSets))
	}
	for _, fs := range ds.FeatureSets {
		if len(fs) != 4000 {
			t.Fatalf("features = %d", len(fs))
		}
		for _, f := range fs {
			if f.Score < 0 || f.Score > 1 {
				t.Fatalf("score %v out of range", f.Score)
			}
			if f.Keywords.Count() < 1 || f.Keywords.Count() > 3 {
				t.Fatalf("keyword count %d", f.Keywords.Count())
			}
			if f.Location.X < 0 || f.Location.X > 1 || f.Location.Y < 0 || f.Location.Y > 1 {
				t.Fatalf("location %v out of unit square", f.Location)
			}
		}
	}
	if ds.VocabWidth != 64 {
		t.Fatalf("vocab = %d", ds.VocabWidth)
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(SyntheticConfig{Objects: 500, FeaturesPerSet: 500, Clusters: 50, Vocab: 32, Seed: 7})
	b := Synthetic(SyntheticConfig{Objects: 500, FeaturesPerSet: 500, Clusters: 50, Vocab: 32, Seed: 7})
	for i := range a.Objects {
		if a.Objects[i].Location != b.Objects[i].Location {
			t.Fatal("same seed must give same objects")
		}
	}
	for s := range a.FeatureSets {
		for i := range a.FeatureSets[s] {
			fa, fb := a.FeatureSets[s][i], b.FeatureSets[s][i]
			if fa.Location != fb.Location || fa.Score != fb.Score || !fa.Keywords.Equal(fb.Keywords) {
				t.Fatal("same seed must give same features")
			}
		}
	}
	c := Synthetic(SyntheticConfig{Objects: 500, FeaturesPerSet: 500, Clusters: 50, Vocab: 32, Seed: 8})
	same := true
	for i := range a.Objects {
		if a.Objects[i].Location != c.Objects[i].Location {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

// The synthetic data must actually be clustered: average nearest-cluster
// spread is tiny, so the mean distance of consecutive points drawn from
// the same generator is far below the uniform expectation (~0.52).
func TestSyntheticIsClustered(t *testing.T) {
	ds := Synthetic(SyntheticConfig{Objects: 4000, FeaturesPerSet: 10, Clusters: 40, Vocab: 8, Seed: 3})
	// Count objects within 0.01 of each cluster-mate. With 40 clusters
	// over 4000 points, each point should have ~dozens of near neighbors;
	// uniform data would have ~4000·π·0.0001 ≈ 1.3.
	sample := ds.Objects[:200]
	near := 0
	for _, o := range sample {
		for _, p := range ds.Objects {
			if o.ID != p.ID && o.Location.Dist(p.Location) < 0.01 {
				near++
			}
		}
	}
	avg := float64(near) / float64(len(sample))
	if avg < 10 {
		t.Errorf("data does not look clustered: avg near neighbors %v", avg)
	}
}

func TestRealLikeShape(t *testing.T) {
	ds := RealLike(RealLikeConfig{Hotels: 2500, Restaurants: 7900, Seed: 1})
	if len(ds.Objects) != 2500 {
		t.Fatalf("hotels = %d", len(ds.Objects))
	}
	if len(ds.FeatureSets) != 1 || len(ds.FeatureSets[0]) != 7900 {
		t.Fatalf("restaurants shape wrong")
	}
	if ds.VocabWidth != len(Cuisines) {
		t.Fatalf("vocab = %d, want %d", ds.VocabWidth, len(Cuisines))
	}
	// Ratings quantized to tenths in [0,1].
	for _, f := range ds.FeatureSets[0] {
		if f.Score < 0 || f.Score > 1 {
			t.Fatalf("rating %v", f.Score)
		}
		if math.Abs(f.Score*10-math.Round(f.Score*10)) > 1e-9 {
			t.Fatalf("rating %v not quantized", f.Score)
		}
	}
}

func TestRealLikeTwoFeatureSets(t *testing.T) {
	ds := RealLike(RealLikeConfig{Hotels: 1000, Restaurants: 5000, FeatureSets: 2, Seed: 2})
	if len(ds.FeatureSets) != 2 {
		t.Fatalf("sets = %d", len(ds.FeatureSets))
	}
	if len(ds.FeatureSets[0])+len(ds.FeatureSets[1]) != 5000 {
		t.Fatal("restaurants not partitioned")
	}
}

// Real-like data must form few large clusters: the fraction of points
// within 0.1 of a randomly chosen point should be much higher than for
// uniform data.
func TestRealLikeFewClusters(t *testing.T) {
	ds := RealLike(RealLikeConfig{Hotels: 3000, Restaurants: 100, Seed: 4})
	center := ds.Objects[0].Location
	near := 0
	for _, o := range ds.Objects {
		if o.Location.Dist(center) < 0.1 {
			near++
		}
	}
	frac := float64(near) / float64(len(ds.Objects))
	if frac < 0.03 { // uniform would give ~π·0.01 ≈ 3%; clustered should exceed it
		t.Errorf("fraction near cluster %v looks uniform", frac)
	}
}

// Zipf skew: the most popular cuisine must appear much more often than the
// median one.
func TestRealLikeKeywordSkew(t *testing.T) {
	ds := RealLike(RealLikeConfig{Hotels: 10, Restaurants: 20000, Seed: 5})
	counts := make([]int, ds.VocabWidth)
	for _, f := range ds.FeatureSets[0] {
		f.Keywords.ForEach(func(id int) { counts[id]++ })
	}
	max, sum := 0, 0
	for _, c := range counts {
		if c > max {
			max = c
		}
		sum += c
	}
	if float64(max) < 0.1*float64(sum) {
		t.Errorf("keyword distribution not skewed: max %d of %d", max, sum)
	}
}

func TestGenQueriesDefaults(t *testing.T) {
	ds := Synthetic(SyntheticConfig{Objects: 100, FeaturesPerSet: 1000, Clusters: 20, Vocab: 64, Seed: 6})
	qs := ds.GenQueries(50, QueryConfig{})
	if len(qs) != 50 {
		t.Fatalf("queries = %d", len(qs))
	}
	for _, q := range qs {
		if q.K != 10 || q.Radius != 0.01 || q.Lambda != 0.5 {
			t.Fatalf("defaults wrong: %+v", q)
		}
		if len(q.Keywords) != 2 {
			t.Fatalf("keyword sets = %d", len(q.Keywords))
		}
		for _, kws := range q.Keywords {
			if kws.Count() != 3 {
				t.Fatalf("queried keywords = %d, want 3", kws.Count())
			}
		}
	}
}

func TestGenQueriesFollowDistribution(t *testing.T) {
	// Feature keywords concentrated on ids 0..7; queries must stay there.
	ds := Synthetic(SyntheticConfig{Objects: 10, FeaturesPerSet: 2000, Clusters: 5, Vocab: 8, Seed: 9})
	// Widen the vocabulary without adding any data keywords beyond 8.
	ds.VocabWidth = 64
	qs := ds.GenQueries(100, QueryConfig{NumKeywords: 2, Seed: 10})
	for _, q := range qs {
		for _, kws := range q.Keywords {
			kws.ForEach(func(id int) {
				if id >= 8 {
					t.Fatalf("query keyword %d outside data distribution", id)
				}
			})
		}
	}
}

func TestGenQueriesVariant(t *testing.T) {
	ds := Synthetic(SyntheticConfig{Objects: 10, FeaturesPerSet: 100, Clusters: 5, Vocab: 16, Seed: 11})
	qs := ds.GenQueries(5, QueryConfig{Variant: core.InfluenceScore, K: 7, Radius: 0.02, Lambda: 0.3, NumKeywords: 1})
	for _, q := range qs {
		if q.Variant != core.InfluenceScore || q.K != 7 {
			t.Fatalf("config not applied: %+v", q)
		}
	}
}

func TestCuisineVocabulary(t *testing.T) {
	v := CuisineVocabulary()
	if v.Size() != len(Cuisines) {
		t.Fatalf("vocabulary size %d, want %d (duplicate cuisine entries?)", v.Size(), len(Cuisines))
	}
	if v.Lookup("pizza") < 0 {
		t.Fatal("pizza missing")
	}
}

func TestRatingDistribution(t *testing.T) {
	ds := RealLike(RealLikeConfig{Hotels: 10, Restaurants: 10000, Seed: 12})
	sum := 0.0
	for _, f := range ds.FeatureSets[0] {
		sum += f.Score
	}
	mean := sum / float64(len(ds.FeatureSets[0]))
	if mean < 0.55 || mean > 0.85 {
		t.Errorf("mean rating %v outside review-like range", mean)
	}
}
