// Package datagen generates the evaluation datasets of the paper
// (Section 8.1): synthetic clustered datasets of configurable cardinality,
// vocabulary size and feature-set count, and a surrogate of the real
// Factual.com dataset (hotels and restaurants over 13 US states with ~130
// cuisine keywords), plus query workloads that follow the data
// distribution.
//
// All generators are deterministic given a seed, so experiments are
// reproducible run-to-run.
package datagen

import (
	"math"
	"math/rand"

	"stpq/internal/geo"
	"stpq/internal/index"
	"stpq/internal/kwset"
)

// Dataset is a generated world: data objects plus c feature sets over a
// shared vocabulary.
type Dataset struct {
	Objects     []index.Object
	FeatureSets [][]index.Feature
	VocabWidth  int
	// keywordCDF holds, per feature set, the cumulative keyword frequency
	// used to draw query keywords from the data distribution.
	keywordCDF [][]float64
}

// SyntheticConfig controls the synthetic clustered generator. Zero values
// take the paper's defaults (Table 2 bold entries).
type SyntheticConfig struct {
	Objects        int // |O|, default 100,000
	FeaturesPerSet int // |F_i|, default 100,000
	FeatureSets    int // c, default 2
	Vocab          int // distinct keywords, default 256
	Clusters       int // default 10,000
	MinKeywords    int // per feature, default 1
	MaxKeywords    int // per feature, default 3
	Seed           int64
}

// withDefaults fills zero values with the paper's defaults.
func (c SyntheticConfig) withDefaults() SyntheticConfig {
	if c.Objects == 0 {
		c.Objects = 100_000
	}
	if c.FeaturesPerSet == 0 {
		c.FeaturesPerSet = 100_000
	}
	if c.FeatureSets == 0 {
		c.FeatureSets = 2
	}
	if c.Vocab == 0 {
		c.Vocab = 256
	}
	if c.Clusters == 0 {
		c.Clusters = 10_000
	}
	if c.MinKeywords == 0 {
		c.MinKeywords = 1
	}
	if c.MaxKeywords < c.MinKeywords {
		c.MaxKeywords = c.MinKeywords + 2
	}
	return c
}

// Synthetic generates a clustered dataset: cluster centers are uniform in
// the unit square and points scatter around them with a small Gaussian
// spread, keywords are drawn uniformly from the vocabulary (as in the
// paper), and non-spatial scores are uniform in [0,1].
func Synthetic(cfg SyntheticConfig) *Dataset {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	centers := make([]geo.Point, cfg.Clusters)
	for i := range centers {
		centers[i] = geo.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	const spread = 0.003 // cluster radius; 10k clusters tile the square finely
	drawPoint := func() geo.Point {
		c := centers[rng.Intn(len(centers))]
		return geo.Point{
			X: clamp01(c.X + spread*rng.NormFloat64()),
			Y: clamp01(c.Y + spread*rng.NormFloat64()),
		}
	}
	ds := &Dataset{VocabWidth: cfg.Vocab}
	ds.Objects = make([]index.Object, cfg.Objects)
	for i := range ds.Objects {
		ds.Objects[i] = index.Object{ID: int64(i), Location: drawPoint()}
	}
	ds.FeatureSets = make([][]index.Feature, cfg.FeatureSets)
	ds.keywordCDF = make([][]float64, cfg.FeatureSets)
	for s := range ds.FeatureSets {
		counts := make([]float64, cfg.Vocab)
		feats := make([]index.Feature, cfg.FeaturesPerSet)
		for i := range feats {
			kw := kwset.NewSet(cfg.Vocab)
			n := cfg.MinKeywords + rng.Intn(cfg.MaxKeywords-cfg.MinKeywords+1)
			for j := 0; j < n; j++ {
				id := rng.Intn(cfg.Vocab)
				kw.Add(id)
				counts[id]++
			}
			feats[i] = index.Feature{
				ID:       int64(i),
				Location: drawPoint(),
				Score:    rng.Float64(),
				Keywords: kw,
			}
		}
		ds.FeatureSets[s] = feats
		ds.keywordCDF[s] = cumulate(counts)
	}
	return ds
}

// clamp01 clips v into [0,1].
func clamp01(v float64) float64 { return math.Min(1, math.Max(0, v)) }

// cumulate converts counts into a normalized CDF.
func cumulate(counts []float64) []float64 {
	cdf := make([]float64, len(counts))
	total := 0.0
	for i, c := range counts {
		total += c
		cdf[i] = total
	}
	if total > 0 {
		for i := range cdf {
			cdf[i] /= total
		}
	}
	return cdf
}

// drawFromCDF samples a keyword id from the cumulative distribution.
func drawFromCDF(rng *rand.Rand, cdf []float64) int {
	u := rng.Float64()
	lo, hi := 0, len(cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
