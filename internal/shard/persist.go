package shard

// persist.go makes sharded engines durable: Save dumps every sub-engine
// object index and every feature part as page files plus a JSON manifest
// carrying the partitioning (Hilbert boundary keys or grid geometry) and
// per-shard metadata; Open reverses it. The partitioning round-trips
// exactly — it is pure data (see partition.go) — so an opened engine
// assigns any future point to the same cell as the engine that saved it.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"

	"stpq/internal/core"
	"stpq/internal/geo"
	"stpq/internal/index"
)

// ManifestName is the sharded-engine manifest file inside the save
// directory, distinct from the top-level DB manifest.
const ManifestName = "shards.json"

// shardMeta describes one persisted sub-engine.
type shardMeta struct {
	Cell    int        `json:"cell"`
	Count   int        `json:"count"`
	Rect    geo.Rect   `json:"rect"`
	Objects index.Meta `json:"objects"`
}

// manifest is the on-disk description of a sharded engine. The partition
// section is the exported PartitionMeta (partition.go), shared with the
// cluster partition map so both speak the same JSON.
type manifest struct {
	Version   int           `json:"version"`
	Total     int           `json:"total"`
	Partition PartitionMeta `json:"partition"`
	Shards    []shardMeta   `json:"shards"`
	// Features holds one meta per part, per feature set, in group order.
	Features [][]index.Meta `json:"features"`
}

// Save writes the engine into dir (created if needed): one page dump per
// sub-engine object index (objects_shardNN.pages), one per feature part
// (features_S_partNN.pages), and the shard manifest.
func (e *Engine) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("shard: save: %w", err)
	}
	man := manifest{
		Version:   1,
		Total:     e.total,
		Partition: e.part.meta(),
	}
	for _, s := range e.shards {
		meta, err := dumpIndex(filepath.Join(dir, fmt.Sprintf("objects_shard%02d.pages", s.id)), s.eng.Objects().Save)
		if err != nil {
			return err
		}
		man.Shards = append(man.Shards, shardMeta{Cell: s.cell, Count: s.count, Rect: s.rect, Objects: meta})
	}
	for i, g := range e.groups {
		metas := make([]index.Meta, len(g.Parts()))
		for j, p := range g.Parts() {
			meta, err := dumpIndex(filepath.Join(dir, fmt.Sprintf("features_%d_part%02d.pages", i, j)), p.Save)
			if err != nil {
				return err
			}
			metas[j] = meta
		}
		man.Features = append(man.Features, metas)
	}
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("shard: save manifest: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestName), data, 0o644); err != nil {
		return fmt.Errorf("shard: save manifest: %w", err)
	}
	return nil
}

// Open loads an engine previously written by Save. opts supplies the
// runtime knobs (parallelism, core options, metrics); the structural
// options (partitioning, index geometry) come from the manifest and page
// dumps.
func Open(dir string, opts Options) (*Engine, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("shard: open: %w", err)
	}
	var man manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("shard: open manifest: %w", err)
	}
	if man.Version != 1 {
		return nil, fmt.Errorf("shard: unsupported shard manifest version %d", man.Version)
	}
	if len(man.Shards) == 0 {
		return nil, errors.New("shard: manifest has no shards")
	}
	buffer := opts.Index.BufferPages

	groups := make([]*index.FeatureGroup, len(man.Features))
	for i, metas := range man.Features {
		parts := make([]*index.FeatureIndex, len(metas))
		for j, meta := range metas {
			parts[j], err = loadIndex(filepath.Join(dir, fmt.Sprintf("features_%d_part%02d.pages", i, j)), meta, buffer, index.OpenFeatureIndex)
			if err != nil {
				return nil, err
			}
		}
		g, err := index.NewFeatureGroup(parts...)
		if err != nil {
			return nil, err
		}
		groups[i] = g
	}

	coreOpts := opts.Core
	coreOpts.Metrics = nil // the sharded engine observes the merged query
	e := &Engine{
		groups: groups,
		total:  man.Total,
		opts:   opts,
		part:   man.Partition.runtime(),
		trace:  &atomic.Bool{},
	}
	e.trace.Store(coreOpts.Trace)
	if opts.Metrics != nil {
		e.fanout = opts.Metrics.Counter("stpq_shard_fanout_total")
		e.pruned = opts.Metrics.Counter("stpq_shard_pruned_total")
	}
	for id, sm := range man.Shards {
		oidx, err := loadIndex(filepath.Join(dir, fmt.Sprintf("objects_shard%02d.pages", id)), sm.Objects, buffer, index.OpenObjectIndex)
		if err != nil {
			return nil, err
		}
		sub, err := core.NewEngineWithGroups(oidx, groups, coreOpts)
		if err != nil {
			return nil, err
		}
		if opts.Metrics != nil {
			oidx.AttachMetrics(opts.Metrics, fmt.Sprintf("objects_shard%02d", id))
		}
		e.shards = append(e.shards, &subShard{id: id, cell: sm.Cell, eng: sub, rect: sm.Rect, count: sm.Count})
	}
	return e, nil
}

// dumpIndex writes one index's pages to a file.
func dumpIndex(path string, dump func(w io.Writer) (index.Meta, error)) (index.Meta, error) {
	f, err := os.Create(path)
	if err != nil {
		return index.Meta{}, fmt.Errorf("shard: save %s: %w", path, err)
	}
	meta, err := dump(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return index.Meta{}, fmt.Errorf("shard: save %s: %w", path, err)
	}
	return meta, nil
}

// loadIndex reads one index dump back.
func loadIndex[T any](path string, meta index.Meta, buffer int, open func(r io.Reader, meta index.Meta, buffer int) (T, error)) (T, error) {
	var zero T
	f, err := os.Open(path)
	if err != nil {
		return zero, fmt.Errorf("shard: open %s: %w", path, err)
	}
	defer f.Close()
	idx, err := open(f, meta, buffer)
	if err != nil {
		return zero, fmt.Errorf("shard: open %s: %w", path, err)
	}
	return idx, nil
}
