package shard

import (
	"math"
	"testing"

	"stpq/internal/core"
	"stpq/internal/datagen"
	"stpq/internal/index"
	"stpq/internal/obs"
)

// testData generates a small clustered world shared by the tests.
func testData(seed int64) *datagen.Dataset {
	return datagen.Synthetic(datagen.SyntheticConfig{
		Objects:        500,
		FeaturesPerSet: 400,
		FeatureSets:    2,
		Vocab:          48,
		Clusters:       40,
		Seed:           seed,
	})
}

func buildUnsharded(t *testing.T, ds *datagen.Dataset, kind index.Kind) *core.Engine {
	t.Helper()
	iopts := index.Options{Kind: kind, VocabWidth: ds.VocabWidth, PageSize: 1024}
	oidx, err := index.BuildObjectIndex(ds.Objects, iopts)
	if err != nil {
		t.Fatal(err)
	}
	fidxs := make([]*index.FeatureIndex, len(ds.FeatureSets))
	for i, fs := range ds.FeatureSets {
		fidxs[i], err = index.BuildFeatureIndex(fs, iopts)
		if err != nil {
			t.Fatal(err)
		}
	}
	eng, err := core.NewEngine(oidx, fidxs, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func buildSharded(t *testing.T, ds *datagen.Dataset, kind index.Kind, opts Options) *Engine {
	t.Helper()
	opts.Index = index.Options{Kind: kind, VocabWidth: ds.VocabWidth, PageSize: 1024}
	eng, err := New(ds.Objects, ds.FeatureSets, opts)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func testQueries(ds *datagen.Dataset, variant core.Variant, seed int64) []core.Query {
	return ds.GenQueries(4, datagen.QueryConfig{
		K: 10, Radius: 0.05, Lambda: 0.5, NumKeywords: 2, Variant: variant, Seed: seed,
	})
}

// TestPartitioningAssignsInRange checks both strategies map every object
// and feature into a valid cell and that the Hilbert split is balanced.
func TestPartitioningAssignsInRange(t *testing.T) {
	ds := testData(42)
	for _, strategy := range []Strategy{HilbertRuns, FixedGrid} {
		for _, shards := range []int{2, 3, 4, 8} {
			part, err := buildPartitioning(ds.Objects, shards, strategy)
			if err != nil {
				t.Fatal(err)
			}
			if part.cells != shards {
				t.Fatalf("%v/%d: cells %d", strategy, shards, part.cells)
			}
			counts := make([]int, shards)
			for _, o := range ds.Objects {
				c := part.assign(o.Location)
				if c < 0 || c >= shards {
					t.Fatalf("%v/%d: cell %d out of range", strategy, shards, c)
				}
				counts[c]++
			}
			for _, fs := range ds.FeatureSets {
				for _, f := range fs {
					if c := part.assign(f.Location); c < 0 || c >= shards {
						t.Fatalf("%v/%d: feature cell %d out of range", strategy, shards, c)
					}
				}
			}
			if strategy == HilbertRuns {
				want := len(ds.Objects) / shards
				for c, n := range counts {
					if n < want/2 || n > want*2 {
						t.Errorf("hilbert/%d: cell %d holds %d objects, want ≈%d", shards, c, n, want)
					}
				}
			}
		}
	}
}

func TestNewValidation(t *testing.T) {
	ds := testData(43)
	iopts := index.Options{VocabWidth: ds.VocabWidth, PageSize: 1024}
	if _, err := New(ds.Objects, ds.FeatureSets, Options{Shards: 1, Index: iopts}); err == nil {
		t.Fatal("Shards=1 must be rejected")
	}
	if _, err := New(nil, ds.FeatureSets, Options{Shards: 2, Index: iopts}); err == nil {
		t.Fatal("empty objects must be rejected")
	}
	if _, err := New(ds.Objects, nil, Options{Shards: 2, Index: iopts}); err == nil {
		t.Fatal("empty feature sets must be rejected")
	}
	if _, err := New(ds.Objects, ds.FeatureSets, Options{Shards: 2, Strategy: Strategy(99), Index: iopts}); err == nil {
		t.Fatal("unknown strategy must be rejected")
	}
}

// TestShardedMatchesUnsharded is the core equivalence guarantee: for both
// index kinds, all three variants, both algorithms and several shard
// counts, the sharded engine returns byte-identical results — same scores
// AND same tie-break order — as the single engine.
func TestShardedMatchesUnsharded(t *testing.T) {
	ds := testData(44)
	for _, kind := range []index.Kind{index.IR2, index.SRT} {
		single := buildUnsharded(t, ds, kind)
		for _, shards := range []int{2, 4, 8} {
			strategy := HilbertRuns
			if shards == 4 {
				strategy = FixedGrid
			}
			sharded := buildSharded(t, ds, kind, Options{Shards: shards, Strategy: strategy, Parallelism: 2})
			for _, variant := range []core.Variant{core.RangeScore, core.InfluenceScore, core.NearestNeighborScore} {
				for qi, q := range testQueries(ds, variant, 100+int64(shards)) {
					want, _, err := single.STDS(q)
					if err != nil {
						t.Fatal(err)
					}
					for _, alg := range []string{"stds", "stps"} {
						var got []core.Result
						if alg == "stds" {
							got, _, err = sharded.STDS(q)
						} else {
							got, _, err = sharded.STPS(q)
						}
						if err != nil {
							t.Fatalf("%v/%d/%s/%v q%d: %v", kind, shards, alg, variant, qi, err)
						}
						if len(got) != len(want) {
							t.Fatalf("%v/%d/%s/%v q%d: %d results, want %d",
								kind, shards, alg, variant, qi, len(got), len(want))
						}
						for i := range want {
							if got[i].ID != want[i].ID || got[i].Score != want[i].Score {
								t.Fatalf("%v/%d/%s/%v q%d rank %d: got (%d, %v) want (%d, %v)",
									kind, shards, alg, variant, qi, i,
									got[i].ID, got[i].Score, want[i].ID, want[i].Score)
							}
						}
					}
				}
			}
		}
	}
}

// TestUpperBoundIsSound: no result produced by a shard may exceed the
// bound the gather phase ordered it by.
func TestUpperBoundIsSound(t *testing.T) {
	ds := testData(45)
	sharded := buildSharded(t, ds, index.IR2, Options{Shards: 4})
	for _, variant := range []core.Variant{core.RangeScore, core.InfluenceScore, core.NearestNeighborScore} {
		for _, q := range testQueries(ds, variant, 200) {
			for _, sub := range sharded.shards {
				bound, err := sub.eng.UpperBound(q, sub.rect)
				if err != nil {
					t.Fatal(err)
				}
				res, _, err := sub.eng.STDS(q)
				if err != nil {
					t.Fatal(err)
				}
				for _, r := range res {
					if r.Score > bound+1e-9 {
						t.Fatalf("%v shard %d: score %v exceeds bound %v", variant, sub.id, r.Score, bound)
					}
				}
			}
		}
	}
}

// TestShardMetricsAndTrace checks the scatter counters and the merged span
// tree.
func TestShardMetricsAndTrace(t *testing.T) {
	ds := testData(46)
	reg := obs.NewRegistry()
	sharded := buildSharded(t, ds, index.IR2, Options{Shards: 4, Metrics: reg})
	sharded.SetTrace(true)
	q := testQueries(ds, core.RangeScore, 300)[0]
	_, st, err := sharded.STDS(q)
	if err != nil {
		t.Fatal(err)
	}
	fan := reg.Counter("stpq_shard_fanout_total").Value()
	pruned := reg.Counter("stpq_shard_pruned_total").Value()
	if fan+pruned != int64(sharded.NumShards()) {
		t.Fatalf("fanout %d + pruned %d != shards %d", fan, pruned, sharded.NumShards())
	}
	if fan < 1 {
		t.Fatal("at least one shard must be queried")
	}
	if st.Trace == nil {
		t.Fatal("trace missing with tracing on")
	}
	if st.Trace.Counters["shards_fanout"] != fan {
		t.Fatalf("trace fanout %d, counter %d", st.Trace.Counters["shards_fanout"], fan)
	}
	if len(st.Trace.Children) != int(fan) {
		t.Fatalf("trace has %d shard spans, fanout %d", len(st.Trace.Children), fan)
	}
	for _, child := range st.Trace.Children {
		if len(child.Children) != 1 {
			t.Fatalf("shard span %s missing per-shard trace", child.Name)
		}
	}
	sharded.SetTrace(false)
	_, st, err = sharded.STDS(q)
	if err != nil {
		t.Fatal(err)
	}
	if st.Trace != nil {
		t.Fatal("trace present with tracing off")
	}
	if st.CPUTime <= 0 {
		t.Fatal("missing wall-clock CPU time")
	}
}

// TestExactScoreMatchesEngine: the sharded score oracle must agree with a
// full single-engine oracle at arbitrary locations.
func TestExactScoreMatchesEngine(t *testing.T) {
	ds := testData(47)
	single := buildUnsharded(t, ds, index.IR2)
	sharded := buildSharded(t, ds, index.IR2, Options{Shards: 3})
	for _, variant := range []core.Variant{core.RangeScore, core.InfluenceScore, core.NearestNeighborScore} {
		q := testQueries(ds, variant, 400)[0]
		for _, o := range ds.Objects[:25] {
			a, err := single.ExactScore(q, o.Location)
			if err != nil {
				t.Fatal(err)
			}
			b, err := sharded.ExactScore(q, o.Location)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(a-b) > 1e-12 {
				t.Fatalf("%v at %v: single %v sharded %v", variant, o.Location, a, b)
			}
		}
	}
}
