// Package shard implements the sharded query engine: a spatial partitioner
// slices the data objects into S cells, each cell becomes a self-contained
// sub-engine (its own object R-tree), and queries run scatter-gather — fan
// out to the shards whose region can still contribute, execute the
// per-shard top-k concurrently on session views, and merge under the
// result total order.
//
// The feature sets are sliced by the same partition function into per-cell
// index parts, but — crucially — every sub-engine sees the SAME feature
// groups spanning all parts (index.FeatureGroup). Per-shard scores are
// therefore exactly the global scores for all three variants: the range
// and influence traversals seed one bound heap with every part root, and
// the NN variant's distance ascent merges all parts, which is precisely
// the cross-border rule — a shard-local NN candidate is final only once
// its distance beats the mindist of every unvisited subtree of every
// neighboring part. Combined with the engine-wide total order on results
// (score descending, id ascending), the merged top-k is byte-identical to
// the single-engine answer.
package shard

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"stpq/internal/core"
	"stpq/internal/geo"
	"stpq/internal/index"
	"stpq/internal/obs"
)

// Options configures the sharded engine build.
type Options struct {
	// Shards is the partition count S (at least 2; use the plain engine
	// for S = 1).
	Shards int
	// Strategy selects the spatial partitioner (default HilbertRuns).
	Strategy Strategy
	// Parallelism bounds the number of shards queried concurrently per
	// query (default GOMAXPROCS). The gather loop runs wave-synchronous:
	// early termination is evaluated between waves, so smaller values
	// prune more aggressively at the cost of less overlap.
	Parallelism int
	// Index configures the per-cell object and feature indexes (vocabulary
	// width, page size, kind, ...), exactly as for an unsharded build.
	Index index.Options
	// Core configures the per-shard query engines. Core.Metrics is ignored
	// — sub-engines never observe queries; the sharded engine observes the
	// merged query once against Metrics below.
	Core core.Options
	// Metrics, when non-nil, receives the merged per-query metrics plus
	// the scatter counters stpq_shard_fanout_total / stpq_shard_pruned_total.
	Metrics *obs.Registry
	// Telemetry, when non-nil, receives one event record per merged query.
	// Core.Telemetry is ignored for the same reason as Core.Metrics: the
	// sub-engines must not file S events for one query.
	Telemetry *obs.Telemetry
}

// subShard is one self-contained sub-engine.
type subShard struct {
	id   int
	cell int
	eng  *core.Engine
	// rect is the MBR of the shard's data objects — the region the
	// per-shard upper bound is evaluated against.
	rect  geo.Rect
	count int
}

// Engine is the sharded query engine. It mirrors the public query surface
// of core.Engine (STDS, STPS, ExactScore, ...) and is safe for concurrent
// queries for the same reason: all per-query state lives in sessions.
type Engine struct {
	shards []*subShard
	groups []*index.FeatureGroup
	total  int
	opts   Options
	part   partitioning
	trace  *atomic.Bool
	// fanout and pruned count shards queried / skipped across all queries.
	fanout *obs.Counter
	pruned *obs.Counter
}

// New partitions the objects and features and builds the sub-engines.
// Cells that receive no objects produce no sub-engine (their features
// still become parts of the shared groups, so scores are unaffected).
func New(objects []index.Object, featureSets [][]index.Feature, opts Options) (*Engine, error) {
	if opts.Shards < 2 {
		return nil, fmt.Errorf("shard: shard count %d must be at least 2", opts.Shards)
	}
	if len(objects) == 0 {
		return nil, errors.New("shard: at least one data object required")
	}
	if len(featureSets) == 0 {
		return nil, errors.New("shard: at least one feature set required")
	}
	part, err := buildPartitioning(objects, opts.Shards, opts.Strategy)
	if err != nil {
		return nil, err
	}

	objCells := make([][]index.Object, part.cells)
	for _, o := range objects {
		c := part.assign(o.Location)
		objCells[c] = append(objCells[c], o)
	}

	groups := make([]*index.FeatureGroup, len(featureSets))
	for i, fs := range featureSets {
		featCells := make([][]index.Feature, part.cells)
		for _, f := range fs {
			c := part.assign(f.Location)
			featCells[c] = append(featCells[c], f)
		}
		var parts []*index.FeatureIndex
		for c := 0; c < part.cells; c++ {
			if len(featCells[c]) == 0 {
				continue
			}
			p, err := index.BuildFeatureIndex(featCells[c], opts.Index)
			if err != nil {
				return nil, fmt.Errorf("shard: feature set %d cell %d: %w", i, c, err)
			}
			parts = append(parts, p)
		}
		if len(parts) == 0 {
			// Empty feature set: one empty part, matching the unsharded
			// engine's single empty index.
			p, err := index.BuildFeatureIndex(nil, opts.Index)
			if err != nil {
				return nil, fmt.Errorf("shard: feature set %d: %w", i, err)
			}
			parts = append(parts, p)
		}
		g, err := index.NewFeatureGroup(parts...)
		if err != nil {
			return nil, err
		}
		groups[i] = g
	}

	coreOpts := opts.Core
	coreOpts.Metrics = nil // the sharded engine observes the merged query
	coreOpts.Telemetry = nil
	e := &Engine{groups: groups, total: len(objects), opts: opts, part: part, trace: &atomic.Bool{}}
	e.trace.Store(coreOpts.Trace)
	if opts.Metrics != nil {
		e.fanout = opts.Metrics.Counter("stpq_shard_fanout_total")
		e.pruned = opts.Metrics.Counter("stpq_shard_pruned_total")
	}
	for c := 0; c < part.cells; c++ {
		if len(objCells[c]) == 0 {
			continue
		}
		oidx, err := index.BuildObjectIndex(objCells[c], opts.Index)
		if err != nil {
			return nil, fmt.Errorf("shard: cell %d objects: %w", c, err)
		}
		sub, err := core.NewEngineWithGroups(oidx, groups, coreOpts)
		if err != nil {
			return nil, err
		}
		rect := geo.EmptyRect()
		for _, o := range objCells[c] {
			rect = rect.Extend(o.Location)
		}
		id := len(e.shards)
		if opts.Metrics != nil {
			oidx.AttachMetrics(opts.Metrics, fmt.Sprintf("objects_shard%02d", id))
		}
		e.shards = append(e.shards, &subShard{id: id, cell: c, eng: sub, rect: rect, count: len(objCells[c])})
	}
	return e, nil
}

// NumShards returns the number of built sub-engines (cells that received
// at least one object).
func (e *Engine) NumShards() int { return len(e.shards) }

// NumObjects returns the total number of indexed data objects.
func (e *Engine) NumObjects() int { return e.total }

// FeatureGroups returns the shared feature groups (one per feature set,
// one part per non-empty cell).
func (e *Engine) FeatureGroups() []*index.FeatureGroup { return e.groups }

// Options returns the build options.
func (e *Engine) Options() Options { return e.opts }

// SetTrace toggles per-query tracing on the sharded engine and every
// sub-engine.
func (e *Engine) SetTrace(on bool) {
	e.trace.Store(on)
	for _, s := range e.shards {
		s.eng.SetTrace(on)
	}
}

// ExactScore delegates to any sub-engine: the score oracle only reads the
// feature groups, which are global.
func (e *Engine) ExactScore(q core.Query, p geo.Point) (float64, error) {
	return e.shards[0].eng.ExactScore(q, p)
}

// PrecomputeVoronoiCells precomputes NN Voronoi cells on every sub-engine
// (requires core.Options.CacheVoronoiCells; each sub-engine holds its own
// cache, so the one-off cost scales with the shard count).
func (e *Engine) PrecomputeVoronoiCells() error {
	for _, s := range e.shards {
		if err := s.eng.PrecomputeVoronoiCells(); err != nil {
			return err
		}
	}
	return nil
}

// STDS answers the query with the data-scan algorithm on every contributing
// shard and merges.
func (e *Engine) STDS(q core.Query) ([]core.Result, core.Stats, error) {
	return e.run("stds", q)
}

// STPS answers the query with the preference-search algorithm on every
// contributing shard and merges.
func (e *Engine) STPS(q core.Query) ([]core.Result, core.Stats, error) {
	return e.run("stps", q)
}

// Parallelism resolves the effective per-query fan-out width (the wave
// size of the scatter loop).
func (e *Engine) Parallelism() int {
	if e.opts.Parallelism > 0 {
		return e.opts.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// cand is one shard with its per-query upper bound.
type cand struct {
	sub   *subShard
	bound float64
}

// orderShards computes every shard's upper bound for the query and sorts
// the scatter wave order: bound descending (required by the pruning rule —
// the loop terminates against the maximum remaining bound, which sorting
// makes the next candidate), then per-shard object count ascending as a
// cost-aware tie-break (equal-bound shards are interchangeable for
// pruning, so the cheaper one goes first and may render the heavier one
// prunable), then shard id. Only the bound-descending primary key affects
// results; the tie-breaks affect cost alone.
func (e *Engine) orderShards(q *core.Query) ([]cand, error) {
	cands := make([]cand, len(e.shards))
	for i, s := range e.shards {
		b, err := s.eng.UpperBound(*q, s.rect)
		if err != nil {
			return nil, err
		}
		cands[i] = cand{sub: s, bound: b}
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].bound != cands[j].bound {
			return cands[i].bound > cands[j].bound
		}
		if cands[i].sub.count != cands[j].sub.count {
			return cands[i].sub.count < cands[j].sub.count
		}
		return cands[i].sub.id < cands[j].sub.id
	})
	return cands, nil
}

// UpperBoundAll returns the engine-wide admissible upper bound for the
// query: the maximum per-shard bound. A cluster node serving a sharded DB
// reports it to the coordinator's scatter probe; no object can beat it
// because every object lives inside some shard's MBR.
func (e *Engine) UpperBoundAll(q core.Query) (float64, error) {
	if err := q.Validate(len(e.groups)); err != nil {
		return 0, err
	}
	best := 0.0
	for _, s := range e.shards {
		b, err := s.eng.UpperBound(q, s.rect)
		if err != nil {
			return 0, err
		}
		if b > best {
			best = b
		}
	}
	return best, nil
}

// PlanShard is one shard's entry in a query plan: its scatter position,
// upper bound, and the wave it would run in at the engine's parallelism.
type PlanShard struct {
	ID      int
	Objects int
	Wave    int
	Bound   float64
	Rect    geo.Rect
}

// Plan returns the scatter order the engine would use for the query: every
// shard with its upper bound, sorted by the wave ordering, annotated with
// the wave index at the current parallelism. It performs no object reads
// beyond the root-level bound evaluation and does not execute the query.
func (e *Engine) Plan(q core.Query) ([]PlanShard, error) {
	if err := q.Validate(len(e.groups)); err != nil {
		return nil, err
	}
	cands, err := e.orderShards(&q)
	if err != nil {
		return nil, err
	}
	par := e.Parallelism()
	plan := make([]PlanShard, len(cands))
	for i, c := range cands {
		plan[i] = PlanShard{
			ID:      c.sub.id,
			Objects: c.sub.count,
			Wave:    i / par,
			Bound:   c.bound,
			Rect:    c.sub.rect,
		}
	}
	return plan, nil
}

// shardOut is one shard's contribution to a query.
type shardOut struct {
	sub *subShard
	res []core.Result
	st  core.Stats
	err error
}

// run is the scatter-gather loop. Shards are ordered by their per-variant
// upper bound (descending, ties by shard id) and queried in waves of
// Parallelism; between waves the gather terminates as soon as the k-th
// merged score strictly exceeds the next (hence every) remaining shard's
// bound — a tie cannot be pruned because a skipped shard might hold an
// equal-scoring object with a smaller id. Unqueried shards count as
// pruned. The wave barrier makes the queried set — and so the fanout and
// pruned counters — deterministic for a given parallelism.
func (e *Engine) run(alg string, q core.Query) ([]core.Result, core.Stats, error) {
	if err := q.Validate(len(e.groups)); err != nil {
		return nil, core.Stats{}, err
	}
	start := time.Now()
	cands, err := e.orderShards(&q)
	if err != nil {
		return nil, core.Stats{}, err
	}

	// One trace decision for the whole scatter-gather, forced onto the
	// sub-queries so every shard collects (or skips) spans consistently.
	collect, keep := core.TraceDecision(q.Trace, e.trace.Load(), e.opts.Telemetry)
	sq := q
	if collect {
		sq.Trace = core.TraceOn
	} else {
		sq.Trace = core.TraceOff
	}

	// The planner may cap the wave width per query (core.Query.Fanout):
	// narrower waves evaluate the termination rule more often, wider ones
	// overlap more. The queried set changes, the merged results never do.
	par := e.Parallelism()
	if q.Fanout > 0 && q.Fanout < par {
		par = q.Fanout
	}
	var (
		merged  []core.Result
		total   core.Stats
		gotten  []shardOut
		queried int
	)
	for next := 0; next < len(cands); {
		if len(merged) >= q.K && merged[q.K-1].Score > cands[next].bound {
			break // every remaining shard is strictly out-scored
		}
		end := next + par
		if end > len(cands) {
			end = len(cands)
		}
		wave := make([]shardOut, end-next)
		var wg sync.WaitGroup
		for i := range wave {
			sub := cands[next+i].sub
			wave[i].sub = sub
			wg.Add(1)
			go func(out *shardOut) {
				defer wg.Done()
				if alg == "stds" {
					out.res, out.st, out.err = out.sub.eng.STDS(sq)
				} else {
					out.res, out.st, out.err = out.sub.eng.STPS(sq)
				}
			}(&wave[i])
		}
		wg.Wait()
		for i := range wave {
			if wave[i].err != nil {
				werr := fmt.Errorf("shard %d: %w", wave[i].sub.id, wave[i].err)
				total.CPUTime = time.Since(start)
				core.RecordQueryEvent(e.opts.Telemetry, alg, &q, &total, start, werr)
				return nil, core.Stats{}, werr
			}
			total.Add(wave[i].st)
			merged = mergeTopK(merged, wave[i].res, q.K)
		}
		gotten = append(gotten, wave...)
		queried += len(wave)
		next = end
	}
	pruned := len(cands) - queried

	// CPUTime is the wall clock of the whole scatter-gather (the summed
	// per-shard CPU is visible in the trace); all other counters are sums.
	total.CPUTime = time.Since(start)
	total.ShardFanout = queried
	total.ShardPruned = pruned
	if collect {
		total.Trace = e.assembleTrace(alg, &q, &total, gotten, queried, pruned)
		if keep {
			total.Trace.MarkKeep()
		}
	}
	if e.fanout != nil {
		e.fanout.Add(int64(queried))
		e.pruned.Add(int64(pruned))
	}
	core.ObserveQuery(e.opts.Metrics, alg, &q, &total)
	core.RecordQueryEvent(e.opts.Telemetry, alg, &q, &total, start, nil)
	return merged, total, nil
}

// mergeTopK folds one shard's sorted result list into the merged top-k
// under the result total order.
func mergeTopK(acc, more []core.Result, k int) []core.Result {
	acc = append(acc, more...)
	sort.Slice(acc, func(i, j int) bool { return core.ResultBefore(acc[i], acc[j]) })
	if len(acc) > k {
		acc = acc[:k]
	}
	return acc
}

// assembleTrace builds the merged span tree: one root covering the whole
// scatter-gather with a `shard.NN` child per queried shard (wrapping the
// shard's own span tree when sub-engine tracing produced one). Per-shard
// traces are created inside each shard's own query call, so no span is
// ever touched by two goroutines.
func (e *Engine) assembleTrace(alg string, q *core.Query, total *core.Stats, gotten []shardOut, queried, pruned int) *obs.Span {
	root := &obs.Span{
		Name:          alg + "." + q.Variant.String() + ".scatter",
		Count:         1,
		Duration:      total.CPUTime,
		LogicalReads:  total.LogicalReads,
		PhysicalReads: total.PhysicalReads,
		RequestID:     q.RequestID,
		Counters: map[string]int64{
			"shards_fanout": int64(queried),
			"shards_pruned": int64(pruned),
		},
	}
	for _, o := range gotten {
		wrap := &obs.Span{
			Name:          fmt.Sprintf("shard.%02d", o.sub.id),
			Count:         1,
			Duration:      o.st.CPUTime,
			LogicalReads:  o.st.LogicalReads,
			PhysicalReads: o.st.PhysicalReads,
		}
		if o.st.Trace != nil {
			wrap.Children = []*obs.Span{o.st.Trace}
		}
		root.Children = append(root.Children, wrap)
	}
	return root
}
