package shard

import (
	"fmt"
	"math"
	"sort"

	"stpq/internal/geo"
	"stpq/internal/hilbert"
	"stpq/internal/index"
)

// Strategy selects how the spatial partitioner slices objects and features
// into shard cells. Both strategies are pure functions of point location,
// so objects and the features around them land in the same cell — a
// locality heuristic only; correctness never depends on co-location
// because every sub-engine sees the full feature groups.
type Strategy int

const (
	// HilbertRuns (default) sorts the data objects along a Hilbert curve
	// and cuts the curve into equal-count runs: cells are contiguous curve
	// intervals, so they adapt to the data distribution (every shard gets
	// ~|O|/S objects regardless of skew).
	HilbertRuns Strategy = iota
	// FixedGrid overlays a Gx×Gy grid (Gx·Gy = S, Gx ≤ Gy) on the object
	// MBR: cells are axis-aligned boxes of equal area, cheap to reason
	// about but unbalanced under skew.
	FixedGrid
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case FixedGrid:
		return "grid"
	default:
		return "hilbert"
	}
}

// curveBits is the per-dimension resolution of the partitioning curve,
// matching the bulk-load default of internal/index.
const curveBits = 16

// hilbertKey maps a point to its position on the partitioning curve.
func hilbertKey(p geo.Point) uint64 {
	return hilbert.Encode2D(geo.Quantize(p.X, curveBits), geo.Quantize(p.Y, curveBits), curveBits)
}

// partitioning assigns any point in the plane to one of `cells` cells. The
// same function partitions objects and features, keeping each feature in
// the part built next to the objects it most influences. It is pure data
// (curve boundaries or grid geometry, never closures) so a saved sharded
// engine can persist it and reopen with the identical cell function.
type partitioning struct {
	strategy Strategy
	cells    int
	// bounds are the S−1 Hilbert-curve boundary keys (HilbertRuns).
	bounds []uint64
	// mbr/gx/gy are the grid geometry (FixedGrid).
	mbr    geo.Rect
	gx, gy int
}

// assign maps a point to its cell.
func (p partitioning) assign(pt geo.Point) int {
	if p.strategy == FixedGrid {
		w := (p.mbr.Max.X - p.mbr.Min.X) / float64(p.gx)
		h := (p.mbr.Max.Y - p.mbr.Min.Y) / float64(p.gy)
		ix := gridCellOf(pt.X, p.mbr.Min.X, w, p.gx)
		iy := gridCellOf(pt.Y, p.mbr.Min.Y, h, p.gy)
		return iy*p.gx + ix
	}
	k := hilbertKey(pt)
	// First boundary strictly above k; its index is the cell.
	return sort.Search(len(p.bounds), func(i int) bool { return p.bounds[i] > k })
}

// PartitionMeta is the serializable form of a partitioning — pure data
// (curve boundaries or grid geometry), identical in JSON shape to the
// "partition" section of the shards.json manifest. A cluster partition map
// embeds it so every process (coordinator, nodes, loaders) assigns any
// point to the same cell as the engine that computed it.
type PartitionMeta struct {
	Strategy int      `json:"strategy"`
	Cells    int      `json:"cells"`
	Bounds   []uint64 `json:"bounds,omitempty"`
	MBR      geo.Rect `json:"mbr,omitempty"`
	Gx       int      `json:"gx,omitempty"`
	Gy       int      `json:"gy,omitempty"`
}

// meta lowers the runtime partitioning into its serializable form.
func (p partitioning) meta() PartitionMeta {
	return PartitionMeta{
		Strategy: int(p.strategy),
		Cells:    p.cells,
		Bounds:   p.bounds,
		MBR:      p.mbr,
		Gx:       p.gx,
		Gy:       p.gy,
	}
}

// runtime raises the serialized form back into the cell function.
func (m PartitionMeta) runtime() partitioning {
	return partitioning{
		strategy: Strategy(m.Strategy),
		cells:    m.Cells,
		bounds:   m.Bounds,
		mbr:      m.MBR,
		gx:       m.Gx,
		gy:       m.Gy,
	}
}

// Assign maps a point to its cell under the serialized partitioning.
func (m PartitionMeta) Assign(pt geo.Point) int { return m.runtime().assign(pt) }

// BuildPartition derives a serializable cell function over `cells` cells
// from the data-object distribution — the exported entry point cluster
// tooling uses to slice a dataset into shard-per-node subsets. The same
// points, cell count and strategy always produce the identical partition,
// so independent processes agree without exchanging state.
func BuildPartition(points []geo.Point, cells int, strategy Strategy) (PartitionMeta, error) {
	objs := make([]index.Object, len(points))
	for i, p := range points {
		objs[i] = index.Object{Location: p}
	}
	part, err := buildPartitioning(objs, cells, strategy)
	if err != nil {
		return PartitionMeta{}, err
	}
	return part.meta(), nil
}

// buildPartitioning derives the cell function from the object distribution.
func buildPartitioning(objects []index.Object, shards int, strategy Strategy) (partitioning, error) {
	if shards < 1 {
		return partitioning{}, fmt.Errorf("shard: shard count %d must be at least 1", shards)
	}
	switch strategy {
	case FixedGrid:
		return gridPartitioning(objects, shards), nil
	case HilbertRuns:
		return hilbertPartitioning(objects, shards), nil
	default:
		return partitioning{}, fmt.Errorf("shard: unknown partition strategy %d", int(strategy))
	}
}

// hilbertPartitioning cuts the sorted object curve keys into equal-count
// runs and keeps the S−1 boundary keys; a point's cell is the number of
// boundaries at or below its key. Duplicate keys at a boundary all fall on
// the same side, so the split is deterministic (counts may then deviate
// slightly from |O|/S).
func hilbertPartitioning(objects []index.Object, shards int) partitioning {
	keys := make([]uint64, len(objects))
	for i, o := range objects {
		keys[i] = hilbertKey(o.Location)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	bounds := make([]uint64, 0, shards-1)
	for s := 1; s < shards; s++ {
		i := s * len(keys) / shards
		if i < len(keys) {
			bounds = append(bounds, keys[i])
		}
	}
	return partitioning{strategy: HilbertRuns, cells: shards, bounds: bounds}
}

// gridPartitioning factors S into Gx×Gy (Gx the largest divisor ≤ √S) over
// the object MBR. Points outside the MBR — features can be — clamp to the
// nearest border cell.
func gridPartitioning(objects []index.Object, shards int) partitioning {
	gx := 1
	for d := 1; d*d <= shards; d++ {
		if shards%d == 0 {
			gx = d
		}
	}
	gy := shards / gx
	mbr := geo.EmptyRect()
	for _, o := range objects {
		mbr = mbr.Extend(o.Location)
	}
	if mbr.IsEmpty() {
		mbr = geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 1, Y: 1}}
	}
	return partitioning{strategy: FixedGrid, cells: shards, mbr: mbr, gx: gx, gy: gy}
}

// gridCellOf clamps a coordinate into one of n grid columns/rows. Points
// outside the MBR — features can be — clamp to the nearest border cell.
func gridCellOf(v, min, step float64, n int) int {
	if step <= 0 {
		return 0
	}
	i := int(math.Floor((v - min) / step))
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}
