package rtree

import (
	"math/rand"
	"testing"

	"stpq/internal/geo"
)

func TestDeleteBasic(t *testing.T) {
	tr := newTestTree(t, Config{PageSize: 512})
	items := randomItems(rand.New(rand.NewSource(1)), 50, 0)
	for _, it := range items {
		if err := tr.Insert(it); err != nil {
			t.Fatal(err)
		}
	}
	ok, err := tr.Delete(items[7].ID, items[7].Location)
	if err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if tr.Len() != 49 {
		t.Fatalf("Len = %d", tr.Len())
	}
	// The deleted item must be unfindable.
	found := false
	_ = tr.RangeSearch(items[7].Location, 1e-9, func(e Entry) bool {
		if e.ItemID == items[7].ID {
			found = true
		}
		return true
	})
	if found {
		t.Fatal("deleted item still findable")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteMissing(t *testing.T) {
	tr := newTestTree(t, Config{PageSize: 512})
	_ = tr.Insert(Item{ID: 1, Location: geo.Point{X: 0.5, Y: 0.5}})
	// Wrong id at right location.
	if ok, err := tr.Delete(2, geo.Point{X: 0.5, Y: 0.5}); err != nil || ok {
		t.Fatalf("Delete wrong id = %v, %v", ok, err)
	}
	// Right id at wrong location.
	if ok, err := tr.Delete(1, geo.Point{X: 0.1, Y: 0.1}); err != nil || ok {
		t.Fatalf("Delete wrong loc = %v, %v", ok, err)
	}
	if tr.Len() != 1 {
		t.Fatal("Len changed on failed delete")
	}
}

func TestDeleteHalfRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := newTestTree(t, Config{PageSize: 512, KeywordWidth: 16, WithScore: true})
	items := randomItems(rng, 1200, 16)
	if err := tr.BulkLoad(items, hilbert2DKey); err != nil {
		t.Fatal(err)
	}
	// Delete a random half.
	perm := rng.Perm(len(items))
	deleted := make(map[int64]bool)
	for _, idx := range perm[:600] {
		it := items[idx]
		ok, err := tr.Delete(it.ID, it.Location)
		if err != nil || !ok {
			t.Fatalf("delete %d: %v %v", it.ID, ok, err)
		}
		deleted[it.ID] = true
	}
	if tr.Len() != 600 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Survivors — and only survivors — remain findable.
	all, err := tr.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 600 {
		t.Fatalf("All = %d", len(all))
	}
	for _, e := range all {
		if deleted[e.ItemID] {
			t.Fatalf("deleted item %d still present", e.ItemID)
		}
	}
	// Range queries still match brute force on survivors.
	center := geo.Point{X: 0.5, Y: 0.5}
	want := 0
	for _, it := range items {
		if !deleted[it.ID] && it.Location.Dist(center) <= 0.2 {
			want++
		}
	}
	got := 0
	_ = tr.RangeSearch(center, 0.2, func(Entry) bool { got++; return true })
	if got != want {
		t.Fatalf("range after deletes: got %d, want %d", got, want)
	}
}

func TestDeleteAllThenReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := newTestTree(t, Config{PageSize: 256})
	items := randomItems(rng, 300, 0)
	if err := tr.BulkLoad(items, hilbert2DKey); err != nil {
		t.Fatal(err)
	}
	heightBefore := tr.Height()
	for _, it := range items {
		ok, err := tr.Delete(it.ID, it.Location)
		if err != nil || !ok {
			t.Fatalf("delete %d: %v %v", it.ID, ok, err)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", tr.Len())
	}
	if tr.Height() >= heightBefore && heightBefore > 1 {
		t.Errorf("root did not collapse: height %d -> %d", heightBefore, tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The tree must accept new items again.
	for i := 0; i < 50; i++ {
		if err := tr.Insert(Item{ID: int64(1000 + i), Location: geo.Point{X: rng.Float64(), Y: rng.Float64()}}); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 50 {
		t.Fatalf("Len = %d after reuse", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Deleting the max-score item must shrink ancestor score bounds so that
// the ŝ(e) bound stays tight (recomputed, not merely kept).
func TestDeleteShrinksAggregates(t *testing.T) {
	tr := newTestTree(t, Config{PageSize: 512, WithScore: true, KeywordWidth: 8})
	items := randomItems(rand.New(rand.NewSource(4)), 100, 8)
	for i := range items {
		items[i].Score = float64(i) / 100
	}
	items[99].Score = 0.999 // unique maximum
	if err := tr.BulkLoad(items, hilbert2DKey); err != nil {
		t.Fatal(err)
	}
	root, err := tr.RootEntry()
	if err != nil {
		t.Fatal(err)
	}
	if root.Score != 0.999 {
		t.Fatalf("root score %v", root.Score)
	}
	if ok, err := tr.Delete(items[99].ID, items[99].Location); err != nil || !ok {
		t.Fatal("delete of max failed")
	}
	root, err = tr.RootEntry()
	if err != nil {
		t.Fatal(err)
	}
	if root.Score >= 0.999 {
		t.Fatalf("root score %v not shrunk after deleting the maximum", root.Score)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
