package rtree

import (
	"encoding/binary"
	"fmt"
	"math"

	"stpq/internal/geo"
	"stpq/internal/kwset"
	"stpq/internal/storage"
)

// nodeHeaderSize is the per-node page header: 1 flag byte, 2 count bytes,
// 1 reserved byte.
const nodeHeaderSize = 4

// encodeNode serializes a node into a page-sized buffer.
func (t *Tree) encodeNode(n *Node) ([]byte, error) {
	capacity := t.innerCap
	if n.Leaf {
		capacity = t.leafCap
	}
	if len(n.Entries) > capacity {
		return nil, fmt.Errorf("rtree: node overflow: %d entries, capacity %d", len(n.Entries), capacity)
	}
	buf := make([]byte, t.cfg.PageSize)
	if n.Leaf {
		buf[0] = 1
	}
	binary.LittleEndian.PutUint16(buf[1:3], uint16(len(n.Entries)))
	off := nodeHeaderSize
	words := kwWords(t.cfg.KeywordWidth)
	for i := range n.Entries {
		e := &n.Entries[i]
		if n.Leaf {
			binary.LittleEndian.PutUint64(buf[off:], uint64(e.ItemID))
			off += 8
			off = putFloat(buf, off, e.Rect.Min.X)
			off = putFloat(buf, off, e.Rect.Min.Y)
		} else {
			binary.LittleEndian.PutUint32(buf[off:], uint32(e.Child))
			off += 4
			off = putFloat(buf, off, e.Rect.Min.X)
			off = putFloat(buf, off, e.Rect.Min.Y)
			off = putFloat(buf, off, e.Rect.Max.X)
			off = putFloat(buf, off, e.Rect.Max.Y)
		}
		if t.cfg.WithScore {
			off = putFloat(buf, off, e.Score)
		}
		if words > 0 {
			raw := e.Keywords.WordsBits()
			for w := 0; w < words; w++ {
				var v uint64
				if w < len(raw) {
					v = raw[w]
				}
				binary.LittleEndian.PutUint64(buf[off:], v)
				off += 8
			}
		}
	}
	return buf[:off], nil
}

// decodeNode parses a page image into a Node.
func (t *Tree) decodeNode(data []byte) (*Node, error) {
	if len(data) < nodeHeaderSize {
		return nil, fmt.Errorf("rtree: short page: %d bytes", len(data))
	}
	n := &Node{Leaf: data[0]&1 == 1}
	count := int(binary.LittleEndian.Uint16(data[1:3]))
	capacity := t.innerCap
	if n.Leaf {
		capacity = t.leafCap
	}
	if count > capacity {
		return nil, fmt.Errorf("rtree: corrupt page: count %d exceeds capacity %d", count, capacity)
	}
	n.Entries = make([]Entry, count)
	off := nodeHeaderSize
	words := kwWords(t.cfg.KeywordWidth)
	// One keyword arena per node instead of one slice per entry: decode is
	// the hottest allocation site in the whole read path (every page visit
	// of every query), and entries outlive the pool's page buffer (they are
	// retained in candidate heaps), so the bits must be copied out — but
	// one bulk allocation suffices for all entries of the node.
	var arena []uint64
	if words > 0 && count > 0 {
		arena = make([]uint64, words*count)
	}
	for i := 0; i < count; i++ {
		e := &n.Entries[i]
		if n.Leaf {
			e.Leaf = true
			e.Child = storage.InvalidPage
			e.ItemID = int64(binary.LittleEndian.Uint64(data[off:]))
			off += 8
			var x, y float64
			x, off = getFloat(data, off)
			y, off = getFloat(data, off)
			e.Rect = geo.RectOf(geo.Point{X: x, Y: y})
		} else {
			e.Child = storage.PageID(binary.LittleEndian.Uint32(data[off:]))
			off += 4
			var x1, y1, x2, y2 float64
			x1, off = getFloat(data, off)
			y1, off = getFloat(data, off)
			x2, off = getFloat(data, off)
			y2, off = getFloat(data, off)
			e.Rect = geo.Rect{Min: geo.Point{X: x1, Y: y1}, Max: geo.Point{X: x2, Y: y2}}
		}
		if t.cfg.WithScore {
			e.Score, off = getFloat(data, off)
		}
		if words > 0 {
			raw := arena[i*words : (i+1)*words : (i+1)*words]
			for w := 0; w < words; w++ {
				raw[w] = binary.LittleEndian.Uint64(data[off:])
				off += 8
			}
			e.Keywords = kwset.FromBitsOwned(t.cfg.KeywordWidth, raw)
		}
	}
	return n, nil
}

// putFloat writes a float64 at off and returns the next offset.
func putFloat(buf []byte, off int, v float64) int {
	binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
	return off + 8
}

// getFloat reads a float64 at off and returns it with the next offset.
func getFloat(buf []byte, off int) (float64, int) {
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[off:])), off + 8
}
