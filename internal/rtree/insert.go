package rtree

import (
	"fmt"

	"stpq/internal/hilbert"
	"stpq/internal/storage"
)

// Insert adds one item to the tree using the classic Guttman insertion
// with quadratic node splitting. Bulk loading is preferred for building
// indexes (and is what the paper's experiments use); Insert supports
// incremental maintenance and exercises the aggregate-update rule of
// Section 4.2 — a node's score bound and keyword summary absorb every new
// descendant.
func (t *Tree) Insert(it Item) error {
	split, rootEntry, err := t.insertAt(t.root, 1, t.entryOf(it))
	if err != nil {
		return err
	}
	if split != nil {
		// Root split: grow the tree by one level.
		rootNode := &Node{Leaf: false, Entries: []Entry{*rootEntry, *split}}
		pid, err := t.writeNode(rootNode)
		if err != nil {
			return fmt.Errorf("rtree: grow root: %w", err)
		}
		t.root = pid
		t.height++
	}
	t.size++
	return nil
}

// insertAt inserts e into the subtree rooted at pid (depth d from root).
// It returns the entry for a new sibling if the node split, plus the
// refreshed aggregate entry describing the (possibly shrunk) node at pid.
func (t *Tree) insertAt(pid storagePage, d int, e Entry) (split *Entry, self *Entry, err error) {
	n, err := t.Node(pid)
	if err != nil {
		return nil, nil, err
	}
	// The pre-insert aggregate: when the node does not split, its new
	// summary is this entry absorbing e via the Section 4.2 update rule.
	prev := t.entryAggregate(pid, n)
	if d == t.height {
		// Leaf level: place the entry here.
		n.Entries = append(n.Entries, e)
		return t.finishInsert(pid, n, prev, e)
	}
	child := t.chooseSubtree(n, e)
	childSplit, childSelf, err := t.insertAt(n.Entries[child].Child, d+1, e)
	if err != nil {
		return nil, nil, err
	}
	n.Entries[child] = *childSelf
	if childSplit != nil {
		n.Entries = append(n.Entries, *childSplit)
	}
	return t.finishInsert(pid, n, prev, e)
}

// absorb folds the newly inserted entry into a node's previous aggregate
// without re-scanning the node: rect union, score max, and — for the
// keyword summary — the paper's decode→OR→encode node-update rule of
// Section 4.2, routed through the Hilbert value domain exactly as the SRT
// maintains e.W online.
func (t *Tree) absorb(prev, inserted Entry) Entry {
	out := prev
	out.Rect = prev.Rect.Union(inserted.Rect)
	if inserted.Score > out.Score {
		out.Score = inserted.Score
	}
	if t.cfg.KeywordWidth > 0 {
		out.Keywords = hilbert.NodeUpdateKeywords(prev.Keywords, inserted.Keywords, t.cfg.KeywordWidth)
	}
	return out
}

// finishInsert writes n back (splitting on overflow) and returns the new
// sibling entry (if any) and the aggregate entry for pid. prev is the
// node's pre-insert aggregate and inserted the new descendant entry; on
// the no-split path the refreshed aggregate is prev absorbing inserted
// (the paper's online node-update rule) rather than a full re-fold.
func (t *Tree) finishInsert(pid storagePage, n *Node, prev, inserted Entry) (*Entry, *Entry, error) {
	capacity := t.innerCap
	if n.Leaf {
		capacity = t.leafCap
	}
	if len(n.Entries) <= capacity {
		if err := t.updateNode(pid, n); err != nil {
			return nil, nil, err
		}
		agg := t.absorb(prev, inserted)
		agg.Child = pid
		return nil, &agg, nil
	}
	t.splits++
	a, b := t.quadraticSplit(n.Entries)
	nodeA := &Node{Leaf: n.Leaf, Entries: a}
	nodeB := &Node{Leaf: n.Leaf, Entries: b}
	if err := t.updateNode(pid, nodeA); err != nil {
		return nil, nil, err
	}
	newPid, err := t.writeNode(nodeB)
	if err != nil {
		return nil, nil, err
	}
	aggA := t.entryAggregate(pid, nodeA)
	aggB := t.entryAggregate(newPid, nodeB)
	return &aggB, &aggA, nil
}

// chooseSubtree picks the child needing the least area enlargement to
// cover e, breaking ties by smaller area.
func (t *Tree) chooseSubtree(n *Node, e Entry) int {
	best := 0
	bestEnl, bestArea := inf, inf
	for i, c := range n.Entries {
		area := c.Rect.Area()
		enl := c.Rect.Union(e.Rect).Area() - area
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// quadraticSplit partitions entries into two groups using Guttman's
// quadratic algorithm, respecting the minimum fill.
func (t *Tree) quadraticSplit(entries []Entry) (a, b []Entry) {
	seedA, seedB := pickSeeds(entries)
	a = append(a, entries[seedA])
	b = append(b, entries[seedB])
	rectA, rectB := entries[seedA].Rect, entries[seedB].Rect
	rest := make([]Entry, 0, len(entries)-2)
	for i, e := range entries {
		if i != seedA && i != seedB {
			rest = append(rest, e)
		}
	}
	for len(rest) > 0 {
		// Honour minimum fill: if one group must take all the rest, do so.
		if len(a)+len(rest) <= t.minFill {
			a = append(a, rest...)
			break
		}
		if len(b)+len(rest) <= t.minFill {
			b = append(b, rest...)
			break
		}
		// Pick the entry with the strongest preference.
		bestIdx, bestDiff := 0, -1.0
		var bestToA bool
		for i, e := range rest {
			dA := rectA.Union(e.Rect).Area() - rectA.Area()
			dB := rectB.Union(e.Rect).Area() - rectB.Area()
			diff := dA - dB
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestDiff, bestIdx, bestToA = diff, i, dA < dB
			}
		}
		e := rest[bestIdx]
		rest[bestIdx] = rest[len(rest)-1]
		rest = rest[:len(rest)-1]
		if bestToA {
			a = append(a, e)
			rectA = rectA.Union(e.Rect)
		} else {
			b = append(b, e)
			rectB = rectB.Union(e.Rect)
		}
	}
	return a, b
}

// pickSeeds finds the pair of entries wasting the most area if grouped
// together.
func pickSeeds(entries []Entry) (int, int) {
	worst := -1.0
	ia, ib := 0, 1
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			d := entries[i].Rect.Union(entries[j].Rect).Area() -
				entries[i].Rect.Area() - entries[j].Rect.Area()
			if d > worst {
				worst, ia, ib = d, i, j
			}
		}
	}
	return ia, ib
}

// storagePage aliases the page id type to keep signatures compact.
type storagePage = storage.PageID
