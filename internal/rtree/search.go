package rtree

import (
	"stpq/internal/geo"
)

// RangeSearch visits every indexed item within Euclidean distance r of
// center, in no particular order. fn returning false stops the search
// early. It is the retrieval primitive behind getDataObjects for the range
// score variant (paper Section 6.4).
func (t *Tree) RangeSearch(center geo.Point, r float64, fn func(Entry) bool) error {
	return t.searchNode(t.root, func(e Entry) bool {
		if e.Leaf {
			return e.Point().Dist(center) <= r
		}
		return e.Rect.MinDist(center) <= r
	}, fn)
}

// SearchRect visits every indexed item inside rect.
func (t *Tree) SearchRect(rect geo.Rect, fn func(Entry) bool) error {
	return t.searchNode(t.root, func(e Entry) bool {
		if e.Leaf {
			return rect.Contains(e.Point())
		}
		return e.Rect.Intersects(rect)
	}, fn)
}

// SearchFiltered visits every item whose ancestors all pass the prune
// predicate. prune receives internal entries (subtree MBR plus
// aggregates) and leaf entries alike and returns whether the entry can
// contain qualifying items. fn receives qualifying leaf entries and
// returns false to stop.
func (t *Tree) SearchFiltered(prune func(Entry) bool, fn func(Entry) bool) error {
	return t.searchNode(t.root, prune, fn)
}

// searchNode is the shared depth-first traversal.
func (t *Tree) searchNode(pid storagePage, accept func(Entry) bool, fn func(Entry) bool) error {
	stack := []storagePage{pid}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n, err := t.Node(id)
		if err != nil {
			return err
		}
		for _, e := range n.Entries {
			if !accept(e) {
				continue
			}
			if e.Leaf {
				if !fn(e) {
					return nil
				}
			} else {
				stack = append(stack, e.Child)
			}
		}
	}
	return nil
}

// KNearest returns the k items nearest to center in increasing distance
// order (best-first search with a priority queue of MINDIST bounds).
func (t *Tree) KNearest(center geo.Point, k int) ([]Entry, error) {
	if k <= 0 {
		return nil, nil
	}
	out := make([]Entry, 0, k)
	err := t.AscendDistance(center, func(e Entry, _ float64) bool {
		out = append(out, e)
		return len(out) < k
	})
	return out, err
}

// AscendDistance streams indexed items in increasing distance from center.
// fn receives each item and its distance and returns false to stop. This
// is the incremental nearest-neighbor primitive used by the NN score
// variant and the Voronoi construction.
func (t *Tree) AscendDistance(center geo.Point, fn func(Entry, float64) bool) error {
	root, err := t.RootEntry()
	if err != nil {
		return err
	}
	pq := &distQueue{}
	pq.push(distItem{entry: root, dist: root.Rect.MinDist(center)})
	for pq.Len() > 0 {
		it := pq.pop()
		if it.entry.Leaf {
			if !fn(it.entry, it.dist) {
				return nil
			}
			continue
		}
		n, err := t.Node(it.entry.Child)
		if err != nil {
			return err
		}
		for _, c := range n.Entries {
			d := c.Rect.MinDist(center)
			pq.push(distItem{entry: c, dist: d})
		}
	}
	return nil
}

// distItem pairs an entry with its MINDIST priority.
type distItem struct {
	entry Entry
	dist  float64
}

// distQueue is a min-heap over distances.
type distQueue []distItem

func (q distQueue) Len() int { return len(q) }

// push and pop are typed heap operations: the container/heap interface
// would box every distItem, costing an allocation per operation on the
// distance-ascent hot path.
func (q *distQueue) push(it distItem) {
	s := append(*q, it)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p].dist <= s[i].dist {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
	*q = s
}

func (q *distQueue) pop() distItem {
	s := *q
	n := len(s) - 1
	top := s[0]
	s[0] = s[n]
	s[n] = distItem{}
	s = s[:n]
	*q = s
	for i := 0; ; {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && s[r].dist < s[l].dist {
			m = r
		}
		if s[m].dist >= s[i].dist {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}

// All returns every indexed item (leaf-order scan). It is the sequential
// object scan STDS starts from.
func (t *Tree) All() ([]Entry, error) {
	var out []Entry
	err := t.searchNode(t.root, func(Entry) bool { return true }, func(e Entry) bool {
		out = append(out, e)
		return true
	})
	return out, err
}

// Leaves visits each leaf node's entries as one batch — the unit the
// batched STDS score computation processes together (paper Section 5,
// "Performance improvements"). Leaf batches are spatially coherent, which
// is what makes batching effective.
func (t *Tree) Leaves(fn func([]Entry) bool) error {
	stack := []storagePage{t.root}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n, err := t.Node(id)
		if err != nil {
			return err
		}
		if n.Leaf {
			if len(n.Entries) > 0 && !fn(n.Entries) {
				return nil
			}
			continue
		}
		for _, e := range n.Entries {
			stack = append(stack, e.Child)
		}
	}
	return nil
}

// SearchPolygon visits every item inside the convex polygon pg. Internal
// nodes are pruned when their MBR does not intersect the polygon — the
// retrieval step over Voronoi cell intersections in Section 7.2.
func (t *Tree) SearchPolygon(pg geo.Polygon, fn func(Entry) bool) error {
	if pg.IsEmpty() {
		return nil
	}
	return t.searchNode(t.root, func(e Entry) bool {
		if e.Leaf {
			return pg.Contains(e.Point())
		}
		return pg.IntersectsRect(e.Rect)
	}, fn)
}
