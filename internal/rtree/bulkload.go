package rtree

import (
	"errors"
	"fmt"
	"sort"
)

// ErrNotEmpty is returned when bulk loading into a non-empty tree.
var ErrNotEmpty = errors.New("rtree: bulk load requires an empty tree")

// SortKey orders items during bulk loading. The SRT-index supplies a 4-D
// Hilbert key over {x, y, score, H(keywords)}; the IR²-tree and the plain
// object R-tree supply a 2-D spatial Hilbert key. Equal keys keep input
// order (stable sort).
type SortKey func(Item) uint64

// BulkLoad builds the tree bottom-up from items sorted by key, packing
// nodes to the configured fill factor — the Hilbert-packing bulk insertion
// of Kamel & Faloutsos the paper uses (Section 4.2). The tree must be
// empty.
func (t *Tree) BulkLoad(items []Item, key SortKey) error {
	if t.size != 0 {
		return ErrNotEmpty
	}
	if len(items) == 0 {
		return nil
	}
	// Sort by key via an index permutation so each key is computed once.
	keys := make([]uint64, len(items))
	for i, it := range items {
		keys[i] = key(it)
	}
	idx := make([]int, len(items))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	sorted := make([]Item, len(items))
	for i, j := range idx {
		sorted[i] = items[j]
	}

	leafFill := fill(t.leafCap, t.cfg.FillFactor)
	innerFill := fill(t.innerCap, t.cfg.FillFactor)

	// Level 0: pack leaf nodes.
	level := make([]Entry, 0, (len(sorted)+leafFill-1)/leafFill)
	var lastPage = t.root
	for start := 0; start < len(sorted); start += leafFill {
		end := start + leafFill
		if end > len(sorted) {
			end = len(sorted)
		}
		n := &Node{Leaf: true}
		for _, it := range sorted[start:end] {
			n.Entries = append(n.Entries, t.entryOf(it))
		}
		pid, err := t.writeNode(n)
		if err != nil {
			return fmt.Errorf("rtree: bulk load leaf: %w", err)
		}
		level = append(level, t.entryAggregate(pid, n))
		lastPage = pid
	}
	height := 1

	// Upper levels: pack internal nodes until a single node remains.
	for len(level) > 1 {
		next := make([]Entry, 0, (len(level)+innerFill-1)/innerFill)
		for start := 0; start < len(level); start += innerFill {
			end := start + innerFill
			if end > len(level) {
				end = len(level)
			}
			n := &Node{Leaf: false, Entries: level[start:end]}
			pid, err := t.writeNode(n)
			if err != nil {
				return fmt.Errorf("rtree: bulk load level %d: %w", height, err)
			}
			next = append(next, t.entryAggregate(pid, n))
		}
		level = next
		height++
	}

	if len(level) == 1 {
		t.root = level[0].Child
	} else {
		t.root = lastPage
	}
	t.height = height
	t.size = len(sorted)
	return nil
}

// fill converts a capacity and fill factor into a per-node packing count.
func fill(capacity int, factor float64) int {
	n := int(float64(capacity) * factor)
	if n < 2 {
		n = 2
	}
	if n > capacity {
		n = capacity
	}
	return n
}
