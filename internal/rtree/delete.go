package rtree

import (
	"stpq/internal/geo"
	"stpq/internal/storage"
)

// Delete removes the item with the given id at the given location and
// reports whether it was found. Aggregates (MBRs, score bounds, keyword
// summaries) are recomputed bottom-up along the deletion path, so the
// ŝ(e) ≥ s(t) contract of Section 4.1 keeps holding after deletions.
//
// Nodes are allowed to become under-full: the classic condense-and-
// reinsert step is skipped, trading a slightly sparser tree for simpler
// maintenance (empty nodes are unlinked, and the root collapses when it
// has a single child). Query correctness is unaffected.
func (t *Tree) Delete(id int64, loc geo.Point) (bool, error) {
	found, _, _, err := t.deleteAt(t.root, 1, id, loc)
	if err != nil {
		return false, err
	}
	if !found {
		return false, nil
	}
	t.size--
	// Collapse a root with a single child to keep the height tight.
	for t.height > 1 {
		n, err := t.Node(t.root)
		if err != nil {
			return false, err
		}
		if len(n.Entries) != 1 || n.Leaf {
			break
		}
		t.root = n.Entries[0].Child
		t.height--
	}
	return true, nil
}

// deleteAt removes the item from the subtree at pid (depth d). It returns
// whether the item was found, whether the node at pid is now empty, and
// the refreshed aggregate entry for pid.
func (t *Tree) deleteAt(pid storage.PageID, d int, id int64, loc geo.Point) (found, empty bool, self Entry, err error) {
	n, err := t.Node(pid)
	if err != nil {
		return false, false, Entry{}, err
	}
	if d == t.height {
		for i, e := range n.Entries {
			if e.ItemID == id && e.Point() == loc {
				n.Entries = append(n.Entries[:i], n.Entries[i+1:]...)
				if err := t.updateNode(pid, n); err != nil {
					return false, false, Entry{}, err
				}
				return true, len(n.Entries) == 0, t.entryAggregate(pid, n), nil
			}
		}
		return false, false, Entry{}, nil
	}
	for i, e := range n.Entries {
		if !e.Rect.Contains(loc) {
			continue
		}
		childFound, childEmpty, childSelf, err := t.deleteAt(e.Child, d+1, id, loc)
		if err != nil {
			return false, false, Entry{}, err
		}
		if !childFound {
			continue
		}
		if childEmpty {
			n.Entries = append(n.Entries[:i], n.Entries[i+1:]...)
		} else {
			n.Entries[i] = childSelf
		}
		if err := t.updateNode(pid, n); err != nil {
			return false, false, Entry{}, err
		}
		return true, len(n.Entries) == 0, t.entryAggregate(pid, n), nil
	}
	return false, false, Entry{}, nil
}
