package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"stpq/internal/geo"
	"stpq/internal/hilbert"
	"stpq/internal/kwset"
	"stpq/internal/storage"
)

// hilbert2DKey is the spatial bulk-load key used by tests.
func hilbert2DKey(it Item) uint64 {
	return hilbert.Encode2D(geo.Quantize(it.Location.X, 16), geo.Quantize(it.Location.Y, 16), 16)
}

// randomItems generates n items with random locations, scores and keyword
// sets over a width-w vocabulary.
func randomItems(rng *rand.Rand, n, w int) []Item {
	items := make([]Item, n)
	for i := range items {
		kw := kwset.NewSet(w)
		if w > 0 {
			for j := 0; j < 1+rng.Intn(3); j++ {
				kw.Add(rng.Intn(w))
			}
		}
		items[i] = Item{
			ID:       int64(i),
			Location: geo.Point{X: rng.Float64(), Y: rng.Float64()},
			Score:    rng.Float64(),
			Keywords: kw,
		}
	}
	return items
}

func newTestTree(t *testing.T, cfg Config) *Tree {
	t.Helper()
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewCapacities(t *testing.T) {
	tr := newTestTree(t, Config{PageSize: 4096, KeywordWidth: 128, WithScore: true})
	if tr.LeafCapacity() < 10 || tr.InnerCapacity() < 10 {
		t.Errorf("capacities too small: leaf=%d inner=%d", tr.LeafCapacity(), tr.InnerCapacity())
	}
	// A larger vocabulary must reduce fan-out (paper Fig. 7(d) reasoning).
	tr2 := newTestTree(t, Config{PageSize: 4096, KeywordWidth: 256, WithScore: true})
	if tr2.LeafCapacity() >= tr.LeafCapacity() {
		t.Errorf("capacity should drop with keyword width: %d vs %d",
			tr2.LeafCapacity(), tr.LeafCapacity())
	}
}

func TestNewRejectsTinyPages(t *testing.T) {
	if _, err := New(Config{PageSize: 64, KeywordWidth: 1024, WithScore: true}); err == nil {
		t.Fatal("expected error for page too small")
	}
}

func TestEncodeDecodeNodeRoundTrip(t *testing.T) {
	tr := newTestTree(t, Config{PageSize: 1024, KeywordWidth: 70, WithScore: true})
	rng := rand.New(rand.NewSource(1))
	leaf := &Node{Leaf: true}
	for i := 0; i < 5; i++ {
		kw := kwset.NewSet(70)
		kw.Add(rng.Intn(70))
		kw.Add(64 + rng.Intn(6))
		leaf.Entries = append(leaf.Entries, Entry{
			Rect:     geo.RectOf(geo.Point{X: rng.Float64(), Y: rng.Float64()}),
			Child:    storage.InvalidPage,
			ItemID:   int64(1000 + i),
			Score:    rng.Float64(),
			Keywords: kw,
			Leaf:     true,
		})
	}
	buf, err := tr.encodeNode(leaf)
	if err != nil {
		t.Fatal(err)
	}
	// Pad to page size as the disk would.
	page := make([]byte, 1024)
	copy(page, buf)
	got, err := tr.decodeNode(page)
	if err != nil {
		t.Fatal(err)
	}
	if got.Leaf != leaf.Leaf || len(got.Entries) != len(leaf.Entries) {
		t.Fatalf("shape mismatch")
	}
	for i := range leaf.Entries {
		a, b := leaf.Entries[i], got.Entries[i]
		if a.ItemID != b.ItemID || a.Rect != b.Rect || a.Score != b.Score {
			t.Errorf("entry %d mismatch: %+v vs %+v", i, a, b)
		}
		if !a.Keywords.Equal(b.Keywords) {
			t.Errorf("entry %d keywords mismatch", i)
		}
	}

	inner := &Node{Leaf: false, Entries: []Entry{{
		Rect:     geo.Rect{Min: geo.Point{X: 0.1, Y: 0.2}, Max: geo.Point{X: 0.5, Y: 0.9}},
		Child:    7,
		Score:    0.75,
		Keywords: kwset.SetFromWords(70, 3, 69),
	}}}
	buf, err = tr.encodeNode(inner)
	if err != nil {
		t.Fatal(err)
	}
	page = make([]byte, 1024)
	copy(page, buf)
	got, err = tr.decodeNode(page)
	if err != nil {
		t.Fatal(err)
	}
	if got.Leaf || got.Entries[0].Child != 7 || got.Entries[0].Rect != inner.Entries[0].Rect {
		t.Errorf("internal round trip failed: %+v", got.Entries[0])
	}
}

func TestEncodeNodeOverflow(t *testing.T) {
	tr := newTestTree(t, Config{PageSize: 256})
	n := &Node{Leaf: true}
	for i := 0; i <= tr.LeafCapacity(); i++ {
		n.Entries = append(n.Entries, Entry{Leaf: true})
	}
	if _, err := tr.encodeNode(n); err == nil {
		t.Fatal("expected overflow error")
	}
}

func TestBulkLoadInvariants(t *testing.T) {
	for _, n := range []int{0, 1, 5, 100, 3000} {
		rng := rand.New(rand.NewSource(int64(n)))
		tr := newTestTree(t, Config{PageSize: 512, KeywordWidth: 64, WithScore: true})
		items := randomItems(rng, n, 64)
		if err := tr.BulkLoad(items, hilbert2DKey); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tr.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, tr.Len())
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		all, err := tr.All()
		if err != nil {
			t.Fatal(err)
		}
		if len(all) != n {
			t.Fatalf("n=%d: All returned %d", n, len(all))
		}
		ids := make(map[int64]bool)
		for _, e := range all {
			ids[e.ItemID] = true
		}
		if len(ids) != n {
			t.Fatalf("n=%d: duplicate or missing ids", n)
		}
	}
}

func TestBulkLoadRejectsNonEmpty(t *testing.T) {
	tr := newTestTree(t, Config{PageSize: 512})
	if err := tr.Insert(Item{ID: 1, Location: geo.Point{X: 0.5, Y: 0.5}}); err != nil {
		t.Fatal(err)
	}
	if err := tr.BulkLoad(randomItems(rand.New(rand.NewSource(1)), 5, 0), hilbert2DKey); err != ErrNotEmpty {
		t.Fatalf("got %v, want ErrNotEmpty", err)
	}
}

func TestInsertInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := newTestTree(t, Config{PageSize: 512, KeywordWidth: 32, WithScore: true})
	items := randomItems(rng, 800, 32)
	for i, it := range items {
		if err := tr.Insert(it); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if tr.Len() != len(items) {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Height() < 2 {
		t.Errorf("expected multi-level tree, height=%d", tr.Height())
	}
}

func TestRangeSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := newTestTree(t, Config{PageSize: 512})
	items := randomItems(rng, 1500, 0)
	if err := tr.BulkLoad(items, hilbert2DKey); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		center := geo.Point{X: rng.Float64(), Y: rng.Float64()}
		r := 0.02 + rng.Float64()*0.2
		want := make(map[int64]bool)
		for _, it := range items {
			if it.Location.Dist(center) <= r {
				want[it.ID] = true
			}
		}
		got := make(map[int64]bool)
		err := tr.RangeSearch(center, r, func(e Entry) bool {
			got[e.ItemID] = true
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d, want %d", trial, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("trial %d: missing id %d", trial, id)
			}
		}
	}
}

func TestRangeSearchEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr := newTestTree(t, Config{PageSize: 512})
	if err := tr.BulkLoad(randomItems(rng, 500, 0), hilbert2DKey); err != nil {
		t.Fatal(err)
	}
	seen := 0
	err := tr.RangeSearch(geo.Point{X: 0.5, Y: 0.5}, 1.5, func(Entry) bool {
		seen++
		return seen < 10
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 10 {
		t.Errorf("early stop visited %d", seen)
	}
}

func TestSearchRectMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tr := newTestTree(t, Config{PageSize: 512})
	items := randomItems(rng, 1000, 0)
	if err := tr.BulkLoad(items, hilbert2DKey); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		a := geo.Point{X: rng.Float64(), Y: rng.Float64()}
		b := geo.Point{X: rng.Float64(), Y: rng.Float64()}
		rect := geo.RectOf(a).Extend(b)
		want := 0
		for _, it := range items {
			if rect.Contains(it.Location) {
				want++
			}
		}
		got := 0
		if err := tr.SearchRect(rect, func(Entry) bool { got++; return true }); err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: got %d, want %d", trial, got, want)
		}
	}
}

func TestKNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := newTestTree(t, Config{PageSize: 512})
	items := randomItems(rng, 800, 0)
	if err := tr.BulkLoad(items, hilbert2DKey); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		center := geo.Point{X: rng.Float64(), Y: rng.Float64()}
		k := 1 + rng.Intn(20)
		got, err := tr.KNearest(center, k)
		if err != nil {
			t.Fatal(err)
		}
		dists := make([]float64, len(items))
		for i, it := range items {
			dists[i] = it.Location.Dist(center)
		}
		sort.Float64s(dists)
		if len(got) != k {
			t.Fatalf("got %d results, want %d", len(got), k)
		}
		for i, e := range got {
			if math.Abs(e.Point().Dist(center)-dists[i]) > 1e-12 {
				t.Fatalf("trial %d: rank %d dist %v, want %v", trial, i,
					e.Point().Dist(center), dists[i])
			}
		}
	}
}

func TestKNearestEdgeCases(t *testing.T) {
	tr := newTestTree(t, Config{PageSize: 512})
	got, err := tr.KNearest(geo.Point{X: 0.5, Y: 0.5}, 5)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty tree: %v, %d", err, len(got))
	}
	if got, _ := tr.KNearest(geo.Point{}, 0); got != nil {
		t.Error("k=0 must return nil")
	}
	_ = tr.Insert(Item{ID: 1, Location: geo.Point{X: 0.3, Y: 0.3}})
	got, err = tr.KNearest(geo.Point{X: 0, Y: 0}, 10)
	if err != nil || len(got) != 1 {
		t.Fatalf("k>size: %v, %d", err, len(got))
	}
}

func TestAscendDistanceMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tr := newTestTree(t, Config{PageSize: 512})
	if err := tr.BulkLoad(randomItems(rng, 600, 0), hilbert2DKey); err != nil {
		t.Fatal(err)
	}
	center := geo.Point{X: 0.4, Y: 0.6}
	prev := -1.0
	count := 0
	err := tr.AscendDistance(center, func(e Entry, d float64) bool {
		if d < prev-1e-12 {
			t.Fatalf("distance decreased: %v after %v", d, prev)
		}
		if math.Abs(e.Point().Dist(center)-d) > 1e-12 {
			t.Fatal("reported distance mismatch")
		}
		prev = d
		count++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 600 {
		t.Fatalf("visited %d", count)
	}
}

func TestLeavesCoverAllItems(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	tr := newTestTree(t, Config{PageSize: 512})
	items := randomItems(rng, 700, 0)
	if err := tr.BulkLoad(items, hilbert2DKey); err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]bool)
	batches := 0
	err := tr.Leaves(func(batch []Entry) bool {
		batches++
		if len(batch) == 0 {
			t.Fatal("empty batch")
		}
		for _, e := range batch {
			seen[e.ItemID] = true
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 700 {
		t.Fatalf("leaves covered %d items", len(seen))
	}
	if batches < 2 {
		t.Fatalf("expected multiple leaf batches, got %d", batches)
	}
}

func TestSearchPolygonMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	tr := newTestTree(t, Config{PageSize: 512})
	items := randomItems(rng, 900, 0)
	if err := tr.BulkLoad(items, hilbert2DKey); err != nil {
		t.Fatal(err)
	}
	// A convex pentagon around the center.
	pg := geo.Polygon{Vertices: []geo.Point{
		{X: 0.3, Y: 0.2}, {X: 0.7, Y: 0.25}, {X: 0.8, Y: 0.6}, {X: 0.5, Y: 0.85}, {X: 0.2, Y: 0.55},
	}}
	want := 0
	for _, it := range items {
		if pg.Contains(it.Location) {
			want++
		}
	}
	got := 0
	if err := tr.SearchPolygon(pg, func(Entry) bool { got++; return true }); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("got %d, want %d", got, want)
	}
	// Empty polygon visits nothing.
	if err := tr.SearchPolygon(geo.Polygon{}, func(Entry) bool {
		t.Fatal("must not visit")
		return false
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRootEntryAggregates(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tr := newTestTree(t, Config{PageSize: 512, KeywordWidth: 48, WithScore: true})
	items := randomItems(rng, 400, 48)
	if err := tr.BulkLoad(items, hilbert2DKey); err != nil {
		t.Fatal(err)
	}
	root, err := tr.RootEntry()
	if err != nil {
		t.Fatal(err)
	}
	wantScore := 0.0
	wantKw := kwset.NewSet(48)
	for _, it := range items {
		if it.Score > wantScore {
			wantScore = it.Score
		}
		wantKw.UnionInPlace(it.Keywords)
		if !root.Rect.Contains(it.Location) {
			t.Fatal("root MBR does not contain item")
		}
	}
	if math.Abs(root.Score-wantScore) > 1e-12 {
		t.Errorf("root score %v, want %v", root.Score, wantScore)
	}
	if !root.Keywords.Equal(wantKw) {
		t.Error("root keyword summary != union of item keywords")
	}
}

func TestMixedBulkLoadTheInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	tr := newTestTree(t, Config{PageSize: 512, KeywordWidth: 16, WithScore: true})
	items := randomItems(rng, 300, 16)
	if err := tr.BulkLoad(items[:200], hilbert2DKey); err != nil {
		t.Fatal(err)
	}
	for _, it := range items[200:] {
		if err := tr.Insert(it); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 300 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	all, _ := tr.All()
	if len(all) != 300 {
		t.Fatalf("All = %d", len(all))
	}
}

func TestBufferPoolCountsNodeReads(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	tr := newTestTree(t, Config{PageSize: 512, BufferPages: 2})
	if err := tr.BulkLoad(randomItems(rng, 2000, 0), hilbert2DKey); err != nil {
		t.Fatal(err)
	}
	tr.Pool().ResetStats()
	_ = tr.RangeSearch(geo.Point{X: 0.5, Y: 0.5}, 0.05, func(Entry) bool { return true })
	s := tr.Pool().Stats()
	if s.LogicalReads == 0 {
		t.Fatal("no logical reads recorded")
	}
	if s.PhysicalReads == 0 {
		t.Fatal("tiny pool must incur physical reads")
	}
}

// Property: bulk loading with any key permutation preserves the item set
// and invariants.
func TestBulkLoadPermutationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, err := New(Config{PageSize: 256})
		if err != nil {
			return false
		}
		n := 50 + rng.Intn(200)
		items := randomItems(rng, n, 0)
		// Random (non-spatial) key still yields a valid tree.
		if err := tr.BulkLoad(items, func(it Item) uint64 { return uint64(it.ID * 2654435761) }); err != nil {
			return false
		}
		if tr.CheckInvariants() != nil {
			return false
		}
		all, err := tr.All()
		return err == nil && len(all) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFileDiskBackedTree(t *testing.T) {
	path := t.TempDir() + "/tree.pages"
	disk, err := storage.NewFileDisk(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	tr, err := New(Config{PageSize: 512, Disk: disk})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(16))
	items := randomItems(rng, 500, 0)
	if err := tr.BulkLoad(items, hilbert2DKey); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got := 0
	_ = tr.RangeSearch(geo.Point{X: 0.5, Y: 0.5}, 0.3, func(Entry) bool { got++; return true })
	want := 0
	for _, it := range items {
		if it.Location.Dist(geo.Point{X: 0.5, Y: 0.5}) <= 0.3 {
			want++
		}
	}
	if got != want {
		t.Fatalf("file-backed search got %d, want %d", got, want)
	}
}

func TestMetaOpenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tr := newTestTree(t, Config{PageSize: 512, KeywordWidth: 16, WithScore: true})
	items := randomItems(rng, 600, 16)
	if err := tr.BulkLoad(items, hilbert2DKey); err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(Config{
		PageSize: 512, KeywordWidth: 16, WithScore: true, Disk: tr.Config().Disk,
	}, tr.Meta())
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Len() != 600 || reopened.Height() != tr.Height() {
		t.Fatalf("meta mismatch: len=%d height=%d", reopened.Len(), reopened.Height())
	}
	if err := reopened.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Queries agree.
	center := geo.Point{X: 0.4, Y: 0.6}
	var a, b int
	_ = tr.RangeSearch(center, 0.2, func(Entry) bool { a++; return true })
	_ = reopened.RangeSearch(center, 0.2, func(Entry) bool { b++; return true })
	if a != b {
		t.Fatalf("range results differ: %d vs %d", a, b)
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Config{}, Meta{Height: 1}); err == nil {
		t.Fatal("Open without disk must fail")
	}
	tr := newTestTree(t, Config{PageSize: 512})
	disk := tr.Config().Disk
	if _, err := Open(Config{PageSize: 1024, Disk: disk}, tr.Meta()); err == nil {
		t.Fatal("page size mismatch must fail")
	}
	if _, err := Open(Config{Disk: disk}, Meta{Root: 9999, Height: 1}); err == nil {
		t.Fatal("out-of-range root must fail")
	}
	if _, err := Open(Config{Disk: disk}, Meta{Root: 0, Height: 0}); err == nil {
		t.Fatal("zero height must fail")
	}
}
