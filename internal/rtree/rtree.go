// Package rtree implements the disk-resident R-tree that underlies all
// three indexes of the stpq library: the plain R-tree over data objects,
// the SRT-index, and the modified IR²-tree over feature objects (paper
// Sections 4 and 8).
//
// Every node occupies exactly one fixed-size page behind an LRU buffer
// pool, so node visits translate one-to-one into the logical/physical page
// reads the paper measures. Entries optionally carry the augmentation
// required by Section 4.1: the maximum non-spatial score of the subtree
// (e.s) and a keyword summary of all feature objects below (e.W). The SRT
// and IR² indexes share this node format — they differ only in how leaf
// entries are clustered at build time, which isolates the paper's index
// contribution (Section 4.2) from incidental implementation detail.
package rtree

import (
	"errors"
	"fmt"
	"math"

	"stpq/internal/geo"
	"stpq/internal/kwset"
	"stpq/internal/storage"
)

// Config controls the shape of a tree.
type Config struct {
	// PageSize is the on-disk page (and node) size in bytes.
	// Defaults to storage.DefaultPageSize.
	PageSize int
	// KeywordWidth is the vocabulary width w of keyword summaries carried
	// by every entry; 0 stores no textual augmentation (plain R-tree).
	KeywordWidth int
	// WithScore selects whether entries carry the non-spatial score
	// augmentation e.s.
	WithScore bool
	// BufferPages is the LRU buffer-pool capacity in pages. Defaults to
	// DefaultBufferPages.
	BufferPages int
	// PoolStripes is the number of independent LRU shards in the buffer
	// pool. 0 or 1 selects the classic single-lock pool (exact global LRU
	// order, reproducible serial I/O counts); higher values trade global
	// LRU order for lock-striped concurrency on the read path.
	PoolStripes int
	// Disk optionally supplies the backing store; by default an in-memory
	// disk is created.
	Disk storage.Disk
	// FillFactor is the fraction of node capacity used during bulk
	// loading, in (0,1]. Defaults to 1 (fully packed nodes, as in Hilbert
	// bulk loading).
	FillFactor float64
}

// DefaultBufferPages is the default buffer-pool capacity (4 MiB of 4 KiB
// pages), deliberately small relative to the experiment datasets so that
// the paper's I/O effects remain visible.
const DefaultBufferPages = 1024

// Entry is a single slot of a node. Leaf entries describe one indexed item
// (a data object or feature object); internal entries point at a child
// node and carry the aggregated MBR, maximum score and keyword summary of
// the whole subtree.
type Entry struct {
	// Rect is the MBR of the subtree; for leaf entries it is the
	// degenerate rectangle at the item's location.
	Rect geo.Rect
	// Child is the page of the child node, or storage.InvalidPage for
	// leaf entries.
	Child storage.PageID
	// ItemID identifies the indexed item (leaf entries only).
	ItemID int64
	// Score is the item's non-spatial score t.s, or for internal entries
	// the maximum score of any item below (e.s). Valid when the tree was
	// built WithScore.
	Score float64
	// Keywords is the item's keyword set t.W, or for internal entries the
	// union summary e.W. Valid when KeywordWidth > 0.
	Keywords kwset.Set
	// Leaf reports whether this entry describes an item rather than a
	// child node.
	Leaf bool
}

// Point returns the location of a leaf entry.
func (e Entry) Point() geo.Point { return e.Rect.Min }

// Node is the decoded form of one page.
type Node struct {
	Leaf    bool
	Entries []Entry
}

// Tree is a paged R-tree. It is not safe for concurrent mutation.
type Tree struct {
	cfg      Config
	pool     *storage.BufferPool
	root     storage.PageID
	height   int // 1 = root is a leaf
	size     int // number of items
	leafCap  int
	innerCap int
	minFill  int
	// splits counts overflow splits performed by Insert since the tree
	// was built or opened — the degradation signal incremental merges use
	// to decide when the tree has drifted far enough from its bulk-loaded
	// shape to warrant a full rebuild.
	splits int
	// exclude hides the listed item ids from every read path (see
	// WithExclude); nil on the canonical tree.
	exclude map[int64]struct{}
}

// ErrEmptyTree is returned by operations that need at least one item.
var ErrEmptyTree = errors.New("rtree: empty tree")

// New creates an empty tree.
func New(cfg Config) (*Tree, error) {
	if cfg.PageSize <= 0 {
		cfg.PageSize = storage.DefaultPageSize
	}
	if cfg.BufferPages <= 0 {
		cfg.BufferPages = DefaultBufferPages
	}
	if cfg.FillFactor <= 0 || cfg.FillFactor > 1 {
		cfg.FillFactor = 1
	}
	if cfg.Disk == nil {
		cfg.Disk = storage.NewMemDisk(cfg.PageSize)
	}
	t := &Tree{
		cfg:  cfg,
		pool: storage.NewStripedBufferPool(cfg.Disk, cfg.BufferPages, cfg.PoolStripes),
	}
	t.leafCap = nodeCapacity(cfg, true)
	t.innerCap = nodeCapacity(cfg, false)
	if t.leafCap < 2 || t.innerCap < 2 {
		return nil, fmt.Errorf("rtree: page size %d too small for keyword width %d",
			cfg.PageSize, cfg.KeywordWidth)
	}
	t.minFill = t.innerCap * 2 / 5 // 40% minimum fill on splits
	if t.minFill < 1 {
		t.minFill = 1
	}
	root, err := t.writeNode(&Node{Leaf: true})
	if err != nil {
		return nil, err
	}
	t.root = root
	t.height = 1
	return t, nil
}

// nodeCapacity computes how many entries of the given kind fit in a page.
func nodeCapacity(cfg Config, leaf bool) int {
	var entry int
	if leaf {
		entry = 8 + 16 // itemID + point
	} else {
		entry = 4 + 32 // child + rect
	}
	if cfg.WithScore {
		entry += 8
	}
	entry += 8 * kwWords(cfg.KeywordWidth)
	return (cfg.PageSize - nodeHeaderSize) / entry
}

// kwWords returns the number of 64-bit words needed for a keyword width.
func kwWords(width int) int { return (width + 63) / 64 }

// Config returns the tree's configuration.
func (t *Tree) Config() Config { return t.cfg }

// Pool exposes the buffer pool, whose Stats provide the paper's I/O
// metric.
func (t *Tree) Pool() *storage.BufferPool { return t.pool }

// WithPool returns a read view of the tree that routes page access through
// p — typically a Session handle of the tree's own pool, so that one
// query's reads are charged to its private accumulator while the page
// cache stays shared. The view aliases the tree's structure and must not
// be mutated (no Insert/Delete/BulkLoad).
func (t *Tree) WithPool(p *storage.BufferPool) *Tree {
	c := *t
	c.pool = p
	return &c
}

// WithExclude returns a read view of the tree that hides the leaf entries
// whose item ids appear in dead — the tombstone filter of the live-ingest
// overlay. Filtering happens in Node, which every search primitive routes
// through, so RangeSearch, AscendDistance, SearchPolygon, All and Leaves
// never surface a hidden item. Internal-node aggregates still cover the
// hidden items; bounds stay sound upper bounds, merely looser. The view
// aliases the tree's structure and must not be mutated; Len keeps
// reporting the unfiltered item count.
func (t *Tree) WithExclude(dead map[int64]struct{}) *Tree {
	if len(dead) == 0 {
		return t
	}
	c := *t
	c.exclude = dead
	return &c
}

// Root returns the page id of the root node.
func (t *Tree) Root() storage.PageID { return t.root }

// Height returns the tree height (1 when the root is a leaf).
func (t *Tree) Height() int { return t.height }

// Len returns the number of indexed items.
func (t *Tree) Len() int { return t.size }

// Splits returns the number of overflow splits Insert has performed
// since the tree was built or opened.
func (t *Tree) Splits() int { return t.splits }

// LeafCapacity returns the maximum number of entries in a leaf node.
func (t *Tree) LeafCapacity() int { return t.leafCap }

// InnerCapacity returns the maximum number of entries in an internal node.
func (t *Tree) InnerCapacity() int { return t.innerCap }

// Node reads and decodes the node stored at page id. The decode cost is
// CPU work on every visit, mirroring a real disk-based index. On a
// WithExclude view, tombstoned leaf entries are dropped from the freshly
// decoded node before it is returned.
func (t *Tree) Node(id storage.PageID) (*Node, error) {
	data, err := t.pool.Get(id)
	if err != nil {
		return nil, err
	}
	n, err := t.decodeNode(data)
	if err != nil || len(t.exclude) == 0 || !n.Leaf {
		return n, err
	}
	kept := n.Entries[:0]
	for _, e := range n.Entries {
		if _, dead := t.exclude[e.ItemID]; !dead {
			kept = append(kept, e)
		}
	}
	n.Entries = kept
	return n, nil
}

// RootEntry returns a synthetic internal entry describing the whole tree:
// its MBR, maximum score and keyword summary. Search algorithms seed their
// priority queues with it.
func (t *Tree) RootEntry() (Entry, error) {
	n, err := t.Node(t.root)
	if err != nil {
		return Entry{}, err
	}
	e := Entry{
		Rect:     geo.EmptyRect(),
		Child:    t.root,
		Keywords: kwset.NewSet(t.cfg.KeywordWidth),
	}
	for _, c := range n.Entries {
		e.Rect = e.Rect.Union(c.Rect)
		if c.Score > e.Score {
			e.Score = c.Score
		}
		e.Keywords.UnionInPlace(c.Keywords)
	}
	return e, nil
}

// writeNode serializes n to a fresh page and returns its id.
func (t *Tree) writeNode(n *Node) (storage.PageID, error) {
	id, err := t.cfg.Disk.Allocate()
	if err != nil {
		return storage.InvalidPage, err
	}
	return id, t.updateNode(id, n)
}

// updateNode re-serializes n into an existing page.
func (t *Tree) updateNode(id storage.PageID, n *Node) error {
	buf, err := t.encodeNode(n)
	if err != nil {
		return err
	}
	return t.pool.WriteThrough(id, buf)
}

// entryAggregate folds a node's entries into the parent entry that should
// describe it.
func (t *Tree) entryAggregate(child storage.PageID, n *Node) Entry {
	e := Entry{
		Rect:     geo.EmptyRect(),
		Child:    child,
		Keywords: kwset.NewSet(t.cfg.KeywordWidth),
	}
	for _, c := range n.Entries {
		e.Rect = e.Rect.Union(c.Rect)
		if c.Score > e.Score {
			e.Score = c.Score
		}
		e.Keywords.UnionInPlace(c.Keywords)
	}
	return e
}

// Item is the caller-facing description of an indexed object, used for
// bulk loading and insertion.
type Item struct {
	ID       int64
	Location geo.Point
	Score    float64
	Keywords kwset.Set
}

// entryOf converts an Item into a leaf entry.
func (t *Tree) entryOf(it Item) Entry {
	kw := it.Keywords
	if t.cfg.KeywordWidth > 0 && kw.Width() == 0 {
		kw = kwset.NewSet(t.cfg.KeywordWidth)
	}
	return Entry{
		Rect:     geo.RectOf(it.Location),
		Child:    storage.InvalidPage,
		ItemID:   it.ID,
		Score:    it.Score,
		Keywords: kw,
		Leaf:     true,
	}
}

// CheckInvariants walks the whole tree verifying structural invariants:
// every child entry's MBR, max score and keyword summary are covered by
// the parent entry, leaves are all at the same depth, and the item count
// matches Len. It is used by tests and returns a descriptive error on the
// first violation.
func (t *Tree) CheckInvariants() error {
	count, err := t.checkNode(t.root, 1, nil)
	if err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("rtree: item count %d != Len %d", count, t.size)
	}
	return nil
}

// checkNode verifies the node at id (depth from root = d) against the
// parent entry, returning the number of items in the subtree.
func (t *Tree) checkNode(id storage.PageID, d int, parent *Entry) (int, error) {
	n, err := t.Node(id)
	if err != nil {
		return 0, err
	}
	if n.Leaf != (d == t.height) {
		return 0, fmt.Errorf("rtree: node %d at depth %d leaf=%v height=%d", id, d, n.Leaf, t.height)
	}
	items := 0
	for _, e := range n.Entries {
		if parent != nil {
			if !parent.Rect.ContainsRect(e.Rect) {
				return 0, fmt.Errorf("rtree: node %d entry MBR %v outside parent %v", id, e.Rect, parent.Rect)
			}
			if t.cfg.WithScore && e.Score > parent.Score+1e-12 {
				return 0, fmt.Errorf("rtree: node %d score %v exceeds parent %v", id, e.Score, parent.Score)
			}
			if t.cfg.KeywordWidth > 0 {
				if e.Keywords.UnionCount(parent.Keywords) != parent.Keywords.Count() {
					return 0, fmt.Errorf("rtree: node %d keywords not contained in parent summary", id)
				}
			}
		}
		if n.Leaf {
			if !e.Leaf {
				return 0, fmt.Errorf("rtree: leaf node %d holds non-leaf entry", id)
			}
			items++
			continue
		}
		if e.Leaf {
			return 0, fmt.Errorf("rtree: internal node %d holds leaf entry", id)
		}
		e := e
		sub, err := t.checkNode(e.Child, d+1, &e)
		if err != nil {
			return 0, err
		}
		items += sub
	}
	return items, nil
}

// epsilon for floating-point score comparisons within the tree.
const scoreEps = 1e-12

// almostLE reports a ≤ b up to floating-point jitter.
func almostLE(a, b float64) bool { return a <= b+scoreEps }

var _ = almostLE // referenced by tests

// infinity shorthand.
var inf = math.Inf(1)

// Meta is the small amount of tree state that lives outside the pages;
// persisting it alongside the page dump allows reopening a built tree.
type Meta struct {
	Root   storage.PageID `json:"root"`
	Height int            `json:"height"`
	Size   int            `json:"size"`
}

// Meta returns the tree's out-of-page state.
func (t *Tree) Meta() Meta { return Meta{Root: t.root, Height: t.height, Size: t.size} }

// Open reconstructs a tree around an existing disk (typically loaded from
// a page dump) and its saved Meta. The Config must match the one the tree
// was built with — page size and keyword width determine the page layout.
func Open(cfg Config, meta Meta) (*Tree, error) {
	if cfg.Disk == nil {
		return nil, errors.New("rtree: Open requires cfg.Disk")
	}
	if cfg.PageSize <= 0 {
		cfg.PageSize = cfg.Disk.PageSize()
	}
	if cfg.PageSize != cfg.Disk.PageSize() {
		return nil, fmt.Errorf("rtree: config page size %d != disk page size %d",
			cfg.PageSize, cfg.Disk.PageSize())
	}
	if cfg.BufferPages <= 0 {
		cfg.BufferPages = DefaultBufferPages
	}
	if cfg.FillFactor <= 0 || cfg.FillFactor > 1 {
		cfg.FillFactor = 1
	}
	t := &Tree{
		cfg:  cfg,
		pool: storage.NewStripedBufferPool(cfg.Disk, cfg.BufferPages, cfg.PoolStripes),
	}
	t.leafCap = nodeCapacity(cfg, true)
	t.innerCap = nodeCapacity(cfg, false)
	if t.leafCap < 2 || t.innerCap < 2 {
		return nil, fmt.Errorf("rtree: page size %d too small for keyword width %d",
			cfg.PageSize, cfg.KeywordWidth)
	}
	t.minFill = t.innerCap * 2 / 5
	if t.minFill < 1 {
		t.minFill = 1
	}
	if int(meta.Root) >= cfg.Disk.NumPages() {
		return nil, fmt.Errorf("rtree: meta root %d beyond disk (%d pages)",
			meta.Root, cfg.Disk.NumPages())
	}
	if meta.Height < 1 || meta.Size < 0 {
		return nil, fmt.Errorf("rtree: implausible meta %+v", meta)
	}
	t.root, t.height, t.size = meta.Root, meta.Height, meta.Size
	return t, nil
}
