package rtree

import (
	"math/rand"
	"testing"

	"stpq/internal/geo"
)

// WithExclude must hide tombstoned items from every search primitive while
// leaving the canonical tree untouched.
func TestWithExcludeHidesItems(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := newTestTree(t, Config{PageSize: 512, KeywordWidth: 16, WithScore: true})
	items := randomItems(rng, 400, 16)
	for _, it := range items {
		if err := tr.Insert(it); err != nil {
			t.Fatal(err)
		}
	}
	dead := map[int64]struct{}{}
	for i := 0; i < 120; i++ {
		dead[int64(rng.Intn(400))] = struct{}{}
	}
	view := tr.WithExclude(dead)

	collect := func(walk func(fn func(Entry) bool) error) map[int64]bool {
		t.Helper()
		seen := map[int64]bool{}
		if err := walk(func(e Entry) bool {
			seen[e.ItemID] = true
			return true
		}); err != nil {
			t.Fatal(err)
		}
		return seen
	}
	everything := geo.Rect{Min: geo.Point{X: -1, Y: -1}, Max: geo.Point{X: 2, Y: 2}}
	checks := map[string]map[int64]bool{
		"SearchRect": collect(func(fn func(Entry) bool) error {
			return view.SearchRect(everything, fn)
		}),
		"RangeSearch": collect(func(fn func(Entry) bool) error {
			return view.RangeSearch(geo.Point{X: 0.5, Y: 0.5}, 2, fn)
		}),
		"AscendDistance": collect(func(fn func(Entry) bool) error {
			return view.AscendDistance(geo.Point{X: 0.5, Y: 0.5}, func(e Entry, _ float64) bool {
				return fn(e)
			})
		}),
		"Leaves": collect(func(fn func(Entry) bool) error {
			return view.Leaves(func(es []Entry) bool {
				for _, e := range es {
					if !fn(e) {
						return false
					}
				}
				return true
			})
		}),
	}
	if all, err := view.All(); err != nil {
		t.Fatal(err)
	} else {
		seen := map[int64]bool{}
		for _, e := range all {
			seen[e.ItemID] = true
		}
		checks["All"] = seen
	}
	for name, seen := range checks {
		for id := range dead {
			if seen[id] {
				t.Errorf("%s: tombstoned item %d surfaced", name, id)
			}
		}
		if len(seen) != len(items)-len(dead) {
			t.Errorf("%s: saw %d items, want %d", name, len(seen), len(items)-len(dead))
		}
	}

	// The canonical tree still sees everything.
	base := collect(func(fn func(Entry) bool) error {
		return tr.SearchRect(everything, fn)
	})
	if len(base) != len(items) {
		t.Fatalf("canonical tree saw %d items, want %d", len(base), len(items))
	}
	// An empty exclusion set is a no-op view.
	if tr.WithExclude(nil) != tr {
		t.Error("WithExclude(nil) should return the receiver")
	}
}

// The no-split insert path maintains parent aggregates by absorbing the
// inserted entry (decode→OR→encode for keywords); the result must be
// indistinguishable from a full per-node re-fold — CheckInvariants verifies
// containment, and a reference fold verifies tightness at the root.
func TestInsertAbsorbMatchesFullRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := newTestTree(t, Config{PageSize: 512, KeywordWidth: 64, WithScore: true})
	items := randomItems(rng, 600, 64)
	for i, it := range items {
		if err := tr.Insert(it); err != nil {
			t.Fatal(err)
		}
		if i%97 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Root summary must be exactly the fold of all items, not merely a
	// superset: absorb keeps aggregates tight.
	root, err := tr.RootEntry()
	if err != nil {
		t.Fatal(err)
	}
	wantKW := items[0].Keywords.Clone()
	wantScore := items[0].Score
	for _, it := range items[1:] {
		wantKW.UnionInPlace(it.Keywords)
		if it.Score > wantScore {
			wantScore = it.Score
		}
	}
	if !root.Keywords.Equal(wantKW) {
		t.Error("root keyword summary is not the exact union of item keywords")
	}
	if root.Score != wantScore {
		t.Errorf("root score = %v, want %v", root.Score, wantScore)
	}
}
