package stpq

// approx_test.go exercises the MinHash/LSH fast tier through the public
// API: approx mode at the top of the recall range must reproduce exact
// results on the paper's worked example, skip-verify mode must recover
// most of the exact top-k on random data while recording its pruning
// work in Stats, and Explain must surface the chosen LSH parameters.

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// approxRandomDB builds a 500-feature random dataset over a signature-file
// IR² index — the configuration where skip-verify has reads to skip.
func approxRandomDB(t *testing.T) (*DB, []string) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	db := New(Config{IndexKind: IR2, SignatureBits: 8, PageSize: 1024})
	objs := make([]Object, 300)
	for i := range objs {
		objs[i] = Object{ID: int64(i), X: rng.Float64(), Y: rng.Float64()}
	}
	db.AddObjects(objs)
	words := []string{"pizza", "sushi", "tacos", "ramen", "bagels", "pho", "curry", "bbq",
		"noodles", "kebab", "falafel", "gyros", "paella", "dumplings", "waffles", "crepes"}
	feats := make([]Feature, 500)
	for i := range feats {
		feats[i] = Feature{
			ID: int64(i), X: rng.Float64(), Y: rng.Float64(), Score: rng.Float64(),
			Keywords: []string{words[rng.Intn(len(words))], words[rng.Intn(len(words))]},
		}
	}
	db.AddFeatureSet("food", feats)
	if err := db.Build(); err != nil {
		t.Fatal(err)
	}
	return db, words
}

// At the top of the recall range the LSH filter keeps verification on and
// the candidate test is "any of 128 minima agree" — for the paper's tiny
// keyword sets a true match slips through with probability < 1e-12, so
// the worked example must come back exactly.
func TestApproxHighRecallMatchesPaperExample(t *testing.T) {
	db := paperDB(t, Config{IndexKind: IR2, SignatureBits: 8})
	q := paperQuery(3, STPS)
	exact, _, err := db.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	q.Mode = ModeApprox
	q.Recall = 0.99
	approx, stats, err := db.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(approx) != len(exact) {
		t.Fatalf("approx %d results, exact %d", len(approx), len(exact))
	}
	for i := range approx {
		if approx[i].ID != exact[i].ID || math.Abs(approx[i].Score-exact[i].Score) > 1e-9 {
			t.Errorf("rank %d: approx (%d, %v), exact (%d, %v)",
				i, approx[i].ID, approx[i].Score, exact[i].ID, exact[i].Score)
		}
	}
	if stats.ApproxCandidates == 0 {
		t.Error("approx mode recorded no candidate tests")
	}
}

// Skip-verify mode (the default 0.9 target) answers from MinHash estimates
// without touching the record file; it must recover most of the exact
// top-k and report both pruning and skipped verification reads.
func TestApproxSkipVerifyRecallAndCounters(t *testing.T) {
	db, words := approxRandomDB(t)
	rng := rand.New(rand.NewSource(99))
	var recallSum float64
	var queries int
	var totalCands, totalSkipped int64
	for trial := 0; trial < 20; trial++ {
		q := Query{
			K: 5, Radius: 0.1, Lambda: 0.5,
			Keywords: map[string][]string{"food": {
				words[rng.Intn(len(words))], words[rng.Intn(len(words))], words[rng.Intn(len(words))],
			}},
		}
		exact, _, err := db.TopK(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(exact) == 0 {
			continue
		}
		q.Mode = ModeApprox
		q.Recall = 0.9
		approx, stats, err := db.TopK(q)
		if err != nil {
			t.Fatal(err)
		}
		want := make(map[int64]bool, len(exact))
		for _, r := range exact {
			want[r.ID] = true
		}
		hit := 0
		for _, r := range approx {
			if want[r.ID] {
				hit++
			}
		}
		recallSum += float64(hit) / float64(len(exact))
		queries++
		totalCands += stats.ApproxCandidates
		totalSkipped += stats.ApproxSkippedReads
	}
	if queries == 0 {
		t.Fatal("no non-empty exact answers in the workload")
	}
	if mean := recallSum / float64(queries); mean < 0.8 {
		t.Errorf("mean recall@k %.3f below 0.8 at a 0.9 target", mean)
	}
	if totalCands == 0 {
		t.Error("no candidate tests recorded")
	}
	if totalSkipped == 0 {
		t.Error("skip-verify mode skipped no verification reads")
	}
}

// Exact mode must stay byte-identical whether or not the Mode field is
// spelled out, and must never populate the approx counters.
func TestExactModeUnchanged(t *testing.T) {
	db := paperDB(t, Config{})
	q := paperQuery(3, STPS)
	implicit, stats, err := db.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ApproxCandidates != 0 || stats.ApproxPruned != 0 || stats.ApproxSkippedReads != 0 {
		t.Errorf("exact mode populated approx counters: %+v", stats)
	}
	q.Mode = ModeExact
	explicit, _, err := db.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(implicit) != len(explicit) {
		t.Fatalf("explicit exact changed the result count")
	}
	for i := range implicit {
		if implicit[i] != explicit[i] {
			t.Errorf("rank %d: %+v vs %+v", i, implicit[i], explicit[i])
		}
	}
}

func TestApproxRejectedInvalid(t *testing.T) {
	db := paperDB(t, Config{})
	q := paperQuery(3, STPS)
	q.Mode = "fuzzy"
	if _, _, err := db.TopK(q); err == nil {
		t.Error("unknown mode must be rejected")
	}
	q.Mode = ModeApprox
	q.Recall = 1.5
	if _, _, err := db.TopK(q); err == nil {
		t.Error("recall above 1 must be rejected")
	}
}

func TestExplainShowsApproxParams(t *testing.T) {
	db := paperDB(t, Config{})
	q := paperQuery(3, STPS)
	ex, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Mode != "" || strings.Contains(ex.String(), "mode: approx") {
		t.Errorf("exact explain mentions approx: %q", ex.String())
	}
	q.Mode = ModeApprox
	q.Recall = 0.9
	ex, err = db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Mode != ModeApprox || ex.Recall != 0.9 {
		t.Errorf("explain mode %q recall %v", ex.Mode, ex.Recall)
	}
	if ex.ApproxBands < 1 || ex.ApproxRows < 1 {
		t.Errorf("explain LSH params %d x %d", ex.ApproxBands, ex.ApproxRows)
	}
	if ex.ApproxVerify {
		t.Error("0.9 target should skip verification")
	}
	if !strings.Contains(ex.String(), "mode: approx") {
		t.Errorf("rendered explain missing approx line: %q", ex.String())
	}
}
