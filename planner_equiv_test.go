package stpq

// planner_equiv_test.go is the planner's correctness contract: a query with
// Algorithm: Auto must return byte-identical results (ids, scores, order) to
// both forced algorithms — cold (the deterministic STPS fallback) and after
// the per-shape statistics have warmed enough for the planner to make a
// real cost-based choice. Run under -race in CI.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func TestAutoPlannerMatchesForced(t *testing.T) {
	objs, food, cafes, words := shardTestData(11)
	for _, kind := range []IndexKind{SRT, IR2} {
		for _, shards := range []int{0, 3} {
			cfg := Config{IndexKind: kind, PageSize: 1024}
			if shards > 0 {
				cfg.ShardCount = shards
				cfg.ShardParallelism = 2
			}
			name := fmt.Sprintf("%v/shards=%d", kind, shards)
			t.Run(name, func(t *testing.T) {
				db := buildShardTestDB(t, cfg, objs, food, cafes)
				rng := rand.New(rand.NewSource(23))
				for _, variant := range []Variant{Range, Influence, NearestNeighbor} {
					q := Query{
						K: 8, Radius: 0.06, Lambda: 0.5,
						Keywords: map[string][]string{
							"food":  {words[rng.Intn(len(words))], words[rng.Intn(len(words))]},
							"cafes": {words[rng.Intn(len(words))]},
						},
						Variant: variant,
					}

					// Cold: no statistics yet, Auto takes the deterministic
					// STPS fallback — and must still match both forced runs.
					q.Algorithm = Auto
					coldAuto, _, err := db.TopK(q)
					if err != nil {
						t.Fatal(err)
					}
					ex, err := db.Explain(q)
					if err != nil {
						t.Fatal(err)
					}
					if ex.Plan == nil || !ex.Plan.Fallback || ex.Plan.Algorithm != "stps" {
						t.Fatalf("%v cold plan: %+v, want stps fallback", variant, ex.Plan)
					}

					// Warm both candidate shapes past the prediction floor.
					// Forced runs record telemetry under their own algorithm
					// name, which is exactly what feeds the planner.
					var want map[Algorithm][]Result
					want = make(map[Algorithm][]Result)
					for _, alg := range []Algorithm{STPS, STDS} {
						q.Algorithm = alg
						for i := 0; i < MinPredictSamples; i++ {
							res, _, err := db.TopK(q)
							if err != nil {
								t.Fatal(err)
							}
							want[alg] = res
						}
					}
					if !reflect.DeepEqual(want[STPS], want[STDS]) {
						t.Fatalf("%v: forced algorithms disagree — test data broken", variant)
					}
					if !reflect.DeepEqual(coldAuto, want[STPS]) {
						t.Fatalf("%v cold auto != forced:\nauto   %v\nforced %v", variant, coldAuto, want[STPS])
					}

					// Warm: the planner now compares real means; whatever it
					// picks must be byte-identical to the forced baselines.
					q.Algorithm = Auto
					warmAuto, _, err := db.TopK(q)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(warmAuto, want[STPS]) {
						t.Fatalf("%v warm auto != forced:\nauto   %v\nforced %v", variant, warmAuto, want[STPS])
					}
					ex, err = db.Explain(q)
					if err != nil {
						t.Fatal(err)
					}
					if ex.Plan == nil || ex.Plan.Fallback || !ex.Plan.CostKnown {
						t.Fatalf("%v warm plan still cold: %+v", variant, ex.Plan)
					}
					if len(ex.Plan.Candidates) != 2 {
						t.Fatalf("%v warm plan candidates: %+v", variant, ex.Plan.Candidates)
					}
					if shards > 0 && ex.Plan.Fanout < 0 {
						t.Fatalf("%v negative fanout: %+v", variant, ex.Plan)
					}
				}
			})
		}
	}
}

// TestAutoPlannerPredictCost pins the serve-admission input: cold shapes
// predict unknown, warmed shapes predict a positive cost for the shape the
// planner resolved.
func TestAutoPlannerPredictCost(t *testing.T) {
	objs, food, cafes, words := shardTestData(13)
	db := buildShardTestDB(t, Config{PageSize: 1024}, objs, food, cafes)
	snap, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	q := Query{
		K: 5, Radius: 0.05, Lambda: 0.5,
		Keywords:  map[string][]string{"food": {words[0]}, "cafes": {words[1]}},
		Algorithm: Auto,
	}
	shape, cost, known, err := snap.PredictCost(q)
	if err != nil {
		t.Fatal(err)
	}
	if known || cost != 0 {
		t.Fatalf("cold predict: shape %q cost %v known %v", shape, cost, known)
	}
	for i := 0; i < MinPredictSamples; i++ {
		if _, _, err := db.TopK(q); err != nil {
			t.Fatal(err)
		}
	}
	shape, cost, known, err = snap.PredictCost(q)
	if err != nil {
		t.Fatal(err)
	}
	if !known || cost <= 0 || shape == "" {
		t.Fatalf("warm predict: shape %q cost %v known %v", shape, cost, known)
	}
}
