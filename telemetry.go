package stpq

// telemetry.go is the public query-telemetry surface: the per-query event
// log (RecentQueries), the slow-query log (SlowQueries), and the per-shape
// cost statistics (QueryShapes) that back EXPLAIN's predictions. All three
// are always on with bounded memory; see DESIGN.md §12.

import (
	"time"

	"stpq/internal/obs"
)

// TraceMode is a query's explicit tracing decision.
type TraceMode int

const (
	// TraceDefault defers to the engine toggle (Config.Tracing /
	// DB.SetTracing) and, failing that, the probabilistic sampler
	// (Config.TraceSampleRate).
	TraceDefault TraceMode = iota
	// TraceOn forces span collection for this query.
	TraceOn
	// TraceOff suppresses span collection for this query.
	TraceOff
)

// QueryEvent is one query's structured record in the event log: identity,
// canonical shape, cost counters and outcome, plus the full span tree for
// sampled, explicitly traced, or slow queries.
type QueryEvent struct {
	// Seq is the event's position in the log's append order (1-based,
	// monotonically increasing across ring wrap-arounds).
	Seq uint64 `json:"seq"`
	// Start is when query execution began.
	Start time.Time `json:"start"`
	// RequestID attributes the event to one request; empty when the caller
	// did not set one.
	RequestID string `json:"request_id,omitempty"`
	// Shape is the canonical query shape label — the join key into
	// QueryShapes.
	Shape string `json:"shape"`
	// Algorithm is "stds" or "stps"; Variant the score variant name.
	Algorithm string  `json:"algorithm"`
	Variant   string  `json:"variant"`
	K         int     `json:"k"`
	Radius    float64 `json:"radius,omitempty"`
	// Duration is the measured wall time; IOTime the modeled disk time.
	Duration       time.Duration `json:"duration_ns"`
	IOTime         time.Duration `json:"io_ns"`
	LogicalReads   int64         `json:"logical_reads"`
	PhysicalReads  int64         `json:"physical_reads"`
	Combinations   int           `json:"combinations"`
	FeaturesPulled int           `json:"features_pulled"`
	ObjectsScored  int           `json:"objects_scored"`
	// ShardFanout and ShardPruned count shards queried / skipped by the
	// scatter-gather of a sharded DB.
	ShardFanout int `json:"shard_fanout,omitempty"`
	ShardPruned int `json:"shard_pruned,omitempty"`
	// CacheHit marks queries answered from a serving-layer result cache.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Sampled reports that the span tree was kept by the sampler or an
	// explicit tracing request; Slow that the query crossed
	// Config.SlowQueryThreshold.
	Sampled bool `json:"sampled,omitempty"`
	Slow    bool `json:"slow,omitempty"`
	// Outcome is "ok" or "error"; Error carries the error text.
	Outcome string `json:"outcome"`
	Error   string `json:"error,omitempty"`
	// Trace is the full span tree, present only when Sampled or Slow.
	Trace *Span `json:"trace,omitempty"`
}

// fromObsEvent copies an internal event record into the public type.
func fromObsEvent(ev obs.QueryEvent) QueryEvent {
	return QueryEvent{
		Seq:            ev.Seq,
		Start:          ev.Start,
		RequestID:      ev.RequestID,
		Shape:          ev.Shape,
		Algorithm:      ev.Algorithm,
		Variant:        ev.Variant,
		K:              ev.K,
		Radius:         ev.Radius,
		Duration:       ev.Duration,
		IOTime:         ev.IOTime,
		LogicalReads:   ev.LogicalReads,
		PhysicalReads:  ev.PhysicalReads,
		Combinations:   ev.Combinations,
		FeaturesPulled: ev.FeaturesPulled,
		ObjectsScored:  ev.ObjectsScored,
		ShardFanout:    ev.ShardFanout,
		ShardPruned:    ev.ShardPruned,
		CacheHit:       ev.CacheHit,
		Sampled:        ev.Sampled,
		Slow:           ev.Slow,
		Outcome:        ev.Outcome,
		Error:          ev.Error,
		Trace:          fromObsSpan(ev.Trace),
	}
}

// fromObsEvents converts a batch, preserving order (newest first).
func fromObsEvents(evs []obs.QueryEvent) []QueryEvent {
	out := make([]QueryEvent, len(evs))
	for i, ev := range evs {
		out[i] = fromObsEvent(ev)
	}
	return out
}

// RecentQueries returns up to n of the most recent query event records,
// newest first (n ≤ 0 returns all held). The log is a fixed-size ring
// (Config.EventLogEntries) recording every query — successes, failures and
// cache hits — with negligible overhead; full span trees are attached only
// for sampled, explicitly traced, or slow queries.
func (db *DB) RecentQueries(n int) []QueryEvent {
	db.mu.RLock()
	tel := db.tel
	db.mu.RUnlock()
	if tel == nil {
		return nil
	}
	return fromObsEvents(tel.Events.Recent(n))
}

// SlowQueries returns up to n of the most recent queries whose CPU time
// reached Config.SlowQueryThreshold, newest first, each with a complete
// span tree regardless of the sampling rate. Empty when no threshold is
// configured.
func (db *DB) SlowQueries(n int) []QueryEvent {
	db.mu.RLock()
	tel := db.tel
	db.mu.RUnlock()
	if tel == nil {
		return nil
	}
	return fromObsEvents(tel.Slow.Recent(n))
}

// ShapeStat is the aggregate cost profile of one canonical query shape:
// how many times the shape ran and its mean costs. These means are what
// DB.Explain reports as predicted cost.
type ShapeStat struct {
	Shape             string        `json:"shape"`
	Samples           int64         `json:"samples"`
	MeanDuration      time.Duration `json:"mean_duration_ns"`
	MeanIOTime        time.Duration `json:"mean_io_ns"`
	MeanLogicalReads  float64       `json:"mean_logical_reads"`
	MeanPhysicalReads float64       `json:"mean_physical_reads"`
	MeanCombinations  float64       `json:"mean_combinations"`
}

// fromObsPrediction copies an internal shape profile into the public type.
func fromObsPrediction(p obs.ShapePrediction) ShapeStat {
	return ShapeStat{
		Shape:             p.Shape,
		Samples:           p.Samples,
		MeanDuration:      p.MeanDuration,
		MeanIOTime:        p.MeanIOTime,
		MeanLogicalReads:  p.MeanLogicalReads,
		MeanPhysicalReads: p.MeanPhysicalReads,
		MeanCombinations:  p.MeanCombinations,
	}
}

// QueryShapes returns the recorded cost profile of every query shape seen
// so far, most-queried first. The same data is exported in Prometheus form
// (stpq_shape_*_total) by WriteMetricsPrometheus.
func (db *DB) QueryShapes() []ShapeStat {
	db.mu.RLock()
	tel := db.tel
	db.mu.RUnlock()
	if tel == nil {
		return nil
	}
	rows := tel.Shapes.Rows()
	out := make([]ShapeStat, len(rows))
	for i, p := range rows {
		out[i] = fromObsPrediction(p)
	}
	return out
}
