package stpq

// ingest_test.go verifies the live write path end to end: overlay answers
// must be byte-identical to a from-scratch rebuild after every batch
// (insert and delete, both index kinds, all three score variants, both
// algorithms), WAL replay after a simulated crash must reconverge, and
// Checkpoint must trim the log while keeping recovery exact.

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// ingestWords is the closed keyword pool of the equivalence tests. The
// immortal seed features cover the whole pool, so the live DB and the
// from-scratch oracle intern identical vocabularies and LookupSet drops
// nothing on either side.
var ingestWords = []string{"pizza", "sushi", "tacos", "ramen", "bagels",
	"pho", "curry", "bbq", "espresso", "latte", "tea", "cocoa"}

// ingestShadow mirrors the logical content of a live DB: the ground truth
// the oracle rebuild is constructed from.
type ingestShadow struct {
	objs  map[int64]Object
	feats map[string]map[int64]Feature
}

func newIngestShadow(objs []Object, sets map[string][]Feature) *ingestShadow {
	s := &ingestShadow{objs: map[int64]Object{}, feats: map[string]map[int64]Feature{}}
	for _, o := range objs {
		s.objs[o.ID] = o
	}
	for name, fs := range sets {
		s.feats[name] = map[int64]Feature{}
		for _, f := range fs {
			s.feats[name][f.ID] = f
		}
	}
	return s
}

func (s *ingestShadow) apply(m Mutation) {
	switch m.Op {
	case OpUpsertObject:
		s.objs[m.Object.ID] = *m.Object
	case OpDeleteObject:
		delete(s.objs, m.ID)
	case OpUpsertFeature:
		s.feats[m.Set][m.Feature.ID] = *m.Feature
	case OpDeleteFeature:
		delete(s.feats[m.Set], m.ID)
	}
}

// oracle builds a fresh DB from the shadow state (ids ascending — order is
// irrelevant to scores, which are per-set max/sum over the same multiset).
func (s *ingestShadow) oracle(t *testing.T, cfg Config) *DB {
	t.Helper()
	cfg.WALDir = ""
	db := New(cfg)
	ids := make([]int64, 0, len(s.objs))
	for id := range s.objs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	objs := make([]Object, len(ids))
	for i, id := range ids {
		objs[i] = s.objs[id]
	}
	db.AddObjects(objs)
	names := make([]string, 0, len(s.feats))
	for name := range s.feats {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fids := make([]int64, 0, len(s.feats[name]))
		for id := range s.feats[name] {
			fids = append(fids, id)
		}
		sort.Slice(fids, func(i, j int) bool { return fids[i] < fids[j] })
		fs := make([]Feature, len(fids))
		for i, id := range fids {
			fs[i] = s.feats[name][id]
		}
		db.AddFeatureSet(name, fs)
	}
	if err := db.Build(); err != nil {
		t.Fatalf("oracle build: %v", err)
	}
	return db
}

// ingestSeedData builds the initial dataset. The first len(ingestWords)
// features of each set are immortal: one word each, covering the pool.
func ingestSeedData(rng *rand.Rand, nObj, nFeat int) ([]Object, map[string][]Feature) {
	objs := make([]Object, nObj)
	for i := range objs {
		objs[i] = Object{ID: int64(i), X: rng.Float64(), Y: rng.Float64()}
	}
	sets := map[string][]Feature{}
	for _, name := range []string{"food", "cafes"} {
		fs := make([]Feature, nFeat)
		for i := range fs {
			var kws []string
			if i < len(ingestWords) {
				kws = []string{ingestWords[i]}
			} else {
				for _, w := range ingestWords {
					if rng.Intn(4) == 0 {
						kws = append(kws, w)
					}
				}
				if len(kws) == 0 {
					kws = []string{ingestWords[rng.Intn(len(ingestWords))]}
				}
			}
			fs[i] = Feature{ID: int64(i), X: rng.Float64(), Y: rng.Float64(),
				Score: rng.Float64(), Keywords: kws}
		}
		sets[name] = fs
	}
	return objs, sets
}

// randomMutations generates a batch against the shadow: object and feature
// upserts and deletes, never touching the immortal features.
func randomMutations(rng *rand.Rand, s *ingestShadow, n int) []Mutation {
	var muts []Mutation
	setNames := []string{"food", "cafes"}
	for len(muts) < n {
		switch rng.Intn(4) {
		case 0: // upsert object (new or overwrite)
			id := int64(rng.Intn(600))
			o := Object{ID: id, X: rng.Float64(), Y: rng.Float64()}
			muts = append(muts, Mutation{Op: OpUpsertObject, Object: &o})
		case 1: // delete a random live object (skip if none)
			if id, ok := randomKey(rng, s.objs); ok {
				muts = append(muts, Mutation{Op: OpDeleteObject, ID: id})
			}
		case 2: // upsert feature
			name := setNames[rng.Intn(2)]
			id := int64(len(ingestWords) + rng.Intn(600))
			var kws []string
			for _, w := range ingestWords {
				if rng.Intn(4) == 0 {
					kws = append(kws, w)
				}
			}
			f := Feature{ID: id, X: rng.Float64(), Y: rng.Float64(),
				Score: rng.Float64(), Keywords: kws}
			muts = append(muts, Mutation{Op: OpUpsertFeature, Set: name, Feature: &f})
		case 3: // delete a random mortal feature
			name := setNames[rng.Intn(2)]
			if id, ok := randomKey(rng, s.feats[name]); ok && id >= int64(len(ingestWords)) {
				muts = append(muts, Mutation{Op: OpDeleteFeature, Set: name, ID: id})
			}
		}
	}
	return muts
}

func randomKey[V any](rng *rand.Rand, m map[int64]V) (int64, bool) {
	if len(m) == 0 {
		return 0, false
	}
	ids := make([]int64, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids[rng.Intn(len(ids))], true
}

// assertSameTopK compares two DBs over both algorithms and all three
// variants, requiring bitwise-equal scores and identical id order.
func assertSameTopK(t *testing.T, tag string, live, oracle *DB, rng *rand.Rand) {
	t.Helper()
	kws := map[string][]string{
		"food":  {ingestWords[rng.Intn(len(ingestWords))], ingestWords[rng.Intn(len(ingestWords))]},
		"cafes": {ingestWords[rng.Intn(len(ingestWords))]},
	}
	for _, alg := range []Algorithm{STPS, STDS} {
		for _, v := range []Variant{Range, Influence, NearestNeighbor} {
			q := Query{K: 10, Radius: 0.08, Lambda: 0.5, Keywords: kws,
				Variant: v, Algorithm: alg}
			want, _, err := oracle.TopK(q)
			if err != nil {
				t.Fatalf("%s: oracle TopK(%v,%v): %v", tag, alg, v, err)
			}
			got, _, err := live.TopK(q)
			if err != nil {
				t.Fatalf("%s: live TopK(%v,%v): %v", tag, alg, v, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s alg=%v variant=%v: %d results, oracle has %d\n got %v\nwant %v",
					tag, alg, v, len(got), len(want), got, want)
			}
			for i := range want {
				if got[i].ID != want[i].ID ||
					math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) {
					t.Fatalf("%s alg=%v variant=%v: result %d diverges\n got %+v\nwant %+v",
						tag, alg, v, i, got[i], want[i])
				}
			}
		}
	}
}

// buildIngestDB builds a live DB with a WAL from the seed data.
func buildIngestDB(t *testing.T, cfg Config, objs []Object, sets map[string][]Feature) *DB {
	t.Helper()
	db := New(cfg)
	db.AddObjects(objs)
	for _, name := range []string{"food", "cafes"} {
		db.AddFeatureSet(name, sets[name])
	}
	if err := db.Build(); err != nil {
		t.Fatalf("Build: %v", err)
	}
	return db
}

// TestApplyOracleEquivalence is the acceptance gate of the ingest
// subsystem: after every randomized batch the overlay's answers are
// byte-identical to a from-scratch rebuild, for both index kinds.
func TestApplyOracleEquivalence(t *testing.T) {
	for _, kind := range []IndexKind{SRT, IR2} {
		t.Run(fmt.Sprintf("kind=%d", kind), func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			objs, sets := ingestSeedData(rng, 250, 120)
			cfg := Config{IndexKind: kind, PageSize: 1024, WALDir: t.TempDir(),
				AutoFlushOps: -1} // equivalence of the pure overlay first
			db := buildIngestDB(t, cfg, objs, sets)
			shadow := newIngestShadow(objs, sets)
			for round := 0; round < 6; round++ {
				muts := randomMutations(rng, shadow, 15)
				if err := db.Apply(muts); err != nil {
					t.Fatalf("round %d: Apply: %v", round, err)
				}
				for _, m := range muts {
					shadow.apply(m)
				}
				oracle := shadow.oracle(t, cfg)
				assertSameTopK(t, fmt.Sprintf("round %d", round), db, oracle, rng)
			}
			if db.PendingOps() == 0 {
				t.Fatal("expected unmerged delta with auto-flush disabled")
			}
			// Flush merges everything; answers must not move.
			if err := db.Flush(); err != nil {
				t.Fatalf("Flush: %v", err)
			}
			if db.PendingOps() != 0 {
				t.Fatalf("PendingOps after Flush = %d", db.PendingOps())
			}
			oracle := shadow.oracle(t, cfg)
			assertSameTopK(t, "after flush", db, oracle, rng)
		})
	}
}

// TestApplyAutoFlushMerges exercises the delta-threshold merge path: small
// AutoFlushOps forces repeated generation swaps mid-stream, and the
// answers still track the oracle.
func TestApplyAutoFlushMerges(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	objs, sets := ingestSeedData(rng, 200, 100)
	cfg := Config{PageSize: 1024, WALDir: t.TempDir(), AutoFlushOps: 20}
	db := buildIngestDB(t, cfg, objs, sets)
	shadow := newIngestShadow(objs, sets)
	for round := 0; round < 5; round++ {
		muts := randomMutations(rng, shadow, 12)
		if err := db.Apply(muts); err != nil {
			t.Fatalf("round %d: Apply: %v", round, err)
		}
		for _, m := range muts {
			shadow.apply(m)
		}
	}
	if m := db.Metrics().Counters["stpq_ingest_merges_total"]; m == 0 {
		t.Fatal("expected at least one auto-flush merge")
	}
	assertSameTopK(t, "after auto-flush stream", db, shadow.oracle(t, cfg), rng)
}

// TestApplyNewKeywordForcesMerge: a feature with a keyword outside the
// indexed vocabulary cannot be absorbed by the fixed-width delta; Apply
// must merge instead, and the new keyword must be queryable.
func TestApplyNewKeywordForcesMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	objs, sets := ingestSeedData(rng, 100, 60)
	cfg := Config{PageSize: 1024, WALDir: t.TempDir(), AutoFlushOps: -1}
	db := buildIngestDB(t, cfg, objs, sets)
	f := Feature{ID: 9001, X: 0.5, Y: 0.5, Score: 0.95, Keywords: []string{"szechuan"}}
	if err := db.Apply([]Mutation{{Op: OpUpsertFeature, Set: "food", Feature: &f}}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if db.PendingOps() != 0 {
		t.Fatalf("vocab-growing Apply left %d pending ops; want merged", db.PendingOps())
	}
	if m := db.Metrics().Counters["stpq_ingest_merges_total"]; m != 1 {
		t.Fatalf("merges = %d, want 1", m)
	}
	res, _, err := db.TopK(Query{K: 3, Radius: 0.2, Lambda: 0.5,
		Keywords: map[string][]string{"food": {"szechuan"}}})
	if err != nil {
		t.Fatalf("TopK on new keyword: %v", err)
	}
	if len(res) == 0 || res[0].Score == 0 {
		t.Fatalf("new keyword not queryable: %v", res)
	}
}

// TestWALReplayAfterCrash simulates a crash (the DB is abandoned without
// closing its WAL) and verifies a restarted process — same seed data, same
// WAL dir — reconverges to byte-identical answers.
func TestWALReplayAfterCrash(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	objs, sets := ingestSeedData(rng, 200, 100)
	walDir := t.TempDir()
	cfg := Config{PageSize: 1024, WALDir: walDir, AutoFlushOps: -1}
	db1 := buildIngestDB(t, cfg, objs, sets)
	shadow := newIngestShadow(objs, sets)
	for round := 0; round < 4; round++ {
		muts := randomMutations(rng, shadow, 10)
		if err := db1.Apply(muts); err != nil {
			t.Fatal(err)
		}
		for _, m := range muts {
			shadow.apply(m)
		}
	}
	// Crash: db1 is dropped with its delta unmerged and its WAL open.
	db2 := buildIngestDB(t, cfg, objs, sets)
	if got := db2.Metrics().Counters["stpq_ingest_replayed_total"]; got != 40 {
		t.Fatalf("replayed %d mutations, want 40", got)
	}
	if db2.WALSeq() != db1.WALSeq() {
		t.Fatalf("replayed WALSeq %d, want %d", db2.WALSeq(), db1.WALSeq())
	}
	rngQ := rand.New(rand.NewSource(99))
	assertSameTopK(t, "after replay", db2, shadow.oracle(t, cfg), rngQ)
}

// TestCheckpointTrimsAndRecovers: Checkpoint persists the merged state and
// drops sealed WAL segments; Open auto-attaches, replays only the records
// after the checkpoint, and further Applies work on the opened DB (which
// reconstructs its raw slices from the indexes).
func TestCheckpointTrimsAndRecovers(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	objs, sets := ingestSeedData(rng, 150, 80)
	walDir := t.TempDir()
	saveDir := t.TempDir()
	cfg := Config{PageSize: 1024, WALDir: walDir, WALSegmentBytes: 512, AutoFlushOps: -1}
	db1 := buildIngestDB(t, cfg, objs, sets)
	shadow := newIngestShadow(objs, sets)
	step := func(n int) {
		muts := randomMutations(rng, shadow, n)
		if err := db1.Apply(muts); err != nil {
			t.Fatal(err)
		}
		for _, m := range muts {
			shadow.apply(m)
		}
	}
	step(12)
	if err := db1.Checkpoint(saveDir); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if db1.PendingOps() != 0 {
		t.Fatalf("PendingOps after Checkpoint = %d", db1.PendingOps())
	}
	step(8) // post-checkpoint tail, not in the snapshot
	preSeq := db1.WALSeq()

	// Crash, then restart from the snapshot: only the tail replays.
	db2, err := Open(saveDir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if got := db2.Metrics().Counters["stpq_ingest_replayed_total"]; got != 8 {
		t.Fatalf("replayed %d mutations after checkpoint, want 8", got)
	}
	if db2.WALSeq() != preSeq {
		t.Fatalf("WALSeq %d, want %d", db2.WALSeq(), preSeq)
	}
	rngQ := rand.New(rand.NewSource(5))
	assertSameTopK(t, "after checkpoint recovery", db2, shadow.oracle(t, cfg), rngQ)

	// The opened DB must accept further writes (raw data was materialized
	// from the indexes) and still track the oracle across a merge.
	muts := randomMutations(rng, shadow, 10)
	if err := db2.Apply(muts); err != nil {
		t.Fatalf("Apply on opened DB: %v", err)
	}
	for _, m := range muts {
		shadow.apply(m)
	}
	if err := db2.Flush(); err != nil {
		t.Fatalf("Flush on opened DB: %v", err)
	}
	assertSameTopK(t, "opened DB after apply+flush", db2, shadow.oracle(t, cfg), rngQ)
}

// TestIngestErrorSurface pins the error contract of the write path.
func TestIngestErrorSurface(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	objs, sets := ingestSeedData(rng, 50, 30)

	noWAL := buildIngestDB(t, Config{PageSize: 1024}, objs, sets)
	if err := noWAL.Apply([]Mutation{{Op: OpDeleteObject, ID: 1}}); !errors.Is(err, ErrNoWAL) {
		t.Fatalf("Apply without WAL: %v, want ErrNoWAL", err)
	}

	db := buildIngestDB(t, Config{PageSize: 1024, WALDir: t.TempDir()}, objs, sets)
	cases := []Mutation{
		{Op: "unknown_op"},
		{Op: OpUpsertObject},               // missing object
		{Op: OpUpsertFeature, Set: "food"}, // missing feature
		{Op: OpUpsertFeature, Set: "nope", Feature: &Feature{ID: 1, Score: 0.5}},
		{Op: OpDeleteFeature, Set: "nope", ID: 1},
		{Op: OpUpsertFeature, Set: "food", Feature: &Feature{ID: 1, Score: 1.5}},
	}
	for i, m := range cases {
		if err := db.Apply([]Mutation{m}); !errors.Is(err, ErrInvalidMutation) {
			t.Fatalf("case %d: err = %v, want ErrInvalidMutation", i, err)
		}
	}
	if _, err := db.AttachWAL(t.TempDir()); !errors.Is(err, ErrWALAttached) {
		t.Fatalf("double attach: %v, want ErrWALAttached", err)
	}
	// Save with unmerged mutations must refuse rather than lose the delta.
	if err := db.Apply([]Mutation{{Op: OpDeleteObject, ID: 0}}); err != nil {
		t.Fatal(err)
	}
	if db.PendingOps() == 0 {
		t.Skip("delta merged eagerly; save-refusal path not reachable")
	}
	if err := db.Save(t.TempDir()); err == nil {
		t.Fatal("Save with pending delta succeeded; want refusal")
	}

	sharded := New(Config{ShardCount: 2, PageSize: 1024})
	sharded.AddObjects(objs)
	for name, fs := range sets {
		sharded.AddFeatureSet(name, fs)
	}
	if err := sharded.Build(); err != nil {
		t.Fatal(err)
	}
	if _, err := sharded.AttachWAL(t.TempDir()); !errors.Is(err, ErrIngestUnsupported) {
		t.Fatalf("AttachWAL on sharded DB: %v, want ErrIngestUnsupported", err)
	}
}
