// Command stpqgen generates the evaluation datasets of the paper to CSV
// files: the synthetic clustered dataset or the Factual-like real-data
// surrogate (hotels + restaurants over 13 states, ~130 cuisine keywords).
//
// Usage:
//
//	stpqgen -kind synthetic -objects 100000 -features 100000 -sets 2 -out data/
//	stpqgen -kind real -out data/
//
// Output files: <out>/objects.csv (id,x,y) and one
// <out>/features_<i>.csv per feature set (id,x,y,score,kw1;kw2;...).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"stpq/internal/datagen"
	"stpq/internal/index"
	"stpq/internal/kwset"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("stpqgen: ")
	var (
		kind     = flag.String("kind", "synthetic", "dataset kind: synthetic | real")
		objects  = flag.Int("objects", 100_000, "number of data objects |O| (synthetic)")
		features = flag.Int("features", 100_000, "feature objects per set |F_i| (synthetic)")
		sets     = flag.Int("sets", 2, "number of feature sets c (synthetic)")
		vocab    = flag.Int("vocab", 256, "distinct indexed keywords (synthetic)")
		clusters = flag.Int("clusters", 10_000, "number of clusters (synthetic)")
		hotels   = flag.Int("hotels", 25_000, "number of hotels (real)")
		rests    = flag.Int("restaurants", 79_000, "number of restaurants (real)")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("out", ".", "output directory")
	)
	flag.Parse()

	var (
		ds    *datagen.Dataset
		vocbW int
		names func(kwset.Set) []string
	)
	switch *kind {
	case "synthetic":
		ds = datagen.Synthetic(datagen.SyntheticConfig{
			Objects: *objects, FeaturesPerSet: *features, FeatureSets: *sets,
			Vocab: *vocab, Clusters: *clusters, Seed: *seed,
		})
		vocbW = ds.VocabWidth
		// Synthetic keywords are abstract ids: name them kw<id>.
		names = func(s kwset.Set) []string {
			var out []string
			s.ForEach(func(id int) { out = append(out, fmt.Sprintf("kw%d", id)) })
			return out
		}
	case "real":
		ds = datagen.RealLike(datagen.RealLikeConfig{Hotels: *hotels, Restaurants: *rests, Seed: *seed})
		vocbW = ds.VocabWidth
		voc := datagen.CuisineVocabulary()
		names = func(s kwset.Set) []string { return voc.Decode(s) }
	default:
		log.Fatalf("unknown -kind %q", *kind)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	if err := writeObjects(filepath.Join(*out, "objects.csv"), ds); err != nil {
		log.Fatal(err)
	}
	for i, fs := range ds.FeatureSets {
		path := filepath.Join(*out, fmt.Sprintf("features_%d.csv", i+1))
		if err := writeFeatures(path, fs, names); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("wrote %d objects and %d feature sets (vocab %d) to %s\n",
		len(ds.Objects), len(ds.FeatureSets), vocbW, *out)
}

// writeObjects emits id,x,y rows.
func writeObjects(path string, ds *datagen.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "id,x,y")
	for _, o := range ds.Objects {
		fmt.Fprintf(w, "%d,%g,%g\n", o.ID, o.Location.X, o.Location.Y)
	}
	return w.Flush()
}

// writeFeatures emits id,x,y,score,kw1;kw2 rows.
func writeFeatures(path string, fs []index.Feature, names func(kwset.Set) []string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "id,x,y,score,keywords")
	for _, t := range fs {
		fmt.Fprintf(w, "%d,%g,%g,%g,%s\n", t.ID, t.Location.X, t.Location.Y, t.Score,
			strings.Join(names(t.Keywords), ";"))
	}
	return w.Flush()
}
