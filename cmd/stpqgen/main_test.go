package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stpq/internal/datagen"
	"stpq/internal/kwset"
)

func TestWriteObjectsAndFeatures(t *testing.T) {
	dir := t.TempDir()
	ds := datagen.Synthetic(datagen.SyntheticConfig{
		Objects: 50, FeaturesPerSet: 30, FeatureSets: 1, Vocab: 8, Clusters: 5, Seed: 1,
	})
	objPath := filepath.Join(dir, "objects.csv")
	if err := writeObjects(objPath, ds); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(objPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 51 { // header + 50 rows
		t.Fatalf("objects.csv has %d lines", len(lines))
	}
	if lines[0] != "id,x,y" {
		t.Errorf("header = %q", lines[0])
	}

	featPath := filepath.Join(dir, "features_1.csv")
	names := func(s kwset.Set) []string {
		var out []string
		s.ForEach(func(id int) { out = append(out, "kw") })
		return out
	}
	if err := writeFeatures(featPath, ds.FeatureSets[0], names); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(featPath)
	if err != nil {
		t.Fatal(err)
	}
	lines = strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 31 {
		t.Fatalf("features csv has %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[1], "0,") {
		t.Errorf("first feature row = %q", lines[1])
	}
	// Every row has 5 columns (keywords may contain semicolons, never commas).
	for _, ln := range lines[1:] {
		if got := len(strings.SplitN(ln, ",", 5)); got != 5 {
			t.Fatalf("row %q has %d columns", ln, got)
		}
	}
}
