// Command stpqload drives a running stpqd with a closed-loop workload:
// each of -c workers keeps exactly one query in flight, drawing random
// keyword combinations from the server's GET /info dataset description.
// It reports throughput, latency quantiles (p50/p90/p99), the cache hit
// fraction and any non-200 responses.
//
// Usage:
//
//	stpqload -addr http://localhost:8080 -c 8 -duration 10s
//	stpqload -addr http://localhost:8080 -n 1000 -k 10 -radius 0.05
//	stpqload -addr http://localhost:8080 -warmup 100 -n 1000
//	stpqload -targets http://host1:8080,http://host2:8080 -duration 30s
//
// With -targets, requests round-robin across several endpoints — e.g.
// a cluster coordinator plus per-node HTTP listeners, or several
// coordinators over the same cluster map.
//
// With -warmup N, the first N requests are sent before the clock starts
// and are excluded from the reported throughput and latency percentiles.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"stpq/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("stpqload: ")
	var (
		addr     = flag.String("addr", "http://localhost:8080", "stpqd base URL")
		targets  = flag.String("targets", "", "comma-separated base URLs served round-robin, one per request (overrides -addr)")
		workers  = flag.Int("c", 8, "closed-loop concurrency (in-flight queries)")
		duration = flag.Duration("duration", 10*time.Second, "run length (ignored when -n > 0)")
		count    = flag.Int("n", 0, "total queries to send (0 = run for -duration)")
		k        = flag.Int("k", 10, "result size k")
		radius   = flag.Float64("radius", 0.1, "query radius")
		lambda   = flag.Float64("lambda", 0.5, "query lambda")
		variant  = flag.String("variant", "range", "variant: range | influence | nn")
		alg      = flag.String("algorithm", "stps", "algorithm: stps | stds | auto (empty = server default)")
		kwPerSet = flag.Int("keywords", 2, "query keywords per feature set")
		seed     = flag.Int64("seed", 1, "random seed for query generation")
		warmup   = flag.Int("warmup", 0, "warmup requests sent before measuring; excluded from reported percentiles")
		wfrac    = flag.Float64("write-frac", 0, "fraction of requests sent as POST /ingest mutation batches (0 = read-only)")
		afrac    = flag.Float64("approx-frac", 0, "fraction of queries sent in approx mode (0 = all exact)")
		recall   = flag.Float64("recall", 0, "recall target of approx-mode queries in (0,1] (0 = server default)")
	)
	flag.Parse()
	if *wfrac < 0 || *wfrac > 1 {
		log.Fatalf("-write-frac %v outside [0,1]", *wfrac)
	}
	if *afrac < 0 || *afrac > 1 {
		log.Fatalf("-approx-frac %v outside [0,1]", *afrac)
	}
	addrs := []string{*addr}
	if *targets != "" {
		addrs = nil
		for _, t := range strings.Split(*targets, ",") {
			if t = strings.TrimSpace(t); t != "" {
				addrs = append(addrs, t)
			}
		}
		if len(addrs) == 0 {
			log.Fatal("-targets has no endpoints")
		}
	}
	if err := run(addrs, *workers, *duration, *count, *k, *radius, *lambda,
		*variant, *alg, *kwPerSet, *seed, *warmup, *wfrac, *afrac, *recall); err != nil {
		log.Fatal(err)
	}
}

// sample aggregates one worker's observations. Exact and approx query
// latencies are kept apart so the report can show the per-mode split.
type sample struct {
	latencies  []time.Duration // exact-mode queries
	approxLats []time.Duration // approx-mode queries
	writeLats  []time.Duration
	cached     int
	// errs counts failures by class: "HTTP <status> (<reason>)" using the
	// server's machine-readable rejection reason when present — so the
	// report tells queue-full 429s apart from cost-shed 429s — plain
	// "HTTP <status>" otherwise, and "transport" for connection errors.
	errs map[string]int
}

func run(addrs []string, workers int, duration time.Duration, count, k int,
	radius, lambda float64, variant, alg string, kwPerSet int, seed int64, warmup int,
	writeFrac, approxFrac, recall float64) error {
	for i, a := range addrs {
		addrs[i] = strings.TrimSuffix(a, "/")
	}
	for _, a := range addrs {
		if err := checkHealthz(a); err != nil {
			return err
		}
	}
	// All targets serve the same logical dataset (a coordinator reports the
	// cluster aggregate), so one /info describes the workload.
	info, err := fetchInfo(addrs[0])
	if err != nil {
		return err
	}
	// nextAddr hands out targets round-robin across all workers.
	var rr atomic.Uint64
	nextAddr := func() string {
		if len(addrs) == 1 {
			return addrs[0]
		}
		return addrs[rr.Add(1)%uint64(len(addrs))]
	}
	names := make([]string, 0, len(info.Keywords))
	for name, kws := range info.Keywords {
		if len(kws) > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return fmt.Errorf("server dataset has no keywords to query")
	}
	log.Printf("%d target(s), %s: %d objects, %d feature sets, generation %d",
		len(addrs), strings.Join(addrs, " "), info.Objects, len(info.FeatureSets), info.Generation)
	log.Printf("server %s (%s), up %s, %d shard(s)",
		info.Revision, info.GoVersion,
		(time.Duration(info.UptimeSeconds * float64(time.Second))).Round(time.Second),
		max(info.Shards, 1))

	var (
		wg      sync.WaitGroup
		samples = make([]*sample, workers)
		rngs    = make([]*rand.Rand, workers)
	)
	// split distributes n across workers.
	split := func(n, i int) int {
		m := n / workers
		if i < n%workers {
			m++
		}
		return m
	}
	newReq := func(rng *rand.Rand) serve.QueryRequest {
		req := serve.QueryRequest{
			K: k, Radius: radius, Lambda: lambda,
			Variant: variant, Algorithm: alg,
			Keywords: randomKeywords(rng, names, info.Keywords, kwPerSet),
		}
		if approxFrac > 0 && rng.Float64() < approxFrac {
			req.Mode = "approx"
			req.Recall = recall
		}
		return req
	}
	// shoot sends one request, flipping a biased coin between the read and
	// write paths; warmup and the measured loop share the same mix.
	shoot := func(rng *rand.Rand, s *sample) {
		if writeFrac > 0 && rng.Float64() < writeFrac {
			fireIngest(nextAddr(), randomIngest(rng, names, info.Keywords), s)
			return
		}
		fire(nextAddr(), newReq(rng), s)
	}
	for i := range rngs {
		rngs[i] = rand.New(rand.NewSource(seed + int64(i)))
	}

	// Warmup phase: -warmup requests are fired into a discarded sample so
	// cold caches and JIT'd connection setup never pollute the reported
	// percentiles; the clock starts after the phase completes.
	if warmup > 0 {
		log.Printf("warming up: %d requests (excluded from the report)", warmup)
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				discard := &sample{errs: make(map[string]int)}
				for n := split(warmup, i); n > 0; n-- {
					shoot(rngs[i], discard)
				}
			}(i)
		}
		wg.Wait()
	}

	start := time.Now()
	deadline := start.Add(duration)
	for i := 0; i < workers; i++ {
		samples[i] = &sample{errs: make(map[string]int)}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := samples[i]
			// -n budget per worker; <0 means run on -duration.
			n := -1
			if count > 0 {
				n = split(count, i)
			}
			for ; n != 0; n-- {
				if count <= 0 && time.Now().After(deadline) {
					return
				}
				shoot(rngs[i], s)
			}
		}(i)
	}
	wg.Wait()
	report(samples, time.Since(start))
	return nil
}

// randomKeywords draws kwPerSet keywords per feature set.
func randomKeywords(rng *rand.Rand, names []string, pool map[string][]string, kwPerSet int) map[string][]string {
	out := make(map[string][]string, len(names))
	for _, name := range names {
		avail := pool[name]
		n := kwPerSet
		if n > len(avail) {
			n = len(avail)
		}
		kws := make([]string, n)
		for j := range kws {
			kws[j] = avail[rng.Intn(len(avail))]
		}
		out[name] = kws
	}
	return out
}

// loadIDBase keeps load-generated ids clear of any realistic dataset.
const loadIDBase = 1 << 40

// randomIngest builds a small mutation batch: one object upsert and one
// feature upsert per set, with keywords drawn from the server vocabulary.
func randomIngest(rng *rand.Rand, names []string, pool map[string][]string) serve.IngestRequest {
	req := serve.IngestRequest{
		Objects: []serve.ObjectJSON{{
			ID: loadIDBase + rng.Int63n(1<<20), X: rng.Float64(), Y: rng.Float64(),
		}},
		Features: make(map[string][]serve.FeatureJSON, len(names)),
	}
	for _, name := range names {
		avail := pool[name]
		req.Features[name] = []serve.FeatureJSON{{
			ID: loadIDBase + rng.Int63n(1<<20), X: rng.Float64(), Y: rng.Float64(),
			Score:    rng.Float64(),
			Keywords: []string{avail[rng.Intn(len(avail))]},
		}}
	}
	return req
}

// fireIngest sends one mutation batch and records its outcome.
func fireIngest(addr string, req serve.IngestRequest, s *sample) {
	body, _ := json.Marshal(req)
	t0 := time.Now()
	resp, err := http.Post(addr+"/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		s.errs["transport"]++
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		s.errs[errKey(resp.StatusCode, resp.Body)]++
		return
	}
	io.Copy(io.Discard, resp.Body)
	s.writeLats = append(s.writeLats, time.Since(t0))
}

// fire sends one query and records its outcome.
func fire(addr string, req serve.QueryRequest, s *sample) {
	body, _ := json.Marshal(req)
	t0 := time.Now()
	resp, err := http.Post(addr+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		s.errs["transport"]++
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		s.errs[errKey(resp.StatusCode, resp.Body)]++
		return
	}
	var out serve.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		s.errs["transport"]++
		return
	}
	if req.Mode == "approx" {
		s.approxLats = append(s.approxLats, time.Since(t0))
	} else {
		s.latencies = append(s.latencies, time.Since(t0))
	}
	if out.Cached {
		s.cached++
	}
}

// errKey classifies one failed response for the error breakdown, folding in
// the server's machine-readable rejection reason when the body carries one.
func errKey(status int, body io.Reader) string {
	var er struct {
		Reason string `json:"reason"`
	}
	_ = json.NewDecoder(body).Decode(&er)
	io.Copy(io.Discard, body)
	if er.Reason != "" {
		return fmt.Sprintf("HTTP %d (%s)", status, er.Reason)
	}
	return fmt.Sprintf("HTTP %d", status)
}

func checkHealthz(addr string) error {
	resp, err := http.Get(addr + "/healthz")
	if err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: status %d", resp.StatusCode)
	}
	return nil
}

func fetchInfo(addr string) (serve.Info, error) {
	var info serve.Info
	resp, err := http.Get(addr + "/info")
	if err != nil {
		return info, fmt.Errorf("info: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return info, fmt.Errorf("info: status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return info, fmt.Errorf("info: %w", err)
	}
	return info, nil
}

// report merges worker samples and prints the summary.
func report(samples []*sample, elapsed time.Duration) {
	var exact, approx, writes []time.Duration
	cached, errTotal := 0, 0
	errs := make(map[string]int)
	for _, s := range samples {
		exact = append(exact, s.latencies...)
		approx = append(approx, s.approxLats...)
		writes = append(writes, s.writeLats...)
		cached += s.cached
		for class, n := range s.errs {
			errs[class] += n
			errTotal += n
		}
	}
	all := append(append([]time.Duration{}, exact...), approx...)
	n := len(all)
	fmt.Printf("queries     %d ok, %d failed in %s\n", n, errTotal, elapsed.Round(time.Millisecond))
	if n > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		qps := float64(n) / elapsed.Seconds()
		fmt.Printf("throughput  %.1f queries/s\n", qps)
		fmt.Printf("latency     p50 %s  p90 %s  p99 %s  max %s\n",
			quantile(all, 0.50), quantile(all, 0.90), quantile(all, 0.99), all[n-1])
		fmt.Printf("cache hits  %d (%.1f%%)\n", cached, 100*float64(cached)/float64(n))
	}
	// Per-mode split, shown only when the workload actually mixed modes.
	if len(approx) > 0 {
		sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
		sort.Slice(approx, func(i, j int) bool { return approx[i] < approx[j] })
		if e := len(exact); e > 0 {
			fmt.Printf("exact       %d queries  p50 %s  p90 %s  p99 %s\n",
				e, quantile(exact, 0.50), quantile(exact, 0.90), quantile(exact, 0.99))
		}
		fmt.Printf("approx      %d queries  p50 %s  p90 %s  p99 %s\n",
			len(approx), quantile(approx, 0.50), quantile(approx, 0.90), quantile(approx, 0.99))
	}
	if w := len(writes); w > 0 {
		sort.Slice(writes, func(i, j int) bool { return writes[i] < writes[j] })
		fmt.Printf("ingests     %d ok, %.1f writes/s\n", w, float64(w)/elapsed.Seconds())
		fmt.Printf("write lat   p50 %s  p90 %s  p99 %s  max %s\n",
			quantile(writes, 0.50), quantile(writes, 0.90), quantile(writes, 0.99), writes[w-1])
	}
	if errTotal > 0 {
		classes := make([]string, 0, len(errs))
		for c := range errs {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		for _, c := range classes {
			fmt.Printf("errors      %s: %d\n", c, errs[c])
		}
	}
}

// quantile returns the q-th quantile of sorted latencies.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i].Round(10 * time.Microsecond)
}
