package main

import (
	"fmt"

	"stpq/internal/core"
	"stpq/internal/datagen"
	"stpq/internal/index"
)

// sweepValues mirror Table 2 of the paper.
var (
	cardinalities = []int{50_000, 100_000, 500_000, 1_000_000}
	featureCounts = []int{2, 3, 4, 5}
	vocabSizes    = []int{64, 128, 192, 256}
	radii         = []float64{0.005, 0.01, 0.02, 0.04, 0.08}
	ks            = []int{5, 10, 20, 40, 80}
	lambdas       = []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	queriedKws    = []int{1, 3, 5, 7, 9}
)

// defaultQC returns the default query workload configuration.
func (b *bench) defaultQC(variant core.Variant) datagen.QueryConfig {
	return datagen.QueryConfig{
		K: defK, Radius: defRadius, Lambda: defLambda, NumKeywords: defQKw,
		Variant: variant, Seed: b.seed,
	}
}

// scalabilitySweep runs the four dataset sweeps shared by Table 3, Figure
// 7 and Figure 10: |F_i|, |O|, c and indexed keywords, for both index
// kinds. alg is "stds" or "stps".
func (b *bench) scalabilitySweep(title, alg string, variant core.Variant, nq int) {
	header(title)
	qc := b.defaultQC(variant)

	line("vary |F_i|", "SRT (io+cpu=total ms)", "IR2 (io+cpu=total ms)")
	for _, f := range cardinalities {
		ds := b.synthetic(b.scaled(defObjects), b.scaled(f), defSets, defVocab)
		qs := ds.GenQueries(nq, qc)
		label := fmt.Sprintf("  |F_i| = %d", b.scaled(f))
		srt := b.run(label, "SRT", alg, b.engine(dsKeyOf(ds), ds, index.SRT), qs)
		ir2 := b.run(label, "IR2", alg, b.engine(dsKeyOf(ds), ds, index.IR2), qs)
		line(label, cell(srt), cell(ir2))
	}

	line("vary |O|", "SRT", "IR2")
	for _, o := range cardinalities {
		ds := b.synthetic(b.scaled(o), b.scaled(defFeatures), defSets, defVocab)
		qs := ds.GenQueries(nq, qc)
		label := fmt.Sprintf("  |O| = %d", b.scaled(o))
		srt := b.run(label, "SRT", alg, b.engine(dsKeyOf(ds), ds, index.SRT), qs)
		ir2 := b.run(label, "IR2", alg, b.engine(dsKeyOf(ds), ds, index.IR2), qs)
		line(label, cell(srt), cell(ir2))
	}

	line("vary c", "SRT", "IR2")
	for _, c := range featureCounts {
		ds := b.synthetic(b.scaled(defObjects), b.scaled(defFeatures), c, defVocab)
		qs := ds.GenQueries(nq, qc)
		label := fmt.Sprintf("  c = %d", c)
		srt := b.run(label, "SRT", alg, b.engine(dsKeyOf(ds), ds, index.SRT), qs)
		ir2 := b.run(label, "IR2", alg, b.engine(dsKeyOf(ds), ds, index.IR2), qs)
		line(label, cell(srt), cell(ir2))
	}

	line("vary indexed keywords", "SRT", "IR2")
	for _, w := range vocabSizes {
		ds := b.synthetic(b.scaled(defObjects), b.scaled(defFeatures), defSets, w)
		qs := ds.GenQueries(nq, qc)
		label := fmt.Sprintf("  keywords = %d", w)
		srt := b.run(label, "SRT", alg, b.engine(dsKeyOf(ds), ds, index.SRT), qs)
		ir2 := b.run(label, "IR2", alg, b.engine(dsKeyOf(ds), ds, index.IR2), qs)
		line(label, cell(srt), cell(ir2))
	}
}

// queryParamSweep runs the four query-parameter sweeps of Figures 8/9:
// radius, k, λ and queried keywords.
func (b *bench) queryParamSweep(title string, ds *datagen.Dataset, variant core.Variant, withRadius bool) {
	header(title)
	srt := b.engine(dsKeyOf(ds), ds, index.SRT)
	ir2 := b.engine(dsKeyOf(ds), ds, index.IR2)

	if withRadius {
		line("vary r", "SRT (io+cpu=total ms)", "IR2 (io+cpu=total ms)")
		for _, r := range radii {
			qc := b.defaultQC(variant)
			qc.Radius = r
			qs := ds.GenQueries(b.queries, qc)
			label := fmt.Sprintf("  r = %.3f", r)
			line(label, cell(b.run(label, "SRT", "stps", srt, qs)), cell(b.run(label, "IR2", "stps", ir2, qs)))
		}
	}

	line("vary k", "SRT", "IR2")
	for _, k := range ks {
		qc := b.defaultQC(variant)
		qc.K = k
		qs := ds.GenQueries(b.queries, qc)
		label := fmt.Sprintf("  k = %d", k)
		line(label, cell(b.run(label, "SRT", "stps", srt, qs)), cell(b.run(label, "IR2", "stps", ir2, qs)))
	}

	line("vary lambda", "SRT", "IR2")
	for _, l := range lambdas {
		qc := b.defaultQC(variant)
		qc.Lambda = l
		qs := ds.GenQueries(b.queries, qc)
		label := fmt.Sprintf("  lambda = %.1f", l)
		line(label, cell(b.run(label, "SRT", "stps", srt, qs)), cell(b.run(label, "IR2", "stps", ir2, qs)))
	}

	line("vary queried keywords", "SRT", "IR2")
	for _, n := range queriedKws {
		qc := b.defaultQC(variant)
		qc.NumKeywords = n
		qs := ds.GenQueries(b.queries, qc)
		label := fmt.Sprintf("  keywords = %d", n)
		line(label, cell(b.run(label, "SRT", "stps", srt, qs)), cell(b.run(label, "IR2", "stps", ir2, qs)))
	}
}

// table3 reproduces Table 3: STDS execution time on the synthetic dataset
// for both indexing techniques across the four dataset sweeps.
func (b *bench) table3() {
	b.scalabilitySweep(
		fmt.Sprintf("Table 3: STDS execution time, synthetic (avg of %d queries)", b.table3Queries),
		"stds", core.RangeScore, b.table3Queries)
}

// fig7 reproduces Figure 7: STPS scalability on the synthetic dataset.
func (b *bench) fig7() {
	b.scalabilitySweep(
		fmt.Sprintf("Figure 7: STPS scalability, synthetic, range score (avg of %d queries)", b.queries),
		"stps", core.RangeScore, b.queries)
}

// fig8 reproduces Figure 8: query parameters on the real dataset.
func (b *bench) fig8() {
	b.queryParamSweep(
		fmt.Sprintf("Figure 8: STPS query parameters, real dataset, range score (avg of %d queries)", b.queries),
		b.real(), core.RangeScore, true)
}

// fig9 reproduces Figure 9: query parameters on the synthetic dataset.
func (b *bench) fig9() {
	ds := b.synthetic(b.scaled(defObjects), b.scaled(defFeatures), defSets, defVocab)
	b.queryParamSweep(
		fmt.Sprintf("Figure 9: STPS query parameters, synthetic, range score (avg of %d queries)", b.queries),
		ds, core.RangeScore, true)
}

// fig10 reproduces Figure 10: STPS scalability for the influence variant.
// Without Definition 4's validity filter the combination population above
// the termination threshold grows as the c-th power of the relevant
// feature count, so the c and keyword panels run at one tenth of the
// dataset scale (labeled) to stay tractable — see EXPERIMENTS.md note 1.
func (b *bench) fig10() {
	b.fig10ab()
	b.fig10cd()
}

// fig10ab runs the full-scale |F_i| and |O| panels of Figure 10.
func (b *bench) fig10ab() {
	header(fmt.Sprintf("Figure 10(a,b): STPS scalability, synthetic, influence score (avg of %d queries)", b.queries))
	qc := b.defaultQC(core.InfluenceScore)
	nq := b.queries

	line("vary |F_i|", "SRT (io+cpu=total ms)", "IR2 (io+cpu=total ms)")
	for _, f := range cardinalities {
		ds := b.synthetic(b.scaled(defObjects), b.scaled(f), defSets, defVocab)
		qs := ds.GenQueries(nq, qc)
		label := fmt.Sprintf("  |F_i| = %d", b.scaled(f))
		srt := b.run(label, "SRT", "stps", b.engine(dsKeyOf(ds), ds, index.SRT), qs)
		ir2 := b.run(label, "IR2", "stps", b.engine(dsKeyOf(ds), ds, index.IR2), qs)
		line(label, cell(srt), cell(ir2))
	}

	line("vary |O|", "SRT", "IR2")
	for _, o := range cardinalities {
		ds := b.synthetic(b.scaled(o), b.scaled(defFeatures), defSets, defVocab)
		qs := ds.GenQueries(nq, qc)
		label := fmt.Sprintf("  |O| = %d", b.scaled(o))
		srt := b.run(label, "SRT", "stps", b.engine(dsKeyOf(ds), ds, index.SRT), qs)
		ir2 := b.run(label, "IR2", "stps", b.engine(dsKeyOf(ds), ds, index.IR2), qs)
		line(label, cell(srt), cell(ir2))
	}

}

// fig10cd runs the reduced-scale c and indexed-keyword panels of Figure
// 10 (see the tractability note).
func (b *bench) fig10cd() {
	header(fmt.Sprintf("Figure 10(c,d): influence score, reduced scale (avg of %d queries)", b.queries))
	qc := b.defaultQC(core.InfluenceScore)
	nq := b.queries
	tenth := func(n int) int {
		v := n / 10
		if v < 1000 {
			v = 1000
		}
		return v
	}
	small := nq
	if small > 2 {
		small = 2
	}
	line("vary c (1/10 scale, c=2 measured)", "SRT", "IR2")
	for _, c := range featureCounts {
		if c > 2 {
			line(fmt.Sprintf("  c = %d", c), "omitted: combinations above Algorithm 5's",
				"termination threshold grow as |relevant|^c (EXPERIMENTS.md note 1)")
			continue
		}
		ds := b.synthetic(tenth(b.scaled(defObjects)), tenth(b.scaled(defFeatures)), c, defVocab)
		qs := ds.GenQueries(small, qc)
		label := fmt.Sprintf("  c = %d", c)
		srt := b.run(label, "SRT", "stps", b.engine(dsKeyOf(ds), ds, index.SRT), qs)
		ir2 := b.run(label, "IR2", "stps", b.engine(dsKeyOf(ds), ds, index.IR2), qs)
		line(label, cell(srt), cell(ir2))
	}

	line("vary indexed keywords (1/10 scale)", "SRT", "IR2")
	for _, w := range vocabSizes {
		ds := b.synthetic(tenth(b.scaled(defObjects)), tenth(b.scaled(defFeatures)), defSets, w)
		qs := ds.GenQueries(nq, qc)
		label := fmt.Sprintf("  keywords = %d", w)
		srt := b.run(label, "SRT", "stps", b.engine(dsKeyOf(ds), ds, index.SRT), qs)
		ir2 := b.run(label, "IR2", "stps", b.engine(dsKeyOf(ds), ds, index.IR2), qs)
		line(label, cell(srt), cell(ir2))
	}
}

// fig11 reproduces Figure 11: influence variant on the real dataset,
// varying k and the number of queried keywords.
func (b *bench) fig11() {
	header(fmt.Sprintf("Figure 11: STPS influence score, real dataset (avg of %d queries)", b.queries))
	ds := b.real()
	srt := b.engine(dsKeyOf(ds), ds, index.SRT)
	ir2 := b.engine(dsKeyOf(ds), ds, index.IR2)
	line("vary k", "SRT (io+cpu=total ms)", "IR2 (io+cpu=total ms)")
	for _, k := range ks {
		qc := b.defaultQC(core.InfluenceScore)
		qc.K = k
		qs := ds.GenQueries(b.queries, qc)
		label := fmt.Sprintf("  k = %d", k)
		line(label, cell(b.run(label, "SRT", "stps", srt, qs)), cell(b.run(label, "IR2", "stps", ir2, qs)))
	}
	line("vary queried keywords", "SRT", "IR2")
	for _, n := range queriedKws {
		qc := b.defaultQC(core.InfluenceScore)
		qc.NumKeywords = n
		qs := ds.GenQueries(b.queries, qc)
		label := fmt.Sprintf("  keywords = %d", n)
		line(label, cell(b.run(label, "SRT", "stps", srt, qs)), cell(b.run(label, "IR2", "stps", ir2, qs)))
	}
}

// fig12 reproduces Figure 12: influence variant on the synthetic dataset,
// varying query parameters.
func (b *bench) fig12() {
	ds := b.synthetic(b.scaled(defObjects), b.scaled(defFeatures), defSets, defVocab)
	b.queryParamSweep(
		fmt.Sprintf("Figure 12: STPS query parameters, synthetic, influence score (avg of %d queries)", b.queries),
		ds, core.InfluenceScore, true)
}

// fig13 reproduces Figure 13: the NN variant's scalability with the
// Voronoi construction cost isolated (the striped bars).
func (b *bench) fig13() {
	b.fig13a()
	b.fig13b()
}

// fig13a is the |F_i| panel of Figure 13.
func (b *bench) fig13a() {
	nq := b.queries
	if nq > 2 {
		nq = 2 // NN queries run for seconds each (Voronoi + combination churn)
	}
	header(fmt.Sprintf("Figure 13(a): STPS nearest-neighbor score, synthetic (avg of %d queries)", nq))
	qc := b.defaultQC(core.NearestNeighborScore)
	line("vary |F_i|", "SRT total ms", "IR2 total ms")
	for _, f := range cardinalities {
		ds := b.synthetic(b.scaled(defObjects), b.scaled(f), defSets, defVocab)
		qs := ds.GenQueries(nq, qc)
		label := fmt.Sprintf("  |F_i| = %d", b.scaled(f))
		srt := b.run(label, "SRT", "stps", b.engine(dsKeyOf(ds), ds, index.SRT), qs)
		ir2 := b.run(label, "IR2", "stps", b.engine(dsKeyOf(ds), ds, index.IR2), qs)
		line(label, b.vorCell(srt), b.vorCell(ir2))
	}
}

// fig13b is the |O| panel of Figure 13.
func (b *bench) fig13b() {
	nq := b.queries
	if nq > 2 {
		nq = 2
	}
	header(fmt.Sprintf("Figure 13(b): STPS nearest-neighbor score, synthetic (avg of %d queries)", nq))
	qc := b.defaultQC(core.NearestNeighborScore)
	line("vary |O|", "SRT", "IR2")
	for _, o := range cardinalities {
		ds := b.synthetic(b.scaled(o), b.scaled(defFeatures), defSets, defVocab)
		qs := ds.GenQueries(nq, qc)
		label := fmt.Sprintf("  |O| = %d", b.scaled(o))
		srt := b.run(label, "SRT", "stps", b.engine(dsKeyOf(ds), ds, index.SRT), qs)
		ir2 := b.run(label, "IR2", "stps", b.engine(dsKeyOf(ds), ds, index.IR2), qs)
		line(label, b.vorCell(srt), b.vorCell(ir2))
	}
}

// fig14 reproduces Figure 14: the NN variant while varying k, on the real
// and synthetic datasets.
func (b *bench) fig14() {
	nq := b.queries
	if nq > 2 {
		nq = 2
	}
	header(fmt.Sprintf("Figure 14: STPS nearest-neighbor score, vary k (avg of %d queries)", nq))
	real := b.real()
	syn := b.synthetic(b.scaled(defObjects), b.scaled(defFeatures), defSets, defVocab)
	line("(a) real dataset", "SRT total ms", "IR2 total ms")
	for _, k := range ks {
		qc := b.defaultQC(core.NearestNeighborScore)
		qc.K = k
		qs := real.GenQueries(nq, qc)
		label := fmt.Sprintf("  k = %d", k)
		srt := b.run(label+" (real)", "SRT", "stps", b.engine(dsKeyOf(real), real, index.SRT), qs)
		ir2 := b.run(label+" (real)", "IR2", "stps", b.engine(dsKeyOf(real), real, index.IR2), qs)
		line(label, b.vorCell(srt), b.vorCell(ir2))
	}
	line("(b) synthetic dataset", "SRT", "IR2")
	for _, k := range ks {
		qc := b.defaultQC(core.NearestNeighborScore)
		qc.K = k
		qs := syn.GenQueries(nq, qc)
		label := fmt.Sprintf("  k = %d", k)
		srt := b.run(label+" (synthetic)", "SRT", "stps", b.engine(dsKeyOf(syn), syn, index.SRT), qs)
		ir2 := b.run(label+" (synthetic)", "IR2", "stps", b.engine(dsKeyOf(syn), syn, index.IR2), qs)
		line(label, b.vorCell(srt), b.vorCell(ir2))
	}
}
