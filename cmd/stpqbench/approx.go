package main

// approx.go benchmarks the MinHash/LSH approximate fast tier against exact
// execution: the same random workload runs once in exact mode (the oracle)
// and once per recall setting in approx mode, and each approx pass reports
// its measured recall@k — the mean fraction of the exact top-k the approx
// answer recovers — next to its latency. Two workloads are swept:
//
//   - sig8: an IR² index with an 8-bit signature file, where exact
//     execution pays a verification record read per surviving candidate.
//     Skip-verify approx settings (recall ≤ 0.95) answer from the MinHash
//     estimate instead, eliminating those reads — the latency headline.
//   - bitmap: exact keyword bitmaps, where the fast tier is pure CPU
//     pruning in front of an already-exact leaf test.
//
// Like the planner and cluster sweeps, records always land in
// BENCH_approx.json.

import (
	"fmt"
	"log"
	"math/rand"

	"stpq"
	"stpq/internal/core"
	"stpq/internal/datagen"
)

// approxBenchFile is where the approx comparison always saves its records.
const approxBenchFile = "BENCH_approx.json"

// approxRecalls is the swept recall-target knob. 0.99 keeps verification
// (ParamsForRecall.SkipVerify turns off above 0.95); the rest skip it.
var approxRecalls = []float64{0.5, 0.75, 0.9, 0.95, 0.99}

func (b *bench) approxExp() {
	header("approx: MinHash/LSH fast tier vs exact, recall@k per setting (IR2)")
	ds := b.synthetic(b.scaled(defObjects), b.scaled(defFeatures), defSets, defVocab)

	workloads := []struct {
		name string
		cfg  stpq.Config
	}{
		// Small buffer pool so the signature workload's verification reads
		// stay physical: the record file is much larger than 64 pages.
		{"sig8", stpq.Config{IndexKind: stpq.IR2, SignatureBits: 8, PageSize: 1024, BufferPages: 64}},
		{"bitmap", stpq.Config{IndexKind: stpq.IR2, PageSize: 1024, BufferPages: 64}},
	}

	var recs []Record
	for _, w := range workloads {
		db, setNames := b.approxDB(ds, w.cfg)
		qs := b.approxQueries(setNames, b.queries)

		// Exact pass: the oracle top-k per query, and the baseline cost row.
		oracle := make([][]int64, len(qs))
		exactPer := make([]core.Stats, len(qs))
		for i, q := range qs {
			res, st, err := db.TopK(q)
			if err != nil {
				log.Fatal(err)
			}
			ids := make([]int64, len(res))
			for j, r := range res {
				ids[j] = r.ID
			}
			oracle[i] = ids
			exactPer[i] = coreStatsOf(st)
		}
		exactRec := newRecord("approx", fmt.Sprintf("  %s exact", w.name), "IR2", "stps", nil, exactPer)
		recs = append(recs, exactRec)
		line(fmt.Sprintf("  %s exact", w.name),
			fmt.Sprintf("mean %8.2fms  p99 %8.2fms", exactRec.TotalMS.Mean, exactRec.TotalMS.P99))

		for _, recall := range approxRecalls {
			per := make([]core.Stats, len(qs))
			var recallSum float64
			var cands, pruned, skipped int64
			for i, q := range qs {
				q.Mode = stpq.ModeApprox
				q.Recall = recall
				res, st, err := db.TopK(q)
				if err != nil {
					log.Fatal(err)
				}
				recallSum += recallAtK(oracle[i], res)
				per[i] = coreStatsOf(st)
				cands += st.ApproxCandidates
				pruned += st.ApproxPruned
				skipped += st.ApproxSkippedReads
			}
			meanRecall := recallSum / float64(len(qs))
			label := fmt.Sprintf("  %s approx r=%.2f", w.name, recall)
			rec := newRecord("approx", label, "IR2", "stps", nil, per)
			rec.Counters = map[string]int64{
				"recall_target_milli": int64(recall * 1000),
				"recall_at_k_milli":   int64(meanRecall * 1000),
				"candidates":          cands,
				"pruned":              pruned,
				"skipped_reads":       skipped,
			}
			recs = append(recs, rec)
			speedup := 0.0
			if rec.TotalMS.Mean > 0 {
				speedup = exactRec.TotalMS.Mean / rec.TotalMS.Mean
			}
			line(label, fmt.Sprintf(
				"recall@k %.3f  mean %8.2fms (%.1fx)  pruned %d/%d  skipped reads %d",
				meanRecall, rec.TotalMS.Mean, speedup, pruned, cands, skipped))
		}
	}

	if err := writeRecords(approxBenchFile, recs); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d approx records to %s", len(recs), approxBenchFile)
	if b.jsonPath != "" {
		b.records = append(b.records, recs...)
	}
}

// approxDB builds a public DB over the synthetic dataset with the given
// config (the public path is deliberate: the sweep exercises Mode/Recall
// exactly as library callers do).
func (b *bench) approxDB(ds *datagen.Dataset, cfg stpq.Config) (*stpq.DB, []string) {
	db := stpq.New(cfg)
	objs := make([]stpq.Object, len(ds.Objects))
	for i, o := range ds.Objects {
		objs[i] = stpq.Object{ID: o.ID, X: o.Location.X, Y: o.Location.Y}
	}
	db.AddObjects(objs)
	setNames := make([]string, len(ds.FeatureSets))
	for i, fs := range ds.FeatureSets {
		feats := make([]stpq.Feature, len(fs))
		for j, f := range fs {
			var kws []string
			f.Keywords.ForEach(func(id int) { kws = append(kws, fmt.Sprintf("kw%d", id)) })
			feats[j] = stpq.Feature{ID: f.ID, X: f.Location.X, Y: f.Location.Y,
				Score: f.Score, Keywords: kws}
		}
		setNames[i] = fmt.Sprintf("set%d", i+1)
		db.AddFeatureSet(setNames[i], feats)
	}
	if err := db.Build(); err != nil {
		log.Fatal(err)
	}
	return db, setNames
}

// approxQueries builds the fixed random workload shared by every pass.
func (b *bench) approxQueries(setNames []string, n int) []stpq.Query {
	rng := rand.New(rand.NewSource(b.seed))
	qs := make([]stpq.Query, n)
	for i := range qs {
		kw := make(map[string][]string, len(setNames))
		for _, name := range setNames {
			words := make([]string, defQKw)
			for j := range words {
				words[j] = fmt.Sprintf("kw%d", rng.Intn(defVocab))
			}
			kw[name] = words
		}
		qs[i] = stpq.Query{K: defK, Radius: defRadius, Lambda: defLambda, Keywords: kw}
	}
	return qs
}

// recallAtK is |approx top-k ∩ exact top-k| / |exact top-k| for one query
// (1 when the exact answer is empty: there was nothing to recover).
func recallAtK(oracle []int64, approx []stpq.Result) float64 {
	if len(oracle) == 0 {
		return 1
	}
	want := make(map[int64]bool, len(oracle))
	for _, id := range oracle {
		want[id] = true
	}
	hit := 0
	for _, r := range approx {
		if want[r.ID] {
			hit++
		}
	}
	return float64(hit) / float64(len(oracle))
}

// coreStatsOf lowers public per-query stats into the Record summary shape.
func coreStatsOf(st stpq.Stats) core.Stats {
	return core.Stats{
		CPUTime: st.CPUTime, IOTime: st.IOTime,
		LogicalReads: st.LogicalReads, PhysicalReads: st.PhysicalReads,
		Combinations:   st.Combinations,
		FeaturesPulled: st.FeaturesPulled,
		ObjectsScored:  st.ObjectsScored,
	}
}
