// Command stpqbench regenerates every table and figure of the paper's
// experimental evaluation (Section 8): Table 3 and Figures 7–14. Each
// experiment sweeps one dataset or query parameter, averages the execution
// time of a random query workload, and prints the time split into modeled
// I/O and measured CPU — the paper's dark/white stacked bars.
//
// Usage:
//
//	stpqbench -exp all                 # everything (long)
//	stpqbench -exp fig8 -queries 200   # one experiment
//	stpqbench -exp table3 -scale 0.1   # shrink datasets 10x for a quick run
//
// Defaults follow Table 2's bold entries: |O| = |F_i| = 100K, c = 2, 128
// indexed keywords, r = 0.01, k = 10, λ = 0.5, 3 queried keywords. The
// -scale flag multiplies dataset cardinalities (the paper's absolute
// sizes are reproduced with -scale 1).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"stpq/internal/core"
	"stpq/internal/datagen"
	"stpq/internal/index"
	"stpq/internal/storage"
)

// experiment parameter defaults (Table 2, bold).
const (
	defObjects  = 100_000
	defFeatures = 100_000
	defSets     = 2
	defVocab    = 128
	defRadius   = 0.01
	defK        = 10
	defLambda   = 0.5
	defQKw      = 3
)

// bench bundles the run-wide configuration.
type bench struct {
	queries       int
	table3Queries int
	scale         float64
	seed          int64
	cost          storage.CostModel
	buffer        int
	parallel      int    // -parallel: max workers for the serve experiment
	jsonPath      string // -json: machine-readable records destination

	curExp   string // experiment currently running (stamps Records)
	records  []Record
	datasets map[string]*datagen.Dataset
	engines  map[string]*core.Engine
}

// out buffers the report; header and line flush it so progress appears one
// row at a time even when stdout is redirected to a file.
var out = bufio.NewWriter(os.Stdout)

func main() {
	log.SetFlags(0)
	log.SetPrefix("stpqbench: ")
	var (
		exp     = flag.String("exp", "all", "experiment: all | table3 | fig7 | fig8 | fig9 | fig10 | fig11 | fig12 | fig13 | fig14 | serve | shard | hotpath | ingest | cluster | planner | approx")
		queries = flag.Int("queries", 100, "queries per data point (the paper used 1000)")
		t3q     = flag.Int("table3queries", 3, "queries per STDS data point (STDS is slow by design)")
		scale   = flag.Float64("scale", 1.0, "dataset cardinality multiplier")
		seed    = flag.Int64("seed", 1, "random seed")
		iocost  = flag.Duration("iocost", 100*time.Microsecond, "modeled cost per physical page read")
		buffer  = flag.Int("buffer", 256, "buffer pool pages per index")
		par     = flag.Int("parallel", 0, "max workers for the serve experiment (0 = GOMAXPROCS)")
		jsonOut = flag.String("json", "", "also write per-datapoint records (quantiles + phase breakdown) to this file")
	)
	flag.Parse()

	b := &bench{
		queries:       *queries,
		table3Queries: *t3q,
		scale:         *scale,
		seed:          *seed,
		cost:          storage.CostModel{PerPage: *iocost},
		buffer:        *buffer,
		parallel:      *par,
		jsonPath:      *jsonOut,
		datasets:      make(map[string]*datagen.Dataset),
		engines:       make(map[string]*core.Engine),
	}

	all := map[string]func(){
		"table3":  b.table3,
		"fig10cd": b.fig10cd,
		"fig13a":  b.fig13a,
		"fig13b":  b.fig13b,
		"fig7":    b.fig7,
		"fig8":    b.fig8,
		"fig9":    b.fig9,
		"fig10":   b.fig10,
		"fig11":   b.fig11,
		"fig12":   b.fig12,
		"fig13":   b.fig13,
		"fig14":   b.fig14,
		"serve":   b.serve,
		"shard":   b.shardExp,
		"hotpath": b.hotpath,
		"ingest":  b.ingestExp,
		"cluster": b.clusterExp,
		"planner": b.plannerExp,
		"approx":  b.approxExp,
	}
	order := []string{"table3", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "serve", "shard", "hotpath", "ingest", "cluster", "planner", "approx"}

	start := time.Now()
	runExp := func(name string) {
		b.curExp = name
		all[name]()
	}
	if *exp == "all" {
		for _, name := range order {
			runExp(name)
		}
	} else if _, ok := all[*exp]; ok {
		runExp(*exp)
	} else {
		log.Printf("unknown experiment %q", *exp)
		flag.Usage()
		os.Exit(2)
	}
	fmt.Fprintf(out, "\ntotal harness time: %v\n", time.Since(start).Round(time.Second))
	out.Flush()
	if b.jsonPath != "" {
		if err := writeRecords(b.jsonPath, b.records); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %d records to %s", len(b.records), b.jsonPath)
	}
}

// scaled applies the -scale factor with a floor.
func (b *bench) scaled(n int) int {
	v := int(float64(n) * b.scale)
	if v < 1000 {
		v = 1000
	}
	return v
}

// synthetic returns (building and caching) the synthetic dataset with the
// given cardinalities.
func (b *bench) synthetic(objects, features, sets, vocab int) *datagen.Dataset {
	key := fmt.Sprintf("syn/%d/%d/%d/%d", objects, features, sets, vocab)
	if ds, ok := b.datasets[key]; ok {
		return ds
	}
	clusters := int(10_000 * b.scale)
	if clusters < 200 {
		clusters = 200
	}
	ds := datagen.Synthetic(datagen.SyntheticConfig{
		Objects: objects, FeaturesPerSet: features, FeatureSets: sets,
		Vocab: vocab, Clusters: clusters, Seed: b.seed,
	})
	b.datasets[key] = ds
	return ds
}

// real returns the Factual-like dataset.
func (b *bench) real() *datagen.Dataset {
	key := "real"
	if ds, ok := b.datasets[key]; ok {
		return ds
	}
	ds := datagen.RealLike(datagen.RealLikeConfig{
		Hotels:      b.scaled(25_000),
		Restaurants: b.scaled(79_000),
		Seed:        b.seed,
	})
	b.datasets[key] = ds
	return ds
}

// engine builds (and caches) an engine over ds with the given index kind.
func (b *bench) engine(dsKey string, ds *datagen.Dataset, kind index.Kind) *core.Engine {
	key := fmt.Sprintf("%s/%v", dsKey, kind)
	if e, ok := b.engines[key]; ok {
		return e
	}
	opts := index.Options{Kind: kind, VocabWidth: ds.VocabWidth, BufferPages: b.buffer}
	oidx, err := index.BuildObjectIndex(ds.Objects, opts)
	if err != nil {
		log.Fatal(err)
	}
	fidxs := make([]*index.FeatureIndex, len(ds.FeatureSets))
	for i, fs := range ds.FeatureSets {
		fidxs[i], err = index.BuildFeatureIndex(fs, opts)
		if err != nil {
			log.Fatal(err)
		}
	}
	// Tracing is only paid for when records are collected: the per-phase
	// breakdown in each Record comes from the query span trees.
	e, err := core.NewEngine(oidx, fidxs, core.Options{
		BatchSTDS: true,
		CostModel: b.cost,
		Trace:     b.jsonPath != "",
	})
	if err != nil {
		log.Fatal(err)
	}
	b.engines[key] = e
	return e
}

// dsKeyOf reconstructs the dataset cache key for engine caching.
func dsKeyOf(ds *datagen.Dataset) string {
	return fmt.Sprintf("%p", ds)
}

// run executes the workload and returns per-query average stats. With
// -json it additionally appends a Record (quantiles and phase breakdown)
// labeled with the current experiment, the sweep row and the index kind.
func (b *bench) run(label, idx, alg string, e *core.Engine, qs []core.Query) core.Stats {
	var acc core.Stats
	per := make([]core.Stats, 0, len(qs))
	mc := startMemCount()
	for _, q := range qs {
		var (
			st  core.Stats
			err error
		)
		if alg == "stds" {
			_, st, err = e.STDS(q)
		} else {
			_, st, err = e.STPS(q)
		}
		if err != nil {
			log.Fatal(err)
		}
		acc.Add(st)
		per = append(per, st)
	}
	if b.jsonPath != "" {
		rec := newRecord(b.curExp, strings.TrimSpace(label), idx, alg, qs, per)
		rec.AllocsPerOp, rec.BytesPerOp = mc.perOp(len(qs))
		b.records = append(b.records, rec)
	}
	return acc.Scale(len(qs))
}

// cell formats a stats cell as "io+cpu=total" in milliseconds.
func cell(st core.Stats) string {
	return fmt.Sprintf("%7.1f+%7.1f=%8.1f",
		ms(st.IOTime), ms(st.CPUTime), ms(st.Total()))
}

// vorCell formats an NN-variant cell with the Voronoi share marked (the
// striped bar segments of Figures 13–14).
func (b *bench) vorCell(st core.Stats) string {
	return fmt.Sprintf("%8.1f (voronoi: io %6.1f cpu %6.1f)",
		ms(st.Total()), ms(b.cost.IOTime(st.VoronoiReads)), ms(st.VoronoiCPUTime))
}

// ms converts a duration to milliseconds.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// header prints a section header.
func header(title string) {
	fmt.Fprintf(out, "\n=== %s ===\n", title)
	out.Flush()
}

// line prints one sweep row and flushes, so long sweeps report
// incrementally.
func line(label string, cols ...string) {
	fmt.Fprintf(out, "%-28s %s\n", label, strings.Join(cols, "  "))
	out.Flush()
}
