package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"

	"stpq/internal/core"
	"stpq/internal/obs"
)

// Quantiles summarizes one measure over a query workload.
type Quantiles struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P99  float64 `json:"p99"`
}

// newQuantiles computes mean/p50/p99 (nearest-rank) of vals.
func newQuantiles(vals []float64) Quantiles {
	if len(vals) == 0 {
		return Quantiles{}
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	rank := func(q float64) float64 {
		i := int(q*float64(len(sorted))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	return Quantiles{Mean: sum / float64(len(sorted)), P50: rank(0.50), P99: rank(0.99)}
}

// PhaseBreakdown is the per-query mean cost of one trace phase, keyed by
// its slash-separated path under the query root (e.g.
// "combos.generate/features.pull").
type PhaseBreakdown struct {
	Name              string  `json:"name"`
	MeanMS            float64 `json:"mean_ms"`
	MeanPhysicalReads float64 `json:"mean_physical_reads"`
}

// Record is one experiment data point: the workload summary the text output
// prints as a single row, plus the distribution and phase detail the text
// format has no room for.
type Record struct {
	Experiment    string    `json:"experiment"`
	Label         string    `json:"label"`
	Index         string    `json:"index"`
	Algorithm     string    `json:"algorithm"`
	Variant       string    `json:"variant"`
	Queries       int       `json:"queries"`
	TotalMS       Quantiles `json:"total_ms"`
	CPUMS         Quantiles `json:"cpu_ms"`
	IOMS          Quantiles `json:"io_ms"`
	PhysicalReads Quantiles `json:"physical_reads"`
	LogicalReads  Quantiles `json:"logical_reads"`
	// QPS is the aggregate throughput of concurrent workloads (0 for the
	// serial experiments, whose wall time is the per-query mean).
	QPS float64 `json:"qps,omitempty"`
	// AllocsPerOp / BytesPerOp are runtime.MemStats deltas over the
	// workload divided by the query count, the benchstat-style allocation
	// cost of one query including all harness-visible garbage.
	AllocsPerOp float64          `json:"allocs_per_op"`
	BytesPerOp  float64          `json:"bytes_per_op"`
	Phases      []PhaseBreakdown `json:"phases,omitempty"`
	// Counters carries experiment-specific totals over the whole workload
	// (e.g. the shard sweep's scatter fanout/pruned counts).
	Counters map[string]int64 `json:"counters,omitempty"`
}

// newRecord summarizes the per-query stats of one data point.
func newRecord(exp, label, idx, alg string, qs []core.Query, per []core.Stats) Record {
	rec := Record{
		Experiment: exp,
		Label:      label,
		Index:      idx,
		Algorithm:  alg,
		Queries:    len(per),
	}
	if len(qs) > 0 {
		rec.Variant = qs[0].Variant.String()
	}
	total := make([]float64, len(per))
	cpu := make([]float64, len(per))
	io := make([]float64, len(per))
	phy := make([]float64, len(per))
	logr := make([]float64, len(per))
	type phaseAcc struct {
		ms    float64
		reads float64
	}
	phases := make(map[string]*phaseAcc)
	for i, st := range per {
		total[i] = ms(st.Total())
		cpu[i] = ms(st.CPUTime)
		io[i] = ms(st.IOTime)
		phy[i] = float64(st.PhysicalReads)
		logr[i] = float64(st.LogicalReads)
		if st.Trace != nil {
			st.Trace.Walk(func(path string, depth int, sp *obs.Span) {
				if depth == 0 {
					return // the root is the whole query, already summarized
				}
				pa := phases[path]
				if pa == nil {
					pa = &phaseAcc{}
					phases[path] = pa
				}
				// Each span's totals include its children's; the path keys
				// let consumers reconstruct the hierarchy.
				pa.ms += ms(sp.Duration)
				pa.reads += float64(sp.PhysicalReads)
			})
		}
	}
	rec.TotalMS = newQuantiles(total)
	rec.CPUMS = newQuantiles(cpu)
	rec.IOMS = newQuantiles(io)
	rec.PhysicalReads = newQuantiles(phy)
	rec.LogicalReads = newQuantiles(logr)
	if len(phases) > 0 {
		names := make([]string, 0, len(phases))
		for n := range phases {
			names = append(names, n)
		}
		sort.Strings(names)
		n := float64(len(per))
		for _, name := range names {
			rec.Phases = append(rec.Phases, PhaseBreakdown{
				Name:              name,
				MeanMS:            phases[name].ms / n,
				MeanPhysicalReads: phases[name].reads / n,
			})
		}
	}
	return rec
}

// memCounter snapshots the runtime allocation totals so a workload can
// report allocations per query. The delta over the whole process includes
// harness overhead (stats slices, channel sends), which is negligible
// against the per-query index work.
type memCounter struct{ mallocs, bytes uint64 }

func startMemCount() memCounter {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return memCounter{mallocs: m.Mallocs, bytes: m.TotalAlloc}
}

// perOp returns the allocation deltas since the snapshot divided by n.
func (c memCounter) perOp(n int) (allocs, bytes float64) {
	if n <= 0 {
		return 0, 0
	}
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return float64(m.Mallocs-c.mallocs) / float64(n), float64(m.TotalAlloc-c.bytes) / float64(n)
}

// writeRecords writes the collected records as a JSON array.
func writeRecords(path string, recs []Record) error {
	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return nil
}
