package main

// planner.go benchmarks the cost-based planner: a mixed workload of query
// shapes where neither algorithm dominates, run three times over the same
// DB — forced STDS, forced STPS, and Auto. The planner first warms each
// shape's statistics under both algorithms (exactly what a production DB
// accumulates in its first minutes of traffic), then the measured passes
// compare Auto's per-shape mean against both fixed choices. The claim under
// test: Auto tracks the better fixed algorithm on every shape, so its
// overall mean beats whichever single algorithm a static deployment would
// have had to pick.
//
// Like the shard and cluster sweeps, the records always land in
// BENCH_planner.json.

import (
	"fmt"
	"log"
	"math/rand"

	"stpq"
	"stpq/internal/core"
	"stpq/internal/obs"
)

// plannerBenchFile is where the planner comparison always saves its records.
const plannerBenchFile = "BENCH_planner.json"

// plannerShape is one query shape of the mixed workload.
type plannerShape struct {
	name    string
	variant stpq.Variant
	radius  float64
	k       int
}

func (b *bench) plannerExp() {
	header("planner: auto vs forced algorithm, per shape (SRT)")
	ds := b.synthetic(b.scaled(defObjects), b.scaled(defFeatures), defSets, defVocab)

	db := stpq.New(stpq.Config{})
	objs := make([]stpq.Object, len(ds.Objects))
	for i, o := range ds.Objects {
		objs[i] = stpq.Object{ID: o.ID, X: o.Location.X, Y: o.Location.Y}
	}
	db.AddObjects(objs)
	setNames := make([]string, len(ds.FeatureSets))
	for i, fs := range ds.FeatureSets {
		feats := make([]stpq.Feature, len(fs))
		for j, f := range fs {
			var kws []string
			f.Keywords.ForEach(func(id int) { kws = append(kws, fmt.Sprintf("kw%d", id)) })
			feats[j] = stpq.Feature{ID: f.ID, X: f.Location.X, Y: f.Location.Y,
				Score: f.Score, Keywords: kws}
		}
		setNames[i] = fmt.Sprintf("set%d", i+1)
		db.AddFeatureSet(setNames[i], feats)
	}
	if err := db.Build(); err != nil {
		log.Fatal(err)
	}

	// Shapes chosen so the STDS/STPS balance varies: radius drives how much
	// of the feature space each algorithm touches, and the variants differ
	// in pruning structure.
	shapes := []plannerShape{
		{"range/r=0.005", stpq.Range, 0.005, defK},
		{"range/r=0.02", stpq.Range, 0.02, defK},
		{"influence/r=0.02", stpq.Influence, 0.02, defK},
		{"nn", stpq.NearestNeighbor, 0, defK},
	}
	// STDS passes run the slow algorithm too; keep the per-shape workload
	// in table3 territory rather than the full -queries sweep.
	nq := b.table3Queries * 4
	if nq > b.queries {
		nq = b.queries
	}

	var recs []Record
	overall := map[string]float64{} // algorithm -> summed per-shape mean ms
	for _, sh := range shapes {
		qs := b.plannerQueries(sh, setNames, nq)

		// Warm both candidate shapes past the prediction floor so the
		// measured Auto pass decides from real statistics, not the
		// cold-start fallback.
		for _, alg := range []stpq.Algorithm{stpq.STDS, stpq.STPS} {
			for i := 0; i < int(obs.MinPredictSamples); i++ {
				q := qs[i%len(qs)]
				q.Algorithm = alg
				if _, _, err := db.TopK(q); err != nil {
					log.Fatal(err)
				}
			}
		}

		choice := "?"
		if ex, err := db.Explain(withAlg(qs[0], stpq.Auto)); err == nil && ex.Plan != nil {
			choice = ex.Plan.Algorithm
		}
		means := map[string]float64{}
		for _, alg := range []stpq.Algorithm{stpq.STDS, stpq.STPS, stpq.Auto} {
			name := algName(alg)
			per := make([]core.Stats, len(qs))
			for i, q := range qs {
				_, st, err := db.TopK(withAlg(q, alg))
				if err != nil {
					log.Fatal(err)
				}
				per[i] = core.Stats{
					CPUTime: st.CPUTime, IOTime: st.IOTime,
					LogicalReads: st.LogicalReads, PhysicalReads: st.PhysicalReads,
					Combinations:   st.Combinations,
					FeaturesPulled: st.FeaturesPulled,
					ObjectsScored:  st.ObjectsScored,
				}
			}
			label := fmt.Sprintf("  %-18s %s", sh.name, name)
			rec := newRecord("planner", label, "SRT", name, nil, per)
			rec.Variant = core.Variant(sh.variant).String()
			if alg == stpq.Auto {
				rec.Counters = map[string]int64{"auto_chose_stds": 0}
				if choice == "stds" {
					rec.Counters["auto_chose_stds"] = 1
				}
			}
			recs = append(recs, rec)
			means[name] = rec.TotalMS.Mean
			overall[name] += rec.TotalMS.Mean
		}
		line(fmt.Sprintf("  %s", sh.name),
			fmt.Sprintf("stds %8.1fms  stps %8.1fms  auto %8.1fms (chose %s)",
				means["stds"], means["stps"], means["auto"], choice))
	}
	line("  overall (mean of shapes)",
		fmt.Sprintf("stds %8.1fms  stps %8.1fms  auto %8.1fms",
			overall["stds"]/float64(len(shapes)),
			overall["stps"]/float64(len(shapes)),
			overall["auto"]/float64(len(shapes))))

	if err := writeRecords(plannerBenchFile, recs); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d planner records to %s", len(recs), plannerBenchFile)
	if b.jsonPath != "" {
		b.records = append(b.records, recs...)
	}
}

// plannerQueries builds the fixed random workload of one shape.
func (b *bench) plannerQueries(sh plannerShape, setNames []string, n int) []stpq.Query {
	rng := rand.New(rand.NewSource(b.seed))
	qs := make([]stpq.Query, n)
	for i := range qs {
		kw := make(map[string][]string, len(setNames))
		for _, name := range setNames {
			words := make([]string, defQKw)
			for j := range words {
				words[j] = fmt.Sprintf("kw%d", rng.Intn(defVocab))
			}
			kw[name] = words
		}
		qs[i] = stpq.Query{
			K: sh.k, Radius: sh.radius, Lambda: defLambda,
			Variant: sh.variant, Keywords: kw,
		}
	}
	return qs
}

// withAlg returns q with the algorithm replaced.
func withAlg(q stpq.Query, alg stpq.Algorithm) stpq.Query {
	q.Algorithm = alg
	return q
}

// algName renders an algorithm choice with the telemetry spelling.
func algName(a stpq.Algorithm) string {
	switch a {
	case stpq.STDS:
		return "stds"
	case stpq.Auto:
		return "auto"
	default:
		return "stps"
	}
}
