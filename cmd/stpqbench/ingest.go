package main

// ingest.go benchmarks the live write path (stpq.Apply over a WAL): a
// read/write mix sweep on one synthetic DB, from read-only to
// write-heavy. Each data point interleaves STPS range queries with small
// durable mutation batches and reports both sides: query cost (the
// overlay makes un-merged writes visible, so reads pay a delta scan) and
// per-batch Apply latency (WAL append + fsync + delta publish). The
// ingest counters — applied mutations, auto-flush merges — land in the
// record so the merge cadence behind each number is visible.
//
// Like the shard sweep, the records always go to BENCH_ingest.json (in
// addition to -json, when given): the write-latency distribution and the
// counters are the point of the experiment.

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"stpq"
	"stpq/internal/core"
	"stpq/internal/datagen"
)

// ingestBenchFile is where the ingest sweep always saves its records.
const ingestBenchFile = "BENCH_ingest.json"

// ingestIDBase keeps bench-generated ids clear of the synthetic dataset.
const ingestIDBase int64 = 1 << 40

func (b *bench) ingestExp() {
	header(fmt.Sprintf("ingest: read/write mix over a WAL-backed DB (STPS, SRT, range, k=%d, r=%g)", defK, defRadius))
	// A smaller base than the figure experiments: each sweep point builds
	// a fresh DB (the WAL must start empty) and the experiment measures
	// the read/write interaction, not absolute index scale.
	objects := b.scaled(defObjects) / 4
	features := b.scaled(defFeatures) / 4
	ds := b.synthetic(objects, features, defSets, defVocab)
	var recs []Record
	for _, frac := range []float64{0, 0.1, 0.5} {
		recs = append(recs, b.ingestPoint(ds, frac)...)
	}
	recs = append(recs, b.ingestSweep(ds)...)
	if err := writeRecords(ingestBenchFile, recs); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d ingest records to %s", len(recs), ingestBenchFile)
	if b.jsonPath != "" {
		b.records = append(b.records, recs...)
	}
}

// ingestPoint runs one mix: b.queries operations, each a write batch with
// probability frac, otherwise a query. It returns a read record and, for
// mixed points, a write record whose TotalMS is the wall-clock Apply
// latency.
func (b *bench) ingestPoint(ds *datagen.Dataset, frac float64) []Record {
	walDir, err := os.MkdirTemp("", "stpq-bench-wal")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(walDir)
	db := ingestDB(ds, walDir, b.buffer, nil)
	rng := rand.New(rand.NewSource(b.seed))
	var (
		reads    []core.Stats
		writes   []core.Stats
		inserted []int64
		nextID   = ingestIDBase
		acc      core.Stats
	)
	for op := 0; op < b.queries; op++ {
		if rng.Float64() < frac {
			batch, ids := ingestBatch(rng, ds, nextID, inserted)
			nextID += int64(len(ids))
			inserted = append(inserted, ids...)
			t0 := time.Now()
			if err := db.Apply(batch); err != nil {
				log.Fatal(err)
			}
			// Wall-clock Apply latency reported through the CPU column:
			// the WAL fsync is real I/O, but the storage cost model only
			// meters page reads.
			writes = append(writes, core.Stats{CPUTime: time.Since(t0)})
			continue
		}
		_, st, err := db.TopK(ingestQuery(rng, ds))
		if err != nil {
			log.Fatal(err)
		}
		cst := coreStats(st)
		acc.Add(cst)
		reads = append(reads, cst)
	}
	m := db.Metrics().Counters
	counters := map[string]int64{
		"stpq_ingest_applied_total": m["stpq_ingest_applied_total"],
		"stpq_ingest_merges_total":  m["stpq_ingest_merges_total"],
	}
	label := fmt.Sprintf("  write-frac=%.2f", frac)
	read := newRecord("ingest", label+" reads", "SRT", "stps", nil, reads)
	read.Variant = core.RangeScore.String()
	read.Counters = counters
	recs := []Record{read}
	cols := []string{fmt.Sprintf("%4d reads %s", len(reads), cell(acc.Scale(len(reads))))}
	if len(writes) > 0 {
		write := newRecord("ingest", label+" writes", "SRT", "apply", nil, writes)
		write.Counters = counters
		recs = append(recs, write)
		cols = append(cols, fmt.Sprintf("%4d writes p50 %.2fms (merges %d)",
			len(writes), write.TotalMS.P50, counters["stpq_ingest_merges_total"]))
	}
	line(label, cols...)
	return recs
}

// ingestSweep is the sustained-write comparison behind the incremental-
// compaction work: the same write-heavy workload driven through each merge
// strategy on a fresh DB. AutoFlushOps is set low enough that every mode
// merges many times during the sweep, so the per-batch Apply latency
// distribution exposes the merge stall directly — under MergeRebuild the
// p99 batch is an O(N) bulk re-load, under MergeAuto it is a partial merge
// of the net delta, and with BackgroundCompaction the foreground batch only
// seals a run. The final Flush is inside the measured wall clock, so
// background mode pays for its deferred work in ops/sec.
func (b *bench) ingestSweep(ds *datagen.Dataset) []Record {
	header("ingest: sustained writes, merge-strategy sweep (rebuild vs incremental vs background)")
	modes := []struct {
		label string
		tune  func(c *stpq.Config)
	}{
		{"rebuild", func(c *stpq.Config) { c.MergePolicy = stpq.MergeRebuild }},
		{"incremental", func(c *stpq.Config) { c.MergePolicy = stpq.MergeAuto }},
		{"background", func(c *stpq.Config) {
			c.MergePolicy = stpq.MergeAuto
			c.BackgroundCompaction = true
		}},
	}
	var recs []Record
	for _, m := range modes {
		recs = append(recs, b.ingestSweepPoint(ds, m.label, m.tune)...)
	}
	return recs
}

// ingestSweepPoint drives one merge strategy: b.queries write batches with
// a read sampled every eighth operation, then a draining Flush. The write
// record's TotalMS.P99 is the write-stall number; QPS is applied mutations
// per second of measured wall clock.
func (b *bench) ingestSweepPoint(ds *datagen.Dataset, label string, tune func(c *stpq.Config)) []Record {
	walDir, err := os.MkdirTemp("", "stpq-bench-wal")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(walDir)
	db := ingestDB(ds, walDir, b.buffer, func(c *stpq.Config) {
		// Merge roughly every 16 batches so each mode's merge cadence —
		// not the WAL fsync — dominates the latency distribution.
		c.AutoFlushOps = 64
		tune(c)
	})
	defer db.CloseWAL()
	rng := rand.New(rand.NewSource(b.seed))
	var (
		reads    []core.Stats
		writes   []core.Stats
		inserted []int64
		nextID   = ingestIDBase
	)
	start := time.Now()
	for op := 0; op < b.queries; op++ {
		if op%8 == 7 {
			_, st, err := db.TopK(ingestQuery(rng, ds))
			if err != nil {
				log.Fatal(err)
			}
			reads = append(reads, coreStats(st))
			continue
		}
		batch, ids := ingestBatch(rng, ds, nextID, inserted)
		nextID += int64(len(ids))
		inserted = append(inserted, ids...)
		t0 := time.Now()
		if err := db.Apply(batch); err != nil {
			log.Fatal(err)
		}
		writes = append(writes, core.Stats{CPUTime: time.Since(t0)})
	}
	if err := db.Flush(); err != nil {
		log.Fatal(err)
	}
	wall := time.Since(start)
	m := db.Metrics().Counters
	counters := map[string]int64{
		"stpq_ingest_applied_total":        m["stpq_ingest_applied_total"],
		"stpq_ingest_merges_total":         m["stpq_ingest_merges_total"],
		"stpq_ingest_partial_merges_total": m["stpq_ingest_partial_merges_total"],
		"stpq_ingest_full_rebuilds_total":  m["stpq_ingest_full_rebuilds_total"],
		"stpq_ingest_compactions_total":    m["stpq_ingest_compactions_total"],
		"stpq_ingest_write_stalls_total":   m["stpq_ingest_write_stalls_total"],
	}
	lbl := fmt.Sprintf("  %-12s", label)
	write := newRecord("ingest-sweep", lbl+" writes", "SRT", "apply", nil, writes)
	write.Counters = counters
	write.QPS = float64(m["stpq_ingest_applied_total"]) / wall.Seconds()
	read := newRecord("ingest-sweep", lbl+" reads", "SRT", "stps", nil, reads)
	read.Variant = core.RangeScore.String()
	read.Counters = counters
	line(lbl, fmt.Sprintf("%6.0f ops/s  write p50 %6.2fms p99 %7.2fms  read p99 %6.2fms  (partial %d, full %d, stalls %d)",
		write.QPS, write.TotalMS.P50, write.TotalMS.P99, read.TotalMS.P99,
		counters["stpq_ingest_partial_merges_total"],
		counters["stpq_ingest_full_rebuilds_total"],
		counters["stpq_ingest_write_stalls_total"]))
	return []Record{write, read}
}

// ingestDB builds a fresh WAL-backed single-engine DB over ds, naming
// keywords kw<id> the way cmd/stpqd's synthetic path does. tune, when
// non-nil, adjusts the config before the DB is created.
func ingestDB(ds *datagen.Dataset, walDir string, buffer int, tune func(c *stpq.Config)) *stpq.DB {
	cfg := stpq.Config{WALDir: walDir, BufferPages: buffer}
	if tune != nil {
		tune(&cfg)
	}
	db := stpq.New(cfg)
	objs := make([]stpq.Object, len(ds.Objects))
	for i, o := range ds.Objects {
		objs[i] = stpq.Object{ID: o.ID, X: o.Location.X, Y: o.Location.Y}
	}
	db.AddObjects(objs)
	for i, fs := range ds.FeatureSets {
		feats := make([]stpq.Feature, len(fs))
		for j, f := range fs {
			var kws []string
			f.Keywords.ForEach(func(id int) { kws = append(kws, fmt.Sprintf("kw%d", id)) })
			feats[j] = stpq.Feature{
				ID: f.ID, X: f.Location.X, Y: f.Location.Y,
				Score: f.Score, Keywords: kws,
			}
		}
		db.AddFeatureSet(fmt.Sprintf("set%d", i+1), feats)
	}
	if err := db.Build(); err != nil {
		log.Fatal(err)
	}
	return db
}

// ingestBatch synthesizes one mutation batch: a fresh object, one feature
// upsert per set with an existing keyword (the delta path — new keywords
// would force a merge per batch), and sometimes a delete of an earlier
// bench-inserted object.
func ingestBatch(rng *rand.Rand, ds *datagen.Dataset, nextID int64, inserted []int64) ([]stpq.Mutation, []int64) {
	id := nextID
	muts := []stpq.Mutation{{
		Op:     stpq.OpUpsertObject,
		Object: &stpq.Object{ID: id, X: rng.Float64(), Y: rng.Float64()},
	}}
	for i := range ds.FeatureSets {
		muts = append(muts, stpq.Mutation{
			Op: stpq.OpUpsertFeature, Set: fmt.Sprintf("set%d", i+1),
			Feature: &stpq.Feature{
				ID: id + int64(i) + 1, X: rng.Float64(), Y: rng.Float64(),
				Score:    rng.Float64(),
				Keywords: []string{fmt.Sprintf("kw%d", rng.Intn(ds.VocabWidth))},
			},
		})
	}
	if len(inserted) > 0 && rng.Intn(4) == 0 {
		muts = append(muts, stpq.Mutation{
			Op: stpq.OpDeleteObject, ID: inserted[rng.Intn(len(inserted))],
		})
	}
	return muts, []int64{id}
}

// ingestQuery draws one STPS range query with the Table 2 defaults.
func ingestQuery(rng *rand.Rand, ds *datagen.Dataset) stpq.Query {
	kws := make(map[string][]string, len(ds.FeatureSets))
	for i := range ds.FeatureSets {
		set := make([]string, defQKw)
		for j := range set {
			set[j] = fmt.Sprintf("kw%d", rng.Intn(ds.VocabWidth))
		}
		kws[fmt.Sprintf("set%d", i+1)] = set
	}
	return stpq.Query{
		K: defK, Radius: defRadius, Lambda: defLambda,
		Keywords: kws, Variant: stpq.Range, Algorithm: stpq.STPS,
	}
}

// coreStats lowers the public Stats back into the internal struct the
// record layer summarizes (the trace tree is not carried over).
func coreStats(st stpq.Stats) core.Stats {
	return core.Stats{
		CPUTime:        st.CPUTime,
		IOTime:         st.IOTime,
		LogicalReads:   st.LogicalReads,
		PhysicalReads:  st.PhysicalReads,
		VoronoiCPUTime: st.VoronoiCPUTime,
		VoronoiReads:   st.VoronoiReads,
		Combinations:   st.Combinations,
		FeaturesPulled: st.FeaturesPulled,
		ObjectsScored:  st.ObjectsScored,
	}
}
