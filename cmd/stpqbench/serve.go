package main

// serve.go adds the concurrent-serving experiment: the same Table 2
// default workload, executed by 1..GOMAXPROCS parallel workers against a
// shared engine (the internal/serve execution model). The paper measures
// queries in isolation; this sweep shows how per-query cost and aggregate
// throughput behave when the buffer pools and indexes are shared by many
// in-flight queries through session views.

import (
	"fmt"
	"log"
	"runtime"
	"strings"
	"sync"
	"time"

	"stpq/internal/core"
	"stpq/internal/index"
)

// serve sweeps the worker count over both index kinds with STPS on the
// default synthetic dataset, reporting throughput and mean latency.
func (b *bench) serve() {
	header(fmt.Sprintf("serve: concurrent STPS throughput vs workers (range, k=%d, r=%g)", defK, defRadius))
	ds := b.synthetic(b.scaled(defObjects), b.scaled(defFeatures), defSets, defVocab)
	workers := b.parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sweep := []int{1}
	for w := 2; w < workers; w *= 2 {
		sweep = append(sweep, w)
	}
	if workers > 1 {
		sweep = append(sweep, workers)
	}
	for _, kind := range []index.Kind{index.SRT, index.IR2} {
		e := b.engine(dsKeyOf(ds), ds, kind)
		qs := ds.GenQueries(b.queries, b.defaultQC(core.RangeScore))
		for _, w := range sweep {
			label := fmt.Sprintf("%v workers=%d", kind, w)
			st, qps, rec := b.runParallel(label, kind.String(), "stps", e, qs, w)
			if b.jsonPath != "" {
				b.records = append(b.records, rec)
			}
			line(label, fmt.Sprintf("%7.1f q/s", qps), cell(st))
		}
	}
}

// runParallel executes the workload with w concurrent workers and returns
// the mean per-query stats, the aggregate throughput, and the Record
// summarizing the run (throughput and allocation counters included);
// callers decide where the record goes.
func (b *bench) runParallel(label, idx, alg string, e *core.Engine, qs []core.Query, w int) (core.Stats, float64, Record) {
	var (
		mu   sync.Mutex
		per  = make([]core.Stats, 0, len(qs))
		next = make(chan core.Query)
		wg   sync.WaitGroup
	)
	mc := startMemCount()
	start := time.Now()
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := range next {
				var (
					st  core.Stats
					err error
				)
				if alg == "stds" {
					_, st, err = e.STDS(q)
				} else {
					_, st, err = e.STPS(q)
				}
				if err != nil {
					log.Fatal(err)
				}
				mu.Lock()
				per = append(per, st)
				mu.Unlock()
			}
		}()
	}
	for _, q := range qs {
		next <- q
	}
	close(next)
	wg.Wait()
	elapsed := time.Since(start)
	qps := float64(len(per)) / elapsed.Seconds()
	rec := newRecord(b.curExp, strings.TrimSpace(label), idx, alg, qs, per)
	rec.QPS = qps
	rec.AllocsPerOp, rec.BytesPerOp = mc.perOp(len(per))
	var acc core.Stats
	for _, st := range per {
		acc.Add(st)
	}
	return acc.Scale(len(per)), qps, rec
}
