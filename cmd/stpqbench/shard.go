package main

// shard.go benchmarks the sharded scatter-gather engine: a shard-count
// sweep (S = 1 is the plain single engine) over two workload shapes — the
// paper's uniform-keyword synthetic data, where textual bounds cannot
// separate regions and every shard must be queried, and a regionalized
// variant (spatially correlated keywords, the shape of real POI data)
// where small-radius range queries let the gather phase prune the shards
// whose region cannot match. Results are identical across the sweep by
// construction; the experiment measures what sharding costs or saves.
//
// Unlike the figure experiments, this one always writes its records to
// BENCH_shard.json (in addition to -json, when given): the fanout/pruned
// counters are the point of the experiment, and the text table has no
// room for distributions.

import (
	"fmt"
	"log"

	"stpq/internal/core"
	"stpq/internal/datagen"
	"stpq/internal/index"
	"stpq/internal/obs"
	"stpq/internal/shard"
)

// shardBenchFile is where the shard sweep always saves its records.
const shardBenchFile = "BENCH_shard.json"

// shardParallelism fixes the scatter width so the wave-synchronous prune
// decisions — and with them the fanout/pruned counters — are reproducible
// across machines.
const shardParallelism = 2

// benchEngine is the query surface the sweep needs from both engines.
type benchEngine interface {
	STPS(core.Query) ([]core.Result, core.Stats, error)
}

func (b *bench) shardExp() {
	header("shard sweep: scatter-gather vs single engine (STPS, SRT)")
	uniform := b.synthetic(b.scaled(defObjects), b.scaled(defFeatures), defSets, defVocab)
	regional := uniform.Regionalize(4, b.seed)
	workloads := []struct {
		name    string
		ds      *datagen.Dataset
		variant core.Variant
	}{
		{"uniform kw, range", uniform, core.RangeScore},
		{"regional kw, range", regional, core.RangeScore},
		{"regional kw, influence", regional, core.InfluenceScore},
	}
	var recs []Record
	for _, wl := range workloads {
		qc := b.defaultQC(wl.variant)
		qc.NumKeywords = 2 // keep regional queries near-local (≤2 regions/set)
		qs := wl.ds.GenQueries(b.queries, qc)
		for _, shards := range []int{1, 2, 4, 8} {
			reg := obs.NewRegistry()
			e := b.shardEngine(wl.ds, shards, reg)
			var (
				acc core.Stats
				per = make([]core.Stats, 0, len(qs))
			)
			mc := startMemCount()
			for _, q := range qs {
				_, st, err := e.STPS(q)
				if err != nil {
					log.Fatal(err)
				}
				acc.Add(st)
				per = append(per, st)
			}
			label := fmt.Sprintf("  %s, S=%d", wl.name, shards)
			rec := newRecord("shard", label, "SRT", "stps", qs, per)
			rec.AllocsPerOp, rec.BytesPerOp = mc.perOp(len(qs))
			cols := []string{cell(acc.Scale(len(qs)))}
			if shards > 1 {
				fanout := reg.Counter("stpq_shard_fanout_total").Value()
				pruned := reg.Counter("stpq_shard_pruned_total").Value()
				rec.Counters = map[string]int64{
					"stpq_shard_fanout_total": fanout,
					"stpq_shard_pruned_total": pruned,
				}
				cols = append(cols, fmt.Sprintf("fanout %.2f pruned %.2f /query",
					float64(fanout)/float64(len(qs)), float64(pruned)/float64(len(qs))))
			}
			recs = append(recs, rec)
			line(label, cols...)
		}
	}
	if err := writeRecords(shardBenchFile, recs); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d shard records to %s", len(recs), shardBenchFile)
	if b.jsonPath != "" {
		b.records = append(b.records, recs...)
	}
}

// shardEngine builds the S-shard engine over ds (S = 1: the plain core
// engine, built fresh so its buffer pools start cold like the sharded
// ones). Scatter counters land in reg.
func (b *bench) shardEngine(ds *datagen.Dataset, shards int, reg *obs.Registry) benchEngine {
	opts := index.Options{Kind: index.SRT, VocabWidth: ds.VocabWidth, BufferPages: b.buffer}
	if shards <= 1 {
		oidx, err := index.BuildObjectIndex(ds.Objects, opts)
		if err != nil {
			log.Fatal(err)
		}
		fidxs := make([]*index.FeatureIndex, len(ds.FeatureSets))
		for i, fs := range ds.FeatureSets {
			fidxs[i], err = index.BuildFeatureIndex(fs, opts)
			if err != nil {
				log.Fatal(err)
			}
		}
		e, err := core.NewEngine(oidx, fidxs, core.Options{
			BatchSTDS: true, CostModel: b.cost, Trace: b.jsonPath != "",
		})
		if err != nil {
			log.Fatal(err)
		}
		return e
	}
	e, err := shard.New(ds.Objects, ds.FeatureSets, shard.Options{
		Shards:      shards,
		Parallelism: shardParallelism,
		Index:       opts,
		Core: core.Options{
			BatchSTDS: true, CostModel: b.cost, Trace: b.jsonPath != "",
		},
		Metrics: reg,
	})
	if err != nil {
		log.Fatal(err)
	}
	return e
}
