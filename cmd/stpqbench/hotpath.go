package main

// hotpath.go benchmarks the hot-path engineering of the query engine:
// parallel STPS range workloads over the same dataset served once by the
// classic single-lock LRU buffer pool (stripes=1, the paper's cost-model
// configuration) and once by the lock-striped pool. The sweep crosses
// worker count × striping and records throughput, latency quantiles and
// allocation cost per query, so the effect of lock striping and of the
// query-scratch pooling shows up in one table.
//
// Like the shard sweep, this experiment always writes its records to
// BENCH_hotpath.json: the qps/allocs columns are the point, and the text
// table has no room for the distributions.
//
// Correctness is asserted inline before timing: both engines must return
// identical result lists for a sample of the workload (striping changes
// eviction order, never answers).

import (
	"fmt"
	"log"

	"stpq/internal/core"
	"stpq/internal/datagen"
	"stpq/internal/index"
)

// hotpathBenchFile is where the hotpath sweep always saves its records.
const hotpathBenchFile = "BENCH_hotpath.json"

// hotpathStripes is the striped configuration measured against the
// single-lock baseline.
const hotpathStripes = 8

func (b *bench) hotpath() {
	header(fmt.Sprintf("hotpath: parallel STPS throughput vs pool striping (range, SRT, stripes=%d)", hotpathStripes))
	// Regionalized keywords make the workload spatially coherent — the
	// shape under which concurrent queries actually share buffer-pool
	// pages and contend on the pool locks.
	ds := b.synthetic(b.scaled(defObjects), b.scaled(defFeatures), defSets, defVocab).
		Regionalize(4, b.seed)
	qc := b.defaultQC(core.RangeScore)
	qc.NumKeywords = 2
	qs := ds.GenQueries(b.queries, qc)

	single := b.hotpathEngine(ds, 1)
	striped := b.hotpathEngine(ds, hotpathStripes)
	b.verifySameAnswers(single, striped, qs)

	var recs []Record
	for _, cfg := range []struct {
		name    string
		stripes int
		e       *core.Engine
	}{
		{"single-lock", 1, single},
		{"striped", hotpathStripes, striped},
	} {
		for _, w := range []int{1, 2, 4, 8} {
			label := fmt.Sprintf("  %s stripes=%d workers=%d", cfg.name, cfg.stripes, w)
			st, qps, rec := b.runParallel(label, "SRT", "stps", cfg.e, qs, w)
			rec.Experiment = "hotpath"
			rec.Counters = map[string]int64{
				"pool_stripes": int64(cfg.stripes),
				"workers":      int64(w),
			}
			recs = append(recs, rec)
			line(label,
				fmt.Sprintf("%7.1f q/s", qps),
				cell(st),
				fmt.Sprintf("%9.0f allocs/op %11.0f B/op", rec.AllocsPerOp, rec.BytesPerOp))
		}
	}
	if err := writeRecords(hotpathBenchFile, recs); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d hotpath records to %s", len(recs), hotpathBenchFile)
	if b.jsonPath != "" {
		b.records = append(b.records, recs...)
	}
}

// hotpathEngine builds a fresh SRT engine over ds whose buffer pools use
// the given stripe count. Tracing stays off so the allocation counters
// measure the query path, not the span trees.
func (b *bench) hotpathEngine(ds *datagen.Dataset, stripes int) *core.Engine {
	opts := index.Options{
		Kind: index.SRT, VocabWidth: ds.VocabWidth,
		BufferPages: b.buffer, PoolStripes: stripes,
	}
	oidx, err := index.BuildObjectIndex(ds.Objects, opts)
	if err != nil {
		log.Fatal(err)
	}
	fidxs := make([]*index.FeatureIndex, len(ds.FeatureSets))
	for i, fs := range ds.FeatureSets {
		fidxs[i], err = index.BuildFeatureIndex(fs, opts)
		if err != nil {
			log.Fatal(err)
		}
	}
	e, err := core.NewEngine(oidx, fidxs, core.Options{BatchSTDS: true, CostModel: b.cost})
	if err != nil {
		log.Fatal(err)
	}
	return e
}

// verifySameAnswers runs a sample of the workload serially on both
// engines and aborts on any result divergence.
func (b *bench) verifySameAnswers(a, c *core.Engine, qs []core.Query) {
	n := len(qs)
	if n > 20 {
		n = 20
	}
	for i := 0; i < n; i++ {
		ra, _, err := a.STPS(qs[i])
		if err != nil {
			log.Fatal(err)
		}
		rc, _, err := c.STPS(qs[i])
		if err != nil {
			log.Fatal(err)
		}
		if len(ra) != len(rc) {
			log.Fatalf("hotpath: query %d: single-lock returned %d results, striped %d", i, len(ra), len(rc))
		}
		for j := range ra {
			if ra[j] != rc[j] {
				log.Fatalf("hotpath: query %d rank %d: single-lock %+v != striped %+v", i, j, ra[j], rc[j])
			}
		}
	}
}
