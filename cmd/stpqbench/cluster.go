package main

// cluster.go benchmarks distributed scatter-gather: the synthetic dataset
// partitioned across N in-process cluster nodes on loopback TCP, queried
// through a coordinator by a closed-loop concurrent workload. N = 1 is a
// one-node cluster (the full RPC + coordination overhead, no fan-out win),
// the baseline the node-count sweep is read against. Per-query engine
// counters come back over the wire, so the records carry the same cost
// breakdown as the in-process experiments plus scatter QPS, latency
// quantiles and fanout/pruned totals.
//
// Like the shard sweep, the records always land in BENCH_cluster.json.

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"stpq"
	"stpq/internal/cluster"
	"stpq/internal/core"
	"stpq/internal/serve"
	"stpq/internal/shard"
)

// clusterBenchFile is where the node-count sweep always saves its records.
const clusterBenchFile = "BENCH_cluster.json"

// clusterWorkers is the closed-loop client concurrency per data point.
const clusterWorkers = 8

func (b *bench) clusterExp() {
	header("cluster sweep: coordinator scatter-gather vs node count (STPS, SRT)")
	ds := b.synthetic(b.scaled(defObjects), b.scaled(defFeatures), defSets, defVocab)

	// Lower the dataset into the public types once; every node count
	// re-partitions the same objects.
	objs := make([]stpq.Object, len(ds.Objects))
	for i, o := range ds.Objects {
		objs[i] = stpq.Object{ID: o.ID, X: o.Location.X, Y: o.Location.Y}
	}
	sets := make([]struct {
		name  string
		feats []stpq.Feature
	}, len(ds.FeatureSets))
	for i, fs := range ds.FeatureSets {
		feats := make([]stpq.Feature, len(fs))
		for j, f := range fs {
			var kws []string
			f.Keywords.ForEach(func(id int) { kws = append(kws, fmt.Sprintf("kw%d", id)) })
			feats[j] = stpq.Feature{ID: f.ID, X: f.Location.X, Y: f.Location.Y,
				Score: f.Score, Keywords: kws}
		}
		sets[i].name = fmt.Sprintf("set%d", i+1)
		sets[i].feats = feats
	}

	// A fixed query workload shared by every node count.
	rng := rand.New(rand.NewSource(b.seed))
	queries := make([]stpq.Query, b.queries)
	for i := range queries {
		kw := make(map[string][]string, len(sets))
		for _, s := range sets {
			words := make([]string, defQKw)
			for j := range words {
				words[j] = fmt.Sprintf("kw%d", rng.Intn(defVocab))
			}
			kw[s.name] = words
		}
		queries[i] = stpq.Query{
			K: defK, Radius: defRadius, Lambda: defLambda, Keywords: kw,
		}
	}

	var recs []Record
	for _, nodes := range []int{1, 2, 4} {
		rec := b.clusterPoint(objs, sets, queries, nodes)
		recs = append(recs, rec)
	}
	if err := writeRecords(clusterBenchFile, recs); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d cluster records to %s", len(recs), clusterBenchFile)
	if b.jsonPath != "" {
		b.records = append(b.records, recs...)
	}
}

// clusterPoint measures one node count: start the nodes, scatter the
// workload through a coordinator with clusterWorkers in flight, record
// QPS, latency quantiles and the summed engine counters.
func (b *bench) clusterPoint(objs []stpq.Object, sets []struct {
	name  string
	feats []stpq.Feature
}, queries []stpq.Query, nodes int) Record {
	leaders := make([]string, nodes)
	for i := range leaders {
		leaders[i] = "pending"
	}
	m, err := cluster.BuildMap(objs, leaders, shard.HilbertRuns)
	if err != nil {
		log.Fatal(err)
	}
	var cleanup []func()
	defer func() {
		for i := len(cleanup) - 1; i >= 0; i-- {
			cleanup[i]()
		}
	}()
	for i := 0; i < nodes; i++ {
		db := stpq.New(stpq.Config{PageSize: 4096})
		db.AddObjects(m.PartitionObjects(objs, i))
		for _, s := range sets {
			db.AddFeatureSet(s.name, s.feats)
		}
		if err := db.Build(); err != nil {
			log.Fatal(err)
		}
		svc, err := serve.New(db, serve.Config{CacheEntries: -1})
		if err != nil {
			log.Fatal(err)
		}
		cleanup = append(cleanup, svc.Close)
		n := cluster.NewNode(cluster.NodeConfig{NodeID: i, Service: svc, DB: db})
		addr, err := n.Start("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		cleanup = append(cleanup, n.Close)
		m.Nodes[i].Leader = addr.String()
	}
	coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
		Map: m, HealthInterval: -1,
	})
	if err != nil {
		log.Fatal(err)
	}
	cleanup = append(cleanup, coord.Close)

	// Closed loop: clusterWorkers goroutines draw queries from one shared
	// index until the workload drains.
	per := make([]core.Stats, len(queries))
	walls := make([]time.Duration, len(queries))
	var (
		next int
		mu   sync.Mutex
		wg   sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < clusterWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(queries) {
					return
				}
				t0 := time.Now()
				resp, err := coord.Do(queries[i])
				if err != nil {
					log.Fatalf("cluster nodes=%d query %d: %v", len(m.Nodes), i, err)
				}
				walls[i] = time.Since(t0)
				per[i] = core.Stats{
					CPUTime:        time.Duration(resp.Stats.Sum.CPUNanos),
					IOTime:         time.Duration(resp.Stats.Sum.IONanos),
					LogicalReads:   resp.Stats.Sum.LogicalReads,
					PhysicalReads:  resp.Stats.Sum.PhysicalReads,
					Combinations:   int(resp.Stats.Sum.Combinations),
					FeaturesPulled: int(resp.Stats.Sum.FeaturesPulled),
					ObjectsScored:  int(resp.Stats.Sum.ObjectsScored),
					ShardFanout:    resp.Stats.Fanout,
					ShardPruned:    resp.Stats.Pruned,
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	label := fmt.Sprintf("  nodes=%d", nodes)
	rec := newRecord("cluster", label, "SRT", "stps", nil, per)
	rec.Variant = "range"
	rec.QPS = float64(len(queries)) / elapsed.Seconds()
	fanout := coord.Metrics().Counter("stpq_cluster_fanout_total").Value()
	pruned := coord.Metrics().Counter("stpq_cluster_pruned_total").Value()
	rec.Counters = map[string]int64{
		"stpq_cluster_fanout_total": fanout,
		"stpq_cluster_pruned_total": pruned,
	}
	line(label, fmt.Sprintf("%.0f queries/s  p50 %s p99 %s  fanout %.2f pruned %.2f /query",
		rec.QPS, wallQuantile(walls, 0.50), wallQuantile(walls, 0.99),
		float64(fanout)/float64(len(queries)), float64(pruned)/float64(len(queries))))
	return rec
}

// wallQuantile returns the q-th quantile of unsorted wall latencies.
func wallQuantile(walls []time.Duration, q float64) time.Duration {
	sorted := make([]time.Duration, len(walls))
	copy(sorted, walls)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i].Round(10 * time.Microsecond)
}
