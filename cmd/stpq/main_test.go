package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadObjects(t *testing.T) {
	path := writeFile(t, "objects.csv", "id,x,y\n1,0.5,0.25\n2,0.1,0.9\n\n")
	objs, err := loadObjects(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Fatalf("got %d objects", len(objs))
	}
	if objs[0].ID != 1 || objs[0].X != 0.5 || objs[0].Y != 0.25 {
		t.Errorf("first object = %+v", objs[0])
	}
}

func TestLoadObjectsBadRow(t *testing.T) {
	path := writeFile(t, "objects.csv", "id,x,y\nnot-a-number,0.5,0.25\n")
	if _, err := loadObjects(path); err == nil {
		t.Fatal("expected parse error")
	}
	path = writeFile(t, "short.csv", "id,x,y\n1,0.5\n")
	if _, err := loadObjects(path); err == nil {
		t.Fatal("expected column-count error")
	}
	if _, err := loadObjects(filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Fatal("expected open error")
	}
}

func TestLoadFeatures(t *testing.T) {
	path := writeFile(t, "features.csv",
		"id,x,y,score,keywords\n7,0.3,0.4,0.9,pizza;italian\n8,0.6,0.7,0.5,sushi\n")
	feats, err := loadFeatures(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(feats) != 2 {
		t.Fatalf("got %d features", len(feats))
	}
	f := feats[0]
	if f.ID != 7 || f.Score != 0.9 || len(f.Keywords) != 2 || f.Keywords[1] != "italian" {
		t.Errorf("feature = %+v", f)
	}
}

func TestStringListFlag(t *testing.T) {
	var s stringList
	_ = s.Set("a")
	_ = s.Set("b")
	if len(s) != 2 || s.String() != "a,b" {
		t.Errorf("stringList = %v", s)
	}
}
