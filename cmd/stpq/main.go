// Command stpq answers top-k spatio-textual preference queries over CSV
// datasets (as produced by stpqgen) from the command line.
//
// Usage:
//
//	stpq -objects data/objects.csv \
//	     -features data/features_1.csv -kw "italian;pizza" \
//	     -features data/features_2.csv -kw "espresso;muffins" \
//	     -k 10 -r 0.01 -lambda 0.5 -variant range -alg stps
//
// Each -features flag adds one feature set; the i-th -kw flag supplies the
// query keywords for the i-th feature set (semicolon separated).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"stpq"
)

// stringList collects repeated flag values.
type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }

// Set implements flag.Value.
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("stpq: ")
	var (
		objectsPath = flag.String("objects", "", "objects CSV (id,x,y)")
		featFiles   stringList
		kwArgs      stringList
		k           = flag.Int("k", 10, "number of results")
		r           = flag.Float64("r", 0.01, "query radius (normalized)")
		lambda      = flag.Float64("lambda", 0.5, "smoothing parameter λ")
		variant     = flag.String("variant", "range", "score variant: range | influence | nn")
		alg         = flag.String("alg", "stps", "algorithm: stps | stds | auto (cost-based planner)")
		indexKind   = flag.String("index", "srt", "feature index: srt | ir2")
		sim         = flag.String("sim", "jaccard", "textual similarity: jaccard | dice | cosine | overlap")
		saveDir     = flag.String("save", "", "after building, save the indexes to this directory")
		openDir     = flag.String("open", "", "open a saved database instead of loading CSVs")
		trace       = flag.Bool("trace", false, "collect and print the query's span tree (phase timings and page reads)")
		explain     = flag.Bool("explain", false, "print the query plan (algorithm, shard order, predicted cost) before executing")
		mode        = flag.String("mode", "exact", "execution tier: exact | approx (MinHash/LSH fast tier)")
		recall      = flag.Float64("recall", 0, "approx-mode recall target in (0,1]; 0 uses the default")
	)
	flag.Var(&featFiles, "features", "feature set CSV (repeatable)")
	flag.Var(&kwArgs, "kw", "query keywords for the matching -features flag, ';' separated (repeatable)")
	flag.Parse()

	var db *stpq.DB
	keywords := make(map[string][]string)
	if *openDir != "" {
		var err error
		db, err = stpq.Open(*openDir)
		if err != nil {
			log.Fatal(err)
		}
		for i, name := range db.FeatureSetNames() {
			if i < len(kwArgs) {
				keywords[name] = strings.Split(kwArgs[i], ";")
			}
		}
	} else {
		if *objectsPath == "" || len(featFiles) == 0 {
			flag.Usage()
			os.Exit(2)
		}
		cfg := stpq.Config{}
		if *indexKind == "ir2" {
			cfg.IndexKind = stpq.IR2
		}
		db = stpq.New(cfg)
		objs, err := loadObjects(*objectsPath)
		if err != nil {
			log.Fatal(err)
		}
		db.AddObjects(objs)
		for i, path := range featFiles {
			feats, err := loadFeatures(path)
			if err != nil {
				log.Fatal(err)
			}
			name := fmt.Sprintf("set%d", i+1)
			db.AddFeatureSet(name, feats)
			if i < len(kwArgs) {
				keywords[name] = strings.Split(kwArgs[i], ";")
			}
		}
		if err := db.Build(); err != nil {
			log.Fatal(err)
		}
		if *saveDir != "" {
			if err := db.Save(*saveDir); err != nil {
				log.Fatal(err)
			}
			fmt.Println("saved database to", *saveDir)
		}
	}

	q := stpq.Query{K: *k, Radius: *r, Lambda: *lambda, Keywords: keywords}
	switch *variant {
	case "range":
	case "influence":
		q.Variant = stpq.Influence
	case "nn":
		q.Variant = stpq.NearestNeighbor
	default:
		log.Fatalf("unknown -variant %q", *variant)
	}
	switch *alg {
	case "stps":
	case "stds":
		q.Algorithm = stpq.STDS
	case "auto":
		q.Algorithm = stpq.Auto
	default:
		log.Fatalf("unknown -alg %q", *alg)
	}
	switch *sim {
	case "jaccard":
	case "dice":
		q.Similarity = stpq.DiceSim
	case "cosine":
		q.Similarity = stpq.CosineSim
	case "overlap":
		q.Similarity = stpq.OverlapSim
	default:
		log.Fatalf("unknown -sim %q", *sim)
	}
	switch *mode {
	case "exact":
	case "approx":
		q.Mode = stpq.ModeApprox
		q.Recall = *recall
	default:
		log.Fatalf("unknown -mode %q", *mode)
	}

	db.SetTracing(*trace)
	if *explain {
		ex, err := db.Explain(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(ex.String())
		fmt.Println()
	}
	res, stats, err := db.TopK(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-%d (%s, %s):\n", *k, *alg, *variant)
	for i, p := range res {
		fmt.Printf("%3d. object %-8d score %.6f  (%.4f, %.4f)\n", i+1, p.ID, p.Score, p.X, p.Y)
	}
	fmt.Printf("\ncost: %v CPU + %v modeled I/O (%d logical / %d physical page reads)\n",
		stats.CPUTime, stats.IOTime, stats.LogicalReads, stats.PhysicalReads)
	if q.Mode == stpq.ModeApprox {
		fmt.Printf("approx: %d candidates tested, %d pruned by LSH, %d verification reads skipped\n",
			stats.ApproxCandidates, stats.ApproxPruned, stats.ApproxSkippedReads)
	}
	if *trace {
		fmt.Printf("\ntrace:\n%s", stats.Trace)
	}
}

// loadObjects parses an objects CSV.
func loadObjects(path string) ([]stpq.Object, error) {
	rows, err := readCSV(path, 3)
	if err != nil {
		return nil, err
	}
	out := make([]stpq.Object, 0, len(rows))
	for _, row := range rows {
		id, err1 := strconv.ParseInt(row[0], 10, 64)
		x, err2 := strconv.ParseFloat(row[1], 64)
		y, err3 := strconv.ParseFloat(row[2], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("%s: bad row %v", path, row)
		}
		out = append(out, stpq.Object{ID: id, X: x, Y: y})
	}
	return out, nil
}

// loadFeatures parses a features CSV.
func loadFeatures(path string) ([]stpq.Feature, error) {
	rows, err := readCSV(path, 5)
	if err != nil {
		return nil, err
	}
	out := make([]stpq.Feature, 0, len(rows))
	for _, row := range rows {
		id, err1 := strconv.ParseInt(row[0], 10, 64)
		x, err2 := strconv.ParseFloat(row[1], 64)
		y, err3 := strconv.ParseFloat(row[2], 64)
		s, err4 := strconv.ParseFloat(row[3], 64)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return nil, fmt.Errorf("%s: bad row %v", path, row)
		}
		out = append(out, stpq.Feature{
			ID: id, X: x, Y: y, Score: s,
			Keywords: strings.Split(row[4], ";"),
		})
	}
	return out, nil
}

// readCSV reads a header-prefixed CSV with a fixed column count. The
// keyword column may itself contain semicolons, so a plain split suffices
// (no quoting in our format).
func readCSV(path string, cols int) ([][]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rows [][]string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	first := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if first {
			first = false
			continue // header
		}
		parts := strings.SplitN(line, ",", cols)
		if len(parts) != cols {
			return nil, fmt.Errorf("%s: expected %d columns: %q", path, cols, line)
		}
		rows = append(rows, parts)
	}
	return rows, sc.Err()
}
