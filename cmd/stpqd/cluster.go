package main

// cluster.go is stpqd's distributed mode — three roles of the same binary:
//
//	stpqd -synthetic -write-cluster-map map.json \
//	      -cluster-leaders 127.0.0.1:9090,127.0.0.1:9091,127.0.0.1:9092
//	    partitions the dataset, writes the map, exits.
//
//	stpqd -synthetic -cluster-node -node-id 0 -cluster-map map.json -rpc :9090
//	    serves cell 0 over the cluster RPC protocol (plus the usual HTTP
//	    endpoints on -addr for debugging). With -wal-dir it is the cell's
//	    leader and rotates its WAL every -wal-rotate so followers can pull
//	    sealed segments; with -follow <leader> it is a read replica fed by
//	    WAL log shipping.
//
//	stpqd -cluster-coordinator -cluster-map map.json -addr :8080
//	    serves the single-process HTTP query API, answered by scatter-
//	    gather over the cluster with retries, failover and optional
//	    hedging (-hedge-after).

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"stpq"
	"stpq/internal/cluster"
	"stpq/internal/serve"
	"stpq/internal/shard"
)

// clusterConfig carries the parsed cluster flags.
type clusterConfig struct {
	node, coordinator bool
	mapPath           string
	nodeID            int
	rpcAddr           string
	follow            string
	walRotate         time.Duration
	writeMap          string
	leaders           string
	hedgeAfter        time.Duration
	retryMax          int
	parallelism       int
}

// runWriteClusterMap partitions the synthetic dataset across the given
// leader endpoints and writes the partition map.
func runWriteClusterMap(cfg daemonConfig) error {
	if !cfg.synthetic {
		return errors.New("-write-cluster-map needs -synthetic (the map partitions a generated dataset)")
	}
	if cfg.cluster.leaders == "" {
		return errors.New("-write-cluster-map needs -cluster-leaders host:port,host:port,...")
	}
	leaders := splitEndpoints(cfg.cluster.leaders)
	strat := shard.HilbertRuns
	if cfg.strategy == "grid" {
		strat = shard.FixedGrid
	}
	objs, _ := syntheticData(cfg)
	m, err := cluster.BuildMap(objs, leaders, strat)
	if err != nil {
		return err
	}
	if err := m.Save(cfg.cluster.writeMap); err != nil {
		return err
	}
	log.Printf("wrote %s: %d cells (%s) over %d objects", cfg.cluster.writeMap,
		m.Partition.Cells, strat, len(objs))
	return nil
}

// splitEndpoints parses a comma-separated endpoint list.
func splitEndpoints(s string) []string {
	var out []string
	for _, ep := range strings.Split(s, ",") {
		if ep = strings.TrimSpace(ep); ep != "" {
			out = append(out, ep)
		}
	}
	return out
}

// loadCellDB builds this node's DB: the cell's objects under the map's
// partition, every feature set in full (feature replication is what makes
// per-node scores exact global scores).
func loadCellDB(cfg daemonConfig, m cluster.Map) (*stpq.DB, error) {
	if cfg.open != "" {
		// An opened DB is already the cell's slice (saved by an earlier
		// cluster node); serve it as-is.
		return stpq.Open(cfg.open)
	}
	if !cfg.synthetic {
		return nil, errors.New("cluster node needs a dataset: pass -open <dir> or -synthetic")
	}
	kind := stpq.SRT
	switch cfg.indexKind {
	case "srt":
	case "ir2":
		kind = stpq.IR2
	default:
		return nil, fmt.Errorf("unknown -index %q", cfg.indexKind)
	}
	if cfg.shards > 1 {
		return nil, errors.New("-shards does not apply to -cluster-node (the cluster map is the partition)")
	}
	walDir := cfg.walDir
	if cfg.cluster.follow != "" && walDir != "" {
		return nil, errors.New("-follow and -wal-dir are mutually exclusive: a follower replays the leader's log, it does not own one")
	}
	db := stpq.New(stpq.Config{
		IndexKind: kind, PoolStripes: cfg.stripes, WALDir: walDir,
		WALRetainSegments: 4,
		TraceSampleRate:   cfg.traceRate, SlowQueryThreshold: cfg.slowQuery,
	})
	objs, sets := syntheticData(cfg)
	cell := m.PartitionObjects(objs, cfg.cluster.nodeID)
	log.Printf("cell %d: %d of %d objects", cfg.cluster.nodeID, len(cell), len(objs))
	db.AddObjects(cell)
	for _, s := range sets {
		db.AddFeatureSet(s.name, s.feats)
	}
	if err := db.Build(); err != nil {
		return nil, err
	}
	return db, nil
}

// runClusterNode serves one partition cell: cluster RPC on -rpc, the usual
// HTTP endpoints on -addr, WAL rotation when leading, log-shipping
// replication when following.
func runClusterNode(cfg daemonConfig) error {
	if cfg.cluster.mapPath == "" {
		return errors.New("-cluster-node needs -cluster-map")
	}
	m, err := cluster.LoadMap(cfg.cluster.mapPath)
	if err != nil {
		return err
	}
	if cfg.cluster.nodeID < 0 || cfg.cluster.nodeID >= len(m.Nodes) {
		return fmt.Errorf("-node-id %d out of range: map has %d cells", cfg.cluster.nodeID, len(m.Nodes))
	}
	if cfg.pprofAddr != "" {
		startPprof(cfg.pprofAddr)
	}
	db, err := loadCellDB(cfg, m)
	if err != nil {
		return err
	}
	svc, err := serve.New(db, cfg.serve)
	if err != nil {
		return err
	}
	defer svc.Close()

	node := cluster.NewNode(cluster.NodeConfig{
		NodeID:  cfg.cluster.nodeID,
		Service: svc,
		DB:      db,
		Logf:    log.Printf,
	})
	addr, err := node.Start(cfg.cluster.rpcAddr)
	if err != nil {
		return err
	}
	defer node.Close()
	log.Printf("cluster node %d: RPC on %s", cfg.cluster.nodeID, addr)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Leader: seal the active WAL segment periodically so followers always
	// have recent history to fetch.
	if cfg.walDir != "" && cfg.cluster.walRotate > 0 {
		go func() {
			ticker := time.NewTicker(cfg.cluster.walRotate)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					if err := db.WALRotate(); err != nil && !errors.Is(err, stpq.ErrNoWAL) {
						log.Printf("WAL rotate: %v", err)
					}
				}
			}
		}()
	}

	// Follower: pull sealed segments from the leader and replay them.
	if cfg.cluster.follow != "" {
		src := cluster.NewClient(cfg.cluster.follow, 0)
		defer src.Close()
		rep, err := cluster.StartReplica(cluster.ReplicaConfig{
			DB: db, Source: src, Logf: log.Printf,
		})
		if err != nil {
			return err
		}
		defer rep.Close()
		log.Printf("following %s (applied seq %d)", cfg.cluster.follow, rep.AppliedSeq())
	}

	// The regular HTTP endpoints stay up on -addr for health probes,
	// metrics and debugging.
	srv := &http.Server{Addr: cfg.addr, Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("HTTP on %s", cfg.addr)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("shutting down cluster node %d", cfg.cluster.nodeID)
	node.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("bye")
	return nil
}

// runCoordinator serves scatter-gather queries over the cluster.
func runCoordinator(cfg daemonConfig) error {
	if cfg.cluster.mapPath == "" {
		return errors.New("-cluster-coordinator needs -cluster-map")
	}
	m, err := cluster.LoadMap(cfg.cluster.mapPath)
	if err != nil {
		return err
	}
	if cfg.pprofAddr != "" {
		startPprof(cfg.pprofAddr)
	}
	coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
		Map:         m,
		Parallelism: cfg.cluster.parallelism,
		RPCTimeout:  cfg.serve.Timeout,
		RetryMax:    cfg.cluster.retryMax,
		HedgeAfter:  cfg.cluster.hedgeAfter,
	})
	if err != nil {
		return err
	}
	defer coord.Close()
	log.Printf("coordinator over %d nodes (map %s)", len(m.Nodes), cfg.cluster.mapPath)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	srv := &http.Server{Addr: cfg.addr, Handler: coord.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("HTTP on %s", cfg.addr)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("shutting down coordinator")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("bye")
	return nil
}
