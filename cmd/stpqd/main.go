// Command stpqd serves top-k spatio-textual preference queries over HTTP:
// a built stpq.DB behind the internal/serve worker pool, with admission
// control and a result cache.
//
// Usage:
//
//	stpqd -synthetic -objects 20000 -features 20000 -addr :8080
//	stpqd -open data/db -workers 8 -queue 128 -timeout 2s
//
// Endpoints:
//
//	POST /query    {"k":5,"radius":0.1,"lambda":0.5,"keywords":{"set":["kw1"]}}
//	GET  /healthz  liveness
//	GET  /metrics  Prometheus text format
//	GET  /info     dataset shape (used by stpqload)
//
// SIGINT/SIGTERM trigger a graceful shutdown: admission stops, queued and
// in-flight queries drain, then the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"stpq"
	"stpq/internal/datagen"
	"stpq/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("stpqd: ")
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		open      = flag.String("open", "", "directory of a DB written by stpq save")
		synthetic = flag.Bool("synthetic", false, "serve a generated synthetic dataset")
		objects   = flag.Int("objects", 20_000, "synthetic data objects")
		features  = flag.Int("features", 20_000, "synthetic feature objects per set")
		sets      = flag.Int("sets", 2, "synthetic feature sets")
		vocab     = flag.Int("vocab", 256, "synthetic vocabulary size")
		seed      = flag.Int64("seed", 1, "synthetic random seed")
		indexKind = flag.String("index", "srt", "feature index for -synthetic: srt | ir2")
		workers   = flag.Int("workers", 0, "concurrent query executors (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 64, "admission queue depth")
		timeout   = flag.Duration("timeout", 0, "per-query deadline (0 = none)")
		cacheSize = flag.Int("cache", 256, "result cache entries (negative disables)")
	)
	flag.Parse()
	if err := run(*addr, *open, *synthetic, *objects, *features, *sets, *vocab, *seed,
		*indexKind, *workers, *queue, *timeout, *cacheSize); err != nil {
		log.Fatal(err)
	}
}

func run(addr, open string, synthetic bool, objects, features, sets, vocab int,
	seed int64, indexKind string, workers, queue int, timeout time.Duration, cacheSize int) error {
	db, err := loadDB(open, synthetic, objects, features, sets, vocab, seed, indexKind)
	if err != nil {
		return err
	}
	svc, err := serve.New(db, serve.Config{
		Workers:      workers,
		QueueDepth:   queue,
		Timeout:      timeout,
		CacheEntries: cacheSize,
	})
	if err != nil {
		return err
	}

	srv := &http.Server{Addr: addr, Handler: svc.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("listening on %s", addr)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("shutting down: draining queries")
	svc.Close() // stop admission, drain queue and in-flight queries
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("bye")
	return nil
}

// loadDB opens a persisted DB or builds a synthetic one.
func loadDB(open string, synthetic bool, objects, features, sets, vocab int,
	seed int64, indexKind string) (*stpq.DB, error) {
	switch {
	case open != "" && synthetic:
		return nil, errors.New("use either -open or -synthetic, not both")
	case open != "":
		log.Printf("opening %s", open)
		return stpq.Open(open)
	case synthetic:
		kind := stpq.SRT
		switch indexKind {
		case "srt":
		case "ir2":
			kind = stpq.IR2
		default:
			return nil, fmt.Errorf("unknown -index %q", indexKind)
		}
		log.Printf("building synthetic dataset: %d objects, %d×%d features, vocab %d",
			objects, sets, features, vocab)
		db := stpq.New(stpq.Config{IndexKind: kind})
		ds := datagen.Synthetic(datagen.SyntheticConfig{
			Objects: objects, FeaturesPerSet: features, FeatureSets: sets,
			Vocab: vocab, Seed: seed,
		})
		objs := make([]stpq.Object, len(ds.Objects))
		for i, o := range ds.Objects {
			objs[i] = stpq.Object{ID: o.ID, X: o.Location.X, Y: o.Location.Y}
		}
		db.AddObjects(objs)
		for i, fs := range ds.FeatureSets {
			feats := make([]stpq.Feature, len(fs))
			for j, f := range fs {
				// Synthetic keywords are abstract ids named kw<id>,
				// matching cmd/stpqgen's CSV output.
				var kws []string
				f.Keywords.ForEach(func(id int) { kws = append(kws, fmt.Sprintf("kw%d", id)) })
				feats[j] = stpq.Feature{
					ID: f.ID, X: f.Location.X, Y: f.Location.Y,
					Score: f.Score, Keywords: kws,
				}
			}
			db.AddFeatureSet(fmt.Sprintf("set%d", i+1), feats)
		}
		if err := db.Build(); err != nil {
			return nil, err
		}
		return db, nil
	default:
		return nil, errors.New("need a dataset: pass -open <dir> or -synthetic")
	}
}
