// Command stpqd serves top-k spatio-textual preference queries over HTTP:
// a built stpq.DB behind the internal/serve worker pool, with admission
// control and a result cache.
//
// Usage:
//
//	stpqd -synthetic -objects 20000 -features 20000 -addr :8080
//	stpqd -synthetic -shards 4            # sharded scatter-gather engine
//	stpqd -synthetic -wal-dir data/wal    # live ingest + crash recovery
//	stpqd -open data/db -workers 8 -queue 128 -timeout 2s
//
// Endpoints:
//
//	POST /query    {"k":5,"radius":0.1,"lambda":0.5,"keywords":{"set":["kw1"]}}
//	POST /ingest   {"objects":[...],"delete_objects":[...],"features":{...}}
//	GET  /healthz  liveness; 503 until the index build completes
//	GET  /readyz   alias of /healthz
//	GET  /metrics  Prometheus text format
//	GET  /info     dataset shape (used by stpqload)
//
// The listener comes up immediately; while the index is still building
// every endpoint answers 503, so orchestrators can probe /healthz (or
// /readyz) and withhold traffic until the build finishes.
//
// SIGINT/SIGTERM trigger a graceful shutdown: admission stops, queued and
// in-flight queries drain, then the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // /debug/pprof on the -pprof listener
	"os/signal"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"

	"stpq"
	"stpq/internal/datagen"
	"stpq/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("stpqd: ")
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		open      = flag.String("open", "", "directory of a DB written by stpq save")
		synthetic = flag.Bool("synthetic", false, "serve a generated synthetic dataset")
		objects   = flag.Int("objects", 20_000, "synthetic data objects")
		features  = flag.Int("features", 20_000, "synthetic feature objects per set")
		sets      = flag.Int("sets", 2, "synthetic feature sets")
		vocab     = flag.Int("vocab", 256, "synthetic vocabulary size")
		seed      = flag.Int64("seed", 1, "synthetic random seed")
		indexKind = flag.String("index", "srt", "feature index for -synthetic: srt | ir2")
		sigBits   = flag.Int("signature-bits", 0, "-synthetic with -index ir2: superimposed signature bits per keyword (0 = exact bitmaps)")
		pageSize  = flag.Int("page-size", 0, "-synthetic: index page size in bytes (0 = library default)")
		bufPages  = flag.Int("buffer-pages", 0, "-synthetic: buffer pool pages per index (0 = library default)")
		shards    = flag.Int("shards", 0, "partition -synthetic data into N shards queried scatter-gather (0 or 1 = single engine)")
		strategy  = flag.String("shard-strategy", "hilbert", "shard partitioner: hilbert | grid")
		workers   = flag.Int("workers", 0, "concurrent query executors (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 64, "admission queue depth")
		timeout   = flag.Duration("timeout", 0, "per-query deadline (0 = none)")
		cacheSize = flag.Int("cache", 256, "result cache entries (negative disables)")
		stripes   = flag.Int("pool-stripes", 0, "buffer-pool lock stripes, rounded down to a power of two (0 or 1 = classic single-lock LRU)")
		walDir    = flag.String("wal-dir", "", "write-ahead log directory: enables POST /ingest and replays existing records on startup")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); enables low-rate mutex and block profiling")
		traceRate = flag.Float64("trace-sample", 0, "fraction of queries (0..1) served with a full span tree in their event record")
		slowQuery = flag.Duration("slow-query", 0, "queries at least this slow land in /debug/slow with a complete trace (0 = off)")
		planMode  = flag.String("plan", "auto", "algorithm for requests that don't name one: auto (cost-based planner) | stds | stps")
		costCap   = flag.Duration("max-inflight-cost", 0, "shed queries whose predicted cost would push the summed in-flight predicted cost over this budget (0 = off)")

		mergePolicy = flag.String("merge-policy", "auto", "-synthetic: how pending writes merge into the base indexes: auto (incremental with degradation fallback) | incremental | rebuild")
		bgCompact   = flag.Bool("background-compaction", false, "-synthetic: seal full deltas into runs and merge them on a background goroutine instead of stalling Apply")
		compactRuns = flag.Int("compact-runs", 0, "-synthetic: sealed-run watermark that wakes the background compactor (0 = default)")
		flushOps    = flag.Int("auto-flush-ops", 0, "-synthetic: delta size that triggers a merge or run seal (0 = default, negative = never)")
		ckptOps     = flag.Int64("checkpoint-every-ops", 0, "checkpoint automatically after this many applied mutations (0 = off; needs a WAL)")
		ckptBytes   = flag.Int64("checkpoint-every-bytes", 0, "checkpoint automatically after this many appended WAL bytes (0 = off; needs a WAL)")
		ckptDir     = flag.String("checkpoint-dir", "", "directory auto-checkpoints are written to (default: the -open directory)")

		clusterNode  = flag.Bool("cluster-node", false, "serve one partition cell over the cluster RPC protocol (needs -cluster-map and -node-id)")
		clusterCoord = flag.Bool("cluster-coordinator", false, "serve scatter-gather queries over the cluster in -cluster-map")
		clusterMap   = flag.String("cluster-map", "", "partition map file (see -write-cluster-map)")
		nodeID       = flag.Int("node-id", 0, "this node's cell id in the partition map")
		rpcAddr      = flag.String("rpc", ":9090", "cluster RPC listen address (-cluster-node)")
		follow       = flag.String("follow", "", "run as a read replica pulling WAL segments from this leader RPC endpoint")
		walRotate    = flag.Duration("wal-rotate", time.Second, "leader WAL rotation period so followers can fetch sealed segments (0 = never)")
		writeMap     = flag.String("write-cluster-map", "", "partition the -synthetic dataset, write the map to this file, and exit (needs -cluster-leaders)")
		leaders      = flag.String("cluster-leaders", "", "comma-separated leader RPC endpoints, one per cell, for -write-cluster-map")
		hedgeAfter   = flag.Duration("hedge-after", 0, "coordinator: duplicate a node call on the next replica after this delay (0 = off)")
		retryMax     = flag.Int("retry-max", 2, "coordinator: extra attempts per node call after a retryable failure")
		parallelism  = flag.Int("parallelism", 0, "coordinator: scatter wave width (0 = all nodes at once)")
	)
	flag.Parse()
	cfg := daemonConfig{
		addr: *addr, open: *open, synthetic: *synthetic,
		objects: *objects, features: *features, sets: *sets, vocab: *vocab,
		seed: *seed, indexKind: *indexKind, sigBits: *sigBits,
		pageSize: *pageSize, bufPages: *bufPages, shards: *shards, strategy: *strategy,
		stripes: *stripes, pprofAddr: *pprofAddr, walDir: *walDir,
		traceRate: *traceRate, slowQuery: *slowQuery,
		bgCompact: *bgCompact, compactRuns: *compactRuns, flushOps: *flushOps,
		ckptOps: *ckptOps, ckptBytes: *ckptBytes, ckptDir: *ckptDir,
		serve: serve.Config{
			Workers:         *workers,
			QueueDepth:      *queue,
			Timeout:         *timeout,
			CacheEntries:    *cacheSize,
			TraceSample:     *traceRate,
			MaxInflightCost: *costCap,
		},
	}
	switch *planMode {
	case "auto":
		cfg.serve.DefaultAlgorithm = stpq.Auto
	case "stds":
		cfg.serve.DefaultAlgorithm = stpq.STDS
	case "stps":
		cfg.serve.DefaultAlgorithm = stpq.STPS
	default:
		log.Fatalf("unknown -plan %q (want auto, stds or stps)", *planMode)
	}
	switch *mergePolicy {
	case "auto":
		cfg.mergePolicy = stpq.MergeAuto
	case "incremental":
		cfg.mergePolicy = stpq.MergeIncremental
	case "rebuild":
		cfg.mergePolicy = stpq.MergeRebuild
	default:
		log.Fatalf("unknown -merge-policy %q (want auto, incremental or rebuild)", *mergePolicy)
	}
	cfg.cluster = clusterConfig{
		node: *clusterNode, coordinator: *clusterCoord,
		mapPath: *clusterMap, nodeID: *nodeID, rpcAddr: *rpcAddr,
		follow: *follow, walRotate: *walRotate,
		writeMap: *writeMap, leaders: *leaders,
		hedgeAfter: *hedgeAfter, retryMax: *retryMax, parallelism: *parallelism,
	}
	var err error
	switch {
	case cfg.cluster.writeMap != "":
		err = runWriteClusterMap(cfg)
	case cfg.cluster.node:
		err = runClusterNode(cfg)
	case cfg.cluster.coordinator:
		err = runCoordinator(cfg)
	default:
		err = run(cfg)
	}
	if err != nil {
		log.Fatal(err)
	}
}

// daemonConfig carries the parsed flags.
type daemonConfig struct {
	addr, open          string
	synthetic           bool
	objects, features   int
	sets, vocab         int
	seed                int64
	indexKind, strategy string
	sigBits             int
	pageSize, bufPages  int
	shards              int
	stripes             int
	pprofAddr           string
	walDir              string
	traceRate           float64
	slowQuery           time.Duration
	mergePolicy         stpq.MergePolicy
	bgCompact           bool
	compactRuns         int
	flushOps            int
	ckptOps, ckptBytes  int64
	ckptDir             string
	serve               serve.Config
	cluster             clusterConfig
}

// checkpointDir resolves where auto-checkpoints land: -checkpoint-dir if
// given, else the opened DB's own directory.
func (cfg daemonConfig) checkpointDir() string {
	if cfg.ckptDir != "" {
		return cfg.ckptDir
	}
	return cfg.open
}

func run(cfg daemonConfig) error {
	if cfg.pprofAddr != "" {
		startPprof(cfg.pprofAddr)
	}
	autoCkpt := cfg.ckptOps > 0 || cfg.ckptBytes > 0
	if autoCkpt && cfg.checkpointDir() == "" {
		return errors.New("-checkpoint-every-ops/-checkpoint-every-bytes need -checkpoint-dir (or -open)")
	}
	// The listener comes up before the index: a swappable handler answers
	// 503 (ErrNotBuilt) until the build completes, then the real service
	// handler takes over.
	var handler atomic.Pointer[http.Handler]
	building := buildingHandler()
	handler.Store(&building)
	srv := &http.Server{
		Addr: cfg.addr,
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			(*handler.Load()).ServeHTTP(w, r)
		}),
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("listening on %s (healthz 503 until the index is built)", cfg.addr)

	type running struct {
		svc *serve.Service
		db  *stpq.DB
	}
	buildErrc := make(chan error, 1)
	svcc := make(chan running, 1)
	go func() {
		db, err := loadDB(cfg)
		if err != nil {
			buildErrc <- err
			return
		}
		svc, err := serve.New(db, cfg.serve)
		if err != nil {
			buildErrc <- err
			return
		}
		// The background compactor yields while admitted queries are
		// waiting for a worker: foreground reads outrank merge work.
		db.SetCompactionGate(svc.Saturated)
		if autoCkpt {
			go autoCheckpoint(ctx, db, cfg.checkpointDir(), cfg.ckptOps, cfg.ckptBytes)
		}
		ready := svc.Handler()
		handler.Store(&ready)
		log.Printf("index ready: serving queries")
		svcc <- running{svc, db}
	}()

	select {
	case err := <-errc:
		return err
	case err := <-buildErrc:
		shutdownCtx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
		return err
	case <-ctx.Done():
	}
	log.Printf("shutting down: draining queries")
	select {
	case r := <-svcc:
		log.Printf("result cache hit fraction: %.1f%%", 100*r.svc.CacheHitFraction())
		r.svc.Close() // stop admission, drain queue and in-flight queries
		// Persist the per-shape cost statistics next to an opened DB so the
		// planner restarts warm instead of re-learning every shape.
		if cfg.open != "" {
			if err := r.db.SaveShapes(cfg.open); err != nil {
				log.Printf("warning: saving shape statistics: %v", err)
			} else {
				log.Printf("shape statistics saved to %s", cfg.open)
			}
		}
	default: // interrupted before the build finished
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("bye")
	return nil
}

// autoCheckpoint polls the ingest counters and checkpoints the DB whenever
// the applied-mutation or appended-WAL-byte delta since the last checkpoint
// crosses its threshold, so long-running daemons trim the log instead of
// growing it unboundedly. The disk phase of Checkpoint runs against a
// pinned generation without blocking Apply, so polling once a second is
// cheap and a checkpoint in progress never stalls writes.
func autoCheckpoint(ctx context.Context, db *stpq.DB, dir string, everyOps, everyBytes int64) {
	readCounters := func() (ops, bytes int64) {
		c := db.Metrics().Counters
		return c["stpq_ingest_applied_total"], c["stpq_wal_bytes_total"]
	}
	baseOps, baseBytes := readCounters()
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		ops, bytes := readCounters()
		if !(everyOps > 0 && ops-baseOps >= everyOps) &&
			!(everyBytes > 0 && bytes-baseBytes >= everyBytes) {
			continue
		}
		start := time.Now()
		err := db.Checkpoint(dir)
		if err != nil {
			// Advance the baseline even on failure: retrying every second
			// against a persistent error (disk full, say) would melt the log.
			log.Printf("auto-checkpoint failed: %v", err)
		} else {
			log.Printf("auto-checkpoint: +%d ops, +%d WAL bytes -> %s in %v (through seq %d)",
				ops-baseOps, bytes-baseBytes, dir, time.Since(start).Round(time.Millisecond), db.WALSeq())
		}
		baseOps, baseBytes = ops, bytes
	}
}

// startPprof serves the net/http/pprof endpoints on their own listener,
// kept off the query port so profiling never competes with admission
// control. Mutex and block profiling run at a low sampling rate: cheap
// enough to leave on, detailed enough to show buffer-pool lock
// contention under load.
func startPprof(addr string) {
	runtime.SetMutexProfileFraction(64) // sample 1/64 of contention events
	runtime.SetBlockProfileRate(int(time.Millisecond))
	go func() {
		// DefaultServeMux carries the /debug/pprof handlers registered by
		// the net/http/pprof import.
		log.Printf("pprof listening on %s", addr)
		if err := http.ListenAndServe(addr, nil); err != nil {
			log.Printf("pprof listener failed: %v", err)
		}
	}()
}

// buildingHandler answers every request with 503 until the index build
// completes; the body carries the library's not-built error so probes and
// humans see the same message the API would return.
func buildingHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "{\"error\":%q}\n", stpq.ErrNotBuilt.Error())
	})
}

// loadDB opens a persisted DB or builds a synthetic one.
func loadDB(cfg daemonConfig) (*stpq.DB, error) {
	switch {
	case cfg.open != "" && cfg.synthetic:
		return nil, errors.New("use either -open or -synthetic, not both")
	case cfg.open != "":
		if cfg.shards > 1 {
			return nil, errors.New("-shards applies to -synthetic only (opened DBs take their shard count from the manifest)")
		}
		if cfg.stripes > 1 {
			log.Printf("warning: -pool-stripes applies to -synthetic only; opened DBs use the single-lock pool")
		}
		if cfg.mergePolicy != stpq.MergeAuto || cfg.bgCompact || cfg.compactRuns > 0 {
			log.Printf("warning: -merge-policy/-background-compaction/-compact-runs apply to -synthetic only; opened DBs take them from the manifest")
		}
		log.Printf("opening %s", cfg.open)
		db, err := stpq.Open(cfg.open)
		if err != nil {
			return nil, err
		}
		// Open auto-attaches the WAL recorded in the manifest; -wal-dir
		// covers snapshots saved before a log existed.
		if cfg.walDir != "" {
			n, err := db.AttachWAL(cfg.walDir)
			switch {
			case errors.Is(err, stpq.ErrWALAttached):
				log.Printf("WAL already attached via manifest; ignoring -wal-dir")
			case err != nil:
				return nil, err
			default:
				logReplay(db, n)
			}
		}
		return db, nil
	case cfg.synthetic:
		kind := stpq.SRT
		switch cfg.indexKind {
		case "srt":
		case "ir2":
			kind = stpq.IR2
		default:
			return nil, fmt.Errorf("unknown -index %q", cfg.indexKind)
		}
		var strat stpq.ShardStrategy
		switch cfg.strategy {
		case "", "hilbert":
			strat = stpq.ShardHilbert
		case "grid":
			strat = stpq.ShardGrid
		default:
			return nil, fmt.Errorf("unknown -shard-strategy %q", cfg.strategy)
		}
		log.Printf("building synthetic dataset: %d objects, %d×%d features, vocab %d, shards %d",
			cfg.objects, cfg.sets, cfg.features, cfg.vocab, cfg.shards)
		db := stpq.New(stpq.Config{
			IndexKind: kind, SignatureBits: cfg.sigBits,
			PageSize: cfg.pageSize, BufferPages: cfg.bufPages,
			ShardCount: cfg.shards, ShardStrategy: strat,
			PoolStripes: cfg.stripes, WALDir: cfg.walDir,
			TraceSampleRate: cfg.traceRate, SlowQueryThreshold: cfg.slowQuery,
			MergePolicy: cfg.mergePolicy, BackgroundCompaction: cfg.bgCompact,
			CompactRuns: cfg.compactRuns, AutoFlushOps: cfg.flushOps,
		})
		objs, sets := syntheticData(cfg)
		db.AddObjects(objs)
		for _, s := range sets {
			db.AddFeatureSet(s.name, s.feats)
		}
		if err := db.Build(); err != nil {
			return nil, err
		}
		if cfg.walDir != "" {
			// Build replayed any existing log over the deterministic
			// synthetic base (same seed → same base → exact recovery).
			logReplay(db, int(db.Metrics().Counters["stpq_ingest_replayed_total"]))
		}
		return db, nil
	default:
		return nil, errors.New("need a dataset: pass -open <dir> or -synthetic")
	}
}

// featureSet is one named synthetic feature set, in deterministic order.
type featureSet struct {
	name  string
	feats []stpq.Feature
}

// syntheticData generates the deterministic synthetic dataset: same seed →
// same objects, features and keyword spellings in every process, which is
// what lets cluster nodes slice one logical dataset locally.
func syntheticData(cfg daemonConfig) ([]stpq.Object, []featureSet) {
	ds := datagen.Synthetic(datagen.SyntheticConfig{
		Objects: cfg.objects, FeaturesPerSet: cfg.features, FeatureSets: cfg.sets,
		Vocab: cfg.vocab, Seed: cfg.seed,
	})
	objs := make([]stpq.Object, len(ds.Objects))
	for i, o := range ds.Objects {
		objs[i] = stpq.Object{ID: o.ID, X: o.Location.X, Y: o.Location.Y}
	}
	sets := make([]featureSet, len(ds.FeatureSets))
	for i, fs := range ds.FeatureSets {
		feats := make([]stpq.Feature, len(fs))
		for j, f := range fs {
			// Synthetic keywords are abstract ids named kw<id>,
			// matching cmd/stpqgen's CSV output.
			var kws []string
			f.Keywords.ForEach(func(id int) { kws = append(kws, fmt.Sprintf("kw%d", id)) })
			feats[j] = stpq.Feature{
				ID: f.ID, X: f.Location.X, Y: f.Location.Y,
				Score: f.Score, Keywords: kws,
			}
		}
		sets[i] = featureSet{name: fmt.Sprintf("set%d", i+1), feats: feats}
	}
	return objs, sets
}

// logReplay reports crash-recovery progress at startup.
func logReplay(db *stpq.DB, n int) {
	if n > 0 {
		log.Printf("WAL replay: recovered %d mutations (through seq %d)", n, db.WALSeq())
	} else {
		log.Printf("WAL attached: no records to replay")
	}
}
