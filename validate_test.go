package stpq

// validate_test.go pins ValidateQuery's sentinel behavior table-driven: each
// rejected query must wrap the exact sentinel error so callers can branch
// with errors.Is, and every enum — including the planner's Auto — must
// accept exactly its defined range.

import (
	"errors"
	"math"
	"testing"
)

func TestValidateQueryTable(t *testing.T) {
	sets := []string{"food", "cafes"}
	valid := Query{
		K: 5, Radius: 0.1, Lambda: 0.5,
		Keywords: map[string][]string{"food": {"pizza"}},
	}
	mod := func(f func(*Query)) Query {
		q := valid
		f(&q)
		return q
	}
	cases := []struct {
		name string
		q    Query
		want error // nil = must validate
	}{
		{"valid default", valid, nil},
		{"valid stds", mod(func(q *Query) { q.Algorithm = STDS }), nil},
		{"valid auto", mod(func(q *Query) { q.Algorithm = Auto }), nil},
		{"valid nn zero radius", mod(func(q *Query) { q.Variant = NearestNeighbor; q.Radius = 0 }), nil},
		{"valid overlap sim", mod(func(q *Query) { q.Similarity = OverlapSim }), nil},
		{"valid exact mode", mod(func(q *Query) { q.Mode = ModeExact }), nil},
		{"valid approx mode", mod(func(q *Query) { q.Mode = ModeApprox }), nil},
		{"valid approx recall", mod(func(q *Query) { q.Mode = ModeApprox; q.Recall = 0.9 }), nil},
		{"valid approx recall 1", mod(func(q *Query) { q.Mode = ModeApprox; q.Recall = 1 }), nil},
		{"zero k", mod(func(q *Query) { q.K = 0 }), ErrInvalidQuery},
		{"negative k", mod(func(q *Query) { q.K = -1 }), ErrInvalidQuery},
		{"variant below range", mod(func(q *Query) { q.Variant = Variant(-1) }), ErrInvalidQuery},
		{"variant past nn", mod(func(q *Query) { q.Variant = NearestNeighbor + 1 }), ErrInvalidQuery},
		{"algorithm below stps", mod(func(q *Query) { q.Algorithm = Algorithm(-1) }), ErrInvalidQuery},
		{"algorithm past auto", mod(func(q *Query) { q.Algorithm = Auto + 1 }), ErrInvalidQuery},
		{"algorithm 9", mod(func(q *Query) { q.Algorithm = Algorithm(9) }), ErrInvalidQuery},
		{"similarity past overlap", mod(func(q *Query) { q.Similarity = OverlapSim + 1 }), ErrInvalidQuery},
		{"negative radius", mod(func(q *Query) { q.Radius = -0.1 }), ErrInvalidQuery},
		{"zero radius non-nn", mod(func(q *Query) { q.Radius = 0 }), ErrInvalidQuery},
		{"lambda below 0", mod(func(q *Query) { q.Lambda = -0.1 }), ErrInvalidQuery},
		{"lambda above 1", mod(func(q *Query) { q.Lambda = 1.1 }), ErrInvalidQuery},
		{"mode typo", mod(func(q *Query) { q.Mode = "aprox" }), ErrInvalidQuery},
		{"mode uppercase", mod(func(q *Query) { q.Mode = "Approx" }), ErrInvalidQuery},
		{"recall without approx", mod(func(q *Query) { q.Recall = 0.9 }), ErrInvalidQuery},
		{"recall on exact mode", mod(func(q *Query) { q.Mode = ModeExact; q.Recall = 0.9 }), ErrInvalidQuery},
		{"recall zero is default", mod(func(q *Query) { q.Mode = ModeApprox; q.Recall = 0 }), nil},
		{"recall negative", mod(func(q *Query) { q.Mode = ModeApprox; q.Recall = -0.5 }), ErrInvalidQuery},
		{"recall above 1", mod(func(q *Query) { q.Mode = ModeApprox; q.Recall = 1.1 }), ErrInvalidQuery},
		{"recall NaN", mod(func(q *Query) { q.Mode = ModeApprox; q.Recall = math.NaN() }), ErrInvalidQuery},
		{"unknown feature set", mod(func(q *Query) {
			q.Keywords = map[string][]string{"bars": {"beer"}}
		}), ErrUnknownFeatureSet},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := ValidateQuery(c.q, sets)
			if c.want == nil {
				if err != nil {
					t.Fatalf("ValidateQuery: unexpected error %v", err)
				}
				return
			}
			if !errors.Is(err, c.want) {
				t.Fatalf("ValidateQuery: got %v, want sentinel %v", err, c.want)
			}
		})
	}
}
