package stpq

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
)

// paperDB builds the paper's running example (Figures 2, 3, 4 and 6):
// restaurants r1–r8 and coffeehouses c1–c8 with the published coordinates,
// ratings and descriptions (coordinates normalized from the 0–10 grid),
// plus ten hotels of which exactly p6, p9 and p10 lie within r = 3.5 grid
// units of both Ontario's Pizza r6 (7,6) and Royal Coffee Shop c5 (5,5).
func paperDB(t *testing.T, cfg Config) *DB {
	t.Helper()
	db := New(cfg)
	db.AddObjects([]Object{
		{ID: 1, X: 0.05, Y: 0.95}, // far northwest
		{ID: 2, X: 0.10, Y: 0.10},
		{ID: 3, X: 0.95, Y: 0.95},
		{ID: 4, X: 0.10, Y: 0.50},
		{ID: 5, X: 0.95, Y: 0.10},
		{ID: 6, X: 0.60, Y: 0.55}, // near both r6 and c5
		{ID: 7, X: 0.02, Y: 0.70},
		{ID: 8, X: 0.98, Y: 0.60},
		{ID: 9, X: 0.55, Y: 0.60},  // near both
		{ID: 10, X: 0.65, Y: 0.50}, // near both
	})
	db.AddFeatureSet("restaurants", []Feature{
		{ID: 1, X: 0.1, Y: 0.2, Score: 0.6, Keywords: []string{"chinese", "asian"}},
		{ID: 2, X: 0.4, Y: 0.1, Score: 0.5, Keywords: []string{"greek", "mediterranean"}},
		{ID: 3, X: 0.5, Y: 0.8, Score: 0.8, Keywords: []string{"italian", "spanish", "european"}},
		{ID: 4, X: 0.2, Y: 0.3, Score: 0.8, Keywords: []string{"chinese", "buffet"}},
		{ID: 5, X: 0.8, Y: 0.4, Score: 0.9, Keywords: []string{"pizza", "sandwiches", "subs"}},
		{ID: 6, X: 0.7, Y: 0.6, Score: 0.8, Keywords: []string{"pizza", "italian"}},
		{ID: 7, X: 0.6, Y: 1.0, Score: 0.8, Keywords: []string{"seafood", "mediterranean"}},
		{ID: 8, X: 0.3, Y: 0.7, Score: 1.0, Keywords: []string{"american", "coffee", "tea", "bistro"}},
	})
	db.AddFeatureSet("coffeehouses", []Feature{
		{ID: 1, X: 0.4, Y: 0.1, Score: 0.6, Keywords: []string{"cake", "bread", "pastries"}},
		{ID: 2, X: 0.4, Y: 0.7, Score: 0.5, Keywords: []string{"cappuccino", "toast", "decaf"}},
		{ID: 3, X: 0.3, Y: 1.0, Score: 0.8, Keywords: []string{"cake", "toast", "donuts"}},
		{ID: 4, X: 0.6, Y: 0.2, Score: 0.6, Keywords: []string{"cappuccino", "iced-coffee", "tea"}},
		{ID: 5, X: 0.5, Y: 0.5, Score: 0.9, Keywords: []string{"muffins", "croissants", "espresso"}},
		{ID: 6, X: 1.0, Y: 0.3, Score: 1.0, Keywords: []string{"macchiato", "espresso", "decaf"}},
		{ID: 7, X: 0.6, Y: 0.9, Score: 0.7, Keywords: []string{"muffins", "pastries", "espresso"}},
		{ID: 8, X: 0.7, Y: 0.6, Score: 0.4, Keywords: []string{"croissants", "decaf", "tea"}},
	})
	if err := db.Build(); err != nil {
		t.Fatal(err)
	}
	return db
}

// paperQuery is the query of the paper's Section 6.4 example: r = 3.5 grid
// units, W1 = {italian, pizza}, W2 = {espresso, muffins}, λ = 0.5.
func paperQuery(k int, alg Algorithm) Query {
	return Query{
		K:      k,
		Radius: 0.35,
		Lambda: 0.5,
		Keywords: map[string][]string{
			"restaurants":  {"italian", "pizza"},
			"coffeehouses": {"espresso", "muffins"},
		},
		Algorithm: alg,
	}
}

// The paper's worked example: hotels p6, p9 and p10 score
// s(r6) + s(c5) = 0.9 + 0.78333… = 1.68333… and are the unique top-3.
func TestPaperExampleTop3(t *testing.T) {
	want := 0.9 + (0.5*0.9 + 0.5*(2.0/3.0))
	for _, alg := range []Algorithm{STPS, STDS} {
		db := paperDB(t, Config{})
		res, _, err := db.TopK(paperQuery(3, alg))
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 3 {
			t.Fatalf("alg %d: got %d results", alg, len(res))
		}
		ids := map[int64]bool{}
		for _, r := range res {
			ids[r.ID] = true
			if math.Abs(r.Score-want) > 1e-9 {
				t.Errorf("alg %d: hotel %d score %v, want %v", alg, r.ID, r.Score, want)
			}
		}
		for _, id := range []int64{6, 9, 10} {
			if !ids[id] {
				t.Errorf("alg %d: hotel %d missing from top-3 (got %v)", alg, id, res)
			}
		}
	}
}

// Definition 1 example: s(r6) = 0.9 for W = {italian, pizza}, λ = 0.5;
// Beijing Restaurant scores 0.3.
func TestPaperExampleFeatureScores(t *testing.T) {
	db := paperDB(t, Config{})
	q := paperQuery(1, STPS)
	// Score of a point exactly at r6, restaurants only contribution would
	// be s(r6) = 0.9; at that location c5 is within range too.
	got, err := db.Score(q, 0.7, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	wantC5 := 0.5*0.9 + 0.5*(2.0/3.0)
	if math.Abs(got-(0.9+wantC5)) > 1e-9 {
		t.Errorf("score at r6 = %v, want %v", got, 0.9+wantC5)
	}
}

func TestBothIndexKindsAgree(t *testing.T) {
	srt := paperDB(t, Config{IndexKind: SRT})
	ir2 := paperDB(t, Config{IndexKind: IR2})
	q := paperQuery(5, STPS)
	a, _, err := srt.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := ir2.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("SRT %d vs IR2 %d results", len(a), len(b))
	}
	for i := range a {
		if math.Abs(a[i].Score-b[i].Score) > 1e-9 {
			t.Errorf("rank %d: SRT %v, IR2 %v", i, a[i].Score, b[i].Score)
		}
	}
}

func TestVariantsRun(t *testing.T) {
	db := paperDB(t, Config{})
	for _, v := range []Variant{Range, Influence, NearestNeighbor} {
		q := paperQuery(4, STPS)
		q.Variant = v
		res, stats, err := db.TopK(q)
		if err != nil {
			t.Fatalf("variant %d: %v", v, err)
		}
		if len(res) == 0 {
			t.Fatalf("variant %d: no results", v)
		}
		if stats.Total() <= 0 {
			t.Fatalf("variant %d: no cost recorded", v)
		}
		// Scores must be non-increasing.
		for i := 1; i < len(res); i++ {
			if res[i].Score > res[i-1].Score+1e-12 {
				t.Fatalf("variant %d: results unsorted", v)
			}
		}
	}
}

func TestUnknownFeatureSetRejected(t *testing.T) {
	db := paperDB(t, Config{})
	q := paperQuery(3, STPS)
	q.Keywords["bars"] = []string{"beer"}
	if _, _, err := db.TopK(q); err == nil {
		t.Fatal("unknown feature set must be rejected")
	}
}

func TestMissingKeywordSetMatchesNothing(t *testing.T) {
	db := paperDB(t, Config{})
	q := paperQuery(3, STPS)
	delete(q.Keywords, "coffeehouses")
	res, _, err := db.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	// Best possible is now s(r6) = 0.9 alone.
	if math.Abs(res[0].Score-0.9) > 1e-9 {
		t.Errorf("top score %v, want 0.9 with only restaurants", res[0].Score)
	}
}

func TestUnknownQueryKeywordsMatchNothing(t *testing.T) {
	db := paperDB(t, Config{})
	q := paperQuery(2, STPS)
	q.Keywords = map[string][]string{
		"restaurants":  {"sushi-omakase"},
		"coffeehouses": {"bubble-tea"},
	}
	res, _, err := db.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Score != 0 {
			t.Errorf("score %v for unmatched keywords, want 0", r.Score)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	if err := New(Config{}).Build(); err == nil {
		t.Error("Build with no objects must fail")
	}
	db := New(Config{})
	db.AddObjects([]Object{{ID: 1, X: 0.5, Y: 0.5}})
	if err := db.Build(); err == nil {
		t.Error("Build with no feature sets must fail")
	}
	db2 := New(Config{})
	db2.AddObjects([]Object{{ID: 1, X: 0.5, Y: 0.5}})
	db2.AddFeatureSet("r", []Feature{{ID: 1, X: 0.5, Y: 0.5, Score: 2.0, Keywords: []string{"a"}}})
	if err := db2.Build(); err == nil {
		t.Error("out-of-range score must fail")
	}
	db3 := paperDB(t, Config{})
	if err := db3.Build(); err == nil {
		t.Error("double Build must fail")
	}
}

func TestTopKBeforeBuild(t *testing.T) {
	db := New(Config{})
	if _, _, err := db.TopK(Query{K: 1}); err == nil {
		t.Error("TopK before Build must fail")
	}
}

func TestFeatureSetNames(t *testing.T) {
	db := paperDB(t, Config{})
	names := db.FeatureSetNames()
	if len(names) != 2 || names[0] != "restaurants" || names[1] != "coffeehouses" {
		t.Errorf("names = %v", names)
	}
}

func TestSTDSAgreesWithSTPSOnRandomData(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	db := New(Config{PageSize: 1024})
	objs := make([]Object, 300)
	for i := range objs {
		objs[i] = Object{ID: int64(i), X: rng.Float64(), Y: rng.Float64()}
	}
	db.AddObjects(objs)
	words := []string{"pizza", "sushi", "tacos", "ramen", "bagels", "pho", "curry", "bbq"}
	feats := make([]Feature, 500)
	for i := range feats {
		feats[i] = Feature{
			ID: int64(i), X: rng.Float64(), Y: rng.Float64(), Score: rng.Float64(),
			Keywords: []string{words[rng.Intn(len(words))], words[rng.Intn(len(words))]},
		}
	}
	db.AddFeatureSet("food", feats)
	if err := db.Build(); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		q := Query{
			K: 5, Radius: 0.05 + rng.Float64()*0.1, Lambda: rng.Float64(),
			Keywords: map[string][]string{"food": {words[rng.Intn(len(words))], words[rng.Intn(len(words))]}},
		}
		q.Algorithm = STPS
		a, _, err := db.TopK(q)
		if err != nil {
			t.Fatal(err)
		}
		q.Algorithm = STDS
		b, _, err := db.TopK(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("STPS %d vs STDS %d", len(a), len(b))
		}
		for i := range a {
			if math.Abs(a[i].Score-b[i].Score) > 1e-9 {
				t.Fatalf("trial %d rank %d: STPS %v, STDS %v", trial, i, a[i].Score, b[i].Score)
			}
		}
	}
}

func TestStatsExposed(t *testing.T) {
	db := paperDB(t, Config{BufferPages: 2})
	_, stats, err := db.TopK(paperQuery(3, STPS))
	if err != nil {
		t.Fatal(err)
	}
	if stats.LogicalReads == 0 || stats.Combinations == 0 {
		t.Errorf("stats not populated: %+v", stats)
	}
}

func TestKeywordStats(t *testing.T) {
	db := paperDB(t, Config{})
	stats, err := db.KeywordStats("restaurants")
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) == 0 {
		t.Fatal("no keyword stats")
	}
	// Frequencies must be non-increasing.
	for i := 1; i < len(stats); i++ {
		if stats[i].Count > stats[i-1].Count {
			t.Fatal("stats not sorted by count")
		}
	}
	byWord := map[string]KeywordStat{}
	for _, s := range stats {
		byWord[s.Keyword] = s
	}
	// "pizza" appears in r5 and r6; best score among them is 0.9.
	if got := byWord["pizza"]; got.Count != 2 || got.TopScore != 0.9 {
		t.Errorf("pizza stat = %+v", got)
	}
	if got := byWord["chinese"]; got.Count != 2 || got.TopScore != 0.8 {
		t.Errorf("chinese stat = %+v", got)
	}
	if _, err := db.KeywordStats("bars"); err == nil {
		t.Error("unknown feature set must fail")
	}
	if _, err := New(Config{}).KeywordStats("x"); err == nil {
		t.Error("KeywordStats before Build must fail")
	}
}

func TestSelectivity(t *testing.T) {
	db := paperDB(t, Config{})
	// "pizza" or "italian" matches r3, r5, r6 of the 8 restaurants.
	got, err := db.Selectivity("restaurants", []string{"pizza", "italian"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-3.0/8.0) > 1e-12 {
		t.Errorf("Selectivity = %v, want 3/8", got)
	}
	zero, err := db.Selectivity("restaurants", []string{"sushi-omakase"})
	if err != nil || zero != 0 {
		t.Errorf("unknown keyword selectivity = %v, %v", zero, err)
	}
}

// TopK must be safe for concurrent callers after Build (queries run in
// parallel against session views with private read accounting).
func TestConcurrentTopK(t *testing.T) {
	db := paperDB(t, Config{})
	q := paperQuery(3, STPS)
	want, _, err := db.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, _, err := db.TopK(q)
			if err != nil {
				errs <- err
				return
			}
			if len(res) != len(want) {
				errs <- fmt.Errorf("got %d results, want %d", len(res), len(want))
				return
			}
			for i := range res {
				if math.Abs(res[i].Score-want[i].Score) > 1e-12 {
					errs <- fmt.Errorf("rank %d: %v vs %v", i, res[i].Score, want[i].Score)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// Signature-file mode through the public API must reproduce the paper's
// worked example exactly.
func TestSignatureModePaperExample(t *testing.T) {
	db := paperDB(t, Config{IndexKind: IR2, SignatureBits: 8})
	res, _, err := db.TopK(paperQuery(3, STPS))
	if err != nil {
		t.Fatal(err)
	}
	want := 0.9 + (0.5*0.9 + 0.5*(2.0/3.0))
	if len(res) != 3 {
		t.Fatalf("got %d results", len(res))
	}
	for _, r := range res {
		if math.Abs(r.Score-want) > 1e-9 {
			t.Errorf("hotel %d score %v, want %v", r.ID, r.Score, want)
		}
	}
}
