module stpq

go 1.22
