package stpq

// explain.go is the EXPLAIN surface: DB.Explain describes how a query
// would execute — algorithm, index, shard scatter order with per-shard
// upper bounds — and predicts its cost from the recorded per-shape
// statistics (DB.QueryShapes), without running the query. Exposed as
// `stpq -explain` on the CLI and `"explain": true` on the HTTP query
// endpoint.

import (
	"fmt"
	"strings"
	"time"

	"stpq/internal/core"
	"stpq/internal/obs"
	"stpq/internal/plan"
	"stpq/internal/shard"
)

// PlanCandidate is one algorithm the planner considered for a query, with
// the statistical evidence it had at decision time.
type PlanCandidate struct {
	Algorithm string `json:"algorithm"`
	// Samples is the number of recorded executions of the query's shape
	// under this algorithm; Known reports it reached MinPredictSamples.
	Samples int64 `json:"samples"`
	// Cost is the recorded mean total cost (CPU + modeled I/O), zero when
	// unobserved.
	Cost  time.Duration `json:"cost_ns"`
	Known bool          `json:"known"`
}

// PlanDecision is the cost-based planner's verdict for a query: the
// algorithm it chose (or annotated, when forced), why, at what predicted
// cost, and the alternatives it weighed. Explain embeds it, and
// Snapshot.PlanQuery returns it standalone.
type PlanDecision struct {
	Algorithm string `json:"algorithm"`
	Reason    string `json:"reason"`
	// Forced reports the caller fixed the algorithm; Fallback the
	// deterministic cold-start default (Auto below the sample floor).
	Forced   bool `json:"forced,omitempty"`
	Fallback bool `json:"fallback,omitempty"`
	// Cost is the predicted mean total cost of the chosen plan, unknown
	// (CostKnown false) below the sample floor.
	Cost      time.Duration `json:"cost_ns,omitempty"`
	CostKnown bool          `json:"cost_known"`
	// Fanout is the planner's scatter wave width for sharded execution;
	// 0 keeps the engine default.
	Fanout     int             `json:"fanout,omitempty"`
	Candidates []PlanCandidate `json:"candidates,omitempty"`
}

// fromPlanDecision lifts the internal decision into the public type.
func fromPlanDecision(d plan.Decision) PlanDecision {
	out := PlanDecision{
		Algorithm: d.Algorithm,
		Reason:    d.Reason,
		Forced:    d.Forced,
		Fallback:  d.Fallback,
		Cost:      d.Cost,
		CostKnown: d.CostKnown,
		Fanout:    d.Fanout,
	}
	for _, c := range d.Candidates {
		out.Candidates = append(out.Candidates, PlanCandidate{
			Algorithm: c.Algorithm, Samples: c.Samples, Cost: c.Cost, Known: c.Known,
		})
	}
	return out
}

// ExplainShard is one shard's entry in a sharded query plan, in scatter
// order: the wave it runs in at the current parallelism and the upper
// bound its region admits for the query (the pruning key — the gather
// stops once the merged k-th score beats every remaining bound).
type ExplainShard struct {
	ID      int     `json:"id"`
	Wave    int     `json:"wave"`
	Bound   float64 `json:"bound"`
	Objects int     `json:"objects"`
}

// Explain describes how a query would execute and what it is expected to
// cost. Predicted is nil until the query's shape has been executed at
// least MinPredictSamples times.
type Explain struct {
	// Algorithm is "stds" or "stps"; Variant the score variant name.
	Algorithm string `json:"algorithm"`
	Variant   string `json:"variant"`
	// Index names the feature index structure ("srt" or "ir2").
	Index      string  `json:"index"`
	Similarity string  `json:"similarity"`
	K          int     `json:"k"`
	Radius     float64 `json:"radius,omitempty"`
	// Mode is "approx" for fast-tier queries (omitted for exact), and
	// Recall its effective recall target with the lowered LSH parameters.
	Mode         string  `json:"mode,omitempty"`
	Recall       float64 `json:"recall,omitempty"`
	ApproxBands  int     `json:"approx_bands,omitempty"`
	ApproxRows   int     `json:"approx_rows,omitempty"`
	ApproxVerify bool    `json:"approx_verify,omitempty"`
	// KeywordSets counts the non-empty query keyword sets out of the DB's
	// feature sets.
	KeywordSets int `json:"keyword_sets"`
	FeatureSets int `json:"feature_sets"`
	// Shape is the canonical shape label the prediction is keyed by.
	Shape string `json:"shape"`
	// Shards is the scatter plan of a sharded DB (nil when unsharded),
	// and Parallelism its wave width.
	Shards      []ExplainShard `json:"shards,omitempty"`
	Parallelism int            `json:"parallelism,omitempty"`
	// Predicted is the recorded mean cost of the shape, nil while fewer
	// than MinPredictSamples executions have been recorded; Samples is the
	// number of recorded executions either way.
	Predicted *ShapeStat `json:"predicted,omitempty"`
	Samples   int64      `json:"samples"`
	// Plan is the cost-based planner's decision: for Algorithm: Auto the
	// choice it made and why, for forced algorithms the annotation of what
	// it would have done.
	Plan *PlanDecision `json:"plan,omitempty"`
}

// MinPredictSamples is how many recorded executions a query shape needs
// before Explain reports predicted costs.
const MinPredictSamples = obs.MinPredictSamples

// Explain describes how the query would execute against the current
// indexes without running it: the chosen algorithm and index, the shard
// scatter order with per-shard upper bounds (sharded DBs), and the
// predicted cost from recorded per-shape statistics once the shape has
// enough samples.
func (db *DB) Explain(q Query) (*Explain, error) {
	snap, err := db.Snapshot()
	if err != nil {
		return nil, err
	}
	ex, err := snap.Explain(q)
	if err != nil {
		return nil, err
	}
	// Snapshots do not retain the config; name the index here.
	db.mu.RLock()
	if db.cfg.IndexKind == IR2 {
		ex.Index = "ir2"
	} else {
		ex.Index = "srt"
	}
	db.mu.RUnlock()
	return ex, nil
}

// Explain is DB.Explain against a pinned snapshot.
func (s *Snapshot) Explain(q Query) (*Explain, error) {
	cq, err := s.toCoreQuery(q)
	if err != nil {
		return nil, err
	}
	// The planner decision comes first: with Algorithm: Auto the rest of
	// the explanation (shape, prediction) describes the resolved plan.
	d := s.decide(q, &cq)
	alg := d.Algorithm
	pd := fromPlanDecision(d)
	key := core.QueryShapeKey(alg, &cq)
	ex := &Explain{
		Algorithm:   alg,
		Variant:     cq.Variant.String(),
		Similarity:  cq.Similarity.String(),
		K:           q.K,
		Radius:      q.Radius,
		KeywordSets: key.Sets,
		FeatureSets: len(s.names),
		Plan:        &pd,
	}
	if a := cq.Approx; a != nil {
		ex.Mode = ModeApprox
		ex.Recall = a.Params.Recall
		ex.ApproxBands = a.Params.Bands
		ex.ApproxRows = a.Params.Rows
		ex.ApproxVerify = !a.Params.SkipVerify
	}
	if s.tel != nil {
		ex.Shape = s.tel.Shapes.Name(key)
		if p := s.tel.Shapes.Predict(key); p != nil {
			stat := fromObsPrediction(*p)
			ex.Predicted = &stat
			ex.Samples = p.Samples
		} else {
			// Below the sample floor: still report how many we have.
			for _, row := range s.tel.Shapes.Rows() {
				if row.Shape == ex.Shape {
					ex.Samples = row.Samples
					break
				}
			}
		}
	} else {
		ex.Shape = key.String()
	}
	if eng, ok := s.engine.(*shard.Engine); ok {
		sp, err := eng.Plan(cq)
		if err != nil {
			return nil, err
		}
		ex.Parallelism = eng.Parallelism()
		if pd.Fanout > 0 && pd.Fanout < ex.Parallelism {
			ex.Parallelism = pd.Fanout
		}
		ex.Shards = make([]ExplainShard, len(sp))
		for i, p := range sp {
			wave := p.Wave
			if ex.Parallelism > 0 {
				wave = i / ex.Parallelism
			}
			ex.Shards[i] = ExplainShard{ID: p.ID, Wave: wave, Bound: p.Bound, Objects: p.Objects}
		}
	}
	return ex, nil
}

// String renders the plan as the `stpq -explain` text output.
func (e *Explain) String() string {
	var b strings.Builder
	if e.Index != "" {
		fmt.Fprintf(&b, "EXPLAIN %s %s (%s index, %s similarity)\n", e.Algorithm, e.Variant, e.Index, e.Similarity)
	} else {
		fmt.Fprintf(&b, "EXPLAIN %s %s (%s similarity)\n", e.Algorithm, e.Variant, e.Similarity)
	}
	fmt.Fprintf(&b, "  k=%d", e.K)
	if e.Radius > 0 {
		fmt.Fprintf(&b, " radius=%g", e.Radius)
	}
	fmt.Fprintf(&b, " keyword sets: %d/%d non-empty\n", e.KeywordSets, e.FeatureSets)
	if e.Mode == ModeApprox {
		verify := "skip-verify"
		if e.ApproxVerify {
			verify = "verify"
		}
		fmt.Fprintf(&b, "  mode: approx (recall target %g, %d band(s) x %d row(s), %s)\n",
			e.Recall, e.ApproxBands, e.ApproxRows, verify)
	}
	fmt.Fprintf(&b, "  shape: %s\n", e.Shape)
	if p := e.Plan; p != nil {
		fmt.Fprintf(&b, "  planner: %s — %s\n", p.Algorithm, p.Reason)
		for _, c := range p.Candidates {
			if c.Known {
				fmt.Fprintf(&b, "    candidate %s: predicted %s (%d samples)\n",
					c.Algorithm, c.Cost.Round(time.Microsecond), c.Samples)
			} else {
				fmt.Fprintf(&b, "    candidate %s: cold (%d of %d samples)\n",
					c.Algorithm, c.Samples, MinPredictSamples)
			}
		}
		if p.Fanout > 0 {
			fmt.Fprintf(&b, "    fan-out: %d shard(s) per wave (cost-based)\n", p.Fanout)
		}
	}
	if len(e.Shards) > 0 {
		fmt.Fprintf(&b, "  plan: scatter-gather over %d shards, parallelism %d\n", len(e.Shards), e.Parallelism)
		for _, sh := range e.Shards {
			fmt.Fprintf(&b, "    wave %d: shard %02d  bound=%.4f  objects=%d\n", sh.Wave, sh.ID, sh.Bound, sh.Objects)
		}
	} else {
		fmt.Fprintf(&b, "  plan: single engine\n")
	}
	if p := e.Predicted; p != nil {
		fmt.Fprintf(&b, "  predicted (from %d samples): %s CPU + %s IO, %.0f logical / %.0f physical reads, %.0f combinations\n",
			p.Samples, p.MeanDuration.Round(time.Microsecond), p.MeanIOTime.Round(time.Microsecond),
			p.MeanLogicalReads, p.MeanPhysicalReads, p.MeanCombinations)
	} else {
		fmt.Fprintf(&b, "  predicted: insufficient samples (%d recorded, need %d)\n", e.Samples, MinPredictSamples)
	}
	return b.String()
}
