package stpq

// obs.go is the public observability surface of a DB: per-query span
// traces (Config.Tracing / Stats.Trace) and the aggregate metrics registry
// (DB.Metrics / DB.WriteMetricsPrometheus).

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"stpq/internal/obs"
)

// Span is one node of a query trace: a named phase with its accumulated
// wall time, the page reads observed while it was open (including its
// children's), optional counters and child phases. Traces are collected
// when Config.Tracing is on (or after DB.SetTracing) and returned in
// Stats.Trace; the root span covers the whole query, so its read deltas
// equal Stats.LogicalReads/PhysicalReads.
type Span struct {
	Name string `json:"name"`
	// Count is the number of times the phase was entered (STPS re-enters
	// its phases once per combination).
	Count         int              `json:"count"`
	Duration      time.Duration    `json:"duration_ns"`
	LogicalReads  int64            `json:"logical_reads"`
	PhysicalReads int64            `json:"physical_reads"`
	Counters      map[string]int64 `json:"counters,omitempty"`
	Children      []*Span          `json:"children,omitempty"`
	// RequestID is set on the root span of a query that ran under a
	// request-scoped identity (Query.RequestID).
	RequestID string `json:"request_id,omitempty"`
}

// fromObsSpan deep-copies an internal span tree into the public type.
func fromObsSpan(s *obs.Span) *Span {
	if s == nil {
		return nil
	}
	out := &Span{
		Name:          s.Name,
		Count:         s.Count,
		Duration:      s.Duration,
		LogicalReads:  s.LogicalReads,
		PhysicalReads: s.PhysicalReads,
		RequestID:     s.RequestID,
	}
	if len(s.Counters) > 0 {
		out.Counters = make(map[string]int64, len(s.Counters))
		for k, v := range s.Counters {
			out.Counters[k] = v
		}
	}
	for _, c := range s.Children {
		out.Children = append(out.Children, fromObsSpan(c))
	}
	return out
}

// Walk visits the span and its descendants depth-first.
func (s *Span) Walk(fn func(depth int, sp *Span)) {
	if s == nil {
		return
	}
	var rec func(depth int, sp *Span)
	rec = func(depth int, sp *Span) {
		fn(depth, sp)
		for _, c := range sp.Children {
			rec(depth+1, c)
		}
	}
	rec(0, s)
}

// String renders the span tree, one line per span.
func (s *Span) String() string {
	if s == nil {
		return "<no trace>"
	}
	var b strings.Builder
	s.Walk(func(depth int, sp *Span) {
		width := 28 - 2*depth
		if width < 1 {
			width = 1 // deep trees stay renderable, if not column-aligned
		}
		fmt.Fprintf(&b, "%s%-*s ×%-5d %9s  %d/%d reads",
			strings.Repeat("  ", depth), width, sp.Name, sp.Count,
			sp.Duration.Round(time.Microsecond), sp.LogicalReads, sp.PhysicalReads)
		if len(sp.Counters) > 0 {
			keys := make([]string, 0, len(sp.Counters))
			for k := range sp.Counters {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&b, "  %s=%d", k, sp.Counters[k])
			}
		}
		b.WriteByte('\n')
	})
	return b.String()
}

// HistogramSnapshot is the state of one latency or page-read histogram.
// Bounds are the bucket upper bounds; Counts has one extra trailing element
// for the +Inf bucket.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// MetricsSnapshot is a point-in-time copy of the DB's metrics: buffer-pool
// counters per index and per-query latency/page-read histograms per
// algorithm and variant. It marshals to JSON directly; for Prometheus text
// format use DB.WriteMetricsPrometheus.
type MetricsSnapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// fromObsSnapshot copies an internal snapshot into the public type.
func fromObsSnapshot(s obs.Snapshot) MetricsSnapshot {
	out := MetricsSnapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]float64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for k, v := range s.Counters {
		out.Counters[k] = v
	}
	for k, v := range s.Gauges {
		out.Gauges[k] = v
	}
	for k, h := range s.Histograms {
		out.Histograms[k] = HistogramSnapshot{Bounds: h.Bounds, Counts: h.Counts, Count: h.Count, Sum: h.Sum}
	}
	return out
}

// Metrics returns a snapshot of the DB's aggregate metrics. Unlike Stats —
// which describes one query — these accumulate over the DB's lifetime.
func (db *DB) Metrics() MetricsSnapshot {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return fromObsSnapshot(db.metrics.Snapshot())
}

// WriteMetricsPrometheus writes the current metrics in Prometheus text
// exposition format, suitable for a /metrics scrape handler. The exposition
// includes the per-shape query statistics (stpq_shape_*_total) backing
// DB.Explain's predictions.
func (db *DB) WriteMetricsPrometheus(w io.Writer) error {
	db.mu.RLock()
	snap := db.metrics.Snapshot()
	tel := db.tel
	db.mu.RUnlock()
	if err := snap.WritePrometheus(w); err != nil {
		return err
	}
	if tel != nil {
		return tel.Shapes.WritePrometheus(w)
	}
	return nil
}

// SetTracing toggles per-query trace collection on a built DB (Config.
// Tracing sets the initial state; Open restores the saved one).
func (db *DB) SetTracing(on bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.engine != nil {
		db.engine.SetTrace(on)
	}
	db.cfg.Tracing = on
}
